// Pipeline demonstrates the full offline "T+1" loop of Section V: each
// simulated day, online traffic is served and logged; each night, the
// offline system reconstructs sessions from the interaction log, rebuilds
// the heterogeneous graph, retrains the TagRec model, runs offline inference
// to freeze tag embeddings, and uploads them to a fresh serving engine. CTR
// is reported per day — it rises once the model starts training on real
// traffic instead of the cold-start popularity fallback.
package main

import (
	"fmt"
	"sort"

	"intellitag/internal/core"
	"intellitag/internal/hetgraph"
	"intellitag/internal/serving"
	"intellitag/internal/store"
	"intellitag/internal/synth"
)

func main() {
	world := synth.Generate(synth.SmallConfig())
	logStore := store.NewLog()
	catalog, index := serving.BuildCatalog(world, nil) // no popularity yet
	day := 0

	// Day 0 serves with a popularity-only scorer (nothing to train on yet).
	engine := serving.NewEngine(catalog, index, popularity{catalog.Popularity}, logStore, func() int { return day })

	simCfg := serving.DefaultSimConfig()
	simCfg.Days = 1
	simCfg.SessionsPerDay = 120

	fmt.Printf("%-5s %-12s %10s %8s\n", "day", "model", "macroCTR", "HIR")
	for day = 0; day < 5; day++ {
		simCfg.Seed = int64(1000 + day)
		res := serving.Simulate(world, engine, simCfg)
		fmt.Printf("%-5d %-12s %10.3f %8.3f\n", day, engine.ScorerName(), res.Days[0].MacroCTR, res.Days[0].HIR)

		// Nightly batch: logs -> sessions -> graph -> model -> upload.
		sessions := clicksFromLog(logStore, day+1)
		graph := graphFromLog(world, logStore, day+1)
		cfg := core.Config{Dim: 16, Heads: 2, Layers: 1, MaxLen: 12, MaskProb: 0.2, NeighborCap: 8, Seed: 5}
		model := core.Build(cfg, graph, nil)
		tc := core.DefaultTrainConfig()
		tc.Epochs = 2
		core.TrainFull(model, graph, sessions, tc)
		model.Freeze() // offline inference; online servers get the table

		// Popularity for cold start also refreshes from the log.
		pop := make([]float64, len(catalog.TagPhrases))
		for _, clicks := range logStore.SessionClicks(0, day+1) {
			for _, c := range clicks {
				pop[c]++
			}
		}
		newCatalog := catalog
		newCatalog.Popularity = pop
		engine = serving.NewEngine(newCatalog, index, model, logStore, func() int { return day })
	}
}

// clicksFromLog reconstructs training sessions from all logged days, in
// session-id order — training consumes these directly, so map-order
// iteration would shuffle the training data between runs.
func clicksFromLog(l *store.Log, upToDay int) [][]int {
	bySession := l.SessionClicks(0, upToDay)
	var out [][]int
	for _, sid := range sortedSessionIDs(bySession) {
		if clicks := bySession[sid]; len(clicks) > 0 {
			out = append(out, clicks)
		}
	}
	return out
}

// sortedSessionIDs returns the keys of a per-session map in ascending order.
func sortedSessionIDs(m map[int][]int) []int {
	ids := make([]int, 0, len(m))
	for sid := range m {
		ids = append(ids, sid)
	}
	sort.Ints(ids)
	return ids
}

// graphFromLog rebuilds the heterogeneous graph: asc/crl from the (static)
// KB, clk/cst from the logged behavior.
func graphFromLog(w *synth.World, l *store.Log, upToDay int) *hetgraph.Graph {
	g := hetgraph.New(len(w.Tags), len(w.RQs), len(w.Tenants))
	for _, rq := range w.RQs {
		for _, t := range rq.TagIDs {
			g.AddAsc(hetgraph.NodeID(t), hetgraph.NodeID(rq.ID))
		}
		g.AddCrl(hetgraph.NodeID(rq.ID), hetgraph.NodeID(rq.Tenant))
	}
	clickSessions := l.SessionClicks(0, upToDay)
	for _, sid := range sortedSessionIDs(clickSessions) {
		clicks := clickSessions[sid]
		for i := 1; i < len(clicks); i++ {
			g.AddClk(hetgraph.NodeID(clicks[i-1]), hetgraph.NodeID(clicks[i]))
		}
	}
	visitSessions := l.SessionRQVisits(0, upToDay)
	for _, sid := range sortedSessionIDs(visitSessions) {
		visits := visitSessions[sid]
		for i := 1; i < len(visits); i++ {
			g.AddCst(hetgraph.NodeID(visits[i-1]), hetgraph.NodeID(visits[i]))
		}
	}
	return g
}

// popularity is the day-0 fallback scorer.
type popularity struct{ pop []float64 }

func (p popularity) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = p.pop[c]
	}
	return out
}

func (p popularity) Name() string { return "popularity" }
