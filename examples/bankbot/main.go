// Bankbot reproduces the paper's bank-tenant case study (Fig. 1 and Fig. 5)
// with hand-authored data instead of the synthetic generator: tags like
// "bluetooth", "activate", "quota", "credit card"; RQs tying them together;
// and sessions in which users work through activate -> open -> bluetooth
// flows. It trains the TagRec model on this tiny world and prints the same
// signals the paper visualizes: recommendations after clicking "bluetooth",
// neighbor attention, and metapath preferences.
package main

import (
	"fmt"

	"intellitag/internal/core"
	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
)

// The bank's tag catalog (ids are indices).
var tags = []string{
	"bluetooth",   // 0
	"activate",    // 1
	"open",        // 2
	"quota",       // 3
	"credit card", // 4
	"debit card",  // 5
	"apply",       // 6
	"etc card",    // 7
	"password",    // 8
	"reset",       // 9
}

// RQs: which tags each representative question carries.
var rqTags = [][]int{
	{0, 1}, // "how to activate bluetooth"
	{0, 2}, // "where to open bluetooth"
	{3, 4}, // "what is my credit card quota"
	{3, 5}, // "what is my debit card quota"
	{6, 7}, // "how to apply for etc card"
	{7, 1}, // "activate etc card"
	{8, 9}, // "reset password"
}

// Sessions: users clicking through task flows (the clk relation source).
var sessions = [][]int{
	{1, 0}, {2, 0}, {1, 0, 2}, {0, 1}, {2, 0, 1},
	{6, 7, 1}, {6, 7}, {7, 1},
	{3, 4}, {3, 5}, {4, 3}, {5, 3}, {3, 4, 5},
	{8, 9}, {9, 8}, {8, 9, 8},
	{1, 0}, {0, 2}, {6, 7, 1}, {3, 4},
}

func main() {
	// One tenant (the bank), one RQ per row above.
	g := hetgraph.New(len(tags), len(rqTags), 1)
	for rq, ts := range rqTags {
		for _, t := range ts {
			g.AddAsc(hetgraph.NodeID(t), hetgraph.NodeID(rq))
		}
		g.AddCrl(hetgraph.NodeID(rq), 0)
	}
	for _, s := range sessions {
		for i := 1; i < len(s); i++ {
			g.AddClk(hetgraph.NodeID(s[i-1]), hetgraph.NodeID(s[i]))
		}
	}
	// Two co-consulted question pairs (the cst relation).
	g.AddCst(0, 1)
	g.AddCst(2, 3)

	cfg := core.Config{Dim: 12, Heads: 2, Layers: 1, MaxLen: 6, MaskProb: 0.3, NeighborCap: 8, Seed: 5}
	model := core.Build(cfg, g, nil)
	trainCfg := core.DefaultTrainConfig()
	trainCfg.Epochs = 60 // tiny data, many epochs
	core.TrainFull(model, g, sessions, trainCfg)

	fmt.Println("After clicking \"bluetooth\", the system recommends:")
	shown := 0
	for _, rec := range model.Recommend([]int{0}, nil, 6) {
		if rec.Tag == 0 { // the interface hides already-clicked tags
			continue
		}
		fmt.Printf("  %-12s %.3f\n", tags[rec.Tag], rec.Score)
		if shown++; shown == 4 {
			break
		}
	}

	fmt.Println("\nFig 5(a)-style neighbor attention for \"bluetooth\" (metapath TT):")
	ids, weights := model.Graph.Attention(0).NeighborWeights(hetgraph.TT)
	for i, id := range ids {
		fmt.Printf("  %-12s %.3f\n", tags[id], weights[i])
	}

	fmt.Println("\nFig 5(b)-style metapath preferences:")
	fmt.Printf("  %-12s %6s %6s %6s %6s\n", "tag", "TT", "TQT", "TQQT", "TQEQT")
	for _, t := range []int{0, 3} { // bluetooth vs quota, as in the paper
		w := model.Graph.Attention(t).MetapathWeights()
		fmt.Printf("  %-12s %6.3f %6.3f %6.3f %6.3f\n", tags[t], w[0], w[1], w[2], w[3])
	}

	// Sanity: embeddings of co-clicked tags are closer than unrelated ones.
	model.Freeze()
	sim := func(a, b int) float64 { return mat.CosineSim(model.Frozen.Row(a), model.Frozen.Row(b)) }
	fmt.Printf("\ncos(bluetooth, activate) = %.3f vs cos(bluetooth, password) = %.3f\n",
		sim(0, 1), sim(0, 8))
}
