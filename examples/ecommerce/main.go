// Ecommerce walks through the paper's introduction scenario: an E-commerce
// tenant whose users ask about logistics, orders and refunds. It exercises
// the Q&A side of IntelliTag — the KB warehouse, the automatic Q&A
// collection pipeline (clustering + answer selection), the BM25 search
// substitute for ElasticSearch, and the serving engine's ask/click flow.
package main

import (
	"context"
	"fmt"

	"intellitag/internal/kb"
	"intellitag/internal/search"
	"intellitag/internal/serving"
	"intellitag/internal/store"
)

func main() {
	const tenant = 0
	warehouse := kb.NewWarehouse()

	// The tenant uploads a few self-ordained Q&A pairs.
	warehouse.Upload(tenant, "where is my order logistics", "Track your parcel under Orders > Logistics.")
	warehouse.Upload(tenant, "how to cancel the order", "Open the order page and tap Cancel within 30 minutes.")
	warehouse.Upload(tenant, "how to change delivery address", "Edit the address before the parcel ships.")

	// Users keep asking about refunds — a topic with no KB coverage — and
	// manual agents reply. The collection pipeline clusters the questions
	// and promotes a new Q&A pair automatically (Section III-A).
	userQuestions := []kb.UserQuestion{
		{Tenant: tenant, Text: "refund my payment please", Replies: []string{"Refunds of payment arrive within three days."}},
		{Tenant: tenant, Text: "payment refund status check", Replies: []string{"Check refund progress under the refunds page."}},
		{Tenant: tenant, Text: "when will my payment refund arrive", Replies: []string{"Payment refunds take three business days."}},
	}
	cfg := kb.DefaultCollectConfig()
	cfg.Eps = 0.45
	result := kb.Collect(warehouse, tenant, userQuestions, cfg)
	fmt.Printf("auto-collection: %d clusters, %d new Q&A pairs\n", result.Clusters, result.NewPairs)

	// Build the serving engine over the warehouse.
	index := search.NewIndex()
	catalog := serving.Catalog{
		TagPhrases: []string{"order", "logistics", "cancel", "refund", "address"},
		TenantTags: map[int][]int{tenant: {0, 1, 2, 3, 4}},
		Popularity: []float64{5, 4, 3, 2, 1},
		RQAnswers:  map[int]string{},
	}
	for _, p := range warehouse.All() {
		index.Add(p.ID, p.Tenant, p.Question)
		catalog.RQAnswers[p.ID] = p.Answer
	}
	engine := serving.NewEngine(catalog, index, lastClickScorer{}, store.NewLog(), nil)
	ctx := context.Background()

	// A user types a question, as in the paper's Fig. 1 left panel.
	fmt.Println("\nuser asks: \"where is my order\"")
	if match, ok := engine.Ask(ctx, tenant, 1, "where is my order"); ok {
		fmt.Printf("  matched RQ: %q\n  answer:     %q\n", match.Question, match.Answer)
	}

	// The user clicks the "refund" tag; the engine returns predicted
	// questions for the accumulated tag query (Fig. 1 middle panel).
	fmt.Println("\nuser clicks tag \"refund\"")
	_, questions := engine.Click(ctx, tenant, 1, 3, 3)
	for _, q := range questions {
		fmt.Printf("  predicted question: %q (answer: %q)\n", q.Question, q.Answer)
	}

	// Cold start for a fresh session: most popular tags first.
	fmt.Println("\nfresh session cold-start recommendations:")
	for _, r := range engine.RecommendTags(ctx, tenant, 99, 3) {
		fmt.Printf("  %-10s (popularity %.0f)\n", r.Phrase, r.Score)
	}
}

// lastClickScorer is a trivial model: it scores a candidate by co-occurrence
// with the last click in this hand-written matrix (a stand-in for TagRec).
type lastClickScorer struct{}

var related = map[int][]int{
	0: {1, 2, 3}, // order -> logistics, cancel, refund
	1: {0},       // logistics -> order
	2: {0, 3},    // cancel -> order, refund
	3: {0, 2},    // refund -> order, cancel
	4: {0},       // address -> order
}

func (lastClickScorer) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	if len(history) == 0 {
		return out
	}
	last := history[len(history)-1]
	for i, c := range candidates {
		for rank, r := range related[last] {
			if r == c {
				out[i] = float64(len(related[last]) - rank)
			}
		}
	}
	return out
}

func (lastClickScorer) Name() string { return "rules" }
