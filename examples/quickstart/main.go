// Quickstart: the minimal end-to-end IntelliTag flow — generate a world,
// mine tags from its representative questions, train the TagRec model, and
// recommend the next tags for a click history.
package main

import (
	"fmt"

	"intellitag/internal/core"
	"intellitag/internal/synth"
	"intellitag/internal/tagmining"
)

func main() {
	// 1. A synthetic customer-service world: tenants, questions, sessions.
	world := synth.Generate(synth.SmallConfig())
	fmt.Printf("world: %d tenants, %d tags, %d RQs, %d sessions\n",
		len(world.Tenants), world.NumTags(), len(world.RQs), len(world.Sessions))

	// 2. Mine tags from the labeled RQ sentences with the multi-task model.
	sentences := world.LabeledSentences()
	vocab := tagmining.BuildVocab(sentences)
	miner := tagmining.NewModel(tagmining.StudentConfig(), vocab)
	cfg := tagmining.DefaultTrainConfig()
	cfg.Epochs = 2
	tagmining.TrainMultiTask(miner, sentences, cfg)
	var tokens [][]string
	for _, s := range sentences[:100] {
		tokens = append(tokens, s.Tokens)
	}
	mined := tagmining.Extract(miner, tokens, 0.5)
	fmt.Printf("mined %d candidate tags; top 3:\n", len(mined))
	for i, t := range mined {
		if i == 3 {
			break
		}
		fmt.Printf("  %q (count %d, weight %.2f)\n", t.Phrase, t.Count, t.Weight)
	}

	// 3. Train the TagRec model end-to-end on the session clicks.
	train, _, _ := world.SplitSessions(0.9, 0.05)
	graph := world.BuildGraph(train)
	recCfg := core.DefaultConfig()
	recCfg.Dim, recCfg.Heads = 16, 2
	model := core.Build(recCfg, graph, nil)
	trainCfg := core.DefaultTrainConfig()
	trainCfg.Epochs = 2
	var clicks [][]int
	for _, s := range train {
		clicks = append(clicks, s.Clicks)
	}
	core.TrainFull(model, graph, clicks, trainCfg)

	// 4. Recommend the next tags for a user's click history.
	session := world.Sessions[0]
	history := session.Clicks[:1]
	candidates := world.TagsOfTenant(session.Tenant)
	fmt.Printf("\nuser clicked %q; top-5 recommendations:\n", world.Tags[history[0]].Phrase())
	for _, rec := range model.Recommend(history, candidates, 5) {
		fmt.Printf("  %-30s score %.3f\n", world.Tags[rec.Tag].Phrase(), rec.Score)
	}
}
