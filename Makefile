# Developer entry points. `make check` is the full pre-merge gate: formatting,
# vet, build, the race-enabled test suite, and a short benchmark pass to catch
# gross performance regressions.

GO ?= go

.PHONY: check fmt vet build test bench bench-short

check: fmt vet build test bench-short

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt required on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One quick iteration of the parallel-scaling benchmarks; see EXPERIMENTS.md
# for the recorded sweep.
bench-short:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchtime 1x .

bench:
	$(GO) test -run xxx -bench . -benchmem .
