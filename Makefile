# Developer entry points. `make check` is the full pre-merge gate, in order:
# fmt -> vet -> lint -> build -> test(-race) -> bench-short -> load-cert-short
# -> online-demo-short. Cheap textual checks run first, intellilint gates the
# project invariants before anything compiles twice, the race-enabled tests
# plus a short benchmark pass close out correctness and gross performance
# regressions, a short load-certification sweep keeps the serving hot path
# honest, and a short online-learning drill keeps the drift/rollback loop
# honest.

GO ?= go

.PHONY: check fmt vet lint lint-fix-list build test bench bench-short bench-all bench-ann load-cert load-cert-short online-demo online-demo-short record-trace trajectory obs-demo swap-demo

check: fmt vet lint build test bench-short load-cert-short online-demo-short

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt required on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# intellilint (internal/lint): pooldiscipline, intoalias, maporder, nakedgo,
# errcheck. There is no lint-fix mode — every finding is either a real bug to
# fix by hand or a reviewed exception to annotate with
# `//lint:ignore <analyzer> <reason>` (the reason is mandatory).
lint:
	$(GO) run ./cmd/intellilint ./...

# Bare file:line per finding, for editor jump lists (vim -q, emacs grep-mode).
lint-fix-list:
	$(GO) run ./cmd/intellilint -format list ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One quick iteration of the parallel-scaling benchmarks; see EXPERIMENTS.md
# for the recorded sweep.
bench-short:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchtime 1x .

# Memory-discipline benchmarks (matmul kernel, train step, serve path):
# writes BENCH_PR2.json with ns/op, B/op and allocs/op plus improvement
# ratios against the pre-optimization numbers in BENCH_PR2_BASELINE.json.
bench:
	$(GO) test -run xxx -bench PR2 -benchmem -benchtime 50x . ./internal/core | \
		$(GO) run ./cmd/benchjson -baseline BENCH_PR2_BASELINE.json -o BENCH_PR2.json \
		-note "in-place Into kernels + pooled/owned buffers"

# Every benchmark in the root package (parallel scaling + PR2), no JSON.
bench-all:
	$(GO) test -run xxx -bench . -benchmem .

# ANN retrieval benchmarks: recall@K-vs-latency curves for both backends
# against brute force at 10^5 and 10^6 tags, plus serve-path ns/op with
# retrieval on and off. Regenerates BENCH_PR7.json (the recorded artifact)
# and exits non-zero if the acceptance bars (>=10x serve speedup,
# recall@10 >= 0.95) are missed. ~15 min on one core — the 10^6 graph
# build is the long pole; pass a smaller -sizes for a quick look.
bench-ann:
	$(GO) run ./cmd/annbench -sizes 100000,1000000 -serve-tags 100000 -o BENCH_PR7.json

# Load certification (ROADMAP item 4): closed-loop sweep against an
# in-process intellitag-server clone (popularity bucket swapped to a freshly
# trained TagRec bundle mid-step 3), SLO gates per step, zero dropped
# requests certified across the rolling swap. Writes BENCH_LOAD_PR9.json —
# the recorded artifact — and exits non-zero if any gate fails.
load-cert:
	$(GO) run ./cmd/loadgen -model intellitag -steps 1,4,8,16 -duration 2s \
		-warmup 500ms -swap-step 3 -max-p99-ms 250 -min-qps 500 \
		-o BENCH_LOAD_PR9.json -note "closed-loop sweep, rolling swap on step 3"

# Sub-ten-second certification smoke for `make check` and CI: tiny sweep over
# the popularity model, swap on the last step, gates relaxed to catch only
# gross breakage (errors, drops, pathological p99).
load-cert-short:
	$(GO) run ./cmd/loadgen -model popularity -steps 1,4 -duration 500ms \
		-warmup 200ms -swap-step 2 -max-p99-ms 1000 \
		-o /tmp/intellitag-load-short.json -note "short certification smoke"

# Online-learning drill (ROADMAP item 3): frozen vs streaming-learner buckets
# over a world whose click process drifts mid-run — the online bucket
# fine-tunes on the live stream and recovers CTR — ending with a poison drill
# (garbage-label round → gate block → forced promotion → drift-monitor
# auto-rollback to last-known-good). Writes BENCH_ONLINE_PR10.json — the
# recorded artifact — and exits non-zero if any leg of the drill fails.
online-demo:
	$(GO) run ./cmd/simulate -online -days 10 -sessions 150 \
		-online-out BENCH_ONLINE_PR10.json

# Sub-five-second drill smoke for `make check` and CI: fewer days and
# sessions, same drift → adapt → poison → rollback sequence.
online-demo-short:
	$(GO) run ./cmd/simulate -online -days 6 -sessions 60 \
		-online-out /tmp/intellitag-online-short.json

# Record a deterministic httprr trace of held-out session traffic for replay
# in serving tests and `loadgen -trace`.
record-trace:
	$(GO) run ./cmd/simulate -model popularity -record /tmp/intellitag-session.httprr -record-sessions 5

# Merge every recorded BENCH artifact into one schema-checked trajectory;
# fails loudly on any malformed entry.
trajectory:
	$(GO) run ./cmd/benchjson -trajectory -o TRAJECTORY.json \
		BENCH_PR2.json BENCH_PR7.json BENCH_LOAD_PR9.json BENCH_ONLINE_PR10.json

# Live telemetry demo: run the simulator with the telemetry listener up, let
# traffic flow for a moment, dump /metrics and one sampled trace, then stop.
# The day count is deliberately huge — the run is killed, not finished.
obs-demo:
	@$(GO) build -o /tmp/intellitag-obs-demo ./cmd/simulate
	@/tmp/intellitag-obs-demo -model popularity -days 100000 -sessions 200 \
		-telemetry-addr 127.0.0.1:9477 -trace-sample 16 >/dev/null 2>&1 & \
	pid=$$!; \
	sleep 2; \
	echo "--- GET /metrics (mid-run) ---"; \
	curl -s http://127.0.0.1:9477/metrics; \
	echo "--- GET /debug/trace?limit=1 ---"; \
	curl -s 'http://127.0.0.1:9477/debug/trace?limit=1'; echo; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; true

# Zero-downtime hot-swap demo: train two model versions into a snapshot
# store (different seeds, so the rankings visibly differ), then run the
# simulator starting on version 1 with 3 replicas and roll to version 2
# live after day 2 — traffic keeps flowing across the flip, and the summary
# shows both versions served with every replica drained.
swap-demo:
	@rm -rf /tmp/intellitag-swap-demo && mkdir -p /tmp/intellitag-swap-demo
	@$(GO) build -o /tmp/intellitag-swap-demo/train ./cmd/tagrec-train
	@$(GO) build -o /tmp/intellitag-swap-demo/simulate ./cmd/simulate
	@echo "--- training snapshot version 1 ---"
	@/tmp/intellitag-swap-demo/train -fast -seed 1 -epochs 1 \
		-snapshots /tmp/intellitag-swap-demo/store 2>&1 | grep -E "committed|loss"
	@echo "--- training snapshot version 2 ---"
	@/tmp/intellitag-swap-demo/train -fast -seed 1 -epochs 2 \
		-snapshots /tmp/intellitag-swap-demo/store 2>&1 | grep -E "committed|loss"
	@echo "--- simulating: 3 replicas, rolling swap after day 2 ---"
	@/tmp/intellitag-swap-demo/simulate -fast -seed 1 -days 4 -sessions 80 \
		-replicas 3 -snapshots /tmp/intellitag-swap-demo/store \
		-swap-at-day 2 -swap-stagger 20ms
