// Package load is the closed-loop load-certification harness (ROADMAP item
// 4): it drives the intellitag-server HTTP API at configurable concurrency /
// QPS / duration over synthetic or recorded (httprr) session traffic,
// measures the full client-side latency distribution, scrapes the server's
// internal/obs histograms and enriched /healthz, evaluates declarative SLO
// gates per concurrency step — including zero dropped requests across a
// mid-run rolling model swap — and emits a BENCH_LOAD json with the
// latency/throughput curve.
//
// Two loop modes per step, selected by StepConfig.QPS:
//
//   - QPS == 0: closed loop. Each of Concurrency workers issues its next
//     request the moment the previous response lands. Latency is pure
//     service time; throughput is whatever the server sustains.
//   - QPS > 0: paced open-ish loop with coordinated-omission correction.
//     Each worker sends on a fixed schedule (slot n fires at start +
//     n*interval) and latency is measured from the *scheduled* send time,
//     not the actual one — when the server stalls, the requests queueing
//     behind the stall are charged their wait, instead of the generator
//     silently omitting the delay by only timing requests it managed to
//     send. That is the standard correction for the coordinated-omission
//     artifact that makes naive closed-loop p99s look flat under overload.
package load

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// StepConfig is one rung of the concurrency sweep.
type StepConfig struct {
	Concurrency int
	QPS         float64 // target request rate; 0 = closed-loop max rate
	Duration    time.Duration
	Swap        bool // trigger Options.Swap halfway through this step
}

// Options configures a certification run.
type Options struct {
	BaseURL string // target server, e.g. http://127.0.0.1:8080
	Source  Source
	Warmup  time.Duration // closed-loop warmup before the first step (untimed)
	Timeout time.Duration // per-request timeout; 0 means 10s

	// Swap, when non-nil, is invoked halfway through each step with
	// StepConfig.Swap set; it performs a rolling model swap (in-process or
	// via POST /admin/swap) and returns the version flipped to. The swap-step
	// gate then certifies zero dropped requests across the flip.
	Swap func() (version string, err error)

	SLO  SLO
	Note string
}

// stepStats is one worker's tally, merged after the step's barrier.
type stepStats struct {
	latencies []float64 // milliseconds
	requests  int64
	errors    int64 // HTTP status >= 400
	dropped   int64 // transport failure: no response at all
}

// Run executes the sweep and assembles the report. Workers are goroutines —
// internal/load is on the intellilint nakedgo allowlist for exactly this
// fan-out — but every step ends on a full barrier, so the returned report is
// the only thing that outlives a call.
func Run(opts Options, steps []StepConfig) (*Report, error) {
	if opts.Source == nil {
		return nil, fmt.Errorf("load: Options.Source is required")
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("load: no steps configured")
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	maxConc := 0
	for _, s := range steps {
		if s.Concurrency < 1 {
			return nil, fmt.Errorf("load: step concurrency must be >= 1, got %d", s.Concurrency)
		}
		if s.Concurrency > maxConc {
			maxConc = s.Concurrency
		}
	}
	client := &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        maxConc + 8,
			MaxIdleConnsPerHost: maxConc + 8,
		},
	}

	report := &Report{
		Schema:        SchemaV1,
		Note:          opts.Note,
		GeneratedUnix: time.Now().Unix(),
		Target:        opts.BaseURL,
		Source:        opts.Source.Name(),
		SLO:           opts.SLO,
		Pass:          true,
	}

	workerID := 0 // global worker counter: fresh session partitions per step
	if opts.Warmup > 0 {
		runStep(client, opts, StepConfig{Concurrency: steps[0].Concurrency, Duration: opts.Warmup}, &workerID)
	}
	for _, step := range steps {
		res := runStep(client, opts, step, &workerID)
		res.Server = probeServer(client, opts.BaseURL)
		res.Gates = opts.SLO.evaluate(res)
		res.Pass = allPass(res.Gates)
		if !res.Pass {
			report.Pass = false
		}
		report.Steps = append(report.Steps, res)
	}
	return report, nil
}

// runStep drives one concurrency step to its barrier and reduces the worker
// tallies into a StepResult.
func runStep(client *http.Client, opts Options, step StepConfig, workerID *int) StepResult {
	stats := make([]stepStats, step.Concurrency)
	streams := make([]Stream, step.Concurrency)
	for i := range streams {
		streams[i] = opts.Source.Stream(*workerID)
		*workerID++
	}

	var swapMu sync.Mutex
	var swap *SwapResult
	start := time.Now()
	deadline := start.Add(step.Duration)

	var wg sync.WaitGroup
	if step.Swap && opts.Swap != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(step.Duration / 2)
			version, err := opts.Swap()
			sr := &SwapResult{Version: version}
			if err != nil {
				sr.Error = err.Error()
			}
			swapMu.Lock()
			swap = sr
			swapMu.Unlock()
		}()
	}
	for w := 0; w < step.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if step.QPS > 0 {
				runPaced(client, opts.BaseURL, streams[w], &stats[w], start, deadline,
					time.Duration(float64(step.Concurrency)/step.QPS*float64(time.Second)))
			} else {
				runClosed(client, opts.BaseURL, streams[w], &stats[w], deadline)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := StepResult{
		Concurrency: step.Concurrency,
		TargetQPS:   step.QPS,
		DurationSec: round3(elapsed),
		Swap:        swap,
	}
	var all []float64
	for i := range stats {
		res.Requests += stats[i].requests
		res.Errors += stats[i].errors
		res.Dropped += stats[i].dropped
		all = append(all, stats[i].latencies...)
	}
	if elapsed > 0 {
		res.AchievedQPS = round3(float64(res.Requests) / elapsed)
	}
	sort.Float64s(all)
	res.P50Ms = round3(quantile(all, 0.50))
	res.P95Ms = round3(quantile(all, 0.95))
	res.P99Ms = round3(quantile(all, 0.99))
	if n := len(all); n > 0 {
		res.MaxMs = round3(all[n-1])
	}
	return res
}

// runClosed is the closed-loop worker body: next request the moment the
// previous response lands; latency is service time.
func runClosed(client *http.Client, base string, st Stream, out *stepStats, deadline time.Time) {
	for time.Now().Before(deadline) {
		req := st.Next()
		t0 := time.Now()
		status, err := do(client, base, req)
		note(out, time.Since(t0), status, err)
	}
}

// runPaced is the paced worker body with coordinated-omission correction:
// slot n fires at start+n*interval and its latency clock starts at the slot
// time whether or not the worker was free to send — a stalled server pays
// for the queue it caused.
func runPaced(client *http.Client, base string, st Stream, out *stepStats, start, deadline time.Time, interval time.Duration) {
	for n := 0; ; n++ {
		sched := start.Add(time.Duration(n) * interval)
		if !sched.Before(deadline) {
			return
		}
		if wait := time.Until(sched); wait > 0 {
			time.Sleep(wait)
		}
		req := st.Next()
		status, err := do(client, base, req)
		note(out, time.Since(sched), status, err)
	}
}

func note(out *stepStats, lat time.Duration, status int, err error) {
	out.requests++
	switch {
	case err != nil:
		out.dropped++
	case status >= 400:
		out.errors++
		out.latencies = append(out.latencies, float64(lat)/float64(time.Millisecond))
	default:
		out.latencies = append(out.latencies, float64(lat)/float64(time.Millisecond))
	}
}

// do issues one request and fully drains the response body (required for
// connection reuse). A transport error returns err != nil — that request got
// no response and counts as dropped.
func do(client *http.Client, base string, r Request) (int, error) {
	var body io.Reader
	if r.Body != "" {
		body = strings.NewReader(r.Body)
	}
	req, err := http.NewRequest(r.Method, base+r.Path, body)
	if err != nil {
		return 0, err
	}
	if r.Body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// quantile reads the p-quantile from an ascending sample by nearest rank.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
