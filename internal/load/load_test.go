package load

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"intellitag/internal/httprr"
)

// newEchoServer serves an instant 200 for the API routes, with optional
// per-request delay and an error window toggled by the returned flag.
func newEchoServer(t *testing.T, delay time.Duration) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	var failing atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if delay > 0 {
			time.Sleep(delay)
		}
		if _, err := io.Copy(io.Discard, r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if failing.Load() {
			http.Error(w, "induced failure", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"path":%q}`, r.URL.Path)
	}))
	t.Cleanup(srv.Close)
	return srv, &failing
}

func synth() *SyntheticSource {
	return &SyntheticSource{
		Seed: 7,
		Tenants: []TenantTraffic{
			{Tenant: 0, Tags: []int{1, 2, 3, 4}},
			{Tenant: 1, Tags: []int{5, 6, 7}},
		},
		K: 5, ClicksPerSession: 3,
	}
}

func TestRunClosedLoopSweep(t *testing.T) {
	srv, _ := newEchoServer(t, 0)
	report, err := Run(Options{
		BaseURL: srv.URL,
		Source:  synth(),
		SLO:     SLO{MaxP99Ms: 5000, MinQPS: 1},
		Note:    "test sweep",
	}, []StepConfig{
		{Concurrency: 1, Duration: 100 * time.Millisecond},
		{Concurrency: 4, Duration: 100 * time.Millisecond},
		{Concurrency: 8, Duration: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if report.Schema != SchemaV1 || len(report.Steps) != 3 || !report.Pass {
		t.Fatalf("report shape wrong: schema=%q steps=%d pass=%v", report.Schema, len(report.Steps), report.Pass)
	}
	for i, s := range report.Steps {
		if s.Requests == 0 || s.AchievedQPS <= 0 {
			t.Errorf("step %d did no work: %+v", i, s)
		}
		if s.Errors != 0 || s.Dropped != 0 {
			t.Errorf("step %d errors=%d dropped=%d against a healthy server", i, s.Errors, s.Dropped)
		}
		if s.P50Ms > s.P95Ms || s.P95Ms > s.P99Ms || s.P99Ms > s.MaxMs {
			t.Errorf("step %d percentiles not monotone: %+v", i, s)
		}
		if !s.Pass || len(s.Gates) != 3 {
			t.Errorf("step %d gates wrong: %+v", i, s.Gates)
		}
	}
	// Report writes and re-reads as JSON.
	path := filepath.Join(t.TempDir(), "load.json")
	if err := report.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
}

// TestPacedCoordinatedOmission pins the CO correction: with a 20ms service
// time paced at 5ms per slot, the schedule falls behind immediately and every
// queued slot must be charged its wait — measured latency grows far beyond
// the service time instead of flat-lining at it.
func TestPacedCoordinatedOmission(t *testing.T) {
	const service = 20 * time.Millisecond
	srv, _ := newEchoServer(t, service)
	report, err := Run(Options{BaseURL: srv.URL, Source: synth()}, []StepConfig{
		{Concurrency: 1, QPS: 200, Duration: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := report.Steps[0]
	if s.Requests < 10 {
		t.Fatalf("paced step issued only %d requests", s.Requests)
	}
	// A naive service-time measurement would report ~20ms at every quantile.
	if s.MaxMs < 5*float64(service/time.Millisecond) {
		t.Errorf("coordinated omission not corrected: max %.1fms at 20ms service under 5ms pacing", s.MaxMs)
	}
	if s.P50Ms < 1.5*float64(service/time.Millisecond) {
		t.Errorf("median %.1fms does not include queue delay", s.P50Ms)
	}
}

func TestRunWithSwapGate(t *testing.T) {
	srv, _ := newEchoServer(t, 0)
	var swapped atomic.Int64
	report, err := Run(Options{
		BaseURL: srv.URL,
		Source:  synth(),
		Swap: func() (string, error) {
			swapped.Add(1)
			return "v0002-testtest", nil
		},
	}, []StepConfig{
		{Concurrency: 2, Duration: 80 * time.Millisecond},
		{Concurrency: 2, Duration: 200 * time.Millisecond, Swap: true},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if swapped.Load() != 1 {
		t.Fatalf("swap callback ran %d times, want 1", swapped.Load())
	}
	if report.Steps[0].Swap != nil {
		t.Fatalf("non-swap step recorded a swap: %+v", report.Steps[0].Swap)
	}
	s := report.Steps[1]
	if s.Swap == nil || s.Swap.Version != "v0002-testtest" {
		t.Fatalf("swap step lost its swap record: %+v", s.Swap)
	}
	var gate *GateResult
	for i := range s.Gates {
		if s.Gates[i].Gate == "zero_dropped_on_swap" {
			gate = &s.Gates[i]
		}
	}
	if gate == nil || !gate.Pass || gate.Got != 0 {
		t.Fatalf("swap gate wrong: %+v", gate)
	}
}

func TestGateFailures(t *testing.T) {
	res := StepResult{
		Concurrency: 4, Requests: 1000, Errors: 30, Dropped: 5,
		AchievedQPS: 120, P99Ms: 80,
		Swap: &SwapResult{Version: "v3"},
	}
	gates := SLO{MaxP99Ms: 50, MinQPS: 500, MaxErrorRate: 0.01}.evaluate(res)
	byName := map[string]GateResult{}
	for _, g := range gates {
		byName[g.Gate] = g
	}
	if g := byName["max_p99_ms"]; g.Pass || g.Got != 80 {
		t.Errorf("p99 gate must fail at 80 > 50: %+v", g)
	}
	if g := byName["min_qps"]; g.Pass || g.Got != 120 {
		t.Errorf("qps gate must fail at 120 < 500: %+v", g)
	}
	if g := byName["max_error_rate"]; g.Pass || g.Got != 0.035 {
		t.Errorf("error-rate gate must fail at 3.5%% > 1%%: %+v", g)
	}
	if g := byName["zero_dropped_on_swap"]; g.Pass || g.Got != 5 {
		t.Errorf("swap gate must fail with 5 dropped: %+v", g)
	}
	if allPass(gates) {
		t.Error("allPass over failing gates")
	}

	clean := SLO{MaxErrorRate: 0.05}.evaluate(StepResult{Requests: 100, Errors: 1, AchievedQPS: 10})
	if len(clean) != 1 || !clean[0].Pass {
		t.Errorf("zero-valued bounds must disable their gates: %+v", clean)
	}
}

func TestErrorsCounted(t *testing.T) {
	srv, failing := newEchoServer(t, 0)
	failing.Store(true)
	report, err := Run(Options{BaseURL: srv.URL, Source: synth()}, []StepConfig{
		{Concurrency: 2, Duration: 60 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := report.Steps[0]
	if s.Errors != s.Requests || s.Errors == 0 {
		t.Fatalf("all requests got 500s: errors=%d requests=%d", s.Errors, s.Requests)
	}
	if s.Pass || report.Pass {
		t.Fatal("error-rate gate must fail an all-error step")
	}
}

func TestSyntheticSourceDeterministicAndPartitioned(t *testing.T) {
	src := synth()
	a, b := src.Stream(3), src.Stream(3)
	for i := 0; i < 64; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("request %d diverged for identical worker streams: %+v vs %+v", i, ra, rb)
		}
		if ra.Method != "POST" || (ra.Path != "/click" && ra.Path != "/recommend") {
			t.Fatalf("unexpected request shape: %+v", ra)
		}
	}
	// Different workers use disjoint session-id partitions.
	other := src.Stream(4).Next()
	mine := src.Stream(3).Next()
	if strings.Contains(other.Body, `"session":50000001`) == false {
		t.Fatalf("worker 4 not in its partition: %s", other.Body)
	}
	if strings.Contains(mine.Body, `"session":40000001`) == false {
		t.Fatalf("worker 3 not in its partition: %s", mine.Body)
	}
}

func TestTraceSource(t *testing.T) {
	records := []httprr.Record{
		{Method: "POST", Path: "/click", ReqBody: `{"tenant":0,"session":5,"tag":1,"k":5}`, Status: 200},
		{Method: "POST", Path: "/recommend", ReqBody: `{"tenant":0,"session":5,"k":5}`, Status: 200},
	}
	path := filepath.Join(t.TempDir(), "t.httprr")
	if err := httprr.WriteTrace(path, records); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	src, err := NewTraceSource(path)
	if err != nil {
		t.Fatalf("NewTraceSource: %v", err)
	}
	st := src.Stream(0)
	got := []Request{st.Next(), st.Next(), st.Next()}
	if got[0].Path != "/click" || got[1].Path != "/recommend" || got[2].Path != "/click" {
		t.Fatalf("trace must cycle in recorded order: %+v", got)
	}
	// Session ids are remapped into the worker's partition; the rest of the
	// body survives.
	if !strings.Contains(got[0].Body, `"session":10000005`) || !strings.Contains(got[0].Body, `"tag":1`) {
		t.Fatalf("session remap wrong: %s", got[0].Body)
	}
	if _, err := NewTraceSource(filepath.Join(t.TempDir(), "missing.httprr")); err == nil {
		t.Fatal("missing trace must error")
	}
}

// TestProbeServer pins the scrape of the enriched /healthz and /metrics.json.
func TestProbeServer(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"requests":42,"inflight":3,"active_version":"v0001-abc",`+
			`"seconds_since_swap":1.5,"route_p99_ms":{"click":2.5,"recommend":0.9}}`)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"histograms":{"intellitag_http_request_seconds{route=\"click\"}":`+
			`{"count":10,"p50":0.001,"p95":0.002,"p99":0.0025}}}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	snap := probeServer(srv.Client(), srv.URL)
	if snap == nil {
		t.Fatal("probe returned nil against a healthy server")
	}
	if snap.Inflight != 3 || snap.ActiveVersion != "v0001-abc" || snap.RouteP99Ms["click"] != 2.5 {
		t.Fatalf("healthz parse wrong: %+v", snap)
	}
	q, ok := snap.RouteQuantiles["click"]
	if !ok || q.P99Ms != 2.5 || q.Count != 10 {
		t.Fatalf("metrics.json parse wrong: %+v", snap.RouteQuantiles)
	}
	// Server-side gate arms off the probe.
	gates := SLO{MaxServerP99Ms: 1.0}.evaluate(StepResult{Requests: 1, Server: snap})
	found := false
	for _, g := range gates {
		if g.Gate == "max_server_p99_ms" {
			found = true
			if g.Pass || g.Got != 2.5 {
				t.Fatalf("server p99 gate must fail at 2.5 > 1.0: %+v", g)
			}
		}
	}
	if !found {
		t.Fatal("server p99 gate did not arm")
	}

	// No healthz at all -> nil snapshot, no server gates.
	bare := httptest.NewServer(http.NotFoundHandler())
	defer bare.Close()
	if snap := probeServer(bare.Client(), bare.URL); snap != nil {
		t.Fatalf("probe fabricated a snapshot: %+v", snap)
	}
}
