package load

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
)

// SchemaV1 identifies the report layout for downstream validators
// (cmd/benchjson -trajectory).
const SchemaV1 = "intellitag-load/1"

// SLO is the declarative gate set applied to every step. Zero-valued bounds
// disable their gate, except the error-rate gate (always on: certification
// defaults to zero tolerated errors) and the swap gate (always on for steps
// that performed a swap: zero dropped requests across the flip).
type SLO struct {
	MaxP99Ms       float64 `json:"max_p99_ms,omitempty"`        // client-side p99 ceiling
	MinQPS         float64 `json:"min_qps,omitempty"`           // achieved-throughput floor
	MaxErrorRate   float64 `json:"max_error_rate"`              // (errors+dropped)/requests ceiling
	MaxServerP99Ms float64 `json:"max_server_p99_ms,omitempty"` // server-reported per-route p99 ceiling
}

// GateResult is one gate's verdict on one step.
type GateResult struct {
	Gate   string  `json:"gate"`
	Want   float64 `json:"want"`
	Got    float64 `json:"got"`
	Pass   bool    `json:"pass"`
	Detail string  `json:"detail,omitempty"`
}

// SwapResult records the mid-step rolling swap, when one ran.
type SwapResult struct {
	Version string `json:"version"`
	Error   string `json:"error,omitempty"`
}

// Quantiles is one route's obs histogram readout, in milliseconds.
type Quantiles struct {
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	Count int64   `json:"count"`
}

// ServerSnapshot is the server-reported state scraped after a step: the
// enriched /healthz fields plus the internal/obs per-route latency
// histograms from /metrics.json (cumulative since server start).
type ServerSnapshot struct {
	Inflight         int64                `json:"inflight"`
	Requests         int64                `json:"requests"`
	ActiveVersion    string               `json:"active_version,omitempty"`
	SecondsSinceSwap float64              `json:"seconds_since_swap,omitempty"`
	RouteP99Ms       map[string]float64   `json:"route_p99_ms,omitempty"`
	RouteQuantiles   map[string]Quantiles `json:"obs_route_quantiles_ms,omitempty"`
}

// StepResult is one concurrency step's full measurement.
type StepResult struct {
	Concurrency int             `json:"concurrency"`
	TargetQPS   float64         `json:"target_qps,omitempty"`
	DurationSec float64         `json:"duration_sec"`
	Requests    int64           `json:"requests"`
	Errors      int64           `json:"errors"`
	Dropped     int64           `json:"dropped"`
	AchievedQPS float64         `json:"achieved_qps"`
	P50Ms       float64         `json:"p50_ms"`
	P95Ms       float64         `json:"p95_ms"`
	P99Ms       float64         `json:"p99_ms"`
	MaxMs       float64         `json:"max_ms"`
	Swap        *SwapResult     `json:"swap,omitempty"`
	Server      *ServerSnapshot `json:"server,omitempty"`
	Gates       []GateResult    `json:"gates"`
	Pass        bool            `json:"pass"`
}

// Report is the emitted BENCH_LOAD document.
type Report struct {
	Schema        string       `json:"schema"`
	Note          string       `json:"note,omitempty"`
	GeneratedUnix int64        `json:"generated_unix"`
	Target        string       `json:"target"`
	Source        string       `json:"source"`
	SLO           SLO          `json:"slo"`
	Steps         []StepResult `json:"steps"`
	Pass          bool         `json:"pass"`
}

// Write serializes the report to path, indented, trailing newline.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("load: marshal report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// evaluate applies the gate set to one measured step.
func (s SLO) evaluate(res StepResult) []GateResult {
	var gates []GateResult
	if s.MaxP99Ms > 0 {
		gates = append(gates, GateResult{
			Gate: "max_p99_ms", Want: s.MaxP99Ms, Got: res.P99Ms,
			Pass: res.P99Ms <= s.MaxP99Ms,
		})
	}
	if s.MinQPS > 0 {
		gates = append(gates, GateResult{
			Gate: "min_qps", Want: s.MinQPS, Got: res.AchievedQPS,
			Pass: res.AchievedQPS >= s.MinQPS,
		})
	}
	rate := 0.0
	if res.Requests > 0 {
		rate = float64(res.Errors+res.Dropped) / float64(res.Requests)
	}
	gates = append(gates, GateResult{
		Gate: "max_error_rate", Want: s.MaxErrorRate, Got: round3(rate),
		Pass: rate <= s.MaxErrorRate,
	})
	if res.Swap != nil {
		g := GateResult{
			Gate: "zero_dropped_on_swap", Want: 0, Got: float64(res.Dropped),
			Pass: res.Dropped == 0 && res.Swap.Error == "",
		}
		if res.Swap.Error != "" {
			g.Detail = "swap failed: " + res.Swap.Error
		} else {
			g.Detail = "rolling swap to " + res.Swap.Version + " under load"
		}
		gates = append(gates, g)
	}
	if s.MaxServerP99Ms > 0 && res.Server != nil && len(res.Server.RouteP99Ms) > 0 {
		routes := make([]string, 0, len(res.Server.RouteP99Ms))
		for route := range res.Server.RouteP99Ms {
			routes = append(routes, route)
		}
		sort.Strings(routes)
		worst, worstRoute := 0.0, ""
		for _, route := range routes {
			if v := res.Server.RouteP99Ms[route]; v > worst {
				worst, worstRoute = v, route
			}
		}
		gates = append(gates, GateResult{
			Gate: "max_server_p99_ms", Want: s.MaxServerP99Ms, Got: round3(worst),
			Pass: worst <= s.MaxServerP99Ms, Detail: "route " + worstRoute,
		})
	}
	return gates
}

func allPass(gates []GateResult) bool {
	for _, g := range gates {
		if !g.Pass {
			return false
		}
	}
	return true
}

// healthzView is the subset of the server's /healthz the harness reads.
type healthzView struct {
	Requests         int64              `json:"requests"`
	Inflight         int64              `json:"inflight"`
	ActiveVersion    string             `json:"active_version"`
	SecondsSinceSwap float64            `json:"seconds_since_swap"`
	RouteP99Ms       map[string]float64 `json:"route_p99_ms"`
}

// obsSnapshotView is the subset of /metrics.json the harness reads.
type obsSnapshotView struct {
	Histograms map[string]struct {
		Count int64   `json:"count"`
		P50   float64 `json:"p50"`
		P95   float64 `json:"p95"`
		P99   float64 `json:"p99"`
	} `json:"histograms"`
}

// probeServer scrapes /healthz and /metrics.json after a step. Both surfaces
// are optional — a target without telemetry yields a nil snapshot, and the
// server-side gates simply do not arm.
func probeServer(client *http.Client, base string) *ServerSnapshot {
	var hv healthzView
	if !getJSON(client, base+"/healthz", &hv) {
		return nil
	}
	snap := &ServerSnapshot{
		Inflight:         hv.Inflight,
		Requests:         hv.Requests,
		ActiveVersion:    hv.ActiveVersion,
		SecondsSinceSwap: hv.SecondsSinceSwap,
		RouteP99Ms:       hv.RouteP99Ms,
	}
	var ov obsSnapshotView
	if getJSON(client, base+"/metrics.json", &ov) {
		quants := map[string]Quantiles{}
		for _, route := range []string{"ask", "click", "recommend"} {
			key := fmt.Sprintf("intellitag_http_request_seconds{route=%q}", route)
			h, ok := ov.Histograms[key]
			if !ok || h.Count == 0 {
				continue
			}
			quants[route] = Quantiles{
				P50Ms: round3(h.P50 * 1000),
				P95Ms: round3(h.P95 * 1000),
				P99Ms: round3(h.P99 * 1000),
				Count: h.Count,
			}
		}
		if len(quants) > 0 {
			snap.RouteQuantiles = quants
		}
	}
	return snap
}

// getJSON fetches url into v, reporting success.
func getJSON(client *http.Client, url string, v any) bool {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	defer func() {
		_ = resp.Body.Close() // read side; nothing to recover from on close failure
	}()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	return json.NewDecoder(resp.Body).Decode(v) == nil
}
