package load

import (
	"encoding/json"
	"fmt"

	"intellitag/internal/httprr"
)

// Request is one HTTP round-trip the generator will issue against the target.
type Request struct {
	Method string
	Path   string
	Body   string
}

// Stream yields an endless request sequence for one worker. Streams are
// owned by a single worker goroutine and need no locking.
type Stream interface {
	Next() Request
}

// Source hands each worker its own deterministic request stream.
type Source interface {
	Stream(worker int) Stream
	// Name labels the source in the emitted report.
	Name() string
}

// TenantTraffic is one tenant's request universe for the synthetic source.
type TenantTraffic struct {
	Tenant int
	Tags   []int
}

// SyntheticSource generates session traffic shaped like the simulator's: each
// session picks a tenant, then alternates POST /click (a tag from the
// tenant's catalog) with POST /recommend — the click → recommend round-trip
// of the serving API. Everything is derived from (Seed, worker, sequence
// counter) via a splitmix64 stream, so two runs with the same options issue
// the identical request text.
type SyntheticSource struct {
	Seed             int64
	Tenants          []TenantTraffic
	K                int // top-k requested per round-trip
	ClicksPerSession int
}

// Name implements Source.
func (s *SyntheticSource) Name() string { return "synthetic" }

// Stream implements Source. Session ids are partitioned by worker so two
// workers never mutate the same session's history.
func (s *SyntheticSource) Stream(worker int) Stream {
	return &synthStream{
		src:  s,
		rng:  uint64(s.Seed)*0x9E3779B97F4A7C15 + uint64(worker+1)*0xBF58476D1CE4E5B9,
		base: (worker + 1) * 10_000_000,
	}
}

type synthStream struct {
	src     *SyntheticSource
	rng     uint64
	base    int // session-id partition for this worker
	session int // sessions started so far
	tenant  TenantTraffic
	turn    int // round-trips issued within the current session
	lastTag int
}

// next64 advances the stream's splitmix64 state.
func (st *synthStream) next64() uint64 {
	st.rng += 0x9E3779B97F4A7C15
	z := st.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Next implements Stream: two requests per turn (click, then recommend),
// ClicksPerSession turns per session.
func (st *synthStream) Next() Request {
	clicks := st.src.ClicksPerSession
	if clicks < 1 {
		clicks = 3
	}
	k := st.src.K
	if k < 1 {
		k = 5
	}
	if st.turn == 0 || st.turn >= 2*clicks {
		// New session: fresh id, fresh tenant.
		st.session++
		st.turn = 0
		st.tenant = st.src.Tenants[st.next64()%uint64(len(st.src.Tenants))]
	}
	sid := st.base + st.session
	defer func() { st.turn++ }()
	if st.turn%2 == 0 {
		st.lastTag = st.tenant.Tags[st.next64()%uint64(len(st.tenant.Tags))]
		return Request{
			Method: "POST", Path: "/click",
			Body: fmt.Sprintf(`{"tenant":%d,"session":%d,"tag":%d,"k":%d}`, st.tenant.Tenant, sid, st.lastTag, k),
		}
	}
	return Request{
		Method: "POST", Path: "/recommend",
		Body: fmt.Sprintf(`{"tenant":%d,"session":%d,"k":%d}`, st.tenant.Tenant, sid, k),
	}
}

// TraceSource replays the requests of a recorded httprr trace as load: each
// worker cycles the recorded request sequence from its own starting offset,
// so the target sees the recorded traffic shape at arbitrary concurrency.
// Responses are not matched against the recording — the trace supplies the
// traffic, the live server supplies the answers.
type TraceSource struct {
	Label   string
	Records []httprr.Record
}

// NewTraceSource loads a trace file into a source, rejecting corrupt traces
// with httprr's typed errors.
func NewTraceSource(path string) (*TraceSource, error) {
	records, err := httprr.ReadTrace(path)
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("load: trace %s holds no records", path)
	}
	return &TraceSource{Label: "trace:" + path, Records: records}, nil
}

// Name implements Source.
func (s *TraceSource) Name() string {
	if s.Label == "" {
		return "trace"
	}
	return s.Label
}

// Stream implements Source.
func (s *TraceSource) Stream(worker int) Stream {
	return &traceStream{
		records: s.Records,
		next:    worker % len(s.Records),
		base:    (worker + 1) * 10_000_000,
	}
}

type traceStream struct {
	records []httprr.Record
	next    int
	base    int
}

// Next implements Stream, cycling the recorded requests with the session ids
// remapped into this worker's partition.
func (st *traceStream) Next() Request {
	r := st.records[st.next]
	st.next = (st.next + 1) % len(st.records)
	return Request{Method: r.Method, Path: r.Path, Body: sessionRemap(r.ReqBody, st.base)}
}

// sessionRemap rewrites the session field of a JSON request body into a
// worker-partitioned id, so trace replay at high concurrency does not funnel
// every worker into the recorded run's session ids (and their shard locks).
// Bodies without a session field pass through unchanged.
func sessionRemap(body string, base int) string {
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return body
	}
	sid, ok := m["session"].(float64)
	if !ok {
		return body
	}
	m["session"] = base + int(sid)
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return string(out)
}
