package textproc

import (
	"math"
	"testing"
	"testing/quick"

	"intellitag/internal/mat"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("How to change PASSWORD?  quickly-now")
	want := []string{"how", "to", "change", "password", "quickly", "now"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ?! "); len(got) != 0 {
		t.Fatalf("Tokenize punct = %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("支付宝 password")
	if len(got) != 2 || got[0] != "支付宝" {
		t.Fatalf("Tokenize unicode = %v", got)
	}
}

func TestVocabRoundTrip(t *testing.T) {
	v := NewVocab()
	id := v.Add("hello")
	if id == UnknownID {
		t.Fatal("Add returned the unknown id")
	}
	if v.ID("hello") != id || v.Word(id) != "hello" {
		t.Fatal("round trip failed")
	}
	if v.ID("missing") != UnknownID {
		t.Fatal("missing word should map to UnknownID")
	}
	if again := v.Add("hello"); again != id {
		t.Fatal("re-Add changed the id")
	}
}

func TestVocabEncode(t *testing.T) {
	v := NewVocab()
	v.Add("a")
	v.Add("b")
	got := v.Encode([]string{"a", "zz", "b"})
	if got[0] == UnknownID || got[1] != UnknownID || got[2] == UnknownID {
		t.Fatalf("Encode = %v", got)
	}
}

func TestBuildVocabMinCount(t *testing.T) {
	docs := [][]string{{"a", "a", "b"}, {"a", "c"}}
	v := BuildVocab(docs, 2)
	if v.ID("a") == UnknownID {
		t.Fatal("frequent word dropped")
	}
	if v.ID("b") != UnknownID || v.ID("c") != UnknownID {
		t.Fatal("rare words kept")
	}
}

func TestBuildVocabDeterministicOrder(t *testing.T) {
	docs := [][]string{{"x", "y", "z", "x"}}
	a := BuildVocab(docs, 1)
	b := BuildVocab(docs, 1)
	for _, w := range []string{"x", "y", "z"} {
		if a.ID(w) != b.ID(w) {
			t.Fatal("vocab ids not deterministic")
		}
	}
	if a.ID("x") != 1 {
		t.Fatalf("most frequent word should get id 1, got %d", a.ID("x"))
	}
}

func TestCorpusStatsCounts(t *testing.T) {
	docs := [][]string{{"a", "b", "a"}, {"b", "c"}}
	s := NewCorpusStats(docs, 5)
	if s.TermFreq["a"] != 2 || s.DocFreq["a"] != 1 || s.DocFreq["b"] != 2 {
		t.Fatalf("stats wrong: tf=%v df=%v", s.TermFreq, s.DocFreq)
	}
	if s.NumDocs != 2 {
		t.Fatalf("NumDocs = %d", s.NumDocs)
	}
}

func TestIDFOrdering(t *testing.T) {
	docs := [][]string{{"common", "rare1"}, {"common"}, {"common"}}
	s := NewCorpusStats(docs, 5)
	if s.IDF("common") >= s.IDF("rare1") {
		t.Fatal("common word should have lower IDF")
	}
}

func TestPMICooccurringPairHigher(t *testing.T) {
	docs := [][]string{
		{"credit", "card", "limit"},
		{"credit", "card", "apply"},
		{"credit", "card", "cancel"},
		{"weather", "today"},
	}
	s := NewCorpusStats(docs, 5)
	if s.PMI("credit", "card") <= s.PMI("credit", "weather") {
		t.Fatal("PMI of co-occurring pair should exceed never-co-occurring pair")
	}
	if s.PMI("credit", "weather") != -10 {
		t.Fatalf("unseen pair PMI = %v, want floor", s.PMI("credit", "weather"))
	}
}

func TestPMISymmetric(t *testing.T) {
	docs := [][]string{{"a", "b"}, {"a", "b"}, {"c"}}
	s := NewCorpusStats(docs, 5)
	if s.PMI("a", "b") != s.PMI("b", "a") {
		t.Fatal("PMI not symmetric")
	}
}

func TestAvgPMI(t *testing.T) {
	docs := [][]string{{"a", "b", "c"}, {"a", "b"}}
	s := NewCorpusStats(docs, 5)
	if got := s.AvgPMI([]string{"solo"}); got != 0 {
		t.Fatalf("single-word AvgPMI = %v", got)
	}
	if s.AvgPMI([]string{"a", "b"}) <= s.AvgPMI([]string{"a", "zz"}) {
		t.Fatal("co-occurring pair should average higher")
	}
}

func TestTFIDF(t *testing.T) {
	docs := [][]string{{"a", "b"}, {"b"}}
	s := NewCorpusStats(docs, 5)
	doc := map[string]int{"a": 2, "b": 1}
	if s.TFIDF("a", doc, 3) <= s.TFIDF("b", doc, 3) {
		t.Fatal("rarer+more frequent term should score higher")
	}
	if s.TFIDF("a", doc, 0) != 0 {
		t.Fatal("empty doc should score 0")
	}
}

func TestEmbedderDeterministic(t *testing.T) {
	docs := [][]string{{"hello", "world"}}
	e1 := NewEmbedder(16, docs)
	e2 := NewEmbedder(16, docs)
	a, b := e1.EmbedText("hello world"), e2.EmbedText("hello world")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedder not deterministic")
		}
	}
}

func TestEmbedderUnitNorm(t *testing.T) {
	e := NewEmbedder(16, [][]string{{"a", "b", "c"}})
	v := e.EmbedText("a b")
	if math.Abs(mat.Norm(v)-1) > 1e-9 {
		t.Fatalf("norm = %v", mat.Norm(v))
	}
	if mat.Norm(e.Embed(nil)) != 0 {
		t.Fatal("empty input should embed to zero")
	}
}

func TestEmbedderTopicalSimilarity(t *testing.T) {
	// Questions about the same topic should be closer than cross-topic.
	var docs [][]string
	for i := 0; i < 20; i++ {
		docs = append(docs,
			[]string{"credit", "card", "limit", "bank"},
			[]string{"credit", "card", "apply", "bank"},
			[]string{"shipping", "order", "logistics", "delivery"},
			[]string{"shipping", "order", "cancel", "delivery"},
		)
	}
	e := NewEmbedder(32, docs)
	a := e.EmbedText("credit card limit")
	b := e.EmbedText("credit card apply")
	c := e.EmbedText("shipping order delivery")
	if mat.CosineSim(a, b) <= mat.CosineSim(a, c) {
		t.Fatalf("same-topic sim %v <= cross-topic sim %v",
			mat.CosineSim(a, b), mat.CosineSim(a, c))
	}
}

func TestDBSCANSeparatesClusters(t *testing.T) {
	// Two tight clusters on orthogonal axes plus an outlier.
	mk := func(base []float64, jitter float64, g *mat.RNG) []float64 {
		v := make([]float64, len(base))
		for i := range v {
			v[i] = base[i] + g.NormFloat64()*jitter
		}
		n := mat.Norm(v)
		for i := range v {
			v[i] /= n
		}
		return v
	}
	g := mat.NewRNG(1)
	var pts [][]float64
	for i := 0; i < 10; i++ {
		pts = append(pts, mk([]float64{1, 0, 0, 0}, 0.05, g))
	}
	for i := 0; i < 10; i++ {
		pts = append(pts, mk([]float64{0, 1, 0, 0}, 0.05, g))
	}
	pts = append(pts, []float64{0, 0, 0, 1}) // outlier
	labels := DBSCAN(pts, 0.1, 3)
	if labels[0] == Noise || labels[10] == Noise {
		t.Fatal("cluster members labeled noise")
	}
	if labels[0] == labels[10] {
		t.Fatal("distinct clusters merged")
	}
	for i := 1; i < 10; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("cluster 0 split: labels %v", labels[:10])
		}
	}
	if labels[20] != Noise {
		t.Fatalf("outlier labeled %d, want Noise", labels[20])
	}
}

func TestDBSCANAllNoiseWhenSparse(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 1}, {-1, 0}}
	labels := DBSCAN(pts, 0.01, 2)
	for _, l := range labels {
		if l != Noise {
			t.Fatalf("labels = %v", labels)
		}
	}
}

func TestClusterMembers(t *testing.T) {
	members := ClusterMembers([]int{0, 1, 0, Noise, 1})
	if len(members[0]) != 2 || len(members[1]) != 2 {
		t.Fatalf("members = %v", members)
	}
	if _, ok := members[Noise]; ok {
		t.Fatal("noise included in members")
	}
}

// Property: DBSCAN labels are a partition — every non-noise label appears
// with at least one core point, and label values are contiguous from 0.
func TestDBSCANLabelContiguityProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		g := mat.NewRNG(seed)
		n := 5 + g.Intn(20)
		pts := make([][]float64, n)
		for i := range pts {
			v := []float64{g.NormFloat64(), g.NormFloat64(), g.NormFloat64()}
			nn := mat.Norm(v)
			if nn == 0 {
				v = []float64{1, 0, 0}
				nn = 1
			}
			for j := range v {
				v[j] /= nn
			}
			pts[i] = v
		}
		labels := DBSCAN(pts, 0.2, 3)
		maxLabel := -1
		for _, l := range labels {
			if l < Noise {
				return false
			}
			if l > maxLabel {
				maxLabel = l
			}
		}
		seen := make([]bool, maxLabel+1)
		for _, l := range labels {
			if l >= 0 {
				seen[l] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAnswerSelector(t *testing.T) {
	replies := []string{
		"You can change your password in the settings page",
		"Our delivery takes three to five days",
		"Please contact support",
	}
	var tokenized [][]string
	for _, r := range replies {
		tokenized = append(tokenized, Tokenize(r))
	}
	sel := NewAnswerSelector(tokenized)
	if got := sel.SelectAnswer("how to change password", replies); got != 0 {
		t.Fatalf("SelectAnswer = %d, want 0", got)
	}
	if got := sel.SelectAnswer("zzz qqq", replies); got != -1 {
		t.Fatalf("no-overlap SelectAnswer = %d, want -1", got)
	}
}

func TestAnswerSelectorLengthPenalty(t *testing.T) {
	long := make([]string, 100)
	for i := range long {
		long[i] = "filler"
	}
	long[0] = "password"
	short := []string{"change", "password", "here"}
	sel := NewAnswerSelector([][]string{long, short})
	q := Tokenize("change password")
	if sel.Score(q, long) >= sel.Score(q, short) {
		t.Fatal("long reply should be penalized")
	}
}

func TestNormalizeQuestion(t *testing.T) {
	if NormalizeQuestion("How  TO Change?") != "how to change" {
		t.Fatalf("got %q", NormalizeQuestion("How  TO Change?"))
	}
}
