// Package textproc supplies the text-processing substrate of IntelliTag:
// tokenization, vocabularies, TF-IDF and PMI statistics, a lightweight text
// embedder, DBSCAN clustering of question embeddings and an extractive
// answer selector. These replace the pretrained-Transformer text plumbing of
// the paper's data-construction pipeline (Section III-A).
package textproc

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenize lowercases s and splits it into word tokens, treating any
// non-letter/non-digit rune as a separator.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// Vocab is a bidirectional word <-> id mapping. ID 0 is reserved for the
// unknown token.
type Vocab struct {
	byWord map[string]int
	words  []string
}

// UnknownID is the id returned for out-of-vocabulary words.
const UnknownID = 0

// NewVocab returns a vocabulary containing only the unknown token.
func NewVocab() *Vocab {
	return &Vocab{byWord: map[string]int{"<unk>": 0}, words: []string{"<unk>"}}
}

// Add inserts word if absent and returns its id.
func (v *Vocab) Add(word string) int {
	if id, ok := v.byWord[word]; ok {
		return id
	}
	id := len(v.words)
	v.byWord[word] = id
	v.words = append(v.words, word)
	return id
}

// ID returns the id for word, or UnknownID if absent.
func (v *Vocab) ID(word string) int {
	if id, ok := v.byWord[word]; ok {
		return id
	}
	return UnknownID
}

// Word returns the word for id (panics if out of range).
func (v *Vocab) Word(id int) string { return v.words[id] }

// Len returns the vocabulary size including the unknown token.
func (v *Vocab) Len() int { return len(v.words) }

// Encode maps tokens to ids using ID (unknown words map to UnknownID).
func (v *Vocab) Encode(tokens []string) []int {
	ids := make([]int, len(tokens))
	for i, t := range tokens {
		ids[i] = v.ID(t)
	}
	return ids
}

// BuildVocab constructs a vocabulary from documents, keeping words that
// occur at least minCount times, in deterministic frequency-then-lexical
// order.
func BuildVocab(docs [][]string, minCount int) *Vocab {
	counts := map[string]int{}
	for _, doc := range docs {
		for _, w := range doc {
			counts[w]++
		}
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	type wc struct {
		w string
		c int
	}
	var list []wc
	for _, w := range words {
		if c := counts[w]; c >= minCount {
			list = append(list, wc{w, c})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		return list[i].w < list[j].w
	})
	v := NewVocab()
	for _, e := range list {
		v.Add(e.w)
	}
	return v
}
