package textproc

import "strings"

// AnswerSelector performs extractive answer selection: given a question and a
// set of candidate reply texts (the paper's "user's high-rated content to
// questions replied by manual customer service"), it scores candidates and
// picks the best span. It substitutes for the machine-reading-comprehension
// model of Section III-A with an overlap + brevity scorer that preserves the
// pipeline's behavior: the reply most lexically aligned with the question
// wins.
type AnswerSelector struct {
	stats *CorpusStats
}

// NewAnswerSelector builds a selector over a tokenized reply corpus.
func NewAnswerSelector(replies [][]string) *AnswerSelector {
	return &AnswerSelector{stats: NewCorpusStats(replies, 5)}
}

// Score rates how well a candidate reply answers a question: IDF-weighted
// token overlap, lightly penalized for extreme length.
func (a *AnswerSelector) Score(question, reply []string) float64 {
	if len(reply) == 0 {
		return 0
	}
	qset := map[string]bool{}
	for _, w := range question {
		qset[w] = true
	}
	var overlap float64
	for _, w := range reply {
		if qset[w] {
			overlap += a.stats.IDF(w)
		}
	}
	// Mild length normalization keeps rambling replies from winning on raw
	// overlap alone.
	lengthPenalty := 1.0
	if len(reply) > 40 {
		lengthPenalty = 40.0 / float64(len(reply))
	}
	return overlap * lengthPenalty
}

// SelectAnswer returns the index of the best reply for the question, or -1
// when no candidate scores above zero.
func (a *AnswerSelector) SelectAnswer(question string, replies []string) int {
	q := Tokenize(question)
	best, bestScore := -1, 0.0
	for i, r := range replies {
		if s := a.Score(q, Tokenize(r)); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// NormalizeQuestion canonicalizes a question string for dedup comparisons.
func NormalizeQuestion(q string) string {
	return strings.Join(Tokenize(q), " ")
}
