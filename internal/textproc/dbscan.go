package textproc

import "intellitag/internal/mat"

// DBSCAN clusters points by density (Ester et al. 1996), as the paper uses to
// group user questions before choosing representative questions. Distance is
// cosine distance (1 - cosine similarity), appropriate for unit-norm text
// embeddings.
//
// The returned slice assigns each point a cluster id >= 0, or Noise (-1).
func DBSCAN(points [][]float64, eps float64, minPts int) []int {
	const (
		unvisited = -2
		// Noise marks points not assigned to any cluster.
		noise = -1
	)
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	neighborsOf := func(i int) []int {
		var nb []int
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if 1-mat.CosineSim(points[i], points[j]) <= eps {
				nb = append(nb, j)
			}
		}
		return nb
	}
	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighborsOf(i)
		if len(nb)+1 < minPts {
			labels[i] = noise
			continue
		}
		labels[i] = cluster
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == noise {
				labels[j] = cluster // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = cluster
			nbj := neighborsOf(j)
			if len(nbj)+1 >= minPts {
				queue = append(queue, nbj...)
			}
		}
		cluster++
	}
	return labels
}

// Noise is the DBSCAN label for points in no cluster.
const Noise = -1

// ClusterMembers groups point indices by cluster id, skipping noise.
func ClusterMembers(labels []int) map[int][]int {
	out := map[int][]int{}
	for i, l := range labels {
		if l >= 0 {
			out[l] = append(out[l], i)
		}
	}
	return out
}
