package textproc

import (
	"hash/fnv"
	"math"
	"sort"

	"intellitag/internal/mat"
)

// Embedder turns text into fixed-dimension vectors. It substitutes for the
// pretrained Transformer the paper feeds into DBSCAN (Section III-A): each
// word receives a deterministic hash-seeded base vector refined by corpus
// co-occurrence smoothing, and a sentence embedding is the IDF-weighted mean
// of its word vectors. The result preserves what the pipeline needs — texts
// about the same topic land near each other — without pretrained weights.
type Embedder struct {
	Dim     int
	stats   *CorpusStats
	vecs    map[string][]float64
	smoothK int
}

// NewEmbedder builds an embedder over the tokenized corpus.
func NewEmbedder(dim int, docs [][]string) *Embedder {
	e := &Embedder{
		Dim:     dim,
		stats:   NewCorpusStats(docs, 5),
		vecs:    map[string][]float64{},
		smoothK: 1,
	}
	// Base hash vectors.
	for w := range e.stats.TermFreq {
		e.vecs[w] = hashVector(w, dim)
	}
	// One smoothing pass: pull co-occurring words together so synonym-ish
	// words used in the same questions embed nearby. Both loops iterate in
	// sorted order: the AXPY accumulation sums floats, so walking the vecs
	// or cooc maps directly would make the embeddings run-dependent.
	words := make([]string, 0, len(e.vecs))
	for w := range e.vecs {
		words = append(words, w)
	}
	sort.Strings(words)
	pairs := make([][2]string, 0, len(e.stats.coocCount))
	for pair := range e.stats.coocCount {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	smoothed := make(map[string][]float64, len(e.vecs))
	for _, w := range words {
		acc := append([]float64(nil), e.vecs[w]...)
		var weight float64 = 1
		for _, pair := range pairs {
			var other string
			switch {
			case pair[0] == w:
				other = pair[1]
			case pair[1] == w:
				other = pair[0]
			default:
				continue
			}
			wgt := math.Log1p(float64(e.stats.coocCount[pair])) * 0.3
			mat.AXPY(wgt, e.vecs[other], acc)
			weight += wgt
		}
		for i := range acc {
			acc[i] /= weight
		}
		smoothed[w] = acc
	}
	e.vecs = smoothed
	return e
}

// hashVector returns a deterministic unit vector derived from the word.
func hashVector(w string, dim int) []float64 {
	h := fnv.New64a()
	h.Write([]byte(w))
	g := mat.NewRNG(int64(h.Sum64()))
	v := make([]float64, dim)
	for i := range v {
		v[i] = g.NormFloat64()
	}
	n := mat.Norm(v)
	for i := range v {
		v[i] /= n
	}
	return v
}

// WordVec returns the embedding of w (a deterministic hash vector for
// out-of-corpus words).
func (e *Embedder) WordVec(w string) []float64 {
	if v, ok := e.vecs[w]; ok {
		return v
	}
	return hashVector(w, e.Dim)
}

// Embed returns the IDF-weighted mean word vector of the tokens, normalized
// to unit length (the zero vector for empty input).
func (e *Embedder) Embed(tokens []string) []float64 {
	out := make([]float64, e.Dim)
	if len(tokens) == 0 {
		return out
	}
	var total float64
	for _, w := range tokens {
		idf := e.stats.IDF(w)
		mat.AXPY(idf, e.WordVec(w), out)
		total += idf
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	if n := mat.Norm(out); n > 0 {
		for i := range out {
			out[i] /= n
		}
	}
	return out
}

// EmbedText tokenizes and embeds raw text.
func (e *Embedder) EmbedText(s string) []float64 { return e.Embed(Tokenize(s)) }
