package textproc

import (
	"math"
)

// CorpusStats holds the document-frequency, term-frequency and co-occurrence
// statistics the tag post-processing rules need (Section III-B: tag
// frequency, IDF, PMI).
type CorpusStats struct {
	NumDocs   int
	TermFreq  map[string]int // total occurrences across the corpus
	DocFreq   map[string]int // number of documents containing the term
	coocCount map[[2]string]int
	totalWin  int // number of co-occurrence windows observed
}

// NewCorpusStats computes statistics over tokenized documents. Co-occurrence
// is counted within a sliding window of the given size (window >= 2) for PMI.
func NewCorpusStats(docs [][]string, window int) *CorpusStats {
	if window < 2 {
		window = 2
	}
	s := &CorpusStats{
		NumDocs:   len(docs),
		TermFreq:  map[string]int{},
		DocFreq:   map[string]int{},
		coocCount: map[[2]string]int{},
	}
	for _, doc := range docs {
		seen := map[string]bool{}
		for _, w := range doc {
			s.TermFreq[w]++
			if !seen[w] {
				seen[w] = true
				s.DocFreq[w]++
			}
		}
		for i := range doc {
			for j := i + 1; j < len(doc) && j < i+window; j++ {
				s.coocCount[pairKey(doc[i], doc[j])]++
				s.totalWin++
			}
		}
	}
	return s
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// IDF returns the smoothed inverse document frequency of term.
func (s *CorpusStats) IDF(term string) float64 {
	df := s.DocFreq[term]
	return math.Log(float64(s.NumDocs+1)/float64(df+1)) + 1
}

// PMI returns the pointwise mutual information between two words, the rule
// (4) signal of the paper's post-processing ("averaged PMI between any two
// words in a tag reflects semantic consistency"). Unseen pairs return a
// strongly negative score.
func (s *CorpusStats) PMI(a, b string) float64 {
	const floor = -10
	if s.totalWin == 0 {
		return floor
	}
	co := s.coocCount[pairKey(a, b)]
	if co == 0 {
		return floor
	}
	total := 0
	for _, c := range s.TermFreq {
		total += c
	}
	pa := float64(s.TermFreq[a]) / float64(total)
	pb := float64(s.TermFreq[b]) / float64(total)
	pab := float64(co) / float64(s.totalWin)
	if pa == 0 || pb == 0 {
		return floor
	}
	return math.Log(pab / (pa * pb))
}

// AvgPMI returns the mean PMI over all unordered word pairs of a multi-word
// tag; single-word tags score 0 (vacuously consistent).
func (s *CorpusStats) AvgPMI(words []string) float64 {
	if len(words) < 2 {
		return 0
	}
	var sum float64
	var n int
	for i := range words {
		for j := i + 1; j < len(words); j++ {
			sum += s.PMI(words[i], words[j])
			n++
		}
	}
	return sum / float64(n)
}

// TFIDF returns the tf-idf weight of term within a document represented by
// its token counts.
func (s *CorpusStats) TFIDF(term string, docCounts map[string]int, docLen int) float64 {
	if docLen == 0 {
		return 0
	}
	tf := float64(docCounts[term]) / float64(docLen)
	return tf * s.IDF(term)
}
