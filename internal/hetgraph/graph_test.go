package hetgraph

import (
	"path/filepath"
	"testing"

	"intellitag/internal/mat"
)

// testGraph builds a small graph:
//
//	tags:    0,1,2,3
//	RQs:     0,1,2
//	tenants: 0,1
//	asc:  t0-q0, t1-q0, t1-q1, t2-q1, t3-q2
//	crl:  q0-e0, q1-e0, q2-e1
//	clk:  t0-t1
//	cst:  q0-q1
func testGraph() *Graph {
	g := New(4, 3, 2)
	g.AddAsc(0, 0)
	g.AddAsc(1, 0)
	g.AddAsc(1, 1)
	g.AddAsc(2, 1)
	g.AddAsc(3, 2)
	g.AddCrl(0, 0)
	g.AddCrl(1, 0)
	g.AddCrl(2, 1)
	g.AddClk(0, 1)
	g.AddCst(0, 1)
	return g
}

func idsEqual(a []NodeID, b ...NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEdgeCounts(t *testing.T) {
	g := testGraph()
	if g.EdgeCount(Asc) != 5 || g.EdgeCount(Crl) != 3 || g.EdgeCount(Clk) != 1 || g.EdgeCount(Cst) != 1 {
		t.Fatalf("counts = %+v", g.Stats())
	}
	if g.TotalEdges() != 10 {
		t.Fatalf("TotalEdges = %d", g.TotalEdges())
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	g := testGraph()
	g.AddAsc(0, 0)
	g.AddClk(1, 0) // reverse direction of existing clk
	g.AddClk(2, 2) // self loop
	if g.EdgeCount(Asc) != 5 || g.EdgeCount(Clk) != 1 {
		t.Fatalf("duplicates changed counts: %+v", g.Stats())
	}
}

func TestAdjacencyAccessors(t *testing.T) {
	g := testGraph()
	if !idsEqual(g.TagsOfRQ(0), 0, 1) {
		t.Fatalf("TagsOfRQ(0) = %v", g.TagsOfRQ(0))
	}
	if !idsEqual(g.RQsOfTag(1), 0, 1) {
		t.Fatalf("RQsOfTag(1) = %v", g.RQsOfTag(1))
	}
	if !idsEqual(g.TenantOfRQ(2), 1) {
		t.Fatalf("TenantOfRQ(2) = %v", g.TenantOfRQ(2))
	}
	if !idsEqual(g.RQsOfTenant(0), 0, 1) {
		t.Fatalf("RQsOfTenant(0) = %v", g.RQsOfTenant(0))
	}
	if !idsEqual(g.CoClickedTags(0), 1) || !idsEqual(g.CoClickedTags(1), 0) {
		t.Fatal("clk not symmetric")
	}
	if !idsEqual(g.CoConsultedRQs(1), 0) {
		t.Fatalf("CoConsultedRQs(1) = %v", g.CoConsultedRQs(1))
	}
}

func TestTenantOfTagAndTagsOfTenant(t *testing.T) {
	g := testGraph()
	if !idsEqual(g.TenantOfTag(1), 0) {
		t.Fatalf("TenantOfTag(1) = %v", g.TenantOfTag(1))
	}
	if !idsEqual(g.TagsOfTenant(0), 0, 1, 2) {
		t.Fatalf("TagsOfTenant(0) = %v", g.TagsOfTenant(0))
	}
	if !idsEqual(g.TagsOfTenant(1), 3) {
		t.Fatalf("TagsOfTenant(1) = %v", g.TagsOfTenant(1))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := testGraph()
	for _, fn := range []func(){
		func() { g.AddAsc(99, 0) },
		func() { g.AddAsc(0, 99) },
		func() { g.AddCrl(99, 0) },
		func() { g.AddCrl(0, 99) },
		func() { g.AddClk(-1, 0) },
		func() { g.AddCst(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMetapathTT(t *testing.T) {
	g := testGraph()
	if !idsEqual(g.MetapathNeighbors(0, TT), 1) {
		t.Fatalf("TT(0) = %v", g.MetapathNeighbors(0, TT))
	}
	if len(g.MetapathNeighbors(2, TT)) != 0 {
		t.Fatal("tag 2 has no clk edges")
	}
}

func TestMetapathTQT(t *testing.T) {
	g := testGraph()
	// t0 shares q0 with t1.
	if !idsEqual(g.MetapathNeighbors(0, TQT), 1) {
		t.Fatalf("TQT(0) = %v", g.MetapathNeighbors(0, TQT))
	}
	// t1 shares q0 with t0 and q1 with t2.
	if !idsEqual(g.MetapathNeighbors(1, TQT), 0, 2) {
		t.Fatalf("TQT(1) = %v", g.MetapathNeighbors(1, TQT))
	}
}

func TestMetapathTQQT(t *testing.T) {
	g := testGraph()
	// t0 -> q0 -cst-> q1 -> {t1, t2}.
	if !idsEqual(g.MetapathNeighbors(0, TQQT), 1, 2) {
		t.Fatalf("TQQT(0) = %v", g.MetapathNeighbors(0, TQQT))
	}
	// t3 -> q2 has no cst edges.
	if len(g.MetapathNeighbors(3, TQQT)) != 0 {
		t.Fatalf("TQQT(3) = %v", g.MetapathNeighbors(3, TQQT))
	}
}

func TestMetapathTQEQT(t *testing.T) {
	g := testGraph()
	// t0 -> q0 -> e0 -> q1 -> {t1, t2}; q0 itself excluded, so t1,t2.
	if !idsEqual(g.MetapathNeighbors(0, TQEQT), 1, 2) {
		t.Fatalf("TQEQT(0) = %v", g.MetapathNeighbors(0, TQEQT))
	}
	// t3's tenant e1 has only q2, excluded as the source RQ -> empty.
	if len(g.MetapathNeighbors(3, TQEQT)) != 0 {
		t.Fatalf("TQEQT(3) = %v", g.MetapathNeighbors(3, TQEQT))
	}
}

func TestMetapathExcludesSelf(t *testing.T) {
	g := testGraph()
	for _, m := range AllMetapaths {
		for tag := NodeID(0); tag < 4; tag++ {
			for _, n := range g.MetapathNeighbors(tag, m) {
				if n == tag {
					t.Fatalf("metapath %v neighbor set of %d includes itself", m, tag)
				}
			}
		}
	}
}

// Property: metapath neighbor relation is symmetric for every path type on a
// randomly generated graph — if b is reachable from a via rho, then a is
// reachable from b.
func TestMetapathSymmetryProperty(t *testing.T) {
	rng := mat.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		nT, nQ, nE := 3+rng.Intn(8), 3+rng.Intn(8), 1+rng.Intn(3)
		g := New(nT, nQ, nE)
		for i := 0; i < nT*2; i++ {
			g.AddAsc(NodeID(rng.Intn(nT)), NodeID(rng.Intn(nQ)))
		}
		for q := 0; q < nQ; q++ {
			g.AddCrl(NodeID(q), NodeID(rng.Intn(nE)))
		}
		for i := 0; i < nT; i++ {
			g.AddClk(NodeID(rng.Intn(nT)), NodeID(rng.Intn(nT)))
		}
		for i := 0; i < nQ; i++ {
			g.AddCst(NodeID(rng.Intn(nQ)), NodeID(rng.Intn(nQ)))
		}
		for _, m := range AllMetapaths {
			for a := 0; a < nT; a++ {
				for _, b := range g.MetapathNeighbors(NodeID(a), m) {
					back := g.MetapathNeighbors(b, m)
					if !containsID(back, NodeID(a)) {
						t.Fatalf("trial %d: metapath %v not symmetric: %d->%d but not back", trial, m, a, b)
					}
				}
			}
		}
	}
}

func TestSampledMetapathNeighborsCaps(t *testing.T) {
	g := New(10, 5, 1)
	for i := 1; i < 10; i++ {
		g.AddClk(0, NodeID(i))
	}
	rng := mat.NewRNG(1)
	got := g.SampledMetapathNeighbors(0, TT, 4, rng)
	if len(got) != 4 {
		t.Fatalf("sampled %d neighbors, want 4", len(got))
	}
	seen := map[NodeID]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatal("duplicate in sample")
		}
		seen[n] = true
	}
	// Small sets returned untouched.
	full := g.SampledMetapathNeighbors(0, TT, 100, rng)
	if len(full) != 9 {
		t.Fatalf("uncapped sample = %d", len(full))
	}
}

func TestNeighborCacheMatchesDirect(t *testing.T) {
	g := testGraph()
	c := BuildNeighborCache(g, 0, mat.NewRNG(1))
	for _, m := range AllMetapaths {
		for tag := NodeID(0); tag < 4; tag++ {
			direct := g.MetapathNeighbors(tag, m)
			cached := c.Neighbors(tag, m)
			if !idsEqual(cached, direct...) {
				t.Fatalf("cache mismatch for %v(%d): %v vs %v", m, tag, cached, direct)
			}
		}
	}
}

func TestNeighborCacheCap(t *testing.T) {
	g := New(10, 5, 1)
	for i := 1; i < 10; i++ {
		g.AddClk(0, NodeID(i))
	}
	c := BuildNeighborCache(g, 3, mat.NewRNG(2))
	if len(c.Neighbors(0, TT)) != 3 {
		t.Fatalf("cache cap not applied: %d", len(c.Neighbors(0, TT)))
	}
}

func TestRandomWalk(t *testing.T) {
	g := testGraph()
	rng := mat.NewRNG(3)
	walk := g.RandomWalk(0, TQT, 5, rng)
	if walk[0] != 0 {
		t.Fatal("walk must start at source")
	}
	if len(walk) < 2 {
		t.Fatalf("walk too short: %v", walk)
	}
	// Isolated node: walk stops immediately.
	solo := g.RandomWalk(3, TT, 5, rng)
	if len(solo) != 1 {
		t.Fatalf("isolated walk = %v", solo)
	}
}

func TestStringers(t *testing.T) {
	if TagNode.String() != "T" || RQNode.String() != "Q" || TenantNode.String() != "E" {
		t.Fatal("NodeType names wrong")
	}
	if Asc.String() != "asc" || Crl.String() != "crl" || Clk.String() != "clk" || Cst.String() != "cst" {
		t.Fatal("EdgeType names wrong")
	}
	names := map[Metapath]string{TT: "TT", TQT: "TQT", TQQT: "TQQT", TQEQT: "TQEQT"}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%v != %s", m, want)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := testGraph()
	path := filepath.Join(t.TempDir(), "graph.gob")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Stats() != g.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", g2.Stats(), g.Stats())
	}
	for _, m := range AllMetapaths {
		for tag := NodeID(0); tag < 4; tag++ {
			a := g.MetapathNeighbors(tag, m)
			b := g2.MetapathNeighbors(tag, m)
			if !idsEqual(b, a...) {
				t.Fatalf("metapath %v neighbors differ for tag %d", m, tag)
			}
		}
	}
}

func TestLoadMissingGraph(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "none.gob")); err == nil {
		t.Fatal("expected error")
	}
}
