// Package hetgraph implements the TagRec heterogeneous graph of the paper's
// Definition 1: typed nodes (Tags, RQs, tEnants), typed edges (asc, crl, clk,
// cst) and the four predefined TagRec metapaths of Definition 2
// {TT, TQT, TQQT, TQEQT}, together with metapath-neighbor expansion and
// sampling used by the GNN layers.
package hetgraph

import (
	"fmt"
	"sort"

	"intellitag/internal/mat"
)

// NodeType enumerates the node types A = {T, Q, E}.
type NodeType uint8

// Node types of the TagRec heterogeneous graph.
const (
	TagNode    NodeType = iota // T: tags mined from RQs
	RQNode                     // Q: representative questions
	TenantNode                 // E: tenants (SMEs)
)

// String names the node type.
func (t NodeType) String() string {
	switch t {
	case TagNode:
		return "T"
	case RQNode:
		return "Q"
	case TenantNode:
		return "E"
	}
	return fmt.Sprintf("NodeType(%d)", uint8(t))
}

// EdgeType enumerates the relation types R = {asc, crl, clk, cst}.
type EdgeType uint8

// Edge types of the TagRec heterogeneous graph.
const (
	Asc EdgeType = iota // association: tag included in RQ (T-Q)
	Crl                 // correlation: RQ belongs to tenant (Q-E)
	Clk                 // co-clicking: two tags clicked successively (T-T)
	Cst                 // co-consulting: two RQs consulted successively (Q-Q)
)

// String names the edge type.
func (e EdgeType) String() string {
	switch e {
	case Asc:
		return "asc"
	case Crl:
		return "crl"
	case Clk:
		return "clk"
	case Cst:
		return "cst"
	}
	return fmt.Sprintf("EdgeType(%d)", uint8(e))
}

// NodeID identifies a node within its type's id space (dense, 0-based).
type NodeID int

// Graph is a TagRec heterogeneous graph. Adjacency is stored per edge type
// and direction; all four relations are symmetric in meaning, so edges are
// indexed from both endpoints.
type Graph struct {
	NumTags, NumRQs, NumTenants int

	// adjacency[edgeType] maps a source node id to sorted neighbor ids.
	// Which id space applies depends on the edge type and direction.
	ascTagToRQ  [][]NodeID // tag -> RQs
	ascRQToTag  [][]NodeID // RQ -> tags
	crlRQToTen  [][]NodeID // RQ -> tenants (usually exactly one)
	crlTenToRQ  [][]NodeID // tenant -> RQs
	clkTagToTag [][]NodeID // tag -> co-clicked tags
	cstRQToRQ   [][]NodeID // RQ -> co-consulted RQs

	edgeCounts map[EdgeType]int
}

// New returns an empty graph with the given node populations.
func New(numTags, numRQs, numTenants int) *Graph {
	return &Graph{
		NumTags: numTags, NumRQs: numRQs, NumTenants: numTenants,
		ascTagToRQ:  make([][]NodeID, numTags),
		ascRQToTag:  make([][]NodeID, numRQs),
		crlRQToTen:  make([][]NodeID, numRQs),
		crlTenToRQ:  make([][]NodeID, numTenants),
		clkTagToTag: make([][]NodeID, numTags),
		cstRQToRQ:   make([][]NodeID, numRQs),
		edgeCounts:  map[EdgeType]int{},
	}
}

// AddAsc records that tag t is included in RQ q.
func (g *Graph) AddAsc(t, q NodeID) {
	g.checkTag(t)
	g.checkRQ(q)
	if containsID(g.ascTagToRQ[t], q) {
		return
	}
	g.ascTagToRQ[t] = append(g.ascTagToRQ[t], q)
	g.ascRQToTag[q] = append(g.ascRQToTag[q], t)
	g.edgeCounts[Asc]++
}

// AddCrl records that RQ q belongs to tenant e.
func (g *Graph) AddCrl(q, e NodeID) {
	g.checkRQ(q)
	g.checkTenant(e)
	if containsID(g.crlRQToTen[q], e) {
		return
	}
	g.crlRQToTen[q] = append(g.crlRQToTen[q], e)
	g.crlTenToRQ[e] = append(g.crlTenToRQ[e], q)
	g.edgeCounts[Crl]++
}

// AddClk records that tags a and b were clicked successively in a session.
func (g *Graph) AddClk(a, b NodeID) {
	g.checkTag(a)
	g.checkTag(b)
	if a == b || containsID(g.clkTagToTag[a], b) {
		return
	}
	g.clkTagToTag[a] = append(g.clkTagToTag[a], b)
	g.clkTagToTag[b] = append(g.clkTagToTag[b], a)
	g.edgeCounts[Clk]++
}

// AddCst records that RQs a and b were consulted successively in a session.
func (g *Graph) AddCst(a, b NodeID) {
	g.checkRQ(a)
	g.checkRQ(b)
	if a == b || containsID(g.cstRQToRQ[a], b) {
		return
	}
	g.cstRQToRQ[a] = append(g.cstRQToRQ[a], b)
	g.cstRQToRQ[b] = append(g.cstRQToRQ[b], a)
	g.edgeCounts[Cst]++
}

// EdgeCount returns the number of (undirected) edges of the given type.
func (g *Graph) EdgeCount(t EdgeType) int { return g.edgeCounts[t] }

// TotalEdges returns the number of edges across all relation types.
func (g *Graph) TotalEdges() int {
	var n int
	for _, c := range g.edgeCounts {
		n += c
	}
	return n
}

// TagsOfRQ returns the tags associated with RQ q.
func (g *Graph) TagsOfRQ(q NodeID) []NodeID { return g.ascRQToTag[q] }

// RQsOfTag returns the RQs containing tag t.
func (g *Graph) RQsOfTag(t NodeID) []NodeID { return g.ascTagToRQ[t] }

// TenantOfRQ returns the tenants owning RQ q (usually one).
func (g *Graph) TenantOfRQ(q NodeID) []NodeID { return g.crlRQToTen[q] }

// RQsOfTenant returns the RQs of tenant e.
func (g *Graph) RQsOfTenant(e NodeID) []NodeID { return g.crlTenToRQ[e] }

// CoClickedTags returns tags co-clicked with t.
func (g *Graph) CoClickedTags(t NodeID) []NodeID { return g.clkTagToTag[t] }

// CoConsultedRQs returns RQs co-consulted with q.
func (g *Graph) CoConsultedRQs(q NodeID) []NodeID { return g.cstRQToRQ[q] }

// TenantOfTag returns the set of tenants reachable from tag t via asc+crl,
// i.e. the tenants whose RQs mention the tag.
func (g *Graph) TenantOfTag(t NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, q := range g.ascTagToRQ[t] {
		for _, e := range g.crlRQToTen[q] {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TagsOfTenant returns all tags whose RQs belong to tenant e.
func (g *Graph) TagsOfTenant(e NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, q := range g.crlTenToRQ[e] {
		for _, t := range g.ascRQToTag[q] {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *Graph) checkTag(t NodeID) {
	if t < 0 || int(t) >= g.NumTags {
		panic(fmt.Sprintf("hetgraph: tag id %d out of range [0,%d)", t, g.NumTags))
	}
}

func (g *Graph) checkRQ(q NodeID) {
	if q < 0 || int(q) >= g.NumRQs {
		panic(fmt.Sprintf("hetgraph: RQ id %d out of range [0,%d)", q, g.NumRQs))
	}
}

func (g *Graph) checkTenant(e NodeID) {
	if e < 0 || int(e) >= g.NumTenants {
		panic(fmt.Sprintf("hetgraph: tenant id %d out of range [0,%d)", e, g.NumTenants))
	}
}

func containsID(s []NodeID, x NodeID) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// Stats summarizes the graph for reporting (Table II analog).
type Stats struct {
	Tags, RQs, Tenants int
	Asc, Crl, Clk, Cst int
}

// Stats returns node and edge counts.
func (g *Graph) Stats() Stats {
	return Stats{
		Tags: g.NumTags, RQs: g.NumRQs, Tenants: g.NumTenants,
		Asc: g.edgeCounts[Asc], Crl: g.edgeCounts[Crl],
		Clk: g.edgeCounts[Clk], Cst: g.edgeCounts[Cst],
	}
}

// sampleUpTo returns at most k distinct elements of s, deterministically when
// len(s) <= k and uniformly at random otherwise.
func sampleUpTo(s []NodeID, k int, rng *mat.RNG) []NodeID {
	if len(s) <= k {
		return s
	}
	idx := rng.Perm(len(s))[:k]
	out := make([]NodeID, k)
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}
