package hetgraph

import (
	"fmt"
	"sort"

	"intellitag/internal/mat"
)

// Metapath identifies one of the four predefined TagRec metapaths of
// Definition 2, each an information-transmission path starting and ending
// with tags.
type Metapath uint8

// The TagRec metapath set P = {TT, TQT, TQQT, TQEQT}.
const (
	// TT: two tags successively clicked by a user in a session
	// (T --clk--> T).
	TT Metapath = iota
	// TQT: two tags associated with the same RQ
	// (T --asc--> Q --asc--> T).
	TQT
	// TQQT: two tags associated with two related RQs retrieved by
	// successively proposed questions (T --asc--> Q --cst--> Q --asc--> T).
	TQQT
	// TQEQT: two tags mined from the KB warehouse of the same tenant
	// (T --asc--> Q --crl--> E --crl--> Q --asc--> T).
	TQEQT
)

// AllMetapaths lists the TagRec metapath set in canonical order.
var AllMetapaths = []Metapath{TT, TQT, TQQT, TQEQT}

// String names the metapath.
func (m Metapath) String() string {
	switch m {
	case TT:
		return "TT"
	case TQT:
		return "TQT"
	case TQQT:
		return "TQQT"
	case TQEQT:
		return "TQEQT"
	}
	return fmt.Sprintf("Metapath(%d)", uint8(m))
}

// MetapathNeighbors returns the distinct tags reachable from tag t via the
// metapath, excluding t itself, in ascending id order. This realizes the
// neighbor sets N_t^rho of the paper's eq. 4.
func (g *Graph) MetapathNeighbors(t NodeID, m Metapath) []NodeID {
	seen := map[NodeID]bool{t: true}
	var out []NodeID
	add := func(x NodeID) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	switch m {
	case TT:
		for _, n := range g.clkTagToTag[t] {
			add(n)
		}
	case TQT:
		for _, q := range g.ascTagToRQ[t] {
			for _, n := range g.ascRQToTag[q] {
				add(n)
			}
		}
	case TQQT:
		for _, q := range g.ascTagToRQ[t] {
			for _, q2 := range g.cstRQToRQ[q] {
				for _, n := range g.ascRQToTag[q2] {
					add(n)
				}
			}
		}
	case TQEQT:
		for _, q := range g.ascTagToRQ[t] {
			for _, e := range g.crlRQToTen[q] {
				for _, q2 := range g.crlTenToRQ[e] {
					if q2 == q {
						continue
					}
					for _, n := range g.ascRQToTag[q2] {
						add(n)
					}
				}
			}
		}
	default:
		panic(fmt.Sprintf("hetgraph: unknown metapath %v", m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SampledMetapathNeighbors returns at most maxNeighbors metapath neighbors,
// sampling uniformly when the full set is larger. GNN layers use this to
// bound per-node aggregation cost on hub tags.
func (g *Graph) SampledMetapathNeighbors(t NodeID, m Metapath, maxNeighbors int, rng *mat.RNG) []NodeID {
	return sampleUpTo(g.MetapathNeighbors(t, m), maxNeighbors, rng)
}

// NeighborCache precomputes (optionally sampled) metapath neighbor lists for
// every tag so training epochs do not repeat graph traversals.
type NeighborCache struct {
	// ByPath[m][t] lists the neighbors of tag t under metapath m.
	ByPath map[Metapath][][]NodeID
}

// BuildNeighborCache materializes neighbor lists for all tags and metapaths,
// capping each list at maxNeighbors (0 means unlimited).
func BuildNeighborCache(g *Graph, maxNeighbors int, rng *mat.RNG) *NeighborCache {
	c := &NeighborCache{ByPath: map[Metapath][][]NodeID{}}
	for _, m := range AllMetapaths {
		lists := make([][]NodeID, g.NumTags)
		for t := 0; t < g.NumTags; t++ {
			nb := g.MetapathNeighbors(NodeID(t), m)
			if maxNeighbors > 0 && len(nb) > maxNeighbors {
				nb = sampleUpTo(nb, maxNeighbors, rng)
			}
			lists[t] = nb
		}
		c.ByPath[m] = lists
	}
	return c
}

// Neighbors returns the cached neighbor list for tag t under metapath m.
func (c *NeighborCache) Neighbors(t NodeID, m Metapath) []NodeID {
	return c.ByPath[m][t]
}

// RandomWalk generates a metapath-guided random walk of walkLen *tag* visits
// starting at tag t, cycling through the given metapath at each hop (as
// metapath2vec does). The walk stops early if a node has no neighbors.
func (g *Graph) RandomWalk(t NodeID, m Metapath, walkLen int, rng *mat.RNG) []NodeID {
	walk := []NodeID{t}
	cur := t
	for len(walk) < walkLen {
		nb := g.MetapathNeighbors(cur, m)
		if len(nb) == 0 {
			break
		}
		cur = nb[rng.Intn(len(nb))]
		walk = append(walk, cur)
	}
	return walk
}
