package hetgraph

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"intellitag/internal/snapshot"
)

// Corrupt-input failure injection for the graph loader, mirroring the nn
// package: a damaged artifact must be rejected with an error wrapping
// snapshot.ErrChecksum, never decoded partially.

// saveSmallGraph writes a small but non-trivial graph and returns its path.
func saveSmallGraph(t *testing.T) string {
	t.Helper()
	g := New(4, 3, 2)
	g.AddAsc(0, 0)
	g.AddAsc(1, 1)
	g.AddCrl(0, 0)
	g.AddClk(0, 1)
	g.AddCst(1, 2)
	path := filepath.Join(t.TempDir(), "graph.gob")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadGraphTruncatedFile(t *testing.T) {
	path := saveSmallGraph(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("truncated graph should surface as ErrChecksum, got %v", err)
	}
}

func TestLoadGraphBitFlip(t *testing.T) {
	path := saveSmallGraph(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x20 // the digest lives in the header; this is payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("bit-flipped graph should surface as ErrChecksum, got %v", err)
	}
}

func TestLoadGraphForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graph.gob")
	if err := os.WriteFile(path, []byte("pre-envelope plain gob bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("un-enveloped graph should surface as ErrChecksum, got %v", err)
	}
}
