package hetgraph

import (
	"encoding/gob"
	"fmt"
	"os"
)

// graphBlob is the on-disk form of a Graph.
type graphBlob struct {
	NumTags, NumRQs, NumTenants int
	AscTagToRQ                  [][]NodeID
	CrlRQToTen                  [][]NodeID
	ClkTagToTag                 [][]NodeID
	CstRQToRQ                   [][]NodeID
}

// Save writes the graph to path in gob format. Only one direction of each
// symmetric relation is stored; Load rebuilds the reverse indices.
func (g *Graph) Save(path string) error {
	blob := graphBlob{
		NumTags: g.NumTags, NumRQs: g.NumRQs, NumTenants: g.NumTenants,
		AscTagToRQ:  g.ascTagToRQ,
		CrlRQToTen:  g.crlRQToTen,
		ClkTagToTag: g.clkTagToTag,
		CstRQToRQ:   g.cstRQToRQ,
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hetgraph: create: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(blob); err != nil {
		_ = f.Close() // best-effort cleanup; the encode error is what matters
		return fmt.Errorf("hetgraph: encode: %w", err)
	}
	// Close errors on the write path can mean unflushed data — the daily
	// rebuild would reload a truncated graph — so they must surface.
	if err := f.Close(); err != nil {
		return fmt.Errorf("hetgraph: close: %w", err)
	}
	return nil
}

// Load reads a graph written by Save.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hetgraph: open: %w", err)
	}
	//lint:ignore errcheck read-only file; a close error cannot invalidate an already-validated decode
	defer f.Close()
	var blob graphBlob
	if err := gob.NewDecoder(f).Decode(&blob); err != nil {
		return nil, fmt.Errorf("hetgraph: decode: %w", err)
	}
	g := New(blob.NumTags, blob.NumRQs, blob.NumTenants)
	for t, rqs := range blob.AscTagToRQ {
		for _, q := range rqs {
			g.AddAsc(NodeID(t), q)
		}
	}
	for q, tens := range blob.CrlRQToTen {
		for _, e := range tens {
			g.AddCrl(NodeID(q), e)
		}
	}
	// clk/cst are stored from both endpoints; AddClk/AddCst dedupe.
	for a, bs := range blob.ClkTagToTag {
		for _, b := range bs {
			g.AddClk(NodeID(a), b)
		}
	}
	for a, bs := range blob.CstRQToRQ {
		for _, b := range bs {
			g.AddCst(NodeID(a), b)
		}
	}
	return g, nil
}
