package hetgraph

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"intellitag/internal/snapshot"
)

// graphBlob is the on-disk form of a Graph.
type graphBlob struct {
	NumTags, NumRQs, NumTenants int
	AscTagToRQ                  [][]NodeID
	CrlRQToTen                  [][]NodeID
	ClkTagToTag                 [][]NodeID
	CstRQToRQ                   [][]NodeID
}

// Save writes the graph to path, gob-encoded inside the snapshot envelope
// (magic + length + SHA-256), so a truncated or corrupted file is rejected at
// load time before any gob decoding. Only one direction of each symmetric
// relation is stored; Load rebuilds the reverse indices. The write goes
// through a temp file + rename, so the daily rebuild can never publish a
// half-written graph under the final name.
func (g *Graph) Save(path string) error {
	blob := graphBlob{
		NumTags: g.NumTags, NumRQs: g.NumRQs, NumTenants: g.NumTenants,
		AscTagToRQ:  g.ascTagToRQ,
		CrlRQToTen:  g.crlRQToTen,
		ClkTagToTag: g.clkTagToTag,
		CstRQToRQ:   g.cstRQToRQ,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return fmt.Errorf("hetgraph: encode: %w", err)
	}
	if err := snapshot.WriteChecksummed(path, buf.Bytes()); err != nil {
		return fmt.Errorf("hetgraph: write: %w", err)
	}
	return nil
}

// Load reads a graph written by Save. Truncation and bit rot surface as
// snapshot.ErrChecksum (test with errors.Is), never as a partial gob decode.
func Load(path string) (*Graph, error) {
	payload, err := snapshot.ReadChecksummed(path)
	if err != nil {
		return nil, fmt.Errorf("hetgraph: read: %w", err)
	}
	var blob graphBlob
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&blob); err != nil {
		return nil, fmt.Errorf("hetgraph: decode: %w", err)
	}
	g := New(blob.NumTags, blob.NumRQs, blob.NumTenants)
	for t, rqs := range blob.AscTagToRQ {
		for _, q := range rqs {
			g.AddAsc(NodeID(t), q)
		}
	}
	for q, tens := range blob.CrlRQToTen {
		for _, e := range tens {
			g.AddCrl(NodeID(q), e)
		}
	}
	// clk/cst are stored from both endpoints; AddClk/AddCst dedupe.
	for a, bs := range blob.ClkTagToTag {
		for _, b := range bs {
			g.AddClk(NodeID(a), b)
		}
	}
	for a, bs := range blob.CstRQToRQ {
		for _, b := range bs {
			g.AddCst(NodeID(a), b)
		}
	}
	return g, nil
}
