package snapshot

import (
	"sync"
	"time"
)

// Watcher polls a store for newly committed versions — the online side of
// the T+1 loop: the trainer commits, the server's watcher notices and
// triggers a hot swap. Polling (rather than fs notification) keeps the
// package stdlib-only and matches the store's rename-to-publish protocol:
// a version directory is either absent or complete.
type Watcher struct {
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Watch starts a background poller that invokes onNew for every version
// whose sequence number exceeds the latest at start time (and any committed
// later), in commit order. Callbacks run on the watcher goroutine, so a slow
// onNew delays detection, never doubles it. Stop the watcher with Stop.
func Watch(s *Store, interval time.Duration, onNew func(Manifest)) *Watcher {
	if interval <= 0 {
		interval = time.Second
	}
	w := &Watcher{stop: make(chan struct{}), done: make(chan struct{})}
	lastSeq := -1
	if latest, err := s.Latest(); err == nil {
		lastSeq = latest.Seq
	}
	// The watcher is one of the sanctioned long-lived goroutines (see the
	// intellilint nakedgo allow-list): it lives until Stop and owns no
	// shared mutable state beyond its own sequence cursor.
	go func() {
		defer close(w.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C:
			}
			versions, err := s.List()
			if err != nil {
				continue // transient: the store may be mid-publish
			}
			for _, m := range versions {
				if m.Seq > lastSeq {
					lastSeq = m.Seq
					onNew(m)
				}
			}
		}
	}()
	return w
}

// Stop halts the poller and waits for the watcher goroutine (including any
// in-flight callback) to exit. Safe to call more than once.
func (w *Watcher) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}
