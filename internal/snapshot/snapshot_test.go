package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetClock(func() int64 { return 1_600_000_000 })
	return s
}

// commit stages the given name->payload components and commits them.
func commit(t *testing.T, s *Store, components map[string][]byte) Manifest {
	t.Helper()
	w, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Stage in sorted order so version ids are deterministic across runs.
	names := make([]string, 0, len(components))
	for name := range components {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		if err := w.WriteComponent(name, components[name]); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEnvelopeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	payload := []byte("some model bytes")
	if err := WriteChecksummed(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChecksummed(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mangled: %q", got)
	}
}

func TestEnvelopeRejectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := WriteChecksummed(path, []byte("a longer payload that we will cut short")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChecksummed(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum for truncation, got %v", err)
	}
}

func TestEnvelopeRejectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := WriteChecksummed(path, []byte("payload payload payload")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChecksummed(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum for bit flip, got %v", err)
	}
}

func TestEnvelopeRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, []byte("plain gob or garbage, no envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChecksummed(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum for missing magic, got %v", err)
	}
}

func TestCommitAndLatest(t *testing.T) {
	s := testStore(t)
	if _, err := s.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty store Latest = %v, want ErrEmpty", err)
	}
	m1 := commit(t, s, map[string][]byte{"params.gob": []byte("p1")})
	if !strings.HasPrefix(m1.ID, "v0000-") {
		t.Fatalf("first id = %q", m1.ID)
	}
	if m1.Parent != "" {
		t.Fatalf("first parent = %q", m1.Parent)
	}
	m2 := commit(t, s, map[string][]byte{"params.gob": []byte("p2")})
	if m2.Parent != m1.ID || m2.Seq != m1.Seq+1 {
		t.Fatalf("chain broken: %+v after %+v", m2, m1)
	}
	latest, err := s.Latest()
	if err != nil || latest.ID != m2.ID {
		t.Fatalf("Latest = %+v, %v", latest, err)
	}
	list, err := s.List()
	if err != nil || len(list) != 2 || list[0].ID != m1.ID || list[1].ID != m2.ID {
		t.Fatalf("List = %+v, %v", list, err)
	}
}

func TestVersionIDFoldsContent(t *testing.T) {
	a := commit(t, testStore(t), map[string][]byte{"m": []byte("same")})
	b := commit(t, testStore(t), map[string][]byte{"m": []byte("same")})
	c := commit(t, testStore(t), map[string][]byte{"m": []byte("different")})
	if a.ID != b.ID {
		t.Fatalf("identical content, different ids: %s vs %s", a.ID, b.ID)
	}
	if a.ID == c.ID {
		t.Fatalf("different content, same id: %s", a.ID)
	}
}

func TestVerifyDetectsTamper(t *testing.T) {
	s := testStore(t)
	m := commit(t, s, map[string][]byte{"params.gob": []byte("weights"), "graph.gob": []byte("edges")})
	if err := s.Verify(m.ID); err != nil {
		t.Fatalf("fresh version fails Verify: %v", err)
	}
	path, err := s.Path(m.ID, "graph.gob")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(m.ID); !errors.Is(err, ErrChecksum) {
		t.Fatalf("tampered Verify = %v, want ErrChecksum", err)
	}
}

func TestVerifyDetectsMissingComponent(t *testing.T) {
	s := testStore(t)
	m := commit(t, s, map[string][]byte{"a": []byte("1"), "b": []byte("2")})
	if err := os.Remove(filepath.Join(s.Root(), m.ID, "b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(m.ID); !errors.Is(err, ErrChecksum) {
		t.Fatalf("missing component Verify = %v, want ErrChecksum", err)
	}
}

func TestManifestIDMismatchRejected(t *testing.T) {
	s := testStore(t)
	m := commit(t, s, map[string][]byte{"a": []byte("1")})
	// Rename the directory: the embedded manifest id no longer matches.
	if err := os.Rename(filepath.Join(s.Root(), m.ID), filepath.Join(s.Root(), "v0009-deadbeef")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("v0009-deadbeef"); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Get on renamed dir = %v, want ErrChecksum", err)
	}
}

func TestPathUnknownComponent(t *testing.T) {
	s := testStore(t)
	m := commit(t, s, map[string][]byte{"a": []byte("1")})
	if _, err := s.Path(m.ID, "nope"); err == nil {
		t.Fatal("Path on unknown component should fail")
	}
}

func TestGCKeepsNewest(t *testing.T) {
	s := testStore(t)
	var ids []string
	for i := 0; i < 5; i++ {
		m := commit(t, s, map[string][]byte{"m": []byte(strings.Repeat("x", i+1))})
		ids = append(ids, m.ID)
	}
	removed, err := s.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %v", removed)
	}
	list, err := s.List()
	if err != nil || len(list) != 2 {
		t.Fatalf("after GC: %+v, %v", list, err)
	}
	if list[0].ID != ids[3] || list[1].ID != ids[4] {
		t.Fatalf("GC kept wrong versions: %+v", list)
	}
	// keep < 1 clamps to 1 rather than emptying the store.
	if _, err := s.GC(0); err != nil {
		t.Fatal(err)
	}
	if latest, err := s.Latest(); err != nil || latest.ID != ids[4] {
		t.Fatalf("GC(0) deleted the serving candidate: %+v, %v", latest, err)
	}
}

func TestCommitRequiresComponents(t *testing.T) {
	s := testStore(t)
	w, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Commit(); err == nil {
		t.Fatal("empty Commit should fail")
	}
}

func TestAbortLeavesNoVersion(t *testing.T) {
	s := testStore(t)
	w, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteComponent("m", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if list, err := s.List(); err != nil || len(list) != 0 {
		t.Fatalf("after Abort: %+v, %v", list, err)
	}
}

func TestWatchSeesNewVersions(t *testing.T) {
	s := testStore(t)
	commit(t, s, map[string][]byte{"m": []byte("pre-existing")})

	var seen atomic.Int64
	var lastID atomic.Value
	w := Watch(s, 5*time.Millisecond, func(m Manifest) {
		seen.Add(1)
		lastID.Store(m.ID)
	})
	defer w.Stop()

	// The pre-existing version must not fire.
	time.Sleep(25 * time.Millisecond)
	if n := seen.Load(); n != 0 {
		t.Fatalf("watcher fired %d times before any new commit", n)
	}

	m2 := commit(t, s, map[string][]byte{"m": []byte("fresh")})
	deadline := time.Now().Add(2 * time.Second)
	for seen.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if seen.Load() != 1 {
		t.Fatalf("watcher fired %d times, want 1", seen.Load())
	}
	if got, _ := lastID.Load().(string); got != m2.ID {
		t.Fatalf("watcher saw %q, want %q", got, m2.ID)
	}
}
