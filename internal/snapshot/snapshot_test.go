package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetClock(func() int64 { return 1_600_000_000 })
	return s
}

// commit stages the given name->payload components and commits them.
func commit(t *testing.T, s *Store, components map[string][]byte) Manifest {
	t.Helper()
	w, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Stage in sorted order so version ids are deterministic across runs.
	names := make([]string, 0, len(components))
	for name := range components {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		if err := w.WriteComponent(name, components[name]); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEnvelopeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	payload := []byte("some model bytes")
	if err := WriteChecksummed(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChecksummed(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mangled: %q", got)
	}
}

func TestEnvelopeRejectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := WriteChecksummed(path, []byte("a longer payload that we will cut short")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChecksummed(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum for truncation, got %v", err)
	}
}

func TestEnvelopeRejectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := WriteChecksummed(path, []byte("payload payload payload")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChecksummed(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum for bit flip, got %v", err)
	}
}

func TestEnvelopeRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, []byte("plain gob or garbage, no envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChecksummed(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum for missing magic, got %v", err)
	}
}

func TestCommitAndLatest(t *testing.T) {
	s := testStore(t)
	if _, err := s.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty store Latest = %v, want ErrEmpty", err)
	}
	m1 := commit(t, s, map[string][]byte{"params.gob": []byte("p1")})
	if !strings.HasPrefix(m1.ID, "v0000-") {
		t.Fatalf("first id = %q", m1.ID)
	}
	if m1.Parent != "" {
		t.Fatalf("first parent = %q", m1.Parent)
	}
	m2 := commit(t, s, map[string][]byte{"params.gob": []byte("p2")})
	if m2.Parent != m1.ID || m2.Seq != m1.Seq+1 {
		t.Fatalf("chain broken: %+v after %+v", m2, m1)
	}
	latest, err := s.Latest()
	if err != nil || latest.ID != m2.ID {
		t.Fatalf("Latest = %+v, %v", latest, err)
	}
	list, err := s.List()
	if err != nil || len(list) != 2 || list[0].ID != m1.ID || list[1].ID != m2.ID {
		t.Fatalf("List = %+v, %v", list, err)
	}
}

func TestVersionIDFoldsContent(t *testing.T) {
	a := commit(t, testStore(t), map[string][]byte{"m": []byte("same")})
	b := commit(t, testStore(t), map[string][]byte{"m": []byte("same")})
	c := commit(t, testStore(t), map[string][]byte{"m": []byte("different")})
	if a.ID != b.ID {
		t.Fatalf("identical content, different ids: %s vs %s", a.ID, b.ID)
	}
	if a.ID == c.ID {
		t.Fatalf("different content, same id: %s", a.ID)
	}
}

func TestVerifyDetectsTamper(t *testing.T) {
	s := testStore(t)
	m := commit(t, s, map[string][]byte{"params.gob": []byte("weights"), "graph.gob": []byte("edges")})
	if err := s.Verify(m.ID); err != nil {
		t.Fatalf("fresh version fails Verify: %v", err)
	}
	path, err := s.Path(m.ID, "graph.gob")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(m.ID); !errors.Is(err, ErrChecksum) {
		t.Fatalf("tampered Verify = %v, want ErrChecksum", err)
	}
}

func TestVerifyDetectsMissingComponent(t *testing.T) {
	s := testStore(t)
	m := commit(t, s, map[string][]byte{"a": []byte("1"), "b": []byte("2")})
	if err := os.Remove(filepath.Join(s.Root(), m.ID, "b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(m.ID); !errors.Is(err, ErrChecksum) {
		t.Fatalf("missing component Verify = %v, want ErrChecksum", err)
	}
}

func TestManifestIDMismatchRejected(t *testing.T) {
	s := testStore(t)
	m := commit(t, s, map[string][]byte{"a": []byte("1")})
	// Rename the directory: the embedded manifest id no longer matches.
	if err := os.Rename(filepath.Join(s.Root(), m.ID), filepath.Join(s.Root(), "v0009-deadbeef")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("v0009-deadbeef"); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Get on renamed dir = %v, want ErrChecksum", err)
	}
}

func TestPathUnknownComponent(t *testing.T) {
	s := testStore(t)
	m := commit(t, s, map[string][]byte{"a": []byte("1")})
	if _, err := s.Path(m.ID, "nope"); err == nil {
		t.Fatal("Path on unknown component should fail")
	}
}

func TestGCKeepsNewest(t *testing.T) {
	s := testStore(t)
	var ids []string
	for i := 0; i < 5; i++ {
		m := commit(t, s, map[string][]byte{"m": []byte(strings.Repeat("x", i+1))})
		ids = append(ids, m.ID)
	}
	removed, err := s.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %v", removed)
	}
	list, err := s.List()
	if err != nil || len(list) != 2 {
		t.Fatalf("after GC: %+v, %v", list, err)
	}
	if list[0].ID != ids[3] || list[1].ID != ids[4] {
		t.Fatalf("GC kept wrong versions: %+v", list)
	}
	// keep < 1 clamps to 1 rather than emptying the store.
	if _, err := s.GC(0); err != nil {
		t.Fatal(err)
	}
	if latest, err := s.Latest(); err != nil || latest.ID != ids[4] {
		t.Fatalf("GC(0) deleted the serving candidate: %+v, %v", latest, err)
	}
}

// TestLKGMarkerRoundTrip pins the last-known-good marker: unset on a fresh
// store, settable only to committed versions, atomic overwrite.
func TestLKGMarkerRoundTrip(t *testing.T) {
	s := testStore(t)
	if lkg, err := s.LKG(); err != nil || lkg != "" {
		t.Fatalf("fresh store LKG = %q, %v", lkg, err)
	}
	if err := s.MarkLKG("v0000-deadbeef"); err == nil {
		t.Fatal("MarkLKG accepted an uncommitted version")
	}
	m1 := commit(t, s, map[string][]byte{"a": []byte("one")})
	m2 := commit(t, s, map[string][]byte{"a": []byte("two")})
	if err := s.MarkLKG(m1.ID); err != nil {
		t.Fatal(err)
	}
	if lkg, err := s.LKG(); err != nil || lkg != m1.ID {
		t.Fatalf("LKG = %q, %v", lkg, err)
	}
	if err := s.MarkLKG(m2.ID); err != nil {
		t.Fatal(err)
	}
	if lkg, err := s.LKG(); err != nil || lkg != m2.ID {
		t.Fatalf("LKG after move = %q, %v", lkg, err)
	}
	// The marker file must not confuse the version listing.
	list, err := s.List()
	if err != nil || len(list) != 2 {
		t.Fatalf("List with marker present = %d versions, %v", len(list), err)
	}
}

// TestBeginChildLineage pins explicit-parent commits: the child records the
// requested parent (not the store's latest) while its sequence number still
// advances past the latest — the post-rollback fine-tune shape.
func TestBeginChildLineage(t *testing.T) {
	s := testStore(t)
	base := commit(t, s, map[string][]byte{"a": []byte("base")})
	newer := commit(t, s, map[string][]byte{"a": []byte("newer")})

	w, err := s.BeginChild(base.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteComponent("a", []byte("child-of-base")); err != nil {
		t.Fatal(err)
	}
	child, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if child.Parent != base.ID {
		t.Fatalf("child parent = %q, want %q", child.Parent, base.ID)
	}
	if child.Seq != newer.Seq+1 {
		t.Fatalf("child seq = %d, want %d", child.Seq, newer.Seq+1)
	}
	if _, err := s.BeginChild("v9999-00000000"); err == nil {
		t.Fatal("BeginChild accepted a missing parent")
	}
}

// TestGCProtectsLKGAndParentChain is the online-loop GC contract: however
// aggressive the keep policy, the last-known-good version and the active
// version's whole parent chain survive collection.
func TestGCProtectsLKGAndParentChain(t *testing.T) {
	s := testStore(t)
	v0 := commit(t, s, map[string][]byte{"a": []byte("v0")})
	v1 := commit(t, s, map[string][]byte{"a": []byte("v1")})
	v2 := commit(t, s, map[string][]byte{"a": []byte("v2")}) // parent v1
	v3 := commit(t, s, map[string][]byte{"a": []byte("v3")}) // parent v2
	if err := s.MarkLKG(v1.ID); err != nil {
		t.Fatal(err)
	}

	// keep=1 would normally doom v0..v2; the LKG (v1) and the active
	// version's (v3) parent chain (v2 <- v1) must survive, so only v0 goes.
	removed, err := s.GC(1, v3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != v0.ID {
		t.Fatalf("GC removed %v, want only %s", removed, v0.ID)
	}
	for _, id := range []string{v1.ID, v2.ID, v3.ID} {
		if err := s.Verify(id); err != nil {
			t.Fatalf("protected version %s was collected: %v", id, err)
		}
	}

	// With the marker moved to the newest version, the old chain stops being
	// load-bearing: nothing rolls back past the LKG, so v1 and v2 collect.
	if err := s.MarkLKG(v3.ID); err != nil {
		t.Fatal(err)
	}
	removed, err = s.GC(1, v3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[0] != v1.ID || removed[1] != v2.ID {
		t.Fatalf("GC after marker move removed %v, want [%s %s]", removed, v1.ID, v2.ID)
	}
	if err := s.Verify(v3.ID); err != nil {
		t.Fatalf("LKG itself collected: %v", err)
	}
}

func TestCommitRequiresComponents(t *testing.T) {
	s := testStore(t)
	w, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Commit(); err == nil {
		t.Fatal("empty Commit should fail")
	}
}

func TestAbortLeavesNoVersion(t *testing.T) {
	s := testStore(t)
	w, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteComponent("m", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if list, err := s.List(); err != nil || len(list) != 0 {
		t.Fatalf("after Abort: %+v, %v", list, err)
	}
}

func TestWatchSeesNewVersions(t *testing.T) {
	s := testStore(t)
	commit(t, s, map[string][]byte{"m": []byte("pre-existing")})

	var seen atomic.Int64
	var lastID atomic.Value
	w := Watch(s, 5*time.Millisecond, func(m Manifest) {
		seen.Add(1)
		lastID.Store(m.ID)
	})
	defer w.Stop()

	// The pre-existing version must not fire.
	time.Sleep(25 * time.Millisecond)
	if n := seen.Load(); n != 0 {
		t.Fatalf("watcher fired %d times before any new commit", n)
	}

	m2 := commit(t, s, map[string][]byte{"m": []byte("fresh")})
	deadline := time.Now().Add(2 * time.Second)
	for seen.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if seen.Load() != 1 {
		t.Fatalf("watcher fired %d times, want 1", seen.Load())
	}
	if got, _ := lastID.Load().(string); got != m2.ID {
		t.Fatalf("watcher saw %q, want %q", got, m2.ID)
	}
}
