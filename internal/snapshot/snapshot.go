package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrEmpty is returned by Latest when the store holds no committed version.
var ErrEmpty = errors.New("snapshot: store is empty")

// manifestFile is the per-version metadata file name.
const manifestFile = "manifest.json"

// lkgFile is the store-level last-known-good marker. It lives beside the
// version directories (not inside one) because committed version directories
// are immutable; the marker is the one piece of store state that moves as
// the online-learning loop proves versions healthy.
const lkgFile = "lkg.json"

// lkgManifest is the JSON shape of the last-known-good marker.
type lkgManifest struct {
	ID string `json:"id"`
}

// Component records one artifact inside a version directory.
type Component struct {
	Name   string `json:"name"`   // logical name, e.g. "params.gob"
	SHA256 string `json:"sha256"` // hex digest of the full file contents
	Size   int64  `json:"size"`
}

// Manifest describes one committed snapshot version.
type Manifest struct {
	ID            string      `json:"id"`  // "v0007-1a2b3c4d"
	Seq           int         `json:"seq"` // monotonically increasing per store
	Parent        string      `json:"parent,omitempty"`
	CreatedAtUnix int64       `json:"created_at_unix"`
	Components    []Component `json:"components"`
}

// Component returns the named component's record, or false.
func (m Manifest) Component(name string) (Component, bool) {
	for _, c := range m.Components {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// Store is a directory of immutable snapshot version subdirectories. All
// mutation goes through Begin/Commit (new versions) and GC (removal); a
// committed version directory is never modified. Store methods are safe to
// call from the trainer and the serving watcher concurrently as long as only
// one writer commits at a time — the T+1 loop's natural shape.
type Store struct {
	root string
	// now supplies manifest timestamps; tests override via SetClock so
	// snapshot contents stay deterministic.
	now func() int64
}

// Open opens (creating if needed) a snapshot store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: open store: %w", err)
	}
	return &Store{root: dir, now: func() int64 { return time.Now().Unix() }}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// SetClock overrides the manifest timestamp source (tests).
func (s *Store) SetClock(now func() int64) { s.now = now }

// versionDirs lists committed version directory names in ascending sequence
// order. Uncommitted writer temp dirs (".tmp-*") are skipped.
func (s *Store) versionDirs() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("snapshot: list store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "v") {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool { return SeqOf(names[i]) < SeqOf(names[j]) })
	return names, nil
}

// SeqOf parses the sequence number out of a version id ("v0007-1a2b3c4d" ->
// 7). Malformed or non-version ids (including the serving tier's
// "unversioned" placeholder) return -1, so they sort before every committed
// version and render as a sentinel in gauges.
func SeqOf(name string) int {
	rest := strings.TrimPrefix(name, "v")
	if i := strings.IndexByte(rest, '-'); i >= 0 {
		rest = rest[:i]
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return -1
	}
	return n
}

// List returns every committed manifest in ascending sequence order.
func (s *Store) List() ([]Manifest, error) {
	names, err := s.versionDirs()
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(names))
	for _, name := range names {
		m, err := s.readManifest(name)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Latest returns the manifest with the highest sequence number, or ErrEmpty.
func (s *Store) Latest() (Manifest, error) {
	names, err := s.versionDirs()
	if err != nil {
		return Manifest{}, err
	}
	if len(names) == 0 {
		return Manifest{}, ErrEmpty
	}
	return s.readManifest(names[len(names)-1])
}

// Get returns the manifest for a version id.
func (s *Store) Get(id string) (Manifest, error) {
	return s.readManifest(id)
}

func (s *Store) readManifest(id string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.root, id, manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("snapshot: version %s: %w", id, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("snapshot: version %s: bad manifest: %w", id, err)
	}
	if m.ID != id {
		return Manifest{}, fmt.Errorf("snapshot: version %s: manifest claims id %q: %w", id, m.ID, ErrChecksum)
	}
	return m, nil
}

// Path returns the absolute path of a committed version's component file.
// The component must be listed in the manifest.
func (s *Store) Path(id, component string) (string, error) {
	m, err := s.readManifest(id)
	if err != nil {
		return "", err
	}
	if _, ok := m.Component(component); !ok {
		return "", fmt.Errorf("snapshot: version %s has no component %q", id, component)
	}
	return filepath.Join(s.root, id, component), nil
}

// Verify recomputes every component digest of a version against its
// manifest. Any mismatch, missing file or size drift returns an error
// wrapping ErrChecksum.
func (s *Store) Verify(id string) error {
	m, err := s.readManifest(id)
	if err != nil {
		return err
	}
	for _, c := range m.Components {
		sum, size, err := fileSHA256(filepath.Join(s.root, id, c.Name))
		if err != nil {
			return fmt.Errorf("snapshot: verify %s/%s: %v: %w", id, c.Name, err, ErrChecksum)
		}
		if size != c.Size {
			return fmt.Errorf("snapshot: verify %s/%s: %d bytes, manifest says %d: %w",
				id, c.Name, size, c.Size, ErrChecksum)
		}
		if sum != c.SHA256 {
			return fmt.Errorf("snapshot: verify %s/%s: digest mismatch: %w", id, c.Name, ErrChecksum)
		}
	}
	return nil
}

// MarkLKG records a committed version as the store's last-known-good — the
// rollback target of the online-learning loop. The version must exist; the
// marker is written atomically (temp file + rename) so a crashed writer can
// never leave a torn marker.
func (s *Store) MarkLKG(id string) error {
	if _, err := s.readManifest(id); err != nil {
		return fmt.Errorf("snapshot: mark lkg: %w", err)
	}
	data, err := json.Marshal(lkgManifest{ID: id})
	if err != nil {
		return fmt.Errorf("snapshot: mark lkg: %w", err)
	}
	tmp := filepath.Join(s.root, ".tmp-"+lkgFile)
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("snapshot: mark lkg: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.root, lkgFile)); err != nil {
		return fmt.Errorf("snapshot: mark lkg: %w", err)
	}
	return nil
}

// LKG returns the last-known-good version id, or "" when no marker has been
// written yet (a fresh store, or one predating the online loop).
func (s *Store) LKG() (string, error) {
	data, err := os.ReadFile(filepath.Join(s.root, lkgFile))
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("snapshot: read lkg: %w", err)
	}
	var m lkgManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return "", fmt.Errorf("snapshot: bad lkg marker: %w", err)
	}
	return m.ID, nil
}

// chainUntil returns id plus its ancestors, walking the manifests' Parent
// links, stopping after (and including) stop. With an empty stop, or when
// stop is not an ancestor, the whole surviving chain is returned. Missing
// ancestors (already collected, or committed to another store) end the walk
// silently.
func (s *Store) chainUntil(id, stop string) []string {
	var chain []string
	for id != "" {
		m, err := s.readManifest(id)
		if err != nil {
			break
		}
		chain = append(chain, id)
		if id == stop {
			break
		}
		id = m.Parent
	}
	return chain
}

// GC removes all but the newest keep versions and returns the removed ids.
// keep < 1 is treated as 1: the store never deletes its only serving
// candidate. The last-known-good version and, for every id in protect
// (typically the active serving version), the id's parent chain down to the
// LKG are never collected — a rollback target that has been garbage-
// collected is no target at all. Ancestors older than the LKG are fair game:
// nothing rolls back past the last-known-good.
func (s *Store) GC(keep int, protect ...string) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	names, err := s.versionDirs()
	if err != nil {
		return nil, err
	}
	if len(names) <= keep {
		return nil, nil
	}
	lkg, err := s.LKG()
	if err != nil {
		return nil, err
	}
	pinned := map[string]bool{}
	if lkg != "" {
		pinned[lkg] = true
	}
	for _, id := range protect {
		for _, p := range s.chainUntil(id, lkg) {
			pinned[p] = true
		}
	}
	var removed []string
	for _, name := range names[:len(names)-keep] {
		if pinned[name] {
			continue
		}
		if err := os.RemoveAll(filepath.Join(s.root, name)); err != nil {
			return nil, fmt.Errorf("snapshot: gc %s: %w", name, err)
		}
		removed = append(removed, name)
	}
	return removed, nil
}

// A Writer stages one new version. Components are written into a temp
// directory (via Path or WriteComponent); Commit hashes them, assigns the
// version id and atomically renames the directory into place.
type Writer struct {
	store      *Store
	dir        string // temp dir while staging
	seq        int
	parent     string
	components []string
	done       bool
}

// Begin starts a new version whose parent is the current latest (or the
// empty string in a fresh store). Only one Begin may be in flight per store.
func (s *Store) Begin() (*Writer, error) {
	return s.begin("")
}

// BeginChild starts a new version with an explicit committed parent. The
// sequence number still advances past the store's latest — lineage and
// recency are separate axes, which is exactly the shape the online learner
// needs after a rollback: the next fine-tune descends from the last-known-
// good version, not from the rolled-back (and newer) one.
func (s *Store) BeginChild(parent string) (*Writer, error) {
	if _, err := s.readManifest(parent); err != nil {
		return nil, fmt.Errorf("snapshot: begin child: %w", err)
	}
	return s.begin(parent)
}

func (s *Store) begin(parent string) (*Writer, error) {
	seq := 0
	if latest, err := s.Latest(); err == nil {
		seq = latest.Seq + 1
		if parent == "" {
			parent = latest.ID
		}
	} else if !errors.Is(err, ErrEmpty) {
		return nil, err
	}
	dir := filepath.Join(s.root, fmt.Sprintf(".tmp-%04d", seq))
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("snapshot: begin: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: begin: %w", err)
	}
	return &Writer{store: s, dir: dir, seq: seq, parent: parent}, nil
}

// Path registers a component and returns the staging path the caller should
// write it to before Commit.
func (w *Writer) Path(component string) string {
	for _, c := range w.components {
		if c == component {
			return filepath.Join(w.dir, component)
		}
	}
	w.components = append(w.components, component)
	return filepath.Join(w.dir, component)
}

// WriteComponent stages a component from an in-memory payload, framed with
// the checksummed envelope.
func (w *Writer) WriteComponent(component string, payload []byte) error {
	return WriteChecksummed(w.Path(component), payload)
}

// Abort discards the staged version.
func (w *Writer) Abort() {
	if !w.done {
		w.done = true
		_ = os.RemoveAll(w.dir) // best-effort cleanup of a temp dir on the abort path
	}
}

// Commit hashes every staged component, writes the manifest and renames the
// staging directory to its final version id, which it returns. The id folds
// the component digests, so identical content always produces the same id
// for a given sequence number.
func (w *Writer) Commit() (Manifest, error) {
	if w.done {
		return Manifest{}, errors.New("snapshot: writer already committed or aborted")
	}
	m := Manifest{
		Seq:           w.seq,
		Parent:        w.parent,
		CreatedAtUnix: w.store.now(),
	}
	idSum := []byte{}
	for _, name := range w.components {
		sum, size, err := fileSHA256(filepath.Join(w.dir, name))
		if err != nil {
			return Manifest{}, fmt.Errorf("snapshot: commit: hash %s: %w", name, err)
		}
		m.Components = append(m.Components, Component{Name: name, SHA256: sum, Size: size})
		idSum = append(idSum, name...)
		idSum = append(idSum, sum...)
	}
	if len(m.Components) == 0 {
		w.Abort()
		return Manifest{}, errors.New("snapshot: commit: no components staged")
	}
	m.ID = fmt.Sprintf("v%04d-%s", w.seq, shortDigest(idSum))
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("snapshot: commit: marshal manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(w.dir, manifestFile), append(data, '\n'), 0o644); err != nil {
		return Manifest{}, fmt.Errorf("snapshot: commit: write manifest: %w", err)
	}
	final := filepath.Join(w.store.root, m.ID)
	if err := os.Rename(w.dir, final); err != nil {
		return Manifest{}, fmt.Errorf("snapshot: commit: publish: %w", err)
	}
	w.done = true
	return m, nil
}

// shortDigest is the 8-hex-char content fingerprint embedded in version ids.
func shortDigest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:8]
}
