// Package snapshot implements the versioned model-snapshot store behind the
// T+1 deployment loop of Section V: the offline trainer commits each model
// as an immutable, checksummed version directory, and the online servers
// open, verify and hot-swap to those versions without restarting (see
// internal/serving). The package has two layers:
//
//   - a file envelope (WriteChecksummed/ReadChecksummed) that frames a
//     payload with a magic header, length and SHA-256 digest, so a
//     truncated or bit-flipped artifact is rejected with ErrChecksum
//     instead of surfacing as a partial gob decode;
//   - a Store of version directories, each holding component files plus a
//     manifest.json (version id, parent, creation time, per-component
//     checksums), with Begin/Commit writers, List/Latest/Get readers,
//     Verify and GC.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
)

// ErrChecksum is wrapped by every integrity failure in this package —
// envelope digests, manifest component digests, and truncated payloads.
// Callers test with errors.Is.
var ErrChecksum = errors.New("snapshot: checksum mismatch")

// envelopeMagic identifies a checksummed artifact file. The version digit is
// part of the magic so a future layout change fails loudly, not subtly.
var envelopeMagic = []byte("ITSNAP1\n")

// envelope header: magic, big-endian payload length, SHA-256 of the payload.
const envelopeHeaderSize = 8 + 8 + sha256.Size

// WriteChecksummed writes payload to path framed with the snapshot envelope
// (magic, length, SHA-256). The write goes through a temp file and rename so
// a crash never leaves a half-written artifact under the final name.
func WriteChecksummed(path string, payload []byte) error {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, envelopeHeaderSize+len(payload))
	buf = append(buf, envelopeMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: rename %s: %w", path, err)
	}
	return nil
}

// ReadChecksummed reads a file written by WriteChecksummed, verifies the
// digest and returns the payload. Missing magic, a short header, a length
// mismatch (truncation) and a digest mismatch all return an error wrapping
// ErrChecksum.
func ReadChecksummed(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	if len(data) < envelopeHeaderSize || !bytes.HasPrefix(data, envelopeMagic) {
		return nil, fmt.Errorf("snapshot: %s: missing or short envelope header: %w", path, ErrChecksum)
	}
	n := binary.BigEndian.Uint64(data[8:16])
	payload := data[envelopeHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("snapshot: %s: payload %d bytes, header says %d (truncated?): %w",
			path, len(payload), n, ErrChecksum)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[16:16+sha256.Size]) {
		return nil, fmt.Errorf("snapshot: %s: payload digest mismatch: %w", path, ErrChecksum)
	}
	return payload, nil
}

// fileSHA256 returns the hex digest of a file's full contents.
func fileSHA256(path string) (string, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", 0, err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), int64(len(data)), nil
}
