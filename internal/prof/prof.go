// Package prof wires the standard -cpuprofile/-memprofile flags into the
// command-line tools so hot paths (training steps, serving requests) can be
// inspected with `go tool pprof` without per-command boilerplate. The
// -pprof-addr flag additionally serves live net/http/pprof (goroutine, heap,
// 30s CPU) on a side port for long-running processes.
//
// Importing the package registers the flags on the default flag set. After
// flag.Parse(), call Start and defer the returned stop function:
//
//	defer prof.Start()()
//
// Long-running servers whose main never returns should additionally call
// FlushOnInterrupt(stop) so profiles are written on Ctrl-C.
package prof

import (
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
)

var (
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	pprofAddr  = flag.String("pprof-addr", "", "serve live net/http/pprof on this address (e.g. localhost:6060)")
)

// Start begins CPU profiling when -cpuprofile was given and returns a stop
// function that flushes the CPU profile and, when -memprofile was given,
// writes a post-GC heap profile. Call it after flag.Parse(); the stop
// function is safe to call when neither flag is set.
func Start() (stop func()) {
	if *pprofAddr != "" {
		// Bind synchronously so a bad address fails loudly at startup, then
		// serve the default mux (which the pprof import populated) for the
		// life of the process.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("prof: listen on -pprof-addr %s: %v", *pprofAddr, err)
		}
		log.Printf("prof: live pprof on http://%s/debug/pprof/", ln.Addr())
		//lint:ignore nakedgo background pprof listener that serves until process exit; it must outlive every worker pool and cannot run on one
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				log.Printf("prof: pprof server: %v", err)
			}
		}()
	}
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("prof: create cpu profile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("prof: start cpu profile: %v", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			// A close error can mean an unflushed (unreadable) profile; the
			// run is over, so log rather than abort.
			if err := cpuFile.Close(); err != nil {
				log.Printf("prof: close cpu profile: %v", err)
			}
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("prof: create mem profile: %v", err)
			}
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("prof: write mem profile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("prof: close mem profile: %v", err)
			}
		}
	}
}

// FlushOnInterrupt runs stop and exits when the process receives SIGINT or
// SIGTERM. Servers that block in ListenAndServe use this so the deferred
// stop (which would otherwise never run) still flushes profiles.
func FlushOnInterrupt(stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	//lint:ignore nakedgo one-shot signal watcher that exits the process; it must outlive every worker pool and cannot run on one
	go func() {
		<-ch
		stop()
		os.Exit(0)
	}()
}
