// Package qamatch implements the Q&A matching model of the IntelliTag
// system — the component Fig. 4 labels "RoBERTa model learner". When a user
// types a question, the model server retrieves an RQ recall set from the
// search index and this model picks the best match (Section V-A). The
// substitution for the pretrained RoBERTa is a siamese Transformer text
// encoder trained from scratch with a contrastive objective on (user
// paraphrase, RQ) pairs; what the pipeline needs — paraphrase-robust
// question matching that improves on raw BM25 ordering — is preserved.
package qamatch

import (
	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/textproc"
)

// Config sizes the matcher.
type Config struct {
	Dim    int
	Heads  int
	Layers int
	MaxLen int
	Seed   int64
}

// DefaultConfig returns a laptop-scale matcher configuration.
func DefaultConfig() Config {
	return Config{Dim: 24, Heads: 2, Layers: 1, MaxLen: 32, Seed: 21}
}

// Matcher is a siamese text encoder: both sides of a pair share the same
// weights, and the match score is the dot product of mean-pooled encodings.
type Matcher struct {
	Cfg   Config
	Vocab *textproc.Vocab

	emb *nn.Embedding
	pos *nn.PositionalEmbedding
	enc *nn.Encoder

	params *nn.Collector
}

// NewMatcher builds a matcher over the vocabulary.
func NewMatcher(cfg Config, vocab *textproc.Vocab) *Matcher {
	g := mat.NewRNG(cfg.Seed)
	m := &Matcher{
		Cfg:   cfg,
		Vocab: vocab,
		emb:   nn.NewEmbedding("qamatch.emb", vocab.Len(), cfg.Dim, g),
		pos:   nn.NewPositionalEmbedding("qamatch.pos", cfg.MaxLen, cfg.Dim, g),
		enc:   nn.NewEncoder("qamatch.enc", cfg.Layers, cfg.Dim, cfg.Heads, 0.1, g),
	}
	m.params = nn.NewCollector()
	m.emb.CollectParams(m.params)
	m.pos.CollectParams(m.params)
	m.enc.CollectParams(m.params)
	return m
}

// Params returns the trainable parameters.
func (m *Matcher) Params() []*nn.Param { return m.params.Params() }

// SetTrain toggles dropout.
func (m *Matcher) SetTrain(train bool) { m.enc.SetTrain(train) }

// encode runs one tower and returns the mean-pooled vector plus a backward
// closure. Because the towers share weights, Forward state is overwritten by
// the next encode call: callers must backward each tower immediately after
// computing its gradient contribution, or re-encode (the trainer below
// re-encodes).
func (m *Matcher) encode(tokens []string) ([]float64, func(dVec []float64)) {
	if len(tokens) > m.Cfg.MaxLen {
		tokens = tokens[:m.Cfg.MaxLen]
	}
	ids := m.Vocab.Encode(tokens)
	h := m.enc.Forward(m.pos.Forward(m.emb.Forward(ids)))
	n := h.Rows
	vec := make([]float64, m.Cfg.Dim)
	for i := 0; i < n; i++ {
		mat.AXPY(1/float64(n), h.Row(i), vec)
	}
	backward := func(dVec []float64) {
		dH := mat.New(n, m.Cfg.Dim)
		for i := 0; i < n; i++ {
			row := dH.Row(i)
			for j := range row {
				row[j] = dVec[j] / float64(n)
			}
		}
		m.emb.Backward(m.pos.Backward(m.enc.Backward(dH)))
	}
	return vec, backward
}

// Embed returns the encoder's vector for a text (inference mode).
func (m *Matcher) Embed(text string) []float64 {
	m.SetTrain(false)
	v, _ := m.encode(textproc.Tokenize(text))
	return v
}

// Score returns the match score between a question and a candidate text.
func (m *Matcher) Score(question, candidate string) float64 {
	return mat.Dot(m.Embed(question), m.Embed(candidate))
}

// Rerank orders candidate ids by match score against the question,
// descending. Candidate vectors are computed on the fly; production
// deployments precompute them (see Index).
func (m *Matcher) Rerank(question string, candidates []string) []int {
	q := m.Embed(question)
	type scored struct {
		idx   int
		score float64
	}
	list := make([]scored, len(candidates))
	for i, c := range candidates {
		list[i] = scored{i, mat.Dot(q, m.Embed(c))}
	}
	for i := 1; i < len(list); i++ { // insertion sort: recall sets are small
		for j := i; j > 0 && list[j].score > list[j-1].score; j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
	out := make([]int, len(list))
	for i, s := range list {
		out[i] = s.idx
	}
	return out
}

// Index precomputes candidate embeddings so online reranking only encodes
// the user's question — the "uploaded RoBERTa model" serving strategy.
type Index struct {
	m    *Matcher
	ids  []int
	vecs *mat.Matrix
}

// BuildIndex embeds every candidate text once.
func (m *Matcher) BuildIndex(ids []int, texts []string) *Index {
	ix := &Index{m: m, ids: append([]int(nil), ids...), vecs: mat.New(len(texts), m.Cfg.Dim)}
	for i, t := range texts {
		ix.vecs.SetRow(i, m.Embed(t))
	}
	return ix
}

// Best returns the id of the best-matching candidate among the given subset
// (nil subset means all indexed candidates) and its score.
func (ix *Index) Best(question string, subset map[int]bool) (int, float64) {
	q := ix.m.Embed(question)
	best, bestScore := -1, 0.0
	for i, id := range ix.ids {
		if subset != nil && !subset[id] {
			continue
		}
		s := mat.Dot(q, ix.vecs.Row(i))
		if best == -1 || s > bestScore {
			best, bestScore = id, s
		}
	}
	return best, bestScore
}
