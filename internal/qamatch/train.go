package qamatch

import (
	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/textproc"
)

// Pair is one training instance: a user question and its matching RQ text.
type Pair struct {
	Question string
	RQ       string
	// Tenant scopes negative sampling: hard negatives come from the same
	// tenant's other RQs, mirroring the serving-time recall set.
	Tenant int
}

// TrainConfig controls contrastive training.
type TrainConfig struct {
	Epochs      int
	LR          float64
	WeightDecay float64
	ClipNorm    float64
	Negatives   int
	Seed        int64
}

// DefaultTrainConfig matches the repository's standard optimizer settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 2, LR: 1e-3, WeightDecay: 0.01, ClipNorm: 5, Negatives: 2, Seed: 23}
}

// BuildVocab constructs the matcher vocabulary from the training pairs.
func BuildVocab(pairs []Pair) *textproc.Vocab {
	var docs [][]string
	for _, p := range pairs {
		docs = append(docs, textproc.Tokenize(p.Question), textproc.Tokenize(p.RQ))
	}
	return textproc.BuildVocab(docs, 1)
}

// Train optimizes the contrastive objective: sigma(q . rq+) toward 1 and
// sigma(q . rq-) toward 0 for sampled same-tenant negatives. Because the
// towers share weights, each tower is re-encoded before its backward pass.
// Returns the final epoch's mean loss.
func Train(m *Matcher, pairs []Pair, cfg TrainConfig) float64 {
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	m.SetTrain(true)

	// Group candidate RQ texts by tenant for hard-negative sampling.
	byTenant := map[int][]string{}
	for _, p := range pairs {
		byTenant[p.Tenant] = append(byTenant[p.Tenant], p.RQ)
	}

	totalSteps := cfg.Epochs * len(pairs)
	step := 0
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(pairs))
		var epochLoss float64
		for _, pi := range perm {
			p := pairs[pi]
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++

			qTok := textproc.Tokenize(p.Question)
			texts := []string{p.RQ}
			labels := []float64{1}
			pool := byTenant[p.Tenant]
			for k := 0; k < cfg.Negatives && len(pool) > 1; k++ {
				neg := pool[rng.Intn(len(pool))]
				if neg == p.RQ {
					continue
				}
				texts = append(texts, neg)
				labels = append(labels, 0)
			}

			// Precompute all tower vectors (inference pass), then accumulate
			// the scalar loss gradients and replay each tower for backward.
			qVec, _ := m.encode(qTok)
			qVec = append([]float64(nil), qVec...)
			cVecs := make([][]float64, len(texts))
			for i, t := range texts {
				v, _ := m.encode(textproc.Tokenize(t))
				cVecs[i] = append([]float64(nil), v...)
			}
			dQ := make([]float64, m.Cfg.Dim)
			dC := make([][]float64, len(texts))
			var loss float64
			for i := range texts {
				li, dLogit := nn.BinaryCrossEntropy(mat.Dot(qVec, cVecs[i]), labels[i])
				loss += li
				mat.AXPY(dLogit, cVecs[i], dQ)
				dC[i] = make([]float64, m.Cfg.Dim)
				mat.AXPY(dLogit, qVec, dC[i])
			}

			m.params.ZeroGrad()
			// Replay each tower so its caches are fresh, then backward.
			_, backQ := m.encode(qTok)
			backQ(dQ)
			for i, t := range texts {
				_, backC := m.encode(textproc.Tokenize(t))
				backC(dC[i])
			}
			nn.ClipGradNorm(m.Params(), cfg.ClipNorm)
			opt.Step(m.Params())
			epochLoss += loss / float64(len(texts))
		}
		lastLoss = epochLoss / float64(len(pairs))
	}
	m.SetTrain(false)
	return lastLoss
}
