package qamatch

import (
	"testing"

	"intellitag/internal/mat"
	"intellitag/internal/synth"
	"intellitag/internal/textproc"
)

// pairsFromWorld builds paraphrase training pairs from the synthetic world.
func pairsFromWorld(w *synth.World, perRQ int, seed int64) []Pair {
	rng := mat.NewRNG(seed)
	var pairs []Pair
	for _, rq := range w.RQs {
		for k := 0; k < perRQ; k++ {
			pairs = append(pairs, Pair{
				Question: w.Paraphrase(rq.ID, rng),
				RQ:       rq.Text,
				Tenant:   rq.Tenant,
			})
		}
	}
	return pairs
}

var matchWorld = synth.Generate(synth.SmallConfig())

func TestMatcherShapes(t *testing.T) {
	vocab := textproc.NewVocab()
	vocab.Add("hello")
	m := NewMatcher(DefaultConfig(), vocab)
	v := m.Embed("hello world")
	if len(v) != m.Cfg.Dim {
		t.Fatalf("embed dim %d", len(v))
	}
	if m.Score("hello", "hello") == 0 && m.Score("hello", "world") == 0 {
		t.Fatal("scores degenerate")
	}
	if got := len(m.Params()); got == 0 {
		t.Fatal("no params")
	}
}

func TestMatcherTruncates(t *testing.T) {
	vocab := textproc.NewVocab()
	cfg := DefaultConfig()
	cfg.MaxLen = 4
	m := NewMatcher(cfg, vocab)
	long := "a b c d e f g h i j"
	if v := m.Embed(long); len(v) != cfg.Dim {
		t.Fatal("truncation failed")
	}
}

func TestTrainingImprovesMatching(t *testing.T) {
	pairs := pairsFromWorld(matchWorld, 1, 3)
	vocab := BuildVocab(pairs)
	cfg := DefaultConfig()
	m := NewMatcher(cfg, vocab)

	// Held-out paraphrases.
	rng := mat.NewRNG(99)
	type query struct {
		text   string
		rqID   int
		tenant int
	}
	var queries []query
	for _, rq := range matchWorld.RQs[:60] {
		queries = append(queries, query{matchWorld.Paraphrase(rq.ID, rng), rq.ID, rq.Tenant})
	}
	acc := func() float64 {
		hits := 0
		for _, q := range queries {
			// Candidates: the true RQ + 9 same-tenant decoys.
			texts := []string{matchWorld.RQs[q.rqID].Text}
			for _, rq := range matchWorld.RQs {
				if len(texts) == 10 {
					break
				}
				if rq.Tenant == q.tenant && rq.ID != q.rqID {
					texts = append(texts, rq.Text)
				}
			}
			if m.Rerank(q.text, texts)[0] == 0 {
				hits++
			}
		}
		return float64(hits) / float64(len(queries))
	}

	before := acc()
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	loss := Train(m, pairs, tc)
	after := acc()
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if after <= before {
		t.Fatalf("training did not improve accuracy: %.3f -> %.3f", before, after)
	}
	if after < 0.5 {
		t.Fatalf("trained accuracy %.3f too low", after)
	}
}

func TestRerankOrdersByScore(t *testing.T) {
	pairs := pairsFromWorld(matchWorld, 1, 4)
	vocab := BuildVocab(pairs)
	m := NewMatcher(DefaultConfig(), vocab)
	order := m.Rerank("anything", []string{"a", "b", "c"})
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatal("duplicate index")
		}
		seen[i] = true
	}
}

func TestIndexBestMatchesBruteForce(t *testing.T) {
	pairs := pairsFromWorld(matchWorld, 1, 5)
	vocab := BuildVocab(pairs)
	m := NewMatcher(DefaultConfig(), vocab)
	ids := []int{10, 20, 30}
	texts := []string{"how to change password", "cancel my order", "apply for card"}
	ix := m.BuildIndex(ids, texts)

	question := "password change how"
	best, _ := ix.Best(question, nil)
	// Brute force comparison.
	bruteBest, bruteScore := -1, 0.0
	q := m.Embed(question)
	for i, txt := range texts {
		s := mat.Dot(q, m.Embed(txt))
		if bruteBest == -1 || s > bruteScore {
			bruteBest, bruteScore = ids[i], s
		}
	}
	if best != bruteBest {
		t.Fatalf("index best %d != brute %d", best, bruteBest)
	}
	// Subset restriction.
	got, _ := ix.Best(question, map[int]bool{20: true})
	if got != 20 {
		t.Fatalf("subset best = %d", got)
	}
	if got, _ := ix.Best(question, map[int]bool{}); got != -1 {
		t.Fatalf("empty subset best = %d", got)
	}
}

func TestParaphraseKeepsTagPhrases(t *testing.T) {
	rng := mat.NewRNG(7)
	for _, rq := range matchWorld.RQs[:30] {
		p := matchWorld.Paraphrase(rq.ID, rng)
		for _, tid := range rq.TagIDs {
			phrase := matchWorld.Tags[tid].Phrase()
			if !contains(p, phrase) {
				t.Fatalf("paraphrase %q lost tag %q", p, phrase)
			}
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
