package core

import (
	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/nn"
)

// TrainConfig controls TagRec optimization; defaults follow the paper
// (Adam, lr 0.001, weight decay 0.01, linear LR decay).
type TrainConfig struct {
	Epochs      int
	LR          float64
	WeightDecay float64
	ClipNorm    float64
	Seed        int64
	// PretrainEpochs controls the graph-encoder link-prediction warmup of
	// TrainStatic/TrainFull (longer pretraining over-smooths neighbor
	// embeddings; one epoch suffices to organize the space).
	PretrainEpochs int
	// JointEpochs controls the final end-to-end phase of TrainFull
	// (0 means 2*Epochs — co-adapting graph and sequence layers converges
	// more slowly than either stage alone).
	JointEpochs int
}

// DefaultTrainConfig returns the paper's optimizer settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 6, LR: 1e-3, WeightDecay: 0.01, ClipNorm: 5, Seed: 99, PretrainEpochs: 1}
}

// Build constructs a graph encoder + model pair from a heterogeneous graph,
// wiring the ablation flags into both levels. initFeatures (optional) seeds
// the node features with text-derived vectors.
func Build(cfg Config, graph *hetgraph.Graph, initFeatures *mat.Matrix) *Model {
	g := mat.NewRNG(cfg.Seed)
	cache := hetgraph.BuildNeighborCache(graph, cfg.NeighborCap, g.Fork())
	paths := cfg.Metapaths
	if paths == nil {
		paths = hetgraph.AllMetapaths
	}
	enc := NewGraphEncoder(graph.NumTags, cfg.Dim, cfg.Heads, cache, paths, initFeatures, g)
	enc.UniformNeighbor = cfg.WithoutNeighborAttention
	enc.UniformMetapath = cfg.WithoutMetapathAttention
	return NewModel(cfg, enc, g)
}

// TrainEndToEnd trains the model with Cloze-style masked prediction
// (mask proportion per config, as in BERT4Rec and the paper) propagating
// gradients through the sequence layers into the graph layers — the paper's
// end-to-end mode. sessions are click sequences of tag ids. Returns the mean
// loss of the final epoch.
func TrainEndToEnd(m *Model, sessions [][]int, cfg TrainConfig) float64 {
	return train(m, sessions, cfg, m.AllParams())
}

// TrainSequenceOnly trains only the sequence-side parameters, leaving tag
// embeddings fixed — stage two of the static IntelliTag_st variant. The
// model must be frozen (Freeze) first so embeddings come from the lookup
// table.
func TrainSequenceOnly(m *Model, sessions [][]int, cfg TrainConfig) float64 {
	return train(m, sessions, cfg, m.SeqParams())
}

func train(m *Model, sessions [][]int, cfg TrainConfig, params []*nn.Param) float64 {
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	m.SetTrain(true)
	totalSteps := cfg.Epochs * len(sessions)
	step := 0
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		for _, si := range perm {
			session := clipHistory(sessions[si], m.Cfg.MaxLen)
			if len(session) == 0 {
				continue
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++

			// Cloze masking: each position masked with prob MaskProb; always
			// at least the final position (the next-click objective).
			masked := map[int]bool{}
			for i := range session {
				if rng.Float64() < m.Cfg.MaskProb {
					masked[i] = true
				}
			}
			masked[len(session)-1] = true

			zeroGrads(params)
			logits, backward := m.seqForward(session, masked)
			dLogits := mat.New(len(session), m.NumTags)
			var loss float64
			for i := range session {
				if !masked[i] {
					continue
				}
				li, grad := nn.SoftmaxCrossEntropy(logits.Row(i), session[i])
				loss += li
				dLogits.SetRow(i, grad)
			}
			scale := 1 / float64(len(masked))
			mat.ScaleInPlace(dLogits, scale)
			backward(dLogits)
			nn.ClipGradNorm(params, cfg.ClipNorm)
			opt.Step(params)
			epochLoss += loss * scale
			counted++
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
	}
	m.SetTrain(false)
	return lastLoss
}

func zeroGrads(params []*nn.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// PretrainGraph trains the graph encoder alone with a link-prediction
// objective — stage one of IntelliTag_st: for each clk edge (a,b), raise
// sigma(z_a . z_b) against sampled negatives. Returns the final epoch loss.
func PretrainGraph(e *GraphEncoder, graph *hetgraph.Graph, cfg TrainConfig, negatives int) float64 {
	type edge struct{ a, b int }
	var edges []edge
	for t := 0; t < graph.NumTags; t++ {
		for _, n := range graph.CoClickedTags(hetgraph.NodeID(t)) {
			if int(n) > t {
				edges = append(edges, edge{t, int(n)})
			}
		}
		for _, m := range hetgraph.AllMetapaths[1:] { // structural positives
			for _, n := range e.Neighbors.Neighbors(hetgraph.NodeID(t), m) {
				if int(n) > t {
					edges = append(edges, edge{t, int(n)})
					break // one structural positive per path keeps this cheap
				}
			}
		}
	}
	if len(edges) == 0 {
		return 0
	}
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed + 7)
	params := e.Params()
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(edges))
		var epochLoss float64
		for _, ei := range perm {
			ed := edges[ei]
			zeroGrads(params)
			za, ca := e.Forward(ed.a)
			zb, cb := e.Forward(ed.b)
			dza := make([]float64, e.Dim)
			dzb := make([]float64, e.Dim)
			// Positive pair.
			loss, dPos := nn.BinaryCrossEntropy(mat.Dot(za, zb), 1)
			mat.AXPY(dPos, zb, dza)
			mat.AXPY(dPos, za, dzb)
			// Negatives against a.
			for k := 0; k < negatives; k++ {
				neg := rng.Intn(e.NumTags)
				if neg == ed.a || neg == ed.b {
					continue
				}
				zn, cn := e.Forward(neg)
				ln, dNeg := nn.BinaryCrossEntropy(mat.Dot(za, zn), 0)
				loss += ln
				mat.AXPY(dNeg, zn, dza)
				dzn := make([]float64, e.Dim)
				mat.AXPY(dNeg, za, dzn)
				e.Backward(dzn, cn)
			}
			e.Backward(dza, ca)
			e.Backward(dzb, cb)
			nn.ClipGradNorm(params, cfg.ClipNorm)
			opt.Step(params)
			epochLoss += loss
		}
		lastLoss = epochLoss / float64(len(edges))
	}
	return lastLoss
}

func pretrainEpochs(cfg TrainConfig) int {
	if cfg.PretrainEpochs > 0 {
		return cfg.PretrainEpochs
	}
	return 1
}

// TrainStatic runs the full IntelliTag_st recipe: pretrain the graph
// encoder, freeze its embeddings, then train the sequence layers on top.
func TrainStatic(m *Model, graph *hetgraph.Graph, sessions [][]int, cfg TrainConfig) float64 {
	pre := cfg
	pre.Epochs = pretrainEpochs(cfg)
	PretrainGraph(m.Graph, graph, pre, 3)
	m.Freeze()
	return TrainSequenceOnly(m, sessions, cfg)
}

// TrainFull runs the paper's end-to-end IntelliTag recipe (Section IV-D):
// the same pipeline as the static variant — link-prediction pretraining of
// the graph layers, then sequence training over their embeddings — after
// which, "different from the traditional step-by-step training pipeline",
// the sequence loss further adjusts the values of the tag embeddings,
// propagating gradient errors into the shareable graph-based layers.
func TrainFull(m *Model, graph *hetgraph.Graph, sessions [][]int, cfg TrainConfig) float64 {
	pre := cfg
	pre.Epochs = pretrainEpochs(cfg)
	PretrainGraph(m.Graph, graph, pre, 3)
	m.Freeze()
	TrainSequenceOnly(m, sessions, cfg)
	m.Unfreeze()
	joint := cfg
	joint.Epochs = cfg.JointEpochs
	if joint.Epochs == 0 {
		joint.Epochs = 2 * cfg.Epochs
	}
	return TrainEndToEnd(m, sessions, joint)
}

// ExpandPrefixes converts sessions into every next-click training instance
// (all prefixes of length >= 2). The offline trainers feed every sequence
// model the same expanded set so comparisons are apples-to-apples.
func ExpandPrefixes(sessions [][]int) [][]int {
	var out [][]int
	for _, s := range sessions {
		for i := 2; i <= len(s); i++ {
			out = append(out, s[:i])
		}
	}
	return out
}
