package core

import (
	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/obs"
	"intellitag/internal/par"
)

// TrainConfig controls TagRec optimization; defaults follow the paper
// (Adam, lr 0.001, weight decay 0.01, linear LR decay).
type TrainConfig struct {
	Epochs      int
	LR          float64
	WeightDecay float64
	ClipNorm    float64
	Seed        int64
	// PretrainEpochs controls the graph-encoder link-prediction warmup of
	// TrainStatic/TrainFull (longer pretraining over-smooths neighbor
	// embeddings; one epoch suffices to organize the space).
	PretrainEpochs int
	// JointEpochs controls the final end-to-end phase of TrainFull
	// (0 means 2*Epochs — co-adapting graph and sequence layers converges
	// more slowly than either stage alone).
	JointEpochs int
	// BatchSize is the number of examples per Adam step, matching the
	// mini-batched updates of the original BERT4Rec/SR-GNN recipes. <= 1
	// keeps the legacy per-sample loop.
	BatchSize int
	// Workers bounds the goroutines running per-example forward/backward
	// within a batch; <= 0 selects all CPUs. Because every batch slot owns
	// its gradient buffer and slots merge in fixed order, the trained
	// parameters are bit-identical at any worker count for a given seed and
	// batch size.
	Workers int
	// Observer, when set, receives one record per finished epoch — the
	// structured run-log hook. Purely observational: it sees loss, step
	// timing, grad norm and pool hit-rate but must not touch training state.
	Observer func(obs.EpochRecord)
	// Registry, when set, receives live training gauges (epoch, loss, step
	// latency, grad norm, worker-pool queue depths) under intellitag_train_*
	// and intellitag_par_* series.
	Registry *obs.Registry
}

// DefaultTrainConfig returns the paper's optimizer settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 6, LR: 1e-3, WeightDecay: 0.01, ClipNorm: 5, Seed: 99, PretrainEpochs: 1}
}

func (cfg TrainConfig) batchSize() int {
	if cfg.BatchSize < 1 {
		return 1
	}
	return cfg.BatchSize
}

// Build constructs a graph encoder + model pair from a heterogeneous graph,
// wiring the ablation flags into both levels. initFeatures (optional) seeds
// the node features with text-derived vectors.
func Build(cfg Config, graph *hetgraph.Graph, initFeatures *mat.Matrix) *Model {
	g := mat.NewRNG(cfg.Seed)
	cache := hetgraph.BuildNeighborCache(graph, cfg.NeighborCap, g.Fork())
	paths := cfg.Metapaths
	if paths == nil {
		paths = hetgraph.AllMetapaths
	}
	enc := NewGraphEncoder(graph.NumTags, cfg.Dim, cfg.Heads, cache, paths, initFeatures, g)
	enc.UniformNeighbor = cfg.WithoutNeighborAttention
	enc.UniformMetapath = cfg.WithoutMetapathAttention
	enc.Workers = cfg.Workers
	return NewModel(cfg, enc, g)
}

// TrainEndToEnd trains the model with Cloze-style masked prediction
// (mask proportion per config, as in BERT4Rec and the paper) propagating
// gradients through the sequence layers into the graph layers — the paper's
// end-to-end mode. sessions are click sequences of tag ids. Returns the mean
// loss of the final epoch.
func TrainEndToEnd(m *Model, sessions [][]int, cfg TrainConfig) float64 {
	return train(m, sessions, cfg, false)
}

// TrainSequenceOnly trains only the sequence-side parameters, leaving tag
// embeddings fixed — stage two of the static IntelliTag_st variant. The
// model must be frozen (Freeze) first so embeddings come from the lookup
// table.
func TrainSequenceOnly(m *Model, sessions [][]int, cfg TrainConfig) float64 {
	return train(m, sessions, cfg, true)
}

func train(m *Model, sessions [][]int, cfg TrainConfig, seqOnly bool) float64 {
	if cfg.batchSize() == 1 {
		return trainPerSample(m, sessions, cfg, seqOnly)
	}
	return trainBatched(m, sessions, cfg, seqOnly)
}

// stageName labels a sequence-training run for telemetry: "seq" for the
// frozen-embedding stage, "e2e" for end-to-end.
func stageName(seqOnly bool) string {
	if seqOnly {
		return "seq"
	}
	return "e2e"
}

// trainPerSample is the legacy per-sample Adam loop (BatchSize <= 1), kept
// as its own path so existing seeded runs reproduce exactly.
func trainPerSample(m *Model, sessions [][]int, cfg TrainConfig, seqOnly bool) float64 {
	params := m.AllParams()
	if seqOnly {
		params = m.SeqParams()
	}
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	m.SetTrain(true)
	tel := newTrainTelemetry(cfg, stageName(seqOnly), nil)
	totalSteps := cfg.Epochs * len(sessions)
	step := 0
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		for _, si := range perm {
			session := clipHistory(sessions[si], m.Cfg.MaxLen)
			if len(session) == 0 {
				continue
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			tel.stepBegin()

			// Cloze masking: each position masked with prob MaskProb; always
			// at least the final position (the next-click objective).
			masked := map[int]bool{}
			for i := range session {
				if rng.Float64() < m.Cfg.MaskProb {
					masked[i] = true
				}
			}
			masked[len(session)-1] = true

			zeroGrads(params)
			loss := clozeStep(m, session, masked)
			norm := nn.ClipGradNorm(params, cfg.ClipNorm)
			opt.Step(params)
			tel.stepEnd(norm)
			epochLoss += loss
			counted++
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
		tel.epochEnd(epoch, lastLoss)
	}
	m.SetTrain(false)
	return lastLoss
}

// clozeExample is one prepared batch slot: all of its randomness (mask set,
// dropout seed) is drawn on the main goroutine before fan-out.
type clozeExample struct {
	session []int
	masked  map[int]bool
	seed    int64
}

// trainBatched runs mini-batched Cloze training: each batch fans its
// examples out over the worker pool, one replica model per batch slot, and
// merges the per-slot gradients in slot order before a single Adam step.
// The merge order — and therefore the summed gradient, clipping and final
// parameters — depends only on the seed and batch size, never on Workers.
func trainBatched(m *Model, sessions [][]int, cfg TrainConfig, seqOnly bool) float64 {
	params := m.AllParams()
	if seqOnly {
		params = m.SeqParams()
	}
	batch := cfg.batchSize()
	pool := par.New(cfg.Workers)
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	m.SetTrain(true)
	tel := newTrainTelemetry(cfg, stageName(seqOnly), pool)

	nonEmpty := 0
	for _, s := range sessions {
		if len(s) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		m.SetTrain(false)
		return 0
	}
	numBatches := (nonEmpty + batch - 1) / batch
	totalSteps := cfg.Epochs * numBatches

	replicas := make([]*Model, batch)
	repParams := make([][]*nn.Param, batch)
	for j := range replicas {
		r := m.Replicate()
		r.SetTrain(true)
		replicas[j] = r
		if seqOnly {
			repParams[j] = r.SeqParams()
		} else {
			repParams[j] = r.AllParams()
		}
	}

	step := 0
	var lastLoss float64
	losses := make([]float64, batch)
	examples := make([]clozeExample, 0, batch)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		idx := 0
		for idx < len(perm) {
			examples = examples[:0]
			for idx < len(perm) && len(examples) < batch {
				session := clipHistory(sessions[perm[idx]], m.Cfg.MaxLen)
				idx++
				if len(session) == 0 {
					continue
				}
				masked := map[int]bool{}
				for i := range session {
					if rng.Float64() < m.Cfg.MaskProb {
						masked[i] = true
					}
				}
				masked[len(session)-1] = true
				examples = append(examples, clozeExample{session: session, masked: masked, seed: rng.Int63()})
			}
			bl := len(examples)
			if bl == 0 {
				continue
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			tel.stepBegin()
			zeroGrads(params)
			pool.For(bl, func(j int) {
				ex := examples[j]
				r := replicas[j]
				r.Enc.SetDropoutRNG(mat.NewRNG(ex.seed))
				losses[j] = clozeStep(r, ex.session, ex.masked)
			})
			for j := 0; j < bl; j++ {
				nn.MergeGrads(params, repParams[j])
				epochLoss += losses[j]
			}
			counted += bl
			nn.ScaleGrads(params, 1/float64(bl))
			norm := nn.ClipGradNorm(params, cfg.ClipNorm)
			opt.Step(params)
			tel.stepEnd(norm)
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
		tel.epochEnd(epoch, lastLoss)
	}
	m.SetTrain(false)
	return lastLoss
}

// clozeStep runs one example's forward/backward on the given model (master
// or replica), accumulating gradients into that model's parameters, and
// returns the mask-averaged loss.
func clozeStep(m *Model, session []int, masked map[int]bool) float64 {
	logits, backward := m.seqForward(session, masked)
	dLogits := mat.Shared.Get(len(session), m.NumTags)
	var loss float64
	for i := range session {
		if !masked[i] {
			continue
		}
		loss += nn.SoftmaxCrossEntropyInto(logits.Row(i), session[i], dLogits.Row(i))
	}
	scale := 1 / float64(len(masked))
	mat.ScaleInPlace(dLogits, scale)
	backward(dLogits)
	mat.Shared.Put(dLogits)
	return loss * scale
}

func zeroGrads(params []*nn.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// linkEdge is one link-prediction training pair with its pre-drawn negative
// samples (drawn sequentially on the main goroutine so the RNG stream is
// identical at every batch size and worker count).
type linkEdge struct {
	a, b int
	negs []int
}

// PretrainGraph trains the graph encoder alone with a link-prediction
// objective — stage one of IntelliTag_st: for each clk edge (a,b), raise
// sigma(z_a . z_b) against sampled negatives. Batches follow the same
// slot-replica / ordered-merge scheme as trainBatched. Returns the final
// epoch loss.
func PretrainGraph(e *GraphEncoder, graph *hetgraph.Graph, cfg TrainConfig, negatives int) float64 {
	type pair struct{ a, b int }
	var edges []pair
	for t := 0; t < graph.NumTags; t++ {
		for _, n := range graph.CoClickedTags(hetgraph.NodeID(t)) {
			if int(n) > t {
				edges = append(edges, pair{t, int(n)})
			}
		}
		for _, m := range hetgraph.AllMetapaths[1:] { // structural positives
			for _, n := range e.Neighbors.Neighbors(hetgraph.NodeID(t), m) {
				if int(n) > t {
					edges = append(edges, pair{t, int(n)})
					break // one structural positive per path keeps this cheap
				}
			}
		}
	}
	if len(edges) == 0 {
		return 0
	}
	batch := cfg.batchSize()
	pool := par.New(cfg.Workers)
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed + 7)
	params := e.Params()
	tel := newTrainTelemetry(cfg, "pretrain", pool)

	replicas := make([]*GraphEncoder, batch)
	repParams := make([][]*nn.Param, batch)
	for j := range replicas {
		r := e.Replicate()
		replicas[j] = r
		repParams[j] = r.Params()
	}

	losses := make([]float64, batch)
	slots := make([]linkEdge, 0, batch)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(edges))
		var epochLoss float64
		for start := 0; start < len(perm); start += batch {
			end := start + batch
			if end > len(perm) {
				end = len(perm)
			}
			slots = slots[:0]
			for _, ei := range perm[start:end] {
				ed := edges[ei]
				negs := make([]int, negatives)
				for k := range negs {
					negs[k] = rng.Intn(e.NumTags)
				}
				slots = append(slots, linkEdge{a: ed.a, b: ed.b, negs: negs})
			}
			bl := len(slots)
			tel.stepBegin()
			zeroGrads(params)
			pool.For(bl, func(j int) {
				losses[j] = linkPredictionStep(replicas[j], slots[j])
			})
			for j := 0; j < bl; j++ {
				nn.MergeGrads(params, repParams[j])
				epochLoss += losses[j]
			}
			nn.ScaleGrads(params, 1/float64(bl))
			norm := nn.ClipGradNorm(params, cfg.ClipNorm)
			opt.Step(params)
			tel.stepEnd(norm)
		}
		lastLoss = epochLoss / float64(len(edges))
		tel.epochEnd(epoch, lastLoss)
	}
	return lastLoss
}

// linkPredictionStep accumulates one edge's link-prediction gradients into
// enc's parameters and returns its loss. Negatives colliding with either
// endpoint are skipped (their draw was still consumed, preserving the
// legacy RNG stream).
func linkPredictionStep(enc *GraphEncoder, ed linkEdge) float64 {
	za, ca := enc.Forward(ed.a)
	zb, cb := enc.Forward(ed.b)
	dza := mat.Shared.GetVec(enc.Dim)
	dzb := mat.Shared.GetVec(enc.Dim)
	// Positive pair.
	loss, dPos := nn.BinaryCrossEntropy(mat.Dot(za, zb), 1)
	mat.AXPY(dPos, zb, dza)
	mat.AXPY(dPos, za, dzb)
	// Negatives against a.
	for _, neg := range ed.negs {
		if neg == ed.a || neg == ed.b {
			continue
		}
		zn, cn := enc.Forward(neg)
		ln, dNeg := nn.BinaryCrossEntropy(mat.Dot(za, zn), 0)
		loss += ln
		mat.AXPY(dNeg, zn, dza)
		dzn := mat.Shared.GetVec(enc.Dim)
		mat.AXPY(dNeg, za, dzn)
		enc.Backward(dzn, cn) // releases cn; zn is dead past this point
		mat.Shared.PutVec(dzn)
	}
	enc.Backward(dza, ca)
	enc.Backward(dzb, cb)
	mat.Shared.PutVec(dza)
	mat.Shared.PutVec(dzb)
	return loss
}

func pretrainEpochs(cfg TrainConfig) int {
	if cfg.PretrainEpochs > 0 {
		return cfg.PretrainEpochs
	}
	return 1
}

// TrainStatic runs the full IntelliTag_st recipe: pretrain the graph
// encoder, freeze its embeddings, then train the sequence layers on top.
func TrainStatic(m *Model, graph *hetgraph.Graph, sessions [][]int, cfg TrainConfig) float64 {
	pre := cfg
	pre.Epochs = pretrainEpochs(cfg)
	PretrainGraph(m.Graph, graph, pre, 3)
	m.Freeze()
	return TrainSequenceOnly(m, sessions, cfg)
}

// TrainFull runs the paper's end-to-end IntelliTag recipe (Section IV-D):
// the same pipeline as the static variant — link-prediction pretraining of
// the graph layers, then sequence training over their embeddings — after
// which, "different from the traditional step-by-step training pipeline",
// the sequence loss further adjusts the values of the tag embeddings,
// propagating gradient errors into the shareable graph-based layers.
func TrainFull(m *Model, graph *hetgraph.Graph, sessions [][]int, cfg TrainConfig) float64 {
	pre := cfg
	pre.Epochs = pretrainEpochs(cfg)
	PretrainGraph(m.Graph, graph, pre, 3)
	m.Freeze()
	TrainSequenceOnly(m, sessions, cfg)
	m.Unfreeze()
	joint := cfg
	joint.Epochs = cfg.JointEpochs
	if joint.Epochs == 0 {
		joint.Epochs = 2 * cfg.Epochs
	}
	return TrainEndToEnd(m, sessions, joint)
}

// ExpandPrefixes converts sessions into every next-click training instance
// (all prefixes of length >= 2). The offline trainers feed every sequence
// model the same expanded set so comparisons are apples-to-apples.
func ExpandPrefixes(sessions [][]int) [][]int {
	var out [][]int
	for _, s := range sessions {
		for i := 2; i <= len(s); i++ {
			out = append(out, s[:i])
		}
	}
	return out
}
