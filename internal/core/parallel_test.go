package core

import (
	"testing"

	"intellitag/internal/mat"
	"intellitag/internal/synth"
)

// trainAtWorkers builds a model from a fixed seed, trains it end-to-end with
// the given batch size / worker count, and returns the final parameter
// vector.
func trainAtWorkers(batch, workers int) ([]float64, float64) {
	w := synth.Generate(synth.SmallConfig())
	train, _, _ := w.SplitSessions(0.8, 0.1)
	graph := w.BuildGraph(train)

	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	cfg.NeighborCap = 8
	m := Build(cfg, graph, nil)

	var sessions [][]int
	for _, s := range train {
		sessions = append(sessions, s.Clicks)
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	tc.BatchSize = batch
	tc.Workers = workers
	loss := TrainEndToEnd(m, ExpandPrefixes(sessions)[:120], tc)

	var flat []float64
	for _, p := range m.AllParams() {
		flat = append(flat, p.Value.Data...)
	}
	return flat, loss
}

// TestTrainDeterministicAcrossWorkers is the tentpole guarantee: with a fixed
// seed and batch size, the trained parameters are bit-identical whether the
// batch fan-out runs on 1 worker or 4.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	p1, l1 := trainAtWorkers(4, 1)
	p4, l4 := trainAtWorkers(4, 4)
	if l1 != l4 {
		t.Fatalf("loss diverges across worker counts: %v vs %v", l1, l4)
	}
	if len(p1) != len(p4) {
		t.Fatalf("parameter counts differ: %d vs %d", len(p1), len(p4))
	}
	for i := range p1 {
		if p1[i] != p4[i] {
			t.Fatalf("parameter %d diverges across worker counts: %v vs %v", i, p1[i], p4[i])
		}
	}
}

// TestPretrainGraphDeterministicAcrossWorkers: same guarantee for the
// link-prediction pretraining stage.
func TestPretrainGraphDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]float64, float64) {
		e := tinyEncoder(false, false)
		cfg := DefaultTrainConfig()
		cfg.Epochs = 3
		cfg.BatchSize = 4
		cfg.Workers = workers
		loss := PretrainGraph(e, tinyGraph(), cfg, 3)
		var flat []float64
		for _, p := range e.Params() {
			flat = append(flat, p.Value.Data...)
		}
		return flat, loss
	}
	p1, l1 := run(1)
	p4, l4 := run(4)
	if l1 != l4 {
		t.Fatalf("pretrain loss diverges: %v vs %v", l1, l4)
	}
	for i := range p1 {
		if p1[i] != p4[i] {
			t.Fatalf("pretrain parameter %d diverges: %v vs %v", i, p1[i], p4[i])
		}
	}
}

// TestPretrainBatchOneMatchesLegacyStream: with BatchSize 1 the batched code
// path must consume the RNG stream exactly like the seed repo's interleaved
// loop (negatives pre-drawn per edge draw the same values in the same order).
func TestPretrainBatchOneMatchesLegacyStream(t *testing.T) {
	run := func(batch int) float64 {
		e := tinyEncoder(false, false)
		cfg := DefaultTrainConfig()
		cfg.Epochs = 2
		cfg.BatchSize = batch
		return PretrainGraph(e, tinyGraph(), cfg, 3)
	}
	if run(0) != run(1) {
		t.Fatal("BatchSize 0 and 1 should be the same path")
	}
}

// TestEmbedAllParallelMatchesSequential: the offline embedding sweep must
// produce identical embeddings at any worker count.
func TestEmbedAllParallelMatchesSequential(t *testing.T) {
	e := tinyEncoder(false, false)
	e.Workers = 1
	seq := e.EmbedAll()
	e.Workers = 4
	parl := e.EmbedAll()
	for i := range seq.Data {
		if seq.Data[i] != parl.Data[i] {
			t.Fatalf("EmbedAll diverges at %d: %v vs %v", i, seq.Data[i], parl.Data[i])
		}
	}
}

// TestScoreCandidatesMatchesNextLogits: the candidate-column fast path must
// be bit-identical to indexing the full logit vector, in both output-layer
// modes (free projection and tied table) and with the contextual-attention
// ablation's mean trunk.
func TestScoreCandidatesMatchesNextLogits(t *testing.T) {
	for _, tied := range []bool{false, true} {
		for _, ablated := range []bool{false, true} {
			e := tinyEncoder(false, false)
			cfg := DefaultConfig()
			cfg.Dim = 4
			cfg.Heads = 2
			cfg.MaxLen = 8
			cfg.TieProjection = tied
			cfg.WithoutContextualAttention = ablated
			m := NewModel(cfg, e, mat.NewRNG(11))
			m.Freeze()
			history := []int{2, 0, 5, 1}
			cands := []int{0, 1, 3, 4, 5}
			logits := m.NextLogits(history)
			got := m.ScoreCandidates(history, cands)
			for i, c := range cands {
				if got[i] != logits[c] {
					t.Fatalf("tied=%v ablated=%v: candidate %d score %v != logit %v",
						tied, ablated, c, got[i], logits[c])
				}
			}
		}
	}
}

// TestReplicaScoresMatchMaster: scorer replicas built for the sharded serving
// path must return exactly the master's scores.
func TestReplicaScoresMatchMaster(t *testing.T) {
	e := tinyEncoder(false, false)
	cfg := DefaultConfig()
	cfg.Dim = 4
	cfg.Heads = 2
	cfg.MaxLen = 8
	m := NewModel(cfg, e, mat.NewRNG(9))
	m.Freeze()
	history := []int{0, 1, 4}
	cands := []int{0, 2, 3, 5}
	want := m.ScoreCandidates(history, cands)
	for _, rep := range m.ScorerReplicas(3) {
		got := rep.(*Model).ScoreCandidates(history, cands)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica score %d diverges: %v vs %v", i, got[i], want[i])
			}
		}
	}
}
