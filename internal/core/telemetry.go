package core

import (
	"time"

	"intellitag/internal/mat"
	"intellitag/internal/obs"
	"intellitag/internal/par"
)

// trainTelemetry is the optional observation side-car of one training stage.
// It feeds two sinks: the per-epoch Observer callback (structured run logs)
// and live registry gauges. All methods are nil-receiver-safe, so the
// training loops call them unconditionally; with neither sink configured the
// loops behave — and allocate — exactly as before. Telemetry never touches
// the RNG streams or merge order, so trained parameters stay bit-identical
// with observation on or off.
type trainTelemetry struct {
	observer func(obs.EpochRecord)
	stage    string
	epochs   int

	epochG *obs.Gauge
	lossG  *obs.Gauge
	stepG  *obs.Gauge // mean step latency of the last epoch, microseconds
	normG  *obs.Gauge
	poolG  *obs.Gauge // mat.Shared hit rate

	stepStart time.Time
	stepTotal time.Duration
	steps     int
	lastNorm  float64
}

// newTrainTelemetry wires a stage's telemetry from the config; returns nil
// (a no-op) when neither an Observer nor a Registry is set. When a registry
// is present, the stage's worker pool also reports queue-depth gauges.
func newTrainTelemetry(cfg TrainConfig, stage string, pool *par.Pool) *trainTelemetry {
	if cfg.Observer == nil && cfg.Registry == nil {
		return nil
	}
	t := &trainTelemetry{observer: cfg.Observer, stage: stage, epochs: cfg.Epochs}
	if reg := cfg.Registry; reg != nil {
		t.epochG = reg.Gauge("intellitag_train_epoch", "stage", stage)
		t.lossG = reg.Gauge("intellitag_train_loss", "stage", stage)
		t.stepG = reg.Gauge("intellitag_train_step_us", "stage", stage)
		t.normG = reg.Gauge("intellitag_train_grad_norm", "stage", stage)
		t.poolG = reg.Gauge("intellitag_pool_hit_rate")
		if pool != nil {
			pool.Instrument(
				reg.Gauge("intellitag_par_active_workers", "stage", stage),
				reg.Gauge("intellitag_par_pending_items", "stage", stage),
			)
		}
	}
	return t
}

// stepBegin marks the start of one optimizer step.
func (t *trainTelemetry) stepBegin() {
	if t == nil {
		return
	}
	t.stepStart = time.Now() //lint:ignore detsource wall-time telemetry only; step timing never feeds model state
}

// stepEnd closes the step, recording its wall time and pre-clip grad norm.
func (t *trainTelemetry) stepEnd(gradNorm float64) {
	if t == nil {
		return
	}
	t.stepTotal += time.Since(t.stepStart) //lint:ignore detsource wall-time telemetry only; step timing never feeds model state
	t.steps++
	t.lastNorm = gradNorm
	t.normG.Set(gradNorm)
}

// epochEnd emits the epoch's record to both sinks and resets step counters.
func (t *trainTelemetry) epochEnd(epoch int, loss float64) {
	if t == nil {
		return
	}
	var stepMicros float64
	if t.steps > 0 {
		stepMicros = float64(t.stepTotal.Microseconds()) / float64(t.steps)
	}
	hitRate := mat.Shared.HitRate()
	t.epochG.Set(float64(epoch + 1))
	t.lossG.Set(loss)
	t.stepG.Set(stepMicros)
	t.poolG.Set(hitRate)
	if t.observer != nil {
		t.observer(obs.EpochRecord{
			Stage:       t.stage,
			Epoch:       epoch + 1,
			Epochs:      t.epochs,
			Loss:        loss,
			Steps:       t.steps,
			StepMicros:  stepMicros,
			GradNorm:    t.lastNorm,
			PoolHitRate: hitRate,
		})
	}
	t.stepTotal = 0
	t.steps = 0
}
