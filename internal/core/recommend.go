package core

import "sort"

// TopK returns the k highest-scoring tags from logits restricted to the
// candidate set (all tags when candidates is nil), in descending score
// order with deterministic (id) tie-breaking.
func TopK(logits []float64, candidates []int, k int) []Scored {
	var pool []Scored
	if candidates == nil {
		pool = make([]Scored, len(logits))
		for i, s := range logits {
			pool[i] = Scored{Tag: i, Score: s}
		}
	} else {
		pool = make([]Scored, 0, len(candidates))
		for _, c := range candidates {
			pool = append(pool, Scored{Tag: c, Score: logits[c]})
		}
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].Score != pool[j].Score {
			return pool[i].Score > pool[j].Score
		}
		return pool[i].Tag < pool[j].Tag
	})
	if k > 0 && len(pool) > k {
		pool = pool[:k]
	}
	return pool
}

// Recommend returns the model's top-k next-tag recommendations given the
// click history, optionally restricted to a candidate set (e.g. the
// tenant's tags, as the multi-tenant deployment requires).
func (m *Model) Recommend(history []int, candidates []int, k int) []Scored {
	return TopK(m.NextLogits(history), candidates, k)
}
