// Package core implements the paper's primary contribution: the TagRec
// model. Graph-based layers extract structural information from the TagRec
// heterogeneous graph with neighbor attention (eq. 4-5) and metapath
// attention (eq. 6-7); sequence-based Transformer layers with contextual
// attention model the user's click sequence (eq. 8-12); and the two are
// trained end-to-end, with a static two-stage variant (IntelliTag_st) for
// comparison.
package core

import (
	"fmt"
	"math"
	"sync"

	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/par"
)

// leakySlope is the LeakyReLU negative slope of the neighbor attention.
const leakySlope = 0.2

// GraphEncoder computes tag embeddings z_t from trainable node features via
// per-metapath neighbor attention and metapath attention. Ablation flags
// replace an attention level with uniform weighting (Table V variants).
type GraphEncoder struct {
	Dim, Heads int
	NumTags    int

	// X holds the trainable node feature vectors x_t (one row per tag),
	// initialized from text-derived features per Section VI-A3.
	X *nn.Param
	// Wn[pathIdx][head] is the 2d x 1 neighbor-attention weight of eq. 4.
	Wn [][]*nn.Param
	// Metapath attention parameters of eq. 6-7 (hd = Heads*Dim).
	Wp *nn.Param // hd x hd
	Bp *nn.Param // 1 x hd
	Vp *nn.Param // 1 x hd
	Wl *nn.Param // d x hd
	Bl *nn.Param // 1 x d

	// Neighbors provides the cached metapath neighbor lists.
	Neighbors *hetgraph.NeighborCache
	// Paths lists the metapaths in use (normally hetgraph.AllMetapaths; a
	// subset supports metapath-ablation experiments).
	Paths []hetgraph.Metapath

	// UniformNeighbor disables neighbor attention (w/o na): neighbors are
	// averaged uniformly.
	UniformNeighbor bool
	// UniformMetapath disables metapath attention (w/o ma): path embeddings
	// are averaged uniformly.
	UniformMetapath bool

	// Workers bounds the parallelism of EmbedAll (offline batch inference);
	// <= 0 selects all CPUs, 1 keeps the sequential path.
	Workers int

	params *nn.Collector

	// Backward scratch, reused across calls. Unlike Forward (which EmbedAll
	// fans out concurrently and therefore pools its caches), Backward only
	// ever runs on one goroutine per encoder instance — the batched trainers
	// give every batch slot its own replica — so the scratch can live here.
	bwdFused []float64
	bwdH     [][]float64
	bwdBeta  []float64
	bwdSum   []float64
	bwdDa    []float64
}

// NewGraphEncoder builds a graph encoder over the cached neighbors. Node
// features are initialized from initFeatures when non-nil (rows must be
// dim-sized), otherwise randomly.
func NewGraphEncoder(numTags, dim, heads int, cache *hetgraph.NeighborCache, paths []hetgraph.Metapath, initFeatures *mat.Matrix, g *mat.RNG) *GraphEncoder {
	if len(paths) == 0 {
		paths = hetgraph.AllMetapaths
	}
	hd := heads * dim
	e := &GraphEncoder{
		Dim: dim, Heads: heads, NumTags: numTags,
		X:         nn.NewParam("gnn.X", numTags, dim),
		Wp:        nn.NewParam("gnn.Wp", hd, hd),
		Bp:        nn.NewParam("gnn.bp", 1, hd),
		Vp:        nn.NewParam("gnn.vp", 1, hd),
		Wl:        nn.NewParam("gnn.Wl", dim, hd),
		Bl:        nn.NewParam("gnn.bl", 1, dim),
		Neighbors: cache,
		Paths:     paths,
	}
	if initFeatures != nil {
		copy(e.X.Value.Data, initFeatures.Data)
	} else {
		// Unit-variance features keep the sigmoid aggregation of eq. 5 out
		// of its flat region so tag embeddings are distinguishable from the
		// first step (a smaller scale collapses every z_t to ~sigma(0)).
		e.X.InitNormal(g, 1.0)
	}
	g.Xavier(e.Wp.Value)
	g.Xavier(e.Vp.Value)
	g.Xavier(e.Wl.Value)
	for _, path := range paths {
		var headWeights []*nn.Param
		for h := 0; h < heads; h++ {
			p := nn.NewParam(fmt.Sprintf("gnn.Wn.%s.%d", path, h), 2*dim, 1)
			g.Xavier(p.Value)
			headWeights = append(headWeights, p)
		}
		e.Wn = append(e.Wn, headWeights)
	}
	e.params = nn.NewCollector()
	e.params.Add(e.X, e.Wp, e.Bp, e.Vp, e.Wl, e.Bl)
	for _, hw := range e.Wn {
		e.params.Add(hw...)
	}
	return e
}

// Params returns all trainable parameters (including node features).
func (e *GraphEncoder) Params() []*nn.Param { return e.params.Params() }

// tagForward caches everything tagBackward needs for one tag. Caches are
// drawn from tfPool and recycled — release (called by Backward, or directly
// for inference-only forwards) returns the cache with every interior slice
// intact, so steady-state Forward calls allocate nothing. A cache that is
// never released (e.g. the one captured by a TagAttention snapshot) simply
// falls to the garbage collector.
type tagForward struct {
	tag     int
	neigh   [][]int       // per path: neighbor ids (self included, first)
	attn    [][][]float64 // per path, per head: softmax attention over neigh
	preAct  [][][]float64 // per path, per head: pre-LeakyReLU scores
	sumVec  [][][]float64 // per path, per head: weighted neighbor sum s
	hPath   [][]float64   // per path: h^rho (hd)
	uPath   [][]float64   // per path: tanh(Wp h + bp)
	beta    []float64     // softmax metapath attention
	betaRaw []float64     // pre-softmax metapath scores (scratch)
	fused   []float64     // sum_rho beta_rho h^rho
	z       []float64     // the returned embedding
}

// tfPool recycles tagForward caches. Forward may run concurrently on one
// encoder (EmbedAll fans tags out over a worker pool), so per-call scratch
// cannot live on the encoder itself; each call checks a private cache out of
// the pool instead.
var tfPool = sync.Pool{New: func() any { return new(tagForward) }}

// growOuter resizes an outer slice to n entries, keeping inner slices that
// earlier calls allocated (they sit between len and cap) available for reuse.
func growOuter[T any](s [][]T, n int) [][]T {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([][]T, n)
	copy(ns, s[:cap(s)])
	return ns
}

// ensureInts resizes an int slice to n, reusing capacity; contents are
// unspecified.
func ensureInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// ensureZero resizes a float slice to n and zeroes it.
func ensureZero(s []float64, n int) []float64 {
	s = mat.EnsureVec(s, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// release returns a forward cache to the pool. The cache, the z slice Forward
// returned with it, and every attention slice it holds become invalid.
func (e *GraphEncoder) release(c *tagForward) {
	if c != nil {
		tfPool.Put(c)
	}
}

// Forward computes z_t (a dim-vector) for one tag and returns the cache for
// Backward. Both z and the cache come from a pooled buffer: they stay valid
// until the cache is released (Backward releases it), and must be copied by
// callers that need them longer.
func (e *GraphEncoder) Forward(tag int) ([]float64, *tagForward) {
	hd := e.Heads * e.Dim
	cache := tfPool.Get().(*tagForward)
	cache.tag = tag
	nPaths := len(e.Paths)
	cache.neigh = growOuter(cache.neigh, nPaths)
	cache.attn = growOuter(cache.attn, nPaths)
	cache.preAct = growOuter(cache.preAct, nPaths)
	cache.sumVec = growOuter(cache.sumVec, nPaths)
	cache.hPath = growOuter(cache.hPath, nPaths)
	cache.uPath = growOuter(cache.uPath, nPaths)
	xt := e.X.Value.Row(tag)

	for pi, path := range e.Paths {
		nb := e.Neighbors.Neighbors(hetgraph.NodeID(tag), path)
		// Self-loop keeps the aggregation well-defined for isolated tags and
		// lets the target contribute to its own embedding.
		ids := ensureInts(cache.neigh[pi], len(nb)+1)
		ids[0] = tag
		for i, n := range nb {
			ids[i+1] = int(n)
		}
		cache.neigh[pi] = ids

		h := mat.EnsureVec(cache.hPath[pi], hd)
		attnPath := growOuter(cache.attn[pi], e.Heads)
		prePath := growOuter(cache.preAct[pi], e.Heads)
		sumPath := growOuter(cache.sumVec[pi], e.Heads)
		for head := 0; head < e.Heads; head++ {
			w := e.Wn[pi][head].Value.Data // 2d
			pre := mat.EnsureVec(prePath[head], len(ids))
			for i, n := range ids {
				xn := e.X.Value.Row(n)
				var s float64
				for j := 0; j < e.Dim; j++ {
					s += w[j] * xt[j]
					s += w[e.Dim+j] * xn[j]
				}
				pre[i] = leaky(s)
			}
			a := mat.EnsureVec(attnPath[head], len(ids))
			if e.UniformNeighbor {
				u := 1 / float64(len(ids))
				for i := range a {
					a[i] = u
				}
			} else {
				mat.SoftmaxInto(pre, a)
			}
			sum := ensureZero(sumPath[head], e.Dim)
			for i, n := range ids {
				mat.AXPY(a[i], e.X.Value.Row(n), sum)
			}
			out := h[head*e.Dim : (head+1)*e.Dim]
			for j, v := range sum {
				out[j] = nn.Sigmoid(v)
			}
			attnPath[head], prePath[head], sumPath[head] = a, pre, sum
		}
		cache.attn[pi] = attnPath
		cache.preAct[pi] = prePath
		cache.sumVec[pi] = sumPath
		cache.hPath[pi] = h
	}

	// Metapath attention (eq. 6-7).
	betaRaw := mat.EnsureVec(cache.betaRaw, nPaths)
	cache.betaRaw = betaRaw
	for pi := range e.Paths {
		u := mat.EnsureVec(cache.uPath[pi], hd)
		for i := 0; i < hd; i++ {
			u[i] = math.Tanh(mat.Dot(e.Wp.Value.Row(i), cache.hPath[pi]) + e.Bp.Value.At(0, i))
		}
		cache.uPath[pi] = u
		betaRaw[pi] = mat.Dot(e.Vp.Value.Row(0), u)
	}
	beta := mat.EnsureVec(cache.beta, nPaths)
	if e.UniformMetapath {
		u := 1 / float64(nPaths)
		for i := range beta {
			beta[i] = u
		}
	} else {
		mat.SoftmaxInto(betaRaw, beta)
	}
	cache.beta = beta
	fused := ensureZero(cache.fused, hd)
	for pi := range e.Paths {
		mat.AXPY(beta[pi], cache.hPath[pi], fused)
	}
	cache.fused = fused

	// Residual connection from the node's own features: the attention
	// aggregate carries neighborhood structure, while the residual keeps
	// each tag's identity linearly recoverable — without it, hub tags'
	// embeddings collapse toward their neighborhood mean and the sequence
	// layers cannot read which tag was actually clicked (a standard GNN
	// residual, documented in DESIGN.md).
	z := mat.EnsureVec(cache.z, e.Dim)
	for i := 0; i < e.Dim; i++ {
		z[i] = mat.Dot(e.Wl.Value.Row(i), fused) + e.Bl.Value.At(0, i) + xt[i]
	}
	cache.z = z
	return z, cache
}

// Backward propagates dz for one tag through metapath and neighbor attention
// into all parameters and node features. It releases the cache: neither c nor
// the z returned with it may be used afterwards.
func (e *GraphEncoder) Backward(dz []float64, c *tagForward) {
	hd := e.Heads * e.Dim
	// Residual path: dz flows straight into the node's own features.
	mat.AXPY(1, dz, e.X.Grad.Row(c.tag))
	// z = Wl fused + bl (+ x_t).
	dFused := ensureZero(e.bwdFused, hd)
	e.bwdFused = dFused
	for i := 0; i < e.Dim; i++ {
		g := dz[i]
		if g == 0 {
			continue
		}
		mat.AXPY(g, c.fused, e.Wl.Grad.Row(i))
		e.Bl.Grad.Data[i] += g
		mat.AXPY(g, e.Wl.Value.Row(i), dFused)
	}

	e.bwdH = growOuter(e.bwdH, len(e.Paths))
	dH := e.bwdH
	dBeta := mat.EnsureVec(e.bwdBeta, len(e.Paths))
	e.bwdBeta = dBeta
	for pi := range e.Paths {
		dH[pi] = ensureZero(dH[pi], hd)
		mat.AXPY(c.beta[pi], dFused, dH[pi])
		dBeta[pi] = mat.Dot(dFused, c.hPath[pi])
	}
	if !e.UniformMetapath {
		// Softmax backward over beta.
		var dot float64
		for pi := range e.Paths {
			dot += dBeta[pi] * c.beta[pi]
		}
		for pi := range e.Paths {
			dRaw := c.beta[pi] * (dBeta[pi] - dot)
			if dRaw == 0 {
				continue
			}
			// betaRaw = vp . u; u = tanh(Wp h + bp).
			u := c.uPath[pi]
			mat.AXPY(dRaw, u, e.Vp.Grad.Row(0))
			for i := 0; i < hd; i++ {
				dU := dRaw * e.Vp.Value.At(0, i)
				dPre := dU * (1 - u[i]*u[i])
				if dPre == 0 {
					continue
				}
				mat.AXPY(dPre, c.hPath[pi], e.Wp.Grad.Row(i))
				e.Bp.Grad.Data[i] += dPre
				mat.AXPY(dPre, e.Wp.Value.Row(i), dH[pi])
			}
		}
	}

	// Neighbor attention backward per path, per head.
	xt := e.X.Value.Row(c.tag)
	dxt := e.X.Grad.Row(c.tag)
	for pi := range e.Paths {
		ids := c.neigh[pi]
		for head := 0; head < e.Heads; head++ {
			dOut := dH[pi][head*e.Dim : (head+1)*e.Dim]
			sum := c.sumVec[pi][head]
			a := c.attn[pi][head]
			// out = sigmoid(sum).
			dSum := mat.EnsureVec(e.bwdSum, e.Dim)
			e.bwdSum = dSum
			for j := range dSum {
				s := nn.Sigmoid(sum[j])
				dSum[j] = dOut[j] * s * (1 - s)
			}
			// sum = sum_n a_n x_n.
			da := mat.EnsureVec(e.bwdDa, len(ids))
			e.bwdDa = da
			for i, n := range ids {
				da[i] = mat.Dot(dSum, e.X.Value.Row(n))
				mat.AXPY(a[i], dSum, e.X.Grad.Row(n))
			}
			if e.UniformNeighbor {
				continue
			}
			// Softmax backward over a.
			var dot float64
			for i := range ids {
				dot += da[i] * a[i]
			}
			w := e.Wn[pi][head].Value.Data
			wGrad := e.Wn[pi][head].Grad.Data
			for i, n := range ids {
				dPre := a[i] * (da[i] - dot)
				if dPre == 0 {
					continue
				}
				// LeakyReLU backward.
				if c.preAct[pi][head][i] < 0 {
					dPre *= leakySlope
				}
				xn := e.X.Value.Row(n)
				dxn := e.X.Grad.Row(n)
				for j := 0; j < e.Dim; j++ {
					wGrad[j] += dPre * xt[j]
					wGrad[e.Dim+j] += dPre * xn[j]
					dxt[j] += dPre * w[j]
					dxn[j] += dPre * w[e.Dim+j]
				}
			}
		}
	}
	e.release(c)
}

// EmbedAll runs Forward for every tag and returns the NumTags x Dim matrix
// of embeddings — the offline inference step whose output the deployment
// uploads to the online model servers (Section V-B). Rows are computed on
// the encoder's worker pool; each tag's embedding is independent and written
// to its own row, so the result is identical at any worker count.
func (e *GraphEncoder) EmbedAll() *mat.Matrix {
	out := mat.New(e.NumTags, e.Dim)
	par.New(e.Workers).For(e.NumTags, func(t int) {
		z, c := e.Forward(t)
		out.SetRow(t, z)
		e.release(c)
	})
	return out
}

// Replicate returns an encoder whose parameters alias e's values but own
// private gradient buffers, for concurrent per-example backward passes. The
// neighbor cache, metapath list and ablation flags are shared (read-only).
func (e *GraphEncoder) Replicate() *GraphEncoder {
	r := &GraphEncoder{
		Dim: e.Dim, Heads: e.Heads, NumTags: e.NumTags,
		X:  e.X.Shadow(),
		Wp: e.Wp.Shadow(), Bp: e.Bp.Shadow(), Vp: e.Vp.Shadow(),
		Wl: e.Wl.Shadow(), Bl: e.Bl.Shadow(),
		Neighbors:       e.Neighbors,
		Paths:           e.Paths,
		UniformNeighbor: e.UniformNeighbor,
		UniformMetapath: e.UniformMetapath,
		Workers:         1,
	}
	for _, hw := range e.Wn {
		shadowed := make([]*nn.Param, len(hw))
		for h, p := range hw {
			shadowed[h] = p.Shadow()
		}
		r.Wn = append(r.Wn, shadowed)
	}
	// Rebuild the collector in the exact order of NewGraphEncoder so the
	// replica's Params() align index-by-index with the master's for the
	// ordered gradient merge.
	r.params = nn.NewCollector()
	r.params.Add(r.X, r.Wp, r.Bp, r.Vp, r.Wl, r.Bl)
	for _, hw := range r.Wn {
		r.params.Add(hw...)
	}
	return r
}

// TagAttention is a snapshot of both attention levels for one tag, extracted
// from a single Forward call so the two Figure 5 signals never recompute the
// encoder per query.
type TagAttention struct {
	heads int
	paths []hetgraph.Metapath
	beta  []float64
	neigh [][]int
	attn  [][][]float64
}

// Attention runs one Forward for the tag and captures both attention levels.
func (e *GraphEncoder) Attention(tag int) *TagAttention {
	_, cache := e.Forward(tag)
	return &TagAttention{heads: e.Heads, paths: e.Paths, beta: cache.beta, neigh: cache.neigh, attn: cache.attn}
}

// MetapathWeights returns a copy of the softmax metapath attention values —
// the Figure 5(b) case-study signal.
func (a *TagAttention) MetapathWeights() []float64 {
	return append([]float64(nil), a.beta...)
}

// NeighborWeights returns copies of the neighbor ids (self first) and
// head-averaged attention values under one metapath — the Figure 5(a)
// signal. Both are nil when the path is not in the encoder's set.
func (a *TagAttention) NeighborWeights(path hetgraph.Metapath) ([]int, []float64) {
	for pi, p := range a.paths {
		if p != path {
			continue
		}
		ids := append([]int(nil), a.neigh[pi]...)
		avg := make([]float64, len(ids))
		for head := 0; head < a.heads; head++ {
			for i, w := range a.attn[pi][head] {
				avg[i] += w / float64(a.heads)
			}
		}
		return ids, avg
	}
	return nil, nil
}

// MetapathWeights returns the metapath attention for one tag; callers that
// also need NeighborWeights should take one Attention snapshot instead of
// paying a Forward per query.
func (e *GraphEncoder) MetapathWeights(tag int) []float64 {
	return e.Attention(tag).MetapathWeights()
}

// NeighborWeights returns the neighbor ids (self first) and head-averaged
// attention values for a tag under one metapath.
func (e *GraphEncoder) NeighborWeights(tag int, path hetgraph.Metapath) ([]int, []float64) {
	return e.Attention(tag).NeighborWeights(path)
}

func leaky(v float64) float64 {
	if v > 0 {
		return v
	}
	return leakySlope * v
}
