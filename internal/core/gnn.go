// Package core implements the paper's primary contribution: the TagRec
// model. Graph-based layers extract structural information from the TagRec
// heterogeneous graph with neighbor attention (eq. 4-5) and metapath
// attention (eq. 6-7); sequence-based Transformer layers with contextual
// attention model the user's click sequence (eq. 8-12); and the two are
// trained end-to-end, with a static two-stage variant (IntelliTag_st) for
// comparison.
package core

import (
	"fmt"
	"math"

	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/par"
)

// leakySlope is the LeakyReLU negative slope of the neighbor attention.
const leakySlope = 0.2

// GraphEncoder computes tag embeddings z_t from trainable node features via
// per-metapath neighbor attention and metapath attention. Ablation flags
// replace an attention level with uniform weighting (Table V variants).
type GraphEncoder struct {
	Dim, Heads int
	NumTags    int

	// X holds the trainable node feature vectors x_t (one row per tag),
	// initialized from text-derived features per Section VI-A3.
	X *nn.Param
	// Wn[pathIdx][head] is the 2d x 1 neighbor-attention weight of eq. 4.
	Wn [][]*nn.Param
	// Metapath attention parameters of eq. 6-7 (hd = Heads*Dim).
	Wp *nn.Param // hd x hd
	Bp *nn.Param // 1 x hd
	Vp *nn.Param // 1 x hd
	Wl *nn.Param // d x hd
	Bl *nn.Param // 1 x d

	// Neighbors provides the cached metapath neighbor lists.
	Neighbors *hetgraph.NeighborCache
	// Paths lists the metapaths in use (normally hetgraph.AllMetapaths; a
	// subset supports metapath-ablation experiments).
	Paths []hetgraph.Metapath

	// UniformNeighbor disables neighbor attention (w/o na): neighbors are
	// averaged uniformly.
	UniformNeighbor bool
	// UniformMetapath disables metapath attention (w/o ma): path embeddings
	// are averaged uniformly.
	UniformMetapath bool

	// Workers bounds the parallelism of EmbedAll (offline batch inference);
	// <= 0 selects all CPUs, 1 keeps the sequential path.
	Workers int

	params *nn.Collector
}

// NewGraphEncoder builds a graph encoder over the cached neighbors. Node
// features are initialized from initFeatures when non-nil (rows must be
// dim-sized), otherwise randomly.
func NewGraphEncoder(numTags, dim, heads int, cache *hetgraph.NeighborCache, paths []hetgraph.Metapath, initFeatures *mat.Matrix, g *mat.RNG) *GraphEncoder {
	if len(paths) == 0 {
		paths = hetgraph.AllMetapaths
	}
	hd := heads * dim
	e := &GraphEncoder{
		Dim: dim, Heads: heads, NumTags: numTags,
		X:         nn.NewParam("gnn.X", numTags, dim),
		Wp:        nn.NewParam("gnn.Wp", hd, hd),
		Bp:        nn.NewParam("gnn.bp", 1, hd),
		Vp:        nn.NewParam("gnn.vp", 1, hd),
		Wl:        nn.NewParam("gnn.Wl", dim, hd),
		Bl:        nn.NewParam("gnn.bl", 1, dim),
		Neighbors: cache,
		Paths:     paths,
	}
	if initFeatures != nil {
		copy(e.X.Value.Data, initFeatures.Data)
	} else {
		// Unit-variance features keep the sigmoid aggregation of eq. 5 out
		// of its flat region so tag embeddings are distinguishable from the
		// first step (a smaller scale collapses every z_t to ~sigma(0)).
		e.X.InitNormal(g, 1.0)
	}
	g.Xavier(e.Wp.Value)
	g.Xavier(e.Vp.Value)
	g.Xavier(e.Wl.Value)
	for _, path := range paths {
		var headWeights []*nn.Param
		for h := 0; h < heads; h++ {
			p := nn.NewParam(fmt.Sprintf("gnn.Wn.%s.%d", path, h), 2*dim, 1)
			g.Xavier(p.Value)
			headWeights = append(headWeights, p)
		}
		e.Wn = append(e.Wn, headWeights)
	}
	e.params = nn.NewCollector()
	e.params.Add(e.X, e.Wp, e.Bp, e.Vp, e.Wl, e.Bl)
	for _, hw := range e.Wn {
		e.params.Add(hw...)
	}
	return e
}

// Params returns all trainable parameters (including node features).
func (e *GraphEncoder) Params() []*nn.Param { return e.params.Params() }

// tagForward caches everything tagBackward needs for one tag.
type tagForward struct {
	tag    int
	neigh  [][]int       // per path: neighbor ids (self included, first)
	attn   [][][]float64 // per path, per head: softmax attention over neigh
	preAct [][][]float64 // per path, per head: pre-LeakyReLU scores
	sumVec [][][]float64 // per path, per head: weighted neighbor sum s
	hPath  [][]float64   // per path: h^rho (hd)
	uPath  [][]float64   // per path: tanh(Wp h + bp)
	beta   []float64     // softmax metapath attention
	fused  []float64     // sum_rho beta_rho h^rho
}

// Forward computes z_t (a dim-vector) for one tag and returns the cache for
// Backward.
func (e *GraphEncoder) Forward(tag int) ([]float64, *tagForward) {
	hd := e.Heads * e.Dim
	cache := &tagForward{tag: tag}
	xt := e.X.Value.Row(tag)

	for pi, path := range e.Paths {
		nb := e.Neighbors.Neighbors(hetgraph.NodeID(tag), path)
		// Self-loop keeps the aggregation well-defined for isolated tags and
		// lets the target contribute to its own embedding.
		ids := make([]int, 0, len(nb)+1)
		ids = append(ids, tag)
		for _, n := range nb {
			ids = append(ids, int(n))
		}
		cache.neigh = append(cache.neigh, ids)

		h := make([]float64, 0, hd)
		var attnPath, prePath, sumPath [][]float64
		for head := 0; head < e.Heads; head++ {
			w := e.Wn[pi][head].Value.Data // 2d
			pre := make([]float64, len(ids))
			for i, n := range ids {
				xn := e.X.Value.Row(n)
				var s float64
				for j := 0; j < e.Dim; j++ {
					s += w[j] * xt[j]
					s += w[e.Dim+j] * xn[j]
				}
				pre[i] = leaky(s)
			}
			var a []float64
			if e.UniformNeighbor {
				a = make([]float64, len(ids))
				u := 1 / float64(len(ids))
				for i := range a {
					a[i] = u
				}
			} else {
				a = mat.Softmax(pre)
			}
			sum := make([]float64, e.Dim)
			for i, n := range ids {
				mat.AXPY(a[i], e.X.Value.Row(n), sum)
			}
			out := make([]float64, e.Dim)
			for j, v := range sum {
				out[j] = nn.Sigmoid(v)
			}
			h = append(h, out...)
			attnPath = append(attnPath, a)
			prePath = append(prePath, pre)
			sumPath = append(sumPath, sum)
		}
		cache.attn = append(cache.attn, attnPath)
		cache.preAct = append(cache.preAct, prePath)
		cache.sumVec = append(cache.sumVec, sumPath)
		cache.hPath = append(cache.hPath, h)
	}

	// Metapath attention (eq. 6-7).
	betaRaw := make([]float64, len(e.Paths))
	for pi := range e.Paths {
		u := make([]float64, hd)
		for i := 0; i < hd; i++ {
			u[i] = math.Tanh(mat.Dot(e.Wp.Value.Row(i), cache.hPath[pi]) + e.Bp.Value.At(0, i))
		}
		cache.uPath = append(cache.uPath, u)
		betaRaw[pi] = mat.Dot(e.Vp.Value.Row(0), u)
	}
	var beta []float64
	if e.UniformMetapath {
		beta = make([]float64, len(e.Paths))
		u := 1 / float64(len(e.Paths))
		for i := range beta {
			beta[i] = u
		}
	} else {
		beta = mat.Softmax(betaRaw)
	}
	cache.beta = beta
	fused := make([]float64, hd)
	for pi := range e.Paths {
		mat.AXPY(beta[pi], cache.hPath[pi], fused)
	}
	cache.fused = fused

	// Residual connection from the node's own features: the attention
	// aggregate carries neighborhood structure, while the residual keeps
	// each tag's identity linearly recoverable — without it, hub tags'
	// embeddings collapse toward their neighborhood mean and the sequence
	// layers cannot read which tag was actually clicked (a standard GNN
	// residual, documented in DESIGN.md).
	z := make([]float64, e.Dim)
	for i := 0; i < e.Dim; i++ {
		z[i] = mat.Dot(e.Wl.Value.Row(i), fused) + e.Bl.Value.At(0, i) + xt[i]
	}
	return z, cache
}

// Backward propagates dz for one tag through metapath and neighbor attention
// into all parameters and node features.
func (e *GraphEncoder) Backward(dz []float64, c *tagForward) {
	hd := e.Heads * e.Dim
	// Residual path: dz flows straight into the node's own features.
	mat.AXPY(1, dz, e.X.Grad.Row(c.tag))
	// z = Wl fused + bl (+ x_t).
	dFused := make([]float64, hd)
	for i := 0; i < e.Dim; i++ {
		g := dz[i]
		if g == 0 {
			continue
		}
		mat.AXPY(g, c.fused, e.Wl.Grad.Row(i))
		e.Bl.Grad.Data[i] += g
		mat.AXPY(g, e.Wl.Value.Row(i), dFused)
	}

	dH := make([][]float64, len(e.Paths))
	dBeta := make([]float64, len(e.Paths))
	for pi := range e.Paths {
		dH[pi] = make([]float64, hd)
		mat.AXPY(c.beta[pi], dFused, dH[pi])
		dBeta[pi] = mat.Dot(dFused, c.hPath[pi])
	}
	if !e.UniformMetapath {
		// Softmax backward over beta.
		var dot float64
		for pi := range e.Paths {
			dot += dBeta[pi] * c.beta[pi]
		}
		for pi := range e.Paths {
			dRaw := c.beta[pi] * (dBeta[pi] - dot)
			if dRaw == 0 {
				continue
			}
			// betaRaw = vp . u; u = tanh(Wp h + bp).
			u := c.uPath[pi]
			mat.AXPY(dRaw, u, e.Vp.Grad.Row(0))
			for i := 0; i < hd; i++ {
				dU := dRaw * e.Vp.Value.At(0, i)
				dPre := dU * (1 - u[i]*u[i])
				if dPre == 0 {
					continue
				}
				mat.AXPY(dPre, c.hPath[pi], e.Wp.Grad.Row(i))
				e.Bp.Grad.Data[i] += dPre
				mat.AXPY(dPre, e.Wp.Value.Row(i), dH[pi])
			}
		}
	}

	// Neighbor attention backward per path, per head.
	xt := e.X.Value.Row(c.tag)
	dxt := e.X.Grad.Row(c.tag)
	for pi := range e.Paths {
		ids := c.neigh[pi]
		for head := 0; head < e.Heads; head++ {
			dOut := dH[pi][head*e.Dim : (head+1)*e.Dim]
			sum := c.sumVec[pi][head]
			a := c.attn[pi][head]
			// out = sigmoid(sum).
			dSum := make([]float64, e.Dim)
			for j := range dSum {
				s := nn.Sigmoid(sum[j])
				dSum[j] = dOut[j] * s * (1 - s)
			}
			// sum = sum_n a_n x_n.
			da := make([]float64, len(ids))
			for i, n := range ids {
				da[i] = mat.Dot(dSum, e.X.Value.Row(n))
				mat.AXPY(a[i], dSum, e.X.Grad.Row(n))
			}
			if e.UniformNeighbor {
				continue
			}
			// Softmax backward over a.
			var dot float64
			for i := range ids {
				dot += da[i] * a[i]
			}
			w := e.Wn[pi][head].Value.Data
			wGrad := e.Wn[pi][head].Grad.Data
			for i, n := range ids {
				dPre := a[i] * (da[i] - dot)
				if dPre == 0 {
					continue
				}
				// LeakyReLU backward.
				if c.preAct[pi][head][i] < 0 {
					dPre *= leakySlope
				}
				xn := e.X.Value.Row(n)
				dxn := e.X.Grad.Row(n)
				for j := 0; j < e.Dim; j++ {
					wGrad[j] += dPre * xt[j]
					wGrad[e.Dim+j] += dPre * xn[j]
					dxt[j] += dPre * w[j]
					dxn[j] += dPre * w[e.Dim+j]
				}
			}
		}
	}
}

// EmbedAll runs Forward for every tag and returns the NumTags x Dim matrix
// of embeddings — the offline inference step whose output the deployment
// uploads to the online model servers (Section V-B). Rows are computed on
// the encoder's worker pool; each tag's embedding is independent and written
// to its own row, so the result is identical at any worker count.
func (e *GraphEncoder) EmbedAll() *mat.Matrix {
	out := mat.New(e.NumTags, e.Dim)
	par.New(e.Workers).For(e.NumTags, func(t int) {
		z, _ := e.Forward(t)
		out.SetRow(t, z)
	})
	return out
}

// Replicate returns an encoder whose parameters alias e's values but own
// private gradient buffers, for concurrent per-example backward passes. The
// neighbor cache, metapath list and ablation flags are shared (read-only).
func (e *GraphEncoder) Replicate() *GraphEncoder {
	r := &GraphEncoder{
		Dim: e.Dim, Heads: e.Heads, NumTags: e.NumTags,
		X:  e.X.Shadow(),
		Wp: e.Wp.Shadow(), Bp: e.Bp.Shadow(), Vp: e.Vp.Shadow(),
		Wl: e.Wl.Shadow(), Bl: e.Bl.Shadow(),
		Neighbors:       e.Neighbors,
		Paths:           e.Paths,
		UniformNeighbor: e.UniformNeighbor,
		UniformMetapath: e.UniformMetapath,
		Workers:         1,
	}
	for _, hw := range e.Wn {
		shadowed := make([]*nn.Param, len(hw))
		for h, p := range hw {
			shadowed[h] = p.Shadow()
		}
		r.Wn = append(r.Wn, shadowed)
	}
	// Rebuild the collector in the exact order of NewGraphEncoder so the
	// replica's Params() align index-by-index with the master's for the
	// ordered gradient merge.
	r.params = nn.NewCollector()
	r.params.Add(r.X, r.Wp, r.Bp, r.Vp, r.Wl, r.Bl)
	for _, hw := range r.Wn {
		r.params.Add(hw...)
	}
	return r
}

// TagAttention is a snapshot of both attention levels for one tag, extracted
// from a single Forward call so the two Figure 5 signals never recompute the
// encoder per query.
type TagAttention struct {
	heads int
	paths []hetgraph.Metapath
	beta  []float64
	neigh [][]int
	attn  [][][]float64
}

// Attention runs one Forward for the tag and captures both attention levels.
func (e *GraphEncoder) Attention(tag int) *TagAttention {
	_, cache := e.Forward(tag)
	return &TagAttention{heads: e.Heads, paths: e.Paths, beta: cache.beta, neigh: cache.neigh, attn: cache.attn}
}

// MetapathWeights returns a copy of the softmax metapath attention values —
// the Figure 5(b) case-study signal.
func (a *TagAttention) MetapathWeights() []float64 {
	return append([]float64(nil), a.beta...)
}

// NeighborWeights returns copies of the neighbor ids (self first) and
// head-averaged attention values under one metapath — the Figure 5(a)
// signal. Both are nil when the path is not in the encoder's set.
func (a *TagAttention) NeighborWeights(path hetgraph.Metapath) ([]int, []float64) {
	for pi, p := range a.paths {
		if p != path {
			continue
		}
		ids := append([]int(nil), a.neigh[pi]...)
		avg := make([]float64, len(ids))
		for head := 0; head < a.heads; head++ {
			for i, w := range a.attn[pi][head] {
				avg[i] += w / float64(a.heads)
			}
		}
		return ids, avg
	}
	return nil, nil
}

// MetapathWeights returns the metapath attention for one tag; callers that
// also need NeighborWeights should take one Attention snapshot instead of
// paying a Forward per query.
func (e *GraphEncoder) MetapathWeights(tag int) []float64 {
	return e.Attention(tag).MetapathWeights()
}

// NeighborWeights returns the neighbor ids (self first) and head-averaged
// attention values for a tag under one metapath.
func (e *GraphEncoder) NeighborWeights(tag int, path hetgraph.Metapath) ([]int, []float64) {
	return e.Attention(tag).NeighborWeights(path)
}

func leaky(v float64) float64 {
	if v > 0 {
		return v
	}
	return leakySlope * v
}
