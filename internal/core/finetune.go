package core

import (
	"errors"
	"fmt"
)

// ErrNotFrozen rejects fine-tuning a model whose tag embeddings still come
// from the live graph encoder: the online loop's contract is sequence-only
// adaptation over the frozen GNN table (Section V-B's deployment split — the
// graph side retrains T+1 offline, the sequence side tracks intraday drift).
var ErrNotFrozen = errors.New("core: fine-tune requires a frozen model")

// FineTuneConfig sizes one incremental fine-tune round. It deliberately
// mirrors TrainConfig's optimizer surface but with defaults tuned for small
// intraday windows: few epochs, mini-batches, gentle learning rate.
type FineTuneConfig struct {
	Epochs    int
	LR        float64
	ClipNorm  float64
	BatchSize int
	// Workers bounds the per-batch fan-out; any value produces bit-identical
	// parameters for a given seed (the pooled loop merges slot gradients in
	// fixed order).
	Workers int
	// Seed drives masking, shuffling and dropout for the round. The online
	// learner derives it from its base seed and the stream cursor, so the
	// same event log and base seed reproduce the same weights.
	Seed int64
}

// DefaultFineTuneConfig returns the online learner's fine-tune settings.
func DefaultFineTuneConfig() FineTuneConfig {
	return FineTuneConfig{Epochs: 2, LR: 5e-4, ClipNorm: 5, BatchSize: 8, Workers: 0}
}

// FineTune runs one partial-freeze fine-tune round: sequence-side parameters
// only (positions, Transformer stack, output head), tag embeddings frozen,
// reusing the pooled mini-batch train loop. sessions are raw click sequences;
// they are prefix-expanded exactly as the offline trainers do. Returns the
// final-epoch mean loss. The model must already be frozen — the caller
// typically just loaded it from a snapshot version, which freezes on load.
func FineTune(m *Model, sessions [][]int, cfg FineTuneConfig) (float64, error) {
	if m.Frozen == nil {
		return 0, ErrNotFrozen
	}
	if len(sessions) == 0 {
		return 0, fmt.Errorf("core: fine-tune: no sessions in window")
	}
	prefixes := ExpandPrefixes(sessions)
	if len(prefixes) == 0 {
		return 0, fmt.Errorf("core: fine-tune: window has no multi-click sessions")
	}
	tc := TrainConfig{
		Epochs:    cfg.Epochs,
		LR:        cfg.LR,
		ClipNorm:  cfg.ClipNorm,
		Seed:      cfg.Seed,
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
	}
	return TrainSequenceOnly(m, prefixes, tc), nil
}
