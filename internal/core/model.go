package core

import (
	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/nn"
)

// Config sizes the TagRec model. The paper's production setting is dim 100,
// 4 attention heads (shared across the three attentions), a 2-layer
// Transformer and mask proportion 0.2; the defaults here scale dim down for
// laptop-speed training while keeping every other choice.
type Config struct {
	Dim         int
	Heads       int
	Layers      int
	MaxLen      int // positions: MaxClicks + 1 for the mask slot
	Dropout     float64
	MaskProb    float64 // Cloze mask proportion during training
	NeighborCap int     // max sampled neighbors per metapath
	Seed        int64

	// Ablation switches (Table V).
	WithoutNeighborAttention   bool
	WithoutMetapathAttention   bool
	WithoutContextualAttention bool

	// Metapaths restricts the metapath set (nil means the full TagRec set
	// {TT, TQT, TQQT, TQEQT}); used by the metapath-ablation extension.
	Metapaths []hetgraph.Metapath

	// Workers bounds the parallelism of offline batch inference (EmbedAll);
	// <= 0 selects all CPUs. Training parallelism is configured separately
	// on TrainConfig.
	Workers int

	// TieProjection replaces the free Wt of eq. 11 with scoring against
	// the node-feature table plus a per-tag bias (BERT4Rec-style weight
	// tying). Off by default — the free projection matches the paper and
	// measured better; the flag supports the output-layer ablation.
	TieProjection bool
}

// DefaultConfig returns the experiment-harness configuration.
func DefaultConfig() Config {
	return Config{
		Dim: 32, Heads: 4, Layers: 2, MaxLen: 12,
		Dropout: 0.1, MaskProb: 0.2, NeighborCap: 12, Seed: 42,
	}
}

// Model is the full IntelliTag TagRec model: graph-based layers computing
// tag embeddings, and sequence-based Transformer layers predicting the next
// click. Embeddings flow from the inner graph layers into the outer
// sequence layers; in end-to-end mode gradients flow back.
type Model struct {
	Cfg     Config
	NumTags int

	Graph   *GraphEncoder
	MaskEmb *nn.Param // 1 x Dim, the z_mask of eq. 8
	Pos     *nn.PositionalEmbedding
	Enc     *nn.Encoder
	// Output layer (eq. 11): either a free Dim -> NumTags projection, or
	// (default) scoring tied to the node-feature table with a per-tag bias.
	Proj    *nn.Linear
	OutBias *nn.Param // 1 x NumTags, used in tied mode

	// Frozen holds precomputed tag embeddings when the model runs in static
	// / serving mode; nil means embeddings come from the graph encoder.
	Frozen *mat.Matrix

	params    *nn.Collector // sequence-side parameters
	allParams *nn.Collector // sequence + graph parameters

	// Owned hot-path buffers, reused across calls (see DESIGN.md "Memory
	// discipline"). Replicas start with these nil and grow their own, so a
	// model instance must not run forward passes concurrently — use
	// Replicate/ScorerReplicas for that, exactly as before.
	xBuf      *mat.Matrix   // seqForward/lastHidden input matrix
	logitsBuf *mat.Matrix   // tied-mode logits
	dhBuf     *mat.Matrix   // tied-mode dH
	hBuf      *mat.Matrix   // contextual-attention-ablation hidden states
	dxBuf     *mat.Matrix   // contextual-attention-ablation dX
	meanBuf   []float64     // ablation mean vector
	caches    []*tagForward // per-position graph caches
	itemsBuf  []int         // history + trailing mask slot
	hOut      []float64     // lastHidden result
}

// NewModel builds the model around a graph encoder.
func NewModel(cfg Config, graph *GraphEncoder, g *mat.RNG) *Model {
	m := &Model{
		Cfg:     cfg,
		NumTags: graph.NumTags,
		Graph:   graph,
		MaskEmb: nn.NewParam("seq.mask", 1, cfg.Dim),
		Pos:     nn.NewPositionalEmbedding("seq", cfg.MaxLen, cfg.Dim, g),
		Enc:     nn.NewEncoder("seq.enc", cfg.Layers, cfg.Dim, cfg.Heads, cfg.Dropout, g),
	}
	m.MaskEmb.InitNormal(g, 0.02)
	m.params = nn.NewCollector()
	m.params.Add(m.MaskEmb)
	m.Pos.CollectParams(m.params)
	m.Enc.CollectParams(m.params)
	if !cfg.TieProjection {
		m.Proj = nn.NewLinear("seq.proj", cfg.Dim, graph.NumTags, g)
		m.Proj.CollectParams(m.params)
	} else {
		m.OutBias = nn.NewParam("seq.outbias", 1, graph.NumTags)
		// In tied mode the node-feature table doubles as the output matrix,
		// so the sequence-side stage trains it too (the frozen z lookup is
		// unaffected: Freeze snapshots z values).
		m.params.Add(m.OutBias, graph.X)
	}
	m.allParams = nn.NewCollector()
	m.allParams.Add(m.params.Params()...)
	m.allParams.Add(graph.Params()...)
	return m
}

// Replicate returns a model whose parameters alias m's values but own
// private gradients and forward caches, so replicas can run forward/backward
// concurrently. Both parameter collectors are rebuilt in NewModel's order,
// keeping SeqParams/AllParams index-aligned with the master for the ordered
// gradient merge; the Frozen table (when set) is shared read-only.
func (m *Model) Replicate() *Model {
	r := &Model{
		Cfg:     m.Cfg,
		NumTags: m.NumTags,
		Graph:   m.Graph.Replicate(),
		MaskEmb: m.MaskEmb.Shadow(),
		Pos:     m.Pos.Replicate(),
		Enc:     m.Enc.Replicate(),
		Frozen:  m.Frozen,
	}
	r.params = nn.NewCollector()
	r.params.Add(r.MaskEmb)
	r.Pos.CollectParams(r.params)
	r.Enc.CollectParams(r.params)
	if m.Proj != nil {
		r.Proj = m.Proj.Replicate()
		r.Proj.CollectParams(r.params)
	} else {
		r.OutBias = m.OutBias.Shadow()
		r.params.Add(r.OutBias, r.Graph.X)
	}
	r.allParams = nn.NewCollector()
	r.allParams.Add(r.params.Params()...)
	r.allParams.Add(r.Graph.Params()...)
	return r
}

// ScorerReplicas returns n concurrent-safe scoring replicas (each with its
// own forward caches, sharing m's parameter values). The []any return lets
// both the serving engine and the eval harness adapt replicas to their own
// Scorer interfaces without a dependency on this package's concrete type.
func (m *Model) ScorerReplicas(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = m.Replicate()
	}
	return out
}

// SeqParams returns the sequence-side parameters only (static training's
// second stage).
func (m *Model) SeqParams() []*nn.Param { return m.params.Params() }

// AllParams returns every trainable parameter (end-to-end training).
func (m *Model) AllParams() []*nn.Param { return m.allParams.Params() }

// SetTrain toggles dropout.
func (m *Model) SetTrain(train bool) { m.Enc.SetTrain(train) }

// Freeze precomputes all tag embeddings from the graph encoder and switches
// the model to lookup mode — the deployment strategy of Section V-B (no
// real-time GNN inference online).
func (m *Model) Freeze() {
	m.Frozen = m.Graph.EmbedAll()
}

// Unfreeze returns the model to live graph-encoder mode.
func (m *Model) Unfreeze() { m.Frozen = nil }

// TagEmbeddings exposes the frozen tag-embedding table (row = tag id) for the
// serving tier's ANN candidate retrieval. It is nil until Freeze has run —
// retrieval requires lookup mode, since a live graph encoder has no static
// table to index.
func (m *Model) TagEmbeddings() *mat.Matrix { return m.Frozen }

// embed returns the embedding of one tag plus the backward cache (nil cache
// in frozen mode).
func (m *Model) embed(tag int) ([]float64, *tagForward) {
	if m.Frozen != nil {
		return m.Frozen.Row(tag), nil
	}
	return m.Graph.Forward(tag)
}

// seqForward builds the input matrix of eq. 8 for a sequence of tag ids in
// which maskedPositions (indices into items) are replaced by the mask
// embedding, runs the Transformer stack, and returns the per-position
// logits. The backward closure accepts dLogits and propagates everything,
// returning gradients into the graph encoder unless frozen.
func (m *Model) seqForward(items []int, masked map[int]bool) (*mat.Matrix, func(dLogits *mat.Matrix)) {
	n := len(items)
	m.xBuf = mat.Ensure(m.xBuf, n, m.Cfg.Dim)
	x := m.xBuf
	m.caches = m.caches[:0]
	for i, tag := range items {
		if masked[i] {
			copy(x.Row(i), m.MaskEmb.Value.Row(0))
			m.caches = append(m.caches, nil)
			continue
		}
		z, cache := m.embed(tag)
		copy(x.Row(i), z)
		m.caches = append(m.caches, cache)
	}
	caches := m.caches
	var h *mat.Matrix
	if m.Cfg.WithoutContextualAttention {
		// Ablated contextual attention: every position sees the unordered
		// mean of the inputs (a bag-of-clicks context).
		mean := mat.EnsureVec(m.meanBuf, m.Cfg.Dim)
		m.meanBuf = mean
		mat.SumRowsInto(x, mean)
		for j := range mean {
			mean[j] /= float64(n)
		}
		m.hBuf = mat.Ensure(m.hBuf, n, m.Cfg.Dim)
		h = m.hBuf
		for i := 0; i < n; i++ {
			h.SetRow(i, mean)
		}
	} else {
		h = m.Enc.Forward(m.Pos.Forward(x))
	}
	var logits *mat.Matrix
	if m.Proj != nil {
		logits = m.Proj.Forward(h)
	} else {
		m.logitsBuf = mat.Ensure(m.logitsBuf, h.Rows, m.NumTags)
		logits = m.logitsBuf
		mat.MatMulTInto(logits, h, m.Graph.X.Value)
		mat.AddRowVecInto(logits, logits, m.OutBias.Value.Row(0))
	}

	// The closure (like the returned logits) reads model-owned buffers, so it
	// must run before the next forward pass on this model — every trainer
	// invokes it immediately.
	backward := func(dLogits *mat.Matrix) {
		var dH *mat.Matrix
		if m.Proj != nil {
			dH = m.Proj.Backward(dLogits)
		} else {
			bg := m.OutBias.Grad.Row(0)
			for i := 0; i < dLogits.Rows; i++ {
				mat.AXPY(1, dLogits.Row(i), bg)
			}
			m.dhBuf = mat.Ensure(m.dhBuf, dLogits.Rows, m.Cfg.Dim)
			dH = m.dhBuf
			mat.MatMulInto(dH, dLogits, m.Graph.X.Value)
			dXG := mat.Shared.Get(m.NumTags, m.Cfg.Dim)
			mat.TMatMulInto(dXG, dLogits, h)
			mat.AddInPlace(m.Graph.X.Grad, dXG)
			mat.Shared.Put(dXG)
		}
		var dX *mat.Matrix
		if m.Cfg.WithoutContextualAttention {
			dMean := mat.Shared.GetVec(m.Cfg.Dim)
			mat.SumRowsInto(dH, dMean)
			m.dxBuf = mat.Ensure(m.dxBuf, n, m.Cfg.Dim)
			dX = m.dxBuf
			for i := 0; i < n; i++ {
				row := dX.Row(i)
				for j := range row {
					row[j] = dMean[j] / float64(n)
				}
			}
			mat.Shared.PutVec(dMean)
		} else {
			dX = m.Pos.Backward(m.Enc.Backward(dH))
		}
		for i := range items {
			if masked[i] {
				mat.AXPY(1, dX.Row(i), m.MaskEmb.Grad.Row(0))
				continue
			}
			if caches[i] != nil {
				m.Graph.Backward(dX.Row(i), caches[i])
			}
		}
	}
	return logits, backward
}

// Scored pairs a tag id with a model score.
type Scored struct {
	Tag   int
	Score float64
}

// NextLogits returns the logits over all tags for the next click given the
// history (eq. 11): the history plus a trailing mask position.
func (m *Model) NextLogits(history []int) []float64 {
	m.SetTrain(false)
	items := append(clipHistory(history, m.Cfg.MaxLen-1), 0)
	masked := map[int]bool{len(items) - 1: true}
	logits, _ := m.seqForward(items, masked)
	out := make([]float64, m.NumTags)
	copy(out, logits.Row(len(items)-1))
	return out
}

// ContextualAttention runs the model over the history (plus mask slot) and
// returns the per-head self-attention matrices of each Transformer layer —
// the Figure 5(c)(d) case-study signal. Result is indexed [layer][head].
func (m *Model) ContextualAttention(history []int) [][]*mat.Matrix {
	m.SetTrain(false)
	items := append(clipHistory(history, m.Cfg.MaxLen-1), 0)
	masked := map[int]bool{len(items) - 1: true}
	m.seqForward(items, masked)
	out := make([][]*mat.Matrix, len(m.Enc.Layers))
	for i, layer := range m.Enc.Layers {
		out[i] = layer.Attn.AttentionWeights()
	}
	return out
}

// lastHidden runs the sequence trunk — embeddings, positions, Transformer —
// over the history plus a trailing mask slot and returns the final
// position's hidden state (the h that eq. 11 projects over tags). It is the
// inference-only counterpart of seqForward's trunk: scoring paths that need
// a handful of tags project just this row instead of every position against
// every tag.
func (m *Model) lastHidden(history []int) []float64 {
	items := m.histItems(history)
	n := len(items)
	m.xBuf = mat.Ensure(m.xBuf, n, m.Cfg.Dim)
	x := m.xBuf
	for i, tag := range items {
		if i == n-1 { // mask slot
			copy(x.Row(i), m.MaskEmb.Value.Row(0))
			continue
		}
		z, cache := m.embed(tag)
		copy(x.Row(i), z)
		m.Graph.release(cache)
	}
	if m.Cfg.WithoutContextualAttention {
		mean := mat.EnsureVec(m.meanBuf, m.Cfg.Dim)
		m.meanBuf = mean
		mat.SumRowsInto(x, mean)
		for j := range mean {
			mean[j] /= float64(n)
		}
		return mean
	}
	h := m.Enc.Forward(m.Pos.Forward(x))
	m.hOut = mat.EnsureVec(m.hOut, m.Cfg.Dim)
	copy(m.hOut, h.Row(n-1))
	return m.hOut
}

// histItems builds history-plus-mask-slot item ids into a model-owned buffer,
// matching append(clipHistory(history, MaxLen-1), 0) value-for-value.
func (m *Model) histItems(history []int) []int {
	maxLen := m.Cfg.MaxLen - 1
	if len(history) > maxLen {
		history = history[len(history)-maxLen:]
	}
	m.itemsBuf = append(m.itemsBuf[:0], history...)
	m.itemsBuf = append(m.itemsBuf, 0)
	return m.itemsBuf
}

// scoreTag projects a hidden state onto one tag's output column, summing in
// the same order as the full matrix product so the score is bit-identical
// to NextLogits' entry for the tag.
func (m *Model) scoreTag(h []float64, tag int) float64 {
	var s float64
	if m.Proj != nil {
		w := m.Proj.W.Value
		for k, hv := range h {
			s += hv * w.At(k, tag)
		}
		return s + m.Proj.B.Value.At(0, tag)
	}
	return mat.Dot(h, m.Graph.X.Value.Row(tag)) + m.OutBias.Value.At(0, tag)
}

// ScoreCandidates scores candidate tags for the next click given the
// history — the ranking interface shared with every baseline. Only the
// candidates' output columns are projected, so serving cost scales with the
// candidate list, not the tag vocabulary.
func (m *Model) ScoreCandidates(history []int, candidates []int) []float64 {
	m.SetTrain(false)
	h := m.lastHidden(history)
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = m.scoreTag(h, c)
	}
	return out
}

// Name identifies the model in reports.
func (m *Model) Name() string {
	switch {
	case m.Cfg.WithoutNeighborAttention:
		return "IntelliTag w/o na"
	case m.Cfg.WithoutMetapathAttention:
		return "IntelliTag w/o ma"
	case m.Cfg.WithoutContextualAttention:
		return "IntelliTag w/o ca"
	}
	return "IntelliTag"
}

// clipHistory keeps the most recent maxLen items.
func clipHistory(history []int, maxLen int) []int {
	if len(history) > maxLen {
		history = history[len(history)-maxLen:]
	}
	return append([]int(nil), history...)
}
