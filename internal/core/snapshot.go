package core

import (
	"fmt"

	"intellitag/internal/hetgraph"
	"intellitag/internal/snapshot"
)

// Component names inside a committed TagRec snapshot version. The graph
// rides along with the parameters because rebuilding the model at load time
// needs the exact structure the parameters were trained against.
const (
	SnapParams     = "params.gob"
	SnapGraph      = "graph.gob"
	SnapEmbeddings = "embeddings.gob"
)

// CommitSnapshot stages the model's parameters, its training graph and the
// frozen tag-embedding table as one new store version and commits it — the
// offline half of the T+1 deployment loop. The model is frozen as a side
// effect when it was not already.
func CommitSnapshot(s *snapshot.Store, m *Model, g *hetgraph.Graph) (snapshot.Manifest, error) {
	w, err := s.Begin()
	if err != nil {
		return snapshot.Manifest{}, err
	}
	if err := m.Save(w.Path(SnapParams)); err != nil {
		w.Abort()
		return snapshot.Manifest{}, fmt.Errorf("core: commit snapshot: %w", err)
	}
	if err := g.Save(w.Path(SnapGraph)); err != nil {
		w.Abort()
		return snapshot.Manifest{}, fmt.Errorf("core: commit snapshot: %w", err)
	}
	if err := m.SaveEmbeddings(w.Path(SnapEmbeddings)); err != nil {
		w.Abort()
		return snapshot.Manifest{}, fmt.Errorf("core: commit snapshot: %w", err)
	}
	return w.Commit()
}

// CommitChildSnapshot is CommitSnapshot with explicit lineage: the committed
// version records parent as its Parent, which is how online fine-tunes chain
// off the offline base version. The snapshot GC keeps the chain from the
// last-known-good marker to any protected child intact, so a rollback target
// is always loadable.
func CommitChildSnapshot(s *snapshot.Store, m *Model, g *hetgraph.Graph, parent string) (snapshot.Manifest, error) {
	w, err := s.BeginChild(parent)
	if err != nil {
		return snapshot.Manifest{}, err
	}
	if err := m.Save(w.Path(SnapParams)); err != nil {
		w.Abort()
		return snapshot.Manifest{}, fmt.Errorf("core: commit child snapshot: %w", err)
	}
	if err := g.Save(w.Path(SnapGraph)); err != nil {
		w.Abort()
		return snapshot.Manifest{}, fmt.Errorf("core: commit child snapshot: %w", err)
	}
	if err := m.SaveEmbeddings(w.Path(SnapEmbeddings)); err != nil {
		w.Abort()
		return snapshot.Manifest{}, fmt.Errorf("core: commit child snapshot: %w", err)
	}
	return w.Commit()
}

// LoadSnapshotVersion verifies a committed version's checksums, rebuilds the
// model from the stored graph and configuration, restores its parameters and
// freezes the embedding table, returning a model ready to serve. Each call
// returns a fresh model, so concurrent serving buckets never share scorer
// state. cfg must match the training-time configuration; drift fails loudly
// in the parameter loader.
func LoadSnapshotVersion(s *snapshot.Store, id string, cfg Config) (*Model, *hetgraph.Graph, error) {
	if err := s.Verify(id); err != nil {
		return nil, nil, err
	}
	graphPath, err := s.Path(id, SnapGraph)
	if err != nil {
		return nil, nil, err
	}
	g, err := hetgraph.Load(graphPath)
	if err != nil {
		return nil, nil, fmt.Errorf("core: load snapshot %s: %w", id, err)
	}
	paramsPath, err := s.Path(id, SnapParams)
	if err != nil {
		return nil, nil, err
	}
	m := Build(cfg, g, nil)
	if err := m.Load(paramsPath); err != nil {
		return nil, nil, fmt.Errorf("core: load snapshot %s: %w", id, err)
	}
	m.Freeze()
	return m, g, nil
}
