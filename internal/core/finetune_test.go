package core

import (
	"errors"
	"testing"

	"intellitag/internal/snapshot"
	"intellitag/internal/synth"
)

func TestFineTuneRequiresFrozen(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Seed: 3}
	m := Build(cfg, tinyGraph(), nil)
	if _, err := FineTune(m, [][]int{{0, 1, 2}}, DefaultFineTuneConfig()); !errors.Is(err, ErrNotFrozen) {
		t.Fatalf("unfrozen fine-tune = %v, want ErrNotFrozen", err)
	}
	m.Freeze()
	if _, err := FineTune(m, nil, DefaultFineTuneConfig()); err == nil {
		t.Fatal("empty-window fine-tune should fail")
	}
	if _, err := FineTune(m, [][]int{{4}}, DefaultFineTuneConfig()); err == nil {
		t.Fatal("single-click-only window should fail")
	}
}

// TestFineTuneLeavesEmbeddingsFixed pins the partial-freeze contract: a
// fine-tune round moves the sequence head but never the frozen tag table —
// that is what keeps intraday updates compatible with the offline graph.
func TestFineTuneLeavesEmbeddingsFixed(t *testing.T) {
	w := synth.Generate(synth.SmallConfig())
	train, _, _ := w.SplitSessions(0.8, 0.1)
	graph := w.BuildGraph(train)
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Heads = 2
	cfg.NeighborCap = 4
	m := Build(cfg, graph, nil)
	m.Freeze()

	before := append([]float64(nil), m.Frozen.Data...)
	headBefore := m.NextLogits([]int{0, 1})

	var sessions [][]int
	for _, s := range train[:20] {
		sessions = append(sessions, s.Clicks)
	}
	fc := DefaultFineTuneConfig()
	fc.Seed = 7
	loss, err := FineTune(m, sessions, fc)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("fine-tune loss = %v", loss)
	}
	for i, v := range m.Frozen.Data {
		if v != before[i] {
			t.Fatalf("frozen embedding %d moved: %v -> %v", i, before[i], v)
		}
	}
	headAfter := m.NextLogits([]int{0, 1})
	moved := false
	for i := range headAfter {
		if headAfter[i] != headBefore[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("fine-tune left sequence head unchanged")
	}
}

func TestCommitChildSnapshotLineage(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Seed: 3}
	g := tinyGraph()
	s, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, err := CommitSnapshot(s, Build(cfg, g, nil), g)
	if err != nil {
		t.Fatal(err)
	}
	// A later unrelated version; the child must still chain off base, not it.
	other, err := CommitSnapshot(s, Build(cfg, g, nil), g)
	if err != nil {
		t.Fatal(err)
	}
	child, err := CommitChildSnapshot(s, Build(cfg, g, nil), g, base.ID)
	if err != nil {
		t.Fatal(err)
	}
	if child.Parent != base.ID {
		t.Fatalf("child parent = %s, want %s (not %s)", child.Parent, base.ID, other.ID)
	}
	if _, err := s.BeginChild("no-such-version"); err == nil {
		t.Fatal("BeginChild with unknown parent should fail")
	}
	if _, _, err := LoadSnapshotVersion(s, child.ID, cfg); err != nil {
		t.Fatalf("child version should load: %v", err)
	}
}
