package core

import (
	"testing"

	"intellitag/internal/synth"
)

// benchSetup builds a small-world model plus one training example, shared by
// the PR2 hot-path benchmarks (see BENCH_PR2.json / `make bench`).
func benchSetup(b *testing.B) (*Model, []int, map[int]bool) {
	b.Helper()
	world := synth.Generate(synth.SmallConfig())
	train, _, _ := world.SplitSessions(0.8, 0.1)
	graph := world.BuildGraph(train)
	cfg := DefaultConfig()
	cfg.Dim, cfg.Heads = 16, 2
	m := Build(cfg, graph, nil)
	var session []int
	for _, s := range train {
		if len(s.Clicks) >= 4 {
			session = clipHistory(s.Clicks, cfg.MaxLen)
			break
		}
	}
	if session == nil {
		b.Fatal("no session of length >= 4 in the bench world")
	}
	masked := map[int]bool{0: true, len(session) - 1: true}
	return m, session, masked
}

// BenchmarkPR2_TrainStep measures one end-to-end Cloze training step —
// graph-encoder forward per position, Transformer forward/backward, loss, and
// gradient accumulation — the inner loop of daily T+1 training.
func BenchmarkPR2_TrainStep(b *testing.B) {
	m, session, masked := benchSetup(b)
	m.SetTrain(true)
	params := m.AllParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zeroGrads(params)
		clozeStep(m, session, masked)
	}
}

// BenchmarkPR2_EmbedAll measures the offline batch-inference step whose
// output the deployment uploads to the online servers (Section V-B).
func BenchmarkPR2_EmbedAll(b *testing.B) {
	m, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Graph.EmbedAll()
	}
}
