package core

import (
	"math"
	"testing"

	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/synth"
)

// tinyGraph builds a 6-tag graph with all relation types present.
func tinyGraph() *hetgraph.Graph {
	g := hetgraph.New(6, 4, 2)
	g.AddAsc(0, 0)
	g.AddAsc(1, 0)
	g.AddAsc(2, 1)
	g.AddAsc(3, 1)
	g.AddAsc(4, 2)
	g.AddAsc(5, 3)
	g.AddCrl(0, 0)
	g.AddCrl(1, 0)
	g.AddCrl(2, 1)
	g.AddCrl(3, 1)
	g.AddClk(0, 1)
	g.AddClk(1, 2)
	g.AddClk(4, 5)
	g.AddCst(0, 1)
	g.AddCst(2, 3)
	return g
}

func tinyEncoder(uniformN, uniformM bool) *GraphEncoder {
	g := mat.NewRNG(5)
	graph := tinyGraph()
	cache := hetgraph.BuildNeighborCache(graph, 0, g.Fork())
	e := NewGraphEncoder(6, 4, 2, cache, hetgraph.AllMetapaths, nil, g)
	e.UniformNeighbor = uniformN
	e.UniformMetapath = uniformM
	return e
}

func TestGraphEncoderShapes(t *testing.T) {
	e := tinyEncoder(false, false)
	z, cache := e.Forward(0)
	if len(z) != 4 {
		t.Fatalf("z dim = %d", len(z))
	}
	if len(cache.hPath) != 4 || len(cache.beta) != 4 {
		t.Fatal("cache incomplete")
	}
	var sum float64
	for _, b := range cache.beta {
		sum += b
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("metapath attention sums to %v", sum)
	}
	all := e.EmbedAll()
	if all.Rows != 6 || all.Cols != 4 {
		t.Fatalf("EmbedAll shape %dx%d", all.Rows, all.Cols)
	}
}

// Finite-difference gradient check through the whole graph encoder.
func gnnGradCheck(t *testing.T, e *GraphEncoder, tag int) {
	t.Helper()
	g := mat.NewRNG(9)
	w := make([]float64, e.Dim)
	for i := range w {
		w[i] = g.NormFloat64()
	}
	forward := func() float64 {
		z, _ := e.Forward(tag)
		return mat.Dot(z, w)
	}
	for _, p := range e.Params() {
		p.ZeroGrad()
	}
	_, cache := e.Forward(tag)
	e.Backward(w, cache)
	const eps = 1e-5
	const tol = 2e-4
	for _, p := range e.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := forward()
			p.Value.Data[i] = orig - eps
			lm := forward()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(num-got) > tol*math.Max(1, math.Abs(num)) {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", p.Name, i, got, num)
			}
		}
	}
}

func TestGraphEncoderGradcheck(t *testing.T) {
	gnnGradCheck(t, tinyEncoder(false, false), 0)
}

func TestGraphEncoderGradcheckIsolatedTag(t *testing.T) {
	// Tag 5 has few neighbors (self-loop dominated paths).
	gnnGradCheck(t, tinyEncoder(false, false), 5)
}

func TestGraphEncoderGradcheckUniformNeighbor(t *testing.T) {
	gnnGradCheck(t, tinyEncoder(true, false), 1)
}

func TestGraphEncoderGradcheckUniformMetapath(t *testing.T) {
	gnnGradCheck(t, tinyEncoder(false, true), 1)
}

func TestNeighborAndMetapathIntrospection(t *testing.T) {
	e := tinyEncoder(false, false)
	beta := e.MetapathWeights(0)
	if len(beta) != 4 {
		t.Fatalf("beta len %d", len(beta))
	}
	ids, weights := e.NeighborWeights(0, hetgraph.TT)
	if len(ids) != len(weights) || len(ids) == 0 {
		t.Fatalf("neighbor weights %v %v", ids, weights)
	}
	if ids[0] != 0 {
		t.Fatal("self should be first")
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("neighbor attention sums to %v", sum)
	}
}

func TestModelForwardAndGradcheck(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Dropout: 0, MaskProb: 0.2, NeighborCap: 0, Seed: 3}
	m := Build(cfg, tinyGraph(), nil)
	m.SetTrain(false)
	items := []int{0, 1, 2}
	masked := map[int]bool{2: true}
	logits, backward := m.seqForward(items, masked)
	if logits.Rows != 3 || logits.Cols != 6 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
	// Gradient check a sample of parameters through the whole model.
	g := mat.NewRNG(4)
	w := mat.New(3, 6)
	g.Normal(w, 1)
	forward := func() float64 {
		l, _ := m.seqForward(items, masked)
		var s float64
		for i, v := range l.Data {
			s += v * w.Data[i]
		}
		return s
	}
	for _, p := range m.AllParams() {
		p.ZeroGrad()
	}
	forward()
	_, backward = m.seqForward(items, masked)
	backward(w)
	const eps, tol = 1e-5, 3e-4
	for _, p := range m.AllParams() {
		stride := len(p.Value.Data)/5 + 1 // sample positions for speed
		for i := 0; i < len(p.Value.Data); i += stride {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := forward()
			p.Value.Data[i] = orig - eps
			lm := forward()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(num-got) > tol*math.Max(1, math.Abs(num)) {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", p.Name, i, got, num)
			}
		}
	}
}

func TestFreezeMatchesLiveEmbeddings(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Dropout: 0, MaskProb: 0.2, Seed: 3}
	m := Build(cfg, tinyGraph(), nil)
	liveLogits := m.NextLogits([]int{0, 1})
	m.Freeze()
	frozenLogits := m.NextLogits([]int{0, 1})
	for i := range liveLogits {
		if math.Abs(liveLogits[i]-frozenLogits[i]) > 1e-9 {
			t.Fatal("frozen embeddings diverge from live graph encoder")
		}
	}
	m.Unfreeze()
	if m.Frozen != nil {
		t.Fatal("Unfreeze failed")
	}
}

func TestTopK(t *testing.T) {
	logits := []float64{0.1, 0.9, 0.5, 0.9}
	top := TopK(logits, nil, 2)
	if len(top) != 2 || top[0].Tag != 1 || top[1].Tag != 3 {
		t.Fatalf("TopK = %v", top)
	}
	restricted := TopK(logits, []int{0, 2}, 5)
	if len(restricted) != 2 || restricted[0].Tag != 2 {
		t.Fatalf("restricted = %v", restricted)
	}
}

func TestClipHistory(t *testing.T) {
	h := clipHistory([]int{1, 2, 3, 4, 5}, 3)
	if len(h) != 3 || h[0] != 3 {
		t.Fatalf("clip = %v", h)
	}
	orig := []int{1, 2}
	c := clipHistory(orig, 5)
	c[0] = 99
	if orig[0] != 1 {
		t.Fatal("clipHistory aliases input")
	}
}

func TestNames(t *testing.T) {
	mk := func(cfg Config) string {
		return Build(cfg, tinyGraph(), nil).Name()
	}
	base := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Seed: 1}
	if mk(base) != "IntelliTag" {
		t.Fatal("base name")
	}
	na := base
	na.WithoutNeighborAttention = true
	if mk(na) != "IntelliTag w/o na" {
		t.Fatal("na name")
	}
	ca := base
	ca.WithoutContextualAttention = true
	if mk(ca) != "IntelliTag w/o ca" {
		t.Fatal("ca name")
	}
}

// End-to-end learning test on a small synthetic world: after training, the
// model must rank the true next click far better than chance.
func TestEndToEndLearnsNextClick(t *testing.T) {
	w := synth.Generate(synth.SmallConfig())
	train, _, test := w.SplitSessions(0.8, 0.1)
	graph := w.BuildGraph(train)

	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	cfg.NeighborCap = 8
	m := Build(cfg, graph, nil)

	var sessions [][]int
	for _, s := range train {
		sessions = append(sessions, s.Clicks)
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	tc.JointEpochs = 2
	TrainFull(m, graph, ExpandPrefixes(sessions), tc)

	// Mean reciprocal rank of the true next tag among 50 candidates.
	rng := mat.NewRNG(123)
	var mrr float64
	var n int
	for _, s := range test {
		if len(s.Clicks) < 2 {
			continue
		}
		history := s.Clicks[:len(s.Clicks)-1]
		target := s.Clicks[len(s.Clicks)-1]
		cands := []int{target}
		for len(cands) < 50 {
			c := rng.Intn(w.NumTags())
			if c != target {
				cands = append(cands, c)
			}
		}
		scores := m.ScoreCandidates(history, cands)
		rank := 1
		for i := 1; i < len(scores); i++ {
			if scores[i] > scores[0] {
				rank++
			}
		}
		mrr += 1 / float64(rank)
		n++
		if n >= 80 {
			break
		}
	}
	mrr /= float64(n)
	// Chance MRR over 50 candidates is ~0.09.
	if mrr < 0.2 {
		t.Fatalf("trained MRR %v barely above chance", mrr)
	}
}

func TestStaticTrainingRuns(t *testing.T) {
	w := synth.Generate(synth.SmallConfig())
	train, _, _ := w.SplitSessions(0.8, 0.1)
	graph := w.BuildGraph(train)
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Heads = 2
	cfg.Layers = 1
	cfg.NeighborCap = 6
	m := Build(cfg, graph, nil)
	var sessions [][]int
	for _, s := range train[:100] {
		sessions = append(sessions, s.Clicks)
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	loss := TrainStatic(m, graph, sessions, tc)
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("static loss = %v", loss)
	}
	if m.Frozen == nil {
		t.Fatal("static training should leave the model frozen")
	}
}

func TestPretrainGraphSeparatesNeighborsFromStrangers(t *testing.T) {
	// A real-sized world so sampled negatives are mostly true negatives.
	w := synth.Generate(synth.SmallConfig())
	train, _, _ := w.SplitSessions(0.8, 0.1)
	graph := w.BuildGraph(train)
	g := mat.NewRNG(5)
	cache := hetgraph.BuildNeighborCache(graph, 8, g.Fork())
	build := func() *GraphEncoder {
		return NewGraphEncoder(graph.NumTags, 8, 2, cache, hetgraph.AllMetapaths, nil, mat.NewRNG(5))
	}

	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	first := PretrainGraph(build(), graph, cfg, 2)

	e := build()
	cfg.Epochs = 4
	last := PretrainGraph(e, graph, cfg, 2)
	if last >= first {
		t.Fatalf("link-prediction loss did not decrease: %v -> %v", first, last)
	}

	// Averaged over many clk pairs, neighbors must now score higher than
	// random tags under the training objective (dot product).
	rng := mat.NewRNG(77)
	var nbSum, randSum float64
	var n int
	for tag := 0; tag < graph.NumTags && n < 60; tag++ {
		nbs := graph.CoClickedTags(hetgraph.NodeID(tag))
		if len(nbs) == 0 {
			continue
		}
		za, _ := e.Forward(tag)
		zb, _ := e.Forward(int(nbs[0]))
		zr, _ := e.Forward(rng.Intn(graph.NumTags))
		nbSum += mat.Dot(za, zb)
		randSum += mat.Dot(za, zr)
		n++
	}
	if nbSum <= randSum {
		t.Fatalf("mean neighbor dot %v <= mean random dot %v", nbSum/float64(n), randSum/float64(n))
	}
}
