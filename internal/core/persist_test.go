package core

import (
	"math"
	"path/filepath"
	"testing"

	"intellitag/internal/nn"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, MaskProb: 0.2, Seed: 3}
	m := Build(cfg, tinyGraph(), nil)
	want := m.NextLogits([]int{0, 1})

	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}

	// A fresh model with a different seed predicts differently, then load
	// restores identical behavior.
	cfg2 := cfg
	cfg2.Seed = 77
	m2 := Build(cfg2, tinyGraph(), nil)
	before := m2.NextLogits([]int{0, 1})
	diff := false
	for i := range want {
		if math.Abs(before[i]-want[i]) > 1e-9 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should predict differently")
	}
	if err := m2.Load(path); err != nil {
		t.Fatal(err)
	}
	after := m2.NextLogits([]int{0, 1})
	for i := range want {
		if math.Abs(after[i]-want[i]) > 1e-12 {
			t.Fatalf("logit %d: %v != %v after load", i, after[i], want[i])
		}
	}
}

func TestModelLoadRejectsDifferentArchitecture(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Seed: 3}
	m := Build(cfg, tinyGraph(), nil)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	big := cfg
	big.Dim = 8
	m2 := Build(big, tinyGraph(), nil)
	if err := m2.Load(path); err == nil {
		t.Fatal("expected architecture mismatch error")
	}
}

func TestSaveEmbeddingsRoundTrip(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Seed: 3}
	m := Build(cfg, tinyGraph(), nil)
	path := filepath.Join(t.TempDir(), "emb.gob")
	if err := m.SaveEmbeddings(path); err != nil {
		t.Fatal(err)
	}
	got, err := nn.LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 6 || got.Cols != 4 {
		t.Fatalf("embedding table %dx%d", got.Rows, got.Cols)
	}
	for i, v := range m.Frozen.Data {
		if got.Data[i] != v {
			t.Fatal("embedding table not restored")
		}
	}
}

func TestLoadRefreshesFrozenTable(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Seed: 3}
	m := Build(cfg, tinyGraph(), nil)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2 := Build(Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Seed: 50}, tinyGraph(), nil)
	m2.Freeze()
	stale := m2.Frozen.Clone()
	if err := m2.Load(path); err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range stale.Data {
		if m2.Frozen.Data[i] != stale.Data[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("Load did not refresh the frozen embedding table")
	}
}
