package core

import "intellitag/internal/nn"

// Save writes every trainable parameter (sequence and graph layers) to
// path. The offline trainer uses this to hand models to the online servers,
// the deployment flow of Section V-B.
func (m *Model) Save(path string) error {
	return nn.SaveParams(path, m.AllParams())
}

// Load restores parameters written by Save into a model built with the same
// configuration and graph shape. Architecture drift fails loudly.
func (m *Model) Load(path string) error {
	if err := nn.LoadParams(path, m.AllParams()); err != nil {
		return err
	}
	if m.Frozen != nil {
		m.Freeze() // refresh the lookup table from the restored graph layers
	}
	return nil
}

// SaveEmbeddings writes the frozen tag-embedding table (the artifact the
// paper's deployment uploads daily). The model must be frozen.
func (m *Model) SaveEmbeddings(path string) error {
	if m.Frozen == nil {
		m.Freeze()
	}
	return nn.SaveMatrix(path, m.Frozen)
}
