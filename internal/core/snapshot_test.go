package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"intellitag/internal/snapshot"
)

func TestCommitAndLoadSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, MaskProb: 0.2, Seed: 3}
	g := tinyGraph()
	m := Build(cfg, g, nil)
	want := m.NextLogits([]int{0, 1})

	s, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	man, err := CommitSnapshot(s, m, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{SnapParams, SnapGraph, SnapEmbeddings} {
		if _, ok := man.Component(name); !ok {
			t.Fatalf("manifest missing component %s: %+v", name, man)
		}
	}

	m2, g2, err := LoadSnapshotVersion(s, man.ID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTags != g.NumTags || g2.TotalEdges() != g.TotalEdges() {
		t.Fatalf("graph not restored: %d tags, %d edges", g2.NumTags, g2.TotalEdges())
	}
	got := m2.NextLogits([]int{0, 1})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("logit %d: %v != %v after snapshot round trip", i, got[i], want[i])
		}
	}
	if m2.Frozen == nil {
		t.Fatal("loaded model should come back frozen")
	}
}

func TestLoadSnapshotVersionRejectsTamper(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Seed: 3}
	g := tinyGraph()
	m := Build(cfg, g, nil)
	s, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	man, err := CommitSnapshot(s, m, g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Root(), man.ID, SnapParams)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshotVersion(s, man.ID, cfg); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("tampered snapshot load = %v, want ErrChecksum", err)
	}
}

func TestCommitSnapshotChains(t *testing.T) {
	cfg := Config{Dim: 4, Heads: 2, Layers: 1, MaxLen: 6, Seed: 3}
	g := tinyGraph()
	s, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := CommitSnapshot(s, Build(cfg, g, nil), g)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed = 99
	m2, err := CommitSnapshot(s, Build(cfg2, g, nil), g)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Parent != m1.ID || m2.Seq != m1.Seq+1 {
		t.Fatalf("snapshot chain broken: %+v after %+v", m2, m1)
	}
	latest, err := s.Latest()
	if err != nil || latest.ID != m2.ID {
		t.Fatalf("Latest = %+v, %v", latest, err)
	}
}
