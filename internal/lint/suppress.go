package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A suppression is one parsed //lint:ignore comment.
type suppression struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool // suppressed at least one finding this run
}

type suppressionIndex struct {
	// keyed by file:line of the statement the suppression governs (its own
	// line for trailing comments; the next line for leading comments — a
	// suppression on its own line applies to the line below it). Entries
	// point into all so one suppression registered under two lines is one
	// use-tracked object.
	byLine map[string][]*suppression
	all    []*suppression // well-formed suppressions in source order
	broken []suppression  // missing reason
}

func key(file string, line int) string {
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	// Tiny positive-int formatter; avoids strconv for this one call site.
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// collectSuppressions scans every comment in the package for
// `//lint:ignore <analyzer> <reason>` markers.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{byLine: map[string][]*suppression{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				s := &suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      c.Pos(),
				}
				if s.analyzer == "" || s.reason == "" {
					idx.broken = append(idx.broken, *s)
					continue
				}
				// A trailing comment suppresses its own line; a comment on a
				// line of its own suppresses the line below. Registering both
				// lines keeps the matcher a single map lookup — a stray match
				// one line above a trailing comment is harmless because the
				// suppression still names the analyzer explicitly.
				idx.all = append(idx.all, s)
				idx.byLine[key(s.file, s.line)] = append(idx.byLine[key(s.file, s.line)], s)
				idx.byLine[key(s.file, s.line+1)] = append(idx.byLine[key(s.file, s.line+1)], s)
			}
		}
	}
	return idx
}

// apply filters suppressed findings and appends findings for malformed and
// unused suppression comments: a //lint:ignore that matched nothing is dead
// weight that silently swallows the next finding to appear on its line, so it
// must either be justified again (by a finding) or removed.
func (idx *suppressionIndex) apply(raw []Finding) []Finding {
	var out []Finding
	for _, f := range raw {
		suppressed := false
		for _, s := range idx.byLine[key(f.Pos.Filename, f.Pos.Line)] {
			if s.analyzer == f.Analyzer {
				s.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, s := range idx.broken {
		out = append(out, Finding{
			Pos:      token.Position{Filename: s.file, Line: s.line},
			Analyzer: "lint",
			Message:  "lint:ignore needs an analyzer name and a reason: //lint:ignore <analyzer> <reason>",
		})
	}
	for _, s := range idx.all {
		if !s.used {
			out = append(out, Finding{
				Pos:      token.Position{Filename: s.file, Line: s.line},
				Analyzer: "lint",
				Message:  "unused suppression: no " + s.analyzer + " finding on this or the next line; remove the stale //lint:ignore",
			})
		}
	}
	return out
}
