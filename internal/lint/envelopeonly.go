package lint

import (
	"go/ast"
)

// EnvelopeOnly keeps model persistence on PR 5's checksummed-snapshot rails:
// inside the model-component packages (core, nn, mat, ann, hetgraph, qamatch,
// tagmining, baselines — scoped by the driver), nothing may open, read or
// write files directly, and gob encoders/decoders may only run against
// in-memory buffers. Model bytes reach disk exclusively through
// internal/snapshot's envelope API (WriteChecksummed/ReadChecksummed and the
// Store manifest machinery); a raw os.Create+gob.Encode path would reintroduce
// exactly the torn-artifact and silent-corruption failure modes the ITSNAP1
// envelope exists to catch.
//
// Two checks:
//
//   - calls to os.Create / os.Open / os.OpenFile / os.ReadFile / os.WriteFile
//     are flagged — model packages serialize to []byte and hand the payload
//     to the snapshot store;
//   - gob.NewEncoder / gob.NewDecoder whose stream argument is a *File (or a
//     direct os.Create/os.Open call) is flagged — the blessed pattern encodes
//     into a bytes.Buffer and frames the bytes with the envelope.
//
// Matching is structural (identifier named "os"/"gob", stream type named
// "File"), so fixtures model the APIs without imports. Known gap: a file
// handle laundered through an io.Writer parameter is invisible to the stream
// check; the call that opened the file is still caught by the first check
// when it lives in a scoped package.
var EnvelopeOnly = &Analyzer{
	Name: "envelopeonly",
	Doc:  "model components persist only through internal/snapshot's checksummed envelope",
	Run:  runEnvelopeOnly,
}

// rawFileFuncs are the os entry points that put bytes on (or pull them off)
// disk without the envelope.
var rawFileFuncs = map[string]bool{
	"Create":    true,
	"Open":      true,
	"OpenFile":  true,
	"ReadFile":  true,
	"WriteFile": true,
}

func runEnvelopeOnly(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			qual, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case qual.Name == "os" && rawFileFuncs[sel.Sel.Name]:
				pass.Reportf(call.Pos(),
					"raw file call os.%s in a model-component package; model persistence must flow through internal/snapshot's checksummed envelope (WriteChecksummed/ReadChecksummed)",
					sel.Sel.Name)
			case qual.Name == "gob" && (sel.Sel.Name == "NewEncoder" || sel.Sel.Name == "NewDecoder") && len(call.Args) == 1:
				if gobStreamIsFile(pass, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"gob.%s straight to a file bypasses the snapshot envelope; encode into a bytes.Buffer and frame it with snapshot.WriteChecksummed",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// gobStreamIsFile reports whether the encoder/decoder stream argument is a
// file: statically typed *File, or a direct os.Create/os.Open/os.OpenFile
// call expression.
func gobStreamIsFile(pass *Pass, arg ast.Expr) bool {
	if isNamed(pass.TypeOf(arg), "File") {
		return true
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	qual, ok := sel.X.(*ast.Ident)
	return ok && qual.Name == "os" && rawFileFuncs[sel.Sel.Name]
}
