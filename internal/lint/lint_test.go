package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// fixtureImporter refuses every import. Fixture packages are self-contained
// by construction (local Pool types, local kernel stand-ins, the universe
// error type), so the importer must never be consulted; if it is, the fixture
// grew a dependency and the failure says so.
type fixtureImporter struct{}

func (fixtureImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("fixture packages must not import anything (tried %q)", path)
}

// fixtureAnalyzers maps each testdata directory to the analyzer it exercises.
var fixtureAnalyzers = map[string]*Analyzer{
	"pooldiscipline": PoolDiscipline,
	"intoalias":      IntoAlias,
	"maporder":       MapOrder,
	"nakedgo":        NakedGo,
	"errcheck":       ErrCheck,
	"versionpin":     VersionPin,
	"lockguard":      LockGuard,
	"envelopeonly":   EnvelopeOnly,
	"metriclabels":   MetricLabels,
	"detsource":      DetSource,
}

// TestGoldenFixtures runs each analyzer over its fixture package and checks
// the findings against the `// want "substring"` comments: every finding must
// match a want on its line, every want must be hit, and suppressed lines must
// stay silent.
func TestGoldenFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("read testdata: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		a, ok := fixtureAnalyzers[name]
		if !ok {
			t.Errorf("testdata/%s has no analyzer registered in fixtureAnalyzers", name)
			continue
		}
		seen[name] = true
		t.Run(name, func(t *testing.T) { runGolden(t, name, a) })
	}
	for name := range fixtureAnalyzers {
		if !seen[name] {
			t.Errorf("analyzer %s has no fixture directory under testdata", name)
		}
	}
}

func runGolden(t *testing.T, dir string, a *Analyzer) {
	pkg := loadFixture(t, dir)
	wants := collectWants(t, pkg)
	findings := Run([]Scoped{{a, matchAll}}, pkg)
	if len(findings) == 0 {
		t.Fatalf("no findings at all: the %s fixture no longer triggers its analyzer", a.Name)
	}
	for _, f := range findings {
		line := key(f.Pos.Filename, f.Pos.Line)
		text := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
		matched := false
		for i, w := range wants[line] {
			if w != "" && strings.Contains(text, w) {
				wants[line][i] = "" // consume
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", f.Pos.Filename, f.Pos.Line, text)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if w != "" {
				t.Errorf("%s: expected a finding matching %q, got none", line, w)
			}
		}
	}
}

var (
	wantRe   = regexp.MustCompile(`^//\s*want\s+(.+)$`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

// collectWants extracts `// want "substring" ...` expectations, keyed by
// file:line of the comment (trailing comments share the flagged line).
func collectWants(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				qs := quotedRe.FindAllStringSubmatch(m[1], -1)
				if len(qs) == 0 {
					t.Errorf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
					continue
				}
				for _, q := range qs {
					wants[key(pos.Filename, pos.Line)] = append(wants[key(pos.Filename, pos.Line)], q[1])
				}
			}
		}
	}
	return wants
}

// loadFixture parses and typechecks one testdata package without touching the
// build cache or any real dependency.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	names, err := filepath.Glob(filepath.Join("testdata", dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in testdata/%s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: fixtureImporter{},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	path := "fixture/" + dir
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck testdata/%s: %v", dir, err)
	}
	return &Package{Path: path, Dir: filepath.Join("testdata", dir), Fset: fset, Files: files, Types: tpkg, Info: info}
}

// TestBrokenSuppressionIsAFinding checks that a lint:ignore comment without a
// reason surfaces as a finding instead of silently suppressing nothing.
func TestBrokenSuppressionIsAFinding(t *testing.T) {
	const src = "package p\n\nfunc f() {\n\t//lint:ignore maporder\n\t_ = 0\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "broken.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	idx := collectSuppressions(fset, []*ast.File{f})
	out := idx.apply(nil)
	if len(out) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(out), out)
	}
	if out[0].Analyzer != "lint" || !strings.Contains(out[0].Message, "reason") {
		t.Errorf("unexpected finding for reason-less suppression: %s", out[0])
	}
}

// TestSuppressionRequiresMatchingAnalyzer checks that a suppression for one
// analyzer does not swallow another analyzer's finding on the same line — and
// that a suppression which matched nothing surfaces as an unused finding.
func TestSuppressionRequiresMatchingAnalyzer(t *testing.T) {
	const src = "package p\n\nfunc f() {\n\t//lint:ignore nakedgo some reason\n\t_ = 0\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "mismatch.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Fresh index per apply: the used flag is per-run state.
	raw := []Finding{{Pos: token.Position{Filename: "mismatch.go", Line: 5}, Analyzer: "errcheck", Message: "x"}}
	out := collectSuppressions(fset, []*ast.File{f}).apply(raw)
	if len(out) != 2 {
		t.Fatalf("got %d findings, want 2 (errcheck passes through + nakedgo suppression unused): %v", len(out), out)
	}
	if out[0].Analyzer != "errcheck" {
		t.Errorf("suppression for nakedgo swallowed the errcheck finding: %v", out)
	}
	if out[1].Analyzer != "lint" || !strings.Contains(out[1].Message, "unused suppression") {
		t.Errorf("unmatched suppression not reported as unused: %v", out)
	}
	raw[0].Analyzer = "nakedgo"
	if out := collectSuppressions(fset, []*ast.File{f}).apply(raw); len(out) != 0 {
		t.Errorf("matching suppression did not apply: %v", out)
	}
}

// TestUnusedSuppressionIsAFinding checks that a stale //lint:ignore with no
// finding to absorb becomes a finding itself, on either line it governs.
func TestUnusedSuppressionIsAFinding(t *testing.T) {
	const src = "package p\n\nfunc f() {\n\t//lint:ignore maporder keys sorted upstream\n\t_ = 0\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stale.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := collectSuppressions(fset, []*ast.File{f}).apply(nil)
	if len(out) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(out), out)
	}
	if out[0].Analyzer != "lint" || !strings.Contains(out[0].Message, "unused suppression") || out[0].Pos.Line != 4 {
		t.Errorf("unexpected unused-suppression finding: %s", out[0])
	}

	// Used on its own line (trailing-comment position) keeps it silent.
	trailing := []Finding{{Pos: token.Position{Filename: "stale.go", Line: 4}, Analyzer: "maporder", Message: "x"}}
	if out := collectSuppressions(fset, []*ast.File{f}).apply(trailing); len(out) != 0 {
		t.Errorf("suppression used on its own line still reported: %v", out)
	}
	// Used on the governed next line keeps it silent too.
	next := []Finding{{Pos: token.Position{Filename: "stale.go", Line: 5}, Analyzer: "maporder", Message: "x"}}
	if out := collectSuppressions(fset, []*ast.File{f}).apply(next); len(out) != 0 {
		t.Errorf("suppression used on the next line still reported: %v", out)
	}
}

// TestAnalyzerRegistry pins the exact analyzer set and order of DefaultSuite
// and requires fixture coverage for every analyzer: adding an analyzer without
// a golden fixture (or renaming one) fails here before it fails in review.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{
		"pooldiscipline", "intoalias", "maporder", "nakedgo", "errcheck",
		"versionpin", "lockguard", "envelopeonly", "metriclabels", "detsource",
	}
	suite := DefaultSuite()
	if len(suite) != len(want) {
		t.Fatalf("DefaultSuite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, s := range suite {
		if s.Name != want[i] {
			t.Errorf("DefaultSuite[%d] = %s, want %s", i, s.Name, want[i])
			continue
		}
		if fixtureAnalyzers[s.Name] != s.Analyzer {
			t.Errorf("analyzer %s is not registered in fixtureAnalyzers", s.Name)
		}
		if fi, err := os.Stat(filepath.Join("testdata", s.Name)); err != nil || !fi.IsDir() {
			t.Errorf("analyzer %s has no testdata/%s fixture directory", s.Name, s.Name)
		}
	}
}

// TestNewAnalyzerScopes pins the matchOnly scoping added in this round:
// versionpin stays inside serving (the only package that can name
// modelVersion) and detsource covers exactly the seeded-determinism set.
func TestNewAnalyzerScopes(t *testing.T) {
	match := map[string]func(string) bool{}
	for _, s := range DefaultSuite() {
		match[s.Name] = s.Match
	}
	if !match["versionpin"]("intellitag/internal/serving") {
		t.Error("versionpin must run on internal/serving")
	}
	for _, p := range []string{"intellitag/internal/core", "intellitag/internal/servingx", "intellitag/cmd/serve"} {
		if match["versionpin"](p) {
			t.Errorf("versionpin must not run on %s", p)
		}
	}
	for _, p := range []string{
		"intellitag/internal/core", "intellitag/internal/nn", "intellitag/internal/mat",
		"intellitag/internal/ann", "intellitag/internal/synth", "intellitag/internal/hetgraph",
		"intellitag/internal/online", // replay contract: injected clocks and seeds only
	} {
		if !match["detsource"](p) {
			t.Errorf("detsource must run on %s", p)
		}
	}
	for _, p := range []string{"intellitag/internal/serving", "intellitag/internal/obs", "intellitag/internal/annex", "intellitag/internal/onlinex"} {
		if match["detsource"](p) {
			t.Errorf("detsource must not run on %s", p)
		}
	}
	if !match["envelopeonly"]("intellitag/internal/nn") || match["envelopeonly"]("intellitag/internal/snapshot") {
		t.Error("envelopeonly scope wrong: must cover model packages and exempt snapshot itself")
	}
}

// TestSuiteConcurrent runs the full suite over every package of the real tree
// from concurrent goroutines. Under -race this pins the analyzers'
// no-shared-mutable-state contract (per-package family maps, guard maps and
// suppression indexes are all pass-local).
func TestSuiteConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export over the whole module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	suite := DefaultSuite()
	var wg sync.WaitGroup
	for _, pkg := range pkgs {
		for range 2 { // same package analyzed twice concurrently
			wg.Add(1)
			go func(p *Package) {
				defer wg.Done()
				Run(suite, p)
			}(pkg)
		}
	}
	wg.Wait()
}

// TestNakedGoScope pins the nakedgo allow-list in DefaultSuite: only the
// packages sanctioned to own goroutines (par, serving, obs, snapshot, load,
// cmd/loadgen) are skipped, and the prefix match does not leak onto
// look-alike package paths.
func TestNakedGoScope(t *testing.T) {
	var match func(string) bool
	for _, s := range DefaultSuite() {
		if s.Analyzer == NakedGo {
			match = s.Match
		}
	}
	if match == nil {
		t.Fatal("DefaultSuite has no nakedgo entry")
	}
	allowed := []string{
		"intellitag/internal/par",
		"intellitag/internal/serving",
		"intellitag/internal/obs",
		"intellitag/internal/snapshot",
		"intellitag/internal/load",
		"intellitag/cmd/loadgen",
	}
	for _, p := range allowed {
		if match(p) {
			t.Errorf("nakedgo should not run on allow-listed package %s", p)
		}
	}
	scoped := []string{
		"intellitag/internal/core",
		"intellitag/internal/ann",           // index build + search must stay goroutine-free
		"intellitag/internal/observability", // not a prefix-match leak of obs
		"intellitag/internal/snapshots",     // not a prefix-match leak of snapshot
		"intellitag/internal/loader",        // not a prefix-match leak of load
		"intellitag/internal/httprr",        // replay must stay goroutine-free (deterministic ordering)
		"intellitag/internal/online",        // the control loop is synchronous by design; concurrency lives in serving
		"intellitag/cmd/simulate",
	}
	for _, p := range scoped {
		if !match(p) {
			t.Errorf("nakedgo should run on %s", p)
		}
	}
}

// TestRepoTreeIsClean applies the shipped gate — DefaultSuite over the whole
// module — and fails on any finding, pinning the repo's lint-clean state so a
// regression fails `go test ./internal/lint` even without running the driver.
func TestRepoTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export over the whole module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	suite := DefaultSuite()
	for _, pkg := range pkgs {
		for _, f := range Run(suite, pkg) {
			t.Errorf("%s", f)
		}
	}
}
