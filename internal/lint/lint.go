// Package lint is intellilint: a project-specific static-analysis suite built
// purely on the standard library's go/parser, go/ast, go/types and go/token
// packages. It enforces the invariants the performance work of PR 1 and PR 2
// introduced but the Go compiler cannot check:
//
//   - pooldiscipline: every mat.Pool Get/GetVec/GetInts must be matched by a
//     Put/PutVec/PutInts on all return paths of the same function, and a
//     pooled value must not be used after it has been returned to the pool.
//   - intoalias: destinations of the non-alias-safe Into kernels (MatMulInto,
//     TMatMulInto, MatMulTInto) must not syntactically alias a source.
//   - maporder: in the seeded-determinism packages, ranging over a map with
//     an order-dependent body (float accumulation, value collection, early
//     return) is flagged unless the keys are collected and sorted first.
//   - nakedgo: `go` statements outside internal/par and internal/serving are
//     flagged so all fan-out stays on the shared worker pool.
//   - errcheck: ignored error returns in the store/kb/serving write paths.
//
// PR 8 adds the concurrency-and-versioning round for the invariants the hot
// swap (PR 5) and ANN retrieval (PR 7) work introduced:
//
//   - versionpin: one pinned modelVersion per request scope in
//     internal/serving; live versions are immutable.
//   - lockguard: mutex-guarded fields stay inside Lock/Unlock windows, and
//     fields touched through sync/atomic are never accessed plainly.
//   - envelopeonly: model-component packages persist only through
//     internal/snapshot's checksummed envelope.
//   - metriclabels: obs metric families are literal intellitag_* names with
//     one kind and one label-key set across call sites.
//   - detsource: determinism-scoped packages take injected seeds and
//     timestamps instead of ambient math/rand and time.Now.
//
// Findings are reported as `file:line: [analyzer] message` and can be
// suppressed with a `//lint:ignore <analyzer> <reason>` comment on the same
// line or the line directly above; the reason is mandatory, and a
// suppression that no longer matches any finding is itself reported so stale
// exceptions cannot rot in the tree.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short lower-case identifier used in output and suppressions
	Doc  string // one-line description of the enforced invariant
	Run  func(*Pass)
}

// A Pass couples one package's syntax and type information with an Analyzer
// run. Analyzers report through Reportf.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string

	findings *[]Finding
}

// A Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding as file:line: [analyzer] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (use or definition).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// A Scoped pairs an analyzer with the set of package paths it applies to.
// Scoping is policy, not mechanism: analyzers themselves are path-agnostic so
// the golden-file tests can run them on fixture packages.
type Scoped struct {
	*Analyzer
	// Match reports whether the analyzer runs on the package path.
	Match func(pkgPath string) bool
}

func matchAll(string) bool { return true }

func matchExcept(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return false
			}
		}
		return true
	}
}

func matchOnly(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}

// DefaultSuite is the repo's analyzer set with its scoping policy:
//
//   - pooldiscipline, intoalias: everywhere (the kernels and pools are used
//     across nn, core, eval and serving).
//   - maporder: everywhere. The hard core is the seeded-determinism packages
//     (core, nn, eval, baselines), but the whole tree claims reproducible
//     experiments — textproc embeddings feed clustering, kb ids feed the
//     catalog — so the invariant is repo-wide.
//   - nakedgo: everywhere except the packages allowed to own goroutines —
//     par and serving (the fan-out layer), obs (background telemetry
//     listeners that live for the whole process) and snapshot (the store
//     watcher goroutine behind zero-downtime hot swaps).
//   - errcheck: everywhere. The motivating paths are the store/kb/serving
//     and model/graph persistence writes; the exemptions for never-failing
//     writers keep the check quiet elsewhere.
//   - versionpin: internal/serving only — modelVersion and the pinning
//     protocol live there; nothing else can even name the type.
//   - lockguard: everywhere. Mutex-guarded structs exist in serving, obs,
//     kb, search and store, and the atomicmix half is cheap where no
//     atomics appear.
//   - envelopeonly: the model-component packages whose bytes land in
//     snapshot versions. The data warehouses (kb, store) own their JSON
//     side files, obs owns run logs and prof owns profile dumps — those are
//     not model components and stay out of scope.
//   - metriclabels: everywhere a Registry call can appear; per-package
//     consistency (see the analyzer doc for the cross-package gap).
//   - detsource: the seeded-determinism packages from the SimulateSet
//     contract — core, nn, mat, ann, synth, hetgraph — plus online, whose
//     replay contract (same log + same seed ⇒ same weights and the same
//     control decisions) dies the moment an ambient clock or unseeded rand
//     sneaks in. Note online is NOT exempt from nakedgo either: the control
//     loop is synchronous by design, concurrency lives in serving.
func DefaultSuite() []Scoped {
	return []Scoped{
		{PoolDiscipline, matchAll},
		{IntoAlias, matchAll},
		{MapOrder, matchAll},
		{NakedGo, matchExcept(
			"intellitag/internal/par",
			"intellitag/internal/serving",
			"intellitag/internal/obs",
			"intellitag/internal/snapshot",
			"intellitag/internal/load",
			"intellitag/cmd/loadgen",
		)},
		{ErrCheck, matchAll},
		{VersionPin, matchOnly("intellitag/internal/serving")},
		{LockGuard, matchAll},
		{EnvelopeOnly, matchOnly(
			"intellitag/internal/core",
			"intellitag/internal/nn",
			"intellitag/internal/mat",
			"intellitag/internal/ann",
			"intellitag/internal/hetgraph",
			"intellitag/internal/qamatch",
			"intellitag/internal/tagmining",
			"intellitag/internal/baselines",
		)},
		{MetricLabels, matchAll},
		{DetSource, matchOnly(
			"intellitag/internal/core",
			"intellitag/internal/nn",
			"intellitag/internal/mat",
			"intellitag/internal/ann",
			"intellitag/internal/synth",
			"intellitag/internal/hetgraph",
			"intellitag/internal/online",
		)},
	}
}

// Run applies every applicable analyzer to pkg and returns the surviving
// findings: suppressed findings are dropped, and malformed suppression
// comments (missing reason) are themselves reported under the "lint"
// pseudo-analyzer. Results are sorted by position.
func Run(suite []Scoped, pkg *Package) []Finding {
	var raw []Finding
	for _, s := range suite {
		if !s.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: s.Analyzer,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			findings: &raw,
		}
		s.Run(pass)
	}
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	findings := sup.apply(raw)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}
