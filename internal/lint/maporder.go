package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MapOrder flags `range` statements over maps whose body is order-dependent.
// The training, inference and eval paths advertise bit-identical results at
// any worker count (PR 1's determinism tests), and Go map iteration order is
// deliberately randomized — so a map-range body that accumulates floats,
// collects values, mutates outer state through calls, or returns
// mid-iteration silently breaks that guarantee.
//
// Order-independent bodies are allowed without ceremony:
//
//   - writes to loop-local variables,
//   - writes indexed by the loop key (m2[k] = ..., m2[k] += ...; every
//     iteration touches a distinct slot),
//   - delete(m2, k),
//   - integer-typed accumulation (+=, counters; exact and commutative).
//
// The blessed pattern for everything else is collecting the keys and sorting:
// a body that only appends the key to a slice is accepted, provided a
// sort call on that slice follows in the same function.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration with an order-dependent body must sort the keys first",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		// All function bodies in the file, for locating the innermost
		// function enclosing a range statement (sort-call search scope).
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				return true
			}
			c := &mapOrderCheck{pass: pass, rs: rs}
			c.keyObj = identObject(pass, rs.Key)
			c.classifyBlock(rs.Body)
			if c.bad != nil {
				pass.Reportf(rs.Pos(), "iteration over map %s has an order-dependent body (%s); sort the keys first",
					types.ExprString(rs.X), c.why)
				return true
			}
			// Pure key-collection loops must be followed by a sort of the
			// collected slice somewhere later in the same function. Report in
			// source order (c.collected is itself a map).
			objs := make([]types.Object, 0, len(c.collected))
			for obj := range c.collected {
				objs = append(objs, obj)
			}
			sort.Slice(objs, func(i, j int) bool { return c.collected[objs[i]].Pos() < c.collected[objs[j]].Pos() })
			for _, obj := range objs {
				if !sortedAfter(pass, enclosingBody(bodies, rs.Pos()), obj, rs.End()) {
					pass.Reportf(c.collected[obj].Pos(), "map keys collected into %s but never sorted; sort the slice before iterating it", obj.Name())
				}
			}
			return true
		})
	}
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapOrderCheck classifies one map-range body. bad/why record the first
// order-dependent statement; collected records outer slices that received
// only the loop key (candidate sorted-keys idiom).
type mapOrderCheck struct {
	pass      *Pass
	rs        *ast.RangeStmt
	keyObj    types.Object
	bad       ast.Node
	why       string
	collected map[types.Object]ast.Node
}

func (c *mapOrderCheck) flag(n ast.Node, why string) {
	if c.bad == nil {
		c.bad, c.why = n, why
	}
}

func (c *mapOrderCheck) classifyBlock(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.classifyStmt(s)
	}
}

func (c *mapOrderCheck) classifyStmt(s ast.Stmt) {
	if c.bad != nil {
		return
	}
	switch s := s.(type) {
	case *ast.EmptyStmt, *ast.DeclStmt, *ast.BranchStmt:
		// Local declarations and continue/break are order-neutral.
	case *ast.BlockStmt:
		c.classifyBlock(s)
	case *ast.LabeledStmt:
		c.classifyStmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			c.classifyStmt(s.Init)
		}
		c.classifyBlock(s.Body)
		if s.Else != nil {
			c.classifyStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.classifyStmt(s.Init)
		}
		if s.Post != nil {
			c.classifyStmt(s.Post)
		}
		c.classifyBlock(s.Body)
	case *ast.RangeStmt:
		c.classifyBlock(s.Body)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				c.classifyStmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				c.classifyStmt(st)
			}
		}
	case *ast.AssignStmt:
		c.classifyAssign(s)
	case *ast.IncDecStmt:
		// n++ applies an identical exact increment per iteration; the result
		// is order-independent for every numeric type.
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if name := calleeName(call); name == "delete" && len(call.Args) == 2 && c.isKeyIdent(call.Args[1]) {
			return // delete(m2, k): distinct slot per iteration
		}
		c.flag(s, "call "+types.ExprString(call.Fun)+" may mutate state in map order")
	case *ast.ReturnStmt:
		c.flag(s, "return mid-iteration observes an arbitrary element")
	default:
		c.flag(s, "statement is not provably order-independent")
	}
}

func (c *mapOrderCheck) classifyAssign(s *ast.AssignStmt) {
	// s = append(s, k): the sorted-keys idiom's collection step.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && calleeName(call) == "append" &&
				len(call.Args) == 2 && sameIdent(c.pass, call.Args[0], id) {
				if c.isKeyIdent(call.Args[1]) {
					if obj := c.pass.ObjectOf(id); obj != nil && !c.isBodyLocal(obj) {
						if c.collected == nil {
							c.collected = map[types.Object]ast.Node{}
						}
						c.collected[obj] = s
					}
					return
				}
				c.flag(s, "appends map values in iteration order")
				return
			}
		}
	}
	for _, lhs := range s.Lhs {
		if !c.safeTarget(lhs, s.Tok.String()) {
			c.flag(s, "writes "+types.ExprString(lhs)+" in map iteration order")
			return
		}
	}
}

// safeTarget reports whether writing lhs from inside the loop is
// order-independent: blank, loop-local, indexed by the loop key, or an
// integer accumulator (exact commutative arithmetic).
func (c *mapOrderCheck) safeTarget(lhs ast.Expr, tok string) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		obj := c.pass.ObjectOf(lhs)
		if obj == nil {
			return false
		}
		if c.isBodyLocal(obj) {
			return true
		}
		// Outer scalar: plain assignment or non-integer accumulation depends
		// on which element wins / the accumulation order.
		if tok != "=" && tok != ":=" {
			return isIntegerType(obj.Type())
		}
		return false
	case *ast.IndexExpr:
		return c.isKeyIdent(lhs.Index)
	case *ast.StarExpr, *ast.SelectorExpr:
		return false
	}
	return false
}

func (c *mapOrderCheck) isBodyLocal(obj types.Object) bool {
	return obj.Pos() >= c.rs.Body.Pos() && obj.Pos() <= c.rs.Body.End()
}

func (c *mapOrderCheck) isKeyIdent(e ast.Expr) bool {
	if c.keyObj == nil {
		return false
	}
	id, ok := e.(*ast.Ident)
	return ok && c.pass.ObjectOf(id) == c.keyObj
}

func identObject(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.ObjectOf(id)
}

func sameIdent(pass *Pass, e ast.Expr, id *ast.Ident) bool {
	other, ok := e.(*ast.Ident)
	return ok && pass.ObjectOf(other) != nil && pass.ObjectOf(other) == pass.ObjectOf(id)
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedAfter reports whether a call whose name mentions "sort" receives obj
// as an argument after pos within body (e.g. sort.Ints(keys),
// sort.Slice(keys, ...), slices.Sort(keys)).
func sortedAfter(pass *Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		if !strings.Contains(strings.ToLower(types.ExprString(call.Fun)), "sort") {
			return true
		}
		for _, a := range call.Args {
			if id, ok := a.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingBody returns the smallest function body containing pos.
func enclosingBody(bodies []*ast.BlockStmt, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= pos && pos <= b.End() {
			if best == nil || (b.Pos() >= best.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}
