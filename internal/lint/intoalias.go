package lint

import (
	"go/ast"
	"go/types"
)

// IntoAlias flags call sites of the in-place kernels whose destination
// syntactically aliases a source argument. The matmul kernels read their
// sources while writing the destination, so dst must not alias a or b; the
// elementwise kernels (AddInto, SubInto, MulInto, AddRowVecInto, ApplyInto,
// SoftmaxRowsInto, CopyInto) are documented alias-safe in internal/mat and
// are therefore exempt.
//
// The check is syntactic on purpose: two distinct expressions can still alias
// through slices, but `MatMulInto(h, h, w)` is the mistake this catches, and
// it is the one people actually make.
var IntoAlias = &Analyzer{
	Name: "intoalias",
	Doc:  "destinations of non-alias-safe Into kernels must not alias a source argument",
	Run:  runIntoAlias,
}

// intoKernels maps each checked kernel to the argument indices that are read
// as sources while the destination (argument 0) is written.
var intoKernels = map[string][]int{
	"MatMulInto":  {1, 2},
	"TMatMulInto": {1, 2},
	"MatMulTInto": {1, 2},
}

func runIntoAlias(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			srcs, checked := intoKernels[name]
			if !checked || len(call.Args) == 0 {
				return true
			}
			dst := types.ExprString(call.Args[0])
			for _, i := range srcs {
				if i >= len(call.Args) {
					continue
				}
				if types.ExprString(call.Args[i]) == dst {
					pass.Reportf(call.Pos(), "%s destination %s aliases source argument %d; %s is not alias-safe (write into a scratch matrix instead)", name, dst, i, name)
				}
			}
			return true
		})
	}
}

// calleeName returns the rightmost identifier of a call's function
// expression: Foo for Foo(...), mat.Foo for pkg- or method-selectors.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
