package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolDiscipline enforces the mat.Pool ownership contract from PR 2: a value
// obtained with Get/GetVec/GetInts must be returned with the matching
// Put/PutVec/PutInts exactly once, after its last use. Per function it
// reports:
//
//   - a pooled value with no Put at all (leak — the pool silently degrades to
//     plain allocation),
//   - a use of the value lexically after its Put (use-after-release — the
//     buffer may already be zeroed and handed to a concurrent caller),
//   - a return statement between the Get and its (non-deferred) Put
//     (early-return leak — prefer `defer pool.Put(x)`).
//
// Ownership transfers are recognized and exempt from the leak checks: a
// pooled value that is returned, stored into a field, struct literal, slice,
// map or channel has a cross-function lifetime (e.g. the GNN forward caches
// released by Backward), which this per-function analysis cannot track.
//
// Pool receivers are identified structurally: any value whose type is a
// struct named Pool (or pointer to one) with both Get and Put in its method
// set — mat.Pool in production code, fixture pools in testdata.
var PoolDiscipline = &Analyzer{
	Name: "pooldiscipline",
	Doc:  "pool Get must be matched by Put on every path, with no use after Put",
	Run:  runPoolDiscipline,
}

var poolGetMethods = map[string]string{
	"Get":     "Put",
	"GetVec":  "PutVec",
	"GetInts": "PutInts",
}

var poolPutMethods = map[string]bool{"Put": true, "PutVec": true, "PutInts": true}

func runPoolDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolFunc(pass, fn.Body)
		}
	}
}

// poolVar tracks one pooled value through a function body.
type poolVar struct {
	obj     types.Object
	name    string
	getPos  token.Pos
	putName string // the Put method matching the Get that produced it
	puts    []poolPut
	escaped bool
}

type poolPut struct {
	pos      token.Pos
	deferred bool
}

func checkPoolFunc(pass *Pass, body *ast.BlockStmt) {
	vars := map[types.Object]*poolVar{}

	// Pass 1: find Get assignments (x := pool.Get(...), x = pool.GetVec(...)).
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		method, recv := poolMethod(pass, call)
		putName, isGet := poolGetMethods[method]
		if !isGet || recv == nil {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		// A reassignment of an already-tracked variable starts a fresh
		// lifetime; the old one is checked under the same object (lexical
		// approximation — rare in practice).
		if _, seen := vars[obj]; !seen {
			vars[obj] = &poolVar{obj: obj, name: id.Name, getPos: as.Pos(), putName: putName}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: find Puts, escapes and uses. deferDepth tracks whether the
	// current subtree hangs off a defer statement.
	findPoolPuts(pass, body, vars, false)
	findEscapes(pass, body, vars)

	// Pass 3: report, in Get order (vars is itself a map).
	keys := make([]types.Object, 0, len(vars))
	for obj := range vars {
		keys = append(keys, obj)
	}
	sort.Slice(keys, func(i, j int) bool { return vars[keys[i]].getPos < vars[keys[j]].getPos })
	for _, obj := range keys {
		v := vars[obj]
		if len(v.puts) == 0 {
			if !v.escaped {
				pass.Reportf(v.getPos, "pooled %s is never returned to the pool (missing %s)", v.name, v.putName)
			}
			continue
		}
		checkUseAfterPut(pass, body, v)
		checkEarlyReturns(pass, body, v)
	}
}

// poolMethod returns (method name, receiver expr) when call is a method call
// on a pool-like receiver, else ("", nil).
func poolMethod(pass *Pass, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	if !isPoolType(pass.TypeOf(sel.X)) {
		return "", nil
	}
	return sel.Sel.Name, sel.X
}

// isPoolType reports whether t is a (pointer to a) named struct type called
// Pool whose method set includes both Get and Put.
func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" {
		return false
	}
	// sync.Pool also has Get/Put but is the raw mechanism this discipline is
	// built on (mat.Pool's internals, gnn's tfPool caches with cross-function
	// lifetimes); the contract enforced here is mat.Pool's.
	if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
		return false
	}
	has := func(name string) bool {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
		_, isFunc := obj.(*types.Func)
		return isFunc
	}
	return has("Get") && has("Put")
}

// findPoolPuts walks stmts recording Put calls on tracked variables,
// including puts inside deferred closures.
func findPoolPuts(pass *Pass, n ast.Node, vars map[types.Object]*poolVar, deferred bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.DeferStmt:
			findPoolPuts(pass, node.Call, vars, true)
			return false
		case *ast.CallExpr:
			method, _ := poolMethod(pass, node)
			if !poolPutMethods[method] || len(node.Args) != 1 {
				return true
			}
			id, ok := node.Args[0].(*ast.Ident)
			if !ok {
				return true
			}
			if v, tracked := vars[pass.ObjectOf(id)]; tracked {
				v.puts = append(v.puts, poolPut{pos: node.Pos(), deferred: deferred})
			}
		}
		return true
	})
}

// findEscapes marks variables whose ownership leaves the function: returned,
// stored into fields/slices/maps/struct literals, or sent on a channel.
func findEscapes(pass *Pass, body *ast.BlockStmt, vars map[types.Object]*poolVar) {
	mark := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v, tracked := vars[pass.ObjectOf(id)]; tracked {
				v.escaped = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(r)
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					mark(kv.Value)
				} else {
					mark(e)
				}
			}
		case *ast.AssignStmt:
			// x stored through a selector/index/star target aliases it beyond
			// this variable (o.buf = x, cache[i] = x, *p = x).
			for i, lhs := range n.Lhs {
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if i < len(n.Rhs) {
						mark(n.Rhs[i])
					} else if len(n.Rhs) == 1 {
						mark(n.Rhs[0])
					}
				}
			}
		}
		return true
	})
}

// checkUseAfterPut reports reads of v lexically after its first non-deferred
// Put, unless the variable is reassigned in between.
func checkUseAfterPut(pass *Pass, body *ast.BlockStmt, v *poolVar) {
	var firstPut token.Pos
	for _, p := range v.puts {
		if !p.deferred && (firstPut == token.NoPos || p.pos < firstPut) {
			firstPut = p.pos
		}
	}
	if firstPut == token.NoPos {
		return // only deferred puts: they run last by construction
	}
	putLine := pass.Fset.Position(firstPut).Line
	var reassigned token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Pos() > firstPut {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.ObjectOf(id) == v.obj {
					if reassigned == token.NoPos || as.Pos() < reassigned {
						reassigned = as.Pos()
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != v.obj {
			return true
		}
		// Uses strictly after the put, on a later line (the put call's own
		// argument is on the put line), before any reassignment.
		if id.Pos() > firstPut && pass.Fset.Position(id.Pos()).Line > putLine {
			if reassigned == token.NoPos || id.Pos() < reassigned {
				pass.Reportf(id.Pos(), "%s used after being returned to the pool with %s (line %d)", v.name, v.putName, putLine)
				return false
			}
		}
		return true
	})
}

// checkEarlyReturns reports return statements that exit between a Get and its
// last non-deferred Put without passing any Put.
func checkEarlyReturns(pass *Pass, body *ast.BlockStmt, v *poolVar) {
	var lastPut token.Pos
	for _, p := range v.puts {
		if p.deferred {
			return // a deferred put covers every return path
		}
		if p.pos > lastPut {
			lastPut = p.pos
		}
	}
	if v.escaped {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= v.getPos || ret.Pos() >= lastPut {
			return true
		}
		// A put lexically before the return dominates it in the straight-line
		// patterns this codebase uses.
		for _, p := range v.puts {
			if p.pos < ret.Pos() {
				return true
			}
		}
		pass.Reportf(ret.Pos(), "return leaks pooled %s (obtained line %d, released line %d; consider defer %s)",
			v.name, pass.Fset.Position(v.getPos).Line, pass.Fset.Position(lastPut).Line, v.putName)
		return true
	})
}
