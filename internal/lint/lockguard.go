package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockGuard enforces the two field-protection conventions the concurrent
// serving and telemetry code relies on:
//
//   - atomicmix: a struct field accessed through the sync/atomic free
//     functions (atomic.AddInt64(&s.f, ...), atomic.LoadInt64(&s.f), ...)
//     must be accessed that way everywhere — one plain read or write next to
//     atomic updates is a data race the race detector only catches when the
//     schedule cooperates. (Fields of the atomic.Int64-style wrapper types
//     cannot be misused and are not this check's concern.)
//   - guarded fields: a sync.Mutex/RWMutex struct field guards the fields
//     that follow it — contiguously declared fields below the mutex up to the
//     first blank-line break or the next mutex, plus any field whose comment
//     says "guarded by <mu>". Within a function that locks B.mu, an access
//     to a guarded field of B outside every Lock/Unlock window is flagged;
//     `defer B.mu.Unlock()` keeps the window open to the end of the function.
//
// Known false negatives, by design: functions that never lock the mutex are
// skipped entirely (the caller-holds-mu helper convention, e.g.
// Engine.noteShardSize, and constructors publishing before escape), lock
// windows are lexical rather than path-sensitive, and bases are matched by
// printed expression, so aliasing a shard through a second variable hides the
// access. The escape hatch for reviewed exceptions is the usual
// //lint:ignore lockguard <reason>.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "mutex-guarded fields stay inside Lock/Unlock windows; atomic fields are never accessed plainly",
	Run:  runLockGuard,
}

// atomicFreeFuncs are the sync/atomic package-level functions whose first
// argument is the address of the field being operated on.
var atomicFreeFuncs = map[string]bool{
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runLockGuard(pass *Pass) {
	runAtomicMix(pass)
	runGuardedFields(pass)
}

// --- atomicmix -------------------------------------------------------------

func runAtomicMix(pass *Pass) {
	// Pass 1: fields reached through &x.f into an atomic free function, and
	// the exact selector nodes of those sanctioned sites.
	atomicFields := map[types.Object]token.Pos{} // field -> first atomic site
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !atomicFreeFuncs[calleeName(call)] {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil {
				return true
			}
			sanctioned[sel] = true
			if _, seen := atomicFields[obj]; !seen {
				atomicFields[obj] = call.Pos()
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other access to those fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil {
				return true
			}
			if first, isAtomic := atomicFields[obj]; isAtomic {
				pass.Reportf(sel.Pos(),
					"field %s is accessed atomically (line %d) but plainly here; mixing atomic and non-atomic access is a data race — use the atomic API at every site",
					sel.Sel.Name, pass.Fset.Position(first).Line)
			}
			return true
		})
	}
}

// fieldObject resolves sel to the struct-field variable it selects, or nil
// when sel is not a field selection.
func fieldObject(pass *Pass, sel *ast.SelectorExpr) types.Object {
	obj := pass.ObjectOf(sel.Sel)
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// --- guarded fields --------------------------------------------------------

// guardedField records which mutex field guards a struct field.
type guardInfo struct {
	mu string // name of the guarding mutex field
}

// collectGuardedFields infers the guarded-field map for every struct declared
// in the package: a mutex field guards the contiguous run of fields below it
// (no blank-line gap, stopping at the next mutex), and a "guarded by <mu>"
// comment attaches a field explicitly wherever it is declared.
func collectGuardedFields(pass *Pass) map[types.Object]guardInfo {
	guarded := map[types.Object]guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			curMu := ""
			prevLine := -2
			for _, field := range st.Fields.List {
				line := pass.Fset.Position(field.Pos()).Line
				endLine := pass.Fset.Position(field.End()).Line
				if isMutexField(pass, field) {
					if len(field.Names) > 0 {
						curMu = field.Names[0].Name
					} else if sel, ok := field.Type.(*ast.SelectorExpr); ok {
						curMu = sel.Sel.Name // embedded sync.Mutex
					}
					prevLine = endLine
					continue
				}
				if mu, ok := explicitGuard(field); ok {
					register(pass, guarded, field, mu)
					prevLine = endLine
					continue
				}
				if curMu != "" && line != prevLine+1 {
					curMu = "" // blank-line (or comment) break ends the guarded run
				}
				if curMu != "" {
					register(pass, guarded, field, curMu)
				}
				prevLine = endLine
			}
			return true
		})
	}
	return guarded
}

func register(pass *Pass, guarded map[types.Object]guardInfo, field *ast.Field, mu string) {
	for _, name := range field.Names {
		if obj := pass.ObjectOf(name); obj != nil {
			guarded[obj] = guardInfo{mu: mu}
		}
	}
}

// explicitGuard reports the mutex named by a "guarded by <mu>" doc or line
// comment on the field.
func explicitGuard(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.ToLower(c.Text)
			if i := strings.Index(text, "guarded by "); i >= 0 {
				rest := strings.Fields(c.Text[i+len("guarded by "):])
				if len(rest) > 0 {
					return strings.Trim(rest[0], ".,;"), true
				}
			}
		}
	}
	return "", false
}

// isMutexField reports whether the field's type is a (non-pointer) named
// Mutex or RWMutex.
func isMutexField(pass *Pass, field *ast.Field) bool {
	t := pass.TypeOf(field.Type)
	return isNamed(t, "Mutex") || isNamed(t, "RWMutex")
}

// lockWindow is one lexical [Lock, Unlock] interval for a base expression.
type lockWindow struct {
	open, close token.Pos
}

func runGuardedFields(pass *Pass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedFunc(pass, fn.Body, guarded)
		}
	}
}

func checkGuardedFunc(pass *Pass, body *ast.BlockStmt, guarded map[types.Object]guardInfo) {
	// Lock/Unlock events per (base expression, mutex field name).
	type lockEvent struct {
		pos  token.Pos
		open bool
	}
	events := map[string][]lockEvent{}
	lockSites := map[*ast.SelectorExpr]bool{} // the B.mu selectors themselves

	record := func(call *ast.CallExpr, deferred bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return
		}
		var open bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			open = true
		case "Unlock", "RUnlock":
			open = false
		default:
			return
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok || !(isNamed(pass.TypeOf(muSel), "Mutex") || isNamed(pass.TypeOf(muSel), "RWMutex")) {
			return
		}
		base := types.ExprString(muSel.X) + "\x00" + muSel.Sel.Name
		pos := call.Pos()
		if deferred && !open {
			pos = body.End() // deferred unlock holds to function exit
		}
		events[base] = append(events[base], lockEvent{pos: pos, open: open})
		lockSites[muSel] = true
	}

	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
			record(n.Call, true)
			return true
		case *ast.CallExpr:
			if !deferredCalls[n] {
				record(n, false)
			}
		}
		return true
	})
	if len(events) == 0 {
		return // never locks: caller-holds-mu helper or constructor, skipped
	}

	// Pair events into lexical windows per base, in positional order (a
	// deferred unlock sits at body end regardless of where it was written).
	windows := map[string][]lockWindow{}
	bases := make([]string, 0, len(events))
	for base := range events {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		evs := events[base]
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		var ws []lockWindow
		var openAt token.Pos
		opened := false
		for _, ev := range evs {
			if ev.open {
				if !opened {
					opened, openAt = true, ev.pos
				}
				continue
			}
			if opened {
				ws = append(ws, lockWindow{open: openAt, close: ev.pos})
				opened = false
			}
		}
		if opened {
			ws = append(ws, lockWindow{open: openAt, close: body.End()})
		}
		windows[base] = ws
	}

	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || lockSites[sel] {
			return true
		}
		obj := fieldObject(pass, sel)
		if obj == nil {
			return true
		}
		gi, isGuarded := guarded[obj]
		if !isGuarded {
			return true
		}
		base := types.ExprString(sel.X) + "\x00" + gi.mu
		ws, locksBase := windows[base]
		if !locksBase {
			return true // this function never locks this base's mutex
		}
		pos := sel.Pos()
		for _, w := range ws {
			if pos >= w.open && pos <= w.close {
				return true
			}
		}
		pass.Reportf(pos,
			"field %s is guarded by %s but accessed outside every %s.%s Lock/Unlock window in this function",
			sel.Sel.Name, gi.mu, types.ExprString(sel.X), gi.mu)
		return true
	})
}
