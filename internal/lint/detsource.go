package lint

import (
	"go/ast"
)

// DetSource guards the seeded-determinism packages (core, nn, mat, ann,
// synth, hetgraph — scoped by the driver) against the two ambient
// nondeterminism sources Go hands out for free:
//
//   - the process-global math/rand generator: rand.Intn, rand.Float64,
//     rand.Shuffle and friends draw from a shared source whose state depends
//     on every other caller in the process. The repo's contract is an
//     injected seed — mat.NewRNG(seed) or rand.New(rand.NewSource(seed)) —
//     so the constructors (New, NewSource, NewZipf) pass and method calls on
//     a seeded *Rand / *RNG value are never flagged;
//   - the wall clock: time.Now / time.Since / time.Until in a determinism-
//     scoped package leaks scheduling noise into values that the SimulateSet
//     contract promises are bit-identical across replica counts. Timestamps
//     belong at the edges (cmd, obs, serving) and travel inward as data.
//
// Matching is by qualifier identifier ("rand.", "time."), with a type-based
// exemption for locals that shadow the package name with a seeded generator.
// time.Duration arithmetic, time constants and time.Sleep do not read the
// clock and are not flagged.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "determinism-scoped packages take injected seeds and timestamps, not ambient rand/time",
	Run:  runDetSource,
}

// seededConstructors are the math/rand entry points that demand an explicit
// seed or source and therefore keep determinism in the caller's hands.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetSource(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			qual, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch qual.Name {
			case "rand":
				if seededConstructors[sel.Sel.Name] {
					return true
				}
				// A local seeded generator shadowing the package name is fine:
				// rand := mat.NewRNG(seed); rand.Intn(n).
				if t := pass.TypeOf(qual); isNamed(t, "Rand") || isNamed(t, "RNG") {
					return true
				}
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global math/rand source in a determinism-scoped package; inject a seeded generator (mat.NewRNG(seed) or rand.New(rand.NewSource(seed)))",
					sel.Sel.Name)
			case "time":
				if !clockFuncs[sel.Sel.Name] {
					return true
				}
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in a determinism-scoped package; take timestamps at the edges and pass them in as data",
					sel.Sel.Name)
			}
			return true
		})
	}
}
