package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck is the errcheck-lite pass for the persistence and serving write
// paths (internal/store, internal/kb, internal/serving): an expression or
// defer statement whose call returns an error that nobody looks at is
// flagged. The T+1 loop persists models, logs and knowledge bases every day;
// a swallowed write error means the next morning's serving fleet loads
// yesterday's (or corrupt) state with no trace in the logs.
//
// An explicit `_ = f()` assignment is not flagged — the blank assignment is
// visible in review and states intent. Calls that cannot meaningfully fail
// are exempt: methods on strings.Builder, bytes.Buffer and hash.Hash (all
// documented to never return an error) and fmt prints to stdout/stderr,
// where there is nothing sensible to do with a write error anyway.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "error results in store/kb/serving write paths must be checked",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedError(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDiscardedError(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				// Goroutine launches are nakedgo's concern; their results are
				// structurally unobservable here.
				return false
			}
			return true
		})
	}
}

func checkDiscardedError(pass *Pass, call *ast.CallExpr, qualifier string) {
	if !returnsError(pass, call) || errorFreeSink(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%scall %s discards its error result", qualifier, types.ExprString(call.Fun))
}

// returnsError reports whether the call's result type is error or a tuple
// whose last element is error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// errorFreeSink exempts calls that cannot meaningfully fail: methods on
// never-failing writers (strings.Builder, bytes.Buffer, hash.Hash), fmt
// prints to stdout, and fmt.Fprint*/direct writes whose sink is one of those
// or os.Stdout/os.Stderr.
func errorFreeSink(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, ok := sel.X.(*ast.Ident); ok && isPkgRef(pass, pkg, "fmt") {
		switch sel.Sel.Name {
		case "Print", "Println", "Printf": // implicit stdout
			return true
		}
		// fmt.Fprint* into a never-failing or best-effort sink.
		return len(call.Args) > 0 && (neverFailingWriter(pass.TypeOf(call.Args[0])) || isStdStream(call.Args[0]))
	}
	// Direct method call on a never-failing writer or a std stream
	// (b.WriteString, h.Write, os.Stdout.Write).
	return neverFailingWriter(pass.TypeOf(sel.X)) || isStdStream(sel.X)
}

// neverFailingWriter reports whether t is a type documented to never return
// a write error.
func neverFailingWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer",
		"hash.Hash", "hash.Hash32", "hash.Hash64":
		return true
	}
	return false
}

// isPkgRef reports whether id is a reference to the package named path.
func isPkgRef(pass *Pass, id *ast.Ident, path string) bool {
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// isStdStream reports whether e is syntactically os.Stdout or os.Stderr,
// whose write errors have no recovery beyond what the program prints anyway.
func isStdStream(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "os" && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}
