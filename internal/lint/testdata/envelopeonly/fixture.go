// Fixture package for the envelopeonly analyzer. Package-level values named
// os and gob model the real packages; the analyzer matches the qualifier
// identifier and the stream argument's type name (File), so the shapes here
// exercise it without importing anything.
package envelopeonly

type File struct{ name string }

func (f *File) Write(p []byte) (int, error) { return len(p), nil }
func (f *File) Close() error                { return nil }

type osAPI struct{}

func (osAPI) Create(name string) (*File, error)                     { return &File{name: name}, nil }
func (osAPI) Open(name string) (*File, error)                       { return &File{name: name}, nil }
func (osAPI) ReadFile(name string) ([]byte, error)                  { return nil, nil }
func (osAPI) WriteFile(name string, data []byte, perm uint32) error { return nil }
func (osAPI) MkdirAll(name string, perm uint32) error               { return nil }

// OpenFile returns a bare *File so a direct call can appear as a gob stream
// argument (the real os.OpenFile's error return makes that shape rarer, but
// the analyzer still has to catch it when a wrapper hands the file over).
func (osAPI) OpenFile(name string, flag int, perm uint32) *File { return &File{name: name} }

var os osAPI

type Buffer struct{ b []byte }

func (b *Buffer) Write(p []byte) (int, error) { b.b = append(b.b, p...); return len(p), nil }

type Encoder struct{}

func (e *Encoder) Encode(v any) error { return nil }
func (e *Encoder) Decode(v any) error { return nil }

type gobAPI struct{}

func (gobAPI) NewEncoder(w any) *Encoder { return &Encoder{} }
func (gobAPI) NewDecoder(r any) *Encoder { return &Encoder{} }

var gob gobAPI

// saveRaw puts model bytes on disk without the checksummed envelope.
func saveRaw(name string, data []byte) error {
	f, err := os.Create(name) // want "raw file call os.Create"
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

// loadRaw pulls bytes off disk with no integrity check.
func loadRaw(name string) ([]byte, error) {
	return os.ReadFile(name) // want "raw file call os.ReadFile"
}

// encodeToFile streams gob straight into a file handle.
func encodeToFile(f *File, v any) error {
	return gob.NewEncoder(f).Encode(v) // want "gob.NewEncoder straight to a file"
}

// decodeDirect nests the raw open inside the decoder construction: both the
// open and the stream are flagged.
func decodeDirect(v any) error {
	return gob.NewDecoder(os.OpenFile("m.gob", 0, 0)).Decode(v) // want "raw file call os.OpenFile" "gob.NewDecoder straight to a file"
}

// encodeBuf is the blessed shape: gob into memory, envelope the bytes.
func encodeBuf(v any) ([]byte, error) {
	var buf Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// mkdir shows the allow-list's precision: directory creation is not a
// persistence path and stays silent.
func mkdir(name string) error {
	return os.MkdirAll(name, 0o755)
}

// debugDump exercises the suppression escape hatch.
func debugDump(name string, data []byte) error {
	//lint:ignore envelopeonly dev-only dump behind a debug flag, never a model artifact
	return os.WriteFile(name, data, 0o644)
}
