// Fixture package for the detsource analyzer. Package-level values named rand
// and time model the real packages; the analyzer matches the qualifier
// identifier, with a type-based exemption for seeded generators (Rand/RNG)
// that shadow the package name.
package detsource

type Source struct{ seed int64 }

type Rand struct{ src Source }

func (r *Rand) Intn(n int) int   { return 0 }
func (r *Rand) Float64() float64 { return 0 }

type randAPI struct{}

func (randAPI) Intn(n int) int                                   { return 0 }
func (randAPI) Float64() float64                                 { return 0 }
func (randAPI) Shuffle(n int, swap func(i, j int))               {}
func (randAPI) Perm(n int) []int                                 { return nil }
func (randAPI) New(src Source) *Rand                             { return &Rand{src: src} }
func (randAPI) NewSource(seed int64) Source                      { return Source{seed: seed} }
func (randAPI) NewZipf(r *Rand, s, v float64, imax uint64) *Rand { return r }

var rand randAPI

type Time struct{ ns int64 }

type Duration int64

type timeAPI struct{}

func (timeAPI) Now() Time             { return Time{} }
func (timeAPI) Since(t Time) Duration { return 0 }
func (timeAPI) Until(t Time) Duration { return 0 }
func (timeAPI) Sleep(d Duration)      {}

var time timeAPI

// draw pulls from the process-global generator.
func draw() int {
	return rand.Intn(10) // want "process-global math/rand"
}

// shuffleGlobal scrambles with shared state.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global math/rand"
}

// permGlobal: same story through Perm.
func permGlobal(n int) []int {
	return rand.Perm(n) // want "process-global math/rand"
}

// seeded builds a generator from an explicit seed: the constructors pass.
func seeded(seed int64) *Rand {
	return rand.New(rand.NewSource(seed))
}

// sample draws from a locally seeded generator: methods on *Rand are silent.
func sample(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// shadowed shows the exemption: an identifier named rand whose type is a
// seeded *Rand is a generator, not the package.
func shadowed(rand *Rand) int {
	return rand.Intn(3)
}

// stamp reads the wall clock in a determinism-scoped package.
func stamp() Time {
	return time.Now() // want "reads the wall clock"
}

// age derives a duration from the clock.
func age(t Time) Duration {
	return time.Since(t) // want "reads the wall clock"
}

// deadline is the third clock reader.
func deadline(t Time) Duration {
	return time.Until(t) // want "reads the wall clock"
}

// nap does not read the clock and stays silent.
func nap(d Duration) {
	time.Sleep(d)
}

// traceStamp exercises the suppression escape hatch for edge telemetry.
func traceStamp() Time {
	//lint:ignore detsource telemetry-only timestamp that never feeds model state
	return time.Now()
}
