// Fixture package for the nakedgo analyzer.
package nakedgo

func launch(f func()) {
	go f() // want "naked go statement"
}

func launchClosure(n int) {
	go func() { // want "naked go statement"
		_ = n * 2
	}()
}

// call is fine: only the go keyword is flagged, not function values.
func call(f func()) {
	f()
}

func suppressed(f func()) {
	go f() //lint:ignore nakedgo fixture demonstrating a sanctioned goroutine launch
}

// serveBackground mirrors the obs telemetry-listener shape: still a finding
// here, because package allow-listing (par, serving, obs) is the driver's
// scoping policy, not the analyzer's — the fixture runs unscoped.
func serveBackground(serve func() error) {
	go serve() // want "naked go statement"
}
