// Fixture package for the nakedgo analyzer.
package nakedgo

func launch(f func()) {
	go f() // want "naked go statement"
}

func launchClosure(n int) {
	go func() { // want "naked go statement"
		_ = n * 2
	}()
}

// call is fine: only the go keyword is flagged, not function values.
func call(f func()) {
	f()
}

func suppressed(f func()) {
	go f() //lint:ignore nakedgo fixture demonstrating a sanctioned goroutine launch
}
