// Fixture package for the versionpin analyzer. Pointer stands in for
// atomic.Pointer[modelVersion] and Engine for the serving engine; the analyzer
// matches structurally (a no-arg Load on a type named Pointer yielding
// *modelVersion, the acquire helper, field writes through a *modelVersion
// base), so no sync/atomic import is needed.
package versionpin

// Pointer models atomic.Pointer[T].
type Pointer[T any] struct{ v *T }

func (p *Pointer[T]) Load() *T   { return p.v }
func (p *Pointer[T]) Store(v *T) { p.v = v }

type matcher struct{ dim int }

type modelVersion struct {
	id      int
	matcher *matcher
	scores  []float64
}

// setScores is a modelVersion method: writes to its own fields are the
// bundle-building phase and stay legal.
func (v *modelVersion) setScores(s []float64) { v.scores = s }

type Engine struct {
	cur      Pointer[modelVersion]
	inflight int64
}

// acquire pins the current version: one load, no param, no finding.
func (e *Engine) acquire() *modelVersion { return e.cur.Load() }

// serveOnce pins exactly once and threads the local through.
func (e *Engine) serveOnce(q string) int {
	v := e.cur.Load()
	_ = q
	return v.id
}

// serveTwice observes two potentially different models across a swap.
func (e *Engine) serveTwice(q string) int {
	a := e.cur.Load()
	b := e.cur.Load() // want "second load of the active model version"
	_ = q
	return a.id + b.id
}

// handleTwice trips the same rule through the acquire helper.
func (e *Engine) handleTwice(q string) int {
	v := e.acquire()
	w := e.acquire() // want "second load of the active model version"
	_ = q
	return v.id + w.id
}

// rank already holds a pin; a fresh load may disagree with it mid-request.
func (e *Engine) rank(v *modelVersion, q string) int {
	fresh := e.cur.Load() // want "already receives a pinned"
	_ = q
	return fresh.id + v.id
}

// rankPinned is the blessed shape: use only the pinned version.
func (e *Engine) rankPinned(v *modelVersion, q string) int {
	_ = q
	return v.id
}

// hotPatch mutates the live version in place instead of building a new bundle.
func (e *Engine) hotPatch(m *matcher) {
	e.cur.Load().matcher = m // want "write to version-owned field matcher"
}

// bump writes a version field through a pinned pointer outside the type's
// own methods.
func bump(v *modelVersion) {
	v.id++ // want "write to version-owned field id"
}

// setMatcherSetup mirrors the engine's documented setup-time mutation: the
// write is real, so the suppression below is exercised (and counted as used).
func (e *Engine) setMatcherSetup(m *matcher) {
	//lint:ignore versionpin setup-time wiring before the engine serves traffic
	e.cur.Load().matcher = m
}

// swap is the legal mutation path: build a new bundle and publish it whole.
func (e *Engine) swap(next *modelVersion) {
	e.cur.Store(next)
}
