// Fixture package for the lockguard analyzer. Mutex/RWMutex and the
// AddInt64/LoadInt64 free functions model sync and sync/atomic structurally;
// the analyzer keys on type names, method names and the &x.f first-argument
// shape, so no imports are needed.
package lockguard

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

// Free-function stand-ins for sync/atomic.
func AddInt64(p *int64, d int64) int64 { *p += d; return *p }
func LoadInt64(p *int64) int64         { return *p }

// --- atomicmix -------------------------------------------------------------

type counterSet struct {
	hits   int64
	misses int64
}

func (c *counterSet) hit() { AddInt64(&c.hits, 1) }

func (c *counterSet) snapshot() int64 { return LoadInt64(&c.hits) }

// readRace reads an atomically-updated field with a plain load.
func (c *counterSet) readRace() int64 {
	return c.hits // want "accessed atomically"
}

// plainMisses is fine: misses is never touched through the atomic API.
func (c *counterSet) plainMisses() int64 { return c.misses }

// --- guarded fields (contiguity inference) ---------------------------------

type shard struct {
	mu   Mutex
	ver  int
	recs map[string]int

	free int // blank-line break above ends the guarded run
}

// get holds the lock for the whole read via defer.
func (s *shard) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recs[k]
}

// peek drops the lock and then reads a guarded field.
func (s *shard) peek(k string) int {
	s.mu.Lock()
	v := s.recs[k]
	s.mu.Unlock()
	return v + s.ver // want "guarded by mu"
}

// reset shows the blank-line break: free is fair game outside the lock.
func (s *shard) reset() {
	s.free = 0
	s.mu.Lock()
	s.recs = map[string]int{}
	s.mu.Unlock()
}

// sizeLocked never locks: the caller-holds-mu helper convention, skipped.
func (s *shard) sizeLocked() int { return len(s.recs) }

// --- guarded fields (explicit comment) -------------------------------------

type ring struct {
	mu  Mutex
	buf []int

	next int // guarded by mu
}

func (r *ring) push(v int) {
	r.mu.Lock()
	r.buf = append(r.buf, v)
	r.next++
	r.mu.Unlock()
	r.next = 0 // want "guarded by mu"
}

// lastLen exercises the suppression escape hatch for a reviewed exception.
func (r *ring) lastLen() int {
	r.mu.Lock()
	r.mu.Unlock()
	//lint:ignore lockguard benign rough read tolerated for test-only introspection
	return len(r.buf)
}

// --- RWMutex windows --------------------------------------------------------

type stats struct {
	mu    RWMutex
	total int
}

func (s *stats) read() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

func (s *stats) badRead() int {
	s.mu.RLock()
	s.mu.RUnlock()
	return s.total // want "guarded by mu"
}
