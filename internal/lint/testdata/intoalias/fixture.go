// Fixture package for the intoalias analyzer. The kernels are matched by
// callee name, so local stand-ins with the real kernels' signatures exercise
// the analyzer without importing internal/mat.
package intoalias

type M struct{ data []float64 }

func MatMulInto(dst, a, b *M)  {}
func TMatMulInto(dst, a, b *M) {}
func MatMulTInto(dst, a, b *M) {}

// ApplyInto is documented alias-safe in internal/mat and must not be flagged.
func ApplyInto(dst, src *M, f func(float64) float64) {}

func bad(h, w *M) {
	MatMulInto(h, h, w)  // want "MatMulInto destination h aliases source argument 1"
	TMatMulInto(h, w, h) // want "TMatMulInto destination h aliases source argument 2"
	MatMulTInto(w, w, w) // want "MatMulTInto destination w aliases source argument 1" "MatMulTInto destination w aliases source argument 2"
}

func good(h, w, scratch *M) {
	MatMulInto(scratch, h, w)
	ApplyInto(h, h, func(x float64) float64 { return x * 2 })
}

func suppressed(h, w *M) {
	MatMulInto(h, h, w) //lint:ignore intoalias fixture demonstrating a reviewed aliasing call
}
