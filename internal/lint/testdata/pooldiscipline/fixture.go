// Fixture package for the pooldiscipline analyzer. It defines a local Pool
// with the structural Get/Put shape the analyzer matches, so the tests need
// no imports (the harness typechecks with an importer that always fails).
package pooldiscipline

type M struct{ data []float64 }

type Pool struct{ free []*M }

func (p *Pool) Get(r, c int) *M        { return &M{data: make([]float64, r*c)} }
func (p *Pool) Put(m *M)               { p.free = append(p.free, m) }
func (p *Pool) GetVec(n int) []float64 { return make([]float64, n) }
func (p *Pool) PutVec(v []float64)     {}

func leak(p *Pool) float64 {
	m := p.Get(4, 4) // want "pooled m is never returned to the pool"
	return m.data[0]
}

func leakVec(p *Pool) float64 {
	v := p.GetVec(8) // want "pooled v is never returned to the pool (missing PutVec)"
	return v[0]
}

func useAfterPut(p *Pool) float64 {
	m := p.Get(2, 2)
	p.Put(m)
	return m.data[0] // want "m used after being returned to the pool with Put"
}

func earlyReturn(p *Pool, cond bool) int {
	m := p.Get(2, 2)
	if cond {
		return 0 // want "return leaks pooled m"
	}
	p.Put(m)
	return 1
}

// deferPut is the blessed pattern: the deferred Put covers every return path.
func deferPut(p *Pool, cond bool) float64 {
	m := p.Get(2, 2)
	defer p.Put(m)
	if cond {
		return m.data[1]
	}
	return m.data[0]
}

// transfer hands ownership to the caller; the per-function analysis must not
// flag cross-function lifetimes.
func transfer(p *Pool) *M {
	m := p.Get(2, 2)
	return m
}

// storeField transfers ownership into a struct (the GNN forward-cache
// pattern, released later by another method).
type cache struct{ buf *M }

func (c *cache) storeField(p *Pool) {
	m := p.Get(2, 2)
	c.buf = m
}

func suppressedLeak(p *Pool) {
	m := p.Get(2, 2) //lint:ignore pooldiscipline fixture demonstrating an acknowledged leak
	_ = m
}
