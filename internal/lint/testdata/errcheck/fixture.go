// Fixture package for the errcheck analyzer. write stands in for a
// persistence call; error is the universe type, so no imports are needed.
package errcheck

func write() error { return nil }

func writeTwo() (int, error) { return 0, nil }

func noError() int { return 0 }

func dropped() {
	write() // want "call write discards its error result"
}

func droppedTuple() {
	writeTwo() // want "call writeTwo discards its error result"
}

func deferredDrop() {
	defer write() // want "deferred call write discards its error result"
}

// explicitDiscard states intent visibly and is allowed.
func explicitDiscard() {
	_ = write()
}

func checked() error {
	if err := write(); err != nil {
		return err
	}
	return nil
}

// noErrorResult has nothing to discard.
func plainCall() {
	noError()
}

func suppressed() {
	write() //lint:ignore errcheck fixture demonstrating a best-effort write
}
