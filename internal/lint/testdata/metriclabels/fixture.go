// Fixture package for the metriclabels analyzer. Registry mirrors the obs
// registry's Counter/Gauge/Histogram signatures; matching is structural
// (method names on a type named Registry), so no obs import is needed.
package metriclabels

type Counter struct{}

func (c *Counter) Add(d float64) {}

type Registry struct{}

func (r *Registry) Counter(name string, labels ...string) *Counter { return nil }
func (r *Registry) Gauge(name string, labels ...string) *Counter   { return nil }
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Counter {
	return nil
}

var reg Registry

const reqFamily = "intellitag_requests_total"

var defaultBuckets = []float64{1, 2, 5}

// recordOK shows the blessed shape, including a named constant folded at
// compile time and a consistent label set across call sites.
func recordOK(shard string) {
	reg.Counter(reqFamily, "shard", shard)
	reg.Counter("intellitag_requests_total", "shard", "s1")
}

// histOK: buckets sit between the name and the labels.
func histOK(path string) {
	reg.Histogram("intellitag_latency_ms", defaultBuckets, "path", path)
}

// badName breaks the intellitag_[a-z_]+ naming contract.
func badName() {
	reg.Counter("IntellitagRequests") // want "must match intellitag_"
}

// dynamicName cannot be checked at lint time.
func dynamicName(n string) {
	reg.Counter(n) // want "compile-time string constant"
}

// oddLabels passes a key with no value.
func oddLabels() {
	reg.Gauge("intellitag_queue_depth", "shard") // want "label arguments"
}

// dynamicKey hides the label set behind a runtime value.
func dynamicKey(k, v string) {
	reg.Counter("intellitag_hits_total", k, v) // want "label key must be a compile-time string constant"
}

// spread hides the label set behind a slice.
func spread(labels []string) {
	reg.Counter("intellitag_spread_total", labels...) // want "spelled inline"
}

// kindClash registers the counter family from recordOK as a gauge.
func kindClash() {
	reg.Gauge("intellitag_requests_total") // want "one family has one kind"
}

// keyClash uses the family with a different label-key set.
func keyClash(op string) {
	reg.Counter("intellitag_requests_total", "op", op) // want "label set must be identical"
}

// legacy exercises the suppression escape hatch for a grandfathered name.
func legacy() {
	//lint:ignore metriclabels legacy dashboard name kept until the grafana board migrates
	reg.Counter("legacy_total")
}
