// Fixture package for the maporder analyzer. sortInts stands in for
// sort.Ints — the sorted-keys idiom is recognized by callee name — so the
// fixture needs no imports.
package maporder

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func floatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want "order-dependent body"
		sum += v
	}
	return sum
}

func valueCollect(m map[int]int) []int {
	var out []int
	for _, v := range m { // want "appends map values in iteration order"
		out = append(out, v)
	}
	return out
}

func earlyReturn(m map[int]bool) int {
	for k, v := range m { // want "return mid-iteration observes an arbitrary element"
		if v {
			return k
		}
	}
	return -1
}

func unsortedKeys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "collected into keys but never sorted"
	}
	return keys
}

// sortedKeys is the blessed idiom: collect the keys, sort, then iterate.
func sortedKeys(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// keyIndexed writes touch a distinct slot per iteration: order-independent.
func keyIndexed(src map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(src))
	for k, v := range src {
		out[k] = v * 2
	}
	return out
}

// intCounter is exact commutative accumulation: order-independent.
func intCounter(m map[int]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// bodyLocal writes only touch variables scoped to the iteration.
func bodyLocal(m map[int]float64) {
	for _, v := range m {
		x := v * 2
		_ = x
	}
}

func suppressed(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { //lint:ignore maporder fixture demonstrating an accepted order-dependent fold
		sum += v
	}
	return sum
}
