package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// VersionPin enforces PR 5's request-pinning contract inside internal/serving:
// every request must load the engine's current modelVersion exactly once and
// use only that pointer for its whole turn. The hot-swap protocol guarantees
// zero dropped requests *only* under that discipline — a function that loads
// the version twice can observe two different models across a concurrent
// swap, handing a request half of one catalog and half of another's scores.
// Three rules, per function:
//
//   - a second load of the current version (cur.Load() on an
//     atomic.Pointer[modelVersion], or acquire()) is flagged; bind the first
//     load to a local and thread it through;
//   - a function that already receives a pinned *modelVersion parameter must
//     not load the current version again — the fresh load may disagree with
//     the pin mid-request;
//   - writes to modelVersion fields outside modelVersion's own methods are
//     flagged: versions are immutable once live (build a new bundle and swap
//     instead of mutating the active version in place).
//
// Identification is structural (a Load method on a type named Pointer
// returning *modelVersion; a field write through a *modelVersion base), so
// the golden fixtures can model the engine without importing sync/atomic.
var VersionPin = &Analyzer{
	Name: "versionpin",
	Doc:  "requests must pin one modelVersion per scope; live versions are immutable",
	Run:  runVersionPin,
}

func runVersionPin(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkVersionPinFunc(pass, fn)
		}
	}
}

func checkVersionPinFunc(pass *Pass, fn *ast.FuncDecl) {
	recvIsVersion := fn.Recv != nil && len(fn.Recv.List) == 1 &&
		isModelVersionRef(pass.TypeOf(fn.Recv.List[0].Type))

	pinnedParam := ""
	if fn.Type.Params != nil {
		for _, p := range fn.Type.Params.List {
			if isModelVersionRef(pass.TypeOf(p.Type)) && len(p.Names) > 0 {
				pinnedParam = p.Names[0].Name
			}
		}
	}

	var pins []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isVersionPinCall(pass, n) {
				pins = append(pins, n)
			}
		case *ast.AssignStmt:
			if !recvIsVersion {
				checkVersionWrite(pass, n)
			}
		case *ast.IncDecStmt:
			if !recvIsVersion {
				if sel, ok := n.X.(*ast.SelectorExpr); ok && isModelVersionRef(pass.TypeOf(sel.X)) {
					reportVersionWrite(pass, n.Pos(), sel)
				}
			}
		}
		return true
	})

	for i, call := range pins {
		if pinnedParam != "" {
			pass.Reportf(call.Pos(),
				"%s already receives a pinned *modelVersion (%s); loading the current version again may observe a different model mid-request",
				funcDisplayName(fn), pinnedParam)
			continue
		}
		if i > 0 {
			pass.Reportf(call.Pos(),
				"second load of the active model version in %s (first at line %d); pin one version per request scope and thread it through",
				funcDisplayName(fn), pass.Fset.Position(pins[0].Pos()).Line)
		}
	}
}

// isVersionPinCall reports whether call pins the current model version: a
// no-argument Load on an atomic Pointer yielding *modelVersion, or the
// engine's acquire helper.
func isVersionPinCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	if !isModelVersionRef(pass.TypeOf(call)) {
		return false
	}
	switch sel.Sel.Name {
	case "Load":
		return isNamed(pass.TypeOf(sel.X), "Pointer")
	case "acquire":
		return true
	}
	return false
}

// checkVersionWrite flags assignments whose target is a field of a
// modelVersion reached outside the type's own methods.
func checkVersionWrite(pass *Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if isModelVersionRef(pass.TypeOf(sel.X)) {
			reportVersionWrite(pass, as.Pos(), sel)
		}
	}
}

func reportVersionWrite(pass *Pass, pos token.Pos, sel *ast.SelectorExpr) {
	pass.Reportf(pos,
		"write to version-owned field %s outside modelVersion's own methods; versions are immutable once live — build a new bundle and swap",
		sel.Sel.Name)
}

// isModelVersionRef reports whether t is *modelVersion (or modelVersion).
func isModelVersionRef(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(t, "modelVersion")
}

// isNamed reports whether t is a named (possibly generic-instantiated) type
// with the given base name.
func isNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Name != nil {
		return fn.Name.Name
	}
	return "function"
}
