package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, parsed and type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir, parses every
// matching non-test Go file, and type-checks each package against the export
// data of its dependencies. It shells out to `go list -deps -export` for
// package enumeration and export-data paths — the one part of a module-aware
// loader the standard library does not expose — and does everything else with
// go/parser, go/types and go/importer.
//
// Test files are deliberately excluded: the invariants intellilint enforces
// govern production code, and several tests probe pool-reuse and concurrency
// behavior by violating them on purpose.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
