package lint

import "go/ast"

// NakedGo flags `go` statements. PR 1 centralized all fan-out on the
// internal/par worker pool so worker counts, batching and determinism are
// controlled in one place; internal/serving owns its own long-lived
// goroutines (shard loops, scorer pools), internal/obs owns background
// telemetry listeners that run for the life of the process,
// internal/snapshot owns the store-polling watcher behind zero-downtime hot
// swaps, and internal/load plus cmd/loadgen own the load-generator worker
// fan-out (concurrency IS the workload there). Everywhere else a naked
// goroutine bypasses that control — the driver scopes this analyzer to every
// package except those six. internal/httprr stays in scope deliberately:
// replay must be a pure function of the trace, with no concurrency of its
// own to perturb ordering.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "go statements outside internal/{par,serving,obs,snapshot,load} and cmd/loadgen must use the shared worker pool",
	Run:  runNakedGo,
}

func runNakedGo(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "naked go statement: route fan-out through the internal/par worker pool (goroutines may only be owned by internal/{par,serving,obs,snapshot,load} and cmd/loadgen)")
			}
			return true
		})
	}
}
