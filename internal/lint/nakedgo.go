package lint

import "go/ast"

// NakedGo flags `go` statements. PR 1 centralized all fan-out on the
// internal/par worker pool so worker counts, batching and determinism are
// controlled in one place; internal/serving owns its own long-lived
// goroutines (shard loops, scorer pools), and internal/obs owns background
// telemetry listeners that run for the life of the process. Everywhere else
// a naked goroutine bypasses that control — the driver scopes this analyzer
// to every package except those three.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "go statements outside internal/par, internal/serving and internal/obs must use the shared worker pool",
	Run:  runNakedGo,
}

func runNakedGo(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "naked go statement: route fan-out through the internal/par worker pool (goroutines may only be owned by internal/par, internal/serving and internal/obs)")
			}
			return true
		})
	}
}
