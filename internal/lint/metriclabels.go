package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// MetricLabels moves the obs registry's runtime failure modes to lint time.
// The registry panics when one metric family is registered under two kinds,
// and silently splits a family into disjoint series when call sites disagree
// on label keys — both are programming errors that today surface only on the
// code path that happens to run second. At every Registry.Counter / .Gauge /
// .Histogram call site this analyzer checks that:
//
//   - the metric name is a compile-time string constant (lint cannot vouch
//     for a name assembled at runtime) matching `intellitag_[a-z_]+`, the
//     repo's naming contract;
//   - labels are inline alternating key/value pairs — an even count, no
//     `labels...` spreading — with constant keys (values may be dynamic);
//   - within the package, every call site for one family uses the same kind
//     and the same label-key set.
//
// Consistency is per package (analyzers run package-at-a-time); families
// shared across packages are a documented false-negative gap, mitigated by
// the repo convention of registering each family in exactly one telemetry
// file. Matching is structural — methods named Counter/Gauge/Histogram on a
// type named Registry — so fixtures need no obs import.
var MetricLabels = &Analyzer{
	Name: "metriclabels",
	Doc:  "obs metric names are literal intellitag_* families with one kind and one label set",
	Run:  runMetricLabels,
}

var metricNameRe = regexp.MustCompile(`^intellitag_[a-z_]+$`)

// metricFamily accumulates what the package has said about one metric name.
type metricFamily struct {
	kind    string
	keys    string // canonical sorted key list, e.g. "bucket,op"
	firstAt token.Pos
}

func runMetricLabels(pass *Pass) {
	families := map[string]*metricFamily{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, labelStart := registryMethod(pass, call)
			if kind == "" || len(call.Args) <= 0 {
				return true
			}
			name, isConst := constString(pass, call.Args[0])
			if !isConst {
				pass.Reportf(call.Pos(), "metric name must be a compile-time string constant so the family can be checked at lint time")
				return true
			}
			if !metricNameRe.MatchString(name) {
				pass.Reportf(call.Pos(), "metric name %q must match intellitag_[a-z_]+", name)
			}
			if call.Ellipsis.IsValid() {
				pass.Reportf(call.Pos(), "metric %s labels must be spelled inline, not spread with ...; lint cannot check a dynamic label set", name)
				return true
			}
			labels := call.Args[labelStart:]
			if len(labels)%2 != 0 {
				pass.Reportf(call.Pos(), "metric %s has %d label arguments; labels are alternating key/value pairs", name, len(labels))
				return true
			}
			keys := make([]string, 0, len(labels)/2)
			allConst := true
			for i := 0; i < len(labels); i += 2 {
				k, ok := constString(pass, labels[i])
				if !ok {
					pass.Reportf(labels[i].Pos(), "metric %s label key must be a compile-time string constant (values may be dynamic)", name)
					allConst = false
					continue
				}
				keys = append(keys, k)
			}
			if !allConst {
				return true
			}
			sort.Strings(keys)
			keyList := strings.Join(keys, ",")
			fam, seen := families[name]
			if !seen {
				families[name] = &metricFamily{kind: kind, keys: keyList, firstAt: call.Pos()}
				return true
			}
			firstLine := pass.Fset.Position(fam.firstAt).Line
			if fam.kind != kind {
				pass.Reportf(call.Pos(), "metric %s registered as a %s here but as a %s at line %d; one family has one kind (the registry panics on this at runtime)",
					name, kind, fam.kind, firstLine)
				return true
			}
			if fam.keys != keyList {
				pass.Reportf(call.Pos(), "metric %s used with label keys {%s} here but {%s} at line %d; a family's label set must be identical at every call site",
					name, keyList, fam.keys, firstLine)
			}
			return true
		})
	}
}

// registryMethod reports the instrument kind and the index of the first label
// argument when call is Counter/Gauge/Histogram on a Registry, else ("", 0).
func registryMethod(pass *Pass, call *ast.CallExpr) (string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !isNamed(pass.TypeOf(sel.X), "Registry") {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Counter":
		return "counter", 1
	case "Gauge":
		return "gauge", 1
	case "Histogram":
		return "histogram", 2
	}
	return "", 0
}

// constString returns the compile-time string value of e, if it has one.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
