// Package par is the shared parallel-execution layer behind the batched
// trainers, offline inference and the serving engine. It provides a bounded
// worker pool with deterministic ordered fan-out/fan-in: work items are
// identified by their index, each item writes only into index-owned state,
// and callers merge results in index order — so the outcome of a parallel
// run is bit-identical to the sequential one regardless of GOMAXPROCS or
// the configured worker count.
//
// The pool deliberately has no futures, channels-of-results or dynamic
// scheduling surface: everything reduces to "run fn(i) for i in [0,n)".
// That restriction is what makes reproducibility cheap — determinism lives
// in the callers' fixed merge order, not in scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Gauge is the minimal telemetry sink a pool can report into. It is a local
// interface (satisfied by *obs.Gauge) so par keeps zero dependencies.
type Gauge interface{ Set(v float64) }

// Pool is a bounded set of workers. The zero value runs everything inline
// on the calling goroutine (one worker); use New to size it.
type Pool struct {
	workers int

	// Optional queue-depth gauges, set via Instrument. Gauge updates are
	// observational only — they never influence scheduling or results.
	active  Gauge // goroutines currently inside a For/ForWorker call
	pending Gauge // items not yet claimed in the current call
}

// Instrument attaches queue-depth gauges: active tracks the worker count of
// the in-flight fan-out, pending the number of unclaimed items. Either may be
// nil. Not safe to call concurrently with For/ForWorker.
func (p *Pool) Instrument(active, pending Gauge) {
	p.active, p.pending = active, pending
}

// gaugeStart/gaugeClaim/gaugeDone bracket one fan-out for the instrumentation.
func (p *Pool) gaugeStart(w, n int) {
	if p.active != nil {
		p.active.Set(float64(w))
	}
	if p.pending != nil {
		p.pending.Set(float64(n))
	}
}

func (p *Pool) gaugeClaim(i, n int) {
	if p.pending != nil {
		rem := n - i - 1
		if rem < 0 {
			rem = 0
		}
		p.pending.Set(float64(rem))
	}
}

func (p *Pool) gaugeDone() {
	if p.active != nil {
		p.active.Set(0)
	}
	if p.pending != nil {
		p.pending.Set(0)
	}
}

// New returns a pool with the given worker bound. workers <= 0 selects
// runtime.NumCPU() (the "as fast as the hardware allows" default); 1 yields
// a sequential pool with zero goroutine overhead.
func New(workers int) *Pool {
	return &Pool{workers: Resolve(workers)}
}

// Resolve maps a configured worker count to an effective one: <= 0 means
// all CPUs, anything else is used as given.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// Workers reports the effective worker bound (at least 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// For runs fn(i) for every i in [0, n), using up to Workers goroutines.
// fn must confine its writes to state owned by index i; under that contract
// the result is independent of scheduling. For blocks until all items are
// done.
func (p *Pool) For(n int, fn func(i int)) {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		p.gaugeStart(w, n)
		for i := 0; i < n; i++ {
			p.gaugeClaim(i, n)
			fn(i)
		}
		p.gaugeDone()
		return
	}
	p.gaugeStart(w, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				p.gaugeClaim(i, n)
				fn(i)
			}
		}()
	}
	wg.Wait()
	p.gaugeDone()
}

// ForWorker runs fn(worker, i) for every i in [0, n), where worker is a
// stable id in [0, Workers()) identifying the goroutine executing the item.
// It exists for callers that keep per-worker scratch arenas (gradient
// buffers, model replicas): fn may freely reuse scratch[worker] because one
// worker never runs two items at once. Which items land on which worker is
// scheduling-dependent, so per-worker scratch is only safe for state whose
// final merge does not depend on the item->worker assignment.
func (p *Pool) ForWorker(n int, fn func(worker, i int)) {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		p.gaugeStart(w, n)
		for i := 0; i < n; i++ {
			p.gaugeClaim(i, n)
			fn(0, i)
		}
		p.gaugeDone()
		return
	}
	p.gaugeStart(w, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				p.gaugeClaim(i, n)
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
	p.gaugeDone()
}
