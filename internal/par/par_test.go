package par

import (
	"runtime"
	"sync"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Fatalf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != runtime.NumCPU() {
		t.Fatalf("Resolve(-3) = %d", got)
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
}

func TestZeroPoolRunsInline(t *testing.T) {
	var p Pool
	if p.Workers() != 1 {
		t.Fatalf("zero pool workers = %d", p.Workers())
	}
	sum := 0
	p.For(10, func(i int) { sum += i }) // safe: sequential
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		const n = 1000
		counts := make([]int32, n)
		var mu sync.Mutex
		p.For(n, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForWorkerIdsInRange(t *testing.T) {
	p := New(4)
	const n = 200
	seen := make([]int, n)
	p.ForWorker(n, func(worker, i int) {
		if worker < 0 || worker >= 4 {
			panic("worker id out of range")
		}
		seen[i] = 1 // index-owned write
	})
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d not visited", i)
		}
	}
}

// Ordered fan-in: per-index results merged in index order must match the
// sequential run exactly, for any worker count.
func TestDeterministicOrderedMerge(t *testing.T) {
	const n = 500
	run := func(workers int) float64 {
		out := make([]float64, n)
		New(workers).For(n, func(i int) {
			v := float64(i)
			out[i] = v * v / 3.0
		})
		var sum float64
		for _, v := range out {
			sum += v // fixed merge order
		}
		return sum
	}
	want := run(1)
	for _, w := range []int{2, 3, 8} {
		if got := run(w); got != want {
			t.Fatalf("workers=%d: sum %v != sequential %v", w, got, want)
		}
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	p := New(32)
	hits := make([]bool, 3)
	p.For(3, func(i int) { hits[i] = true })
	for i, h := range hits {
		if !h {
			t.Fatalf("index %d missed", i)
		}
	}
	p.For(0, func(i int) { t.Error("fn called for n=0") })
}
