package online

import (
	"testing"

	"intellitag/internal/store"
)

// TestMonitorIndicators pins the stream-only indicator math: CTR from
// impression/click counts, HIR from escalations over distinct sessions, and
// top-1 calibration from impression→click pairing within a session.
func TestMonitorIndicators(t *testing.T) {
	log := store.NewLog()
	m := NewMonitor(log, 0)

	// Session 1: impression with top tag 5, user clicks 5 (top-1 hit), then
	// an impression with top 6 and a click on 9 (pair, miss).
	log.Append(store.Event{Session: 1, Kind: store.EventImpression, TagID: 5})
	log.Append(store.Event{Session: 1, Kind: store.EventClick, TagID: 5})
	log.Append(store.Event{Session: 1, Kind: store.EventImpression, TagID: 6})
	log.Append(store.Event{Session: 1, Kind: store.EventClick, TagID: 9})
	// Session 2: one impression, no click, escalates.
	log.Append(store.Event{Session: 2, Kind: store.EventImpression, TagID: 7})
	log.Append(store.Event{Session: 2, Kind: store.EventHuman})
	// Session 3: a click with no preceding impression — counted in Clicks,
	// excluded from attribution (CTR and calibration alike).
	log.Append(store.Event{Session: 3, Kind: store.EventClick, TagID: 1})

	in := m.Observe()
	if in.Impressions != 3 || in.Clicks != 3 || in.Sessions != 3 || in.Escalations != 1 {
		t.Fatalf("counts = %+v", in)
	}
	if in.Top1Pairs != 2 || in.Top1Hits != 1 {
		t.Fatalf("calibration pairs = %d hits = %d", in.Top1Pairs, in.Top1Hits)
	}
	if in.CTR != 2.0/3 || in.Top1Rate != 0.5 {
		t.Fatalf("ctr = %v top1 = %v", in.CTR, in.Top1Rate)
	}
	if in.HIR != 1.0/3 {
		t.Fatalf("hir = %v", in.HIR)
	}

	// Second window sees only new events.
	log.Append(store.Event{Session: 4, Kind: store.EventImpression, TagID: 2})
	in2 := m.Observe()
	if in2.Impressions != 1 || in2.Clicks != 0 || in2.Sessions != 1 {
		t.Fatalf("second window = %+v", in2)
	}
	// Empty window is all zeros.
	if in3 := m.Observe(); in3.Impressions != 0 || in3.Sessions != 0 {
		t.Fatalf("empty window = %+v", in3)
	}
}

// TestThresholdsJudge pins the degrade policy table.
func TestThresholdsJudge(t *testing.T) {
	th := Thresholds{MinImpressions: 10, MaxCTRDrop: 0.25, MaxHIRRise: 0.15, MaxTop1Drop: 0.4}
	base := Indicators{Impressions: 100, CTR: 0.4, HIR: 0.1, Top1Rate: 0.5, Top1Pairs: 40}

	if v, _ := th.Judge(base, Indicators{Impressions: 5}); v != VerdictIndeterminate {
		t.Fatalf("thin window verdict = %v", v)
	}
	healthy := Indicators{Impressions: 100, CTR: 0.38, HIR: 0.12, Top1Rate: 0.45, Top1Pairs: 40}
	if v, reasons := th.Judge(base, healthy); v != VerdictHealthy {
		t.Fatalf("healthy verdict = %v (%v)", v, reasons)
	}
	ctrDrop := Indicators{Impressions: 100, CTR: 0.2, HIR: 0.1, Top1Rate: 0.5, Top1Pairs: 40}
	if v, reasons := th.Judge(base, ctrDrop); v != VerdictDegraded || len(reasons) != 1 {
		t.Fatalf("ctr drop verdict = %v (%v)", v, reasons)
	}
	hirRise := Indicators{Impressions: 100, CTR: 0.4, HIR: 0.3, Top1Rate: 0.5, Top1Pairs: 40}
	if v, _ := th.Judge(base, hirRise); v != VerdictDegraded {
		t.Fatalf("hir rise verdict = %v", v)
	}
	top1Drop := Indicators{Impressions: 100, CTR: 0.4, HIR: 0.1, Top1Rate: 0.2, Top1Pairs: 40}
	if v, _ := th.Judge(base, top1Drop); v != VerdictDegraded {
		t.Fatalf("top1 drop verdict = %v", v)
	}
	// Disabled checks never fire.
	off := Thresholds{MinImpressions: 10}
	if v, _ := off.Judge(base, ctrDrop); v != VerdictHealthy {
		t.Fatalf("disabled policy verdict = %v", v)
	}
}

// TestSessionsFromEvents pins the deterministic session reconstruction order.
func TestSessionsFromEvents(t *testing.T) {
	events := []store.Event{
		{Session: 9, Kind: store.EventClick, TagID: 1},
		{Session: 2, Kind: store.EventClick, TagID: 2},
		{Session: 9, Kind: store.EventClick, TagID: 3},
		{Session: 2, Kind: store.EventImpression, TagID: 4}, // not a click
		{Session: 2, Kind: store.EventClick, TagID: 5},
	}
	got := SessionsFromEvents(events)
	if len(got) != 2 {
		t.Fatalf("sessions = %v", got)
	}
	if got[0][0] != 2 || got[0][1] != 5 || got[1][0] != 1 || got[1][1] != 3 {
		t.Fatalf("session order/content wrong: %v", got)
	}
}
