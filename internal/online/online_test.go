package online

import (
	"sync"
	"testing"

	"intellitag/internal/core"
	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/serving"
	"intellitag/internal/snapshot"
	"intellitag/internal/store"
	"intellitag/internal/synth"
)

// harness is the shared online-loop test rig: a small world, a committed base
// snapshot, an interaction log and a bundle builder over the world's catalog.
type harness struct {
	w       *synth.World
	log     *store.Log
	snaps   *snapshot.Store
	mcfg    core.Config
	baseID  string
	catalog serving.Catalog
	bundle  BundleFunc
}

// Shared across tests (built once — the base training is the expensive part;
// every test still gets its own snapshot store, log and replica set).
var (
	baseOnce  sync.Once
	baseWorld *synth.World
	baseTrain []synth.Session
	baseModel *core.Model
	baseGraph *hetgraph.Graph
	baseMcfg  core.Config
)

func buildBase() {
	baseWorld = synth.Generate(synth.SmallConfig())
	baseTrain, _, _ = baseWorld.SplitSessions(0.8, 0.1)
	baseGraph = baseWorld.BuildGraph(baseTrain)

	baseMcfg = core.DefaultConfig()
	baseMcfg.Dim = 8
	baseMcfg.Heads = 2
	baseMcfg.NeighborCap = 4
	baseModel = core.Build(baseMcfg, baseGraph, nil)
	// A lightly trained base: the promotion gate compares candidates against
	// it, which only discriminates when the active version has real signal.
	baseModel.Freeze()
	var sessions [][]int
	for _, s := range baseTrain {
		sessions = append(sessions, s.Clicks)
	}
	if _, err := core.FineTune(baseModel, sessions, core.FineTuneConfig{
		Epochs: 2, LR: 0.01, ClipNorm: 5, BatchSize: 8, Seed: 3,
	}); err != nil {
		panic(err)
	}
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	baseOnce.Do(buildBase)
	w, train, graph, mcfg, m := baseWorld, baseTrain, baseGraph, baseMcfg, baseModel

	snaps, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snaps.SetClock(func() int64 { return 0 })
	man, err := core.CommitSnapshot(snaps, m, graph)
	if err != nil {
		t.Fatal(err)
	}

	catalog, index := serving.BuildCatalog(w, train)
	bundle := func(s serving.Scorer, id string) *serving.ModelBundle {
		return &serving.ModelBundle{VersionID: id, Catalog: catalog, Index: index, Scorer: s}
	}
	return &harness{
		w: w, log: store.NewLog(), snaps: snaps, mcfg: mcfg,
		baseID: man.ID, catalog: catalog, bundle: bundle,
	}
}

// replicaSet builds a serving tier over the harness's base version, wired to
// its log.
func (h *harness) replicaSet(t *testing.T, replicas int) *serving.ReplicaSet {
	t.Helper()
	m, _, err := core.LoadSnapshotVersion(h.snaps, h.baseID, h.mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return serving.NewReplicaSet(h.bundle(m, h.baseID), replicas, 2, h.log, nil)
}

// appendSessions writes nSessions world-driven click sessions (length >= 2)
// straight into the log, the minimal way to give the learner a training
// window without driving serving traffic.
func (h *harness) appendSessions(day, firstSession, nSessions int, seed int64) {
	rng := mat.NewRNG(seed)
	for s := 0; s < nSessions; s++ {
		id := firstSession + s
		state := h.w.StartSession(0, rng)
		h.log.Append(store.Event{Day: day, Session: id, Tenant: state.Tenant, Kind: store.EventClick, TagID: state.LastClick})
		for c := 0; c < 3; c++ {
			click := h.w.NextClick(&state, rng)
			h.log.Append(store.Event{Day: day, Session: id, Tenant: state.Tenant, Kind: store.EventClick, TagID: click})
		}
	}
}

// paramsDigest returns the SHA256 of a committed version's parameter
// component — the bit-identity witness the determinism tests compare.
func paramsDigest(t *testing.T, s *snapshot.Store, id string) string {
	t.Helper()
	man, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := man.Component(core.SnapParams)
	if !ok {
		t.Fatalf("version %s has no %s", id, core.SnapParams)
	}
	return c.SHA256
}
