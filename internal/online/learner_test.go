package online

import (
	"errors"
	"testing"
)

// TestLearnerDeterministicAcrossWorkers is the online determinism pin: the
// same event log and base seed produce bit-identical fine-tuned parameters at
// any worker count. Two learners tail the same log from cursor 0, one
// single-threaded and one with a 4-way batch pool; their committed children
// must carry byte-identical params.gob components.
func TestLearnerDeterministicAcrossWorkers(t *testing.T) {
	h := newHarness(t)
	h.appendSessions(0, 1000, 25, 7)

	children := make([]string, 2)
	for i, workers := range []int{1, 4} {
		cfg := DefaultLearnerConfig()
		cfg.Seed = 99
		cfg.MinSessions = 10
		cfg.FineTune.Workers = workers
		l := NewLearner(h.log, h.snaps, h.mcfg, cfg, 0)
		res, err := l.Step(h.baseID)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Parent != h.baseID {
			t.Fatalf("workers=%d parent = %s", workers, res.Parent)
		}
		if l.Cursor() != int64(h.log.Len()) {
			t.Fatalf("workers=%d cursor = %d, want %d", workers, l.Cursor(), h.log.Len())
		}
		children[i] = res.Manifest.ID
	}
	d1 := paramsDigest(t, h.snaps, children[0])
	d4 := paramsDigest(t, h.snaps, children[1])
	if d1 != d4 {
		t.Fatalf("fine-tuned parameters differ across worker counts: %s vs %s", d1, d4)
	}
}

// TestLearnerSeedChangesWeights is the counter-pin: a different base seed
// must actually reach the weights (otherwise the determinism test would pass
// vacuously on a seed-insensitive loop).
func TestLearnerSeedChangesWeights(t *testing.T) {
	h := newHarness(t)
	h.appendSessions(0, 1000, 25, 7)

	digests := make([]string, 2)
	for i, seed := range []int64{99, 100} {
		cfg := DefaultLearnerConfig()
		cfg.Seed = seed
		cfg.MinSessions = 10
		l := NewLearner(h.log, h.snaps, h.mcfg, cfg, 0)
		res, err := l.Step(h.baseID)
		if err != nil {
			t.Fatal(err)
		}
		digests[i] = paramsDigest(t, h.snaps, res.Manifest.ID)
	}
	if digests[0] == digests[1] {
		t.Fatal("different seeds produced identical fine-tuned parameters")
	}
}

// TestLearnerAccumulatesBelowMinSessions pins the skip semantics: a too-small
// window neither trains nor advances the cursor, and the accumulated window
// trains once it crosses the bar.
func TestLearnerAccumulatesBelowMinSessions(t *testing.T) {
	h := newHarness(t)
	cfg := DefaultLearnerConfig()
	cfg.MinSessions = 10
	l := NewLearner(h.log, h.snaps, h.mcfg, cfg, 0)

	h.appendSessions(0, 1000, 4, 7)
	if _, err := l.Step(h.baseID); !errors.Is(err, ErrWindowTooSmall) {
		t.Fatalf("small window error = %v, want ErrWindowTooSmall", err)
	}
	if l.Cursor() != 0 {
		t.Fatalf("cursor advanced on skipped round: %d", l.Cursor())
	}

	h.appendSessions(0, 2000, 8, 8)
	res, err := l.Step(h.baseID)
	if err != nil {
		t.Fatal(err)
	}
	// The round trained on the union of both batches.
	if len(res.Sessions) != 12 {
		t.Fatalf("accumulated window has %d sessions, want 12", len(res.Sessions))
	}
	if l.Cursor() != int64(h.log.Len()) {
		t.Fatalf("cursor = %d after round, want %d", l.Cursor(), h.log.Len())
	}
}

// TestPoisonedRoundDiffersFromClean: LabelNoise must actually corrupt the
// training stream (the rollback drill depends on it producing a harmful
// candidate).
func TestPoisonedRoundDiffersFromClean(t *testing.T) {
	h := newHarness(t)
	h.appendSessions(0, 1000, 25, 7)

	run := func(noise float64) string {
		cfg := DefaultLearnerConfig()
		cfg.Seed = 99
		cfg.MinSessions = 10
		cfg.LabelNoise = noise
		l := NewLearner(h.log, h.snaps, h.mcfg, cfg, 0)
		res, err := l.Step(h.baseID)
		if err != nil {
			t.Fatal(err)
		}
		return paramsDigest(t, h.snaps, res.Manifest.ID)
	}
	if run(0) == run(1) {
		t.Fatal("full label noise produced the same weights as clean training")
	}
	// Poisoning is itself deterministic.
	if run(1) != run(1) {
		t.Fatal("poisoned round is nondeterministic")
	}
}
