package online

import (
	"errors"
	"fmt"
	"time"

	"intellitag/internal/core"
	"intellitag/internal/obs"
	"intellitag/internal/serving"
	"intellitag/internal/snapshot"
	"intellitag/internal/store"
)

// Deployer rolls a new model bundle across a serving tier with zero dropped
// requests. serving.ReplicaSet satisfies it.
type Deployer interface {
	RollingSwap(b *serving.ModelBundle, stagger time.Duration) []serving.VersionInfo
}

// BundleFunc wraps a freshly loaded scorer into a complete serving bundle
// (catalog, index, matcher). The controller cannot build those — they belong
// to the serving setup — so the wiring code supplies the closure.
type BundleFunc func(scorer serving.Scorer, versionID string) *serving.ModelBundle

// GateConfig is the offline promotion gate: before a fine-tuned candidate
// reaches traffic, it must match the active version's next-click hit@K on the
// very window it was trained from (a candidate that cannot beat its parent on
// its own training window is at best noise, at worst poisoned).
type GateConfig struct {
	// K is the hit@K cutoff, typically the serving TopK.
	K int `json:"k"`
	// Tolerance is how far (absolute hit-rate) the candidate may fall below
	// the active version and still pass — fine-tunes are incremental, so a
	// statistical tie should not block the rollout.
	Tolerance float64 `json:"tolerance"`
	// MaxExamples bounds the backtest's prefix count (0 = unbounded).
	MaxExamples int `json:"max_examples"`
}

// DefaultGateConfig returns the demo's gate settings.
func DefaultGateConfig() GateConfig { return GateConfig{K: 5, Tolerance: 0.02, MaxExamples: 2000} }

// State is the controller's rollout phase.
type State int

// Controller states: Idle serves a settled version; Probation serves a
// freshly promoted version whose live indicators are still on trial.
const (
	StateIdle State = iota
	StateProbation
)

func (s State) String() string {
	if s == StateProbation {
		return "probation"
	}
	return "idle"
}

// GateDecision records one promotion-gate evaluation.
type GateDecision struct {
	Candidate string  `json:"candidate"`
	CandHit   float64 `json:"candidate_hit"`
	ActiveHit float64 `json:"active_hit"`
	Examples  int     `json:"examples"`
	Pass      bool    `json:"pass"`
	Forced    bool    `json:"forced,omitempty"`
}

// EventRecord is one controller action, kept in a bounded history for the
// status endpoint.
type EventRecord struct {
	AtUnixMs  int64  `json:"at_unix_ms"`
	Kind      string `json:"kind"` // finetune | promote | gate-block | lkg | rollback
	Version   string `json:"version,omitempty"`
	Detail    string `json:"detail,omitempty"`
	LatencyMs int64  `json:"latency_ms,omitempty"`
}

// maxEvents bounds the controller's event history.
const maxEvents = 32

// Status is the externally visible controller state, served by GET
// /admin/online and embedded in /healthz.
type Status struct {
	State          string        `json:"state"`
	Active         string        `json:"active"`
	LKG            string        `json:"lkg,omitempty"`
	HealthyWindows int           `json:"healthy_windows"`
	Baseline       Indicators    `json:"baseline"`
	LastWindow     Indicators    `json:"last_window"`
	Finetunes      int64         `json:"finetunes"`
	Promotions     int64         `json:"promotions"`
	GateBlocked    int64         `json:"gate_blocked"`
	Rollbacks      int64         `json:"rollbacks"`
	LearnerCursor  int64         `json:"learner_cursor"`
	MonitorCursor  int64         `json:"monitor_cursor"`
	LastGate       *GateDecision `json:"last_gate,omitempty"`
	Events         []EventRecord `json:"events,omitempty"`
}

// ControllerConfig wires the drift policy.
type ControllerConfig struct {
	Thresholds Thresholds
	Gate       GateConfig
	// ProbationWindows is how many consecutive healthy windows a promoted
	// version must survive before it becomes the new last-known-good.
	ProbationWindows int
	// Stagger is the pause between replica flips during a rolling swap.
	Stagger time.Duration
	// GCKeep, when positive, runs snapshot GC after each promotion keeping
	// that many newest versions (the LKG and the active version's lineage
	// back to it are always protected).
	GCKeep int
	// NowUnixMs supplies timestamps for the event history and rollback
	// latency. The package takes no ambient clock (detsource scope); nil
	// stamps everything 0, which the deterministic tests rely on.
	NowUnixMs func() int64
}

// DefaultControllerConfig returns the demo's control policy.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Thresholds:       DefaultThresholds(),
		Gate:             DefaultGateConfig(),
		ProbationWindows: 2,
	}
}

// Controller is the drift-aware rollout state machine: Step turns stream
// windows into gated candidate promotions, Observe turns stream windows into
// health verdicts that either settle the active version as last-known-good or
// roll it back. Both are synchronous and must be called from one goroutine
// (the day-end hook of the simulator, a ticker in a real deployment).
type Controller struct {
	learner  *Learner
	monitor  *Monitor
	snaps    *snapshot.Store
	mcfg     core.Config
	deployer Deployer
	bundle   BundleFunc
	cfg      ControllerConfig
	tel      *telemetry

	state          State
	activeID       string
	baseline       Indicators
	haveBaseline   bool
	lastWindow     Indicators
	healthyWindows int

	blocked  *StepResult // last gate-blocked candidate, ForcePromote's target
	lastGate *GateDecision
	events   []EventRecord

	finetunes, promotions, gateBlocked, rollbacks int64
}

// NewController assembles the control loop around an already-serving version.
// activeID must be a committed snapshot version (the one the deployer's
// replicas currently serve); it is also marked last-known-good if no marker
// exists yet, so the very first rollback has a target.
func NewController(log *store.Log, snaps *snapshot.Store, mcfg core.Config, activeID string,
	deployer Deployer, bundle BundleFunc, lcfg LearnerConfig, cfg ControllerConfig, reg *obs.Registry) (*Controller, error) {
	if cfg.ProbationWindows < 1 {
		cfg.ProbationWindows = 1
	}
	if cfg.Gate.K < 1 {
		cfg.Gate.K = 1
	}
	if cfg.NowUnixMs == nil {
		cfg.NowUnixMs = func() int64 { return 0 }
	}
	lkg, err := snaps.LKG()
	if err != nil {
		return nil, err
	}
	if lkg == "" {
		if err := snaps.MarkLKG(activeID); err != nil {
			return nil, err
		}
		lkg = activeID
	}
	c := &Controller{
		learner:  NewLearner(log, snaps, mcfg, lcfg, 0),
		monitor:  NewMonitor(log, 0),
		snaps:    snaps,
		mcfg:     mcfg,
		deployer: deployer,
		bundle:   bundle,
		cfg:      cfg,
		tel:      newTelemetry(reg),
		activeID: activeID,
	}
	c.tel.noteState(c.state)
	c.tel.noteLKG(snapshot.SeqOf(lkg))
	return c, nil
}

// record appends to the bounded event history.
func (c *Controller) record(e EventRecord) {
	e.AtUnixMs = c.cfg.NowUnixMs()
	c.events = append(c.events, e)
	if len(c.events) > maxEvents {
		c.events = c.events[len(c.events)-maxEvents:]
	}
}

// Step runs one learner round: drain the training window, fine-tune, backtest
// the candidate against the active version, and promote it through the
// deployer when the gate passes. Returns the gate decision (nil when the
// window was too small to train).
func (c *Controller) Step() (*GateDecision, error) {
	res, err := c.learner.Step(c.activeID)
	if errors.Is(err, ErrWindowTooSmall) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	c.finetunes++
	if c.tel != nil {
		c.tel.finetunes.Inc()
	}
	c.record(EventRecord{Kind: "finetune", Version: res.Manifest.ID,
		Detail: fmt.Sprintf("loss %.4f over %d sessions", res.Loss, len(res.Sessions))})

	dec, err := c.gate(&res)
	if err != nil {
		return nil, err
	}
	c.lastGate = dec
	if c.tel != nil {
		c.tel.gateLift.Set(dec.CandHit - dec.ActiveHit)
	}
	if !dec.Pass {
		c.gateBlocked++
		if c.tel != nil {
			c.tel.gateBlocked.Inc()
		}
		c.blocked = &res
		c.record(EventRecord{Kind: "gate-block", Version: res.Manifest.ID,
			Detail: fmt.Sprintf("hit@%d %.4f vs active %.4f", c.cfg.Gate.K, dec.CandHit, dec.ActiveHit)})
		return dec, nil
	}
	if err := c.promote(res.Manifest.ID, false); err != nil {
		return dec, err
	}
	return dec, nil
}

// ForcePromote promotes the last gate-blocked candidate, bypassing the gate —
// the operator override the rollback drill exercises. Returns the promoted
// version id.
func (c *Controller) ForcePromote() (string, error) {
	if c.blocked == nil {
		return "", errors.New("online: no gate-blocked candidate to force")
	}
	id := c.blocked.Manifest.ID
	if c.lastGate != nil && c.lastGate.Candidate == id {
		forced := *c.lastGate
		forced.Forced = true
		c.lastGate = &forced
	}
	if err := c.promote(id, true); err != nil {
		return "", err
	}
	return id, nil
}

// promote loads a committed version, wraps it into a bundle and rolls it
// across the deployer, then opens probation against the pre-promotion
// baseline.
func (c *Controller) promote(id string, forced bool) error {
	m, _, err := core.LoadSnapshotVersion(c.snaps, id, c.mcfg)
	if err != nil {
		return fmt.Errorf("online: load candidate %s: %w", id, err)
	}
	c.deployer.RollingSwap(c.bundle(m, id), c.cfg.Stagger)
	c.activeID = id
	c.blocked = nil
	c.state = StateProbation
	c.healthyWindows = 0
	c.promotions++
	if c.tel != nil {
		c.tel.promotions.Inc()
	}
	c.tel.noteState(c.state)
	detail := "gate passed"
	if forced {
		detail = "forced past gate"
	}
	c.record(EventRecord{Kind: "promote", Version: id, Detail: detail})
	if c.cfg.GCKeep > 0 {
		if _, err := c.snaps.GC(c.cfg.GCKeep, c.activeID); err != nil {
			return fmt.Errorf("online: gc after promote: %w", err)
		}
	}
	return nil
}

// Observe folds the next monitor window into the control loop: refresh the
// baseline while idle, judge the promoted version against it while on
// probation, and either settle it as last-known-good or roll back. Returns
// the window and the verdict applied to it.
func (c *Controller) Observe() (Indicators, Verdict, error) {
	in := c.monitor.Observe()
	c.lastWindow = in
	c.tel.noteWindow(in)

	if c.state != StateProbation {
		// Idle: keep the baseline tracking the settled version's health, so a
		// later promotion is judged against current traffic, not history.
		if in.Impressions >= c.cfg.Thresholds.MinImpressions {
			c.baseline = in
			c.haveBaseline = true
		}
		return in, VerdictIndeterminate, nil
	}

	verdict, reasons := c.cfg.Thresholds.Judge(c.baseline, in)
	switch verdict {
	case VerdictDegraded:
		if err := c.rollback(reasons); err != nil {
			return in, verdict, err
		}
	case VerdictHealthy:
		c.healthyWindows++
		if c.healthyWindows >= c.cfg.ProbationWindows {
			if err := c.snaps.MarkLKG(c.activeID); err != nil {
				return in, verdict, err
			}
			c.state = StateIdle
			c.tel.noteState(c.state)
			c.tel.noteLKG(snapshot.SeqOf(c.activeID))
			c.baseline = in
			c.haveBaseline = true
			c.record(EventRecord{Kind: "lkg", Version: c.activeID,
				Detail: fmt.Sprintf("survived %d healthy windows", c.healthyWindows)})
		}
	}
	return in, verdict, nil
}

// rollback reloads the last-known-good version and rolls the deployer back to
// it. The swap itself is the same zero-drop rolling swap a promotion uses.
func (c *Controller) rollback(reasons []string) error {
	lkg, err := c.snaps.LKG()
	if err != nil {
		return err
	}
	if lkg == "" || lkg == c.activeID {
		return fmt.Errorf("online: degraded with no rollback target (lkg %q, active %q)", lkg, c.activeID)
	}
	start := c.cfg.NowUnixMs()
	m, _, err := core.LoadSnapshotVersion(c.snaps, lkg, c.mcfg)
	if err != nil {
		return fmt.Errorf("online: load lkg %s: %w", lkg, err)
	}
	c.deployer.RollingSwap(c.bundle(m, lkg), c.cfg.Stagger)
	latency := c.cfg.NowUnixMs() - start
	c.activeID = lkg
	c.state = StateIdle
	c.healthyWindows = 0
	c.rollbacks++
	if c.tel != nil {
		c.tel.rollbacks.Inc()
	}
	c.tel.noteState(c.state)
	detail := ""
	if len(reasons) > 0 {
		detail = reasons[0]
		for _, r := range reasons[1:] {
			detail += "; " + r
		}
	}
	c.record(EventRecord{Kind: "rollback", Version: lkg, Detail: detail, LatencyMs: latency})
	return nil
}

// SetLabelNoise forwards the learner's drill knob: the demo flips it to 1 for
// one round to manufacture a poisoned candidate, then back to 0.
func (c *Controller) SetLabelNoise(p float64) { c.learner.SetLabelNoise(p) }

// SetFineTune forwards the learner's optimizer settings (the drill's second
// knob); FineTuneSettings returns the current ones for restoring.
func (c *Controller) SetFineTune(ft core.FineTuneConfig) { c.learner.SetFineTune(ft) }

// FineTuneSettings returns the learner's current per-round optimizer config.
func (c *Controller) FineTuneSettings() core.FineTuneConfig { return c.learner.FineTuneConfig() }

// ActiveID returns the version the controller believes is serving.
func (c *Controller) ActiveID() string { return c.activeID }

// CurrentState returns the controller's phase.
func (c *Controller) CurrentState() State { return c.state }

// Status snapshots the controller for the status endpoint.
func (c *Controller) Status() Status {
	lkg, _ := c.snaps.LKG()
	s := Status{
		State:          c.state.String(),
		Active:         c.activeID,
		LKG:            lkg,
		HealthyWindows: c.healthyWindows,
		Baseline:       c.baseline,
		LastWindow:     c.lastWindow,
		Finetunes:      c.finetunes,
		Promotions:     c.promotions,
		GateBlocked:    c.gateBlocked,
		Rollbacks:      c.rollbacks,
		LearnerCursor:  c.learner.Cursor(),
		MonitorCursor:  c.monitor.Cursor(),
		LastGate:       c.lastGate,
	}
	s.Events = append(s.Events, c.events...)
	return s
}

// gate backtests the candidate against a freshly loaded copy of the active
// version on the training window's sessions and applies the pass rule.
func (c *Controller) gate(res *StepResult) (*GateDecision, error) {
	cand, g, err := core.LoadSnapshotVersion(c.snaps, res.Manifest.ID, c.mcfg)
	if err != nil {
		return nil, fmt.Errorf("online: gate load candidate: %w", err)
	}
	act, _, err := core.LoadSnapshotVersion(c.snaps, res.Parent, c.mcfg)
	if err != nil {
		return nil, fmt.Errorf("online: gate load active: %w", err)
	}
	// Backtest over the full tag vocabulary, not just the window's tags: a
	// window touches a handful of tags, and hit@K against so few candidates
	// saturates at 1.0 for any model — including a poisoned one.
	cands := make([]int, g.NumTags)
	for i := range cands {
		cands[i] = i
	}
	candHit, n := hitRate(cand, res.Sessions, cands, c.cfg.Gate.K, c.cfg.Gate.MaxExamples)
	actHit, _ := hitRate(act, res.Sessions, cands, c.cfg.Gate.K, c.cfg.Gate.MaxExamples)
	return &GateDecision{
		Candidate: res.Manifest.ID,
		CandHit:   candHit,
		ActiveHit: actHit,
		Examples:  n,
		Pass:      candHit >= actHit-c.cfg.Gate.Tolerance,
	}, nil
}

// hitRate measures next-click hit@K over every prefix of the window's
// sessions against a fixed candidate list. Ties break on tag id, so the
// measurement is deterministic.
func hitRate(m *core.Model, sessions [][]int, cands []int, k, maxExamples int) (float64, int) {
	if len(cands) == 0 {
		return 0, 0
	}
	hits, n := 0, 0
	for _, s := range sessions {
		for i := 1; i < len(s); i++ {
			if maxExamples > 0 && n >= maxExamples {
				break
			}
			scores := m.ScoreCandidates(s[:i], cands)
			if inTopK(cands, scores, s[i], k) {
				hits++
			}
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(hits) / float64(n), n
}

// inTopK reports whether target ranks within the top k of cands under scores
// (higher is better; ties break on smaller tag id).
func inTopK(cands []int, scores []float64, target, k int) bool {
	ti := -1
	for i, c := range cands {
		if c == target {
			ti = i
			break
		}
	}
	if ti < 0 {
		return false
	}
	rank := 0
	for i := range cands {
		if i == ti {
			continue
		}
		if scores[i] > scores[ti] || (scores[i] == scores[ti] && cands[i] < target) {
			rank++
			if rank >= k {
				return false
			}
		}
	}
	return true
}
