package online

import (
	"errors"
	"fmt"

	"intellitag/internal/core"
	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/snapshot"
	"intellitag/internal/store"
)

// ErrWindowTooSmall reports a learner step that found too few multi-click
// sessions to be worth a fine-tune round. The cursor does not advance, so the
// window keeps accumulating until it clears the bar.
var ErrWindowTooSmall = errors.New("online: window below MinSessions, accumulating")

// LearnerConfig sizes the streaming fine-tune loop.
type LearnerConfig struct {
	// Seed is the base seed; each round's fine-tune seed is derived from it
	// and the round's start cursor, so a replay of the same log reproduces
	// the same weights — and rounds still differ from each other.
	Seed int64
	// MinSessions is the fewest multi-click sessions a window must hold
	// before a round runs.
	MinSessions int
	// FineTune is the per-round optimizer configuration (its Seed field is
	// overwritten each round with the derived seed).
	FineTune core.FineTuneConfig
	// LabelNoise corrupts each training click to a uniformly random tag with
	// this probability, deterministically from the round seed. Zero in
	// production; the rollback drill and tests use it to manufacture a
	// harmful fine-tune on demand.
	LabelNoise float64
}

// DefaultLearnerConfig returns the demo's learner settings.
func DefaultLearnerConfig() LearnerConfig {
	return LearnerConfig{Seed: 1, MinSessions: 20, FineTune: core.DefaultFineTuneConfig()}
}

// StepResult is one completed fine-tune round.
type StepResult struct {
	Manifest snapshot.Manifest // the committed child version
	Parent   string            // version the round fine-tuned from
	Loss     float64           // final-epoch mean loss
	Sessions [][]int           // the window's click sessions (gate backtest input)
	Events   int               // events consumed by the round
	Seed     int64             // derived round seed (for reproducing the round)
}

// Learner tails the interaction log and turns each sufficiently large window
// of click sessions into a fine-tuned child snapshot version. It owns its own
// cursor; Step is synchronous and single-caller (the controller drives it).
type Learner struct {
	log    *store.Log
	snaps  *snapshot.Store
	cfg    LearnerConfig
	mcfg   core.Config
	cursor int64
}

// NewLearner builds a learner over the log and snapshot store. mcfg must
// match the configuration the parent versions were trained with (snapshot
// loading enforces this). cursor 0 starts from the log's beginning; pass a
// persisted cursor to resume without re-training on replayed events.
func NewLearner(log *store.Log, snaps *snapshot.Store, mcfg core.Config, cfg LearnerConfig, cursor int64) *Learner {
	if cfg.MinSessions < 1 {
		cfg.MinSessions = 1
	}
	return &Learner{log: log, snaps: snaps, cfg: cfg, mcfg: mcfg, cursor: cursor}
}

// Cursor returns the learner's replay position.
func (l *Learner) Cursor() int64 { return l.cursor }

// SetLabelNoise adjusts the label-corruption probability between rounds —
// the drill knob: flip it to 1 to manufacture a poisoned candidate, back to 0
// to resume clean training.
func (l *Learner) SetLabelNoise(p float64) { l.cfg.LabelNoise = p }

// SetFineTune swaps the per-round optimizer settings between rounds. The
// rollback drill pairs it with SetLabelNoise: garbage labels under aggressive
// optimizer pressure make a candidate that is unambiguously harmful.
func (l *Learner) SetFineTune(ft core.FineTuneConfig) { l.cfg.FineTune = ft }

// FineTuneConfig returns the current per-round optimizer settings (so a drill
// can restore them afterwards).
func (l *Learner) FineTuneConfig() core.FineTuneConfig { return l.cfg.FineTune }

// roundSeed derives the fine-tune seed for a window starting at cursor. The
// mix keeps rounds independent while staying a pure function of (base seed,
// log position) — the whole of the determinism contract.
func roundSeed(base, cursor int64) int64 {
	x := uint64(base)*0x9E3779B97F4A7C15 + uint64(cursor)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x)
}

// Step drains the pending window and, when it holds at least MinSessions
// multi-click sessions, fine-tunes a copy of the parent version on it and
// commits the result as parent's child. On ErrWindowTooSmall the cursor is
// unchanged and the window keeps accumulating; on any other error the cursor
// is also unchanged, so a failed round is retried against the same window.
func (l *Learner) Step(parent string) (StepResult, error) {
	events, next := l.log.EventsSince(l.cursor)
	sessions := SessionsFromEvents(events)
	usable := 0
	for _, s := range sessions {
		if len(s) >= 2 {
			usable++
		}
	}
	if usable < l.cfg.MinSessions {
		return StepResult{}, fmt.Errorf("%w: %d of %d needed", ErrWindowTooSmall, usable, l.cfg.MinSessions)
	}

	m, g, err := core.LoadSnapshotVersion(l.snaps, parent, l.mcfg)
	if err != nil {
		return StepResult{}, fmt.Errorf("online: load parent %s: %w", parent, err)
	}
	seed := roundSeed(l.cfg.Seed, l.cursor)
	train := sessions
	if l.cfg.LabelNoise > 0 {
		train = poisonSessions(sessions, g, l.cfg.LabelNoise, seed)
	}
	ft := l.cfg.FineTune
	ft.Seed = seed
	loss, err := core.FineTune(m, train, ft)
	if err != nil {
		return StepResult{}, fmt.Errorf("online: fine-tune: %w", err)
	}
	man, err := core.CommitChildSnapshot(l.snaps, m, g, parent)
	if err != nil {
		return StepResult{}, fmt.Errorf("online: commit child: %w", err)
	}
	l.cursor = next
	return StepResult{
		Manifest: man,
		Parent:   parent,
		Loss:     loss,
		Sessions: sessions,
		Events:   len(events),
		Seed:     seed,
	}, nil
}

// poisonSessions returns a copy of sessions with each click replaced by a
// uniformly random tag with probability noise. The corruption is seeded, so
// a drill run replays identically.
func poisonSessions(sessions [][]int, g *hetgraph.Graph, noise float64, seed int64) [][]int {
	rng := mat.NewRNG(seed)
	out := make([][]int, len(sessions))
	for i, s := range sessions {
		c := append([]int(nil), s...)
		for j := range c {
			if rng.Float64() < noise {
				c[j] = rng.Intn(g.NumTags)
			}
		}
		out[i] = c
	}
	return out
}
