package online

import (
	"intellitag/internal/obs"
)

// telemetry holds the controller's pre-resolved instruments under the
// intellitag_online_* families. All methods are nil-safe so an uninstrumented
// controller pays one pointer comparison per site.
type telemetry struct {
	finetunes   *obs.Counter // completed fine-tune rounds
	promotions  *obs.Counter // gate-passed (or forced) rollouts
	gateBlocked *obs.Counter // candidates the backtest gate rejected
	rollbacks   *obs.Counter // auto-rollbacks to last-known-good

	ctr      *obs.Gauge // last observed window CTR
	hir      *obs.Gauge // last observed window HIR
	top1     *obs.Gauge // last observed window top-1 calibration
	state    *obs.Gauge // controller state (0 idle, 1 probation)
	lkgSeq   *obs.Gauge // snapshot sequence of the last-known-good version
	gateLift *obs.Gauge // candidate hit@K minus active hit@K at the last gate
}

// newTelemetry resolves the online instrument set on a registry; nil registry
// means no telemetry.
func newTelemetry(reg *obs.Registry) *telemetry {
	if reg == nil {
		return nil
	}
	return &telemetry{
		finetunes:   reg.Counter("intellitag_online_finetunes_total"),
		promotions:  reg.Counter("intellitag_online_promotions_total"),
		gateBlocked: reg.Counter("intellitag_online_gate_blocked_total"),
		rollbacks:   reg.Counter("intellitag_online_rollbacks_total"),
		ctr:         reg.Gauge("intellitag_online_ctr"),
		hir:         reg.Gauge("intellitag_online_hir"),
		top1:        reg.Gauge("intellitag_online_top_one_rate"),
		state:       reg.Gauge("intellitag_online_state"),
		lkgSeq:      reg.Gauge("intellitag_online_lkg_seq"),
		gateLift:    reg.Gauge("intellitag_online_gate_lift"),
	}
}

func (t *telemetry) noteWindow(in Indicators) {
	if t == nil {
		return
	}
	t.ctr.Set(in.CTR)
	t.hir.Set(in.HIR)
	t.top1.Set(in.Top1Rate)
}

func (t *telemetry) noteState(s State) {
	if t == nil {
		return
	}
	t.state.Set(float64(s))
}

func (t *telemetry) noteLKG(seq int) {
	if t == nil {
		return
	}
	t.lkgSeq.Set(float64(seq))
}
