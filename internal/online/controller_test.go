package online

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"intellitag/internal/obs"
	"intellitag/internal/serving"
	"intellitag/internal/store"
)

// driveWindow pushes one observation window of traffic through the serving
// tier: nSessions sessions, each with two impressions and — when click is
// true for that turn — a click on the impression's top tag. clickEvery=1
// makes a perfectly calibrated high-CTR window; a large clickEvery makes a
// degraded one.
func driveWindow(t *testing.T, rs *serving.ReplicaSet, firstSession, nSessions, clickEvery int) {
	t.Helper()
	ctx := context.Background()
	turn := 0
	for s := 0; s < nSessions; s++ {
		id := firstSession + s
		e := rs.Pick(id)
		recs := e.RecommendTags(ctx, 0, id, 5)
		if len(recs) == 0 {
			t.Fatalf("tenant 0 has no recommendations")
		}
		for c := 0; c < 2; c++ {
			top := recs[0].Tag
			e.NoteImpression(0, id, top)
			turn++
			if turn%clickEvery == 0 {
				recs, _ = e.Click(ctx, 0, id, top, 5)
			}
		}
		if turn%3 == 0 && clickEvery > 1 {
			e.Escalate(0, id)
		}
		e.EndSession(id)
	}
}

// TestControllerRollbackDrill is the PR's end-to-end rollback pin, run under
// -race by make check: a poisoned fine-tune is blocked by the gate, force-
// promoted past it, detected as degraded by the drift monitor within one
// window, and auto-rolled back to the last-known-good version — all while
// concurrent traffic hammers the replica set, with every request completing.
func TestControllerRollbackDrill(t *testing.T) {
	h := newHarness(t)
	rs := h.replicaSet(t, 2)
	reg := obs.NewRegistry()

	lcfg := DefaultLearnerConfig()
	lcfg.Seed = 5
	lcfg.MinSessions = 8
	lcfg.LabelNoise = 1 // every round in this drill trains on garbage labels
	// An aggressive poisoned round: enough optimizer pressure that the
	// garbage labels measurably wreck the candidate, so the gate has a real
	// signal to block on.
	lcfg.FineTune.LR = 0.05
	lcfg.FineTune.Epochs = 4

	ccfg := DefaultControllerConfig()
	ccfg.Thresholds = Thresholds{MinImpressions: 10, MaxCTRDrop: 0.5}
	ccfg.Gate = GateConfig{K: 5, Tolerance: 0.02, MaxExamples: 300}
	var clock atomic.Int64
	ccfg.NowUnixMs = func() int64 { return clock.Add(1) }

	ctrl, err := NewController(h.log, h.snaps, h.mcfg, h.baseID, rs, h.bundle, lcfg, ccfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if lkg, _ := h.snaps.LKG(); lkg != h.baseID {
		t.Fatalf("constructor did not mark initial LKG: %q", lkg)
	}

	// Background traffic across every phase: requests must all complete, no
	// matter how many swaps happen underneath them.
	var completed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	ctx := context.Background()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			session := 900_000 + g*10_000
			for {
				select {
				case <-stop:
					return
				default:
				}
				session++
				e := rs.Pick(session)
				if recs := e.RecommendTags(ctx, 0, session, 5); len(recs) == 0 {
					t.Errorf("dropped request: empty recommendations for session %d", session)
					return
				}
				e.EndSession(session)
				completed.Add(1)
			}
		}(g)
	}

	// Healthy window: high CTR, perfect calibration. Sets the baseline.
	driveWindow(t, rs, 1000, 12, 1)
	if _, _, err := ctrl.Observe(); err != nil {
		t.Fatal(err)
	}
	st := ctrl.Status()
	if st.Baseline.CTR == 0 || st.Baseline.Impressions < 10 {
		t.Fatalf("baseline not captured: %+v", st.Baseline)
	}

	// The poisoned fine-tune must be blocked by the backtest gate.
	dec, err := ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if dec == nil || dec.Pass {
		t.Fatalf("poisoned candidate passed the gate: %+v", dec)
	}
	if ctrl.ActiveID() != h.baseID || ctrl.CurrentState() != StateIdle {
		t.Fatalf("gate block changed serving state: active %s state %v", ctrl.ActiveID(), ctrl.CurrentState())
	}

	// Operator override: force the blocked candidate out anyway.
	forced, err := ctrl.ForcePromote()
	if err != nil {
		t.Fatal(err)
	}
	if forced == h.baseID || ctrl.CurrentState() != StateProbation {
		t.Fatalf("force promote: id %s state %v", forced, ctrl.CurrentState())
	}
	for _, vi := range rs.Versions() {
		if vi.ID != forced {
			t.Fatalf("replica still on %s after forced rollout", vi.ID)
		}
		if !vi.Drained {
			t.Fatalf("rollout left replica undrained: %+v", vi)
		}
	}

	// Degraded window under the poisoned version: CTR collapses.
	driveWindow(t, rs, 2000, 12, 100)
	in, verdict, err := ctrl.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if verdict != VerdictDegraded {
		t.Fatalf("degraded window judged %v (window %+v, baseline %+v)", verdict, in, ctrl.Status().Baseline)
	}
	if ctrl.ActiveID() != h.baseID || ctrl.CurrentState() != StateIdle {
		t.Fatalf("rollback did not restore LKG: active %s state %v", ctrl.ActiveID(), ctrl.CurrentState())
	}
	for _, vi := range rs.Versions() {
		if vi.ID != h.baseID {
			t.Fatalf("replica still on %s after rollback", vi.ID)
		}
		if !vi.Drained {
			t.Fatalf("rollback left replica undrained: %+v", vi)
		}
	}

	close(stop)
	wg.Wait()
	if completed.Load() == 0 {
		t.Fatal("background traffic made no progress")
	}

	st = ctrl.Status()
	if st.Rollbacks != 1 || st.Promotions != 1 || st.GateBlocked != 1 || st.Finetunes != 1 {
		t.Fatalf("status counters = %+v", st)
	}
	if st.LastGate == nil || !st.LastGate.Forced {
		t.Fatalf("forced gate decision not recorded: %+v", st.LastGate)
	}
	var sawRollback bool
	for _, ev := range st.Events {
		if ev.Kind == "rollback" {
			sawRollback = true
			if ev.Version != h.baseID || ev.Detail == "" || ev.LatencyMs < 0 {
				t.Fatalf("rollback event = %+v", ev)
			}
		}
	}
	if !sawRollback {
		t.Fatalf("no rollback event in history: %+v", st.Events)
	}
	if got := reg.Counter("intellitag_online_rollbacks_total").Value(); got != 1 {
		t.Fatalf("rollback counter = %d", got)
	}
	if got := reg.Gauge("intellitag_online_state").Value(); got != float64(StateIdle) {
		t.Fatalf("state gauge = %v", got)
	}
}

// TestControllerProbationToLKG covers the happy path: a promotion that stays
// healthy through probation becomes the new last-known-good.
func TestControllerProbationToLKG(t *testing.T) {
	h := newHarness(t)
	rs := h.replicaSet(t, 2)

	lcfg := DefaultLearnerConfig()
	lcfg.Seed = 5
	lcfg.MinSessions = 8
	ccfg := DefaultControllerConfig()
	ccfg.Thresholds = Thresholds{MinImpressions: 10, MaxCTRDrop: 0.5}
	ccfg.Gate = GateConfig{K: 5, Tolerance: 1.01, MaxExamples: 300} // gate always passes
	ccfg.ProbationWindows = 2

	ctrl, err := NewController(h.log, h.snaps, h.mcfg, h.baseID, rs, h.bundle, lcfg, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	driveWindow(t, rs, 1000, 12, 1)
	if _, _, err := ctrl.Observe(); err != nil {
		t.Fatal(err)
	}
	dec, err := ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if dec == nil || !dec.Pass {
		t.Fatalf("tolerant gate blocked: %+v", dec)
	}
	promoted := ctrl.ActiveID()
	if promoted == h.baseID || ctrl.CurrentState() != StateProbation {
		t.Fatalf("promotion missing: active %s state %v", promoted, ctrl.CurrentState())
	}

	// Two healthy windows settle the promotion as LKG.
	for w := 0; w < 2; w++ {
		driveWindow(t, rs, 3000+1000*w, 12, 1)
		if _, verdict, err := ctrl.Observe(); err != nil || verdict != VerdictHealthy {
			t.Fatalf("probation window %d: verdict %v err %v", w, verdict, err)
		}
	}
	if ctrl.CurrentState() != StateIdle {
		t.Fatalf("probation did not settle: %v", ctrl.CurrentState())
	}
	if lkg, _ := h.snaps.LKG(); lkg != promoted {
		t.Fatalf("lkg = %s, want promoted %s", lkg, promoted)
	}
}

// TestControllerSkipsThinWindows: a Step on a too-small window neither trains
// nor changes state, and ForcePromote without a blocked candidate errors.
func TestControllerSkipsThinWindows(t *testing.T) {
	h := newHarness(t)
	rs := h.replicaSet(t, 1)
	lcfg := DefaultLearnerConfig()
	lcfg.MinSessions = 50
	ctrl, err := NewController(h.log, h.snaps, h.mcfg, h.baseID, rs, h.bundle, lcfg, DefaultControllerConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	h.log.Append(store.Event{Session: 1, Kind: store.EventClick, TagID: 0})
	dec, err := ctrl.Step()
	if err != nil || dec != nil {
		t.Fatalf("thin window Step = %+v, %v", dec, err)
	}
	if st := ctrl.Status(); st.Finetunes != 0 {
		t.Fatalf("thin window trained: %+v", st)
	}
	if _, err := ctrl.ForcePromote(); err == nil {
		t.Fatal("ForcePromote with no blocked candidate should error")
	}
}
