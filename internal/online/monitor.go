// Package online closes the loop the offline T+1 pipeline leaves open: a
// streaming learner tails the interaction log, fine-tunes the sequence model
// over the frozen GNN tag embeddings in deterministic mini-batches, and
// commits the result as a child snapshot version; a drift monitor computes
// windowed CTR / HIR / calibration indicators from the same stream; and a
// controller gates promotion of fresh fine-tunes behind an offline backtest,
// rolls promoted versions out with zero dropped requests, and auto-rolls back
// to the last-known-good version when live indicators degrade.
//
// The package is deliberately free of ambient nondeterminism: no clocks
// (callers inject NowUnixMs), no goroutines, no unseeded randomness — the
// detsource and nakedgo analyzers both run on it — so the same event log and
// seed reproduce the same fine-tuned weights and the same control decisions.
package online

import (
	"fmt"
	"sort"

	"intellitag/internal/store"
)

// Indicators is one observation window's live health signals, derived purely
// from interaction log events (Section VI-F's online metrics, computed
// streaming instead of at run exit).
type Indicators struct {
	Impressions int `json:"impressions"`
	Clicks      int `json:"clicks"`
	Sessions    int `json:"sessions"`
	Escalations int `json:"escalations"`
	// Top1Pairs counts attributed clicks — clicks that followed an impression
	// in the same session; Top1Hits counts those whose clicked tag was the
	// impression's top-ranked tag. Their ratio is the calibration indicator: a
	// model whose top slot stops matching what users actually click has
	// drifted even if overall engagement has not moved yet.
	Top1Pairs int `json:"top1_pairs"`
	Top1Hits  int `json:"top1_hits"`

	// CTR is attributed clicks / impressions. Clicks with no preceding
	// impression (a session's opening intent arrives before anything was
	// recommended) are counted in Clicks but excluded here: they happen no
	// matter what the model serves, and folding them in mutes exactly the
	// signal a degraded model should move.
	CTR      float64 `json:"ctr"`
	HIR      float64 `json:"hir"`       // escalations / distinct sessions
	Top1Rate float64 `json:"top1_rate"` // top-1 hits / attributed clicks
}

// derive fills the ratio fields from the counts.
func (in *Indicators) derive() {
	if in.Impressions > 0 {
		in.CTR = float64(in.Top1Pairs) / float64(in.Impressions)
	}
	if in.Sessions > 0 {
		in.HIR = float64(in.Escalations) / float64(in.Sessions)
	}
	if in.Top1Pairs > 0 {
		in.Top1Rate = float64(in.Top1Hits) / float64(in.Top1Pairs)
	}
}

// Thresholds is the declarative degrade policy: how far the live indicators
// may move from the promotion-time baseline before the controller calls the
// active version degraded. Zero-valued fields disable their check.
type Thresholds struct {
	// MinImpressions gates every verdict: a window smaller than this is
	// indeterminate (neither healthy nor degraded), so thin traffic can
	// neither promote to last-known-good nor trigger a rollback.
	MinImpressions int `json:"min_impressions"`
	// MaxCTRDrop is the maximum tolerated relative CTR drop vs baseline
	// (0.2 = a fifth of baseline CTR gone).
	MaxCTRDrop float64 `json:"max_ctr_drop"`
	// MaxHIRRise is the maximum tolerated absolute HIR rise vs baseline.
	MaxHIRRise float64 `json:"max_hir_rise"`
	// MaxTop1Drop is the maximum tolerated relative top-1 calibration drop
	// vs baseline.
	MaxTop1Drop float64 `json:"max_top1_drop"`
}

// DefaultThresholds is the policy the demo and tests run under.
func DefaultThresholds() Thresholds {
	return Thresholds{MinImpressions: 50, MaxCTRDrop: 0.25, MaxHIRRise: 0.15, MaxTop1Drop: 0.4}
}

// Verdict is one window's health classification against a baseline.
type Verdict int

// Verdict values, ordered from "not enough data" to "degraded".
const (
	VerdictIndeterminate Verdict = iota
	VerdictHealthy
	VerdictDegraded
)

func (v Verdict) String() string {
	switch v {
	case VerdictHealthy:
		return "healthy"
	case VerdictDegraded:
		return "degraded"
	default:
		return "indeterminate"
	}
}

// Judge classifies a window against a baseline. The returned reasons name
// every indicator that breached its threshold, most recent window values
// included, so the controller's status endpoint can explain a rollback.
func (t Thresholds) Judge(baseline, window Indicators) (Verdict, []string) {
	if window.Impressions < t.MinImpressions {
		return VerdictIndeterminate, []string{fmt.Sprintf("window has %d impressions, need %d", window.Impressions, t.MinImpressions)}
	}
	var reasons []string
	if t.MaxCTRDrop > 0 && baseline.CTR > 0 && window.CTR < baseline.CTR*(1-t.MaxCTRDrop) {
		reasons = append(reasons, fmt.Sprintf("ctr %.4f below %.0f%% of baseline %.4f", window.CTR, 100*(1-t.MaxCTRDrop), baseline.CTR))
	}
	if t.MaxHIRRise > 0 && window.HIR > baseline.HIR+t.MaxHIRRise {
		reasons = append(reasons, fmt.Sprintf("hir %.4f above baseline %.4f + %.2f", window.HIR, baseline.HIR, t.MaxHIRRise))
	}
	if t.MaxTop1Drop > 0 && baseline.Top1Rate > 0 && window.Top1Pairs > 0 && window.Top1Rate < baseline.Top1Rate*(1-t.MaxTop1Drop) {
		reasons = append(reasons, fmt.Sprintf("top1 %.4f below %.0f%% of baseline %.4f", window.Top1Rate, 100*(1-t.MaxTop1Drop), baseline.Top1Rate))
	}
	if len(reasons) > 0 {
		return VerdictDegraded, reasons
	}
	return VerdictHealthy, nil
}

// Monitor tails the interaction log with its own cursor and folds each drained
// window into Indicators. It shares the log with the learner but not the
// cursor: observation windows and training windows advance independently.
type Monitor struct {
	log    *store.Log
	cursor int64

	// lastTop1 remembers, per session, the top-ranked tag of the most recent
	// impression, so a following click can be scored for calibration. Sessions
	// are retired from the map when the window closes; a session spanning two
	// windows restarts its pairing, which loses at most one pair per window.
	lastTop1 map[int]int
}

// NewMonitor starts a monitor at the head of the log's current contents when
// cursor is 0, or resumes from a persisted cursor.
func NewMonitor(log *store.Log, cursor int64) *Monitor {
	return &Monitor{log: log, cursor: cursor, lastTop1: map[int]int{}}
}

// Cursor returns the monitor's replay position (pass it to NewMonitor to
// resume).
func (m *Monitor) Cursor() int64 { return m.cursor }

// Observe drains all events appended since the last call and returns the
// window's indicators. An empty window returns zero Indicators.
func (m *Monitor) Observe() Indicators {
	events, next := m.log.EventsSince(m.cursor)
	m.cursor = next
	var in Indicators
	sessions := map[int]bool{}
	for _, e := range events {
		sessions[e.Session] = true
		switch e.Kind {
		case store.EventImpression:
			in.Impressions++
			m.lastTop1[e.Session] = e.TagID
		case store.EventClick:
			in.Clicks++
			if top, ok := m.lastTop1[e.Session]; ok {
				in.Top1Pairs++
				if e.TagID == top {
					in.Top1Hits++
				}
				delete(m.lastTop1, e.Session)
			}
		case store.EventHuman:
			in.Escalations++
		}
	}
	in.Sessions = len(sessions)
	// The pairing state is per-window: clear it so an impression from one
	// window can never claim a click from a much later one.
	m.lastTop1 = map[int]int{}
	in.derive()
	return in
}

// SessionsFromEvents reconstructs per-session click sequences from a window of
// events, returned in ascending session-id order (map iteration must not leak
// into anything downstream of training). Both the learner's fine-tune windows
// and the controller's gate backtest are built from this.
func SessionsFromEvents(events []store.Event) [][]int {
	bySession := map[int][]int{}
	for _, e := range events {
		if e.Kind == store.EventClick {
			bySession[e.Session] = append(bySession[e.Session], e.TagID)
		}
	}
	ids := make([]int, 0, len(bySession))
	for id := range bySession {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([][]int, 0, len(ids))
	for _, id := range ids {
		out = append(out, bySession[id])
	}
	return out
}
