package baselines

import (
	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/par"
)

// BERT4Rec (Sun et al. 2019) models the click sequence with a bidirectional
// Transformer trained on the Cloze objective: random positions are masked
// and predicted from both directions. It is the paper's strongest offline
// baseline; unlike IntelliTag it learns item embeddings directly with no
// graph structure.
type BERT4Rec struct {
	NumItems, Dim int

	emb     *nn.Embedding
	maskEmb *nn.Param
	pos     *nn.PositionalEmbedding
	enc     *nn.Encoder
	proj    *nn.Linear

	maskProb float64
	maxLen   int
	params   *nn.Collector
}

// NewBERT4Rec builds the model with the paper's settings (2 Transformer
// layers, mask proportion 0.2).
func NewBERT4Rec(numItems, dim, heads, layers, maxLen int, maskProb float64, seed int64) *BERT4Rec {
	g := mat.NewRNG(seed)
	m := &BERT4Rec{
		NumItems: numItems, Dim: dim,
		emb:      nn.NewEmbedding("bert4rec.emb", numItems, dim, g),
		maskEmb:  nn.NewParam("bert4rec.mask", 1, dim),
		pos:      nn.NewPositionalEmbedding("bert4rec", maxLen, dim, g),
		enc:      nn.NewEncoder("bert4rec.enc", layers, dim, heads, 0.1, g),
		proj:     nn.NewLinear("bert4rec.proj", dim, numItems, g),
		maskProb: maskProb,
		maxLen:   maxLen,
	}
	m.maskEmb.InitNormal(g, 0.02)
	m.params = nn.NewCollector()
	m.params.Add(m.maskEmb)
	m.emb.CollectParams(m.params)
	m.pos.CollectParams(m.params)
	m.enc.CollectParams(m.params)
	m.proj.CollectParams(m.params)
	return m
}

// forward embeds the items (replacing masked positions) and returns logits
// plus a backward closure.
func (m *BERT4Rec) forward(items []int, masked map[int]bool) (*mat.Matrix, func(dLogits *mat.Matrix)) {
	n := len(items)
	ids := make([]int, n)
	copy(ids, items)
	x := m.emb.Forward(ids)
	for i := range items {
		if masked[i] {
			copy(x.Row(i), m.maskEmb.Value.Row(0))
		}
	}
	h := m.enc.Forward(m.pos.Forward(x))
	logits := m.proj.Forward(h)
	backward := func(dLogits *mat.Matrix) {
		dX := m.pos.Backward(m.enc.Backward(m.proj.Backward(dLogits)))
		for i := range items {
			if masked[i] {
				mat.AXPY(1, dX.Row(i), m.maskEmb.Grad.Row(0))
				// The original item embedding was replaced by the mask, so
				// it must not receive this position's gradient.
				row := dX.Row(i)
				for j := range row {
					row[j] = 0
				}
			}
		}
		m.emb.Backward(dX)
	}
	return logits, backward
}

// Replicate returns a BERT4Rec sharing m's parameter values with private
// gradients and caches (collector rebuilt in NewBERT4Rec order). Replica
// dropout layers carry no RNG; the trainer seeds them per example.
func (m *BERT4Rec) Replicate() *BERT4Rec {
	r := &BERT4Rec{
		NumItems: m.NumItems, Dim: m.Dim,
		emb: m.emb.Replicate(), maskEmb: m.maskEmb.Shadow(),
		pos: m.pos.Replicate(), enc: m.enc.Replicate(), proj: m.proj.Replicate(),
		maskProb: m.maskProb, maxLen: m.maxLen,
	}
	r.params = nn.NewCollector()
	r.params.Add(r.maskEmb)
	r.emb.CollectParams(r.params)
	r.pos.CollectParams(r.params)
	r.enc.CollectParams(r.params)
	r.proj.CollectParams(r.params)
	return r
}

// ScorerReplicas returns n concurrent-safe scoring replicas for the sharded
// serving/eval paths (same contract as core.Model.ScorerReplicas).
func (m *BERT4Rec) ScorerReplicas(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = m.Replicate()
	}
	return out
}

// clozeStep accumulates one masked example's gradients into m's parameters
// and returns the mask-averaged loss.
func (m *BERT4Rec) clozeStep(s []int, masked map[int]bool) float64 {
	logits, backward := m.forward(s, masked)
	dLogits := mat.New(len(s), m.NumItems)
	var loss float64
	for i := range s {
		if !masked[i] {
			continue
		}
		li, grad := nn.SoftmaxCrossEntropy(logits.Row(i), s[i])
		loss += li
		dLogits.SetRow(i, grad)
	}
	scale := 1 / float64(len(masked))
	mat.ScaleInPlace(dLogits, scale)
	backward(dLogits)
	return loss * scale
}

// Train runs Cloze-objective training; BatchSize > 1 fans examples out over
// replicas and merges gradients in slot order (same scheme as core).
func (m *BERT4Rec) Train(sessions [][]int, cfg TrainConfig) float64 {
	if cfg.batchSize() == 1 {
		return m.trainPerSample(sessions, cfg)
	}
	return m.trainBatched(sessions, cfg)
}

func (m *BERT4Rec) trainPerSample(sessions [][]int, cfg TrainConfig) float64 {
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	m.enc.SetTrain(true)
	totalSteps := cfg.Epochs * len(sessions)
	step := 0
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		for _, si := range perm {
			s := clip(sessions[si], m.maxLen)
			if len(s) == 0 {
				continue
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			masked := map[int]bool{}
			for i := range s {
				if rng.Float64() < m.maskProb {
					masked[i] = true
				}
			}
			masked[len(s)-1] = true

			m.params.ZeroGrad()
			epochLoss += m.clozeStep(s, masked)
			nn.ClipGradNorm(m.params.Params(), cfg.ClipNorm)
			opt.Step(m.params.Params())
			counted++
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
	}
	m.enc.SetTrain(false)
	return lastLoss
}

// maskedExample is one prepared batch slot; the mask set and the replica's
// dropout seed are drawn on the main goroutine before fan-out.
type maskedExample struct {
	session []int
	masked  map[int]bool
	seed    int64
}

func (m *BERT4Rec) trainBatched(sessions [][]int, cfg TrainConfig) float64 {
	batch := cfg.batchSize()
	pool := par.New(cfg.Workers)
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	params := m.params.Params()
	m.enc.SetTrain(true)

	valid := 0
	for _, s := range sessions {
		if len(s) > 0 {
			valid++
		}
	}
	if valid == 0 {
		m.enc.SetTrain(false)
		return 0
	}
	numBatches := (valid + batch - 1) / batch
	totalSteps := cfg.Epochs * numBatches

	replicas := make([]*BERT4Rec, batch)
	repParams := make([][]*nn.Param, batch)
	for j := range replicas {
		replicas[j] = m.Replicate()
		replicas[j].enc.SetTrain(true)
		repParams[j] = replicas[j].params.Params()
	}

	step := 0
	var lastLoss float64
	losses := make([]float64, batch)
	examples := make([]maskedExample, 0, batch)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		idx := 0
		for idx < len(perm) {
			examples = examples[:0]
			for idx < len(perm) && len(examples) < batch {
				s := clip(sessions[perm[idx]], m.maxLen)
				idx++
				if len(s) == 0 {
					continue
				}
				masked := map[int]bool{}
				for i := range s {
					if rng.Float64() < m.maskProb {
						masked[i] = true
					}
				}
				masked[len(s)-1] = true
				examples = append(examples, maskedExample{session: s, masked: masked, seed: rng.Int63()})
			}
			bl := len(examples)
			if bl == 0 {
				continue
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			m.params.ZeroGrad()
			pool.For(bl, func(j int) {
				ex := examples[j]
				r := replicas[j]
				r.enc.SetDropoutRNG(mat.NewRNG(ex.seed))
				losses[j] = r.clozeStep(ex.session, ex.masked)
			})
			for j := 0; j < bl; j++ {
				nn.MergeGrads(params, repParams[j])
				epochLoss += losses[j]
			}
			counted += bl
			nn.ScaleGrads(params, 1/float64(bl))
			nn.ClipGradNorm(params, cfg.ClipNorm)
			opt.Step(params)
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
	}
	m.enc.SetTrain(false)
	return lastLoss
}

// ScoreCandidates appends a mask slot to the history and reads its logits.
func (m *BERT4Rec) ScoreCandidates(history []int, candidates []int) []float64 {
	m.enc.SetTrain(false)
	clipped := clip(history, m.maxLen-1)
	items := make([]int, 0, len(clipped)+1)
	items = append(items, clipped...)
	items = append(items, 0)
	masked := map[int]bool{len(items) - 1: true}
	logits, _ := m.forward(items, masked)
	row := logits.Row(len(items) - 1)
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = row[c]
	}
	return out
}

// Name identifies the model in reports.
func (m *BERT4Rec) Name() string { return "BERT4Rec" }
