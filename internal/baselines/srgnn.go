package baselines

import (
	"math"

	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/par"
)

// SRGNN is the session-graph recommender of Wu et al. (AAAI 2019): each
// session's clicks form a small directed item graph; message passing over
// its normalized in/out adjacency refines the item representations, and an
// attention readout over the refined nodes (anchored on the last click)
// produces the session embedding that scores all items.
//
// This implementation keeps SR-GNN's defining structure — homogeneous
// session graph, graph propagation, last-click-anchored soft attention
// readout, full-softmax training — with a simplified propagation cell
// (linear messages + tanh blend instead of the gated GRU cell); the paper's
// qualitative placement (above GRU4Rec, below the heterogeneous models)
// depends on the session-graph structure, not the cell flavor.
type SRGNN struct {
	NumItems, Dim int
	Steps         int // propagation rounds

	emb       *nn.Embedding
	wIn, wOut *nn.Linear // message transforms
	q1, q2    *nn.Linear // attention: q^T sigmoid(q1 h_i + q2 h_last)
	qv        *nn.Param  // 1 x Dim attention vector
	combine   *nn.Linear // [s_global || h_last] -> Dim
	params    *nn.Collector
	maxLen    int
}

// NewSRGNN builds the model.
func NewSRGNN(numItems, dim, steps, maxLen int, seed int64) *SRGNN {
	g := mat.NewRNG(seed)
	m := &SRGNN{
		NumItems: numItems, Dim: dim, Steps: steps,
		emb:     nn.NewEmbedding("srgnn.emb", numItems, dim, g),
		wIn:     nn.NewLinearNoBias("srgnn.win", dim, dim, g),
		wOut:    nn.NewLinearNoBias("srgnn.wout", dim, dim, g),
		q1:      nn.NewLinearNoBias("srgnn.q1", dim, dim, g),
		q2:      nn.NewLinearNoBias("srgnn.q2", dim, dim, g),
		qv:      nn.NewParam("srgnn.qv", 1, dim),
		combine: nn.NewLinear("srgnn.combine", 2*dim, dim, g),
		maxLen:  maxLen,
	}
	g.Xavier(m.qv.Value)
	m.params = nn.NewCollector()
	m.emb.CollectParams(m.params)
	m.wIn.CollectParams(m.params)
	m.wOut.CollectParams(m.params)
	m.q1.CollectParams(m.params)
	m.q2.CollectParams(m.params)
	m.params.Add(m.qv)
	m.combine.CollectParams(m.params)
	return m
}

// sessionGraph maps a click sequence onto unique items with row-normalized
// in/out adjacency.
type sessionGraph struct {
	items   []int       // unique item ids in first-appearance order
	index   map[int]int // item id -> node index
	aIn     *mat.Matrix // n x n, row-normalized incoming edges
	aOut    *mat.Matrix
	lastIdx int // node index of the last click
}

func buildSessionGraph(history []int) sessionGraph {
	g := sessionGraph{index: map[int]int{}}
	for _, it := range history {
		if _, ok := g.index[it]; !ok {
			g.index[it] = len(g.items)
			g.items = append(g.items, it)
		}
	}
	n := len(g.items)
	g.aIn = mat.New(n, n)
	g.aOut = mat.New(n, n)
	for i := 1; i < len(history); i++ {
		from, to := g.index[history[i-1]], g.index[history[i]]
		g.aOut.Set(from, to, g.aOut.At(from, to)+1)
		g.aIn.Set(to, from, g.aIn.At(to, from)+1)
	}
	normalizeRows(g.aIn)
	normalizeRows(g.aOut)
	g.lastIdx = g.index[history[len(history)-1]]
	return g
}

func normalizeRows(m *mat.Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var sum float64
		for _, v := range row {
			sum += v
		}
		if sum == 0 {
			continue
		}
		for j := range row {
			row[j] /= sum
		}
	}
}

// sessionEmbedding computes the session vector and returns a backward
// closure taking dSession.
func (m *SRGNN) sessionEmbedding(history []int) ([]float64, func(dSession []float64)) {
	history = clip(history, m.maxLen)
	g := buildSessionGraph(history)
	n := len(g.items)

	h0 := m.emb.Forward(g.items)
	// Propagation: H_{t+1} = tanh(A_in H W_in + A_out H W_out + H).
	hs := []*mat.Matrix{h0}
	var preacts []*mat.Matrix
	h := h0
	for s := 0; s < m.Steps; s++ {
		msgIn := m.wIn.Forward(mat.MatMul(g.aIn, h))
		msgOut := m.wOut.Forward(mat.MatMul(g.aOut, h))
		pre := mat.Add(mat.Add(msgIn, msgOut), h)
		preacts = append(preacts, pre)
		h = mat.Apply(pre, tanh)
		hs = append(hs, h)
	}
	// Attention readout anchored on the last click.
	hLast := h.Row(g.lastIdx)
	p1 := m.q1.Forward(h)
	hLastMat := mat.New(1, m.Dim)
	hLastMat.SetRow(0, hLast)
	p2 := m.q2.Forward(hLastMat)
	alphaPre := make([]float64, n)
	sigm := mat.New(n, m.Dim)
	for i := 0; i < n; i++ {
		row := sigm.Row(i)
		for j := 0; j < m.Dim; j++ {
			row[j] = nn.Sigmoid(p1.At(i, j) + p2.At(0, j))
		}
		alphaPre[i] = mat.Dot(m.qv.Value.Row(0), row)
	}
	// Global embedding: sum_i alpha_i h_i (soft attention, not normalized,
	// following the original paper).
	sGlobal := make([]float64, m.Dim)
	for i := 0; i < n; i++ {
		mat.AXPY(alphaPre[i], h.Row(i), sGlobal)
	}
	comb := mat.New(1, 2*m.Dim)
	copy(comb.Row(0)[:m.Dim], sGlobal)
	copy(comb.Row(0)[m.Dim:], hLast)
	session := m.combine.Forward(comb)

	backward := func(dSession []float64) {
		dOut := mat.New(1, m.Dim)
		dOut.SetRow(0, dSession)
		dComb := m.combine.Backward(dOut)
		dSG := dComb.Row(0)[:m.Dim]
		dHLastDirect := dComb.Row(0)[m.Dim:]

		dH := mat.New(n, m.Dim)
		dAlpha := make([]float64, n)
		for i := 0; i < n; i++ {
			dAlpha[i] = mat.Dot(dSG, h.Row(i))
			mat.AXPY(alphaPre[i], dSG, dH.Row(i))
		}
		// alphaPre_i = qv . sigmoid(p1_i + p2).
		dP1 := mat.New(n, m.Dim)
		dP2 := mat.New(1, m.Dim)
		for i := 0; i < n; i++ {
			if dAlpha[i] == 0 {
				continue
			}
			srow := sigm.Row(i)
			mat.AXPY(dAlpha[i], srow, m.qv.Grad.Row(0))
			for j := 0; j < m.Dim; j++ {
				dPre := dAlpha[i] * m.qv.Value.At(0, j) * srow[j] * (1 - srow[j])
				dP1.Set(i, j, dP1.At(i, j)+dPre)
				dP2.Set(0, j, dP2.At(0, j)+dPre)
			}
		}
		mat.AddInPlace(dH, m.q1.Backward(dP1))
		dHLastFromAttn := m.q2.Backward(dP2)
		mat.AXPY(1, dHLastFromAttn.Row(0), dH.Row(g.lastIdx))
		mat.AXPY(1, dHLastDirect, dH.Row(g.lastIdx))

		// Back through propagation steps.
		for s := m.Steps - 1; s >= 0; s-- {
			pre := preacts[s]
			dPre := mat.New(n, m.Dim)
			for i, v := range pre.Data {
				t := tanh(v)
				dPre.Data[i] = dH.Data[i] * (1 - t*t)
			}
			dMsgIn := m.wIn.BackwardAt(mat.MatMul(g.aIn, hs[s]), dPre)
			dMsgOut := m.wOut.BackwardAt(mat.MatMul(g.aOut, hs[s]), dPre)
			dHPrev := dPre.Clone() // identity path
			mat.AddInPlace(dHPrev, mat.TMatMul(g.aIn, dMsgIn))
			mat.AddInPlace(dHPrev, mat.TMatMul(g.aOut, dMsgOut))
			dH = dHPrev
		}
		m.emb.Backward(dH)
	}
	return session.Row(0), backward
}

func tanh(v float64) float64 { return math.Tanh(v) }

// Replicate returns an SRGNN sharing m's parameter values with private
// gradients and caches (collector rebuilt in NewSRGNN order).
func (m *SRGNN) Replicate() *SRGNN {
	r := &SRGNN{
		NumItems: m.NumItems, Dim: m.Dim, Steps: m.Steps,
		emb: m.emb.Replicate(), wIn: m.wIn.Replicate(), wOut: m.wOut.Replicate(),
		q1: m.q1.Replicate(), q2: m.q2.Replicate(), qv: m.qv.Shadow(),
		combine: m.combine.Replicate(), maxLen: m.maxLen,
	}
	r.params = nn.NewCollector()
	r.emb.CollectParams(r.params)
	r.wIn.CollectParams(r.params)
	r.wOut.CollectParams(r.params)
	r.q1.CollectParams(r.params)
	r.q2.CollectParams(r.params)
	r.params.Add(r.qv)
	r.combine.CollectParams(r.params)
	return r
}

// softmaxStep accumulates one (history, target) example's full-softmax
// gradients into m's parameters and returns its loss.
func (m *SRGNN) softmaxStep(history []int, target int) float64 {
	session, backward := m.sessionEmbedding(history)
	logits := make([]float64, m.NumItems)
	for i := 0; i < m.NumItems; i++ {
		logits[i] = mat.Dot(session, m.emb.Table.Value.Row(i))
	}
	loss, dLogits := nn.SoftmaxCrossEntropy(logits, target)
	dSession := make([]float64, m.Dim)
	for i, d := range dLogits {
		if d == 0 {
			continue
		}
		mat.AXPY(d, m.emb.Table.Value.Row(i), dSession)
		mat.AXPY(d, session, m.emb.Table.Grad.Row(i))
	}
	backward(dSession)
	return loss
}

// Train runs full-softmax next-click training over random session prefixes;
// BatchSize > 1 fans examples out over replicas, merging in slot order.
func (m *SRGNN) Train(sessions [][]int, cfg TrainConfig) float64 {
	if cfg.batchSize() == 1 {
		return m.trainPerSample(sessions, cfg)
	}
	return m.trainBatched(sessions, cfg)
}

func (m *SRGNN) trainPerSample(sessions [][]int, cfg TrainConfig) float64 {
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	totalSteps := cfg.Epochs * len(sessions)
	step := 0
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		for _, si := range perm {
			s := sessions[si]
			if len(s) < 2 {
				continue
			}
			cut := 1 + rng.Intn(len(s)-1)
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			m.params.ZeroGrad()
			epochLoss += m.softmaxStep(s[:cut], s[cut])
			nn.ClipGradNorm(m.params.Params(), cfg.ClipNorm)
			opt.Step(m.params.Params())
			counted++
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
	}
	return lastLoss
}

// prefixExample is one prepared batch slot; the prefix cut is drawn on the
// main goroutine before fan-out.
type prefixExample struct {
	history []int
	target  int
}

func (m *SRGNN) trainBatched(sessions [][]int, cfg TrainConfig) float64 {
	batch := cfg.batchSize()
	pool := par.New(cfg.Workers)
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	params := m.params.Params()

	valid := 0
	for _, s := range sessions {
		if len(s) >= 2 {
			valid++
		}
	}
	if valid == 0 {
		return 0
	}
	numBatches := (valid + batch - 1) / batch
	totalSteps := cfg.Epochs * numBatches

	replicas := make([]*SRGNN, batch)
	repParams := make([][]*nn.Param, batch)
	for j := range replicas {
		replicas[j] = m.Replicate()
		repParams[j] = replicas[j].params.Params()
	}

	step := 0
	var lastLoss float64
	losses := make([]float64, batch)
	examples := make([]prefixExample, 0, batch)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		idx := 0
		for idx < len(perm) {
			examples = examples[:0]
			for idx < len(perm) && len(examples) < batch {
				s := sessions[perm[idx]]
				idx++
				if len(s) < 2 {
					continue
				}
				cut := 1 + rng.Intn(len(s)-1)
				examples = append(examples, prefixExample{history: s[:cut], target: s[cut]})
			}
			bl := len(examples)
			if bl == 0 {
				continue
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			m.params.ZeroGrad()
			pool.For(bl, func(j int) {
				ex := examples[j]
				losses[j] = replicas[j].softmaxStep(ex.history, ex.target)
			})
			for j := 0; j < bl; j++ {
				nn.MergeGrads(params, repParams[j])
				epochLoss += losses[j]
			}
			counted += bl
			nn.ScaleGrads(params, 1/float64(bl))
			nn.ClipGradNorm(params, cfg.ClipNorm)
			opt.Step(params)
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
	}
	return lastLoss
}

// ScoreCandidates ranks candidates against the session embedding.
func (m *SRGNN) ScoreCandidates(history []int, candidates []int) []float64 {
	if len(history) == 0 {
		return make([]float64, len(candidates))
	}
	session, _ := m.sessionEmbedding(history)
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = mat.Dot(session, m.emb.Table.Value.Row(c))
	}
	return out
}

// Name identifies the model in reports.
func (m *SRGNN) Name() string { return "SR-GNN" }
