// Package baselines implements the four comparison systems of the paper's
// Table IV: GRU4Rec (RNN with ranking loss), BERT4Rec (bidirectional
// Transformer with Cloze training), SR-GNN (session-graph GNN) and
// metapath2vec (unsupervised heterogeneous network embedding). All share the
// ScoreCandidates(history, candidates) ranking interface so the evaluation
// harness treats every model identically.
package baselines

import (
	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/par"
)

// TrainConfig mirrors the paper's shared optimizer setting for all models.
type TrainConfig struct {
	Epochs      int
	LR          float64
	WeightDecay float64
	ClipNorm    float64
	Seed        int64
	// BatchSize is the number of examples per Adam step; <= 1 keeps the
	// legacy per-sample loop. Same scheme as core.TrainConfig: batch slots
	// map to fixed model replicas whose gradients merge in slot order, so
	// results depend on the seed and batch size but never on Workers.
	BatchSize int
	// Workers bounds the goroutines per batch; <= 0 selects all CPUs.
	Workers int
}

// DefaultTrainConfig returns Adam lr 1e-3, weight decay 0.01.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 6, LR: 1e-3, WeightDecay: 0.01, ClipNorm: 5, Seed: 31}
}

func (cfg TrainConfig) batchSize() int {
	if cfg.BatchSize < 1 {
		return 1
	}
	return cfg.BatchSize
}

// GRU4Rec is the session-based RNN recommender of Hidasi et al. / Jannach &
// Ludewig: item embeddings, a GRU over the click prefix, and a BPR ranking
// loss against sampled negatives. Scores are dot products between the final
// hidden state (projected) and item embeddings.
type GRU4Rec struct {
	NumItems, Dim, Hidden int

	emb    *nn.Embedding
	gru    *nn.GRU
	out    *nn.Linear // Hidden -> Dim, projects state into item space
	params *nn.Collector
	maxLen int
}

// NewGRU4Rec builds the model.
func NewGRU4Rec(numItems, dim, hidden, maxLen int, seed int64) *GRU4Rec {
	g := mat.NewRNG(seed)
	m := &GRU4Rec{
		NumItems: numItems, Dim: dim, Hidden: hidden,
		emb:    nn.NewEmbedding("gru4rec.emb", numItems, dim, g),
		gru:    nn.NewGRU("gru4rec.gru", dim, hidden, g),
		out:    nn.NewLinear("gru4rec.out", hidden, dim, g),
		maxLen: maxLen,
	}
	m.params = nn.NewCollector()
	m.emb.CollectParams(m.params)
	m.gru.CollectParams(m.params)
	m.out.CollectParams(m.params)
	return m
}

// state runs the GRU over the history and returns the projected final state
// plus a backward closure taking (dState, extraEmbGrad) where extraEmbGrad
// maps item ids to gradients on their embeddings.
func (m *GRU4Rec) state(history []int) ([]float64, func(dState []float64)) {
	history = clip(history, m.maxLen)
	x := m.emb.Forward(history)
	h := m.gru.Forward(x)
	proj := m.out.Forward(h)
	last := proj.Row(proj.Rows - 1)
	backward := func(dState []float64) {
		dProj := mat.New(proj.Rows, m.Dim)
		dProj.SetRow(proj.Rows-1, dState)
		m.emb.Backward(m.gru.Backward(m.out.Backward(dProj)))
	}
	return last, backward
}

// Replicate returns a GRU4Rec sharing m's parameter values with private
// gradients and caches (collector rebuilt in NewGRU4Rec order).
func (m *GRU4Rec) Replicate() *GRU4Rec {
	r := &GRU4Rec{
		NumItems: m.NumItems, Dim: m.Dim, Hidden: m.Hidden,
		emb: m.emb.Replicate(), gru: m.gru.Replicate(), out: m.out.Replicate(),
		maxLen: m.maxLen,
	}
	r.params = nn.NewCollector()
	r.emb.CollectParams(r.params)
	r.gru.CollectParams(r.params)
	r.out.CollectParams(r.params)
	return r
}

// bprStep accumulates one (history, target, negative) example's BPR
// gradients into m's parameters and returns its loss.
func (m *GRU4Rec) bprStep(history []int, target, neg int) float64 {
	state, backward := m.state(history)
	posEmb := m.emb.Table.Value.Row(target)
	negEmb := m.emb.Table.Value.Row(neg)
	loss, dPos, dNeg := nn.BPRLoss(mat.Dot(state, posEmb), mat.Dot(state, negEmb))

	dState := make([]float64, m.Dim)
	mat.AXPY(dPos, posEmb, dState)
	mat.AXPY(dNeg, negEmb, dState)
	// Embedding-side gradients of the scoring dot products.
	mat.AXPY(dPos, state, m.emb.Table.Grad.Row(target))
	mat.AXPY(dNeg, state, m.emb.Table.Grad.Row(neg))
	backward(dState)
	return loss
}

// Train optimizes BPR loss over next-click prediction with one sampled
// negative per step. Sessions are tag-id click sequences. BatchSize > 1
// fans examples out over replicas and merges gradients in slot order.
func (m *GRU4Rec) Train(sessions [][]int, cfg TrainConfig) float64 {
	if cfg.batchSize() == 1 {
		return m.trainPerSample(sessions, cfg)
	}
	return m.trainBatched(sessions, cfg)
}

func (m *GRU4Rec) trainPerSample(sessions [][]int, cfg TrainConfig) float64 {
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	var lastLoss float64
	totalSteps := cfg.Epochs * len(sessions)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		for _, si := range perm {
			s := sessions[si]
			if len(s) < 2 {
				continue
			}
			// One random prefix position per session per epoch.
			cut := 1 + rng.Intn(len(s)-1)
			history, target := s[:cut], s[cut]
			neg := rng.Intn(m.NumItems)
			for neg == target {
				neg = rng.Intn(m.NumItems)
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			m.params.ZeroGrad()
			epochLoss += m.bprStep(history, target, neg)
			nn.ClipGradNorm(m.params.Params(), cfg.ClipNorm)
			opt.Step(m.params.Params())
			counted++
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
	}
	return lastLoss
}

// bprExample is one prepared batch slot; all randomness (prefix cut,
// negative sample) is drawn on the main goroutine before fan-out.
type bprExample struct {
	history []int
	target  int
	neg     int
}

func (m *GRU4Rec) trainBatched(sessions [][]int, cfg TrainConfig) float64 {
	batch := cfg.batchSize()
	pool := par.New(cfg.Workers)
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	params := m.params.Params()

	valid := 0
	for _, s := range sessions {
		if len(s) >= 2 {
			valid++
		}
	}
	if valid == 0 {
		return 0
	}
	numBatches := (valid + batch - 1) / batch
	totalSteps := cfg.Epochs * numBatches

	replicas := make([]*GRU4Rec, batch)
	repParams := make([][]*nn.Param, batch)
	for j := range replicas {
		replicas[j] = m.Replicate()
		repParams[j] = replicas[j].params.Params()
	}

	step := 0
	var lastLoss float64
	losses := make([]float64, batch)
	examples := make([]bprExample, 0, batch)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		idx := 0
		for idx < len(perm) {
			examples = examples[:0]
			for idx < len(perm) && len(examples) < batch {
				s := sessions[perm[idx]]
				idx++
				if len(s) < 2 {
					continue
				}
				cut := 1 + rng.Intn(len(s)-1)
				target := s[cut]
				neg := rng.Intn(m.NumItems)
				for neg == target {
					neg = rng.Intn(m.NumItems)
				}
				examples = append(examples, bprExample{history: s[:cut], target: target, neg: neg})
			}
			bl := len(examples)
			if bl == 0 {
				continue
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			m.params.ZeroGrad()
			pool.For(bl, func(j int) {
				ex := examples[j]
				losses[j] = replicas[j].bprStep(ex.history, ex.target, ex.neg)
			})
			for j := 0; j < bl; j++ {
				nn.MergeGrads(params, repParams[j])
				epochLoss += losses[j]
			}
			counted += bl
			nn.ScaleGrads(params, 1/float64(bl))
			nn.ClipGradNorm(params, cfg.ClipNorm)
			opt.Step(params)
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
	}
	return lastLoss
}

// ScoreCandidates ranks candidates by dot product with the session state.
func (m *GRU4Rec) ScoreCandidates(history []int, candidates []int) []float64 {
	if len(history) == 0 {
		return make([]float64, len(candidates))
	}
	state, _ := m.state(history)
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = mat.Dot(state, m.emb.Table.Value.Row(c))
	}
	return out
}

// Name identifies the model in reports.
func (m *GRU4Rec) Name() string { return "GRU4Rec" }

func clip(history []int, maxLen int) []int {
	if len(history) > maxLen {
		history = history[len(history)-maxLen:]
	}
	return history
}
