// Package baselines implements the four comparison systems of the paper's
// Table IV: GRU4Rec (RNN with ranking loss), BERT4Rec (bidirectional
// Transformer with Cloze training), SR-GNN (session-graph GNN) and
// metapath2vec (unsupervised heterogeneous network embedding). All share the
// ScoreCandidates(history, candidates) ranking interface so the evaluation
// harness treats every model identically.
package baselines

import (
	"intellitag/internal/mat"
	"intellitag/internal/nn"
)

// TrainConfig mirrors the paper's shared optimizer setting for all models.
type TrainConfig struct {
	Epochs      int
	LR          float64
	WeightDecay float64
	ClipNorm    float64
	Seed        int64
}

// DefaultTrainConfig returns Adam lr 1e-3, weight decay 0.01.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 6, LR: 1e-3, WeightDecay: 0.01, ClipNorm: 5, Seed: 31}
}

// GRU4Rec is the session-based RNN recommender of Hidasi et al. / Jannach &
// Ludewig: item embeddings, a GRU over the click prefix, and a BPR ranking
// loss against sampled negatives. Scores are dot products between the final
// hidden state (projected) and item embeddings.
type GRU4Rec struct {
	NumItems, Dim, Hidden int

	emb    *nn.Embedding
	gru    *nn.GRU
	out    *nn.Linear // Hidden -> Dim, projects state into item space
	params *nn.Collector
	maxLen int
}

// NewGRU4Rec builds the model.
func NewGRU4Rec(numItems, dim, hidden, maxLen int, seed int64) *GRU4Rec {
	g := mat.NewRNG(seed)
	m := &GRU4Rec{
		NumItems: numItems, Dim: dim, Hidden: hidden,
		emb:    nn.NewEmbedding("gru4rec.emb", numItems, dim, g),
		gru:    nn.NewGRU("gru4rec.gru", dim, hidden, g),
		out:    nn.NewLinear("gru4rec.out", hidden, dim, g),
		maxLen: maxLen,
	}
	m.params = nn.NewCollector()
	m.emb.CollectParams(m.params)
	m.gru.CollectParams(m.params)
	m.out.CollectParams(m.params)
	return m
}

// state runs the GRU over the history and returns the projected final state
// plus a backward closure taking (dState, extraEmbGrad) where extraEmbGrad
// maps item ids to gradients on their embeddings.
func (m *GRU4Rec) state(history []int) ([]float64, func(dState []float64)) {
	history = clip(history, m.maxLen)
	x := m.emb.Forward(history)
	h := m.gru.Forward(x)
	proj := m.out.Forward(h)
	last := proj.Row(proj.Rows - 1)
	backward := func(dState []float64) {
		dProj := mat.New(proj.Rows, m.Dim)
		dProj.SetRow(proj.Rows-1, dState)
		m.emb.Backward(m.gru.Backward(m.out.Backward(dProj)))
	}
	return last, backward
}

// Train optimizes BPR loss over next-click prediction with one sampled
// negative per step. Sessions are tag-id click sequences.
func (m *GRU4Rec) Train(sessions [][]int, cfg TrainConfig) float64 {
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	var lastLoss float64
	totalSteps := cfg.Epochs * len(sessions)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sessions))
		var epochLoss float64
		var counted int
		for _, si := range perm {
			s := sessions[si]
			if len(s) < 2 {
				continue
			}
			// One random prefix position per session per epoch.
			cut := 1 + rng.Intn(len(s)-1)
			history, target := s[:cut], s[cut]
			neg := rng.Intn(m.NumItems)
			for neg == target {
				neg = rng.Intn(m.NumItems)
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			m.params.ZeroGrad()

			state, backward := m.state(history)
			posEmb := m.emb.Table.Value.Row(target)
			negEmb := m.emb.Table.Value.Row(neg)
			loss, dPos, dNeg := nn.BPRLoss(mat.Dot(state, posEmb), mat.Dot(state, negEmb))

			dState := make([]float64, m.Dim)
			mat.AXPY(dPos, posEmb, dState)
			mat.AXPY(dNeg, negEmb, dState)
			// Embedding-side gradients of the scoring dot products.
			mat.AXPY(dPos, state, m.emb.Table.Grad.Row(target))
			mat.AXPY(dNeg, state, m.emb.Table.Grad.Row(neg))
			backward(dState)

			nn.ClipGradNorm(m.params.Params(), cfg.ClipNorm)
			opt.Step(m.params.Params())
			epochLoss += loss
			counted++
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		}
	}
	return lastLoss
}

// ScoreCandidates ranks candidates by dot product with the session state.
func (m *GRU4Rec) ScoreCandidates(history []int, candidates []int) []float64 {
	if len(history) == 0 {
		return make([]float64, len(candidates))
	}
	state, _ := m.state(history)
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = mat.Dot(state, m.emb.Table.Value.Row(c))
	}
	return out
}

// Name identifies the model in reports.
func (m *GRU4Rec) Name() string { return "GRU4Rec" }

func clip(history []int, maxLen int) []int {
	if len(history) > maxLen {
		history = history[len(history)-maxLen:]
	}
	return history
}
