package baselines

import (
	"math"
	"testing"

	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/synth"
)

// world and splits shared by the learning tests.
var (
	world                  = synth.Generate(synth.SmallConfig())
	trainSess, _, testSess = world.SplitSessions(0.8, 0.1)
)

func trainClicks() [][]int {
	var out [][]int
	for _, s := range trainSess {
		out = append(out, s.Clicks)
	}
	return out
}

// evalMRR ranks the true next click among 50 candidates for up to n test
// prefixes.
func evalMRR(scorer interface {
	ScoreCandidates(history, candidates []int) []float64
}, n int) float64 {
	rng := mat.NewRNG(55)
	var mrr float64
	var count int
	for _, s := range testSess {
		if len(s.Clicks) < 2 {
			continue
		}
		history := s.Clicks[:len(s.Clicks)-1]
		target := s.Clicks[len(s.Clicks)-1]
		cands := []int{target}
		for len(cands) < 50 {
			c := rng.Intn(world.NumTags())
			if c != target {
				cands = append(cands, c)
			}
		}
		scores := scorer.ScoreCandidates(history, cands)
		rank := 1
		for i := 1; i < len(scores); i++ {
			if scores[i] > scores[0] {
				rank++
			}
		}
		mrr += 1 / float64(rank)
		count++
		if count >= n {
			break
		}
	}
	return mrr / float64(count)
}

const chanceMRR = 0.09 // expected MRR of a random ranker over 50 candidates

func TestGRU4RecLearns(t *testing.T) {
	m := NewGRU4Rec(world.NumTags(), 16, 16, 12, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	loss := m.Train(trainClicks(), cfg)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if mrr := evalMRR(m, 80); mrr < chanceMRR*1.5 {
		t.Fatalf("GRU4Rec MRR %v not above chance", mrr)
	}
}

func TestGRU4RecEmptyHistory(t *testing.T) {
	m := NewGRU4Rec(10, 4, 4, 8, 1)
	scores := m.ScoreCandidates(nil, []int{1, 2})
	if len(scores) != 2 || scores[0] != 0 {
		t.Fatalf("scores = %v", scores)
	}
}

func TestBERT4RecLearns(t *testing.T) {
	m := NewBERT4Rec(world.NumTags(), 16, 2, 2, 12, 0.2, 2)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	loss := m.Train(trainClicks(), cfg)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if mrr := evalMRR(m, 80); mrr < chanceMRR*2 {
		t.Fatalf("BERT4Rec MRR %v not above chance", mrr)
	}
}

func TestBERT4RecTrainingLossDecreases(t *testing.T) {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	m1 := NewBERT4Rec(world.NumTags(), 8, 2, 1, 12, 0.2, 3)
	first := m1.Train(trainClicks()[:150], cfg)
	cfg.Epochs = 4
	m2 := NewBERT4Rec(world.NumTags(), 8, 2, 1, 12, 0.2, 3)
	last := m2.Train(trainClicks()[:150], cfg)
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestBERT4RecScoreDoesNotMutateHistory(t *testing.T) {
	m := NewBERT4Rec(10, 8, 2, 1, 6, 0.2, 4)
	backing := []int{1, 2, 3, 4}
	history := backing[:2] // capacity beyond length
	m.ScoreCandidates(history, []int{5})
	if backing[2] != 3 {
		t.Fatal("ScoreCandidates mutated the caller's slice")
	}
}

func TestSRGNNLearns(t *testing.T) {
	m := NewSRGNN(world.NumTags(), 16, 1, 12, 5)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	loss := m.Train(trainClicks(), cfg)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if mrr := evalMRR(m, 80); mrr < chanceMRR*1.5 {
		t.Fatalf("SR-GNN MRR %v not above chance", mrr)
	}
}

func TestSRGNNSessionGraph(t *testing.T) {
	g := buildSessionGraph([]int{7, 3, 7, 9})
	if len(g.items) != 3 {
		t.Fatalf("unique items = %v", g.items)
	}
	if g.lastIdx != g.index[9] {
		t.Fatal("lastIdx wrong")
	}
	// 7 has outgoing edges to 3 and 9: row sums to 1 after normalization.
	row := g.aOut.Row(g.index[7])
	var sum float64
	for _, v := range row {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("normalized out-row sums to %v", sum)
	}
	if g.aOut.At(g.index[7], g.index[3]) != 0.5 {
		t.Fatalf("7->3 weight = %v", g.aOut.At(g.index[7], g.index[3]))
	}
}

func TestSRGNNEmptyHistory(t *testing.T) {
	m := NewSRGNN(10, 8, 1, 8, 6)
	scores := m.ScoreCandidates(nil, []int{0, 1})
	if len(scores) != 2 || scores[0] != 0 {
		t.Fatalf("scores = %v", scores)
	}
}

// Gradient check SR-GNN's session embedding (it is the only hand-rolled
// backward outside internal/nn and internal/core).
func TestSRGNNGradcheck(t *testing.T) {
	m := NewSRGNN(6, 4, 2, 8, 7)
	history := []int{0, 1, 0, 2}
	g := mat.NewRNG(8)
	w := make([]float64, 4)
	for i := range w {
		w[i] = g.NormFloat64()
	}
	forward := func() float64 {
		s, _ := m.sessionEmbedding(history)
		return mat.Dot(s, w)
	}
	m.params.ZeroGrad()
	_, backward := m.sessionEmbedding(history)
	backward(w)
	const eps, tol = 1e-5, 3e-4
	for _, p := range m.params.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := forward()
			p.Value.Data[i] = orig - eps
			lm := forward()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(num-got) > tol*math.Max(1, math.Abs(num)) {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", p.Name, i, got, num)
			}
		}
	}
}

func TestMetapath2VecLearns(t *testing.T) {
	graph := world.BuildGraph(trainSess)
	cfg := DefaultMetapath2VecConfig()
	cfg.Epochs = 1
	m := NewMetapath2Vec(graph, 16, trainClicks(), cfg)
	if mrr := evalMRR(m, 80); mrr < chanceMRR*1.5 {
		t.Fatalf("metapath2vec MRR %v not above chance", mrr)
	}
}

func TestMetapath2VecColdStartUsesPopularity(t *testing.T) {
	graph := world.BuildGraph(trainSess)
	cfg := DefaultMetapath2VecConfig()
	cfg.Epochs = 0 // no training needed for this check
	m := NewMetapath2Vec(graph, 8, [][]int{{3, 3, 3}, {5}}, cfg)
	scores := m.ScoreCandidates(nil, []int{3, 5})
	if scores[0] <= scores[1] {
		t.Fatalf("popularity prior not applied: %v", scores)
	}
}

func TestMetapath2VecEmbeddingsDiscriminative(t *testing.T) {
	graph := world.BuildGraph(trainSess)
	cfg := DefaultMetapath2VecConfig()
	cfg.Epochs = 1
	m := NewMetapath2Vec(graph, 16, trainClicks(), cfg)
	// Averaged over tags: similarity to a TT-neighbor should exceed
	// similarity to a random tag.
	rng := mat.NewRNG(66)
	var nb, rnd float64
	var n int
	for t0 := 0; t0 < graph.NumTags && n < 60; t0++ {
		nbs := graph.MetapathNeighbors(hetgraph.NodeID(t0), hetgraph.TT)
		if len(nbs) == 0 {
			continue
		}
		nb += mat.CosineSim(m.Embedding(t0), m.Embedding(int(nbs[0])))
		rnd += mat.CosineSim(m.Embedding(t0), m.Embedding(rng.Intn(graph.NumTags)))
		n++
	}
	if nb <= rnd {
		t.Fatalf("neighbor sim %v <= random sim %v", nb/float64(n), rnd/float64(n))
	}
}

func TestNames(t *testing.T) {
	if (&GRU4Rec{}).Name() != "GRU4Rec" || (&BERT4Rec{}).Name() != "BERT4Rec" ||
		(&SRGNN{}).Name() != "SR-GNN" || (&Metapath2Vec{}).Name() != "metapath2vec" {
		t.Fatal("names wrong")
	}
}

func TestMetapath2VecClosestTags(t *testing.T) {
	graph := world.BuildGraph(trainSess)
	cfg := DefaultMetapath2VecConfig()
	cfg.Epochs = 1
	m := NewMetapath2Vec(graph, 16, trainClicks(), cfg)
	table := m.ClosestTags(5)
	if len(table) != world.NumTags() {
		t.Fatalf("table rows = %d", len(table))
	}
	for id, ns := range table {
		if len(ns) > 5 {
			t.Fatalf("row %d has %d entries", id, len(ns))
		}
		for _, n := range ns {
			if n == id {
				t.Fatalf("row %d lists itself", id)
			}
		}
	}
}
