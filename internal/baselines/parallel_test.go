package baselines

import "testing"

// batchedCfg returns the shared config for the worker-determinism tests.
func batchedCfg(workers int) TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.BatchSize = 4
	cfg.Workers = workers
	return cfg
}

func assertSameParams(t *testing.T, name string, a, b []float64, la, lb float64) {
	t.Helper()
	if la != lb {
		t.Fatalf("%s: loss diverges across worker counts: %v vs %v", name, la, lb)
	}
	if len(a) != len(b) {
		t.Fatalf("%s: parameter counts differ: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: parameter %d diverges: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func TestGRU4RecDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]float64, float64) {
		m := NewGRU4Rec(world.NumTags(), 16, 16, 12, 7)
		loss := m.Train(trainClicks()[:200], batchedCfg(workers))
		var flat []float64
		for _, p := range m.params.Params() {
			flat = append(flat, p.Value.Data...)
		}
		return flat, loss
	}
	p1, l1 := run(1)
	p4, l4 := run(4)
	assertSameParams(t, "GRU4Rec", p1, p4, l1, l4)
}

func TestBERT4RecDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]float64, float64) {
		m := NewBERT4Rec(world.NumTags(), 16, 2, 1, 12, 0.2, 7)
		loss := m.Train(trainClicks()[:120], batchedCfg(workers))
		var flat []float64
		for _, p := range m.params.Params() {
			flat = append(flat, p.Value.Data...)
		}
		return flat, loss
	}
	p1, l1 := run(1)
	p4, l4 := run(4)
	assertSameParams(t, "BERT4Rec", p1, p4, l1, l4)
}

func TestSRGNNDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]float64, float64) {
		m := NewSRGNN(world.NumTags(), 16, 1, 12, 7)
		loss := m.Train(trainClicks()[:120], batchedCfg(workers))
		var flat []float64
		for _, p := range m.params.Params() {
			flat = append(flat, p.Value.Data...)
		}
		return flat, loss
	}
	p1, l1 := run(1)
	p4, l4 := run(4)
	assertSameParams(t, "SR-GNN", p1, p4, l1, l4)
}
