package baselines

import (
	"intellitag/internal/ann"
	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/nn"
)

// Metapath2Vec (Dong et al. 2017) learns unsupervised tag embeddings from
// metapath-guided random walks over the heterogeneous graph with skip-gram
// negative sampling. As deployed in the paper's online comparison, scoring
// depends only on the *last* clicked tag: the closest tags by embedding
// similarity are recommended (Section VI-F explains it "does not originally
// support sequential modeling", which is also why it serves fastest).
type Metapath2Vec struct {
	NumItems, Dim int

	emb     *nn.Param // input embeddings
	ctx     *nn.Param // context (output) embeddings
	graph   *hetgraph.Graph
	popular []float64 // popularity prior for empty histories
}

// Metapath2VecConfig controls walk generation and skip-gram training.
type Metapath2VecConfig struct {
	WalksPerNode int
	WalkLen      int
	Window       int
	Negatives    int
	Epochs       int
	LR           float64
	Seed         int64
}

// DefaultMetapath2VecConfig matches the scale of this repository's worlds.
func DefaultMetapath2VecConfig() Metapath2VecConfig {
	return Metapath2VecConfig{WalksPerNode: 8, WalkLen: 8, Window: 2, Negatives: 3, Epochs: 2, LR: 0.025, Seed: 41}
}

// NewMetapath2Vec builds and trains the embeddings over the graph. Sessions
// supply the popularity prior used when a user has no click history.
func NewMetapath2Vec(graph *hetgraph.Graph, dim int, sessions [][]int, cfg Metapath2VecConfig) *Metapath2Vec {
	g := mat.NewRNG(cfg.Seed)
	m := &Metapath2Vec{
		NumItems: graph.NumTags, Dim: dim,
		emb:     nn.NewParam("mp2v.emb", graph.NumTags, dim),
		ctx:     nn.NewParam("mp2v.ctx", graph.NumTags, dim),
		graph:   graph,
		popular: make([]float64, graph.NumTags),
	}
	m.emb.InitNormal(g, 0.1)
	m.ctx.InitNormal(g, 0.1)
	for _, s := range sessions {
		for _, c := range s {
			m.popular[c]++
		}
	}
	m.train(cfg, g)
	return m
}

// train runs skip-gram with negative sampling over metapath-guided walks.
func (m *Metapath2Vec) train(cfg Metapath2VecConfig, g *mat.RNG) {
	// Walk schedule over the metapath set: the short, behavior-derived paths
	// (TT, TQT) carry the sharpest co-click signal, so they guide most
	// walks; the tenant-wide TQEQT path contributes topical smoothing.
	schedule := []hetgraph.Metapath{
		hetgraph.TT, hetgraph.TQT, hetgraph.TT, hetgraph.TQQT,
		hetgraph.TT, hetgraph.TQT, hetgraph.TQEQT, hetgraph.TT,
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for start := 0; start < m.NumItems; start++ {
			for w := 0; w < cfg.WalksPerNode; w++ {
				path := schedule[w%len(schedule)]
				walk := m.graph.RandomWalk(hetgraph.NodeID(start), path, cfg.WalkLen, g)
				m.trainWalk(walk, cfg, g)
			}
		}
	}
}

func (m *Metapath2Vec) trainWalk(walk []hetgraph.NodeID, cfg Metapath2VecConfig, g *mat.RNG) {
	for i, center := range walk {
		for j := i - cfg.Window; j <= i+cfg.Window; j++ {
			if j < 0 || j >= len(walk) || j == i {
				continue
			}
			m.sgdPair(int(center), int(walk[j]), 1, cfg.LR)
			for n := 0; n < cfg.Negatives; n++ {
				neg := g.Intn(m.NumItems)
				if neg == int(walk[j]) {
					continue
				}
				m.sgdPair(int(center), neg, 0, cfg.LR)
			}
		}
	}
}

// sgdPair applies one skip-gram SGD update for (center, context, label).
func (m *Metapath2Vec) sgdPair(center, context int, label float64, lr float64) {
	ce := m.emb.Value.Row(center)
	cx := m.ctx.Value.Row(context)
	_, grad := nn.BinaryCrossEntropy(mat.Dot(ce, cx), label)
	for k := range ce {
		dce := grad * cx[k]
		dcx := grad * ce[k]
		ce[k] -= lr * dce
		cx[k] -= lr * dcx
	}
}

// Embedding returns tag t's learned vector.
func (m *Metapath2Vec) Embedding(t int) []float64 { return m.emb.Value.Row(t) }

// ClosestTags precomputes each tag's k most similar tags with the LSH index
// — the "closest tags of each tag from the offline calculation" that the
// paper's deployment uploads to the online servers (Section VI-F).
func (m *Metapath2Vec) ClosestTags(k int) [][]int {
	return ann.Build(m.emb.Value, ann.DefaultConfig()).ClosestTable(k)
}

// ScoreCandidates scores candidates by cosine similarity to the LAST clicked
// tag only (plus a small popularity prior to break cold-start ties).
func (m *Metapath2Vec) ScoreCandidates(history []int, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	if len(history) == 0 {
		for i, c := range candidates {
			out[i] = m.popular[c]
		}
		return out
	}
	var maxPop float64
	for _, p := range m.popular {
		if p > maxPop {
			maxPop = p
		}
	}
	last := m.emb.Value.Row(history[len(history)-1])
	for i, c := range candidates {
		out[i] = mat.CosineSim(last, m.emb.Value.Row(c))
		if maxPop > 0 {
			// A small popularity prior breaks the symmetry of cosine
			// similarity (the embedding cannot tell direction along a task
			// flow); production deployments blend the same signal.
			out[i] += 0.3 * m.popular[c] / maxPop
		}
	}
	return out
}

// Name identifies the model in reports.
func (m *Metapath2Vec) Name() string { return "metapath2vec" }
