//go:build !race

package eval

const raceDetectorEnabled = false
