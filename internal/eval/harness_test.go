package eval

import (
	"testing"

	"intellitag/internal/core"
)

func TestTagFeaturesShapeAndCache(t *testing.T) {
	f1 := fastHarness.TagFeatures()
	if f1.Rows != fastHarness.World.NumTags() || f1.Cols != fastHarness.Opts.Rec.Dim {
		t.Fatalf("features %dx%d", f1.Rows, f1.Cols)
	}
	if f2 := fastHarness.TagFeatures(); f2 != f1 {
		t.Fatal("features not cached")
	}
	// Distinct tags must have distinct feature rows.
	same := true
	for j := 0; j < f1.Cols; j++ {
		if f1.At(0, j) != f1.At(1, j) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("tag features degenerate")
	}
}

func TestExpandPrefixes(t *testing.T) {
	got := core.ExpandPrefixes([][]int{{1, 2, 3}, {7}, {4, 5}})
	want := [][]int{{1, 2}, {1, 2, 3}, {4, 5}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("prefix %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("prefix %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}
