package eval

import (
	"fmt"
	"sort"
	"strings"

	"intellitag/internal/synth"
)

// TenantBreakdown tests the paper's Section VI-F explanation for the online
// results: graph-based models should hold up better on small tenants (few
// Q&A pairs, little training traffic) because they aggregate information
// across tenants, while purely sequential models degrade there.
type TenantBreakdown struct {
	// Rows[model] holds {small-tenant MRR, large-tenant MRR}.
	Models []string
	Small  []float64
	Large  []float64
}

// RunTenantBreakdown evaluates IntelliTag, BERT4Rec and metapath2vec
// separately on sessions from the smaller and larger half of tenants
// (by RQ count).
func (h *Harness) RunTenantBreakdown() TenantBreakdown {
	// Order tenants by RQ count.
	rqCount := map[int]int{}
	for _, rq := range h.World.RQs {
		rqCount[rq.Tenant]++
	}
	tenants := make([]int, 0, len(h.World.Tenants))
	for _, t := range h.World.Tenants {
		tenants = append(tenants, t.ID)
	}
	sort.Slice(tenants, func(i, j int) bool { return rqCount[tenants[i]] < rqCount[tenants[j]] })
	smallSet := map[int]bool{}
	for _, t := range tenants[:len(tenants)/2] {
		smallSet[t] = true
	}

	var small, large []synth.Session
	for _, s := range h.Test {
		if smallSet[s.Tenant] {
			small = append(small, s)
		} else {
			large = append(large, s)
		}
	}

	scorers := []Scorer{h.IntelliTag(), h.BERT4Rec(), h.Metapath2Vec()}
	var out TenantBreakdown
	for _, s := range scorers {
		out.Models = append(out.Models, s.Name())
		out.Small = append(out.Small, EvaluateRanking(s, h.World, small, h.Opts.Protocol).MRR)
		out.Large = append(out.Large, EvaluateRanking(s, h.World, large, h.Opts.Protocol).MRR)
	}
	return out
}

// String formats the breakdown.
func (b TenantBreakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: MRR by tenant size (small = bottom half by RQ count)\n")
	fmt.Fprintf(&sb, "  %-20s %12s %12s %12s\n", "Model", "small", "large", "small/large")
	for i, m := range b.Models {
		ratio := 0.0
		if b.Large[i] > 0 {
			ratio = b.Small[i] / b.Large[i]
		}
		fmt.Fprintf(&sb, "  %-20s %12.3f %12.3f %12.2f\n", m, b.Small[i], b.Large[i], ratio)
	}
	return sb.String()
}
