package eval

import (
	"strings"
	"testing"
)

func TestMetapathAblation(t *testing.T) {
	skipUnderRace(t)
	abl := fastHarness.RunMetapathAblation()
	if len(abl.Rows) != 5 {
		t.Fatalf("rows = %d, want 4 leave-one-out + full", len(abl.Rows))
	}
	names := map[string]bool{}
	for _, r := range abl.Rows {
		names[r.Name] = true
		if r.Report.N == 0 {
			t.Fatalf("%s evaluated no queries", r.Name)
		}
		if r.Report.MRR <= 0 || r.Report.MRR > 1 {
			t.Fatalf("%s MRR %v out of range", r.Name, r.Report.MRR)
		}
	}
	for _, want := range []string{"IntelliTag w/o TT", "IntelliTag w/o TQT", "IntelliTag w/o TQQT", "IntelliTag w/o TQEQT", "IntelliTag (all paths)"} {
		if !names[want] {
			t.Fatalf("missing row %q (have %v)", want, names)
		}
	}
	if !strings.Contains(abl.String(), "metapath-set ablation") {
		t.Fatal("formatting broken")
	}
}

func TestNegativeProtocolAblation(t *testing.T) {
	abl := fastHarness.RunNegativeProtocolAblation()
	// Global negatives are easier than same-tenant negatives: tenant tags
	// share topics with the target, random tags usually do not.
	if abl.Global.Report.MRR < abl.SameTenant.Report.MRR {
		t.Fatalf("global MRR %.3f < same-tenant MRR %.3f",
			abl.Global.Report.MRR, abl.SameTenant.Report.MRR)
	}
	if !strings.Contains(abl.String(), "negative-sampling") {
		t.Fatal("formatting broken")
	}
}

func TestDistillationSweep(t *testing.T) {
	skipUnderRace(t)
	sweep := fastHarness.RunDistillationSweep()
	if len(sweep.Temperatures) != 3 || len(sweep.F1) != 3 || len(sweep.Speedups) != 3 {
		t.Fatalf("sweep shape: %+v", sweep)
	}
	for i := range sweep.Temperatures {
		if sweep.F1[i] < 0 || sweep.F1[i] > 1 {
			t.Fatalf("F1[%d] = %v", i, sweep.F1[i])
		}
		if sweep.Speedups[i] <= 1 {
			t.Fatalf("speedup[%d] = %v, student should be faster", i, sweep.Speedups[i])
		}
	}
	if !strings.Contains(sweep.String(), "temperature") {
		t.Fatal("formatting broken")
	}
}

func TestTenantBreakdown(t *testing.T) {
	b := fastHarness.RunTenantBreakdown()
	if len(b.Models) != 3 {
		t.Fatalf("models = %v", b.Models)
	}
	for i := range b.Models {
		if b.Small[i] < 0 || b.Small[i] > 1 || b.Large[i] < 0 || b.Large[i] > 1 {
			t.Fatalf("MRR out of range for %s: %v / %v", b.Models[i], b.Small[i], b.Large[i])
		}
	}
	if !strings.Contains(b.String(), "tenant size") {
		t.Fatal("formatting broken")
	}
}

func TestMatcherEval(t *testing.T) {
	e := fastHarness.RunMatcherEval()
	if e.Queries == 0 {
		t.Fatal("no queries evaluated")
	}
	if e.BM25Acc < 0 || e.BM25Acc > 1 || e.RerankAcc < 0 || e.RerankAcc > 1 {
		t.Fatalf("accuracies out of range: %+v", e)
	}
	// The trained matcher must resolve questions well above chance within
	// the recall set (chance = 1/RecallSize = 0.1). Whether it beats raw
	// BM25 is the experiment's honest finding (it does not at this scale —
	// see EXPERIMENTS.md), so that is reported, not asserted.
	if e.RerankAcc < 0.25 {
		t.Fatalf("matcher rerank acc %.3f barely above chance", e.RerankAcc)
	}
	if !strings.Contains(e.String(), "matcher") {
		t.Fatal("formatting broken")
	}
}
