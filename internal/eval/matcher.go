package eval

import (
	"fmt"
	"strings"

	"intellitag/internal/mat"
	"intellitag/internal/qamatch"
	"intellitag/internal/search"
)

// MatcherEval validates the Q&A matching component (the paper's RoBERTa
// substitute): accuracy@1 of question -> RQ resolution on held-out user
// paraphrases, comparing raw BM25 ordering against BM25 recall + trained
// matcher rerank — the exact serving flow of Fig. 4.
type MatcherEval struct {
	BM25Acc    float64
	RerankAcc  float64
	Queries    int
	RecallSize int
}

// RunMatcherEval trains the siamese matcher on synthetic paraphrases and
// measures both pipelines.
func (h *Harness) RunMatcherEval() MatcherEval {
	rng := mat.NewRNG(h.Opts.World.Seed + 9)
	var pairs []qamatch.Pair
	perRQ := 2
	if h.Opts.FastMode {
		perRQ = 1
	}
	for _, rq := range h.World.RQs {
		for k := 0; k < perRQ; k++ {
			pairs = append(pairs, qamatch.Pair{
				Question: h.World.Paraphrase(rq.ID, rng),
				RQ:       rq.Text,
				Tenant:   rq.Tenant,
			})
		}
	}
	vocab := qamatch.BuildVocab(pairs)
	m := qamatch.NewMatcher(qamatch.DefaultConfig(), vocab)
	tc := qamatch.DefaultTrainConfig()
	if h.Opts.FastMode {
		tc.Epochs = 1
	}
	qamatch.Train(m, pairs, tc)

	// Search index over RQ texts plus the matcher's precomputed embeddings.
	ix := search.NewIndex()
	var ids []int
	var texts []string
	for _, rq := range h.World.RQs {
		ix.Add(rq.ID, rq.Tenant, rq.Text)
		ids = append(ids, rq.ID)
		texts = append(texts, rq.Text)
	}
	emb := m.BuildIndex(ids, texts)

	const recallSize = 10
	res := MatcherEval{RecallSize: recallSize}
	n := len(h.World.RQs)
	maxQueries := 300
	if h.Opts.FastMode {
		maxQueries = 100
	}
	step := n/maxQueries + 1
	for i := 0; i < n; i += step {
		rq := h.World.RQs[i]
		q := h.World.Paraphrase(rq.ID, rng) // fresh paraphrase (held out)
		hits := ix.Search(q, rq.Tenant, recallSize)
		if len(hits) == 0 {
			continue
		}
		res.Queries++
		if hits[0].ID == rq.ID {
			res.BM25Acc++
		}
		subset := make(map[int]bool, len(hits))
		for _, hgt := range hits {
			subset[hgt.ID] = true
		}
		if best, _ := emb.Best(q, subset); best == rq.ID {
			res.RerankAcc++
		}
	}
	if res.Queries > 0 {
		res.BM25Acc /= float64(res.Queries)
		res.RerankAcc /= float64(res.Queries)
	}
	return res
}

// String formats the validation result.
func (e MatcherEval) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "System validation: Q&A matching (Fig. 4's matcher model)\n")
	fmt.Fprintf(&b, "  %-28s acc@1 %.3f\n", "BM25 only", e.BM25Acc)
	fmt.Fprintf(&b, "  %-28s acc@1 %.3f\n", fmt.Sprintf("BM25 recall@%d + matcher", e.RecallSize), e.RerankAcc)
	fmt.Fprintf(&b, "  (%d held-out paraphrase queries)\n", e.Queries)
	return b.String()
}
