package eval

import (
	"fmt"
	"strings"

	"intellitag/internal/core"
	"intellitag/internal/hetgraph"
	"intellitag/internal/tagmining"
)

// The experiments in this file go beyond the paper's tables: they ablate
// design choices the paper fixes without measuring (the metapath set, the
// negative-sampling protocol, the distillation temperature). DESIGN.md
// section 5 calls these out.

// MetapathAblation reports offline quality with one metapath removed at a
// time (plus the full set).
type MetapathAblation struct {
	Rows []ModelRanking
}

// RunMetapathAblation retrains the full model on each leave-one-out
// metapath subset.
func (h *Harness) RunMetapathAblation() MetapathAblation {
	var out MetapathAblation
	all := hetgraph.AllMetapaths
	for drop := range all {
		subset := make([]hetgraph.Metapath, 0, len(all)-1)
		for i, p := range all {
			if i != drop {
				subset = append(subset, p)
			}
		}
		m := h.Ablation(func(c *core.Config) { c.Metapaths = subset })
		out.Rows = append(out.Rows, ModelRanking{
			Name:   fmt.Sprintf("IntelliTag w/o %s", all[drop]),
			Report: EvaluateRanking(m, h.World, h.Test, h.Opts.Protocol),
		})
	}
	full := h.IntelliTag()
	out.Rows = append(out.Rows, ModelRanking{Name: "IntelliTag (all paths)", Report: EvaluateRanking(full, h.World, h.Test, h.Opts.Protocol)})
	return out
}

// String formats the ablation like the paper's ranking tables.
func (a MetapathAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: metapath-set ablation\n")
	b.WriteString(rankingHeader())
	for _, r := range a.Rows {
		b.WriteString(rankingRow(r))
	}
	return b.String()
}

// NegativeProtocolAblation compares the paper's same-tenant negative
// sampling against global negatives.
type NegativeProtocolAblation struct {
	SameTenant ModelRanking
	Global     ModelRanking
}

// RunNegativeProtocolAblation evaluates the trained full model under both
// protocols. Same-tenant negatives are harder (topically confusable), so
// the global numbers should be uniformly higher — quantifying how much the
// protocol choice matters when comparing against other papers.
func (h *Harness) RunNegativeProtocolAblation() NegativeProtocolAblation {
	m := h.IntelliTag()
	same := EvaluateRanking(m, h.World, h.Test, h.Opts.Protocol)
	globalProto := h.Opts.Protocol
	globalProto.GlobalNegatives = true
	global := EvaluateRanking(m, h.World, h.Test, globalProto)
	return NegativeProtocolAblation{
		SameTenant: ModelRanking{Name: "same-tenant negatives", Report: same},
		Global:     ModelRanking{Name: "global negatives", Report: global},
	}
}

// String formats the protocol comparison.
func (a NegativeProtocolAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: negative-sampling protocol\n")
	b.WriteString(rankingHeader())
	b.WriteString(rankingRow(a.SameTenant))
	b.WriteString(rankingRow(a.Global))
	return b.String()
}

// DistillationSweep extends Table III: student F1 and speedup across
// distillation temperatures.
type DistillationSweep struct {
	Temperatures []float64
	F1           []float64
	Speedups     []float64
}

// RunDistillationSweep distills the same teacher at several temperatures.
func (h *Harness) RunDistillationSweep() DistillationSweep {
	sentences := h.World.LabeledSentences()
	cut := len(sentences) * 8 / 10
	trainSet, testSet := sentences[:cut], sentences[cut:]
	vocab := tagmining.BuildVocab(trainSet)

	teacher := tagmining.NewModel(tagmining.TeacherConfig(), vocab)
	tagmining.TrainMultiTask(teacher, trainSet, h.Opts.Mining)
	teacherTime := tagmining.MeasureInference(teacher, testSet)

	temps := []float64{1, 2, 4}
	var sweep DistillationSweep
	for _, temp := range temps {
		student := tagmining.NewModel(tagmining.StudentConfig(), vocab)
		tagmining.Distill(teacher, student, trainSet, h.Opts.Mining, temp, 0.5)
		r := tagmining.EvaluateSpans(student, testSet, 0.5, nil)
		st := tagmining.MeasureInference(student, testSet)
		sweep.Temperatures = append(sweep.Temperatures, temp)
		sweep.F1 = append(sweep.F1, r.F1)
		sweep.Speedups = append(sweep.Speedups, float64(teacherTime)/float64(st))
	}
	return sweep
}

// String formats the sweep.
func (s DistillationSweep) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: distillation temperature sweep\n")
	fmt.Fprintf(&b, "  %6s %8s %9s\n", "T", "F1", "speedup")
	for i, t := range s.Temperatures {
		fmt.Fprintf(&b, "  %6.1f %8.3f %8.1fx\n", t, s.F1[i], s.Speedups[i])
	}
	return b.String()
}
