package eval

import (
	"testing"

	"intellitag/internal/core"
	"intellitag/internal/synth"
)

// TestEvaluateRankingDeterministicAcrossWorkers: the parallel ranking sweep
// must report exactly the sequential sweep's metrics — queries are generated
// on one goroutine and ranks accumulate in query order.
func TestEvaluateRankingDeterministicAcrossWorkers(t *testing.T) {
	w := synth.Generate(synth.SmallConfig())
	_, _, test := w.SplitSessions(0.8, 0.1)
	graph := w.BuildGraph(nil)

	cfg := core.DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	m := core.Build(cfg, graph, nil)
	m.Freeze() // untrained weights are fine: the sweep, not the model, is under test

	p := DefaultProtocol()
	p.MaxQueries = 200
	p.Workers = 1
	seq := EvaluateRanking(m, w, test, p)
	p.Workers = 4
	parl := EvaluateRanking(m, w, test, p)
	if seq != parl {
		t.Fatalf("ranking report diverges across worker counts:\n  seq: %+v\n  par: %+v", seq, parl)
	}
}

// TestScorerPoolFallback: models without ScorerReplicas must degrade to a
// single shared scorer (sequential sweep), never to concurrent use.
func TestScorerPoolFallback(t *testing.T) {
	s := perfectScorer{next: map[string]int{}}
	pool := scorerPool(s, 8)
	if len(pool) != 1 {
		t.Fatalf("non-replicable scorer got %d pool slots, want 1", len(pool))
	}
}
