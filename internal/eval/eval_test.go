package eval

import (
	"strings"
	"testing"

	"intellitag/internal/mat"
	"intellitag/internal/synth"
)

// fastHarness is shared across tests; models are trained lazily and cached.
var fastHarness = NewHarness(FastOptions())

// skipUnderRace skips model-zoo training tests when the race detector is on:
// its ~10x slowdown pushes the full harness past the package test timeout on
// small hosts, and these tests are single-goroutine shape checks — the
// concurrency-sensitive paths are covered under race by parallel_test.go and
// the serving/core suites.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("trains the full model zoo; too slow under the race detector")
	}
}

func TestSampleNegatives(t *testing.T) {
	rng := mat.NewRNG(1)
	pool := []int{1, 2, 3, 4, 5}
	out := sampleNegatives(pool, 100, 3, 4, rng)
	if len(out) != 5 || out[0] != 3 {
		t.Fatalf("out = %v", out)
	}
	seen := map[int]bool{}
	for _, c := range out {
		if seen[c] {
			t.Fatalf("duplicate candidate in %v", out)
		}
		seen[c] = true
	}
	// Small pool tops up globally.
	out = sampleNegatives([]int{7}, 100, 7, 10, rng)
	if len(out) != 11 {
		t.Fatalf("topped-up out = %v", out)
	}
}

// perfectScorer ranks the target first whenever it knows the session; used
// to validate the protocol itself.
type perfectScorer struct{ next map[string]int }

func (p perfectScorer) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	want := p.next[key(history)]
	for i, c := range candidates {
		if c == want {
			out[i] = 1
		}
	}
	return out
}
func (p perfectScorer) Name() string { return "perfect" }

func key(history []int) string {
	var b strings.Builder
	for _, h := range history {
		b.WriteByte(byte(h % 250))
		b.WriteByte(',')
	}
	return b.String()
}

func TestEvaluateRankingPerfectScorer(t *testing.T) {
	w := fastHarness.World
	sessions := fastHarness.Test[:20]
	p := perfectScorer{next: map[string]int{}}
	for _, s := range sessions {
		for i := 1; i < len(s.Clicks); i++ {
			p.next[key(s.Clicks[:i])] = s.Clicks[i]
		}
	}
	r := EvaluateRanking(p, w, sessions, DefaultProtocol())
	// Identical prefixes can map to different next clicks across sessions
	// (the map keeps one), so the oracle is near-perfect, not perfect.
	if r.MRR < 0.95 || r.HR10 != 1 {
		t.Fatalf("near-perfect scorer: %+v", r)
	}
	if r.N == 0 {
		t.Fatal("no queries evaluated")
	}
}

func TestEvaluateRankingRespectsMaxQueries(t *testing.T) {
	p := DefaultProtocol()
	p.MaxQueries = 5
	r := EvaluateRanking(perfectScorer{next: map[string]int{}}, fastHarness.World, fastHarness.Test, p)
	if r.N != 5 {
		t.Fatalf("N = %d, want 5", r.N)
	}
}

func TestTableII(t *testing.T) {
	tab := fastHarness.RunTableII()
	if tab.Stats.Sessions == 0 || tab.Stats.Tags == 0 {
		t.Fatalf("stats = %+v", tab.Stats)
	}
	out := tab.String()
	for _, want := range []string{"Table II", "asc:", "sessions:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	skipUnderRace(t)
	tab := fastHarness.RunTableIII()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string]TableIIIRow{}
	for _, r := range tab.Rows {
		byName[r.Name] = r
		if r.F1 < 0 || r.F1 > 1 {
			t.Fatalf("F1 out of range: %+v", r)
		}
	}
	// Shape: the multi-task model must be competitive with the single-task
	// pair. The paper's ~3-point MT advantage reproduces at experiment
	// scale (see EXPERIMENTS.md / cmd/experiments); the 50x-smaller fast
	// world is below the effect's noise floor, so here we only guard
	// against MT being broken.
	if byName["MT model"].F1 < byName["ST model"].F1-0.08 {
		t.Fatalf("MT %.3f far below ST %.3f", byName["MT model"].F1, byName["ST model"].F1)
	}
	// Rules raise precision relative to the unfiltered MT model.
	if byName["MT model + r"].Precision < byName["MT model"].Precision {
		t.Fatalf("rules lowered precision: %.3f -> %.3f",
			byName["MT model"].Precision, byName["MT model + r"].Precision)
	}
	// The distilled student is faster than the teacher.
	if tab.Speedup <= 1 {
		t.Fatalf("speedup = %.2f", tab.Speedup)
	}
	if !strings.Contains(tab.String(), "Table III") {
		t.Fatal("formatting broken")
	}
}

func TestTableIVShape(t *testing.T) {
	skipUnderRace(t)
	tab := fastHarness.RunTableIV()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string]float64{}
	for _, r := range tab.Rows {
		byName[r.Name] = r.Report.MRR
		if r.Report.N == 0 {
			t.Fatalf("%s evaluated zero queries", r.Name)
		}
	}
	// Core claim of the paper: IntelliTag beats every baseline.
	for _, base := range []string{"GRU4Rec", "SR-GNN", "metapath2vec", "BERT4Rec"} {
		if byName["IntelliTag"] <= byName[base] {
			t.Fatalf("IntelliTag MRR %.3f <= %s MRR %.3f", byName["IntelliTag"], base, byName[base])
		}
	}
	if !strings.Contains(tab.String(), "NDCG@10") {
		t.Fatal("formatting broken")
	}
}

func TestTableVShape(t *testing.T) {
	skipUnderRace(t)
	tab := fastHarness.RunTableV()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string]float64{}
	for _, r := range tab.Rows {
		byName[r.Name] = r.Report.MRR
	}
	full := byName["IntelliTag"]
	// Removing contextual attention must hurt most (the paper's headline
	// ablation finding).
	ca := byName["IntelliTag w/o ca"]
	if ca >= full {
		t.Fatalf("w/o ca %.3f >= full %.3f", ca, full)
	}
	for _, v := range []string{"IntelliTag w/o na", "IntelliTag w/o ma"} {
		if ca > byName[v] {
			t.Fatalf("w/o ca %.3f should be the weakest (vs %s %.3f)", ca, v, byName[v])
		}
	}
}

func TestFig5Shape(t *testing.T) {
	fig := fastHarness.RunFig5()
	if len(fig.NeighborWeights) == 0 {
		t.Fatal("no neighbor weights")
	}
	var sum float64
	for _, w := range fig.NeighborWeights {
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("neighbor weights sum to %v", sum)
	}
	if len(fig.MetapathWeights) == 0 || len(fig.MetapathWeights[0]) != 4 {
		t.Fatalf("metapath weights shape wrong: %v", fig.MetapathWeights)
	}
	if len(fig.HeadWeights) == 0 {
		t.Fatal("no contextual attention heads")
	}
	n := len(fig.SessionLabels)
	if len(fig.HeadWeights[0]) != n {
		t.Fatalf("attention matrix %dx? vs %d labels", len(fig.HeadWeights[0]), n)
	}
	if !strings.Contains(fig.String(), "Fig 5(b)") {
		t.Fatal("formatting broken")
	}
}

func TestFig6Shape(t *testing.T) {
	skipUnderRace(t)
	fig := fastHarness.RunFig6()
	if len(fig.DimSweep) < 2 || len(fig.HeadSweep) < 2 {
		t.Fatalf("sweep sizes: %d, %d", len(fig.DimSweep), len(fig.HeadSweep))
	}
	for _, p := range append(fig.DimSweep, fig.HeadSweep...) {
		if p.MRR <= 0 || p.MRR > 1 {
			t.Fatalf("point %+v out of range", p)
		}
	}
	if !strings.Contains(fig.String(), "Fig 6(a)") {
		t.Fatal("formatting broken")
	}
}

func TestFig7AndTableVI(t *testing.T) {
	fig := fastHarness.RunFig7()
	if len(fig.Results) != 3 {
		t.Fatalf("buckets = %d", len(fig.Results))
	}
	names := map[string]bool{}
	for _, r := range fig.Results {
		names[r.Model] = true
		if len(r.Days) == 0 {
			t.Fatalf("%s has no days", r.Model)
		}
		if r.MeanMacroCTR() <= 0 {
			t.Fatalf("%s CTR = %v", r.Model, r.MeanMacroCTR())
		}
		if r.Latency.N == 0 {
			t.Fatalf("%s recorded no latency", r.Model)
		}
	}
	if !names["IntelliTag"] || !names["BERT4Rec"] || !names["metapath2vec"] {
		t.Fatalf("missing buckets: %v", names)
	}
	tab := fastHarness.RunTableVI(fig)
	if len(tab.Rows) != 3 {
		t.Fatalf("TableVI rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Latency <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
	if !strings.Contains(tab.String(), "Table VI") || !strings.Contains(fig.String(), "Fig 7") {
		t.Fatal("formatting broken")
	}
}

func TestHarnessCachesModels(t *testing.T) {
	a := fastHarness.IntelliTag()
	b := fastHarness.IntelliTag()
	if a != b {
		t.Fatal("IntelliTag retrained instead of cached")
	}
}

func TestHarnessSplitsDisjoint(t *testing.T) {
	ids := map[int]int{}
	for _, s := range fastHarness.Train {
		ids[s.ID]++
	}
	for _, s := range fastHarness.Test {
		ids[s.ID]++
	}
	for id, n := range ids {
		if n > 1 {
			t.Fatalf("session %d in multiple splits", id)
		}
	}
	_ = synth.SmallConfig() // keep the synth import for documentation value
}
