package eval

import (
	"math"

	"intellitag/internal/baselines"
	"intellitag/internal/core"
	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/synth"
	"intellitag/internal/tagmining"
	"intellitag/internal/textproc"
)

// Options configures the harness. Fast mode shrinks the world and epoch
// counts so the full suite runs in seconds (used by tests); the default
// reproduces the experiment-scale run of cmd/experiments.
type Options struct {
	World    synth.Config
	Rec      core.Config
	RecTrain core.TrainConfig
	Baseline baselines.TrainConfig
	Mining   tagmining.TrainConfig
	Protocol RankingProtocol
	FastMode bool
}

// DefaultOptions returns the experiment-scale configuration.
func DefaultOptions() Options {
	return Options{
		World:    synth.DefaultConfig(),
		Rec:      core.DefaultConfig(),
		RecTrain: core.DefaultTrainConfig(),
		Baseline: baselines.DefaultTrainConfig(),
		Mining:   tagmining.DefaultTrainConfig(),
		Protocol: DefaultProtocol(),
	}
}

// SetParallelism threads one batch size / worker count through every layer
// the harness drives: model training, baseline training, offline inference
// and the ranking sweep. batch <= 1 keeps per-sample training; workers <= 0
// selects all CPUs.
func (o *Options) SetParallelism(batch, workers int) {
	o.Rec.Workers = workers
	o.RecTrain.BatchSize = batch
	o.RecTrain.Workers = workers
	o.Baseline.BatchSize = batch
	o.Baseline.Workers = workers
	o.Protocol.Workers = workers
}

// FastOptions returns a configuration for quick runs and tests.
func FastOptions() Options {
	o := DefaultOptions()
	o.World = synth.SmallConfig()
	o.RecTrain.Epochs = 2
	o.Baseline.Epochs = 2
	o.Mining.Epochs = 5
	o.Protocol.MaxQueries = 300
	o.FastMode = true
	return o
}

// Harness owns the shared world, splits, graph and trained models. Models
// are trained lazily and cached so multiple experiments reuse them.
type Harness struct {
	Opts  Options
	World *synth.World

	Train, Val, Test []synth.Session
	Graph            *hetgraph.Graph
	trainClicks      [][]int
	trainPrefixes    [][]int
	tagFeatures      *mat.Matrix

	intelliTag   *core.Model
	intelliTagSt *core.Model
	gru4rec      *baselines.GRU4Rec
	bert4rec     *baselines.BERT4Rec
	srgnn        *baselines.SRGNN
	mp2v         *baselines.Metapath2Vec
}

// NewHarness generates the world and the training graph (built from the
// training split only, so test structure never leaks).
func NewHarness(opts Options) *Harness {
	w := synth.Generate(opts.World)
	train, val, test := w.SplitSessions(0.8, 0.1)
	h := &Harness{Opts: opts, World: w, Train: train, Val: val, Test: test}
	h.Graph = w.BuildGraph(train)
	for _, s := range train {
		h.trainClicks = append(h.trainClicks, s.Clicks)
	}
	// Every sequence model trains on the same expanded next-click prefixes.
	h.trainPrefixes = core.ExpandPrefixes(h.trainClicks)
	return h
}

// TrainClicks returns the training sessions as click sequences.
func (h *Harness) TrainClicks() [][]int { return h.trainClicks }

// TagFeatures returns text-derived node features for the graph encoder
// (Section VI-A3: "we generate 100-dimensional vectors as tag features by
// learning semantic information from a text perspective"), scaled to unit
// per-element variance.
func (h *Harness) TagFeatures() *mat.Matrix {
	if h.tagFeatures != nil {
		return h.tagFeatures
	}
	dim := h.Opts.Rec.Dim
	var docs [][]string
	for _, rq := range h.World.RQs {
		docs = append(docs, textproc.Tokenize(rq.Text))
	}
	embedder := textproc.NewEmbedder(dim, docs)
	feats := mat.New(h.World.NumTags(), dim)
	scale := math.Sqrt(float64(dim)) // unit row norm -> unit element variance
	for i, tag := range h.World.Tags {
		v := embedder.Embed(tag.Words)
		for j := range v {
			v[j] *= scale
		}
		feats.SetRow(i, v)
	}
	h.tagFeatures = feats
	return feats
}

// IntelliTag returns the end-to-end trained full model.
func (h *Harness) IntelliTag() *core.Model {
	if h.intelliTag == nil {
		m := core.Build(h.Opts.Rec, h.Graph, h.TagFeatures())
		core.TrainFull(m, h.Graph, h.trainPrefixes, h.Opts.RecTrain)
		h.intelliTag = m
	}
	return h.intelliTag
}

// IntelliTagSt returns the static two-stage variant.
func (h *Harness) IntelliTagSt() *core.Model {
	if h.intelliTagSt == nil {
		cfg := h.Opts.Rec
		cfg.Seed++ // independent initialization
		m := core.Build(cfg, h.Graph, h.TagFeatures())
		// Equal total budget with the end-to-end variant: the static
		// pipeline spends all its epochs on the (frozen-embedding) sequence
		// stage, where the full model splits them between the frozen stage
		// and the joint phase.
		tc := h.Opts.RecTrain
		joint := tc.JointEpochs
		if joint == 0 {
			joint = 2 * tc.Epochs
		}
		tc.Epochs += joint
		core.TrainStatic(m, h.Graph, h.trainPrefixes, tc)
		h.intelliTagSt = m
	}
	return h.intelliTagSt
}

// Ablation trains an IntelliTag variant with the given attention removed.
func (h *Harness) Ablation(mutate func(*core.Config)) *core.Model {
	cfg := h.Opts.Rec
	mutate(&cfg)
	var feats *mat.Matrix
	if cfg.Dim == h.Opts.Rec.Dim {
		feats = h.TagFeatures()
	}
	m := core.Build(cfg, h.Graph, feats)
	core.TrainFull(m, h.Graph, h.trainPrefixes, h.Opts.RecTrain)
	return m
}

// GRU4Rec returns the trained GRU4Rec baseline.
func (h *Harness) GRU4Rec() *baselines.GRU4Rec {
	if h.gru4rec == nil {
		m := baselines.NewGRU4Rec(h.World.NumTags(), h.Opts.Rec.Dim, h.Opts.Rec.Dim, h.Opts.Rec.MaxLen, 11)
		m.Train(h.trainPrefixes, h.Opts.Baseline)
		h.gru4rec = m
	}
	return h.gru4rec
}

// BERT4Rec returns the trained BERT4Rec baseline.
func (h *Harness) BERT4Rec() *baselines.BERT4Rec {
	if h.bert4rec == nil {
		m := baselines.NewBERT4Rec(h.World.NumTags(), h.Opts.Rec.Dim, h.Opts.Rec.Heads,
			h.Opts.Rec.Layers, h.Opts.Rec.MaxLen, h.Opts.Rec.MaskProb, 12)
		m.Train(h.trainPrefixes, h.Opts.Baseline)
		h.bert4rec = m
	}
	return h.bert4rec
}

// SRGNN returns the trained SR-GNN baseline.
func (h *Harness) SRGNN() *baselines.SRGNN {
	if h.srgnn == nil {
		m := baselines.NewSRGNN(h.World.NumTags(), h.Opts.Rec.Dim, 1, h.Opts.Rec.MaxLen, 13)
		m.Train(h.trainPrefixes, h.Opts.Baseline)
		h.srgnn = m
	}
	return h.srgnn
}

// Metapath2Vec returns the trained metapath2vec baseline.
func (h *Harness) Metapath2Vec() *baselines.Metapath2Vec {
	if h.mp2v == nil {
		cfg := baselines.DefaultMetapath2VecConfig()
		if h.Opts.FastMode {
			cfg.WalksPerNode = 6
		}
		h.mp2v = baselines.NewMetapath2Vec(h.Graph, h.Opts.Rec.Dim, h.trainClicks, cfg)
	}
	return h.mp2v
}
