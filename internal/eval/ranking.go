// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (Tables II-VI, Figures 5-7) on
// the synthetic world, with the same protocols — 49 same-tenant negatives
// for offline ranking, macro-averaged CTR over tenants for the online
// simulation — and formats the results as the paper reports them.
package eval

import (
	"intellitag/internal/mat"
	"intellitag/internal/metrics"
	"intellitag/internal/par"
	"intellitag/internal/synth"
)

// Scorer is the shared ranking interface (core.Model and all baselines).
type Scorer interface {
	ScoreCandidates(history []int, candidates []int) []float64
	Name() string
}

// RankingProtocol holds the offline evaluation settings of Section VI-A2.
type RankingProtocol struct {
	Negatives  int // 49 in the paper
	MaxQueries int // cap on evaluated prefixes (0 = all)
	Seed       int64
	// GlobalNegatives samples negatives from all tags instead of the
	// paper's same-tenant pool (the protocol-ablation extension).
	GlobalNegatives bool
	// Workers bounds the goroutines scoring queries (<= 0 selects all
	// CPUs). Queries and their negatives are generated sequentially first,
	// so the report is identical at every worker count; scorers that cannot
	// replicate themselves are evaluated sequentially regardless.
	Workers int
}

// DefaultProtocol returns the paper's protocol.
func DefaultProtocol() RankingProtocol {
	return RankingProtocol{Negatives: 49, MaxQueries: 0, Seed: 1234}
}

// EvaluateRanking ranks the true next click against sampled same-tenant
// negatives for every prefix of every test session, returning the paper's
// metric block. Tenants with too few tags fall back to global negatives, so
// every query ranks against exactly Negatives+1 candidates.
func EvaluateRanking(s Scorer, w *synth.World, sessions []synth.Session, p RankingProtocol) metrics.RankingReport {
	rng := mat.NewRNG(p.Seed)
	// Phase one: generate every query — prefix plus sampled candidate list —
	// sequentially, consuming the RNG stream exactly as the original
	// interleaved loop did (scoring draws nothing).
	type query struct {
		history    []int
		candidates []int
	}
	var queries []query
	tenantTags := map[int][]int{}
generate:
	for _, sess := range sessions {
		if len(sess.Clicks) < 2 {
			continue
		}
		pool, ok := tenantTags[sess.Tenant]
		if !ok {
			if p.GlobalNegatives {
				pool = make([]int, w.NumTags())
				for i := range pool {
					pool[i] = i
				}
			} else {
				pool = w.TagsOfTenant(sess.Tenant)
			}
			tenantTags[sess.Tenant] = pool
		}
		for i := 1; i < len(sess.Clicks); i++ {
			if p.MaxQueries > 0 && len(queries) >= p.MaxQueries {
				break generate
			}
			queries = append(queries, query{
				history:    sess.Clicks[:i],
				candidates: sampleNegatives(pool, w.NumTags(), sess.Clicks[i], p.Negatives, rng),
			})
		}
	}

	// Phase two: score the sweep on per-worker replicas, accumulating ranks
	// in query order so the report never depends on the schedule.
	scorers := scorerPool(s, par.Resolve(p.Workers))
	ranks := make([]int, len(queries))
	par.New(len(scorers)).ForWorker(len(queries), func(worker, i int) {
		scores := scorers[worker].ScoreCandidates(queries[i].history, queries[i].candidates)
		ranks[i] = metrics.RankOfTarget(scores, 0)
	})
	var acc metrics.RankingAccumulator
	for _, r := range ranks {
		acc.Observe(r)
	}
	return acc.Report()
}

// scorerPool returns one scorer per worker: replicas when the model supports
// them (core.Model, BERT4Rec), otherwise just the shared scorer — models
// with mutable forward caches cannot run concurrently, so they keep the
// sequential sweep.
func scorerPool(s Scorer, workers int) []Scorer {
	if workers <= 1 {
		return []Scorer{s}
	}
	rep, ok := s.(interface{ ScorerReplicas(n int) []any })
	if !ok {
		return []Scorer{s}
	}
	out := make([]Scorer, 0, workers)
	for _, r := range rep.ScorerReplicas(workers) {
		sc, ok := r.(Scorer)
		if !ok {
			return []Scorer{s}
		}
		out = append(out, sc)
	}
	return out
}

// sampleNegatives returns [target, neg1..negN]; negatives are drawn from the
// tenant pool without replacement, topping up globally when the pool is too
// small.
func sampleNegatives(pool []int, numTags, target, n int, rng *mat.RNG) []int {
	if n > numTags-1 {
		n = numTags - 1 // cannot sample more distinct negatives than exist
	}
	out := make([]int, 0, n+1)
	out = append(out, target)
	used := map[int]bool{target: true}
	perm := rng.Perm(len(pool))
	for _, pi := range perm {
		if len(out) == n+1 {
			break
		}
		c := pool[pi]
		if !used[c] {
			used[c] = true
			out = append(out, c)
		}
	}
	for len(out) < n+1 {
		c := rng.Intn(numTags)
		if !used[c] {
			used[c] = true
			out = append(out, c)
		}
	}
	return out
}
