package eval

import (
	"fmt"
	"strings"
	"time"

	"intellitag/internal/core"
	"intellitag/internal/mat"
	"intellitag/internal/metrics"
	"intellitag/internal/synth"
	"intellitag/internal/tagmining"
	"intellitag/internal/textproc"
)

// TableII reproduces the dataset-statistics table.
type TableII struct {
	Stats synth.Stats
}

// RunTableII summarizes the generated world.
func (h *Harness) RunTableII() TableII {
	return TableII{Stats: h.World.DatasetStats()}
}

// String formats the table like the paper's Table II.
func (t TableII) String() string {
	s := t.Stats
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: Statistics of the dataset (synthetic world)\n")
	fmt.Fprintf(&b, "  Tag Mining     | labeled sentences: %d\n", s.LabeledSentences)
	fmt.Fprintf(&b, "  Data Type      | T: %d  Q: %d  E: %d\n", s.Tags, s.RQs, s.Tenants)
	fmt.Fprintf(&b, "  Relation       | asc: %d  clk: %d  cst: %d  crl: %d\n", s.Asc, s.Clk, s.Cst, s.Crl)
	fmt.Fprintf(&b, "  Session Info   | sessions: %d  tag clicks: %d  average clicks: %.1f\n",
		s.Sessions, s.Clicks, s.AvgClicksPerSession)
	return b.String()
}

// TableIIIRow is one tag-mining configuration's result.
type TableIIIRow struct {
	Name          string
	Precision     float64
	Recall        float64
	F1            float64
	InferenceTime time.Duration
}

// TableIII reproduces the tag-mining comparison (ST vs MT vs MT+r vs
// MT+d+r).
type TableIII struct {
	Rows    []TableIIIRow
	Speedup float64 // teacher inference time / student inference time
}

// RunTableIII trains the single-task pair, the multi-task teacher and the
// distilled student, applies the rule filter, and evaluates span F1 plus
// inference time on the held-out sentences. At experiment scale the labeled
// training set is capped (the paper annotates ~54k of >2M questions, so the
// miner lives in an annotation-scarce regime), independent annotation noise
// is applied to the two label sets (human labels are imperfect; the
// cross-task denoising this enables is what the MT-vs-ST comparison
// measures), and every configuration is averaged over three training seeds.
func (h *Harness) RunTableIII() TableIII {
	sentences := h.World.LabeledSentences()
	cut := len(sentences) * 9 / 10
	if h.Opts.FastMode {
		// The small world has few RQs; a larger test share keeps the
		// evaluation from being dominated by a handful of sentences.
		cut = len(sentences) * 7 / 10
	}
	trainSet, testSet := sentences[:cut], sentences[cut:]
	seeds := []int64{17, 99, 31}
	// Annotation-scarce regime: ~2.5 labeled sentences per tag, matching
	// the paper's ratio of hand-annotated sentences to mined tags.
	if maxLabeled := 5 * h.World.NumTags() / 2; len(trainSet) > maxLabeled {
		trainSet = trainSet[:maxLabeled]
	}
	trainSet = synth.AddLabelNoise(trainSet, 0.15, 0.15, mat.NewRNG(h.Opts.World.Seed+5))
	vocab := tagmining.BuildVocab(trainSet)

	teacherCfg := tagmining.TeacherConfig()
	studentCfg := tagmining.StudentConfig()
	const threshold = 0.5

	var accum [4]TableIIIRow
	names := [4]string{"ST model", "MT model", "MT model + r", "MT model + d + r"}
	for _, seed := range seeds {
		mining := h.Opts.Mining
		mining.Seed = seed

		// Single-task pair: separate encoders per head.
		segCfg := teacherCfg
		segCfg.WeightHead = false
		segCfg.Seed = seed
		weightCfg := teacherCfg
		weightCfg.SegHead = false
		weightCfg.Seed = seed + 1
		segModel := tagmining.NewModel(segCfg, vocab)
		weightModel := tagmining.NewModel(weightCfg, vocab)
		tagmining.TrainMultiTask(segModel, trainSet, mining)
		tagmining.TrainMultiTask(weightModel, trainSet, mining)
		st := tagmining.Composite{Seg: segModel, Weight: weightModel}

		// Multi-task teacher.
		mtCfg := teacherCfg
		mtCfg.Seed = seed
		mt := tagmining.NewModel(mtCfg, vocab)
		tagmining.TrainMultiTask(mt, trainSet, mining)

		// Rule filter built from tags mined on the training corpus.
		var trainTokens [][]string
		for _, s := range trainSet {
			trainTokens = append(trainTokens, s.Tokens)
		}
		mined := tagmining.Extract(mt, trainTokens, threshold)
		stats := textproc.NewCorpusStats(trainTokens, 5)
		allowed := tagmining.AllowedSet(tagmining.ApplyRules(mined, stats, tagmining.DefaultRuleConfig()))

		// Distilled student (trained with rules applied downstream, as
		// deployed). Distillation is cheap per step — the student is small —
		// so it runs longer than teacher training, as is standard practice.
		stuCfg := studentCfg
		stuCfg.Seed = seed + 2
		student := tagmining.NewModel(stuCfg, vocab)
		distillCfg := mining
		distillCfg.Epochs *= 3
		tagmining.Distill(mt, student, trainSet, distillCfg, 2.0, 0.5)

		taggers := [4]tagmining.Tagger{st, mt, mt, student}
		filters := [4]map[string]bool{nil, nil, allowed, allowed}
		for i := range taggers {
			r := tagmining.EvaluateSpans(taggers[i], testSet, threshold, filters[i])
			accum[i].Precision += r.Precision
			accum[i].Recall += r.Recall
			accum[i].F1 += r.F1
			accum[i].InferenceTime += tagmining.MeasureInference(taggers[i], testSet)
		}
	}
	rows := make([]TableIIIRow, 4)
	n := float64(len(seeds))
	for i := range rows {
		rows[i] = TableIIIRow{
			Name:          names[i],
			Precision:     accum[i].Precision / n,
			Recall:        accum[i].Recall / n,
			F1:            accum[i].F1 / n,
			InferenceTime: accum[i].InferenceTime / time.Duration(len(seeds)),
		}
	}
	speedup := float64(rows[1].InferenceTime) / float64(rows[3].InferenceTime)
	return TableIII{Rows: rows, Speedup: speedup}
}

// String formats the table like the paper's Table III.
func (t TableIII) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: Performance comparison on tag mining task\n")
	fmt.Fprintf(&b, "  %-18s %10s %10s %10s %16s\n", "Training Mode", "Precision", "Recall", "F1 Score", "Inference Time")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-18s %9.2f%% %9.2f%% %9.2f%% %16s\n",
			r.Name, r.Precision*100, r.Recall*100, r.F1*100, r.InferenceTime.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "  distillation speedup: %.1fx\n", t.Speedup)
	return b.String()
}

// ModelRanking is one model's offline TagRec result (a Table IV / V row).
type ModelRanking struct {
	Name   string
	Report metrics.RankingReport
}

// TableIV reproduces the offline TagRec comparison.
type TableIV struct {
	Rows []ModelRanking
}

// RunTableIV trains all six models and evaluates the offline ranking
// protocol on the test sessions.
func (h *Harness) RunTableIV() TableIV {
	scorers := []Scorer{
		h.GRU4Rec(),
		h.SRGNN(),
		h.Metapath2Vec(),
		h.BERT4Rec(),
		namedScorer{h.IntelliTagSt(), "IntelliTag_st"},
		h.IntelliTag(),
	}
	var rows []ModelRanking
	for _, s := range scorers {
		rows = append(rows, ModelRanking{Name: s.Name(), Report: EvaluateRanking(s, h.World, h.Test, h.Opts.Protocol)})
	}
	return TableIV{Rows: rows}
}

// namedScorer overrides a scorer's display name (the static variant shares
// the IntelliTag type).
type namedScorer struct {
	Scorer
	name string
}

func (n namedScorer) Name() string { return n.name }

// String formats the table like the paper's Table IV.
func (t TableIV) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: Offline evaluation results on TagRec task\n")
	b.WriteString(rankingHeader())
	for _, r := range t.Rows {
		b.WriteString(rankingRow(r))
	}
	return b.String()
}

func rankingHeader() string {
	return fmt.Sprintf("  %-20s %7s %8s %8s %8s %8s %8s\n",
		"Model", "MRR", "NDCG@1", "NDCG@5", "NDCG@10", "HR@5", "HR@10")
}

func rankingRow(r ModelRanking) string {
	m := r.Report
	return fmt.Sprintf("  %-20s %7.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
		r.Name, m.MRR, m.NDCG1, m.NDCG5, m.NDCG10, m.HR5, m.HR10)
}

// TableV reproduces the attention ablation.
type TableV struct {
	Rows []ModelRanking
}

// RunTableV trains the three ablated variants and re-evaluates the full
// model.
func (h *Harness) RunTableV() TableV {
	ablations := []func(*core.Config){
		func(c *core.Config) { c.WithoutNeighborAttention = true },
		func(c *core.Config) { c.WithoutMetapathAttention = true },
		func(c *core.Config) { c.WithoutContextualAttention = true },
	}
	var rows []ModelRanking
	for _, mutate := range ablations {
		m := h.Ablation(mutate)
		rows = append(rows, ModelRanking{Name: m.Name(), Report: EvaluateRanking(m, h.World, h.Test, h.Opts.Protocol)})
	}
	full := h.IntelliTag()
	rows = append(rows, ModelRanking{Name: full.Name(), Report: EvaluateRanking(full, h.World, h.Test, h.Opts.Protocol)})
	return TableV{Rows: rows}
}

// String formats the table like the paper's Table V.
func (t TableV) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V: The influence of each attention\n")
	b.WriteString(rankingHeader())
	for _, r := range t.Rows {
		b.WriteString(rankingRow(r))
	}
	return b.String()
}

// TableVI reproduces the online HIR and latency comparison. It reuses the
// Figure 7 simulation results.
type TableVI struct {
	Rows []TableVIRow
}

// TableVIRow is one model's online service quality.
type TableVIRow struct {
	Name    string
	HIR     float64
	Latency time.Duration
}

// String formats the table like the paper's Table VI.
func (t TableVI) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI: Online HIR and response latency comparison\n")
	fmt.Fprintf(&b, "  %-20s %8s %16s\n", "Model", "HIR", "Latency (mean)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-20s %8.3f %16s\n", r.Name, r.HIR, r.Latency)
	}
	return b.String()
}
