package eval

import (
	"fmt"
	"strings"

	"intellitag/internal/core"
	"intellitag/internal/hetgraph"
	"intellitag/internal/mat"
	"intellitag/internal/serving"
	"intellitag/internal/store"
)

// Fig5 is the attention case study: heat-map data printed as labeled
// matrices (the paper renders the same values as images).
type Fig5 struct {
	// Neighbor attention of one tag under metapath TT.
	NeighborTag     string
	NeighborLabels  []string
	NeighborWeights []float64
	// Metapath preferences for several tags.
	MetapathTags    []string
	MetapathWeights [][]float64 // per tag: weights over {TT, TQT, TQQT, TQEQT}
	// Contextual attention: first-layer heads over one session.
	SessionLabels []string
	HeadWeights   [][][]float64 // per head: n x n attention
}

// RunFig5 extracts attention weights from the trained IntelliTag model.
func (h *Harness) RunFig5() Fig5 {
	m := h.IntelliTag()
	var fig Fig5

	// Pick the tag with the most TT neighbors as the case-study anchor
	// (the paper uses "Bluetooth").
	anchor, best := 0, -1
	for t := 0; t < h.Graph.NumTags; t++ {
		if n := len(h.Graph.CoClickedTags(hetgraph.NodeID(t))); n > best {
			anchor, best = t, n
		}
	}
	fig.NeighborTag = h.World.Tags[anchor].Phrase()
	// One Attention snapshot serves both introspection signals from a single
	// graph forward pass.
	ids, weights := m.Graph.Attention(anchor).NeighborWeights(hetgraph.TT)
	for i, id := range ids {
		fig.NeighborLabels = append(fig.NeighborLabels, h.World.Tags[id].Phrase())
		fig.NeighborWeights = append(fig.NeighborWeights, weights[i])
	}

	// Metapath preferences for the anchor and a few of its neighbors.
	sample := ids
	if len(sample) > 5 {
		sample = sample[:5]
	}
	for _, id := range sample {
		fig.MetapathTags = append(fig.MetapathTags, h.World.Tags[id].Phrase())
		fig.MetapathWeights = append(fig.MetapathWeights, m.Graph.Attention(id).MetapathWeights())
	}

	// Contextual attention over the longest test session.
	var session []int
	for _, s := range h.Test {
		if len(s.Clicks) > len(session) {
			session = s.Clicks
		}
	}
	if len(session) > m.Cfg.MaxLen-1 {
		session = session[:m.Cfg.MaxLen-1]
	}
	for _, c := range session {
		fig.SessionLabels = append(fig.SessionLabels, h.World.Tags[c].Phrase())
	}
	fig.SessionLabels = append(fig.SessionLabels, "[mask]")
	attn := m.ContextualAttention(session)
	if len(attn) > 0 {
		for _, headMat := range attn[0] { // layer 1, as the paper shows
			n := headMat.Rows
			rows := make([][]float64, n)
			for i := 0; i < n; i++ {
				rows[i] = append([]float64(nil), headMat.Row(i)...)
			}
			fig.HeadWeights = append(fig.HeadWeights, rows)
		}
	}
	return fig
}

// String renders the heat maps as text.
func (f Fig5) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5(a): neighbor attention (metapath TT) for tag %q\n", f.NeighborTag)
	for i, l := range f.NeighborLabels {
		fmt.Fprintf(&b, "  %-30s %.3f\n", l, f.NeighborWeights[i])
	}
	fmt.Fprintf(&b, "Fig 5(b): metapath attention {TT, TQT, TQQT, TQEQT}\n")
	for i, tag := range f.MetapathTags {
		fmt.Fprintf(&b, "  %-30s", tag)
		for _, w := range f.MetapathWeights[i] {
			fmt.Fprintf(&b, " %.3f", w)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "Fig 5(c)(d): contextual attention at layer 1 over session %v\n", f.SessionLabels)
	for hi, head := range f.HeadWeights {
		fmt.Fprintf(&b, "  head %d:\n", hi+1)
		for _, row := range head {
			b.WriteString("   ")
			for _, v := range row {
				fmt.Fprintf(&b, " %.2f", v)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Fig6Point is one hyperparameter setting's result.
type Fig6Point struct {
	Value  int // dimension or head count
	MRR    float64
	NDCG10 float64
	HR10   float64
}

// Fig6 is the hyperparameter sensitivity sweep.
type Fig6 struct {
	DimSweep  []Fig6Point
	HeadSweep []Fig6Point
}

// RunFig6 sweeps the embedding dimension and the attention head count,
// retraining the full model at each point. Sweep points train with a
// reduced epoch budget — the figure compares settings against each other,
// so only the relative ordering matters.
func (h *Harness) RunFig6() Fig6 {
	dims := []int{8, 16, 32, 64}
	heads := []int{1, 2, 4, 8}
	if h.Opts.FastMode {
		dims = []int{8, 16}
		heads = []int{2, 4}
	}
	sweepTrain := h.Opts.RecTrain
	sweepTrain.Epochs = max(1, sweepTrain.Epochs/2)
	sweepTrain.JointEpochs = sweepTrain.Epochs
	point := func(mutate func(*core.Config)) metricsPoint {
		cfg := h.Opts.Rec
		mutate(&cfg)
		var feats *mat.Matrix
		if cfg.Dim == h.Opts.Rec.Dim {
			feats = h.TagFeatures()
		}
		m := core.Build(cfg, h.Graph, feats)
		core.TrainFull(m, h.Graph, h.trainPrefixes, sweepTrain)
		r := EvaluateRanking(m, h.World, h.Test, h.Opts.Protocol)
		return metricsPoint{r.MRR, r.NDCG10, r.HR10}
	}
	var fig Fig6
	for _, d := range dims {
		p := point(func(c *core.Config) { c.Dim = d })
		fig.DimSweep = append(fig.DimSweep, Fig6Point{Value: d, MRR: p.mrr, NDCG10: p.ndcg, HR10: p.hr})
	}
	for _, hd := range heads {
		p := point(func(c *core.Config) { c.Heads = hd })
		fig.HeadSweep = append(fig.HeadSweep, Fig6Point{Value: hd, MRR: p.mrr, NDCG10: p.ndcg, HR10: p.hr})
	}
	return fig
}

type metricsPoint struct{ mrr, ndcg, hr float64 }

// String renders the sweep series.
func (f Fig6) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6(a): effectiveness vs embedding dimension\n")
	fmt.Fprintf(&b, "  %6s %8s %8s %8s\n", "dim", "MRR", "NDCG@10", "HR@10")
	for _, p := range f.DimSweep {
		fmt.Fprintf(&b, "  %6d %8.3f %8.3f %8.3f\n", p.Value, p.MRR, p.NDCG10, p.HR10)
	}
	fmt.Fprintf(&b, "Fig 6(b): effectiveness vs number of attention heads\n")
	fmt.Fprintf(&b, "  %6s %8s %8s %8s\n", "heads", "MRR", "NDCG@10", "HR@10")
	for _, p := range f.HeadSweep {
		fmt.Fprintf(&b, "  %6d %8.3f %8.3f %8.3f\n", p.Value, p.MRR, p.NDCG10, p.HR10)
	}
	return b.String()
}

// Fig7 is the online A/B simulation: daily macro CTR per bucket.
type Fig7 struct {
	Results []serving.SimResult
}

// RunFig7 builds one serving engine per model (IntelliTag, BERT4Rec,
// metapath2vec — the paper's three online buckets) and simulates the user
// population against each.
func (h *Harness) RunFig7() Fig7 {
	catalog, index := serving.BuildCatalog(h.World, h.Train)
	cfg := serving.DefaultSimConfig()
	if h.Opts.FastMode {
		cfg.Days = 3
		cfg.SessionsPerDay = 50
	}
	// The deployed IntelliTag serves from the frozen tag-embedding table
	// (Section V-B: offline GNN inference, no real-time graph layers).
	full := h.IntelliTag()
	full.Freeze()
	defer full.Unfreeze()
	scorers := []serving.Scorer{h.Metapath2Vec(), h.BERT4Rec(), full}
	var fig Fig7
	for _, s := range scorers {
		engine := serving.NewEngine(catalog, index, s, store.NewLog(), nil)
		fig.Results = append(fig.Results, serving.Simulate(h.World, engine, cfg))
	}
	return fig
}

// String renders the daily CTR series per bucket.
func (f Fig7) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: Online CTR (macro-averaged over tenants) by day\n")
	fmt.Fprintf(&b, "  %-20s", "day")
	if len(f.Results) > 0 {
		for d := range f.Results[0].Days {
			fmt.Fprintf(&b, " %6d", d+1)
		}
	}
	fmt.Fprintf(&b, " %8s\n", "mean")
	for _, r := range f.Results {
		fmt.Fprintf(&b, "  %-20s", r.Model)
		for _, d := range r.Days {
			fmt.Fprintf(&b, " %6.3f", d.MacroCTR)
		}
		fmt.Fprintf(&b, " %8.3f\n", r.MeanMacroCTR())
	}
	return b.String()
}

// RunTableVI derives the online HIR / latency table from Figure 7's
// simulation.
func (h *Harness) RunTableVI(fig Fig7) TableVI {
	var t TableVI
	for _, r := range fig.Results {
		t.Rows = append(t.Rows, TableVIRow{Name: r.Model, HIR: r.MeanHIR(), Latency: r.MeanLatency()})
	}
	return t
}
