//go:build race

package eval

const raceDetectorEnabled = true
