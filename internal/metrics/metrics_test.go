package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRankOfTarget(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5}
	if got := RankOfTarget(scores, 1); got != 1 {
		t.Fatalf("best target rank = %d", got)
	}
	if got := RankOfTarget(scores, 0); got != 3 {
		t.Fatalf("worst target rank = %d", got)
	}
	if got := RankOfTarget(scores, 2); got != 2 {
		t.Fatalf("mid target rank = %d", got)
	}
}

func TestRankOfTargetTiesFavorTarget(t *testing.T) {
	// Equal scores do not push the target down (strict > comparison).
	scores := []float64{0.5, 0.5, 0.5}
	if got := RankOfTarget(scores, 2); got != 1 {
		t.Fatalf("tied rank = %d", got)
	}
}

func TestMetricFunctions(t *testing.T) {
	if MRR(1) != 1 || MRR(4) != 0.25 {
		t.Fatal("MRR wrong")
	}
	if HRAt(5, 5) != 1 || HRAt(6, 5) != 0 {
		t.Fatal("HR wrong")
	}
	if NDCGAt(1, 5) != 1 {
		t.Fatalf("NDCG@5 rank 1 = %v", NDCGAt(1, 5))
	}
	if got := NDCGAt(2, 5); math.Abs(got-1/math.Log2(3)) > 1e-12 {
		t.Fatalf("NDCG@5 rank 2 = %v", got)
	}
	if NDCGAt(6, 5) != 0 {
		t.Fatal("NDCG beyond k must be 0")
	}
}

func TestRankingAccumulator(t *testing.T) {
	var acc RankingAccumulator
	acc.Observe(1)
	acc.Observe(10)
	r := acc.Report()
	if r.N != 2 {
		t.Fatalf("N = %d", r.N)
	}
	if math.Abs(r.MRR-(1+0.1)/2) > 1e-12 {
		t.Fatalf("MRR = %v", r.MRR)
	}
	if r.HR5 != 0.5 || r.HR10 != 1 {
		t.Fatalf("HR5 %v HR10 %v", r.HR5, r.HR10)
	}
	if r.NDCG1 != 0.5 {
		t.Fatalf("NDCG1 = %v", r.NDCG1)
	}
}

func TestRankingAccumulatorEmpty(t *testing.T) {
	var acc RankingAccumulator
	r := acc.Report()
	if r.N != 0 || r.MRR != 0 {
		t.Fatalf("empty report = %+v", r)
	}
}

// Property: all ranking metrics are within [0,1] and monotone in rank.
func TestRankingMetricsProperty(t *testing.T) {
	if err := quick.Check(func(r uint8) bool {
		rank := int(r)%50 + 1
		for _, v := range []float64{MRR(rank), HRAt(rank, 10), NDCGAt(rank, 10)} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return MRR(rank) >= MRR(rank+1) && NDCGAt(rank, 10) >= NDCGAt(rank+1, 10)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSetPRF1(t *testing.T) {
	r := SetPRF1([]string{"a", "b", "c"}, []string{"b", "c", "d"})
	if r.TP != 2 || r.FP != 1 || r.FN != 1 {
		t.Fatalf("counts = %+v", r)
	}
	if math.Abs(r.Precision-2.0/3) > 1e-12 || math.Abs(r.Recall-2.0/3) > 1e-12 {
		t.Fatalf("P/R = %v/%v", r.Precision, r.Recall)
	}
	if math.Abs(r.F1-2.0/3) > 1e-12 {
		t.Fatalf("F1 = %v", r.F1)
	}
}

func TestSetPRF1Empty(t *testing.T) {
	r := SetPRF1[string](nil, nil)
	if r.F1 != 0 || r.Precision != 0 || r.Recall != 0 {
		t.Fatalf("empty = %+v", r)
	}
	perfect := SetPRF1([]int{1, 2}, []int{1, 2})
	if perfect.F1 != 1 {
		t.Fatalf("perfect F1 = %v", perfect.F1)
	}
}

func TestSetPRF1DedupesPredictions(t *testing.T) {
	r := SetPRF1([]string{"a", "a", "a"}, []string{"a"})
	if r.TP != 1 || r.FP != 0 {
		t.Fatalf("dup handling = %+v", r)
	}
}

func TestAccumulatePRF1(t *testing.T) {
	parts := []PRF1{
		{TP: 1, FP: 1, FN: 0},
		{TP: 1, FP: 0, FN: 1},
	}
	r := AccumulatePRF1(parts)
	if r.TP != 2 || r.FP != 1 || r.FN != 1 {
		t.Fatalf("merged = %+v", r)
	}
	if math.Abs(r.Precision-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", r.Precision)
	}
}

func TestCTRAndHIR(t *testing.T) {
	if CTR(3, 10) != 0.3 || CTR(0, 0) != 0 {
		t.Fatal("CTR wrong")
	}
	if HIR(1, 4) != 0.25 || HIR(1, 0) != 0 {
		t.Fatal("HIR wrong")
	}
}

func TestMacroAvg(t *testing.T) {
	if MacroAvg(nil) != 0 {
		t.Fatal("empty MacroAvg")
	}
	if got := MacroAvg([]float64{0.2, 0.4}); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MacroAvg = %v", got)
	}
}

func TestSummarizeLatency(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	s := SummarizeLatency(samples)
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
	if s.P50 < 49*time.Millisecond || s.P50 > 52*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P95 < 94*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Fatalf("P95 %v P99 %v", s.P95, s.P99)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", s.Mean)
	}
}

func TestSummarizeLatencyEmpty(t *testing.T) {
	if s := SummarizeLatency(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty = %+v", s)
	}
}

func TestSummarizeLatencyDoesNotMutateInput(t *testing.T) {
	samples := []time.Duration{3, 1, 2}
	SummarizeLatency(samples)
	if samples[0] != 3 {
		t.Fatal("input mutated")
	}
}
