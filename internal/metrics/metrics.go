// Package metrics implements the evaluation metrics of the paper's Section
// VI-A2: MRR, NDCG@K and HR@K under the 49-negative ranking protocol for
// TagRec, precision/recall/F1 for tag mining, and the online indicators CTR,
// HIR and latency percentiles.
package metrics

import (
	"math"
	"sort"
	"time"
)

// RankOfTarget returns the 1-based rank of the target item among candidates
// when sorted by descending score (ties broken by candidate order). The
// target is identified by its index in the scores slice.
func RankOfTarget(scores []float64, targetIdx int) int {
	rank := 1
	for i, s := range scores {
		if i == targetIdx {
			continue
		}
		if s > scores[targetIdx] {
			rank++
		}
	}
	return rank
}

// MRR returns the reciprocal rank for a single ranked query.
func MRR(rank int) float64 { return 1 / float64(rank) }

// HRAt returns 1 if the target rank is within k, else 0 (hit ratio).
func HRAt(rank, k int) float64 {
	if rank <= k {
		return 1
	}
	return 0
}

// NDCGAt returns the normalized discounted cumulative gain at k for a single
// relevant item: 1/log2(rank+1) when rank <= k, else 0 (the ideal DCG for
// one relevant item is 1).
func NDCGAt(rank, k int) float64 {
	if rank > k {
		return 0
	}
	return 1 / math.Log2(float64(rank)+1)
}

// RankingReport aggregates the paper's Table IV metric block.
type RankingReport struct {
	MRR    float64
	NDCG1  float64
	NDCG5  float64
	NDCG10 float64
	HR5    float64
	HR10   float64
	N      int
}

// RankingAccumulator builds a RankingReport from per-query ranks.
type RankingAccumulator struct {
	sum RankingReport
}

// Observe records one query's target rank.
func (a *RankingAccumulator) Observe(rank int) {
	a.sum.MRR += MRR(rank)
	a.sum.NDCG1 += NDCGAt(rank, 1)
	a.sum.NDCG5 += NDCGAt(rank, 5)
	a.sum.NDCG10 += NDCGAt(rank, 10)
	a.sum.HR5 += HRAt(rank, 5)
	a.sum.HR10 += HRAt(rank, 10)
	a.sum.N++
}

// Report returns the mean metrics over all observed queries.
func (a *RankingAccumulator) Report() RankingReport {
	r := a.sum
	if r.N == 0 {
		return r
	}
	n := float64(r.N)
	r.MRR /= n
	r.NDCG1 /= n
	r.NDCG5 /= n
	r.NDCG10 /= n
	r.HR5 /= n
	r.HR10 /= n
	return r
}

// PRF1 holds precision, recall and F1.
type PRF1 struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

// SetPRF1 computes precision/recall/F1 between predicted and gold item sets
// (exact match), the tag mining evaluation of Table III.
func SetPRF1[T comparable](pred, gold []T) PRF1 {
	goldSet := map[T]bool{}
	for _, g := range gold {
		goldSet[g] = true
	}
	predSet := map[T]bool{}
	for _, p := range pred {
		predSet[p] = true
	}
	var r PRF1
	for p := range predSet {
		if goldSet[p] {
			r.TP++
		} else {
			r.FP++
		}
	}
	for g := range goldSet {
		if !predSet[g] {
			r.FN++
		}
	}
	return finishPRF1(r)
}

// AccumulatePRF1 merges raw counts from multiple PRF1 observations into one
// micro-averaged result.
func AccumulatePRF1(parts []PRF1) PRF1 {
	var r PRF1
	for _, p := range parts {
		r.TP += p.TP
		r.FP += p.FP
		r.FN += p.FN
	}
	return finishPRF1(r)
}

func finishPRF1(r PRF1) PRF1 {
	if r.TP+r.FP > 0 {
		r.Precision = float64(r.TP) / float64(r.TP+r.FP)
	}
	if r.TP+r.FN > 0 {
		r.Recall = float64(r.TP) / float64(r.TP+r.FN)
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}

// CTR is the click-through rate: clicks / impressions (0 when no
// impressions).
func CTR(clicks, impressions int) float64 {
	if impressions == 0 {
		return 0
	}
	return float64(clicks) / float64(impressions)
}

// MacroAvg returns the unweighted mean of per-group values, the macro
// average the paper applies to per-tenant CTR (Section VI-F).
func MacroAvg(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// HIR is the human intervention rate: escalations / sessions.
func HIR(escalations, sessions int) float64 {
	if sessions == 0 {
		return 0
	}
	return float64(escalations) / float64(sessions)
}

// LatencyStats summarizes a latency sample.
type LatencyStats struct {
	Mean, P50, P95, P99 time.Duration
	N                   int
}

// SummarizeLatency computes mean and percentiles of a latency sample.
func SummarizeLatency(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	q := func(p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return LatencyStats{
		Mean: sum / time.Duration(len(sorted)),
		P50:  q(0.50),
		P95:  q(0.95),
		P99:  q(0.99),
		N:    len(sorted),
	}
}
