package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.Start(context.Background(), "root")
	if span != nil {
		t.Fatal("nil tracer returned a span")
	}
	if ctx != context.Background() {
		t.Fatal("nil tracer changed the context")
	}
	span.End() // must not panic
	if trees := tr.Trees(10); trees != nil {
		t.Fatalf("nil tracer has trees: %v", trees)
	}
	if slow := tr.Slowest(10); slow != nil {
		t.Fatalf("nil tracer has slow exemplars: %v", slow)
	}
}

// TestSpanTreeIntegrity builds the serve-path shape — click with a recommend
// child that itself scores, plus a sibling retrieve — and asserts the
// committed tree preserves parent/child structure and ordering.
func TestSpanTreeIntegrity(t *testing.T) {
	tr := NewTracer(1, 8) // sample everything
	ctx, root := tr.Start(context.Background(), "click")
	if root == nil {
		t.Fatal("every=1 tracer did not sample the root")
	}
	rctx, rec := tr.Start(ctx, "recommend")
	_, score := tr.Start(rctx, "score")
	score.End()
	rec.End()
	_, retr := tr.Start(ctx, "retrieve")
	retr.End()
	root.End()

	trees := tr.Trees(0)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	got := trees[0]
	if got.Name != "click" {
		t.Fatalf("root name %q, want click", got.Name)
	}
	if len(got.Children) != 2 || got.Children[0].Name != "recommend" || got.Children[1].Name != "retrieve" {
		t.Fatalf("root children wrong: %+v", got.Children)
	}
	recTree := got.Children[0]
	if len(recTree.Children) != 1 || recTree.Children[0].Name != "score" {
		t.Fatalf("recommend children wrong: %+v", recTree.Children)
	}
	if len(got.Children[1].Children) != 0 {
		t.Fatalf("retrieve should be a leaf: %+v", got.Children[1])
	}
	// Offsets are relative to the root start, so they are monotone down the
	// tree and no child starts before its parent.
	if recTree.StartOffsetMicros < 0 || recTree.Children[0].StartOffsetMicros < recTree.StartOffsetMicros {
		t.Fatalf("child starts before parent: %+v", got)
	}
	if got.DurationMicros < 0 {
		t.Fatalf("negative root duration: %+v", got)
	}
}

func TestTracerSamplingRate(t *testing.T) {
	tr := NewTracer(4, 4096)
	sampled := 0
	const reqs = 4000
	for i := 0; i < reqs; i++ {
		_, s := tr.Start(context.Background(), "req")
		if s != nil {
			sampled++
			s.End()
		}
	}
	// The counter is hash-mixed, so the rate is 1-in-4 on average rather
	// than exactly every 4th; 4000 draws at p=1/4 stay well inside ±20%.
	if lo, hi := reqs/4*8/10, reqs/4*12/10; sampled < lo || sampled > hi {
		t.Fatalf("sampled %d of %d at 1-in-4, want within [%d, %d]", sampled, reqs, lo, hi)
	}
	if got := len(tr.Trees(0)); got != sampled {
		t.Fatalf("ring holds %d trees, want %d", got, sampled)
	}
}

// TestTracerSamplingNoPhaseLock reproduces the serve-path pathology: a
// workload making a fixed stride of parentless Starts per request (here 4,
// dividing every=16) must still sample every operation name over time, not
// lock onto one.
func TestTracerSamplingNoPhaseLock(t *testing.T) {
	tr := NewTracer(16, 4096)
	names := []string{"click", "recommend", "score", "retrieve"}
	for i := 0; i < 4000; i++ {
		_, s := tr.Start(context.Background(), names[i%len(names)])
		s.End()
	}
	seen := map[string]int{}
	for _, tree := range tr.Trees(0) {
		seen[tree.Name]++
	}
	for _, n := range names {
		if seen[n] == 0 {
			t.Fatalf("sampler phase-locked: %q never sampled in %v", n, seen)
		}
	}
}

func TestTracerRingNewestFirstAndEviction(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 6; i++ {
		_, s := tr.Start(context.Background(), fmt.Sprintf("req-%d", i))
		s.End()
	}
	trees := tr.Trees(0)
	if len(trees) != 4 {
		t.Fatalf("ring of 4 holds %d trees", len(trees))
	}
	for i, want := range []string{"req-5", "req-4", "req-3", "req-2"} {
		if trees[i].Name != want {
			t.Fatalf("trees[%d] = %q, want %q (newest first)", i, trees[i].Name, want)
		}
	}
	if limited := tr.Trees(2); len(limited) != 2 || limited[0].Name != "req-5" {
		t.Fatalf("limit=2 returned %+v", limited)
	}
}

// endAfter closes a sampled root as if it had run for d: the start stamp is
// rewound before End so the recorded duration is d plus scheduler noise —
// deterministic enough to order exemplars spaced tens of milliseconds apart.
func endAfter(s *Span, d time.Duration) {
	s.start = time.Now().Add(-d)
	s.End()
}

// TestSlowestExemplars pins the slow-request exemplar ring: per route only
// the K slowest sampled roots survive, the combined view is slowest-first,
// and eviction drops the fastest exemplar — so a burst of quick requests can
// never wash out the slow ones the way the newest-first ring does.
func TestSlowestExemplars(t *testing.T) {
	tr := NewTracer(1, 4) // tiny ring: exemplars must outlive ring eviction
	// 12 click roots at 10..120ms; only the slowest 8 (50..120ms) may remain.
	for i := 1; i <= 12; i++ {
		ctx, root := tr.Start(context.Background(), "click")
		_, child := tr.Start(ctx, "score")
		child.End()
		endAfter(root, time.Duration(i)*10*time.Millisecond)
	}
	// 3 recommend roots, all faster than every retained click.
	for i := 1; i <= 3; i++ {
		_, root := tr.Start(context.Background(), "recommend")
		endAfter(root, time.Duration(i)*time.Millisecond)
	}

	slow := tr.Slowest(0)
	if len(slow) != defaultSlowK+3 {
		t.Fatalf("got %d exemplars, want %d clicks + 3 recommends", len(slow), defaultSlowK)
	}
	byRoute := map[string]int{}
	for i, s := range slow {
		byRoute[s.Route]++
		if i > 0 && s.DurationMicros > slow[i-1].DurationMicros {
			t.Fatalf("exemplars not slowest-first at %d: %v then %v", i, slow[i-1].DurationMicros, s.DurationMicros)
		}
	}
	if byRoute["click"] != defaultSlowK || byRoute["recommend"] != 3 {
		t.Fatalf("per-route counts wrong: %v", byRoute)
	}
	// The slowest click survived with its span tree intact, and the four
	// fastest clicks (10..40ms) were evicted.
	if slow[0].Route != "click" || slow[0].DurationMicros < 115_000 {
		t.Fatalf("slowest exemplar wrong: %+v", slow[0])
	}
	if len(slow[0].Tree.Children) != 1 || slow[0].Tree.Children[0].Name != "score" {
		t.Fatalf("exemplar lost its span tree: %+v", slow[0].Tree)
	}
	for _, s := range slow {
		if s.Route == "click" && s.DurationMicros < 45_000 {
			t.Fatalf("evicted click survived: %+v", s)
		}
	}
	if limited := tr.Slowest(2); len(limited) != 2 || limited[0].DurationMicros < limited[1].DurationMicros {
		t.Fatalf("limit=2 returned %+v", limited)
	}
}

// TestTraceHandlerSlowest pins the HTTP surface: ?slowest=1 serves the
// exemplar view, the default view still serves the newest-first ring.
func TestTraceHandlerSlowest(t *testing.T) {
	tr := NewTracer(1, 8)
	_, root := tr.Start(context.Background(), "click")
	endAfter(root, 30*time.Millisecond)
	_, root = tr.Start(context.Background(), "recommend")
	endAfter(root, 10*time.Millisecond)

	srv := httptest.NewServer(TraceHandler(tr))
	defer srv.Close()
	get := func(url string) map[string]any {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
		return m
	}

	slow := get(srv.URL + "?slowest=1")
	list, ok := slow["slowest"].([]any)
	if !ok || len(list) != 2 {
		t.Fatalf("?slowest=1 returned %v", slow)
	}
	first, ok := list[0].(map[string]any)
	if !ok || first["route"] != "click" {
		t.Fatalf("slowest-first order wrong: %v", list)
	}
	if limited := get(srv.URL + "?slowest=1&limit=1"); len(limited["slowest"].([]any)) != 1 {
		t.Fatalf("limit ignored in slowest view: %v", limited)
	}
	if plain := get(srv.URL); plain["traces"] == nil {
		t.Fatalf("default view lost traces: %v", plain)
	}
}

// TestTracerConcurrent attaches children from many goroutines under one root
// and commits roots concurrently; -race validates the locking, and the child
// count proves no attachment was lost.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1, 128)
	ctx, root := tr.Start(context.Background(), "root")
	const workers = 8
	const perW = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				_, s := tr.Start(ctx, "child")
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()

	trees := tr.Trees(0)
	if len(trees) != 1 || trees[0].Name != "root" {
		t.Fatalf("expected just the root tree, got %+v", trees)
	}
	if got := len(trees[0].Children); got != workers*perW {
		t.Fatalf("root has %d children, want %d", got, workers*perW)
	}

	// Fresh roots committed from many goroutines while Trees reads the ring;
	// -race validates the ring locking.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				_, s := tr.Start(context.Background(), "solo")
				s.End()
				tr.Trees(4)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Trees(0)); got != 128 {
		t.Fatalf("ring should be full with 128 trees, got %d", got)
	}
}
