// Package obs is the telemetry spine of the serving and training stack
// (Section V runs IntelliTag as a monitored production service; this package
// is the reproduction's monitoring layer). It provides three pieces, all on
// the standard library alone:
//
//   - a concurrent metrics Registry of counters, gauges and fixed-bucket
//     latency histograms, exposed in Prometheus text format and snapshotable
//     as JSON;
//   - request-scoped span tracing (trace.go): context-propagated, sampled,
//     with completed span trees retained in a ring buffer for /debug/trace;
//   - structured JSONL run logs (runlog.go) for the offline T+1 jobs.
//
// Every instrument is safe for concurrent use and nil-safe: methods on a nil
// *Counter, *Gauge, *Histogram, *Tracer or *Span are no-ops, so hot paths can
// hold unconditional instrument pointers and pay nothing when telemetry is
// disabled.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets are the default request-latency bucket upper bounds in
// seconds: 100µs to 2.5s, roughly logarithmic — wide enough to place both a
// memoized recommend (µs) and a cold model-scored one (ms) with usable
// p99 resolution.
var DefLatencyBuckets = []float64{
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// Histogram is a fixed-bucket histogram with lock-free observation. Bucket
// counts are non-cumulative internally and cumulated at exposition time.
type Histogram struct {
	family string // metric name without labels
	labels string // rendered label pairs, "" when unlabeled
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the extra slot is the +Inf bucket
	sum    atomicFloat
	total  atomic.Int64
}

// atomicFloat accumulates float64 additions with a CAS loop.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the p-quantile (0 <= p <= 1) by linear interpolation
// within the bucket containing the target rank. Samples beyond the last
// finite bound are reported as that bound — the histogram cannot resolve
// further.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := p * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) < target {
			cum += c
			continue
		}
		if i >= len(h.bounds) { // overflow bucket
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(target-float64(cum))/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a concurrent collection of named instruments. Series identity
// is the metric name plus its sorted label pairs; the first caller creates a
// series and later callers receive the same instrument. A nil *Registry
// returns nil instruments, whose methods are no-ops — so wiring telemetry
// through a code path costs nothing when no registry is installed.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	kinds    map[string]string // family -> kind, guards cross-kind reuse
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		kinds:    map[string]string{},
	}
}

// renderLabels canonicalizes label pairs ("k1", "v1", "k2", "v2", ...) into
// `k1="v1",k2="v2"` with keys sorted, so the same logical series is one
// series regardless of argument order.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// checkKind registers the family's kind, panicking on a cross-kind collision
// (a programming error that would emit an invalid exposition).
func (r *Registry) checkKind(name, kind string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic("obs: metric " + name + " registered as both " + prev + " and " + kind)
	}
	r.kinds[name] = kind
}

// Counter returns the counter for name and label pairs, creating it on first
// use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, renderLabels(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "counter")
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge for name and label pairs, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, renderLabels(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "gauge")
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram for name and label pairs, creating it with
// the given bucket upper bounds (ascending; nil selects DefLatencyBuckets).
// An existing series keeps its original buckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	rendered := renderLabels(labels)
	key := seriesKey(name, rendered)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "histogram")
	h, ok := r.hists[key]
	if !ok {
		if buckets == nil {
			buckets = DefLatencyBuckets
		}
		bounds := append([]float64(nil), buckets...)
		h = &Histogram{
			family: name,
			labels: rendered,
			bounds: bounds,
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[key] = h
	}
	return h
}

// family extracts the metric family from a series key.
func family(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// sortedKeys returns m's keys ordered by (family, full series) so one family's
// series are contiguous and each TYPE header is emitted exactly once.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		fi, fj := family(keys[i]), family(keys[j])
		if fi != fj {
			return fi < fj
		}
		return keys[i] < keys[j]
	})
	return keys
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): a `# TYPE` header per family, counter and gauge
// series as `name{labels} value`, histograms as cumulative `_bucket` series
// plus `_sum` and `_count`. The output is rendered into a buffer and written
// with a single Write, so a partial write never leaves a torn exposition.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var buf bytes.Buffer
	r.mu.Lock()
	lastFamily := ""
	for _, k := range sortedKeys(r.counters) {
		if f := family(k); f != lastFamily {
			fmt.Fprintf(&buf, "# TYPE %s counter\n", f)
			lastFamily = f
		}
		fmt.Fprintf(&buf, "%s %d\n", k, r.counters[k].Value())
	}
	for _, k := range sortedKeys(r.gauges) {
		if f := family(k); f != lastFamily {
			fmt.Fprintf(&buf, "# TYPE %s gauge\n", f)
			lastFamily = f
		}
		fmt.Fprintf(&buf, "%s %g\n", k, r.gauges[k].Value())
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		if h.family != lastFamily {
			fmt.Fprintf(&buf, "# TYPE %s histogram\n", h.family)
			lastFamily = h.family
		}
		sep := ""
		if h.labels != "" {
			sep = ","
		}
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(&buf, "%s_bucket{%s%sle=%q} %d\n", h.family, h.labels, sep, formatBound(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(&buf, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.family, h.labels, sep, cum)
		fmt.Fprintf(&buf, "%s_sum{%s} %g\n", h.family, h.labels, h.Sum())
		fmt.Fprintf(&buf, "%s_count{%s} %d\n", h.family, h.labels, h.Count())
	}
	r.mu.Unlock()
	_, err := w.Write(buf.Bytes())
	return err
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

// HistogramSnapshot is one histogram's JSON summary.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is the JSON form of the whole registry, keyed by rendered series
// name.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every series' current value, with p50/p95/p99 readouts
// for histograms.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
	}
	return s
}
