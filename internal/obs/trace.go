package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// defaultSlowK is how many slowest sampled roots each route retains for the
// /debug/trace?slowest=1 exemplar view.
const defaultSlowK = 8

// Tracer samples request-scoped span trees. One request in `every` on
// average becomes a root span (see sample for why it is not exactly every
// Nth); child spans started under a sampled context attach to the tree
// unconditionally. Completed root trees land in a fixed-size ring
// buffer served by /debug/trace, and the K slowest completed roots per route
// (root span name) are retained separately as slow-request exemplars — an SLO
// breach in a load run links straight to the span trees of the requests that
// caused it. A nil *Tracer samples nothing and costs one nil check per Start.
type Tracer struct {
	every int64
	reqs  atomic.Int64
	slowK int // per-route exemplar count, fixed at construction

	mu   sync.Mutex
	ring []*Span
	next int
	size int
	slow map[string][]*Span // route -> completed roots, ascending by duration
}

// NewTracer returns a tracer sampling one root in `every` Start calls that
// have no parent span, retaining the last `capacity` completed trees plus the
// defaultSlowK slowest roots per route.
func NewTracer(every, capacity int) *Tracer {
	if every < 1 {
		every = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		every: int64(every),
		ring:  make([]*Span, capacity),
		slowK: defaultSlowK,
		slow:  map[string][]*Span{},
	}
}

// Span is one timed operation in a sampled request tree.
type Span struct {
	name   string
	start  time.Time
	end    time.Time
	tracer *Tracer // set on roots only; End records the tree into the ring

	mu       sync.Mutex
	children []*Span
}

type spanCtxKey struct{}

// notSampled marks a context whose request already lost the sampling draw,
// so operations nested under an unsampled entry point do not re-draw and
// root trees of their own. Without it, sampling is per-Start rather than
// per-request, and the draw outcomes feed back into which operation the
// counter lands on — under the simulator's fixed click/recommend/score/
// retrieve call cycle that feedback locked the sampler onto inner spans and
// the flagship click tree was never captured.
var notSampled = &Span{}

// Start begins a span named name. If ctx already carries a sampled span, the
// new span is its child; otherwise this call is a request entry point and
// the tracer draws the 1-in-every sampling decision for the whole request.
// Losing the draw stamps ctx so nested Starts inherit the decision (one
// context allocation per unsampled request); a nil tracer returns ctx
// unchanged and a nil span, allocating nothing.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		if parent == notSampled {
			return ctx, nil
		}
		s := &Span{name: name, start: time.Now()}
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
		return context.WithValue(ctx, spanCtxKey{}, s), s
	}
	if !t.sample() {
		return context.WithValue(ctx, spanCtxKey{}, notSampled), nil
	}
	s := &Span{name: name, start: time.Now(), tracer: t}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// sample decides whether the current request roots a tree: the request
// counter is bit-mixed (a murmur3-style finalizer) before the 1-in-every
// modulo, giving a 1/every rate on average. A plain `count % every` samples
// deterministically every Nth request, which phase-locks onto a single
// operation whenever a workload interleaves request types with a period
// sharing a factor with `every` (e.g. alternating ask/click at any even
// sampling rate would only ever trace asks).
func (t *Tracer) sample() bool {
	n := uint64(t.reqs.Add(1))
	n ^= n >> 33
	n *= 0xff51afd7ed558ccd
	n ^= n >> 33
	return n%uint64(t.every) == 0
}

// End closes the span. Root spans are committed to their tracer's ring. Safe
// on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.end = time.Now()
	if s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	t.noteSlow(s)
	t.mu.Unlock()
}

// noteSlow offers a completed root to its route's slow-exemplar list, kept
// ascending by duration and capped at slowK. Called with t.mu held.
func (t *Tracer) noteSlow(s *Span) {
	d := s.end.Sub(s.start)
	q := t.slow[s.name]
	if len(q) >= t.slowK {
		if d <= q[0].end.Sub(q[0].start) {
			return // faster than every retained exemplar
		}
		q = q[1:] // evict the fastest
	}
	i := len(q)
	for i > 0 && q[i-1].end.Sub(q[i-1].start) > d {
		i--
	}
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = s
	t.slow[s.name] = q
}

// SpanTree is the JSON form of a completed span and its children. Offsets are
// relative to the tree's root start, so per-stage timing reads directly.
type SpanTree struct {
	Name              string     `json:"name"`
	StartOffsetMicros int64      `json:"start_offset_us"`
	DurationMicros    int64      `json:"duration_us"`
	Children          []SpanTree `json:"children,omitempty"`
}

// Trees returns up to limit recent completed span trees, newest first.
// limit <= 0 means all retained trees.
func (t *Tracer) Trees(limit int) []SpanTree {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := make([]*Span, 0, t.size)
	for i := 0; i < t.size; i++ {
		// newest first: walk backwards from the slot before next
		idx := (t.next - 1 - i + len(t.ring)*2) % len(t.ring)
		if t.ring[idx] != nil {
			roots = append(roots, t.ring[idx])
		}
	}
	t.mu.Unlock()
	if limit > 0 && len(roots) > limit {
		roots = roots[:limit]
	}
	out := make([]SpanTree, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.tree(r.start))
	}
	return out
}

// SlowTree is one slow-request exemplar: a route's sampled root span tree
// with its total duration, served by /debug/trace?slowest=1.
type SlowTree struct {
	Route          string   `json:"route"`
	DurationMicros int64    `json:"duration_us"`
	Tree           SpanTree `json:"tree"`
}

// Slowest returns up to limit retained slow-request exemplars across all
// routes, slowest first (ties broken by route name so the order is
// deterministic). limit <= 0 means all. Exemplars are drawn from sampled
// requests only — an unsampled slow request leaves no span to retain.
func (t *Tracer) Slowest(limit int) []SlowTree {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	routes := make([]string, 0, len(t.slow))
	for route := range t.slow {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	var roots []*Span
	for _, route := range routes {
		roots = append(roots, t.slow[route]...)
	}
	t.mu.Unlock()
	out := make([]SlowTree, 0, len(roots))
	for _, r := range roots {
		out = append(out, SlowTree{
			Route:          r.name,
			DurationMicros: r.end.Sub(r.start).Microseconds(),
			Tree:           r.tree(r.start),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DurationMicros != out[j].DurationMicros {
			return out[i].DurationMicros > out[j].DurationMicros
		}
		return out[i].Route < out[j].Route
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func (s *Span) tree(rootStart time.Time) SpanTree {
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	end := s.end
	if end.IsZero() { // child still open when the root was committed
		end = s.start
	}
	node := SpanTree{
		Name:              s.name,
		StartOffsetMicros: s.start.Sub(rootStart).Microseconds(),
		DurationMicros:    end.Sub(s.start).Microseconds(),
	}
	for _, c := range children {
		node.Children = append(node.Children, c.tree(rootStart))
	}
	return node
}
