package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parsePrometheus is a minimal exposition parser: it validates every line is
// either a comment or `series value` and returns the series map.
func parsePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	series := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value follows the last space; series names/labels contain no
		// spaces because label values here are identifiers.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		series[line[:i]] = v
	}
	return series
}

func TestMuxRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("intellitag_requests_total", "op", "ask").Add(3)
	reg.Histogram("intellitag_request_latency_seconds", nil, "op", "ask").Observe(0.002)
	tr := NewTracer(1, 8)
	ctx, root := tr.Start(context.Background(), "ask")
	_, child := tr.Start(ctx, "retrieve")
	child.End()
	root.End()

	srv := httptest.NewServer(Mux(reg, tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	series := parsePrometheus(t, string(body))
	if series[`intellitag_requests_total{op="ask"}`] != 3 {
		t.Fatalf("counter missing from exposition:\n%s", body)
	}
	if series[`intellitag_request_latency_seconds_count{op="ask"}`] != 1 {
		t.Fatalf("histogram count missing from exposition:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatalf("GET /metrics.json: %v", err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics.json: %v", err)
	}
	resp.Body.Close()
	if snap.Counters[`intellitag_requests_total{op="ask"}`] != 3 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}

	resp, err = http.Get(srv.URL + "/debug/trace?limit=5")
	if err != nil {
		t.Fatalf("GET /debug/trace: %v", err)
	}
	var traces struct {
		Traces []SpanTree `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatalf("decode /debug/trace: %v", err)
	}
	resp.Body.Close()
	if len(traces.Traces) != 1 || traces.Traces[0].Name != "ask" {
		t.Fatalf("traces wrong: %+v", traces)
	}
	if len(traces.Traces[0].Children) != 1 || traces.Traces[0].Children[0].Name != "retrieve" {
		t.Fatalf("trace children wrong: %+v", traces.Traces[0])
	}
}

func TestMuxNilComponents(t *testing.T) {
	srv := httptest.NewServer(Mux(nil, nil))
	defer srv.Close()
	for _, route := range []string{"/metrics", "/metrics.json", "/debug/trace"} {
		resp, err := http.Get(srv.URL + route)
		if err != nil {
			t.Fatalf("GET %s: %v", route, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s with nil components: status %d", route, resp.StatusCode)
		}
	}
}

func TestServeBackground(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Inc()
	addr, err := ServeBackground("127.0.0.1:0", Mux(reg, nil))
	if err != nil {
		t.Fatalf("ServeBackground: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET background /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("background exposition missing counter:\n%s", body)
	}
	// A second bind on the same port must fail synchronously.
	if _, err := ServeBackground(addr, Mux(nil, nil)); err == nil {
		t.Fatal("rebinding a taken port did not error")
	}
}
