package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestRunLogJSONLAndMonotoneSeq(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	for epoch := 0; epoch < 3; epoch++ {
		rec := EpochRecord{Stage: "e2e", Epoch: epoch + 1, Epochs: 3, Loss: 1.0 / float64(epoch+1)}
		if err := l.Record("epoch", rec); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if err := l.Record("result", map[string]any{"loss": 0.25}); err != nil {
		t.Fatalf("Record: %v", err)
	}

	sc := bufio.NewScanner(&buf)
	var lastSeq int64
	lines := 0
	for sc.Scan() {
		lines++
		var env struct {
			Seq  int64           `json:"seq"`
			Time string          `json:"ts"`
			Kind string          `json:"kind"`
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if env.Seq != lastSeq+1 {
			t.Fatalf("seq %d after %d, want monotone +1", env.Seq, lastSeq)
		}
		lastSeq = env.Seq
		if _, err := time.Parse(time.RFC3339Nano, env.Time); err != nil {
			t.Fatalf("line %d timestamp %q: %v", lines, env.Time, err)
		}
		if env.Kind == "epoch" {
			var rec EpochRecord
			if err := json.Unmarshal(env.Data, &rec); err != nil {
				t.Fatalf("epoch payload: %v", err)
			}
			if rec.Epoch != int(env.Seq) || rec.Epochs != 3 {
				t.Fatalf("epoch payload round-trip wrong: %+v", rec)
			}
		}
	}
	if lines != 4 {
		t.Fatalf("wrote %d lines, want 4", lines)
	}
}

func TestRunLogNilIsNoOp(t *testing.T) {
	var l *RunLog
	if err := l.Record("epoch", EpochRecord{}); err != nil {
		t.Fatalf("nil Record: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestRunLogConcurrentLinesIntact(t *testing.T) {
	// bytes.Buffer is not concurrency-safe; passing it bare means -race fails
	// here if RunLog ever stops serializing Record.
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	const workers = 8
	const perW = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := l.Record("step", map[string]int{"worker": w, "i": i}); err != nil {
					t.Errorf("Record: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()

	sc := bufio.NewScanner(&buf)
	seen := map[int64]bool{}
	for sc.Scan() {
		var env envelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("interleaved line: %v\n%s", err, sc.Text())
		}
		if seen[env.Seq] {
			t.Fatalf("duplicate seq %d", env.Seq)
		}
		seen[env.Seq] = true
	}
	if len(seen) != workers*perW {
		t.Fatalf("got %d records, want %d", len(seen), workers*perW)
	}
}

func TestOpenRunLogWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := OpenRunLog(path)
	if err != nil {
		t.Fatalf("OpenRunLog: %v", err)
	}
	if err := l.Record("epoch", EpochRecord{Stage: "pretrain", Epoch: 1}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var env envelope
	if err := json.Unmarshal(bytes.TrimSpace(data), &env); err != nil {
		t.Fatalf("file content: %v\n%s", err, data)
	}
	if env.Kind != "epoch" || env.Seq != 1 {
		t.Fatalf("file record wrong: %+v", env)
	}
}
