package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// RunLog writes structured JSONL run records for offline jobs (tagrec-train,
// tagminer): one JSON object per line, each wrapped in an envelope carrying a
// monotone sequence number, a timestamp, and a record kind. It replaces
// ad-hoc log.Printf as the machine-readable trace of a training run.
type RunLog struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer // non-nil when RunLog owns the destination file
	seq int64
}

// OpenRunLog creates (or truncates) a JSONL run log at path.
func OpenRunLog(path string) (*RunLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &RunLog{w: f, c: f}, nil
}

// NewRunLog wraps an existing writer (tests, stdout).
func NewRunLog(w io.Writer) *RunLog { return &RunLog{w: w} }

// envelope is the per-line wrapper around a record payload.
type envelope struct {
	Seq  int64  `json:"seq"`
	Time string `json:"ts"`
	Kind string `json:"kind"`
	Data any    `json:"data"`
}

// Record appends one line of kind `kind` with payload data. Safe for
// concurrent use; a nil RunLog is a no-op.
func (l *RunLog) Record(kind string, data any) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	env := envelope{
		Seq:  l.seq,
		Time: time.Now().UTC().Format(time.RFC3339Nano),
		Kind: kind,
		Data: data,
	}
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = l.w.Write(b)
	return err
}

// Close closes the underlying file if RunLog opened it.
func (l *RunLog) Close() error {
	if l == nil || l.c == nil {
		return nil
	}
	return l.c.Close()
}

// EpochRecord is the per-epoch training payload shared by tagrec-train and
// tagminer run logs: loss, per-step latency, the pre-clip gradient norm of
// the last step, and the mat.Shared pool hit-rate over the run so far.
type EpochRecord struct {
	Stage       string  `json:"stage"`
	Epoch       int     `json:"epoch"`
	Epochs      int     `json:"epochs"`
	Loss        float64 `json:"loss"`
	Steps       int     `json:"steps"`
	StepMicros  float64 `json:"step_us"`
	GradNorm    float64 `json:"grad_norm"`
	PoolHitRate float64 `json:"pool_hit_rate"`
}
