package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"intellitag/internal/metrics"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "op", "ask")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "op", "ask"); again != c {
		t.Fatal("same series returned a different counter")
	}
	if other := r.Counter("reqs_total", "op", "click"); other == c {
		t.Fatal("different labels shared one counter")
	}
	// Label order must not split the series.
	a := r.Gauge("g", "x", "1", "y", "2")
	b := r.Gauge("g", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label order split one logical series into two")
	}
	a.Set(3)
	a.Add(-1)
	if got := b.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one family as counter and gauge did not panic")
		}
	}()
	r.Gauge("dual")
}

// TestConcurrentHammer drives counters, gauges and histograms from many
// goroutines; under -race it proves every instrument is safe, and the final
// counts prove no increment was lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("hammer_total").Inc()
				r.Gauge("hammer_gauge").Add(1)
				r.Histogram("hammer_hist", []float64{1, 10, 100}).Observe(float64(i % 200))
			}
		}(g)
	}
	wg.Wait()
	const want = goroutines * perG
	if got := r.Counter("hammer_total").Value(); got != want {
		t.Errorf("counter lost increments: %d, want %d", got, want)
	}
	if got := r.Gauge("hammer_gauge").Value(); got != want {
		t.Errorf("gauge lost additions: %g, want %d", got, want)
	}
	if got := r.Histogram("hammer_hist", nil).Count(); got != want {
		t.Errorf("histogram lost observations: %d, want %d", got, want)
	}
}

// TestHistogramQuantileAgainstMetrics checks the bucket-interpolated
// quantiles against the exact percentiles from internal/metrics on the same
// sample: the estimate must land inside the bucket containing the exact
// value.
func TestHistogramQuantileAgainstMetrics(t *testing.T) {
	h := NewRegistry().Histogram("lat", DefLatencyBuckets)
	var samples []time.Duration
	// Bimodal sample: fast memo hits around 200µs, slow scored requests
	// around 20ms — the shape the serving path produces.
	for i := 0; i < 900; i++ {
		d := time.Duration(150+i%100) * time.Microsecond
		samples = append(samples, d)
		h.ObserveDuration(d)
	}
	for i := 0; i < 100; i++ {
		d := time.Duration(15+i%10) * time.Millisecond
		samples = append(samples, d)
		h.ObserveDuration(d)
	}
	exact := metrics.SummarizeLatency(samples)
	checks := []struct {
		p     float64
		exact time.Duration
	}{{0.50, exact.P50}, {0.95, exact.P95}, {0.99, exact.P99}}
	for _, c := range checks {
		got := h.Quantile(c.p)
		lo, hi := bucketAround(c.exact.Seconds())
		if got < lo || got > hi {
			t.Errorf("p%g = %gs outside bucket [%g, %g] containing exact %s",
				c.p*100, got, lo, hi, c.exact)
		}
	}
	if h.Count() != int64(len(samples)) {
		t.Errorf("count %d != %d", h.Count(), len(samples))
	}
	wantSum := 0.0
	for _, s := range samples {
		wantSum += s.Seconds()
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum %g != %g", h.Sum(), wantSum)
	}
}

// bucketAround returns the DefLatencyBuckets bucket bounds containing v.
func bucketAround(v float64) (lo, hi float64) {
	lo = 0
	for _, b := range DefLatencyBuckets {
		if v <= b {
			return lo, b
		}
		lo = b
	}
	return lo, math.Inf(1)
}

// TestWritePrometheus pins the exposition format: one TYPE line per family
// (even with several label sets), cumulative bucket counts, and _sum/_count
// series.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "op", "ask").Add(3)
	r.Counter("req_total", "op", "click").Add(2)
	r.Gauge("ctr", "bucket", "intellitag").Set(0.25)
	h := r.Histogram("lat_seconds", []float64{0.1, 1}, "op", "ask")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE req_total counter\n",
		`req_total{op="ask"} 3`,
		`req_total{op="click"} 2`,
		"# TYPE ctr gauge\n",
		`ctr{bucket="intellitag"} 0.25`,
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{op="ask",le="0.1"} 1`,
		`lat_seconds_bucket{op="ask",le="1"} 2`,
		`lat_seconds_bucket{op="ask",le="+Inf"} 3`,
		`lat_seconds_count{op="ask"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE req_total"); got != 1 {
		t.Errorf("family req_total has %d TYPE lines, want 1:\n%s", got, out)
	}
	// Every non-comment line must be `name{labels} value` or `name value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.5)
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	s := r.Snapshot()
	if s.Counters["c"] != 7 || s.Gauges["g"] != 1.5 {
		t.Fatalf("snapshot scalars wrong: %+v", s)
	}
	hs := s.Histograms["h"]
	if hs.Count != 2 || hs.Sum != 2 {
		t.Fatalf("snapshot histogram wrong: %+v", hs)
	}
	if hs.P50 <= 0 || hs.P99 > 2 {
		t.Fatalf("snapshot quantiles out of range: %+v", hs)
	}
}
