package obs

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
)

// MetricsHandler serves the registry in Prometheus text exposition format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
}

// SnapshotHandler serves the registry as a JSON snapshot.
func SnapshotHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSONBody(w, r.Snapshot())
	})
}

// TraceHandler serves recent completed span trees, newest first. `?limit=N`
// caps the count (default 20); `?slowest=1` switches to the slow-request
// exemplar view — the K slowest sampled roots per route, slowest first —
// so an SLO breach in a load run links straight to the spans that caused it.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		limit := 20
		if q := req.URL.Query().Get("limit"); q != "" {
			var n int
			for _, ch := range q {
				if ch < '0' || ch > '9' {
					n = -1
					break
				}
				n = n*10 + int(ch-'0')
			}
			if n > 0 {
				limit = n
			}
		}
		if s := req.URL.Query().Get("slowest"); s != "" && s != "0" {
			writeJSONBody(w, map[string]any{"slowest": t.Slowest(limit)})
			return
		}
		writeJSONBody(w, map[string]any{"traces": t.Trees(limit)})
	})
}

// writeJSONBody encodes v into a buffer first, so an encoding failure becomes
// a clean 500 instead of a truncated 200.
func writeJSONBody(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// Mux mounts the standard telemetry surfaces — /metrics, /metrics.json,
// /debug/trace — on a fresh ServeMux. Either argument may be nil.
func Mux(r *Registry, t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/metrics.json", SnapshotHandler(r))
	mux.Handle("/debug/trace", TraceHandler(t))
	return mux
}

// ServeBackground binds addr synchronously (so bind errors surface to the
// caller) and serves h on a background goroutine for the life of the
// process. It returns the bound address, useful with ":0".
func ServeBackground(addr string, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) // fire-and-forget telemetry listener, runs until process exit
	return ln.Addr().String(), nil
}
