package synth

import (
	"testing"

	"intellitag/internal/mat"
)

func TestTagVecsDeterministicAndClustered(t *testing.T) {
	a := TagVecs(103, 16, 10, 0.05, 3)
	b := TagVecs(103, 16, 10, 0.05, 3)
	if a.Rows != 103 || a.Cols != 16 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j, v := range a.Row(i) {
			if v != b.Row(i)[j] {
				t.Fatalf("row %d not deterministic", i)
			}
		}
	}
	// Rows 0 and 1 share the first cluster; row 60 lives in another. The
	// within-cluster similarity must dominate.
	within := mat.CosineSim(a.Row(0), a.Row(1))
	across := mat.CosineSim(a.Row(0), a.Row(60))
	if within < 0.9 || within <= across {
		t.Fatalf("cluster geometry broken: within=%v across=%v", within, across)
	}
}
