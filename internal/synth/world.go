package synth

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"intellitag/internal/mat"
)

// Topic is a latent consultation domain: a topical vocabulary, the tags
// drawn from it, and ground-truth task chains (ordered tag workflows like
// apply -> verify -> activate) that drive session dynamics.
type Topic struct {
	ID     int
	Words  []string
	Tags   []int   // tag ids belonging to the topic
	Chains [][]int // ordered chains of tag ids
}

// World is a fully generated IntelliTag universe.
type World struct {
	Config   Config
	Topics   []Topic
	Tags     []Tag
	Tenants  []Tenant
	RQs      []RQ
	Sessions []Session
	Filler   []string

	tagByPhrase map[string]int
	rng         *mat.RNG
}

// syllables used to build a deterministic pronounceable lexicon.
var syllables = []string{
	"ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu",
	"na", "pe", "qi", "ro", "su", "ta", "ve", "wi", "xo", "zu",
	"bar", "cen", "dil", "fon", "gur", "han", "jet", "kim", "lor", "mun",
}

func makeWord(rng *mat.RNG, minSyl, maxSyl int) string {
	n := minSyl + rng.Intn(maxSyl-minSyl+1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[rng.Intn(len(syllables))])
	}
	return b.String()
}

// questionTemplates shape RQ surface forms; %s is replaced by tag phrases.
var questionTemplates = []string{
	"how to %s",
	"where can i %s",
	"why does %s fail",
	"what is the %s",
	"can i %s now",
	"help me %s please",
}

var answerTemplates = []string{
	"to %s open the settings page and follow the steps",
	"you can %s from the account menu after signing in",
	"the %s option is available under service center",
	"please verify your identity first and then %s",
}

// Generate builds a complete world from cfg deterministically.
func Generate(cfg Config) *World {
	rng := mat.NewRNG(cfg.Seed)
	w := &World{Config: cfg, rng: rng, tagByPhrase: map[string]int{}}

	// Filler vocabulary (distinct from topical words with high probability;
	// collisions are harmless).
	seen := map[string]bool{}
	for len(w.Filler) < cfg.FillerWords {
		word := makeWord(rng, 1, 2)
		if !seen[word] {
			seen[word] = true
			w.Filler = append(w.Filler, word)
		}
	}

	w.generateTopics(seen)
	w.generateTenants()
	w.generateRQs()
	w.generateSessions()
	return w
}

func (w *World) generateTopics(seen map[string]bool) {
	cfg := w.Config
	for topicID := 0; topicID < cfg.NumTopics; topicID++ {
		topic := Topic{ID: topicID}
		for len(topic.Words) < cfg.WordsPerTopic {
			word := makeWord(w.rng, 2, 3)
			if !seen[word] {
				seen[word] = true
				topic.Words = append(topic.Words, word)
			}
		}
		// Tags: 1..MaxTagWords distinct topical words, unique phrases.
		for len(topic.Tags) < cfg.TagsPerTopic {
			n := 1 + w.rng.Intn(cfg.MaxTagWords)
			perm := w.rng.Perm(len(topic.Words))[:n]
			words := make([]string, n)
			for i, p := range perm {
				words[i] = topic.Words[p]
			}
			tag := Tag{ID: len(w.Tags), Words: words, Topic: topicID}
			if _, dup := w.tagByPhrase[tag.Phrase()]; dup {
				continue
			}
			w.tagByPhrase[tag.Phrase()] = tag.ID
			w.Tags = append(w.Tags, tag)
			topic.Tags = append(topic.Tags, tag.ID)
		}
		// Chains: partition a permutation of the topic's tags into ordered
		// workflows of ChainLen.
		perm := w.rng.Perm(len(topic.Tags))
		for start := 0; start < len(perm); start += cfg.ChainLen {
			end := start + cfg.ChainLen
			if end > len(perm) {
				end = len(perm)
			}
			if end-start < 2 {
				break
			}
			chain := make([]int, 0, end-start)
			for _, p := range perm[start:end] {
				chain = append(chain, topic.Tags[p])
			}
			topic.Chains = append(topic.Chains, chain)
		}
		w.Topics = append(w.Topics, topic)
	}
}

func (w *World) generateTenants() {
	cfg := w.Config
	for id := 0; id < cfg.NumTenants; id++ {
		nTopics := cfg.TopicsPerTenantMin
		if cfg.TopicsPerTenantMax > cfg.TopicsPerTenantMin {
			nTopics += w.rng.Intn(cfg.TopicsPerTenantMax - cfg.TopicsPerTenantMin + 1)
		}
		if nTopics > cfg.NumTopics {
			nTopics = cfg.NumTopics
		}
		perm := w.rng.Perm(cfg.NumTopics)[:nTopics]
		topics := append([]int(nil), perm...)
		sort.Ints(topics)
		// Long-tail tenant sizes: rank-based Zipf weight.
		size := 1 / math.Pow(float64(id+1), 0.8)
		w.Tenants = append(w.Tenants, Tenant{
			ID:     id,
			Name:   fmt.Sprintf("tenant-%02d", id),
			Topics: topics,
			Size:   size,
		})
	}
}

func (w *World) generateRQs() {
	cfg := w.Config
	span := cfg.MaxRQsPerTenant - cfg.MinRQsPerTenant
	for _, tenant := range w.Tenants {
		n := cfg.MinRQsPerTenant + int(float64(span)*tenant.Size)
		for i := 0; i < n; i++ {
			topicID := tenant.Topics[w.rng.Intn(len(tenant.Topics))]
			topic := &w.Topics[topicID]
			// Most RQs carry two tags (Table I shows two tags per question),
			// some carry one.
			nTags := 2
			if w.rng.Float64() < 0.3 {
				nTags = 1
			}
			var tagIDs []int
			var phraseParts []string
			usedTag := map[int]bool{}
			for len(tagIDs) < nTags {
				// Zipf popularity within the topic gives long-tail tags.
				t := topic.Tags[w.rng.Zipf(len(topic.Tags), 0.9)]
				if usedTag[t] {
					continue
				}
				usedTag[t] = true
				tagIDs = append(tagIDs, t)
				phraseParts = append(phraseParts, w.Tags[t].Phrase())
			}
			sort.Ints(tagIDs)
			phrase := strings.Join(phraseParts, " ")
			// Sprinkle filler around the template for realistic sentences.
			text := fmt.Sprintf(questionTemplates[w.rng.Intn(len(questionTemplates))], phrase)
			if w.rng.Float64() < 0.5 {
				text += " " + w.Filler[w.rng.Intn(len(w.Filler))]
			}
			// Distractor: a topical word placed outside any tag context, so
			// tag segmentation cannot be solved lexically. A filler word
			// separates it from the tag phrase to avoid accidental
			// multi-word tag formation.
			if w.rng.Float64() < cfg.DistractorProb {
				distractor := topic.Words[w.rng.Intn(len(topic.Words))]
				text += " " + w.Filler[w.rng.Intn(len(w.Filler))] + " " + distractor
			}
			answer := fmt.Sprintf(answerTemplates[w.rng.Intn(len(answerTemplates))], phrase)
			w.RQs = append(w.RQs, RQ{
				ID:     len(w.RQs),
				Tenant: tenant.ID,
				Topic:  topicID,
				Text:   text,
				Answer: answer,
				TagIDs: tagIDs,
			})
		}
	}
}

// TagsOfTenant returns the distinct tags appearing in a tenant's RQs, in id
// order.
func (w *World) TagsOfTenant(tenant int) []int {
	seen := map[int]bool{}
	var out []int
	for _, rq := range w.RQs {
		if rq.Tenant != tenant {
			continue
		}
		for _, t := range rq.TagIDs {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Ints(out)
	return out
}

// RQsWithTag returns the RQ ids of a tenant containing the given tag.
func (w *World) RQsWithTag(tenant, tag int) []int {
	var out []int
	for _, rq := range w.RQs {
		if rq.Tenant != tenant {
			continue
		}
		for _, t := range rq.TagIDs {
			if t == tag {
				out = append(out, rq.ID)
				break
			}
		}
	}
	return out
}

// NumTags returns the number of generated tags.
func (w *World) NumTags() int { return len(w.Tags) }

// Paraphrase generates a user phrasing of an RQ: the same tag phrases under
// a different question template with fresh filler — the kind of lexical
// variation the Q&A matcher must see through. The paraphrase is not
// guaranteed to differ from the original when templates collide.
func (w *World) Paraphrase(rqID int, rng *mat.RNG) string {
	rq := w.RQs[rqID]
	var parts []string
	for _, t := range rq.TagIDs {
		parts = append(parts, w.Tags[t].Phrase())
	}
	phrase := strings.Join(parts, " ")
	text := fmt.Sprintf(questionTemplates[rng.Intn(len(questionTemplates))], phrase)
	if rng.Float64() < 0.6 {
		text += " " + w.Filler[rng.Intn(len(w.Filler))]
	}
	return text
}
