package synth

import (
	"intellitag/internal/hetgraph"
)

// BuildGraph constructs the TagRec heterogeneous graph from the world's RQs
// and the given sessions (typically the training split, so evaluation
// sessions do not leak structure). It realizes the paper's four relations:
// asc from tag-in-RQ, crl from RQ-tenant ownership, clk from successive
// clicks, cst from successive RQ consultations.
func (w *World) BuildGraph(sessions []Session) *hetgraph.Graph {
	g := hetgraph.New(len(w.Tags), len(w.RQs), len(w.Tenants))
	for _, rq := range w.RQs {
		for _, t := range rq.TagIDs {
			g.AddAsc(hetgraph.NodeID(t), hetgraph.NodeID(rq.ID))
		}
		g.AddCrl(hetgraph.NodeID(rq.ID), hetgraph.NodeID(rq.Tenant))
	}
	for _, s := range sessions {
		for i := 1; i < len(s.Clicks); i++ {
			g.AddClk(hetgraph.NodeID(s.Clicks[i-1]), hetgraph.NodeID(s.Clicks[i]))
		}
		for i := 1; i < len(s.RQVisits); i++ {
			g.AddCst(hetgraph.NodeID(s.RQVisits[i-1]), hetgraph.NodeID(s.RQVisits[i]))
		}
	}
	return g
}

// Stats is the Table II analog: dataset statistics of the generated world.
type Stats struct {
	Tags, RQs, Tenants  int
	Asc, Crl, Clk, Cst  int
	Sessions, Clicks    int
	AvgClicksPerSession float64
	LabeledSentences    int
}

// DatasetStats summarizes the world against the full session set.
func (w *World) DatasetStats() Stats {
	g := w.BuildGraph(w.Sessions)
	gs := g.Stats()
	return Stats{
		Tags: gs.Tags, RQs: gs.RQs, Tenants: gs.Tenants,
		Asc: gs.Asc, Crl: gs.Crl, Clk: gs.Clk, Cst: gs.Cst,
		Sessions:            len(w.Sessions),
		Clicks:              w.TotalClicks(),
		AvgClicksPerSession: w.AvgClicks(),
		LabeledSentences:    len(w.RQs),
	}
}
