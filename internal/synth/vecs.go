package synth

import "intellitag/internal/mat"

// TagVecs generates a synthetic tag-embedding table for retrieval
// benchmarks: n unit-scale vectors drawn around `clusters` Gaussian centers
// with within-cluster noise `spread`, deterministic in seed. The geometry
// mirrors what a trained graph encoder produces — tags of one task chain /
// topic collapse into tight clusters with large inter-cluster margins — which
// is exactly the regime ANN indexes must handle: near-duplicate neighbors
// inside a cluster and deceptive long hops between them. Cluster sizes are
// uniform (n need not divide evenly; the first n%clusters clusters get one
// extra row) and row order interleaves nothing: rows of one cluster are
// contiguous, so id locality correlates with similarity, the worst case for
// hash-bucket collisions and a realistic one for chained tag ids.
func TagVecs(n, dim, clusters int, spread float64, seed int64) *mat.Matrix {
	if clusters < 1 {
		clusters = 1
	}
	if clusters > n {
		clusters = n
	}
	g := mat.NewRNG(seed)
	centers := mat.New(clusters, dim)
	g.Normal(centers, 1)
	out := mat.New(n, dim)
	per := n / clusters
	extra := n % clusters
	row := 0
	for c := 0; c < clusters; c++ {
		size := per
		if c < extra {
			size++
		}
		center := centers.Row(c)
		for i := 0; i < size; i++ {
			dst := out.Row(row)
			for j, x := range center {
				dst[j] = x + spread*g.NormFloat64()
			}
			row++
		}
	}
	return out
}
