package synth

import (
	"reflect"
	"testing"
)

// TestDriftWorld pins the drift contract: tags, tenants and chain shapes
// survive, chain contents move, the original world is untouched, and the
// drift is deterministic in (world, seed).
func TestDriftWorld(t *testing.T) {
	w := Generate(SmallConfig())
	orig := make([][][]int, len(w.Topics))
	for i, topic := range w.Topics {
		for _, chain := range topic.Chains {
			orig[i] = append(orig[i], append([]int(nil), chain...))
		}
	}

	d := DriftWorld(w, 42)
	if len(d.Tags) != len(w.Tags) || len(d.Tenants) != len(w.Tenants) || len(d.RQs) != len(w.RQs) {
		t.Fatal("drift changed the catalog surface")
	}
	moved := false
	for i, topic := range d.Topics {
		if len(topic.Chains) != len(w.Topics[i].Chains) {
			t.Fatalf("topic %d chain count changed", i)
		}
		seen := map[int]bool{}
		for j, chain := range topic.Chains {
			if len(chain) != len(w.Topics[i].Chains[j]) {
				t.Fatalf("topic %d chain %d length changed", i, j)
			}
			for _, tag := range chain {
				if seen[tag] {
					t.Fatalf("topic %d deals tag %d twice", i, tag)
				}
				seen[tag] = true
			}
			if !reflect.DeepEqual(chain, w.Topics[i].Chains[j]) {
				moved = true
			}
		}
		// The drifted topic holds exactly the tags the original chains held.
		for _, chain := range orig[i] {
			for _, tag := range chain {
				if !seen[tag] {
					t.Fatalf("topic %d lost tag %d", i, tag)
				}
			}
		}
		if !reflect.DeepEqual(w.Topics[i].Chains, orig[i]) {
			t.Fatalf("DriftWorld mutated the input world's topic %d", i)
		}
	}
	if !moved {
		t.Fatal("drift left every chain unchanged")
	}

	d2 := DriftWorld(w, 42)
	for i := range d.Topics {
		if !reflect.DeepEqual(d.Topics[i].Chains, d2.Topics[i].Chains) {
			t.Fatalf("same seed produced different drift in topic %d", i)
		}
	}
	d3 := DriftWorld(w, 43)
	same := true
	for i := range d.Topics {
		if !reflect.DeepEqual(d.Topics[i].Chains, d3.Topics[i].Chains) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical drift")
	}
}
