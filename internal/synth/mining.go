package synth

import (
	"sort"

	"intellitag/internal/mat"
	"strings"

	"intellitag/internal/textproc"
)

// SegLabel is a tag-segmentation label of the mining task. The paper's
// Fig. 2 marks tag words "B" (begin) and "M" (middle); everything else is
// outside.
type SegLabel uint8

// Segmentation labels.
const (
	Outside SegLabel = iota
	Begin
	Middle
)

// LabeledSentence is one annotated RQ used to train the BERT-based
// multi-task model: per-token segmentation labels and per-token weight
// labels (1 if the token is part of a tag, per Section VI-A1).
type LabeledSentence struct {
	Tokens  []string
	Seg     []SegLabel
	Weights []float64
	// TagSpans lists [start,end) token ranges of the ground-truth tags.
	TagSpans [][2]int
}

// LabeledSentences converts every RQ into a labeled sentence by locating
// every tag phrase of the RQ's topic in the tokenized question text. Scanning
// the whole topic (not just the RQ's intended tags) keeps labels consistent:
// any occurrence of a complete tag phrase is a tag, so the same word is
// labeled in-tag or outside purely by its context — the property that makes
// the segmentation task require a contextual model.
func (w *World) LabeledSentences() []LabeledSentence {
	out := make([]LabeledSentence, 0, len(w.RQs))
	for _, rq := range w.RQs {
		out = append(out, w.labelRQ(rq))
	}
	return out
}

func (w *World) labelRQ(rq RQ) LabeledSentence {
	tokens := textproc.Tokenize(rq.Text)
	ls := LabeledSentence{
		Tokens:  tokens,
		Seg:     make([]SegLabel, len(tokens)),
		Weights: make([]float64, len(tokens)),
	}
	// Collect every tag-phrase occurrence, then keep a non-overlapping set
	// preferring longer phrases (so a single-word tag nested inside a
	// longer tag occurrence does not fragment the labels).
	var candidates [][2]int
	for _, tagID := range w.Topics[rq.Topic].Tags {
		words := w.Tags[tagID].Words
		for start := 0; start+len(words) <= len(tokens); start++ {
			if matchAt(tokens, words, start) {
				candidates = append(candidates, [2]int{start, start + len(words)})
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		li, lj := candidates[i][1]-candidates[i][0], candidates[j][1]-candidates[j][0]
		if li != lj {
			return li > lj
		}
		return candidates[i][0] < candidates[j][0]
	})
	taken := make([]bool, len(tokens))
	for _, span := range candidates {
		overlap := false
		for i := span[0]; i < span[1]; i++ {
			if taken[i] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		ls.TagSpans = append(ls.TagSpans, span)
		for i := span[0]; i < span[1]; i++ {
			taken[i] = true
			ls.Weights[i] = 1
			if i == span[0] {
				ls.Seg[i] = Begin
			} else {
				ls.Seg[i] = Middle
			}
		}
	}
	sort.Slice(ls.TagSpans, func(i, j int) bool { return ls.TagSpans[i][0] < ls.TagSpans[j][0] })
	return ls
}

func matchAt(tokens, words []string, start int) bool {
	for i, w := range words {
		if tokens[start+i] != w {
			return false
		}
	}
	return true
}

// SpansFromSeg reconstructs tag spans from a segmentation label sequence: a
// span starts at each Begin and extends over following Middles. This is the
// decoding rule shared by the miner and its evaluation.
func SpansFromSeg(seg []SegLabel) [][2]int {
	var spans [][2]int
	for i := 0; i < len(seg); {
		if seg[i] != Begin {
			i++
			continue
		}
		j := i + 1
		for j < len(seg) && seg[j] == Middle {
			j++
		}
		spans = append(spans, [2]int{i, j})
		i = j
	}
	return spans
}

// PhraseOfSpan renders the tokens of a span as a tag phrase.
func PhraseOfSpan(tokens []string, span [2]int) string {
	return strings.Join(tokens[span[0]:span[1]], " ")
}

// TagIDByPhrase resolves a phrase to its ground-truth tag id, or -1.
func (w *World) TagIDByPhrase(phrase string) int {
	if id, ok := w.tagByPhrase[phrase]; ok {
		return id
	}
	return -1
}

// AddLabelNoise returns a copy of the sentences with independent annotation
// noise on the two label sets: each token's segmentation label is replaced
// by a random different label with probability segFlip, and each token's
// weight label is flipped with probability weightFlip. Human-annotated
// training data (the paper hand-labels ~54k sentences) carries exactly this
// kind of noise; because the noise on the two tasks is independent, a
// multi-task model can use each head's signal to denoise the other through
// the shared encoder — the effect the paper's MT-vs-ST comparison measures.
// Gold TagSpans are preserved (evaluation always uses clean labels).
func AddLabelNoise(sentences []LabeledSentence, segFlip, weightFlip float64, rng *mat.RNG) []LabeledSentence {
	out := make([]LabeledSentence, len(sentences))
	for i, s := range sentences {
		ns := LabeledSentence{
			Tokens:   s.Tokens,
			Seg:      append([]SegLabel(nil), s.Seg...),
			Weights:  append([]float64(nil), s.Weights...),
			TagSpans: s.TagSpans,
		}
		for j := range ns.Seg {
			if rng.Float64() < segFlip {
				ns.Seg[j] = SegLabel((int(ns.Seg[j]) + 1 + rng.Intn(2)) % 3)
			}
			if rng.Float64() < weightFlip {
				ns.Weights[j] = 1 - ns.Weights[j]
			}
		}
		out[i] = ns
	}
	return out
}
