package synth

import (
	"intellitag/internal/mat"
)

// DriftWorld returns a behavioral drift of w: the same tags, tenants, RQs and
// catalog, but with each topic's task chains deterministically re-dealt, so
// the ground-truth successor structure users follow no longer matches the one
// any model trained on w learned. This is the concept-drift scenario the
// online learner exists for — the vocabulary is stable, the workflows moved.
//
// The input world is not modified; the drifted world shares everything except
// the Topics slice (chains are rebuilt). Sessions are not regenerated — a
// drift world stands in for live traffic, not training data. The same (w,
// seed) pair always produces the same drift.
func DriftWorld(w *World, seed int64) *World {
	rng := mat.NewRNG(seed)
	out := *w
	out.Topics = make([]Topic, len(w.Topics))
	for i, topic := range w.Topics {
		t := topic
		// Flatten the topic's chain slots, re-deal the tags across them with
		// a seeded permutation, and refill chains of the original lengths.
		var flat []int
		for _, chain := range topic.Chains {
			flat = append(flat, chain...)
		}
		perm := rng.Perm(len(flat))
		t.Chains = make([][]int, len(topic.Chains))
		k := 0
		for j, chain := range topic.Chains {
			fresh := make([]int, len(chain))
			for p := range fresh {
				fresh[p] = flat[perm[k]]
				k++
			}
			t.Chains[j] = fresh
		}
		out.Topics[i] = t
	}
	return &out
}
