package synth

import (
	"intellitag/internal/mat"
)

// ProcState is the hidden state of the ground-truth click process: which
// chain the user is working through, where, and in which direction. The
// direction is revealed only by the last *two* clicks, which is exactly why
// sequence models with more than one step of context outperform last-click
// models on this world.
type ProcState struct {
	Tenant    int
	Topic     int
	chain     []int
	pos       int
	direction int // +1 or -1 along the chain
	LastClick int
}

// StartSession initializes the click process for a tenant and returns the
// state after the first click. The first click is drawn Zipf-weighted from
// the tenant's topical tags, matching the cold-start "most frequently
// clicked tags" dynamic.
func (w *World) StartSession(tenant int, rng *mat.RNG) ProcState {
	t := w.Tenants[tenant]
	topicID := t.Topics[rng.Intn(len(t.Topics))]
	topic := &w.Topics[topicID]
	chain := topic.Chains[rng.Intn(len(topic.Chains))]
	pos := rng.Intn(len(chain))
	dir := 1
	if rng.Float64() < 0.5 {
		dir = -1
	}
	return ProcState{
		Tenant: tenant, Topic: topicID,
		chain: chain, pos: pos, direction: dir,
		LastClick: chain[pos],
	}
}

// NextClick advances the process one step and returns the clicked tag.
func (w *World) NextClick(s *ProcState, rng *mat.RNG) int {
	cfg := w.Config
	r := rng.Float64()
	switch {
	case r < cfg.ChainFollow:
		// Continue along the chain in the established direction, bouncing
		// off the ends.
		next := s.pos + s.direction
		if next < 0 || next >= len(s.chain) {
			s.direction = -s.direction
			next = s.pos + s.direction
		}
		s.pos = next
	case r < cfg.ChainFollow+cfg.TopicJump:
		// Jump within the topic: re-anchor on a random chain position.
		topic := &w.Topics[s.Topic]
		s.chain = topic.Chains[rng.Intn(len(topic.Chains))]
		s.pos = rng.Intn(len(s.chain))
	default:
		// Wander to another of the tenant's topics.
		t := w.Tenants[s.Tenant]
		s.Topic = t.Topics[rng.Intn(len(t.Topics))]
		topic := &w.Topics[s.Topic]
		s.chain = topic.Chains[rng.Intn(len(topic.Chains))]
		s.pos = rng.Intn(len(s.chain))
	}
	s.LastClick = s.chain[s.pos]
	return s.LastClick
}

// PeekNext returns the most likely next click (the chain continuation)
// without advancing the state; the online user simulator uses it as the
// user's true intent.
func (w *World) PeekNext(s *ProcState) int {
	next := s.pos + s.direction
	if next < 0 || next >= len(s.chain) {
		next = s.pos - s.direction
	}
	return s.chain[next]
}

func (w *World) generateSessions() {
	cfg := w.Config
	// Geometric session length with mean MeanClicks: P(len=k) = p(1-p)^(k-1).
	p := 1 / cfg.MeanClicks
	// Tenant choice is size-weighted, giving big tenants more traffic but
	// keeping small-tenant sessions present (the paper's online focus).
	weights := make([]float64, len(w.Tenants))
	for i, t := range w.Tenants {
		weights[i] = t.Size
	}
	for id := 0; id < cfg.NumSessions; id++ {
		tenant := w.rng.Categorical(weights)
		state := w.StartSession(tenant, w.rng)
		session := Session{ID: id, Tenant: tenant, Clicks: []int{state.LastClick}}
		w.maybeVisitRQ(&session, state.LastClick)
		for len(session.Clicks) < cfg.MaxClicks {
			if w.rng.Float64() < p { // session ends
				break
			}
			click := w.NextClick(&state, w.rng)
			session.Clicks = append(session.Clicks, click)
			w.maybeVisitRQ(&session, click)
		}
		w.Sessions = append(w.Sessions, session)
	}
}

// maybeVisitRQ records an RQ consultation for the clicked tag with
// probability QuestionProb; consecutive visits in a session create the cst
// relation.
func (w *World) maybeVisitRQ(s *Session, tag int) {
	if w.rng.Float64() >= w.Config.QuestionProb {
		return
	}
	rqs := w.RQsWithTag(s.Tenant, tag)
	if len(rqs) == 0 {
		return
	}
	s.RQVisits = append(s.RQVisits, rqs[w.rng.Intn(len(rqs))])
}

// TotalClicks returns the number of clicks across all sessions.
func (w *World) TotalClicks() int {
	var n int
	for _, s := range w.Sessions {
		n += len(s.Clicks)
	}
	return n
}

// AvgClicks returns the mean session length.
func (w *World) AvgClicks() float64 {
	if len(w.Sessions) == 0 {
		return 0
	}
	return float64(w.TotalClicks()) / float64(len(w.Sessions))
}

// SplitSessions partitions sessions into train/validation/test slices by the
// given fractions (the paper uses 80/10/10). The split is deterministic for
// a given world.
func (w *World) SplitSessions(trainFrac, valFrac float64) (train, val, test []Session) {
	rng := mat.NewRNG(w.Config.Seed + 1000)
	perm := rng.Perm(len(w.Sessions))
	nTrain := int(trainFrac * float64(len(perm)))
	nVal := int(valFrac * float64(len(perm)))
	for i, p := range perm {
		s := w.Sessions[p]
		switch {
		case i < nTrain:
			train = append(train, s)
		case i < nTrain+nVal:
			val = append(val, s)
		default:
			test = append(test, s)
		}
	}
	return train, val, test
}
