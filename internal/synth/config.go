// Package synth generates the synthetic IntelliTag world that substitutes
// for the paper's closed industrial dataset (Table II). A seeded generative
// model produces tenants with topic mixtures, multi-word tags organized into
// task "chains" (apply -> verify -> activate ...), representative questions
// embedding those tags, Q&A answers, BIO-labeled sentences for the tag
// mining task, and user sessions whose click process is second-order
// Markov — so models that exploit more than the last click (the paper's
// contextual attention) have a real advantage, and models that aggregate
// cross-tenant graph structure help low-frequency tags, mirroring the
// dynamics the paper reports.
package synth

// Config controls the size and dynamics of the generated world. The defaults
// are the paper's dataset scaled down roughly 50-100x while preserving the
// shape: relation-type ratios, ~2.9 average clicks per session, long-tail
// tag popularity and cross-tenant tag sharing.
type Config struct {
	Seed int64

	NumTenants    int // paper: 446
	NumTopics     int // latent consultation domains shared across tenants
	WordsPerTopic int // topical vocabulary per domain
	TagsPerTopic  int // tags mined per domain
	MaxTagWords   int // tags contain 1..MaxTagWords words

	MinRQsPerTenant int // smallest tenants (the SMEs the paper cares about)
	MaxRQsPerTenant int // largest tenants

	NumSessions        int     // paper: 98,875
	MeanClicks         float64 // paper: 2.9 average clicks per session
	MaxClicks          int     // hard cap on session length
	ChainFollow        float64 // probability the user continues the current chain
	TopicJump          float64 // probability the user jumps within the topic
	QuestionProb       float64 // probability a click is accompanied by an RQ visit
	DistractorProb     float64 // probability an RQ carries a non-tag topical word
	FillerWords        int     // non-topical filler vocabulary size
	ChainLen           int     // tags per ground-truth task chain
	TopicsPerTenantMin int
	TopicsPerTenantMax int
}

// DefaultConfig is the medium-scale world used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		NumTenants:      24,
		NumTopics:       8,
		WordsPerTopic:   30,
		TagsPerTopic:    60,
		MaxTagWords:     3,
		MinRQsPerTenant: 20,
		MaxRQsPerTenant: 300,
		NumSessions:     3000,
		MeanClicks:      2.9,
		MaxClicks:       10,
		// Click dynamics calibrated to the paper's regime: real consultation
		// traffic is far from deterministic, which is what makes the
		// heterogeneous graph's side information valuable (pure session
		// models dominate when ChainFollow is near 1, contradicting the
		// paper's Table IV ordering).
		ChainFollow:        0.55,
		TopicJump:          0.30,
		QuestionProb:       0.35,
		DistractorProb:     0.45,
		FillerWords:        120,
		ChainLen:           5,
		TopicsPerTenantMin: 2,
		TopicsPerTenantMax: 4,
	}
}

// SmallConfig is a fast world for unit tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.NumTenants = 6
	c.NumTopics = 4
	c.WordsPerTopic = 15
	c.TagsPerTopic = 12
	c.MinRQsPerTenant = 8
	c.MaxRQsPerTenant = 40
	c.NumSessions = 400
	c.FillerWords = 40
	return c
}

// Tag is a mined tag: an ordered multi-word phrase belonging to one topic.
type Tag struct {
	ID    int
	Words []string
	Topic int
}

// Phrase returns the tag's surface form.
func (t Tag) Phrase() string {
	s := ""
	for i, w := range t.Words {
		if i > 0 {
			s += " "
		}
		s += w
	}
	return s
}

// RQ is a representative question in the KB document warehouse.
type RQ struct {
	ID     int
	Tenant int
	Topic  int
	Text   string
	Answer string
	TagIDs []int // ground-truth asc relation
}

// Tenant is an SME renting the cloud customer service.
type Tenant struct {
	ID     int
	Name   string
	Topics []int
	// Size is a popularity multiplier; small values model the low-operation
	// SMEs the paper's online evaluation focuses on.
	Size float64
}

// Session is one user consultation: an ordered tag click sequence plus the
// RQ ids visited along the way (for the cst relation).
type Session struct {
	ID       int
	Tenant   int
	Clicks   []int // tag ids in click order
	RQVisits []int // RQ ids consulted, in order (may be empty)
}
