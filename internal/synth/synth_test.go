package synth

import (
	"math"
	"strings"
	"testing"

	"intellitag/internal/mat"
	"intellitag/internal/textproc"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	return Generate(SmallConfig())
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SmallConfig())
	b := Generate(SmallConfig())
	if len(a.Tags) != len(b.Tags) || len(a.RQs) != len(b.RQs) || len(a.Sessions) != len(b.Sessions) {
		t.Fatal("same seed produced different world sizes")
	}
	for i := range a.Tags {
		if a.Tags[i].Phrase() != b.Tags[i].Phrase() {
			t.Fatalf("tag %d differs: %q vs %q", i, a.Tags[i].Phrase(), b.Tags[i].Phrase())
		}
	}
	for i := range a.Sessions {
		if len(a.Sessions[i].Clicks) != len(b.Sessions[i].Clicks) {
			t.Fatalf("session %d differs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := SmallConfig()
	a := Generate(cfg)
	cfg.Seed = 2
	b := Generate(cfg)
	same := true
	for i := range a.Tags {
		if i >= len(b.Tags) || a.Tags[i].Phrase() != b.Tags[i].Phrase() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical tags")
	}
}

func TestWorldShape(t *testing.T) {
	w := smallWorld(t)
	cfg := w.Config
	if len(w.Tenants) != cfg.NumTenants {
		t.Fatalf("tenants = %d", len(w.Tenants))
	}
	if len(w.Topics) != cfg.NumTopics {
		t.Fatalf("topics = %d", len(w.Topics))
	}
	if len(w.Tags) != cfg.NumTopics*cfg.TagsPerTopic {
		t.Fatalf("tags = %d", len(w.Tags))
	}
	if len(w.Sessions) != cfg.NumSessions {
		t.Fatalf("sessions = %d", len(w.Sessions))
	}
	if len(w.RQs) == 0 {
		t.Fatal("no RQs")
	}
}

func TestTagPhrasesUniqueAndResolvable(t *testing.T) {
	w := smallWorld(t)
	seen := map[string]bool{}
	for _, tag := range w.Tags {
		p := tag.Phrase()
		if seen[p] {
			t.Fatalf("duplicate tag phrase %q", p)
		}
		seen[p] = true
		if got := w.TagIDByPhrase(p); got != tag.ID {
			t.Fatalf("TagIDByPhrase(%q) = %d, want %d", p, got, tag.ID)
		}
		if len(tag.Words) < 1 || len(tag.Words) > w.Config.MaxTagWords {
			t.Fatalf("tag %q has %d words", p, len(tag.Words))
		}
	}
	if w.TagIDByPhrase("no such phrase") != -1 {
		t.Fatal("unknown phrase should return -1")
	}
}

func TestRQsContainTheirTags(t *testing.T) {
	w := smallWorld(t)
	for _, rq := range w.RQs {
		if len(rq.TagIDs) == 0 {
			t.Fatalf("RQ %d has no tags", rq.ID)
		}
		for _, tagID := range rq.TagIDs {
			if !strings.Contains(rq.Text, w.Tags[tagID].Phrase()) {
				t.Fatalf("RQ %q does not contain tag %q", rq.Text, w.Tags[tagID].Phrase())
			}
		}
		if rq.Answer == "" {
			t.Fatalf("RQ %d has no answer", rq.ID)
		}
	}
}

func TestRQTagTopicsMatchTenant(t *testing.T) {
	w := smallWorld(t)
	for _, rq := range w.RQs {
		tenant := w.Tenants[rq.Tenant]
		found := false
		for _, tp := range tenant.Topics {
			if tp == rq.Topic {
				found = true
			}
		}
		if !found {
			t.Fatalf("RQ %d topic %d not in tenant topics %v", rq.ID, rq.Topic, tenant.Topics)
		}
		for _, tagID := range rq.TagIDs {
			if w.Tags[tagID].Topic != rq.Topic {
				t.Fatalf("RQ %d mixes topics", rq.ID)
			}
		}
	}
}

func TestTenantSizesLongTail(t *testing.T) {
	w := smallWorld(t)
	if w.Tenants[0].Size <= w.Tenants[len(w.Tenants)-1].Size {
		t.Fatal("tenant sizes should decay")
	}
}

func TestSessionsAvgClicksNearConfig(t *testing.T) {
	w := Generate(DefaultConfig())
	avg := w.AvgClicks()
	if math.Abs(avg-w.Config.MeanClicks) > 0.5 {
		t.Fatalf("avg clicks %v, want ~%v", avg, w.Config.MeanClicks)
	}
	for _, s := range w.Sessions {
		if len(s.Clicks) < 1 || len(s.Clicks) > w.Config.MaxClicks {
			t.Fatalf("session %d has %d clicks", s.ID, len(s.Clicks))
		}
	}
}

func TestSessionClicksBelongToTenantTopics(t *testing.T) {
	w := smallWorld(t)
	for _, s := range w.Sessions[:50] {
		topics := map[int]bool{}
		for _, tp := range w.Tenants[s.Tenant].Topics {
			topics[tp] = true
		}
		for _, c := range s.Clicks {
			if !topics[w.Tags[c].Topic] {
				t.Fatalf("session %d clicked tag of foreign topic", s.ID)
			}
		}
	}
}

func TestSessionRQVisitsBelongToTenant(t *testing.T) {
	w := smallWorld(t)
	for _, s := range w.Sessions {
		for _, rq := range s.RQVisits {
			if w.RQs[rq].Tenant != s.Tenant {
				t.Fatalf("session %d visited foreign RQ", s.ID)
			}
		}
	}
}

func TestSecondOrderStructure(t *testing.T) {
	// Given two consecutive chain clicks, the chain continuation must be
	// much more likely than under a first-order view. We verify the
	// generative process directly: P(next == PeekNext) ≈ ChainFollow.
	w := Generate(DefaultConfig())
	rng := mat.NewRNG(99)
	hits, total := 0, 0
	for i := 0; i < 2000; i++ {
		state := w.StartSession(0, rng)
		want := w.PeekNext(&state)
		got := w.NextClick(&state, rng)
		if got == want {
			hits++
		}
		total++
	}
	rate := float64(hits) / float64(total)
	if math.Abs(rate-w.Config.ChainFollow) > 0.06 {
		t.Fatalf("chain-follow rate %v, want ~%v", rate, w.Config.ChainFollow)
	}
}

func TestSplitSessionsPartition(t *testing.T) {
	w := smallWorld(t)
	train, val, test := w.SplitSessions(0.8, 0.1)
	if len(train)+len(val)+len(test) != len(w.Sessions) {
		t.Fatal("split loses sessions")
	}
	if len(train) < len(val) || len(train) < len(test) {
		t.Fatal("train should be largest")
	}
	seen := map[int]bool{}
	for _, s := range train {
		seen[s.ID] = true
	}
	for _, s := range val {
		if seen[s.ID] {
			t.Fatal("val overlaps train")
		}
		seen[s.ID] = true
	}
	for _, s := range test {
		if seen[s.ID] {
			t.Fatal("test overlaps train/val")
		}
	}
}

func TestBuildGraphRelations(t *testing.T) {
	w := smallWorld(t)
	g := w.BuildGraph(w.Sessions)
	stats := g.Stats()
	if stats.Asc == 0 || stats.Crl == 0 || stats.Clk == 0 {
		t.Fatalf("missing relations: %+v", stats)
	}
	// Every RQ has exactly one tenant (crl is RQ-count sized, as Table II).
	if stats.Crl != len(w.RQs) {
		t.Fatalf("crl = %d, want %d", stats.Crl, len(w.RQs))
	}
}

func TestBuildGraphOnlyUsesGivenSessions(t *testing.T) {
	w := smallWorld(t)
	gFull := w.BuildGraph(w.Sessions)
	gEmpty := w.BuildGraph(nil)
	if gEmpty.Stats().Clk != 0 || gEmpty.Stats().Cst != 0 {
		t.Fatal("empty sessions should create no clk/cst edges")
	}
	if gFull.Stats().Clk == 0 {
		t.Fatal("full sessions should create clk edges")
	}
	// asc/crl identical regardless of sessions.
	if gFull.Stats().Asc != gEmpty.Stats().Asc {
		t.Fatal("asc should not depend on sessions")
	}
}

func TestDatasetStats(t *testing.T) {
	w := smallWorld(t)
	s := w.DatasetStats()
	if s.Tags != len(w.Tags) || s.Sessions != len(w.Sessions) {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgClicksPerSession <= 0 {
		t.Fatal("avg clicks not positive")
	}
}

func TestLabeledSentences(t *testing.T) {
	w := smallWorld(t)
	sentences := w.LabeledSentences()
	if len(sentences) != len(w.RQs) {
		t.Fatalf("labeled %d sentences, want %d", len(sentences), len(w.RQs))
	}
	var anyTag bool
	for si, ls := range sentences {
		if len(ls.Seg) != len(ls.Tokens) || len(ls.Weights) != len(ls.Tokens) {
			t.Fatalf("sentence %d label lengths mismatch", si)
		}
		for i, seg := range ls.Seg {
			inTag := seg != Outside
			if inTag != (ls.Weights[i] == 1) {
				t.Fatalf("sentence %d token %d: seg/weight disagree", si, i)
			}
		}
		if len(ls.TagSpans) > 0 {
			anyTag = true
		}
		// Middle labels must follow Begin/Middle.
		for i, seg := range ls.Seg {
			if seg == Middle && (i == 0 || ls.Seg[i-1] == Outside) {
				t.Fatalf("sentence %d: dangling Middle at %d", si, i)
			}
		}
	}
	if !anyTag {
		t.Fatal("no sentence has a tag span")
	}
}

func TestLabeledSpansMatchTags(t *testing.T) {
	w := smallWorld(t)
	for _, ls := range w.LabeledSentences()[:100] {
		for _, span := range ls.TagSpans {
			phrase := PhraseOfSpan(ls.Tokens, span)
			if w.TagIDByPhrase(phrase) == -1 {
				t.Fatalf("span %q is not a known tag", phrase)
			}
		}
	}
}

func TestSpansFromSegRoundTrip(t *testing.T) {
	seg := []SegLabel{Outside, Begin, Middle, Outside, Begin, Outside, Begin, Middle, Middle}
	spans := SpansFromSeg(seg)
	want := [][2]int{{1, 3}, {4, 5}, {6, 9}}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("spans[%d] = %v, want %v", i, spans[i], want[i])
		}
	}
}

func TestSpansFromSegIgnoresDanglingMiddle(t *testing.T) {
	spans := SpansFromSeg([]SegLabel{Middle, Outside, Begin})
	if len(spans) != 1 || spans[0] != [2]int{2, 3} {
		t.Fatalf("spans = %v", spans)
	}
}

func TestTagsOfTenantAndRQsWithTag(t *testing.T) {
	w := smallWorld(t)
	tenant := 0
	tags := w.TagsOfTenant(tenant)
	if len(tags) == 0 {
		t.Fatal("tenant 0 has no tags")
	}
	for _, tag := range tags[:min(3, len(tags))] {
		rqs := w.RQsWithTag(tenant, tag)
		if len(rqs) == 0 {
			t.Fatalf("tag %d listed for tenant but no RQ found", tag)
		}
		for _, rq := range rqs {
			if w.RQs[rq].Tenant != tenant {
				t.Fatal("RQsWithTag returned foreign RQ")
			}
		}
	}
}

func TestLabeledSentenceTokensMatchTokenizer(t *testing.T) {
	w := smallWorld(t)
	ls := w.labelRQ(w.RQs[0])
	want := textproc.Tokenize(w.RQs[0].Text)
	if len(ls.Tokens) != len(want) {
		t.Fatal("tokens diverge from Tokenize")
	}
}
