// Package httprr implements deterministic HTTP record and replay for the
// serving API, after the httprr pattern from golang.org/x/tools' oscar
// project (see SNIPPETS.md snippet 2): record one real run's request/response
// round-trips into a checksummed trace file, then replay that trace
// bit-for-bit in tests and load runs, so traffic-driven tests stop
// constructing traffic ad hoc and become reproducible byte-for-byte.
//
// Both halves are http.RoundTripper middleware:
//
//   - Recorder wraps a real transport, captures every round-trip in arrival
//     order and saves them with Save, which seals the trace under a SHA-256
//     checksum.
//   - Replayer opens a trace (verifying the checksum first — a truncated or
//     bit-flipped file fails with ErrChecksum / ErrCorrupt before any test
//     consumes a wrong byte) and answers each request from the recording. A
//     request with no recorded response fails with ErrNoRecord.
//
// Matching is by (method, path, request body). Identical requests — the same
// session asking /recommend twice — replay in recorded order (FIFO per key),
// which preserves stateful server behavior: the n-th identical request gets
// the n-th recorded response.
//
// The trace format is a text header followed by JSON lines:
//
//	INTELLITAG-HTTPRR/1
//	sha256:<64 hex digits of everything after this line>
//	{"method":"POST","path":"/click",...}
//	...
//
// This package is deliberately goroutine-free (and stays off the intellilint
// nakedgo allowlist): replay must be a pure function of the trace, with no
// concurrency of its own to perturb ordering.
package httprr

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
)

// Trace-file framing.
const (
	magic        = "INTELLITAG-HTTPRR/1"
	sha256Prefix = "sha256:"
)

// Typed failures. Tests assert on these with errors.Is.
var (
	// ErrCorrupt reports a structurally malformed trace: wrong magic, a
	// truncated header, or a record line that does not parse.
	ErrCorrupt = errors.New("httprr: corrupt trace")
	// ErrChecksum reports a trace whose body does not hash to the checksum in
	// its header — a truncation or bit flip after the header.
	ErrChecksum = errors.New("httprr: trace checksum mismatch")
	// ErrNoRecord reports a replayed request with no remaining recorded
	// response.
	ErrNoRecord = errors.New("httprr: no recorded response for request")
)

// Record is one captured round-trip. Bodies are stored as strings — the
// serving API speaks JSON text on both sides.
type Record struct {
	Method      string `json:"method"`
	Path        string `json:"path"` // URL path plus ?query when present
	ReqBody     string `json:"req_body,omitempty"`
	Status      int    `json:"status"`
	ContentType string `json:"content_type,omitempty"`
	RespBody    string `json:"resp_body,omitempty"`
}

// key is the replay-matching identity of a request.
func (r Record) key() string {
	return r.Method + " " + r.Path + "\n" + r.ReqBody
}

// requestPath renders the matched path: the URL path plus the raw query when
// one is present.
func requestPath(req *http.Request) string {
	p := req.URL.Path
	if req.URL.RawQuery != "" {
		p += "?" + req.URL.RawQuery
	}
	return p
}

// Recorder is an http.RoundTripper that forwards to a real transport and
// captures every round-trip. Safe for concurrent use; records land in
// completion order, which is the order replay preserves.
type Recorder struct {
	rt http.RoundTripper

	mu      sync.Mutex
	records []Record
}

// NewRecorder wraps a transport (nil selects http.DefaultTransport).
func NewRecorder(rt http.RoundTripper) *Recorder {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &Recorder{rt: rt}
}

// RoundTrip implements http.RoundTripper: forward the request, capture the
// pair, hand the caller a replayable copy of the response.
func (rec *Recorder) RoundTrip(req *http.Request) (*http.Response, error) {
	var reqBody []byte
	if req.Body != nil {
		var err error
		reqBody, err = io.ReadAll(req.Body)
		if err != nil {
			return nil, fmt.Errorf("httprr: read request body: %w", err)
		}
		if err := req.Body.Close(); err != nil {
			return nil, fmt.Errorf("httprr: close request body: %w", err)
		}
		req.Body = io.NopCloser(bytes.NewReader(reqBody))
	}
	resp, err := rec.rt.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	respBody, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("httprr: read response body: %w", err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(respBody))
	rec.mu.Lock()
	rec.records = append(rec.records, Record{
		Method:      req.Method,
		Path:        requestPath(req),
		ReqBody:     string(reqBody),
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		RespBody:    string(respBody),
	})
	rec.mu.Unlock()
	return resp, nil
}

// Len reports how many round-trips have been captured.
func (rec *Recorder) Len() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return len(rec.records)
}

// Records returns a copy of the captured round-trips in completion order.
func (rec *Recorder) Records() []Record {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]Record(nil), rec.records...)
}

// Save seals the captured round-trips into a checksummed trace file.
func (rec *Recorder) Save(path string) error {
	return WriteTrace(path, rec.Records())
}

// WriteTrace serializes records into the trace format at path. The checksum
// covers every byte after the header's second line, so any later truncation
// or bit flip is caught by Open.
func WriteTrace(path string, records []Record) error {
	var body bytes.Buffer
	for _, r := range records {
		line, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("httprr: marshal record: %w", err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	sum := sha256.Sum256(body.Bytes())
	var out bytes.Buffer
	fmt.Fprintf(&out, "%s\n%s%s\n", magic, sha256Prefix, hex.EncodeToString(sum[:]))
	out.Write(body.Bytes())
	return os.WriteFile(path, out.Bytes(), 0o644)
}

// ReadTrace opens, verifies and parses a trace file: magic line, checksum
// line, then the verified JSON records.
func ReadTrace(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	head, rest, ok := strings.Cut(string(data), "\n")
	if !ok || head != magic {
		return nil, fmt.Errorf("%w: %s: missing %q header", ErrCorrupt, path, magic)
	}
	sumLine, body, ok := strings.Cut(rest, "\n")
	if !ok || !strings.HasPrefix(sumLine, sha256Prefix) {
		return nil, fmt.Errorf("%w: %s: missing checksum line", ErrCorrupt, path)
	}
	want, err := hex.DecodeString(strings.TrimPrefix(sumLine, sha256Prefix))
	if err != nil || len(want) != sha256.Size {
		return nil, fmt.Errorf("%w: %s: unparseable checksum", ErrCorrupt, path)
	}
	got := sha256.Sum256([]byte(body))
	if !bytes.Equal(got[:], want) {
		return nil, fmt.Errorf("%w: %s", ErrChecksum, path)
	}
	var records []Record
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%w: %s: record %d: %v", ErrCorrupt, path, len(records), err)
		}
		records = append(records, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	return records, nil
}

// Replayer answers requests from a recorded trace. It is an
// http.RoundTripper; identical requests replay in recorded order. Safe for
// concurrent use.
type Replayer struct {
	mu     sync.Mutex
	queues map[string][]Record // request key -> FIFO of recorded responses
	left   int
}

// Open reads and verifies a trace file and returns a Replayer over it.
func Open(path string) (*Replayer, error) {
	records, err := ReadTrace(path)
	if err != nil {
		return nil, err
	}
	return NewReplayer(records), nil
}

// NewReplayer builds a Replayer over in-memory records.
func NewReplayer(records []Record) *Replayer {
	rp := &Replayer{queues: map[string][]Record{}, left: len(records)}
	for _, r := range records {
		k := r.key()
		rp.queues[k] = append(rp.queues[k], r)
	}
	return rp
}

// RoundTrip implements http.RoundTripper from the recording. The request's
// (method, path, body) selects its FIFO queue; an empty queue is ErrNoRecord,
// so a replayed test that drifts from the recorded traffic fails loudly
// instead of silently fabricating a response.
func (rp *Replayer) RoundTrip(req *http.Request) (*http.Response, error) {
	var reqBody []byte
	if req.Body != nil {
		var err error
		reqBody, err = io.ReadAll(req.Body)
		if err != nil {
			return nil, fmt.Errorf("httprr: read request body: %w", err)
		}
		if err := req.Body.Close(); err != nil {
			return nil, fmt.Errorf("httprr: close request body: %w", err)
		}
	}
	k := Record{Method: req.Method, Path: requestPath(req), ReqBody: string(reqBody)}.key()
	rp.mu.Lock()
	defer rp.mu.Unlock()
	q := rp.queues[k]
	if len(q) == 0 {
		return nil, fmt.Errorf("%w: %s %s (body %d bytes)", ErrNoRecord, req.Method, requestPath(req), len(reqBody))
	}
	rec := q[0]
	rp.queues[k] = q[1:]
	rp.left--

	header := http.Header{}
	if rec.ContentType != "" {
		header.Set("Content-Type", rec.ContentType)
	}
	return &http.Response{
		StatusCode:    rec.Status,
		Status:        fmt.Sprintf("%d %s", rec.Status, http.StatusText(rec.Status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        header,
		Body:          io.NopCloser(strings.NewReader(rec.RespBody)),
		ContentLength: int64(len(rec.RespBody)),
		Request:       req,
	}, nil
}

// Remaining reports how many recorded responses have not been replayed yet —
// zero after a complete replay.
func (rp *Replayer) Remaining() int {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.left
}
