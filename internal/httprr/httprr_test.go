package httprr

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newCountingServer returns a server whose response depends on how many times
// each path+body pair has been seen — a stand-in for the session-stateful
// serving API, where the same /recommend request answers differently as the
// session's history grows.
func newCountingServer(t *testing.T) *httptest.Server {
	t.Helper()
	seen := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key := r.Method + " " + r.URL.Path + " " + string(body)
		seen[key]++
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"path":%q,"n":%d,"echo":%q}`, r.URL.Path, seen[key], body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// drive sends a fixed request script through client and returns each
// response's status and body in order.
func drive(t *testing.T, client *http.Client, base string) []string {
	t.Helper()
	script := []struct{ method, path, body string }{
		{"POST", "/click", `{"session":1,"tag":3}`},
		{"POST", "/recommend", `{"session":1,"k":5}`},
		{"POST", "/recommend", `{"session":1,"k":5}`}, // identical request, stateful answer
		{"POST", "/click", `{"session":2,"tag":9}`},
		{"GET", "/healthz", ""},
	}
	var out []string
	for _, s := range script {
		var body io.Reader
		if s.body != "" {
			body = strings.NewReader(s.body)
		}
		req, err := http.NewRequest(s.method, base+s.path, body)
		if err != nil {
			t.Fatalf("build request: %v", err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", s.method, s.path, err)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read response: %v", err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("close response: %v", err)
		}
		out = append(out, fmt.Sprintf("%d %s", resp.StatusCode, b))
	}
	return out
}

// TestRecordReplayDeterminism is the package contract: record one run, then
// two independent replays of the same trace file both reproduce the recorded
// responses byte for byte, including the FIFO ordering of identical requests
// against a stateful server.
func TestRecordReplayDeterminism(t *testing.T) {
	srv := newCountingServer(t)
	rec := NewRecorder(srv.Client().Transport)
	live := drive(t, &http.Client{Transport: rec}, srv.URL)

	trace := filepath.Join(t.TempDir(), "session.httprr")
	if err := rec.Save(trace); err != nil {
		t.Fatalf("Save: %v", err)
	}

	for round := 0; round < 2; round++ {
		rp, err := Open(trace)
		if err != nil {
			t.Fatalf("Open round %d: %v", round, err)
		}
		replayed := drive(t, &http.Client{Transport: rp}, srv.URL)
		for i := range live {
			if replayed[i] != live[i] {
				t.Errorf("round %d response %d:\nlive    %s\nreplay  %s", round, i, live[i], replayed[i])
			}
		}
		if rp.Remaining() != 0 {
			t.Errorf("round %d: %d recorded responses never replayed", round, rp.Remaining())
		}
	}
}

func TestReplayUnknownRequest(t *testing.T) {
	rp := NewReplayer([]Record{{Method: "POST", Path: "/click", ReqBody: "x", Status: 200}})
	req, err := http.NewRequest("POST", "http://replay/other", strings.NewReader("y"))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	if _, err := rp.RoundTrip(req); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("unknown request: got %v, want ErrNoRecord", err)
	}
}

// TestCorruption pins the typed failure modes: a body truncation or bit flip
// is ErrChecksum, a mangled header or undecodable record is ErrCorrupt —
// never a silently wrong replay.
func TestCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "good.httprr")
	records := []Record{
		{Method: "POST", Path: "/click", ReqBody: `{"tag":1}`, Status: 200, RespBody: `{"ok":true}`},
		{Method: "POST", Path: "/recommend", ReqBody: `{"k":5}`, Status: 200, RespBody: `{"tags":[1,2]}`},
	}
	if err := WriteTrace(path, records); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if _, err := ReadTrace(path); err != nil {
		t.Fatalf("pristine trace must verify: %v", err)
	}

	check := func(name string, mutate func([]byte) []byte, want error) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte(nil), good...)), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
		if _, err := ReadTrace(p); !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
	}

	check("truncated.httprr", func(b []byte) []byte { return b[:len(b)-7] }, ErrChecksum)
	check("bitflip.httprr", func(b []byte) []byte {
		b[len(b)-10] ^= 0x20 // flip one bit inside the last record's body
		return b
	}, ErrChecksum)
	check("badmagic.httprr", func(b []byte) []byte {
		b[0] = 'X'
		return b
	}, ErrCorrupt)
	check("nosum.httprr", func(b []byte) []byte {
		return []byte(magic + "\n")
	}, ErrCorrupt)

	// A record that is not JSON, with the checksum recomputed to match: the
	// framing is intact, so this must fail as ErrCorrupt, not ErrChecksum.
	body := "this is not json\n"
	sum := sha256.Sum256([]byte(body))
	forged := fmt.Sprintf("%s\n%s%s\n%s", magic, sha256Prefix, hex.EncodeToString(sum[:]), body)
	check("badrecord.httprr", func([]byte) []byte { return []byte(forged) }, ErrCorrupt)
}

// TestWriteTraceRoundTrip pins the serialization: what WriteTrace writes,
// ReadTrace returns unchanged.
func TestWriteTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.httprr")
	in := []Record{
		{Method: "POST", Path: "/click?k=5", ReqBody: `{"t":1}`, Status: 200, ContentType: "application/json", RespBody: `{"x":1}`},
		{Method: "GET", Path: "/healthz", Status: 200, RespBody: `{"status":"ok"}`},
	}
	if err := WriteTrace(path, in); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	out, err := ReadTrace(path)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}
