package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func seededLog() *Log {
	l := NewLog()
	l.Append(Event{Day: 0, Session: 1, Tenant: 0, Kind: EventClick, TagID: 10})
	l.Append(Event{Day: 0, Session: 1, Tenant: 0, Kind: EventClick, TagID: 11})
	l.Append(Event{Day: 0, Session: 1, Tenant: 0, Kind: EventQuestion, RQID: 5})
	l.Append(Event{Day: 1, Session: 2, Tenant: 1, Kind: EventClick, TagID: 20})
	l.Append(Event{Day: 1, Session: 2, Tenant: 1, Kind: EventQuestion, RQID: 6})
	l.Append(Event{Day: 1, Session: 2, Tenant: 1, Kind: EventQuestion, RQID: 7})
	l.Append(Event{Day: 1, Session: 2, Tenant: 1, Kind: EventHuman})
	return l
}

func TestAppendAssignsSequence(t *testing.T) {
	l := NewLog()
	a := l.Append(Event{Day: 0})
	b := l.Append(Event{Day: 0})
	if a.Seq != 0 || b.Seq != 1 {
		t.Fatalf("seqs = %d, %d", a.Seq, b.Seq)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestScanDays(t *testing.T) {
	l := seededLog()
	if got := len(l.ScanDays(0, 1)); got != 3 {
		t.Fatalf("day 0 events = %d", got)
	}
	if got := len(l.ScanDays(0, 2)); got != 7 {
		t.Fatalf("all events = %d", got)
	}
	if got := len(l.ScanDays(5, 9)); got != 0 {
		t.Fatalf("empty range = %d", got)
	}
}

func TestSessionClicks(t *testing.T) {
	l := seededLog()
	clicks := l.SessionClicks(0, 2)
	if len(clicks[1]) != 2 || clicks[1][0] != 10 || clicks[1][1] != 11 {
		t.Fatalf("session 1 clicks = %v", clicks[1])
	}
	if len(clicks[2]) != 1 {
		t.Fatalf("session 2 clicks = %v", clicks[2])
	}
}

func TestSessionRQVisits(t *testing.T) {
	l := seededLog()
	visits := l.SessionRQVisits(0, 2)
	if len(visits[2]) != 2 || visits[2][0] != 6 || visits[2][1] != 7 {
		t.Fatalf("session 2 visits = %v", visits[2])
	}
}

func TestCountKindAndTenants(t *testing.T) {
	l := seededLog()
	if got := l.CountKind(EventHuman, 0, 2); got != 1 {
		t.Fatalf("human events = %d", got)
	}
	if got := l.CountKind(EventClick, 1, 2); got != 1 {
		t.Fatalf("day-1 clicks = %d", got)
	}
	tenants := l.SessionTenants(0, 2)
	if tenants[1] != 0 || tenants[2] != 1 {
		t.Fatalf("tenants = %v", tenants)
	}
}

func TestDays(t *testing.T) {
	l := seededLog()
	days := l.Days()
	if len(days) != 2 || days[0] != 0 || days[1] != 1 {
		t.Fatalf("days = %v", days)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := seededLog()
	path := filepath.Join(t.TempDir(), "log.json")
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	l2 := NewLog()
	if err := l2.Load(path); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != l.Len() {
		t.Fatalf("loaded %d events, want %d", l2.Len(), l.Len())
	}
	// Sequence allocation continues.
	e := l2.Append(Event{Day: 2})
	if e.Seq != int64(l.Len()) {
		t.Fatalf("next seq = %d", e.Seq)
	}
}

func TestLoadMissing(t *testing.T) {
	l := NewLog()
	if err := l.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(Event{Day: 0, Kind: EventClick})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d", l.Len())
	}
	// All sequence numbers distinct.
	seen := map[int64]bool{}
	for _, e := range l.ScanDays(0, 1) {
		if seen[e.Seq] {
			t.Fatal("duplicate sequence number")
		}
		seen[e.Seq] = true
	}
}

func TestLoadCorruptJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.json")
	if err := os.WriteFile(path, []byte("[{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLog()
	if err := l.Load(path); err == nil {
		t.Fatal("expected unmarshal error")
	}
}
