package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func seededLog() *Log {
	l := NewLog()
	l.Append(Event{Day: 0, Session: 1, Tenant: 0, Kind: EventClick, TagID: 10})
	l.Append(Event{Day: 0, Session: 1, Tenant: 0, Kind: EventClick, TagID: 11})
	l.Append(Event{Day: 0, Session: 1, Tenant: 0, Kind: EventQuestion, RQID: 5})
	l.Append(Event{Day: 1, Session: 2, Tenant: 1, Kind: EventClick, TagID: 20})
	l.Append(Event{Day: 1, Session: 2, Tenant: 1, Kind: EventQuestion, RQID: 6})
	l.Append(Event{Day: 1, Session: 2, Tenant: 1, Kind: EventQuestion, RQID: 7})
	l.Append(Event{Day: 1, Session: 2, Tenant: 1, Kind: EventHuman})
	return l
}

func TestAppendAssignsSequence(t *testing.T) {
	l := NewLog()
	a := l.Append(Event{Day: 0})
	b := l.Append(Event{Day: 0})
	if a.Seq != 0 || b.Seq != 1 {
		t.Fatalf("seqs = %d, %d", a.Seq, b.Seq)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestScanDays(t *testing.T) {
	l := seededLog()
	if got := len(l.ScanDays(0, 1)); got != 3 {
		t.Fatalf("day 0 events = %d", got)
	}
	if got := len(l.ScanDays(0, 2)); got != 7 {
		t.Fatalf("all events = %d", got)
	}
	if got := len(l.ScanDays(5, 9)); got != 0 {
		t.Fatalf("empty range = %d", got)
	}
}

func TestSessionClicks(t *testing.T) {
	l := seededLog()
	clicks := l.SessionClicks(0, 2)
	if len(clicks[1]) != 2 || clicks[1][0] != 10 || clicks[1][1] != 11 {
		t.Fatalf("session 1 clicks = %v", clicks[1])
	}
	if len(clicks[2]) != 1 {
		t.Fatalf("session 2 clicks = %v", clicks[2])
	}
}

func TestSessionRQVisits(t *testing.T) {
	l := seededLog()
	visits := l.SessionRQVisits(0, 2)
	if len(visits[2]) != 2 || visits[2][0] != 6 || visits[2][1] != 7 {
		t.Fatalf("session 2 visits = %v", visits[2])
	}
}

func TestCountKindAndTenants(t *testing.T) {
	l := seededLog()
	if got := l.CountKind(EventHuman, 0, 2); got != 1 {
		t.Fatalf("human events = %d", got)
	}
	if got := l.CountKind(EventClick, 1, 2); got != 1 {
		t.Fatalf("day-1 clicks = %d", got)
	}
	tenants := l.SessionTenants(0, 2)
	if tenants[1] != 0 || tenants[2] != 1 {
		t.Fatalf("tenants = %v", tenants)
	}
}

func TestDays(t *testing.T) {
	l := seededLog()
	days := l.Days()
	if len(days) != 2 || days[0] != 0 || days[1] != 1 {
		t.Fatalf("days = %v", days)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := seededLog()
	path := filepath.Join(t.TempDir(), "log.json")
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	l2 := NewLog()
	if err := l2.Load(path); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != l.Len() {
		t.Fatalf("loaded %d events, want %d", l2.Len(), l.Len())
	}
	// Sequence allocation continues.
	e := l2.Append(Event{Day: 2})
	if e.Seq != int64(l.Len()) {
		t.Fatalf("next seq = %d", e.Seq)
	}
}

func TestLoadMissing(t *testing.T) {
	l := NewLog()
	if err := l.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(Event{Day: 0, Kind: EventClick})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d", l.Len())
	}
	// All sequence numbers distinct.
	seen := map[int64]bool{}
	for _, e := range l.ScanDays(0, 1) {
		if seen[e.Seq] {
			t.Fatal("duplicate sequence number")
		}
		seen[e.Seq] = true
	}
}

// TestEventsSinceTail pins the cursor contract the online learner depends
// on: repeated EventsSince calls with the returned cursor visit every event
// exactly once, an empty window leaves the cursor unchanged, and resuming
// mid-day never reprocesses or skips.
func TestEventsSinceTail(t *testing.T) {
	l := seededLog()
	all, next := l.EventsSince(0)
	if len(all) != 7 {
		t.Fatalf("full tail = %d events", len(all))
	}
	if next != 7 {
		t.Fatalf("cursor after full tail = %d", next)
	}
	for i, e := range all {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}

	// Empty window: no new events, cursor sticks.
	empty, same := l.EventsSince(next)
	if len(empty) != 0 || same != next {
		t.Fatalf("empty window = %d events, cursor %d", len(empty), same)
	}

	// Mid-day resume: a cursor pointing into day 1's events picks up exactly
	// the remainder, no overlap with what an earlier tail already saw.
	head, _ := l.EventsSince(0)
	head = head[:4]
	rest, end := l.EventsSince(head[len(head)-1].Seq + 1)
	if len(head)+len(rest) != 7 {
		t.Fatalf("resume split %d + %d events", len(head), len(rest))
	}
	if rest[0].Seq != 4 || end != 7 {
		t.Fatalf("resume window starts at %d, ends %d", rest[0].Seq, end)
	}

	// New appends after a drained tail show up exactly once.
	l.Append(Event{Day: 2, Session: 9, Kind: EventClick, TagID: 30})
	fresh, final := l.EventsSince(next)
	if len(fresh) != 1 || fresh[0].TagID != 30 || final != next+1 {
		t.Fatalf("fresh tail = %+v cursor %d", fresh, final)
	}
}

// TestEventsSinceOutOfOrderDays pins that the cursor is sequence-based, not
// day-based: a log whose logical days interleave (a late event stamped with
// an earlier day, the real shape of delayed flushes around a day boundary)
// still tails every event exactly once and in seq order.
func TestEventsSinceOutOfOrderDays(t *testing.T) {
	l := NewLog()
	for _, day := range []int{0, 0, 1, 0, 1, 2, 1} {
		l.Append(Event{Day: day, Kind: EventClick})
	}
	var got []int64
	cursor := int64(0)
	for {
		events, next := l.EventsSince(cursor)
		if len(events) == 0 {
			break
		}
		for _, e := range events {
			got = append(got, e.Seq)
		}
		cursor = next
	}
	if len(got) != 7 {
		t.Fatalf("tailed %d events", len(got))
	}
	for i, seq := range got {
		if seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, seq)
		}
	}
}

// TestEventsSinceAfterUnorderedLoad: a persisted log whose JSON lists events
// out of seq order is re-sorted on Load so the tail API's binary search stays
// correct.
func TestEventsSinceAfterUnorderedLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.json")
	data := `[{"seq":2,"day":1,"kind":"click","tag_id":3},
	          {"seq":0,"day":0,"kind":"click","tag_id":1},
	          {"seq":1,"day":0,"kind":"click","tag_id":2}]`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLog()
	if err := l.Load(path); err != nil {
		t.Fatal(err)
	}
	events, next := l.EventsSince(1)
	if len(events) != 2 || events[0].TagID != 2 || events[1].TagID != 3 || next != 3 {
		t.Fatalf("tail after unordered load = %+v cursor %d", events, next)
	}
}

// TestEventsSinceConcurrentAppend drives appenders against a tailer and
// checks the exactly-once contract under contention (-race covers the
// locking).
func TestEventsSinceConcurrentAppend(t *testing.T) {
	l := NewLog()
	const writers, each = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				l.Append(Event{Day: 0, Kind: EventClick})
			}
		}()
	}
	seen := map[int64]bool{}
	cursor := int64(0)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		events, next := l.EventsSince(cursor)
		for _, e := range events {
			if seen[e.Seq] {
				t.Errorf("seq %d tailed twice", e.Seq)
			}
			seen[e.Seq] = true
		}
		cursor = next
	}
	events, _ := l.EventsSince(cursor)
	for _, e := range events {
		if seen[e.Seq] {
			t.Errorf("seq %d tailed twice", e.Seq)
		}
		seen[e.Seq] = true
	}
	if len(seen) != writers*each {
		t.Fatalf("tailed %d distinct events, want %d", len(seen), writers*each)
	}
}

func TestLoadCorruptJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.json")
	if err := os.WriteFile(path, []byte("[{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLog()
	if err := l.Load(path); err == nil {
		t.Fatal("expected unmarshal error")
	}
}
