// Package store is the MaxCompute substitute of the IntelliTag system
// (Section V): an append-only interaction log with time-range scans and
// session reconstruction, feeding the offline daily ("T+1") pipeline. It is
// deliberately simple — segments of records in memory with optional JSON
// persistence — but preserves the access patterns the offline trainers use:
// sequential appends online, batch scans offline.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// EventKind distinguishes interaction log records.
type EventKind string

// Interaction event kinds.
const (
	EventClick    EventKind = "click"    // user clicked a recommended tag
	EventQuestion EventKind = "question" // user proposed a question (RQ id resolved)
	EventAnswer   EventKind = "answer"   // system delivered an answer
	EventHuman    EventKind = "human"    // escalated to manual customer service
	// EventImpression records one recommendation panel shown to a user;
	// TagID carries the top-ranked tag, which is what lets the online drift
	// monitor compute a calibration (top-1 hit) indicator from the stream
	// alone, without access to serving internals.
	EventImpression EventKind = "impression"
)

// Event is one interaction log record.
type Event struct {
	Seq     int64     `json:"seq"` // monotonically increasing sequence number
	Day     int       `json:"day"` // logical day, for T+1 batch boundaries
	Session int       `json:"session"`
	Tenant  int       `json:"tenant"`
	Kind    EventKind `json:"kind"`
	TagID   int       `json:"tag_id,omitempty"`
	RQID    int       `json:"rq_id,omitempty"`
}

// Log is an append-only event store, safe for concurrent appends and scans.
type Log struct {
	mu      sync.RWMutex
	events  []Event
	nextSeq int64
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append adds an event, assigning its sequence number, and returns it.
func (l *Log) Append(e Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.nextSeq
	l.nextSeq++
	l.events = append(l.events, e)
	return e
}

// Len returns the number of stored events.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// ScanDays returns all events with fromDay <= Day < toDay in sequence order.
func (l *Log) ScanDays(fromDay, toDay int) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.events {
		if e.Day >= fromDay && e.Day < toDay {
			out = append(out, e)
		}
	}
	return out
}

// EventsSince returns every event with Seq >= cursor in sequence order plus
// the cursor to pass next time (one past the last returned event's Seq; the
// input cursor unchanged when the window is empty). It is the incremental
// tail API of the online learner: calling it repeatedly with the returned
// cursor visits every event exactly once, regardless of how appends
// interleave with tailing, because sequence numbers are assigned under the
// append lock and the slice is seq-ordered (Load re-sorts to restore the
// invariant for logs persisted out of order).
func (l *Log) EventsSince(cursor int64) ([]Event, int64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	// Binary search for the first event at or past the cursor: the events
	// slice is ordered by Seq (append assigns increasing seqs; Load sorts).
	i := sort.Search(len(l.events), func(i int) bool { return l.events[i].Seq >= cursor })
	if i == len(l.events) {
		return nil, cursor
	}
	out := append([]Event(nil), l.events[i:]...)
	return out, out[len(out)-1].Seq + 1
}

// SessionClicks reconstructs per-session click sequences from the events in
// [fromDay, toDay), keyed by session id, clicks in sequence order. The TagRec
// trainer consumes this to build training sessions and the clk relation.
func (l *Log) SessionClicks(fromDay, toDay int) map[int][]int {
	out := map[int][]int{}
	for _, e := range l.ScanDays(fromDay, toDay) {
		if e.Kind == EventClick {
			out[e.Session] = append(out[e.Session], e.TagID)
		}
	}
	return out
}

// SessionRQVisits reconstructs per-session RQ consultation sequences, the
// source of the cst relation.
func (l *Log) SessionRQVisits(fromDay, toDay int) map[int][]int {
	out := map[int][]int{}
	for _, e := range l.ScanDays(fromDay, toDay) {
		if e.Kind == EventQuestion {
			out[e.Session] = append(out[e.Session], e.RQID)
		}
	}
	return out
}

// CountKind returns the number of events of the given kind in [fromDay,
// toDay); used for HIR (human intervention rate) accounting.
func (l *Log) CountKind(kind EventKind, fromDay, toDay int) int {
	var n int
	for _, e := range l.ScanDays(fromDay, toDay) {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// SessionTenants returns the tenant of each session seen in [fromDay,
// toDay).
func (l *Log) SessionTenants(fromDay, toDay int) map[int]int {
	out := map[int]int{}
	for _, e := range l.ScanDays(fromDay, toDay) {
		out[e.Session] = e.Tenant
	}
	return out
}

// Days returns the sorted distinct logical days present in the log.
func (l *Log) Days() []int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := map[int]bool{}
	for _, e := range l.events {
		seen[e.Day] = true
	}
	var days []int
	for d := range seen {
		days = append(days, d)
	}
	sort.Ints(days)
	return days
}

// Save writes the log as JSON to path.
func (l *Log) Save(path string) error {
	l.mu.RLock()
	data, err := json.Marshal(l.events)
	l.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load replaces the log contents from a JSON file written by Save.
func (l *Log) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: read: %w", err)
	}
	var events []Event
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("store: unmarshal: %w", err)
	}
	// Restore the seq-order invariant EventsSince relies on: a hand-edited
	// or merged JSON file may list events out of order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = events
	l.nextSeq = 0
	for _, e := range events {
		if e.Seq >= l.nextSeq {
			l.nextSeq = e.Seq + 1
		}
	}
	return nil
}
