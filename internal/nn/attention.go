package nn

import (
	"fmt"
	"math"

	"intellitag/internal/mat"
)

// MultiHeadSelfAttention implements the scaled dot-product self-attention of
// Vaswani et al., the "MultiHead" operator of the paper's contextual
// attention (eq. 9). It is bidirectional (no causal mask), matching the
// BERT4Rec-style masked training the paper uses.
type MultiHeadSelfAttention struct {
	Dim, Heads int
	headDim    int
	Wq, Wk, Wv *Linear
	Wo         *Linear

	// caches for backward
	x          *mat.Matrix
	q, k, v    *mat.Matrix
	attn       []*mat.Matrix // per-head attention weights (n x n)
	concat     *mat.Matrix
	lastScores []*mat.Matrix // per-head pre-softmax scores, for introspection
}

// NewMultiHeadSelfAttention returns an attention block with dim split across
// heads; dim must be divisible by heads.
func NewMultiHeadSelfAttention(name string, dim, heads int, g *mat.RNG) *MultiHeadSelfAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadSelfAttention{
		Dim: dim, Heads: heads, headDim: dim / heads,
		Wq: NewLinear(name+".Wq", dim, dim, g),
		Wk: NewLinear(name+".Wk", dim, dim, g),
		Wv: NewLinear(name+".Wv", dim, dim, g),
		Wo: NewLinear(name+".Wo", dim, dim, g),
	}
}

// colBlock extracts columns [h*w, (h+1)*w) of m as a new matrix.
func colBlock(m *mat.Matrix, h, w int) *mat.Matrix {
	out := mat.New(m.Rows, w)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[h*w:(h+1)*w])
	}
	return out
}

// addColBlock adds src into columns [h*w, (h+1)*w) of dst.
func addColBlock(dst, src *mat.Matrix, h, w int) {
	for i := 0; i < dst.Rows; i++ {
		drow := dst.Row(i)[h*w : (h+1)*w]
		mat.AXPY(1, src.Row(i), drow)
	}
}

// Forward runs self-attention over an n x Dim input, returning n x Dim.
func (m *MultiHeadSelfAttention) Forward(x *mat.Matrix) *mat.Matrix {
	m.x = x
	m.q = m.Wq.Forward(x)
	m.k = m.Wk.Forward(x)
	m.v = m.Wv.Forward(x)
	n := x.Rows
	m.concat = mat.New(n, m.Dim)
	m.attn = m.attn[:0]
	m.lastScores = m.lastScores[:0]
	scale := 1 / math.Sqrt(float64(m.headDim))
	for h := 0; h < m.Heads; h++ {
		qh := colBlock(m.q, h, m.headDim)
		kh := colBlock(m.k, h, m.headDim)
		vh := colBlock(m.v, h, m.headDim)
		scores := mat.MatMulT(qh, kh)
		mat.ScaleInPlace(scores, scale)
		m.lastScores = append(m.lastScores, scores.Clone())
		a := mat.SoftmaxRows(scores)
		m.attn = append(m.attn, a)
		oh := mat.MatMul(a, vh)
		addColBlock(m.concat, oh, h, m.headDim)
	}
	return m.Wo.Forward(m.concat)
}

// AttentionWeights returns the per-head softmax attention matrices of the
// most recent Forward call; used by the Figure 5 case study.
func (m *MultiHeadSelfAttention) AttentionWeights() []*mat.Matrix { return m.attn }

// Backward accumulates all projection gradients and returns dX.
func (m *MultiHeadSelfAttention) Backward(dOut *mat.Matrix) *mat.Matrix {
	dConcat := m.Wo.Backward(dOut)
	n := m.x.Rows
	dq := mat.New(n, m.Dim)
	dk := mat.New(n, m.Dim)
	dv := mat.New(n, m.Dim)
	scale := 1 / math.Sqrt(float64(m.headDim))
	for h := 0; h < m.Heads; h++ {
		dOh := colBlock(dConcat, h, m.headDim)
		a := m.attn[h]
		vh := colBlock(m.v, h, m.headDim)
		qh := colBlock(m.q, h, m.headDim)
		kh := colBlock(m.k, h, m.headDim)

		dA := mat.MatMulT(dOh, vh) // n x n
		dVh := mat.TMatMul(a, dOh) // n x headDim

		// Softmax backward per row: dS = A * (dA - rowsum(dA*A)).
		dS := mat.New(n, n)
		for i := 0; i < n; i++ {
			arow, darow, dsrow := a.Row(i), dA.Row(i), dS.Row(i)
			var dot float64
			for j, av := range arow {
				dot += darow[j] * av
			}
			for j, av := range arow {
				dsrow[j] = av * (darow[j] - dot)
			}
		}
		mat.ScaleInPlace(dS, scale)
		dQh := mat.MatMul(dS, kh)  // n x headDim
		dKh := mat.TMatMul(dS, qh) // n x headDim

		addColBlock(dq, dQh, h, m.headDim)
		addColBlock(dk, dKh, h, m.headDim)
		addColBlock(dv, dVh, h, m.headDim)
	}
	dx := m.Wq.Backward(dq)
	mat.AddInPlace(dx, m.Wk.Backward(dk))
	mat.AddInPlace(dx, m.Wv.Backward(dv))
	return dx
}

// CollectParams registers the four projections.
func (m *MultiHeadSelfAttention) CollectParams(c *Collector) {
	m.Wq.CollectParams(c)
	m.Wk.CollectParams(c)
	m.Wv.CollectParams(c)
	m.Wo.CollectParams(c)
}
