package nn

import (
	"fmt"
	"math"

	"intellitag/internal/mat"
)

// MultiHeadSelfAttention implements the scaled dot-product self-attention of
// Vaswani et al., the "MultiHead" operator of the paper's contextual
// attention (eq. 9). It is bidirectional (no causal mask), matching the
// BERT4Rec-style masked training the paper uses.
//
// All per-head work reads and writes column blocks [h*headDim, (h+1)*headDim)
// of the projection buffers in place — no per-head copies. Every dot product
// and accumulation runs in the same order as an explicit block-copy version
// would, so results are bit-identical to one. All returned/cached matrices
// are owned by the layer and reused across calls.
type MultiHeadSelfAttention struct {
	Dim, Heads int
	headDim    int
	Wq, Wk, Wv *Linear
	Wo         *Linear

	// caches for backward
	x          *mat.Matrix
	q, k, v    *mat.Matrix
	attn       []*mat.Matrix // per-head attention weights (n x n)
	concat     *mat.Matrix
	lastScores []*mat.Matrix // per-head pre-softmax scores, for introspection

	// backward scratch, reused across calls
	dq, dk, dv *mat.Matrix
	dA, dS     *mat.Matrix
}

// NewMultiHeadSelfAttention returns an attention block with dim split across
// heads; dim must be divisible by heads.
func NewMultiHeadSelfAttention(name string, dim, heads int, g *mat.RNG) *MultiHeadSelfAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadSelfAttention{
		Dim: dim, Heads: heads, headDim: dim / heads,
		Wq: NewLinear(name+".Wq", dim, dim, g),
		Wk: NewLinear(name+".Wk", dim, dim, g),
		Wv: NewLinear(name+".Wv", dim, dim, g),
		Wo: NewLinear(name+".Wo", dim, dim, g),
	}
}

// blockMulT writes dst[i][j] = dot(a.Row(i)[lo:hi], b.Row(j)[lo:hi]) — the
// block-column equivalent of MatMulT(colBlock(a), colBlock(b)).
func blockMulT(dst, a, b *mat.Matrix, lo, hi int) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)[lo:hi]
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)[lo:hi]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// blockMulAdd accumulates a * block(b) into the [lo:hi) column block of dst,
// which must be zero there; matches MatMul's loop order and zero-skip so the
// result is bit-identical to MatMul(a, colBlock(b)) added onto zeros.
func blockMulAdd(dst, a, b *mat.Matrix, lo, hi int) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)[lo:hi]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)[lo:hi]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// blockTMulAdd accumulates a^T * block(b) into the [lo:hi) column block of
// dst (which must be zero there); bit-identical to TMatMul(a, colBlock(b))
// added onto zeros.
func blockTMulAdd(dst, a, b *mat.Matrix, lo, hi int) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)[lo:hi]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := dst.Row(i)[lo:hi]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Forward runs self-attention over an n x Dim input, returning n x Dim. The
// result and the cached attention matrices are owned by the layer and valid
// until the next Forward call.
func (m *MultiHeadSelfAttention) Forward(x *mat.Matrix) *mat.Matrix {
	m.x = x
	m.q = m.Wq.Forward(x)
	m.k = m.Wk.Forward(x)
	m.v = m.Wv.Forward(x)
	n := x.Rows
	m.concat = mat.Ensure(m.concat, n, m.Dim)
	m.concat.Zero()
	if m.attn == nil {
		m.attn = make([]*mat.Matrix, m.Heads)
		m.lastScores = make([]*mat.Matrix, m.Heads)
	}
	scale := 1 / math.Sqrt(float64(m.headDim))
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*m.headDim, (h+1)*m.headDim
		scores := mat.Ensure(m.lastScores[h], n, n)
		m.lastScores[h] = scores
		blockMulT(scores, m.q, m.k, lo, hi)
		mat.ScaleInPlace(scores, scale)
		a := mat.Ensure(m.attn[h], n, n)
		m.attn[h] = a
		mat.SoftmaxRowsInto(a, scores)
		blockMulAdd(m.concat, a, m.v, lo, hi)
	}
	return m.Wo.Forward(m.concat)
}

// AttentionWeights returns the per-head softmax attention matrices of the
// most recent Forward call; used by the Figure 5 case study. The matrices are
// layer-owned — read (or copy) them before the next Forward.
func (m *MultiHeadSelfAttention) AttentionWeights() []*mat.Matrix { return m.attn }

// Backward accumulates all projection gradients and returns dX.
func (m *MultiHeadSelfAttention) Backward(dOut *mat.Matrix) *mat.Matrix {
	dConcat := m.Wo.Backward(dOut)
	n := m.x.Rows
	m.dq = mat.Ensure(m.dq, n, m.Dim)
	m.dk = mat.Ensure(m.dk, n, m.Dim)
	m.dv = mat.Ensure(m.dv, n, m.Dim)
	m.dq.Zero()
	m.dk.Zero()
	m.dv.Zero()
	m.dA = mat.Ensure(m.dA, n, n)
	m.dS = mat.Ensure(m.dS, n, n)
	scale := 1 / math.Sqrt(float64(m.headDim))
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*m.headDim, (h+1)*m.headDim
		a := m.attn[h]

		blockMulT(m.dA, dConcat, m.v, lo, hi)  // dA = dOh * vh^T, n x n
		blockTMulAdd(m.dv, a, dConcat, lo, hi) // dVh = a^T * dOh

		// Softmax backward per row: dS = A * (dA - rowsum(dA*A)).
		for i := 0; i < n; i++ {
			arow, darow, dsrow := a.Row(i), m.dA.Row(i), m.dS.Row(i)
			var dot float64
			for j, av := range arow {
				dot += darow[j] * av
			}
			for j, av := range arow {
				dsrow[j] = av * (darow[j] - dot)
			}
		}
		mat.ScaleInPlace(m.dS, scale)
		blockMulAdd(m.dq, m.dS, m.k, lo, hi)  // dQh = dS * kh
		blockTMulAdd(m.dk, m.dS, m.q, lo, hi) // dKh = dS^T * qh
	}
	dx := m.Wq.Backward(m.dq)
	mat.AddInPlace(dx, m.Wk.Backward(m.dk))
	mat.AddInPlace(dx, m.Wv.Backward(m.dv))
	return dx
}

// CollectParams registers the four projections.
func (m *MultiHeadSelfAttention) CollectParams(c *Collector) {
	m.Wq.CollectParams(c)
	m.Wk.CollectParams(c)
	m.Wv.CollectParams(c)
	m.Wo.CollectParams(c)
}
