package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears nothing; callers zero grads.
	Step(params []*Param)
	// SetLR overrides the current learning rate (used by LR schedules).
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	lr       float64
	momentum float64
	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum
// (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{lr: lr, momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step applies one SGD update to each parameter.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.momentum == 0 {
			for i, g := range p.Grad.Data {
				p.Value.Data[i] -= o.lr * g
			}
			continue
		}
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float64, len(p.Value.Data))
			o.velocity[p] = v
		}
		for i, g := range p.Grad.Data {
			v[i] = o.momentum*v[i] + g
			p.Value.Data[i] -= o.lr * v[i]
		}
	}
}

// SetLR overrides the learning rate.
func (o *SGD) SetLR(lr float64) { o.lr = lr }

// LR reports the learning rate.
func (o *SGD) LR() float64 { return o.lr }

// Adam implements Kingma & Ba's Adam with decoupled weight decay, the
// optimizer the paper trains every model with (lr 0.001, weight decay 0.01).
type Adam struct {
	lr, beta1, beta2, eps float64
	weightDecay           float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam returns an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8,
		weightDecay: weightDecay,
		m:           make(map[*Param][]float64),
		v:           make(map[*Param][]float64),
	}
}

// Step applies one Adam update to each parameter.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.Value.Data))
			o.m[p] = m
			o.v[p] = make([]float64, len(p.Value.Data))
		}
		v := o.v[p]
		for i, g := range p.Grad.Data {
			if o.weightDecay != 0 {
				// Decoupled weight decay (AdamW style).
				p.Value.Data[i] -= o.lr * o.weightDecay * p.Value.Data[i]
			}
			m[i] = o.beta1*m[i] + (1-o.beta1)*g
			v[i] = o.beta2*v[i] + (1-o.beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.Value.Data[i] -= o.lr * mhat / (math.Sqrt(vhat) + o.eps)
		}
	}
}

// SetLR overrides the learning rate.
func (o *Adam) SetLR(lr float64) { o.lr = lr }

// LR reports the learning rate.
func (o *Adam) LR() float64 { return o.lr }

// LinearDecay returns the learning rate for the given step of a linear decay
// schedule from base to zero over totalSteps, matching the paper's "linear
// decay of the learning rate".
func LinearDecay(base float64, step, totalSteps int) float64 {
	if totalSteps <= 0 || step >= totalSteps {
		return 0
	}
	return base * (1 - float64(step)/float64(totalSteps))
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm. A maxNorm <= 0 disables clipping.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}
