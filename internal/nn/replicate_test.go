package nn

import (
	"math"
	"testing"

	"intellitag/internal/mat"
)

func TestShadowSharesValueOwnsGrad(t *testing.T) {
	p := NewParam("p", 2, 3)
	p.Value.Fill(1.5)
	s := p.Shadow()
	if s.Value != p.Value {
		t.Fatal("shadow must alias the master value")
	}
	if s.Grad == p.Grad {
		t.Fatal("shadow must own its gradient")
	}
	s.Grad.Fill(2)
	for _, g := range p.Grad.Data {
		if g != 0 {
			t.Fatal("shadow grad leaked into master")
		}
	}
}

func TestMergeGradsOrderedAndZeroing(t *testing.T) {
	master := []*Param{NewParam("a", 1, 2), NewParam("b", 2, 2)}
	rep := []*Param{master[0].Shadow(), master[1].Shadow()}
	rep[0].Grad.Data[0] = 3
	rep[1].Grad.Data[3] = -1
	MergeGrads(master, rep)
	if master[0].Grad.Data[0] != 3 || master[1].Grad.Data[3] != -1 {
		t.Fatal("grads not merged")
	}
	if rep[0].Grad.Data[0] != 0 || rep[1].Grad.Data[3] != 0 {
		t.Fatal("replica grads not cleared")
	}
	ScaleGrads(master, 0.5)
	if master[0].Grad.Data[0] != 1.5 {
		t.Fatal("ScaleGrads failed")
	}
}

func TestEncoderReplicaMatchesMasterForward(t *testing.T) {
	g := mat.NewRNG(1)
	enc := NewEncoder("t", 2, 8, 2, 0, g)
	enc.SetTrain(false)
	rep := enc.Replicate()
	rep.SetTrain(false)
	x := mat.New(5, 8)
	mat.NewRNG(2).Normal(x, 1)
	a := enc.Forward(x.Clone())
	b := rep.Forward(x.Clone())
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-12 {
			t.Fatalf("replica forward diverges at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
	// Replica backward must leave the master's grads untouched.
	c := NewCollector()
	enc.CollectParams(c)
	rc := NewCollector()
	rep.CollectParams(rc)
	if len(c.Params()) != len(rc.Params()) {
		t.Fatalf("collector misalignment: %d vs %d", len(c.Params()), len(rc.Params()))
	}
	dOut := mat.New(5, 8)
	dOut.Fill(0.1)
	rep.Backward(dOut)
	for _, p := range c.Params() {
		for _, gv := range p.Grad.Data {
			if gv != 0 {
				t.Fatalf("master grad %s dirtied by replica backward", p.Name)
			}
		}
	}
	MergeGrads(c.Params(), rc.Params())
	var total float64
	for _, p := range c.Params() {
		for _, gv := range p.Grad.Data {
			total += math.Abs(gv)
		}
	}
	if total == 0 {
		t.Fatal("merge produced no gradient")
	}
}

func TestGRUReplicaMatchesMaster(t *testing.T) {
	g := mat.NewRNG(3)
	gru := NewGRU("g", 4, 6, g)
	rep := gru.Replicate()
	x := mat.New(7, 4)
	mat.NewRNG(4).Normal(x, 1)
	a := gru.Forward(x)
	b := rep.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("GRU replica forward diverges")
		}
	}
}
