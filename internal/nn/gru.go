package nn

import (
	"math"

	"intellitag/internal/mat"
)

// GRU is a single-layer gated recurrent unit run over a whole sequence with
// full backpropagation through time. It is the sequence model behind the
// GRU4Rec baseline.
type GRU struct {
	In, Hidden int
	// Input weights (In x Hidden), recurrent weights (Hidden x Hidden) and
	// biases (1 x Hidden) for the update (z), reset (r) and candidate (h)
	// gates.
	Wz, Wr, Wh *Param
	Uz, Ur, Uh *Param
	Bz, Br, Bh *Param

	// Per-step caches for BPTT.
	xs         *mat.Matrix
	hs         *mat.Matrix // hidden states h_1..h_n
	zs, rs, cs *mat.Matrix
	rhPrev     *mat.Matrix // r ⊙ h_{t-1}

	// Owned scratch, reused across calls.
	hPrev, az, ar, ah, ftmp                    []float64
	dx                                         *mat.Matrix
	dhNext, daz, dar, dah, drh, dhPrev, dh, h0 []float64
	btmp                                       []float64
}

// NewGRU returns an initialized GRU.
func NewGRU(name string, in, hidden int, g *mat.RNG) *GRU {
	gr := &GRU{
		In: in, Hidden: hidden,
		Wz: NewParam(name+".Wz", in, hidden), Wr: NewParam(name+".Wr", in, hidden), Wh: NewParam(name+".Wh", in, hidden),
		Uz: NewParam(name+".Uz", hidden, hidden), Ur: NewParam(name+".Ur", hidden, hidden), Uh: NewParam(name+".Uh", hidden, hidden),
		Bz: NewParam(name+".bz", 1, hidden), Br: NewParam(name+".br", 1, hidden), Bh: NewParam(name+".bh", 1, hidden),
	}
	for _, p := range []*Param{gr.Wz, gr.Wr, gr.Wh, gr.Uz, gr.Ur, gr.Uh} {
		p.InitXavier(g)
	}
	return gr
}

// vecMat computes v * M for a row vector v (len == M.Rows) into dst.
func vecMat(v []float64, m *mat.Matrix, dst []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		mat.AXPY(vi, m.Row(i), dst)
	}
}

// outerAcc accumulates a^T b into grad (len(a) x len(b)).
func outerAcc(grad *mat.Matrix, a, b []float64) {
	for i, av := range a {
		if av == 0 {
			continue
		}
		mat.AXPY(av, b, grad.Row(i))
	}
}

// Forward runs the GRU over an n x In sequence, returning the n x Hidden
// matrix of hidden states (row t is h_{t+1}).
func (g *GRU) Forward(x *mat.Matrix) *mat.Matrix {
	n := x.Rows
	g.xs = x
	g.hs = mat.Ensure(g.hs, n, g.Hidden)
	g.zs = mat.Ensure(g.zs, n, g.Hidden)
	g.rs = mat.Ensure(g.rs, n, g.Hidden)
	g.cs = mat.Ensure(g.cs, n, g.Hidden)
	g.rhPrev = mat.Ensure(g.rhPrev, n, g.Hidden)

	g.hPrev = mat.EnsureVec(g.hPrev, g.Hidden)
	g.az = mat.EnsureVec(g.az, g.Hidden)
	g.ar = mat.EnsureVec(g.ar, g.Hidden)
	g.ah = mat.EnsureVec(g.ah, g.Hidden)
	g.ftmp = mat.EnsureVec(g.ftmp, g.Hidden)
	hPrev, az, ar, ah, tmp := g.hPrev, g.az, g.ar, g.ah, g.ftmp
	for j := range hPrev {
		hPrev[j] = 0
	}
	for t := 0; t < n; t++ {
		xt := x.Row(t)
		vecMat(xt, g.Wz.Value, az)
		vecMat(hPrev, g.Uz.Value, tmp)
		for j := range az {
			az[j] += tmp[j] + g.Bz.Value.At(0, j)
		}
		vecMat(xt, g.Wr.Value, ar)
		vecMat(hPrev, g.Ur.Value, tmp)
		for j := range ar {
			ar[j] += tmp[j] + g.Br.Value.At(0, j)
		}
		z, r, c, rh, h := g.zs.Row(t), g.rs.Row(t), g.cs.Row(t), g.rhPrev.Row(t), g.hs.Row(t)
		for j := range z {
			z[j] = Sigmoid(az[j])
			r[j] = Sigmoid(ar[j])
			rh[j] = r[j] * hPrev[j]
		}
		vecMat(xt, g.Wh.Value, ah)
		vecMat(rh, g.Uh.Value, tmp)
		for j := range ah {
			ah[j] += tmp[j] + g.Bh.Value.At(0, j)
			c[j] = math.Tanh(ah[j])
			h[j] = (1-z[j])*hPrev[j] + z[j]*c[j]
		}
		copy(hPrev, h)
	}
	return g.hs
}

// Backward performs BPTT given dH (gradient w.r.t. every hidden state) and
// returns dX.
func (g *GRU) Backward(dH *mat.Matrix) *mat.Matrix {
	n := dH.Rows
	g.dx = mat.Ensure(g.dx, n, g.In)
	g.dx.Zero()
	dx := g.dx
	g.dhNext = mat.EnsureVec(g.dhNext, g.Hidden) // recurrent gradient flowing backward
	g.daz = mat.EnsureVec(g.daz, g.Hidden)
	g.dar = mat.EnsureVec(g.dar, g.Hidden)
	g.dah = mat.EnsureVec(g.dah, g.Hidden)
	g.drh = mat.EnsureVec(g.drh, g.Hidden)
	g.dhPrev = mat.EnsureVec(g.dhPrev, g.Hidden)
	g.dh = mat.EnsureVec(g.dh, g.Hidden)
	g.h0 = mat.EnsureVec(g.h0, g.Hidden)
	g.btmp = mat.EnsureVec(g.btmp, max(g.In, g.Hidden))
	dhNext, daz, dar, dah, drh, dhPrev, tmp := g.dhNext, g.daz, g.dar, g.dah, g.drh, g.dhPrev, g.btmp
	for j := range dhNext {
		dhNext[j] = 0
		g.h0[j] = 0
	}
	for t := n - 1; t >= 0; t-- {
		var hPrev []float64
		if t > 0 {
			hPrev = g.hs.Row(t - 1)
		} else {
			hPrev = g.h0
		}
		z, r, c, rh := g.zs.Row(t), g.rs.Row(t), g.cs.Row(t), g.rhPrev.Row(t)
		dh := g.dh
		copy(dh, dH.Row(t))
		mat.AXPY(1, dhNext, dh)

		for j := range dh {
			dc := dh[j] * z[j]
			dz := dh[j] * (c[j] - hPrev[j])
			dhPrev[j] = dh[j] * (1 - z[j])
			dah[j] = dc * (1 - c[j]*c[j])
			daz[j] = dz * z[j] * (1 - z[j])
		}
		// d(r ⊙ hPrev) = dah * Uh^T
		matVecT(g.Uh.Value, dah, drh)
		for j := range drh {
			dr := drh[j] * hPrev[j]
			dhPrev[j] += drh[j] * r[j]
			dar[j] = dr * r[j] * (1 - r[j])
		}
		// Parameter gradients.
		xt := g.xs.Row(t)
		outerAcc(g.Wz.Grad, xt, daz)
		outerAcc(g.Wr.Grad, xt, dar)
		outerAcc(g.Wh.Grad, xt, dah)
		outerAcc(g.Uz.Grad, hPrev, daz)
		outerAcc(g.Ur.Grad, hPrev, dar)
		outerAcc(g.Uh.Grad, rh, dah)
		mat.AXPY(1, daz, g.Bz.Grad.Row(0))
		mat.AXPY(1, dar, g.Br.Grad.Row(0))
		mat.AXPY(1, dah, g.Bh.Grad.Row(0))
		// Input gradient.
		dxr := dx.Row(t)
		matVecT(g.Wz.Value, daz, tmp)
		mat.AXPY(1, tmp[:g.In], dxr)
		matVecT(g.Wr.Value, dar, tmp)
		mat.AXPY(1, tmp[:g.In], dxr)
		matVecT(g.Wh.Value, dah, tmp)
		mat.AXPY(1, tmp[:g.In], dxr)
		// Recurrent gradient to previous step.
		matVecT(g.Uz.Value, daz, tmp)
		mat.AXPY(1, tmp[:g.Hidden], dhPrev)
		matVecT(g.Ur.Value, dar, tmp)
		mat.AXPY(1, tmp[:g.Hidden], dhPrev)
		copy(dhNext, dhPrev)
	}
	return dx
}

// matVecT computes dst_i = sum_j M_ij v_j (i.e. M v) for the first M.Rows
// entries of dst; dst must have len >= M.Rows.
func matVecT(m *mat.Matrix, v, dst []float64) {
	for i := 0; i < m.Rows; i++ {
		dst[i] = mat.Dot(m.Row(i), v)
	}
}

// CollectParams registers all nine weight groups.
func (g *GRU) CollectParams(c *Collector) {
	c.Add(g.Wz, g.Wr, g.Wh, g.Uz, g.Ur, g.Uh, g.Bz, g.Br, g.Bh)
}
