package nn

import (
	"os"
	"path/filepath"
	"testing"
)

// Corrupt-input failure injection: loaders must reject malformed files with
// an error rather than panicking or silently loading garbage.

func TestLoadParamsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.gob")
	if err := os.WriteFile(path, []byte("this is not gob data at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewParam("p", 1, 1)
	if err := LoadParams(path, []*Param{p}); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadMatrixCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.gob")
	if err := os.WriteFile(path, []byte{0x00, 0x01, 0x02}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMatrix(path); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadParamsTruncatedFile(t *testing.T) {
	// Write a valid snapshot, then truncate it mid-stream.
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	p := NewParam("p", 10, 10)
	if err := SaveParams(path, []*Param{p}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(path, []*Param{p}); err == nil {
		t.Fatal("expected error on truncated snapshot")
	}
}
