package nn

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"intellitag/internal/snapshot"
)

// Corrupt-input failure injection: loaders must reject malformed files with
// an error wrapping snapshot.ErrChecksum rather than panicking, silently
// loading garbage, or surfacing an opaque partial gob decode.

func TestLoadParamsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.gob")
	if err := os.WriteFile(path, []byte("this is not gob data at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewParam("p", 1, 1)
	err := LoadParams(path, []*Param{p})
	if err == nil {
		t.Fatal("expected decode error")
	}
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("enveloped loader should report ErrChecksum for a foreign file, got %v", err)
	}
}

func TestLoadMatrixCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.gob")
	if err := os.WriteFile(path, []byte{0x00, 0x01, 0x02}, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadMatrix(path)
	if err == nil {
		t.Fatal("expected decode error")
	}
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("enveloped loader should report ErrChecksum for a foreign file, got %v", err)
	}
}

func TestLoadParamsTruncatedFile(t *testing.T) {
	// Write a valid snapshot, then truncate it mid-stream.
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	p := NewParam("p", 10, 10)
	if err := SaveParams(path, []*Param{p}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	err = LoadParams(path, []*Param{p})
	if err == nil {
		t.Fatal("expected error on truncated snapshot")
	}
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("truncation should surface as ErrChecksum, got %v", err)
	}
}

func TestLoadParamsBitFlip(t *testing.T) {
	// A single flipped payload bit must fail the envelope digest — the gob
	// decoder would happily produce subtly wrong weights otherwise.
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	p := NewParam("p", 4, 4)
	for i := range p.Value.Data {
		p.Value.Data[i] = float64(i)
	}
	if err := SaveParams(path, []*Param{p}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01 // the digest lives in the header; this is payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = LoadParams(path, []*Param{p})
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("bit flip should surface as ErrChecksum, got %v", err)
	}
}
