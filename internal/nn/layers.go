package nn

import (
	"math"

	"intellitag/internal/mat"
)

// Buffer discipline (see DESIGN.md "Memory discipline"): every layer owns its
// forward output and backward dX buffers and reuses them across steps via
// mat.Ensure. A layer's returned matrix is therefore only valid until the next
// Forward/Backward call on that same layer instance — callers that need the
// values longer must copy. Gradient accumulation into shared Params goes
// through mat.Shared pool scratch so the floating-point accumulation order is
// identical to the old allocating code (bit-identical training trajectories).

// Linear is a fully connected layer computing x*W + b for row-vector inputs.
type Linear struct {
	In, Out int
	W       *Param // In x Out
	B       *Param // 1 x Out
	useBias bool

	x   *mat.Matrix // cached input
	out *mat.Matrix // owned forward buffer, reused across calls
	dx  *mat.Matrix // owned backward buffer
}

// NewLinear returns an initialized In->Out linear layer.
func NewLinear(name string, in, out int, g *mat.RNG) *Linear {
	l := &Linear{In: in, Out: out, W: NewParam(name+".W", in, out), B: NewParam(name+".b", 1, out), useBias: true}
	l.W.InitXavier(g)
	return l
}

// NewLinearNoBias returns a bias-free linear layer.
func NewLinearNoBias(name string, in, out int, g *mat.RNG) *Linear {
	l := NewLinear(name, in, out, g)
	l.useBias = false
	return l
}

// Forward computes x*W(+b) for an n x In input, returning n x Out. The result
// is owned by the layer and overwritten by the next Forward call.
func (l *Linear) Forward(x *mat.Matrix) *mat.Matrix {
	if x.Cols != l.In {
		shapeCheck("Linear.Forward", x, x.Rows, l.In)
	}
	l.x = x
	l.out = mat.Ensure(l.out, x.Rows, l.Out)
	mat.MatMulInto(l.out, x, l.W.Value)
	if l.useBias {
		mat.AddRowVecInto(l.out, l.out, l.B.Value.Row(0))
	}
	return l.out
}

// Backward accumulates dW, db and returns dX.
func (l *Linear) Backward(dOut *mat.Matrix) *mat.Matrix {
	return l.BackwardAt(l.x, dOut)
}

// BackwardAt accumulates gradients like Backward but against an explicitly
// supplied input, for layers applied more than once per forward pass (e.g.
// shared message transforms in graph propagation).
func (l *Linear) BackwardAt(x, dOut *mat.Matrix) *mat.Matrix {
	dW := mat.Shared.Get(l.In, l.Out)
	mat.TMatMulInto(dW, x, dOut)
	mat.AddInPlace(l.W.Grad, dW)
	mat.Shared.Put(dW)
	if l.useBias {
		bg := l.B.Grad.Row(0)
		for i := 0; i < dOut.Rows; i++ {
			mat.AXPY(1, dOut.Row(i), bg)
		}
	}
	l.dx = mat.Ensure(l.dx, dOut.Rows, l.In)
	mat.MatMulTInto(l.dx, dOut, l.W.Value)
	return l.dx
}

// CollectParams registers W (and b when used).
func (l *Linear) CollectParams(c *Collector) {
	c.Add(l.W)
	if l.useBias {
		c.Add(l.B)
	}
}

// Embedding maps integer ids to dense rows of a trainable table.
type Embedding struct {
	Vocab, Dim int
	Table      *Param

	ids []int       // cached lookup for backward
	out *mat.Matrix // owned forward buffer
}

// NewEmbedding returns a Vocab x Dim embedding table initialized N(0, 0.02).
func NewEmbedding(name string, vocab, dim int, g *mat.RNG) *Embedding {
	e := &Embedding{Vocab: vocab, Dim: dim, Table: NewParam(name+".table", vocab, dim)}
	e.Table.InitNormal(g, 0.02)
	return e
}

// Forward gathers the rows for ids into a len(ids) x Dim matrix, owned by the
// layer and overwritten on the next call.
func (e *Embedding) Forward(ids []int) *mat.Matrix {
	e.ids = append(e.ids[:0], ids...)
	e.out = mat.Ensure(e.out, len(ids), e.Dim)
	for i, id := range ids {
		copy(e.out.Row(i), e.Table.Value.Row(id))
	}
	return e.out
}

// Backward scatters dOut rows into the table gradient.
func (e *Embedding) Backward(dOut *mat.Matrix) {
	for i, id := range e.ids {
		mat.AXPY(1, dOut.Row(i), e.Table.Grad.Row(id))
	}
}

// CollectParams registers the table.
func (e *Embedding) CollectParams(c *Collector) { c.Add(e.Table) }

// LayerNorm normalizes each row to zero mean / unit variance then applies a
// learned affine transform, as in the Transformer's Norm operator.
type LayerNorm struct {
	Dim   int
	Gamma *Param // 1 x Dim
	Beta  *Param // 1 x Dim
	eps   float64

	xhat   *mat.Matrix
	invStd []float64
	out    *mat.Matrix // owned forward buffer
	dx     *mat.Matrix // owned backward buffer
	dxhat  []float64   // per-row scratch, hoisted out of the backward loop
}

// NewLayerNorm returns a layer norm over Dim features (gamma=1, beta=0).
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{Dim: dim, Gamma: NewParam(name+".gamma", 1, dim), Beta: NewParam(name+".beta", 1, dim), eps: 1e-5}
	ln.Gamma.Value.Fill(1)
	return ln
}

// Forward normalizes each row of x. The result is owned by the layer.
func (ln *LayerNorm) Forward(x *mat.Matrix) *mat.Matrix {
	n := x.Rows
	ln.xhat = mat.Ensure(ln.xhat, n, ln.Dim)
	ln.invStd = mat.EnsureVec(ln.invStd, n)
	ln.out = mat.Ensure(ln.out, n, ln.Dim)
	gamma, beta := ln.Gamma.Value.Row(0), ln.Beta.Value.Row(0)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(ln.Dim)
		var variance float64
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(ln.Dim)
		inv := 1 / math.Sqrt(variance+ln.eps)
		ln.invStd[i] = inv
		xh, orow := ln.xhat.Row(i), ln.out.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			orow[j] = xh[j]*gamma[j] + beta[j]
		}
	}
	return ln.out
}

// Backward accumulates dGamma, dBeta and returns dX (owned by the layer).
func (ln *LayerNorm) Backward(dOut *mat.Matrix) *mat.Matrix {
	n := dOut.Rows
	ln.dx = mat.Ensure(ln.dx, n, ln.Dim)
	ln.dxhat = mat.EnsureVec(ln.dxhat, ln.Dim)
	gamma := ln.Gamma.Value.Row(0)
	gGrad, bGrad := ln.Gamma.Grad.Row(0), ln.Beta.Grad.Row(0)
	d := float64(ln.Dim)
	dxhat := ln.dxhat
	for i := 0; i < n; i++ {
		drow, xh := dOut.Row(i), ln.xhat.Row(i)
		// Parameter gradients.
		for j, g := range drow {
			gGrad[j] += g * xh[j]
			bGrad[j] += g
		}
		// dxhat = dOut * gamma; then the standard layernorm input gradient.
		var sumD, sumDX float64
		for j, g := range drow {
			dxhat[j] = g * gamma[j]
			sumD += dxhat[j]
			sumDX += dxhat[j] * xh[j]
		}
		inv := ln.invStd[i]
		dxr := ln.dx.Row(i)
		for j := range dxhat {
			dxr[j] = inv / d * (d*dxhat[j] - sumD - xh[j]*sumDX)
		}
	}
	return ln.dx
}

// CollectParams registers gamma and beta.
func (ln *LayerNorm) CollectParams(c *Collector) { c.Add(ln.Gamma, ln.Beta) }

// Dropout zeroes activations with probability p during training and is a
// no-op in eval mode; surviving activations are scaled by 1/(1-p).
type Dropout struct {
	P     float64
	Train bool
	rng   *mat.RNG

	mask    *mat.Matrix
	maskBuf *mat.Matrix // owned backing for mask, reused across steps
	out     *mat.Matrix // owned forward buffer
	dxBuf   *mat.Matrix // owned backward buffer
}

// NewDropout returns a dropout layer in training mode.
func NewDropout(p float64, g *mat.RNG) *Dropout {
	return &Dropout{P: p, Train: true, rng: g}
}

// Forward applies (inverted) dropout in training mode. In eval mode the input
// is returned unchanged; in training mode the result is layer-owned.
func (d *Dropout) Forward(x *mat.Matrix) *mat.Matrix {
	if !d.Train || d.P <= 0 {
		d.mask = nil
		return x
	}
	d.maskBuf = mat.Ensure(d.maskBuf, x.Rows, x.Cols)
	d.mask = d.maskBuf
	d.out = mat.Ensure(d.out, x.Rows, x.Cols)
	keep := 1 - d.P
	scale := 1 / keep
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = scale
			d.out.Data[i] = v * scale
		} else {
			d.mask.Data[i] = 0
			d.out.Data[i] = 0
		}
	}
	return d.out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(dOut *mat.Matrix) *mat.Matrix {
	if d.mask == nil {
		return dOut
	}
	d.dxBuf = mat.Ensure(d.dxBuf, dOut.Rows, dOut.Cols)
	mat.MulInto(d.dxBuf, dOut, d.mask)
	return d.dxBuf
}

// Activation is an elementwise nonlinearity with a cached backward pass.
type Activation struct {
	fn, dfn func(float64) float64
	x       *mat.Matrix
	out     *mat.Matrix // owned forward buffer
	dx      *mat.Matrix // owned backward buffer
}

// NewReLU returns a ReLU activation.
func NewReLU() *Activation {
	return &Activation{
		fn:  func(v float64) float64 { return math.Max(0, v) },
		dfn: func(v float64) float64 { return step(v > 0) },
	}
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope; the paper's
// neighbor attention (eq. 4) uses this activation.
func NewLeakyReLU(slope float64) *Activation {
	return &Activation{
		fn: func(v float64) float64 {
			if v > 0 {
				return v
			}
			return slope * v
		},
		dfn: func(v float64) float64 {
			if v > 0 {
				return 1
			}
			return slope
		},
	}
}

// NewTanh returns a tanh activation (metapath attention, eq. 6).
func NewTanh() *Activation {
	return &Activation{
		fn: math.Tanh,
		dfn: func(v float64) float64 {
			t := math.Tanh(v)
			return 1 - t*t
		},
	}
}

// NewSigmoid returns a sigmoid activation (neighbor aggregation, eq. 5).
func NewSigmoid() *Activation {
	return &Activation{
		fn: Sigmoid,
		dfn: func(v float64) float64 {
			s := Sigmoid(v)
			return s * (1 - s)
		},
	}
}

// NewGELU returns the Gaussian error linear unit used inside Transformer
// feed-forward blocks.
func NewGELU() *Activation {
	return &Activation{fn: gelu, dfn: geluGrad}
}

// Forward applies the nonlinearity elementwise into a layer-owned buffer.
func (a *Activation) Forward(x *mat.Matrix) *mat.Matrix {
	a.x = x
	a.out = mat.Ensure(a.out, x.Rows, x.Cols)
	mat.ApplyInto(a.out, x, a.fn)
	return a.out
}

// Backward multiplies dOut by the derivative at the cached input.
func (a *Activation) Backward(dOut *mat.Matrix) *mat.Matrix {
	a.dx = mat.Ensure(a.dx, dOut.Rows, dOut.Cols)
	for i, g := range dOut.Data {
		a.dx.Data[i] = g * a.dfn(a.x.Data[i])
	}
	return a.dx
}

// Sigmoid is the logistic function.
func Sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func step(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func gelu(v float64) float64 {
	// tanh approximation of GELU.
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * v * (1 + math.Tanh(c*(v+0.044715*v*v*v)))
}

func geluGrad(v float64) float64 {
	const c = 0.7978845608028654
	inner := c * (v + 0.044715*v*v*v)
	t := math.Tanh(inner)
	dInner := c * (1 + 3*0.044715*v*v)
	return 0.5*(1+t) + 0.5*v*(1-t*t)*dInner
}
