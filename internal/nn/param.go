// Package nn is a small, dependency-free neural network library with
// hand-written backpropagation. It provides exactly the layers the IntelliTag
// models need: embeddings, linear projections, layer normalization, dropout,
// multi-head self-attention, Transformer encoder blocks and GRUs, together
// with losses and the Adam/SGD optimizers used in the paper.
//
// Layers follow a Forward/Backward discipline: Forward caches whatever the
// matching Backward needs, and Backward both returns the gradient with
// respect to the layer input and accumulates parameter gradients. A layer
// must therefore be driven forward-then-backward per example; trainers in
// this repository always do so.
package nn

import (
	"fmt"

	"intellitag/internal/mat"
)

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *mat.Matrix
	Grad  *mat.Matrix
}

// NewParam allocates a named rows x cols parameter with a zero gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: mat.New(rows, cols),
		Grad:  mat.New(rows, cols),
	}
}

// InitXavier fills the parameter with Glorot-uniform values.
func (p *Param) InitXavier(g *mat.RNG) { g.Xavier(p.Value) }

// InitNormal fills the parameter with N(0, std^2) values.
func (p *Param) InitNormal(g *mat.RNG, std float64) { g.Normal(p.Value, std) }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Numel returns the number of scalar elements in the parameter.
func (p *Param) Numel() int { return len(p.Value.Data) }

// Collector gathers parameters from a model so optimizers can iterate them.
type Collector struct {
	params []*Param
	seen   map[*Param]bool
}

// NewCollector returns an empty parameter collector.
func NewCollector() *Collector {
	return &Collector{seen: make(map[*Param]bool)}
}

// Add registers params, skipping duplicates (shared parameters are stepped
// exactly once per optimizer update).
func (c *Collector) Add(params ...*Param) {
	for _, p := range params {
		if p == nil || c.seen[p] {
			continue
		}
		c.seen[p] = true
		c.params = append(c.params, p)
	}
}

// Params returns the collected parameters in registration order.
func (c *Collector) Params() []*Param { return c.params }

// ZeroGrad clears the gradients of every collected parameter.
func (c *Collector) ZeroGrad() {
	for _, p := range c.params {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters collected.
func (c *Collector) NumParams() int {
	var n int
	for _, p := range c.params {
		n += p.Numel()
	}
	return n
}

// Parametric is implemented by every layer that owns trainable parameters.
type Parametric interface {
	// CollectParams registers the layer's parameters with c.
	CollectParams(c *Collector)
}

func shapeCheck(op string, m *mat.Matrix, rows, cols int) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("nn: %s expected %dx%d, got %dx%d", op, rows, cols, m.Rows, m.Cols))
	}
}
