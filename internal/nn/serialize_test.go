package nn

import (
	"path/filepath"
	"testing"

	"intellitag/internal/mat"
)

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	g := mat.NewRNG(1)
	lin := NewLinear("lin", 3, 2, g)
	emb := NewEmbedding("emb", 4, 3, g)
	c := NewCollector()
	lin.CollectParams(c)
	emb.CollectParams(c)

	path := filepath.Join(t.TempDir(), "model.gob")
	if err := SaveParams(path, c.Params()); err != nil {
		t.Fatal(err)
	}

	// Fresh model with different init; load restores the saved values.
	g2 := mat.NewRNG(99)
	lin2 := NewLinear("lin", 3, 2, g2)
	emb2 := NewEmbedding("emb", 4, 3, g2)
	c2 := NewCollector()
	lin2.CollectParams(c2)
	emb2.CollectParams(c2)
	if err := LoadParams(path, c2.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range lin.W.Value.Data {
		if lin2.W.Value.Data[i] != lin.W.Value.Data[i] {
			t.Fatal("weights not restored")
		}
	}
	for i := range emb.Table.Value.Data {
		if emb2.Table.Value.Data[i] != emb.Table.Value.Data[i] {
			t.Fatal("embedding not restored")
		}
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	g := mat.NewRNG(1)
	lin := NewLinear("lin", 3, 2, g)
	c := NewCollector()
	lin.CollectParams(c)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := SaveParams(path, c.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewLinear("lin", 3, 5, g) // different shape, same names
	c2 := NewCollector()
	other.CollectParams(c2)
	if err := LoadParams(path, c2.Params()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadParamsMissingAndExtra(t *testing.T) {
	g := mat.NewRNG(1)
	a := NewParam("a", 1, 1)
	b := NewParam("b", 1, 1)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := SaveParams(path, []*Param{a, b}); err != nil {
		t.Fatal(err)
	}
	// Loading into fewer params fails (extra snapshot entries).
	if err := LoadParams(path, []*Param{a}); err == nil {
		t.Fatal("expected count mismatch error")
	}
	// Loading a snapshot missing a param fails.
	if err := SaveParams(path, []*Param{a}); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(path, []*Param{a, b}); err == nil {
		t.Fatal("expected missing-parameter error")
	}
	_ = g
}

func TestSaveParamsDuplicateNames(t *testing.T) {
	a1 := NewParam("dup", 1, 1)
	a2 := NewParam("dup", 1, 1)
	if err := SaveParams(filepath.Join(t.TempDir(), "x.gob"), []*Param{a1, a2}); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestSaveLoadMatrix(t *testing.T) {
	g := mat.NewRNG(2)
	m := mat.New(5, 3)
	g.Normal(m, 1)
	path := filepath.Join(t.TempDir(), "emb.gob")
	if err := SaveMatrix(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 5 || got.Cols != 3 {
		t.Fatalf("shape %dx%d", got.Rows, got.Cols)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("matrix not restored")
		}
	}
}

func TestLoadMissingFileErrors(t *testing.T) {
	if err := LoadParams(filepath.Join(t.TempDir(), "none.gob"), nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := LoadMatrix(filepath.Join(t.TempDir(), "none.gob")); err == nil {
		t.Fatal("expected error")
	}
}
