package nn

import (
	"math"
	"testing"
	"testing/quick"

	"intellitag/internal/mat"
)

func TestCollectorDedupes(t *testing.T) {
	c := NewCollector()
	p := NewParam("p", 2, 2)
	c.Add(p, p, nil)
	if len(c.Params()) != 1 {
		t.Fatalf("collector kept %d params", len(c.Params()))
	}
	if c.NumParams() != 4 {
		t.Fatalf("NumParams = %d", c.NumParams())
	}
}

func TestCollectorZeroGrad(t *testing.T) {
	c := NewCollector()
	p := NewParam("p", 1, 2)
	p.Grad.Fill(3)
	c.Add(p)
	c.ZeroGrad()
	if p.Grad.At(0, 1) != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("p", 1, 1)
	p.Value.Set(0, 0, 1)
	p.Grad.Set(0, 0, 0.5)
	o := NewSGD(0.1, 0)
	o.Step([]*Param{p})
	if got := p.Value.At(0, 0); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("SGD step = %v", got)
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	p := NewParam("p", 1, 1)
	p.Grad.Set(0, 0, 1)
	o := NewSGD(0.1, 0.9)
	o.Step([]*Param{p})
	first := p.Value.At(0, 0)
	o.Step([]*Param{p})
	second := p.Value.At(0, 0) - first
	if !(second < first) { // both negative; second step must be larger in magnitude
		t.Fatalf("momentum did not accelerate: first %v second %v", first, second)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (x-3)^2; gradient 2(x-3).
	p := NewParam("x", 1, 1)
	o := NewAdam(0.1, 0)
	for i := 0; i < 500; i++ {
		p.Grad.Set(0, 0, 2*(p.Value.At(0, 0)-3))
		o.Step([]*Param{p})
	}
	if got := p.Value.At(0, 0); math.Abs(got-3) > 1e-3 {
		t.Fatalf("Adam converged to %v, want 3", got)
	}
}

func TestAdamWeightDecayShrinks(t *testing.T) {
	p := NewParam("x", 1, 1)
	p.Value.Set(0, 0, 10)
	o := NewAdam(0.01, 0.1)
	for i := 0; i < 100; i++ {
		p.Grad.Set(0, 0, 0) // no task gradient; decay alone should shrink
		o.Step([]*Param{p})
	}
	if got := p.Value.At(0, 0); got >= 10 || got < 0 {
		t.Fatalf("weight decay produced %v", got)
	}
}

func TestLinearDecaySchedule(t *testing.T) {
	if got := LinearDecay(1.0, 0, 10); got != 1.0 {
		t.Fatalf("step 0 = %v", got)
	}
	if got := LinearDecay(1.0, 5, 10); got != 0.5 {
		t.Fatalf("step 5 = %v", got)
	}
	if got := LinearDecay(1.0, 10, 10); got != 0 {
		t.Fatalf("step 10 = %v", got)
	}
	if got := LinearDecay(1.0, 3, 0); got != 0 {
		t.Fatalf("zero total = %v", got)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.Grad.SetRow(0, []float64{3, 4})
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	var clipped float64
	for _, g := range p.Grad.Data {
		clipped += g * g
	}
	if math.Abs(math.Sqrt(clipped)-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v", math.Sqrt(clipped))
	}
	// maxNorm <= 0 leaves gradients alone.
	p.Grad.SetRow(0, []float64{3, 4})
	ClipGradNorm([]*Param{p}, 0)
	if p.Grad.At(0, 0) != 3 {
		t.Fatal("clip with maxNorm 0 modified grads")
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	loss, grad := SoftmaxCrossEntropy([]float64{0, 0, 0}, 1)
	if math.Abs(loss-math.Log(3)) > 1e-9 {
		t.Fatalf("uniform loss = %v, want ln 3", loss)
	}
	var sum float64
	for _, g := range grad {
		sum += g
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("grad sums to %v, want 0", sum)
	}
	if grad[1] >= 0 {
		t.Fatal("target grad should be negative")
	}
}

func TestSoftmaxCrossEntropyGradNumeric(t *testing.T) {
	logits := []float64{0.3, -1.2, 2.0}
	_, grad := SoftmaxCrossEntropy(append([]float64(nil), logits...), 2)
	const eps = 1e-6
	for i := range logits {
		lp := append([]float64(nil), logits...)
		lp[i] += eps
		lossP, _ := SoftmaxCrossEntropy(lp, 2)
		lm := append([]float64(nil), logits...)
		lm[i] -= eps
		lossM, _ := SoftmaxCrossEntropy(lm, 2)
		num := (lossP - lossM) / (2 * eps)
		if math.Abs(num-grad[i]) > 1e-6 {
			t.Fatalf("logit %d: numeric %v analytic %v", i, num, grad[i])
		}
	}
}

func TestBinaryCrossEntropy(t *testing.T) {
	loss1, d1 := BinaryCrossEntropy(10, 1)
	if loss1 > 0.01 || d1 > 0 {
		t.Fatalf("confident correct: loss %v d %v", loss1, d1)
	}
	loss0, d0 := BinaryCrossEntropy(10, 0)
	if loss0 < 5 || d0 < 0.9 {
		t.Fatalf("confident wrong: loss %v d %v", loss0, d0)
	}
}

func TestBPRLoss(t *testing.T) {
	lossGood, dp, dn := BPRLoss(5, -5)
	if lossGood > 0.01 {
		t.Fatalf("well-ranked BPR loss = %v", lossGood)
	}
	if dp > 0 || dn < 0 {
		t.Fatalf("BPR gradient signs: dPos %v dNeg %v", dp, dn)
	}
	lossBad, _, _ := BPRLoss(-5, 5)
	if lossBad < 5 {
		t.Fatalf("mis-ranked BPR loss = %v", lossBad)
	}
}

func TestKLSoftDistillZeroWhenEqual(t *testing.T) {
	logits := []float64{1, 2, 3}
	loss, grad := KLSoftDistill(logits, logits, 2)
	if math.Abs(loss) > 1e-9 {
		t.Fatalf("KL of identical = %v", loss)
	}
	for _, g := range grad {
		if math.Abs(g) > 1e-9 {
			t.Fatalf("grad nonzero for identical logits: %v", grad)
		}
	}
}

func TestKLSoftDistillPullsTowardTeacher(t *testing.T) {
	teacher := []float64{3, 0, 0}
	student := []float64{0, 0, 0}
	_, grad := KLSoftDistill(teacher, student, 1)
	// Gradient descent step -grad should raise the first logit.
	if grad[0] >= 0 {
		t.Fatalf("grad[0] = %v, want negative", grad[0])
	}
}

func TestMultiLabelBCE(t *testing.T) {
	loss, grad := MultiLabelBCE([]float64{10, -10}, []float64{1, 0})
	if loss > 0.01 {
		t.Fatalf("perfect multilabel loss = %v", loss)
	}
	if len(grad) != 2 {
		t.Fatalf("grad len %d", len(grad))
	}
}

// Property: softmax cross-entropy loss is non-negative and grad sums to zero
// for any logits/target.
func TestSoftmaxCEProperty(t *testing.T) {
	if err := quick.Check(func(a, b, c float64, ti uint8) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 50)
		}
		logits := []float64{clamp(a), clamp(b), clamp(c)}
		target := int(ti) % 3
		loss, grad := SoftmaxCrossEntropy(logits, target)
		if loss < 0 {
			return false
		}
		var sum float64
		for _, g := range grad {
			sum += g
		}
		return math.Abs(sum) < 1e-6
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	g := mat.NewRNG(20)
	d := NewDropout(0.5, g)
	d.Train = false
	x := mat.New(2, 3)
	g.Normal(x, 1)
	out := d.Forward(x)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout changed values")
		}
	}
}

func TestDropoutTrainPreservesExpectation(t *testing.T) {
	g := mat.NewRNG(21)
	d := NewDropout(0.3, g)
	x := mat.New(1, 10000)
	x.Fill(1)
	out := d.Forward(x)
	var sum float64
	for _, v := range out.Data {
		sum += v
	}
	mean := sum / float64(len(out.Data))
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("dropout mean %v, want ~1 (inverted scaling)", mean)
	}
	// Backward masks the same units.
	dOut := mat.New(1, 10000)
	dOut.Fill(1)
	dx := d.Backward(dOut)
	for i := range out.Data {
		if (out.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
}

func TestEncoderTrainEvalToggle(t *testing.T) {
	g := mat.NewRNG(22)
	enc := NewEncoder("enc", 1, 4, 2, 0.5, g)
	x := mat.New(3, 4)
	g.Normal(x, 1)
	enc.SetTrain(false)
	a := enc.Forward(x)
	b := enc.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("eval mode is not deterministic")
		}
	}
}

// End-to-end sanity: a 1-layer Transformer + projection learns to predict the
// next token of a deterministic cyclic sequence.
func TestTransformerLearnsCyclicSequence(t *testing.T) {
	g := mat.NewRNG(23)
	const vocab, dim, seqLen = 5, 8, 4
	emb := NewEmbedding("emb", vocab, dim, g)
	pos := NewPositionalEmbedding("pos", seqLen, dim, g)
	enc := NewEncoder("enc", 1, dim, 2, 0, g)
	enc.SetTrain(false)
	proj := NewLinear("proj", dim, vocab, g)
	c := NewCollector()
	emb.CollectParams(c)
	pos.CollectParams(c)
	enc.CollectParams(c)
	proj.CollectParams(c)
	opt := NewAdam(0.01, 0)

	seq := []int{0, 1, 2, 3} // next token is (last+1) mod 5
	for epoch := 0; epoch < 200; epoch++ {
		c.ZeroGrad()
		h := enc.Forward(pos.Forward(emb.Forward(seq)))
		logits := proj.Forward(h)
		last := logits.Row(seqLen - 1)
		_, dLogits := SoftmaxCrossEntropy(last, 4)
		dOut := mat.New(seqLen, vocab)
		dOut.SetRow(seqLen-1, dLogits)
		emb.Backward(pos.Backward(enc.Backward(proj.Backward(dOut))))
		opt.Step(c.Params())
	}
	h := enc.Forward(pos.Forward(emb.Forward(seq)))
	logits := proj.Forward(h)
	if got := mat.MaxIdx(logits.Row(seqLen - 1)); got != 4 {
		t.Fatalf("model predicts %d, want 4", got)
	}
}

// End-to-end sanity: GRU learns the same task.
func TestGRULearnsCyclicSequence(t *testing.T) {
	g := mat.NewRNG(24)
	const vocab, dim, hidden, seqLen = 5, 8, 8, 4
	emb := NewEmbedding("emb", vocab, dim, g)
	gru := NewGRU("gru", dim, hidden, g)
	proj := NewLinear("proj", hidden, vocab, g)
	c := NewCollector()
	emb.CollectParams(c)
	gru.CollectParams(c)
	proj.CollectParams(c)
	opt := NewAdam(0.01, 0)

	seq := []int{0, 1, 2, 3}
	for epoch := 0; epoch < 300; epoch++ {
		c.ZeroGrad()
		h := gru.Forward(emb.Forward(seq))
		logits := proj.Forward(h)
		_, dLogits := SoftmaxCrossEntropy(logits.Row(seqLen-1), 4)
		dOut := mat.New(seqLen, vocab)
		dOut.SetRow(seqLen-1, dLogits)
		emb.Backward(gru.Backward(proj.Backward(dOut)))
		opt.Step(c.Params())
	}
	h := gru.Forward(emb.Forward(seq))
	logits := proj.Forward(h)
	if got := mat.MaxIdx(logits.Row(seqLen - 1)); got != 4 {
		t.Fatalf("GRU predicts %d, want 4", got)
	}
}
