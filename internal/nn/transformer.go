package nn

import (
	"fmt"

	"intellitag/internal/mat"
)

// FeedForward is the position-wise two-layer MLP inside a Transformer block.
type FeedForward struct {
	lin1, lin2 *Linear
	act        *Activation
}

// NewFeedForward returns a dim -> hidden -> dim MLP with GELU.
func NewFeedForward(name string, dim, hidden int, g *mat.RNG) *FeedForward {
	return &FeedForward{
		lin1: NewLinear(name+".ffn1", dim, hidden, g),
		lin2: NewLinear(name+".ffn2", hidden, dim, g),
		act:  NewGELU(),
	}
}

// Forward applies the MLP row-wise.
func (f *FeedForward) Forward(x *mat.Matrix) *mat.Matrix {
	return f.lin2.Forward(f.act.Forward(f.lin1.Forward(x)))
}

// Backward returns dX.
func (f *FeedForward) Backward(dOut *mat.Matrix) *mat.Matrix {
	return f.lin1.Backward(f.act.Backward(f.lin2.Backward(dOut)))
}

// CollectParams registers both linears.
func (f *FeedForward) CollectParams(c *Collector) {
	f.lin1.CollectParams(c)
	f.lin2.CollectParams(c)
}

// EncoderLayer is one post-norm Transformer block, exactly the paper's
// equations 9-10:
//
//	A    = Norm(X + Dropout(MultiHead(X)))
//	X'   = Norm(A + Dropout(FFN(A)))
type EncoderLayer struct {
	Attn  *MultiHeadSelfAttention
	FFN   *FeedForward
	norm1 *LayerNorm
	norm2 *LayerNorm
	drop1 *Dropout
	drop2 *Dropout

	// owned residual-sum and backward buffers, reused across calls
	sum1, sum2 *mat.Matrix
	dA, dX     *mat.Matrix
}

// NewEncoderLayer returns a Transformer encoder block.
func NewEncoderLayer(name string, dim, heads int, dropout float64, g *mat.RNG) *EncoderLayer {
	return &EncoderLayer{
		Attn:  NewMultiHeadSelfAttention(name+".attn", dim, heads, g),
		FFN:   NewFeedForward(name, dim, 4*dim, g),
		norm1: NewLayerNorm(name+".norm1", dim),
		norm2: NewLayerNorm(name+".norm2", dim),
		drop1: NewDropout(dropout, g),
		drop2: NewDropout(dropout, g),
	}
}

// SetTrain toggles dropout between training and inference behavior.
func (e *EncoderLayer) SetTrain(train bool) {
	e.drop1.Train = train
	e.drop2.Train = train
}

// Forward runs the block over an n x dim input.
func (e *EncoderLayer) Forward(x *mat.Matrix) *mat.Matrix {
	e.sum1 = mat.Ensure(e.sum1, x.Rows, x.Cols)
	mat.AddInto(e.sum1, x, e.drop1.Forward(e.Attn.Forward(x)))
	a := e.norm1.Forward(e.sum1)
	e.sum2 = mat.Ensure(e.sum2, a.Rows, a.Cols)
	mat.AddInto(e.sum2, a, e.drop2.Forward(e.FFN.Forward(a)))
	return e.norm2.Forward(e.sum2)
}

// Backward returns dX (owned by the layer).
func (e *EncoderLayer) Backward(dOut *mat.Matrix) *mat.Matrix {
	dSum2 := e.norm2.Backward(dOut)
	e.dA = mat.Ensure(e.dA, dSum2.Rows, dSum2.Cols)
	mat.CopyInto(e.dA, dSum2)
	mat.AddInPlace(e.dA, e.FFN.Backward(e.drop2.Backward(dSum2)))
	dSum1 := e.norm1.Backward(e.dA)
	e.dX = mat.Ensure(e.dX, dSum1.Rows, dSum1.Cols)
	mat.CopyInto(e.dX, dSum1)
	mat.AddInPlace(e.dX, e.Attn.Backward(e.drop1.Backward(dSum1)))
	return e.dX
}

// CollectParams registers everything trainable in the block.
func (e *EncoderLayer) CollectParams(c *Collector) {
	e.Attn.CollectParams(c)
	e.FFN.CollectParams(c)
	e.norm1.CollectParams(c)
	e.norm2.CollectParams(c)
}

// Encoder stacks L Transformer blocks.
type Encoder struct {
	Layers []*EncoderLayer
}

// NewEncoder returns an L-layer Transformer encoder.
func NewEncoder(name string, layers, dim, heads int, dropout float64, g *mat.RNG) *Encoder {
	e := &Encoder{}
	for l := 0; l < layers; l++ {
		e.Layers = append(e.Layers, NewEncoderLayer(fmt.Sprintf("%s.layer%d", name, l), dim, heads, dropout, g))
	}
	return e
}

// SetTrain toggles all layers.
func (e *Encoder) SetTrain(train bool) {
	for _, l := range e.Layers {
		l.SetTrain(train)
	}
}

// Forward runs the stack.
func (e *Encoder) Forward(x *mat.Matrix) *mat.Matrix {
	for _, l := range e.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the stack in reverse, returning dX.
func (e *Encoder) Backward(dOut *mat.Matrix) *mat.Matrix {
	for i := len(e.Layers) - 1; i >= 0; i-- {
		dOut = e.Layers[i].Backward(dOut)
	}
	return dOut
}

// CollectParams registers all layers.
func (e *Encoder) CollectParams(c *Collector) {
	for _, l := range e.Layers {
		l.CollectParams(c)
	}
}

// PositionalEmbedding provides learned position vectors p_1..p_maxLen, added
// to the input sequence as in the paper's eq. 8.
type PositionalEmbedding struct {
	MaxLen, Dim int
	Table       *Param

	n   int         // cached sequence length
	out *mat.Matrix // owned forward buffer
}

// NewPositionalEmbedding returns a learned positional table.
func NewPositionalEmbedding(name string, maxLen, dim int, g *mat.RNG) *PositionalEmbedding {
	p := &PositionalEmbedding{MaxLen: maxLen, Dim: dim, Table: NewParam(name+".pos", maxLen, dim)}
	p.Table.InitNormal(g, 0.02)
	return p
}

// Forward adds position i's vector to row i of x.
func (p *PositionalEmbedding) Forward(x *mat.Matrix) *mat.Matrix {
	if x.Rows > p.MaxLen {
		panic(fmt.Sprintf("nn: sequence length %d exceeds max %d", x.Rows, p.MaxLen))
	}
	p.n = x.Rows
	p.out = mat.Ensure(p.out, x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		orow, xrow, prow := p.out.Row(i), x.Row(i), p.Table.Value.Row(i)
		for j := range orow {
			orow[j] = xrow[j] + prow[j]
		}
	}
	return p.out
}

// Backward accumulates positional gradients and passes dOut through.
func (p *PositionalEmbedding) Backward(dOut *mat.Matrix) *mat.Matrix {
	for i := 0; i < p.n; i++ {
		mat.AXPY(1, dOut.Row(i), p.Table.Grad.Row(i))
	}
	return dOut
}

// CollectParams registers the positional table.
func (p *PositionalEmbedding) CollectParams(c *Collector) { c.Add(p.Table) }
