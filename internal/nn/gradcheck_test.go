package nn

import (
	"math"
	"testing"

	"intellitag/internal/mat"
)

// lossOf computes a deterministic scalar "loss" from an output matrix by
// weighting each element with a fixed pseudo-random coefficient. Using a
// weighted sum makes every output element contribute a distinct gradient.
func lossOf(out *mat.Matrix, w *mat.Matrix) float64 {
	var s float64
	for i, v := range out.Data {
		s += v * w.Data[i]
	}
	return s
}

// checkGrads compares every parameter gradient (and optionally the input
// gradient) of a forward/backward pair against central finite differences.
func checkGrads(t *testing.T, name string, params []*Param, x *mat.Matrix, dx *mat.Matrix, forward func() float64) {
	t.Helper()
	const eps = 1e-5
	const tol = 2e-4
	for _, p := range params {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := forward()
			p.Value.Data[i] = orig - eps
			lm := forward()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(num-got) > tol*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s: param %s[%d]: analytic %v vs numeric %v", name, p.Name, i, got, num)
			}
		}
	}
	if x != nil && dx != nil {
		for i := range x.Data {
			orig := x.Data[i]
			x.Data[i] = orig + eps
			lp := forward()
			x.Data[i] = orig - eps
			lm := forward()
			x.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := dx.Data[i]
			if math.Abs(num-got) > tol*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s: input[%d]: analytic %v vs numeric %v", name, i, got, num)
			}
		}
	}
}

func TestLinearGradcheck(t *testing.T) {
	g := mat.NewRNG(1)
	lin := NewLinear("lin", 4, 3, g)
	x := mat.New(2, 4)
	g.Normal(x, 1)
	w := mat.New(2, 3)
	g.Normal(w, 1)
	c := NewCollector()
	lin.CollectParams(c)

	forward := func() float64 { return lossOf(lin.Forward(x), w) }
	c.ZeroGrad()
	forward()
	dx := lin.Backward(w)
	checkGrads(t, "Linear", c.Params(), x, dx, forward)
}

func TestLinearNoBias(t *testing.T) {
	g := mat.NewRNG(2)
	lin := NewLinearNoBias("lin", 3, 2, g)
	c := NewCollector()
	lin.CollectParams(c)
	if len(c.Params()) != 1 {
		t.Fatalf("no-bias linear registered %d params", len(c.Params()))
	}
	x := mat.New(1, 3)
	g.Normal(x, 1)
	out := lin.Forward(x)
	if out.Rows != 1 || out.Cols != 2 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
}

func TestEmbeddingGradcheck(t *testing.T) {
	g := mat.NewRNG(3)
	emb := NewEmbedding("emb", 5, 3, g)
	ids := []int{1, 3, 1} // repeated id exercises gradient accumulation
	w := mat.New(3, 3)
	g.Normal(w, 1)
	c := NewCollector()
	emb.CollectParams(c)

	forward := func() float64 { return lossOf(emb.Forward(ids), w) }
	c.ZeroGrad()
	forward()
	emb.Backward(w)
	checkGrads(t, "Embedding", c.Params(), nil, nil, forward)
}

func TestLayerNormGradcheck(t *testing.T) {
	g := mat.NewRNG(4)
	ln := NewLayerNorm("ln", 5)
	// Non-trivial gamma/beta so their gradients are exercised.
	g.Normal(ln.Gamma.Value, 1)
	g.Normal(ln.Beta.Value, 1)
	x := mat.New(3, 5)
	g.Normal(x, 2)
	w := mat.New(3, 5)
	g.Normal(w, 1)
	c := NewCollector()
	ln.CollectParams(c)

	forward := func() float64 { return lossOf(ln.Forward(x), w) }
	c.ZeroGrad()
	forward()
	dx := ln.Backward(w)
	checkGrads(t, "LayerNorm", c.Params(), x, dx, forward)
}

func TestLayerNormNormalizes(t *testing.T) {
	g := mat.NewRNG(5)
	ln := NewLayerNorm("ln", 8)
	x := mat.New(2, 8)
	g.Normal(x, 3)
	out := ln.Forward(x)
	for i := 0; i < out.Rows; i++ {
		var mean, variance float64
		for _, v := range out.Row(i) {
			mean += v
		}
		mean /= 8
		for _, v := range out.Row(i) {
			variance += (v - mean) * (v - mean)
		}
		variance /= 8
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("row %d: mean %v var %v", i, mean, variance)
		}
	}
}

func TestAttentionGradcheck(t *testing.T) {
	g := mat.NewRNG(6)
	attn := NewMultiHeadSelfAttention("attn", 6, 2, g)
	x := mat.New(4, 6)
	g.Normal(x, 1)
	w := mat.New(4, 6)
	g.Normal(w, 1)
	c := NewCollector()
	attn.CollectParams(c)

	forward := func() float64 { return lossOf(attn.Forward(x), w) }
	c.ZeroGrad()
	forward()
	dx := attn.Backward(w)
	checkGrads(t, "MultiHeadSelfAttention", c.Params(), x, dx, forward)
}

func TestAttentionWeightsRowsSumToOne(t *testing.T) {
	g := mat.NewRNG(7)
	attn := NewMultiHeadSelfAttention("attn", 4, 2, g)
	x := mat.New(3, 4)
	g.Normal(x, 1)
	attn.Forward(x)
	ws := attn.AttentionWeights()
	if len(ws) != 2 {
		t.Fatalf("got %d heads", len(ws))
	}
	for h, a := range ws {
		for i := 0; i < a.Rows; i++ {
			var sum float64
			for _, v := range a.Row(i) {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("head %d row %d sums to %v", h, i, sum)
			}
		}
	}
}

func TestAttentionRejectsBadHeadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiHeadSelfAttention("bad", 5, 2, mat.NewRNG(1))
}

func TestFeedForwardGradcheck(t *testing.T) {
	g := mat.NewRNG(8)
	ffn := NewFeedForward("ffn", 4, 8, g)
	x := mat.New(2, 4)
	g.Normal(x, 1)
	w := mat.New(2, 4)
	g.Normal(w, 1)
	c := NewCollector()
	ffn.CollectParams(c)

	forward := func() float64 { return lossOf(ffn.Forward(x), w) }
	c.ZeroGrad()
	forward()
	dx := ffn.Backward(w)
	checkGrads(t, "FeedForward", c.Params(), x, dx, forward)
}

func TestEncoderLayerGradcheck(t *testing.T) {
	g := mat.NewRNG(9)
	enc := NewEncoderLayer("enc", 4, 2, 0, g) // dropout 0 for determinism
	enc.SetTrain(false)
	x := mat.New(3, 4)
	g.Normal(x, 1)
	w := mat.New(3, 4)
	g.Normal(w, 1)
	c := NewCollector()
	enc.CollectParams(c)

	forward := func() float64 { return lossOf(enc.Forward(x), w) }
	c.ZeroGrad()
	forward()
	dx := enc.Backward(w)
	checkGrads(t, "EncoderLayer", c.Params(), x, dx, forward)
}

func TestEncoderStackGradcheck(t *testing.T) {
	g := mat.NewRNG(10)
	enc := NewEncoder("enc", 2, 4, 2, 0, g)
	enc.SetTrain(false)
	x := mat.New(2, 4)
	g.Normal(x, 1)
	w := mat.New(2, 4)
	g.Normal(w, 1)
	c := NewCollector()
	enc.CollectParams(c)

	forward := func() float64 { return lossOf(enc.Forward(x), w) }
	c.ZeroGrad()
	forward()
	dx := enc.Backward(w)
	checkGrads(t, "Encoder", c.Params(), x, dx, forward)
}

func TestPositionalEmbeddingGradcheck(t *testing.T) {
	g := mat.NewRNG(11)
	pe := NewPositionalEmbedding("pe", 6, 3, g)
	x := mat.New(4, 3)
	g.Normal(x, 1)
	w := mat.New(4, 3)
	g.Normal(w, 1)
	c := NewCollector()
	pe.CollectParams(c)

	forward := func() float64 { return lossOf(pe.Forward(x), w) }
	c.ZeroGrad()
	forward()
	dx := pe.Backward(w)
	checkGrads(t, "PositionalEmbedding", c.Params(), x, dx, forward)
}

func TestPositionalEmbeddingRejectsTooLong(t *testing.T) {
	g := mat.NewRNG(12)
	pe := NewPositionalEmbedding("pe", 2, 3, g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pe.Forward(mat.New(3, 3))
}

func TestGRUGradcheck(t *testing.T) {
	g := mat.NewRNG(13)
	gru := NewGRU("gru", 3, 4, g)
	x := mat.New(5, 3)
	g.Normal(x, 1)
	w := mat.New(5, 4)
	g.Normal(w, 1)
	c := NewCollector()
	gru.CollectParams(c)

	forward := func() float64 { return lossOf(gru.Forward(x), w) }
	c.ZeroGrad()
	forward()
	dx := gru.Backward(w)
	checkGrads(t, "GRU", c.Params(), x, dx, forward)
}

func TestGRUWideInput(t *testing.T) {
	// In > Hidden exercises the scratch-buffer sizing in BPTT.
	g := mat.NewRNG(14)
	gru := NewGRU("gru", 6, 3, g)
	x := mat.New(4, 6)
	g.Normal(x, 1)
	w := mat.New(4, 3)
	g.Normal(w, 1)
	c := NewCollector()
	gru.CollectParams(c)

	forward := func() float64 { return lossOf(gru.Forward(x), w) }
	c.ZeroGrad()
	forward()
	dx := gru.Backward(w)
	checkGrads(t, "GRU-wide", c.Params(), x, dx, forward)
}

func TestActivationGradchecks(t *testing.T) {
	g := mat.NewRNG(15)
	acts := map[string]*Activation{
		"relu":      NewReLU(),
		"leakyrelu": NewLeakyReLU(0.2),
		"tanh":      NewTanh(),
		"sigmoid":   NewSigmoid(),
		"gelu":      NewGELU(),
	}
	for name, act := range acts {
		x := mat.New(2, 3)
		g.Normal(x, 1)
		// Keep ReLU away from the non-differentiable kink at 0.
		for i := range x.Data {
			if math.Abs(x.Data[i]) < 0.05 {
				x.Data[i] = 0.1
			}
		}
		w := mat.New(2, 3)
		g.Normal(w, 1)
		forward := func() float64 { return lossOf(act.Forward(x), w) }
		forward()
		dx := act.Backward(w)
		checkGrads(t, name, nil, x, dx, forward)
	}
}
