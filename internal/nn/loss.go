package nn

import (
	"math"

	"intellitag/internal/mat"
)

// SoftmaxCrossEntropy computes the softmax cross-entropy loss of one logits
// row against a target class, returning the loss and dLogits. This is the
// projection+loss of the paper's eq. 11-12 specialized to a one-hot target.
func SoftmaxCrossEntropy(logits []float64, target int) (loss float64, dLogits []float64) {
	dLogits = make([]float64, len(logits))
	loss = SoftmaxCrossEntropyInto(logits, target, dLogits)
	return loss, dLogits
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing dLogits into a
// caller-supplied slice (e.g. a row of a pooled gradient matrix) instead of
// allocating; dst must have len(logits). Returns the loss.
func SoftmaxCrossEntropyInto(logits []float64, target int, dst []float64) float64 {
	mat.SoftmaxInto(logits, dst)
	p := math.Max(dst[target], 1e-12)
	dst[target] -= 1
	return -math.Log(p)
}

// BinaryCrossEntropy computes the logistic loss of a single logit against a
// {0,1} label, returning the loss and dLogit. Used by the word-weighting head
// of the tag mining model and by skip-gram negative sampling.
func BinaryCrossEntropy(logit float64, label float64) (loss, dLogit float64) {
	p := Sigmoid(logit)
	pc := math.Min(math.Max(p, 1e-12), 1-1e-12)
	loss = -(label*math.Log(pc) + (1-label)*math.Log(1-pc))
	return loss, p - label
}

// BPRLoss computes the Bayesian personalized ranking loss -log σ(pos-neg) for
// one positive/negative score pair, returning the loss and the gradients
// w.r.t. both scores. GRU4Rec trains with this ranking-based loss.
func BPRLoss(pos, neg float64) (loss, dPos, dNeg float64) {
	s := Sigmoid(pos - neg)
	loss = -math.Log(math.Max(s, 1e-12))
	g := s - 1 // d/dpos of -log σ(pos-neg)
	return loss, g, -g
}

// KLSoftDistill computes the knowledge-distillation loss between teacher and
// student logits at the given temperature: T^2 * KL(softmax(t/T) ||
// softmax(s/T)). It returns the loss and dStudentLogits (the T^2 factor keeps
// gradient magnitudes comparable across temperatures, per Hinton et al.).
func KLSoftDistill(teacherLogits, studentLogits []float64, temperature float64) (loss float64, dStudent []float64) {
	n := len(teacherLogits)
	tl := make([]float64, n)
	sl := make([]float64, n)
	for i := range tl {
		tl[i] = teacherLogits[i] / temperature
		sl[i] = studentLogits[i] / temperature
	}
	tp := mat.Softmax(tl)
	sp := mat.Softmax(sl)
	dStudent = make([]float64, n)
	for i := range tp {
		loss += tp[i] * (math.Log(math.Max(tp[i], 1e-12)) - math.Log(math.Max(sp[i], 1e-12)))
		// d/ds_i of T^2*KL = T * (sp_i - tp_i); chain through s/T.
		dStudent[i] = temperature * (sp[i] - tp[i])
	}
	return loss * temperature * temperature, dStudent
}

// MultiLabelBCE computes the summed binary cross-entropy of a logits row
// against a multi-hot target vector, the paper's eq. 12 form of the loss.
func MultiLabelBCE(logits []float64, targets []float64) (loss float64, dLogits []float64) {
	dLogits = make([]float64, len(logits))
	for i, l := range logits {
		li, di := BinaryCrossEntropy(l, targets[i])
		loss += li
		dLogits[i] = di
	}
	return loss, dLogits
}
