package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"intellitag/internal/mat"
	"intellitag/internal/snapshot"
)

// paramBlob is the on-disk form of one parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// SaveParams writes the parameters' values to path, gob-encoded inside the
// snapshot envelope (magic + length + SHA-256), so a truncated or corrupted
// file is rejected at load time before any gob decoding. Parameter names
// must be unique within one snapshot; the offline-to-online model upload of
// the deployment uses this.
func SaveParams(path string, params []*Param) error {
	blobs := make([]paramBlob, 0, len(params))
	seen := map[string]bool{}
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q in snapshot", p.Name)
		}
		seen[p.Name] = true
		blobs = append(blobs, paramBlob{
			Name: p.Name, Rows: p.Value.Rows, Cols: p.Value.Cols,
			Data: append([]float64(nil), p.Value.Data...),
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blobs); err != nil {
		return fmt.Errorf("nn: encode snapshot: %w", err)
	}
	// The envelope write goes through a temp file + rename, so the T+1 loop
	// can never upload a half-written snapshot under the final name.
	if err := snapshot.WriteChecksummed(path, buf.Bytes()); err != nil {
		return fmt.Errorf("nn: write snapshot: %w", err)
	}
	return nil
}

// readBlobs reads and integrity-checks one envelope file and decodes its
// parameter blobs. Truncation and bit rot surface as snapshot.ErrChecksum
// (test with errors.Is), never as a partial gob decode.
func readBlobs(path string) ([]paramBlob, error) {
	payload, err := snapshot.ReadChecksummed(path)
	if err != nil {
		return nil, fmt.Errorf("nn: read snapshot: %w", err)
	}
	var blobs []paramBlob
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&blobs); err != nil {
		return nil, fmt.Errorf("nn: decode snapshot: %w", err)
	}
	return blobs, nil
}

// LoadParams restores parameter values from a snapshot written by
// SaveParams, matching by name. Every parameter must be present with the
// same shape; extra entries in the snapshot are an error too, so drifted
// architectures fail loudly instead of loading partially.
func LoadParams(path string, params []*Param) error {
	blobs, err := readBlobs(path)
	if err != nil {
		return err
	}
	byName := make(map[string]paramBlob, len(blobs))
	for _, b := range blobs {
		byName[b.Name] = b
	}
	if len(byName) != len(params) {
		return fmt.Errorf("nn: snapshot has %d parameters, model has %d", len(byName), len(params))
	}
	for _, p := range params {
		b, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if b.Rows != p.Value.Rows || b.Cols != p.Value.Cols {
			return fmt.Errorf("nn: parameter %q shape %dx%d, snapshot %dx%d",
				p.Name, p.Value.Rows, p.Value.Cols, b.Rows, b.Cols)
		}
		copy(p.Value.Data, b.Data)
	}
	return nil
}

// SaveMatrix writes a single matrix (e.g. a frozen embedding table) to path.
func SaveMatrix(path string, m *mat.Matrix) error {
	return SaveParams(path, []*Param{{Name: "matrix", Value: m, Grad: mat.New(0, 0)}})
}

// LoadMatrix reads a matrix written by SaveMatrix.
func LoadMatrix(path string) (*mat.Matrix, error) {
	blobs, err := readBlobs(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load matrix: %w", err)
	}
	if len(blobs) != 1 {
		return nil, fmt.Errorf("nn: matrix file holds %d entries", len(blobs))
	}
	return mat.NewFrom(blobs[0].Rows, blobs[0].Cols, blobs[0].Data), nil
}
