package nn

import (
	"encoding/gob"
	"fmt"
	"os"

	"intellitag/internal/mat"
)

// paramBlob is the on-disk form of one parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// SaveParams writes the parameters' values to path (gob format). Parameter
// names must be unique within one snapshot; the offline-to-online model
// upload of the deployment uses this.
func SaveParams(path string, params []*Param) error {
	blobs := make([]paramBlob, 0, len(params))
	seen := map[string]bool{}
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q in snapshot", p.Name)
		}
		seen[p.Name] = true
		blobs = append(blobs, paramBlob{
			Name: p.Name, Rows: p.Value.Rows, Cols: p.Value.Cols,
			Data: append([]float64(nil), p.Value.Data...),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create snapshot: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(blobs); err != nil {
		_ = f.Close() // best-effort cleanup; the encode error is what matters
		return fmt.Errorf("nn: encode snapshot: %w", err)
	}
	// A close error on a write path can mean unflushed data: the T+1 loop
	// would upload a truncated snapshot to serving, so it must surface.
	if err := f.Close(); err != nil {
		return fmt.Errorf("nn: close snapshot: %w", err)
	}
	return nil
}

// LoadParams restores parameter values from a snapshot written by
// SaveParams, matching by name. Every parameter must be present with the
// same shape; extra entries in the snapshot are an error too, so drifted
// architectures fail loudly instead of loading partially.
func LoadParams(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: open snapshot: %w", err)
	}
	//lint:ignore errcheck read-only file; a close error cannot invalidate an already-validated decode
	defer f.Close()
	var blobs []paramBlob
	if err := gob.NewDecoder(f).Decode(&blobs); err != nil {
		return fmt.Errorf("nn: decode snapshot: %w", err)
	}
	byName := make(map[string]paramBlob, len(blobs))
	for _, b := range blobs {
		byName[b.Name] = b
	}
	if len(byName) != len(params) {
		return fmt.Errorf("nn: snapshot has %d parameters, model has %d", len(byName), len(params))
	}
	for _, p := range params {
		b, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if b.Rows != p.Value.Rows || b.Cols != p.Value.Cols {
			return fmt.Errorf("nn: parameter %q shape %dx%d, snapshot %dx%d",
				p.Name, p.Value.Rows, p.Value.Cols, b.Rows, b.Cols)
		}
		copy(p.Value.Data, b.Data)
	}
	return nil
}

// SaveMatrix writes a single matrix (e.g. a frozen embedding table) to path.
func SaveMatrix(path string, m *mat.Matrix) error {
	return SaveParams(path, []*Param{{Name: "matrix", Value: m, Grad: mat.New(0, 0)}})
}

// LoadMatrix reads a matrix written by SaveMatrix.
func LoadMatrix(path string) (*mat.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open matrix: %w", err)
	}
	//lint:ignore errcheck read-only file; a close error cannot invalidate an already-validated decode
	defer f.Close()
	var blobs []paramBlob
	if err := gob.NewDecoder(f).Decode(&blobs); err != nil {
		return nil, fmt.Errorf("nn: decode matrix: %w", err)
	}
	if len(blobs) != 1 {
		return nil, fmt.Errorf("nn: matrix file holds %d entries", len(blobs))
	}
	return mat.NewFrom(blobs[0].Rows, blobs[0].Cols, blobs[0].Data), nil
}
