package nn

import "intellitag/internal/mat"

// This file implements model replication for the batched parallel trainers.
//
// Layers in this package follow a Forward-caches-for-Backward discipline, so
// a single layer instance cannot run two examples concurrently. Instead of
// locking (which would serialize the hot path) the trainers build replicas:
// structurally identical layer trees whose Params share the master's Value
// matrices but own private Grad buffers and private forward caches. One
// replica is assigned per batch slot; after the fan-out, MergeGrads folds
// each replica's gradients into the master in slot order, so the summation
// order — and therefore the trained parameters — is fixed by the batch
// layout alone, never by the worker count or goroutine schedule.

// Shadow returns a Param aliasing p's Value but owning a fresh zero Grad.
// Updates through the master (optimizer steps) are immediately visible to
// every shadow; gradient accumulation stays private until merged.
func (p *Param) Shadow() *Param {
	if p == nil {
		return nil
	}
	return &Param{Name: p.Name, Value: p.Value, Grad: mat.New(p.Grad.Rows, p.Grad.Cols)}
}

// MergeGrads adds each replica parameter's gradient into the matching master
// parameter and zeroes the replica gradient, leaving the replica ready for
// the next batch. The two lists must come from collectors built in the same
// construction order; lengths and shapes are checked.
func MergeGrads(master, replica []*Param) {
	if len(master) != len(replica) {
		panic("nn: MergeGrads on misaligned parameter lists")
	}
	for i, mp := range master {
		rp := replica[i]
		if len(mp.Grad.Data) != len(rp.Grad.Data) {
			panic("nn: MergeGrads shape mismatch at " + mp.Name + " / " + rp.Name)
		}
		for j, g := range rp.Grad.Data {
			if g != 0 {
				mp.Grad.Data[j] += g
				rp.Grad.Data[j] = 0
			}
		}
	}
}

// ScaleGrads multiplies every gradient by s (the 1/batch averaging applied
// after an ordered merge).
func ScaleGrads(params []*Param, s float64) {
	if s == 1 {
		return
	}
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= s
		}
	}
}

// Replicate returns a Linear sharing l's weights with private grads/caches.
func (l *Linear) Replicate() *Linear {
	return &Linear{In: l.In, Out: l.Out, W: l.W.Shadow(), B: l.B.Shadow(), useBias: l.useBias}
}

// Replicate returns an Embedding sharing the table values.
func (e *Embedding) Replicate() *Embedding {
	return &Embedding{Vocab: e.Vocab, Dim: e.Dim, Table: e.Table.Shadow()}
}

// Replicate returns a LayerNorm sharing gamma/beta values.
func (ln *LayerNorm) Replicate() *LayerNorm {
	return &LayerNorm{Dim: ln.Dim, Gamma: ln.Gamma.Shadow(), Beta: ln.Beta.Shadow(), eps: ln.eps}
}

// Replicate returns a Dropout with the same rate and mode but no RNG; the
// trainer must seed it per example via SetRNG before the replica runs, so
// the dropout realization depends only on the example's position in the
// batch stream, not on which worker executes it.
func (d *Dropout) Replicate() *Dropout {
	return &Dropout{P: d.P, Train: d.Train}
}

// SetRNG installs the RNG the next Forward calls draw their keep-mask from.
func (d *Dropout) SetRNG(g *mat.RNG) { d.rng = g }

// replicate returns an Activation with the same function pair and a private
// input cache.
func (a *Activation) replicate() *Activation {
	return &Activation{fn: a.fn, dfn: a.dfn}
}

// Replicate returns a FeedForward over replicated linears.
func (f *FeedForward) Replicate() *FeedForward {
	return &FeedForward{lin1: f.lin1.Replicate(), lin2: f.lin2.Replicate(), act: f.act.replicate()}
}

// Replicate returns a MultiHeadSelfAttention over replicated projections.
func (m *MultiHeadSelfAttention) Replicate() *MultiHeadSelfAttention {
	return &MultiHeadSelfAttention{
		Dim: m.Dim, Heads: m.Heads, headDim: m.headDim,
		Wq: m.Wq.Replicate(), Wk: m.Wk.Replicate(), Wv: m.Wv.Replicate(), Wo: m.Wo.Replicate(),
	}
}

// Replicate returns an EncoderLayer whose sublayers share the original's
// parameter values.
func (e *EncoderLayer) Replicate() *EncoderLayer {
	return &EncoderLayer{
		Attn:  e.Attn.Replicate(),
		FFN:   e.FFN.Replicate(),
		norm1: e.norm1.Replicate(),
		norm2: e.norm2.Replicate(),
		drop1: e.drop1.Replicate(),
		drop2: e.drop2.Replicate(),
	}
}

// Replicate returns an Encoder stack of replicated layers.
func (e *Encoder) Replicate() *Encoder {
	out := &Encoder{}
	for _, l := range e.Layers {
		out.Layers = append(out.Layers, l.Replicate())
	}
	return out
}

// SetDropoutRNG points every dropout layer in the stack at g. A replica's
// layers may share one stream: within a single example the draw order is
// fixed by the (sequential) forward pass.
func (e *Encoder) SetDropoutRNG(g *mat.RNG) {
	for _, l := range e.Layers {
		l.drop1.SetRNG(g)
		l.drop2.SetRNG(g)
	}
}

// Replicate returns a PositionalEmbedding sharing the table values.
func (p *PositionalEmbedding) Replicate() *PositionalEmbedding {
	return &PositionalEmbedding{MaxLen: p.MaxLen, Dim: p.Dim, Table: p.Table.Shadow()}
}

// Replicate returns a GRU sharing all nine weight groups' values.
func (g *GRU) Replicate() *GRU {
	return &GRU{
		In: g.In, Hidden: g.Hidden,
		Wz: g.Wz.Shadow(), Wr: g.Wr.Shadow(), Wh: g.Wh.Shadow(),
		Uz: g.Uz.Shadow(), Ur: g.Ur.Shadow(), Uh: g.Uh.Shadow(),
		Bz: g.Bz.Shadow(), Br: g.Br.Shadow(), Bh: g.Bh.Shadow(),
	}
}
