package search

import (
	"fmt"
	"sync"
	"testing"
)

func seededIndex() *Index {
	ix := NewIndex()
	ix.Add(0, 0, "how to change password")
	ix.Add(1, 0, "how to cancel order")
	ix.Add(2, 1, "apply for etc card")
	ix.Add(3, 1, "what is the initial vpn password")
	return ix
}

func TestSearchRanksRelevantFirst(t *testing.T) {
	ix := seededIndex()
	hits := ix.Search("change password", -1, 10)
	if len(hits) == 0 || hits[0].ID != 0 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSearchTenantFilter(t *testing.T) {
	ix := seededIndex()
	hits := ix.Search("password", 1, 10)
	for _, h := range hits {
		if d, _ := ix.Get(h.ID); d.Tenant != 1 {
			t.Fatalf("tenant filter leaked doc %d", h.ID)
		}
	}
	if len(hits) != 1 || hits[0].ID != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSearchTopK(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 20; i++ {
		ix.Add(i, 0, "shared term document")
	}
	hits := ix.Search("shared", -1, 5)
	if len(hits) != 5 {
		t.Fatalf("got %d hits, want 5", len(hits))
	}
}

func TestSearchEmptyQueryAndIndex(t *testing.T) {
	ix := NewIndex()
	if got := ix.Search("anything", -1, 5); got != nil {
		t.Fatalf("empty index returned %v", got)
	}
	ix.Add(0, 0, "text")
	if got := ix.Search("   ", -1, 5); got != nil {
		t.Fatalf("empty query returned %v", got)
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := seededIndex()
	if got := ix.Search("zzzunknown", -1, 5); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestBM25PrefersRarerTerms(t *testing.T) {
	ix := NewIndex()
	// "common" appears everywhere; "rare" in one doc.
	for i := 0; i < 10; i++ {
		ix.Add(i, 0, "common filler text")
	}
	ix.Add(10, 0, "common rare text")
	hits := ix.Search("common rare", -1, 3)
	if hits[0].ID != 10 {
		t.Fatalf("rare-term doc not first: %v", hits)
	}
}

func TestBM25LengthNormalization(t *testing.T) {
	ix := NewIndex()
	ix.Add(0, 0, "password")
	ix.Add(1, 0, "password and a very long trailing explanation about many other things entirely")
	hits := ix.Search("password", -1, 2)
	if hits[0].ID != 0 {
		t.Fatalf("short doc should rank first: %v", hits)
	}
}

func TestAddReplaces(t *testing.T) {
	ix := NewIndex()
	ix.Add(0, 0, "old topic")
	ix.Add(0, 0, "new subject")
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if hits := ix.Search("old", -1, 5); len(hits) != 0 {
		t.Fatal("stale posting survived replace")
	}
	if hits := ix.Search("new", -1, 5); len(hits) != 1 {
		t.Fatal("replacement not searchable")
	}
}

func TestDelete(t *testing.T) {
	ix := seededIndex()
	ix.Delete(0)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if hits := ix.Search("change password", -1, 5); len(hits) != 1 {
		t.Fatalf("hits after delete = %v", hits)
	}
	ix.Delete(999) // deleting a missing doc is a no-op
}

func TestGet(t *testing.T) {
	ix := seededIndex()
	d, ok := ix.Get(2)
	if !ok || d.Text != "apply for etc card" {
		t.Fatalf("Get = %+v, %v", d, ok)
	}
	if _, ok := ix.Get(99); ok {
		t.Fatal("Get(99) should miss")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := NewIndex()
	ix.Add(5, 0, "same words here")
	ix.Add(2, 0, "same words here")
	hits := ix.Search("same words", -1, 2)
	if hits[0].ID != 2 || hits[1].ID != 5 {
		t.Fatalf("tie break not by id: %v", hits)
	}
}

func TestConcurrentAddSearch(t *testing.T) {
	ix := NewIndex()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ix.Add(base*100+j, base%2, fmt.Sprintf("doc number %d about topic %d", j, base))
				ix.Search("topic", -1, 5)
			}
		}(i)
	}
	wg.Wait()
	if ix.Len() != 400 {
		t.Fatalf("Len = %d, want 400", ix.Len())
	}
}
