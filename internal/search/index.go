// Package search is the ElasticSearch substitute of the IntelliTag system
// (Section V): an in-memory inverted index with BM25 ranking used by the
// model server to retrieve RQ recall sets for user questions and for
// clicked-tag queries. It supports per-tenant filtering, which the paper's
// multi-tenant deployment requires.
package search

import (
	"math"
	"sort"
	"sync"

	"intellitag/internal/textproc"
)

// Doc is an indexed document.
type Doc struct {
	ID     int
	Tenant int
	Text   string
	tokens []string
	counts map[string]int
}

// Hit is a scored search result.
type Hit struct {
	ID    int
	Score float64
}

// Index is a thread-safe inverted index with BM25 scoring. The zero value is
// not usable; call NewIndex.
type Index struct {
	mu       sync.RWMutex
	docs     map[int]*Doc
	postings map[string][]int // term -> doc ids (append order)
	totalLen int
	k1, b    float64
}

// NewIndex returns an empty index with standard BM25 parameters
// (k1=1.2, b=0.75).
func NewIndex() *Index {
	return &Index{
		docs:     map[int]*Doc{},
		postings: map[string][]int{},
		k1:       1.2,
		b:        0.75,
	}
}

// Add indexes (or replaces) a document.
func (ix *Index) Add(id, tenant int, text string) {
	tokens := textproc.Tokenize(text)
	counts := map[string]int{}
	for _, t := range tokens {
		counts[t]++
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.docs[id]; ok {
		ix.removeLocked(old)
	}
	d := &Doc{ID: id, Tenant: tenant, Text: text, tokens: tokens, counts: counts}
	ix.docs[id] = d
	ix.totalLen += len(tokens)
	for term := range counts {
		ix.postings[term] = append(ix.postings[term], id)
	}
}

// Delete removes a document if present.
func (ix *Index) Delete(id int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if d, ok := ix.docs[id]; ok {
		ix.removeLocked(d)
	}
}

func (ix *Index) removeLocked(d *Doc) {
	delete(ix.docs, d.ID)
	ix.totalLen -= len(d.tokens)
	for term := range d.counts {
		list := ix.postings[term]
		for i, id := range list {
			if id == d.ID {
				ix.postings[term] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(ix.postings[term]) == 0 {
			delete(ix.postings, term)
		}
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Get returns the document with the given id, if present.
func (ix *Index) Get(id int) (*Doc, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d, ok := ix.docs[id]
	return d, ok
}

// Search returns the top-k documents for the query, ranked by BM25. A
// tenant >= 0 restricts results to that tenant (the cloud-service isolation
// requirement); tenant < 0 searches all documents.
func (ix *Index) Search(query string, tenant, k int) []Hit {
	terms := textproc.Tokenize(query)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.docs) == 0 || len(terms) == 0 {
		return nil
	}
	avgLen := float64(ix.totalLen) / float64(len(ix.docs))
	scores := map[int]float64{}
	seenTerm := map[string]bool{}
	for _, term := range terms {
		if seenTerm[term] {
			continue // query-term repetition does not re-score
		}
		seenTerm[term] = true
		ids := ix.postings[term]
		if len(ids) == 0 {
			continue
		}
		idf := math.Log(1 + (float64(len(ix.docs))-float64(len(ids))+0.5)/(float64(len(ids))+0.5))
		for _, id := range ids {
			d := ix.docs[id]
			if tenant >= 0 && d.Tenant != tenant {
				continue
			}
			tf := float64(d.counts[term])
			dl := float64(len(d.tokens))
			score := idf * tf * (ix.k1 + 1) / (tf + ix.k1*(1-ix.b+ix.b*dl/avgLen))
			scores[id] += score
		}
	}
	// Collect doc ids in sorted order so the hit list is built — not just
	// ranked — deterministically (the score sort below is total only because
	// ties fall back to ID; building from sorted keys removes the map-order
	// dependence outright).
	ids := make([]int, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	hits := make([]Hit, 0, len(ids))
	for _, id := range ids {
		hits = append(hits, Hit{ID: id, Score: scores[id]})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
