// Package serving implements the online half of the IntelliTag system
// (Section V): the model server logic (Q&A answering, tag recommendation,
// predicted questions, session state, cold-start fallbacks), an A/B bucket
// router for online experiments, an HTTP JSON API, and the simulated user
// population that stands in for live traffic when reproducing the paper's
// online CTR / HIR / latency results.
package serving

import (
	"sort"
	"strings"
	"sync"
	"time"

	"intellitag/internal/search"
	"intellitag/internal/store"
)

// Scorer ranks candidate next tags given a click history. core.Model and
// every baseline satisfy it.
type Scorer interface {
	ScoreCandidates(history []int, candidates []int) []float64
	Name() string
}

// Catalog is the static serving data uploaded by the offline pipeline: tag
// phrases, per-tenant tag sets, per-tag click popularity (cold-start
// fallback) and the RQ answer table.
type Catalog struct {
	TagPhrases []string       // phrase per tag id
	TenantTags map[int][]int  // tenant -> tag ids (asc-derived)
	Popularity []float64      // global click counts per tag
	RQAnswers  map[int]string // RQ id -> answer text
}

// ScoredTag is one recommendation.
type ScoredTag struct {
	Tag    int     `json:"tag"`
	Phrase string  `json:"phrase"`
	Score  float64 `json:"score"`
}

// PredictedQuestion is one retrieved RQ shown after a click.
type PredictedQuestion struct {
	RQ       int     `json:"rq"`
	Question string  `json:"question"`
	Answer   string  `json:"answer"`
	Score    float64 `json:"score"`
}

// QuestionMatcher picks the best RQ from a recall set — the role of the
// uploaded RoBERTa model in Fig. 4. qamatch.Index satisfies it.
type QuestionMatcher interface {
	// Best returns the best candidate id within subset and its score, or
	// (-1, 0) when the subset is empty.
	Best(question string, subset map[int]bool) (int, float64)
}

// Engine is the model-server logic for a single model. It is safe for
// concurrent use.
type Engine struct {
	catalog Catalog
	index   *search.Index
	scorer  Scorer
	matcher QuestionMatcher // optional reranker for Ask; nil keeps BM25 order
	log     *store.Log
	day     func() int // logical clock for log events

	mu       sync.Mutex
	sessions map[int][]int // session id -> click history

	latMu     sync.Mutex
	latencies []time.Duration
}

// NewEngine assembles an engine. The search index must contain the RQ
// documents (doc id = RQ id, tenant field set). A nil log disables event
// recording; day supplies the logical day stamp (nil means day 0).
func NewEngine(catalog Catalog, index *search.Index, scorer Scorer, log *store.Log, day func() int) *Engine {
	if day == nil {
		day = func() int { return 0 }
	}
	return &Engine{
		catalog:  catalog,
		index:    index,
		scorer:   scorer,
		log:      log,
		day:      day,
		sessions: map[int][]int{},
	}
}

// ScorerName reports the underlying model's name.
func (e *Engine) ScorerName() string { return e.scorer.Name() }

// History returns a copy of a session's click history.
func (e *Engine) History(session int) []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.sessions[session]...)
}

// RecommendTags returns the top-k tags for a session. With no click history
// it falls back to the tenant's most frequently clicked tags (the paper's
// cold-start strategy); otherwise the model ranks the tenant's tags given
// the history. Latency of the full call is recorded.
func (e *Engine) RecommendTags(tenant, session, k int) []ScoredTag {
	start := time.Now()
	defer e.recordLatency(start)

	candidates := e.catalog.TenantTags[tenant]
	if len(candidates) == 0 {
		return nil
	}
	history := e.History(session)
	var scores []float64
	if len(history) == 0 {
		scores = make([]float64, len(candidates))
		for i, c := range candidates {
			scores[i] = e.catalog.Popularity[c]
		}
	} else {
		scores = e.scorer.ScoreCandidates(history, candidates)
	}
	out := make([]ScoredTag, len(candidates))
	for i, c := range candidates {
		out[i] = ScoredTag{Tag: c, Phrase: e.catalog.TagPhrases[c], Score: scores[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tag < out[j].Tag
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Click records a tag click, returns the next recommendations and the
// predicted questions for the accumulated clicked-tag query (the middle
// panel of the paper's Fig. 1).
func (e *Engine) Click(tenant, session, tag, k int) ([]ScoredTag, []PredictedQuestion) {
	e.mu.Lock()
	e.sessions[session] = append(e.sessions[session], tag)
	history := append([]int(nil), e.sessions[session]...)
	e.mu.Unlock()
	if e.log != nil {
		e.log.Append(store.Event{Day: e.day(), Session: session, Tenant: tenant, Kind: store.EventClick, TagID: tag})
	}

	recs := e.RecommendTags(tenant, session, k)

	// Query = concatenated phrases of all clicked tags in the session.
	var parts []string
	for _, t := range history {
		parts = append(parts, e.catalog.TagPhrases[t])
	}
	questions := e.PredictQuestions(tenant, strings.Join(parts, " "), k)
	return recs, questions
}

// PredictQuestions retrieves the best-matching RQs for a query within a
// tenant.
func (e *Engine) PredictQuestions(tenant int, query string, k int) []PredictedQuestion {
	hits := e.index.Search(query, tenant, k)
	out := make([]PredictedQuestion, 0, len(hits))
	for _, h := range hits {
		doc, ok := e.index.Get(h.ID)
		if !ok {
			continue
		}
		out = append(out, PredictedQuestion{
			RQ:       h.ID,
			Question: doc.Text,
			Answer:   e.catalog.RQAnswers[h.ID],
			Score:    h.Score,
		})
	}
	return out
}

// SetMatcher installs a question matcher that reranks the Ask recall set
// (the deployment's model upload). A nil matcher keeps BM25 order.
func (e *Engine) SetMatcher(m QuestionMatcher) { e.matcher = m }

// Ask answers a typed question: retrieve the RQ recall set for the tenant,
// pick the best match (via the uploaded matcher model when present, BM25
// order otherwise) and return its answer. ok is false when nothing matches
// (the caller may escalate to manual service).
func (e *Engine) Ask(tenant, session int, question string) (PredictedQuestion, bool) {
	start := time.Now()
	defer e.recordLatency(start)
	const recallSize = 10
	hits := e.index.Search(question, tenant, recallSize)
	if len(hits) == 0 {
		return PredictedQuestion{}, false
	}
	bestID, bestScore := hits[0].ID, hits[0].Score
	if e.matcher != nil {
		subset := make(map[int]bool, len(hits))
		for _, h := range hits {
			subset[h.ID] = true
		}
		if id, score := e.matcher.Best(question, subset); id >= 0 {
			bestID, bestScore = id, score
		}
	}
	doc, _ := e.index.Get(bestID)
	if e.log != nil {
		e.log.Append(store.Event{Day: e.day(), Session: session, Tenant: tenant, Kind: store.EventQuestion, RQID: bestID})
	}
	return PredictedQuestion{
		RQ:       bestID,
		Question: doc.Text,
		Answer:   e.catalog.RQAnswers[bestID],
		Score:    bestScore,
	}, true
}

// Escalate records a human-intervention event for HIR accounting.
func (e *Engine) Escalate(tenant, session int) {
	if e.log != nil {
		e.log.Append(store.Event{Day: e.day(), Session: session, Tenant: tenant, Kind: store.EventHuman})
	}
}

// EndSession drops a session's state.
func (e *Engine) EndSession(session int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.sessions, session)
}

func (e *Engine) recordLatency(start time.Time) {
	e.latMu.Lock()
	e.latencies = append(e.latencies, time.Since(start))
	e.latMu.Unlock()
}

// Latencies returns a copy of all recorded request latencies.
func (e *Engine) Latencies() []time.Duration {
	e.latMu.Lock()
	defer e.latMu.Unlock()
	return append([]time.Duration(nil), e.latencies...)
}

// ResetLatencies clears the latency sample.
func (e *Engine) ResetLatencies() {
	e.latMu.Lock()
	e.latencies = nil
	e.latMu.Unlock()
}
