// Package serving implements the online half of the IntelliTag system
// (Section V): the model server logic (Q&A answering, tag recommendation,
// predicted questions, session state, cold-start fallbacks), versioned model
// hot swap with N-replica sharding, an A/B bucket router for online
// experiments, an HTTP JSON API, and the simulated user population that
// stands in for live traffic when reproducing the paper's online CTR / HIR /
// latency results.
package serving

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"intellitag/internal/search"
	"intellitag/internal/store"
)

// Scorer ranks candidate next tags given a click history. core.Model and
// every baseline satisfy it.
type Scorer interface {
	ScoreCandidates(history []int, candidates []int) []float64
	Name() string
}

// Catalog is the static serving data uploaded by the offline pipeline: tag
// phrases, per-tenant tag sets, per-tag click popularity (cold-start
// fallback) and the RQ answer table.
type Catalog struct {
	TagPhrases []string       // phrase per tag id
	TenantTags map[int][]int  // tenant -> tag ids (asc-derived)
	Popularity []float64      // global click counts per tag
	RQAnswers  map[int]string // RQ id -> answer text
}

// ScoredTag is one recommendation.
type ScoredTag struct {
	Tag    int     `json:"tag"`
	Phrase string  `json:"phrase"`
	Score  float64 `json:"score"`
}

// PredictedQuestion is one retrieved RQ shown after a click.
type PredictedQuestion struct {
	RQ       int     `json:"rq"`
	Question string  `json:"question"`
	Answer   string  `json:"answer"`
	Score    float64 `json:"score"`
}

// QuestionMatcher picks the best RQ from a recall set — the role of the
// uploaded RoBERTa model in Fig. 4. qamatch.Index satisfies it.
type QuestionMatcher interface {
	// Best returns the best candidate id within subset and its score, or
	// (-1, 0) when the subset is empty.
	Best(question string, subset map[int]bool) (int, float64)
}

// sessionShardCount spreads session state over independently locked maps so
// concurrent requests for different sessions never contend on one mutex.
const sessionShardCount = 16

// recEntry is a memoized RecommendTags result for one session. The serving
// inputs are the session history plus the active version's catalog and
// scorer, so the ranked list only changes when the history mutates or the
// model version flips; the entry records the version it was computed on and
// a hit requires an exact version match, which is what makes a hot swap
// invalidate every memo without touching the shards.
type recEntry struct {
	ver       *modelVersion
	tenant, k int
	recs      []ScoredTag
}

// sessionShard is one lock-striped slice of the session table.
type sessionShard struct {
	mu   sync.Mutex
	ver  uint64        // bumped on every history mutation in this shard
	m    map[int][]int // session id -> click history
	recs map[int]recEntry
}

// latencyCap bounds the latency sample: the old unbounded slice grew with
// every request for the life of the server. The ring keeps the most recent
// samples, which is what the percentile reports read anyway.
const latencyCap = 4096

// latencyRing is a fixed-capacity concurrent ring buffer of request
// latencies.
type latencyRing struct {
	mu   sync.Mutex
	buf  [latencyCap]time.Duration
	next int
	size int
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % latencyCap
	if r.size < latencyCap {
		r.size++
	}
	r.mu.Unlock()
}

// snapshot returns the retained samples oldest-first.
func (r *latencyRing) snapshot() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.size == 0 {
		return nil
	}
	out := make([]time.Duration, 0, r.size)
	start := (r.next - r.size + latencyCap) % latencyCap
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(start+i)%latencyCap])
	}
	return out
}

func (r *latencyRing) reset() {
	r.mu.Lock()
	r.next = 0
	r.size = 0
	r.mu.Unlock()
}

// Engine is the model-server logic for one replica. It is safe for
// concurrent use: session state is sharded, latencies go to a fixed ring,
// scorers — whose forward passes cache intermediates and therefore must not
// run two requests at once — are checked out of a pool, and all
// model-dependent state (scorer, index, catalog, matcher, scorer pool) lives
// behind one atomically swappable modelVersion pointer. A request loads the
// version once on entry and uses only that pointer, so Swap can flip the
// engine to a new model mid-traffic with zero dropped requests: in-flight
// requests finish on the version they started with, new requests see the new
// version, and per-session memos are version-keyed so nothing leaks across.
// SetMatcher and SetWorkers are setup-time calls, not for use concurrently
// with requests.
type Engine struct {
	cur atomic.Pointer[modelVersion]

	log *store.Log
	day func() int // logical clock for log events

	replica int // index within a ReplicaSet; 0 for solo engines
	workers int // scorer pool width for versions built by Swap

	shards [sessionShardCount]sessionShard

	lat latencyRing

	swaps        atomic.Int64
	lastSwapUnix atomic.Int64
	undrained    atomic.Bool // last retired version missed the drain deadline

	// retrieval is the ANN candidate-retrieval config applied to versions
	// installed by Swap (setup-time; see SetRetrieval). retrievalPaths counts
	// recommendation computations by serving path for /healthz.
	retrieval      RetrievalConfig
	retrievalPaths [numRetrievalPaths]atomic.Int64

	// tel is the optional telemetry sink (SetTelemetry). When nil the engine
	// pays one pointer comparison per instrumented site and nothing else.
	tel *engineTelemetry
}

// NewEngine assembles a single-replica engine serving an unversioned model —
// the bundle-free construction path used by tests, benchmarks and callers
// that never hot-swap. The search index must contain the RQ documents (doc
// id = RQ id, tenant field set). A nil log disables event recording; day
// supplies the logical day stamp (nil means day 0).
func NewEngine(catalog Catalog, index *search.Index, scorer Scorer, log *store.Log, day func() int) *Engine {
	b := &ModelBundle{Catalog: catalog, Index: index, Scorer: scorer}
	return newEngineAt(newModelVersion(b, 1), 0, 1, log, day)
}

// newEngineAt assembles a replica around an existing (possibly shared)
// model version.
func newEngineAt(v *modelVersion, replica, workers int, log *store.Log, day func() int) *Engine {
	if day == nil {
		day = func() int { return 0 }
	}
	e := &Engine{log: log, day: day, replica: replica, workers: workers}
	for i := range e.shards {
		e.shards[i].m = map[int][]int{}
		e.shards[i].recs = map[int]recEntry{}
	}
	e.cur.Store(v)
	return e
}

// acquire pins the active version for one request. Between the pointer load
// and the counter increment a swap may retire the version; that request
// still completes correctly — retired versions stay fully usable, drain is
// bounded, and nothing is freed eagerly.
func (e *Engine) acquire() *modelVersion {
	v := e.cur.Load()
	v.inflight.Add(1)
	return v
}

func (e *Engine) release(v *modelVersion) { v.inflight.Add(-1) }

// SetWorkers sizes the scorer pool for n-way concurrent scoring (<= 0
// selects all CPUs). The width also applies to versions installed by later
// swaps. Call during setup, before serving traffic.
func (e *Engine) SetWorkers(n int) {
	e.workers = n
	e.cur.Load().resizePool(n)
}

// shard returns the lock stripe owning a session id.
func (e *Engine) shard(session int) *sessionShard {
	i := session % sessionShardCount
	if i < 0 {
		i += sessionShardCount
	}
	return &e.shards[i]
}

// ScorerName reports the active version's model name.
func (e *Engine) ScorerName() string { return e.cur.Load().scorer.Name() }

// Catalog returns the active version's serving catalog.
func (e *Engine) Catalog() Catalog { return e.cur.Load().catalog }

// History returns a copy of a session's click history.
func (e *Engine) History(session int) []int {
	sh := e.shard(session)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append([]int(nil), sh.m[session]...)
}

// RecommendTags returns the top-k tags for a session. With no click history
// it falls back to the tenant's most frequently clicked tags (the paper's
// cold-start strategy); otherwise the model ranks the tenant's tags given
// the history. Results are memoized per session until the next click or
// version swap, so only the first request after a history change pays for
// model scoring. Latency of the full call is recorded.
func (e *Engine) RecommendTags(ctx context.Context, tenant, session, k int) []ScoredTag {
	v := e.acquire()
	defer e.release(v)
	return e.recommendTags(ctx, v, tenant, session, k)
}

// recommendTags is RecommendTags against an already-pinned version (Click
// reuses it so one user turn stays on a single version end to end).
func (e *Engine) recommendTags(ctx context.Context, v *modelVersion, tenant, session, k int) []ScoredTag {
	start := time.Now()
	defer e.recordLatency(start)
	defer e.observeOp(opRecommend, start)
	ctx, span := e.startSpan(ctx, "recommend")
	defer span.End()

	candidates := v.catalog.TenantTags[tenant]
	if len(candidates) == 0 {
		return nil
	}
	sh := e.shard(session)
	sh.mu.Lock()
	var (
		memo    []ScoredTag
		hit     bool
		ver     uint64
		history []int
	)
	if c, ok := sh.recs[session]; ok && c.ver == v && c.tenant == tenant && c.k == k {
		hit = true
		memo = append([]ScoredTag(nil), c.recs...)
	} else {
		ver = sh.ver
		history = append([]int(nil), sh.m[session]...)
	}
	sh.mu.Unlock()
	if hit {
		return memo
	}

	var scores []float64
	if len(history) == 0 {
		// Cold start: popularity ranking needs every candidate's count anyway,
		// so retrieval has nothing to save.
		e.noteRetrievalPath(pathColdStart, len(candidates))
		scores = make([]float64, len(candidates))
		for i, c := range candidates {
			scores[i] = v.catalog.Popularity[c]
		}
	} else {
		// Retrieve-then-rank: when the version carries an ANN index and the
		// tenant catalog is large enough to be worth it, retrieve ~K nearest
		// tags of the recent-history centroid and rank only those. Any miss —
		// no retriever, small catalog, too few tenant survivors — scores the
		// full candidate list exactly as before.
		if tr := v.tags; tr != nil && len(candidates) >= tr.cfg.MinCatalog {
			if got := tr.retrieve(history, tenant, k); got != nil {
				e.noteRetrievalPath(pathANN, len(got))
				e.maybeSampleRecall(tr, history, tenant, got)
				candidates = got
			} else {
				e.noteRetrievalPath(pathFallback, len(candidates))
			}
		} else {
			e.noteRetrievalPath(pathExhaustive, len(candidates))
		}
		scores = e.scoreCandidates(ctx, v, history, candidates)
	}
	out := make([]ScoredTag, len(candidates))
	for i, c := range candidates {
		out[i] = ScoredTag{Tag: c, Phrase: v.catalog.TagPhrases[c], Score: scores[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tag < out[j].Tag
	})
	if len(out) > k {
		out = out[:k]
	}
	// Store only if no history in this shard mutated while we scored — a
	// concurrent Click may have invalidated the entry we are about to write.
	// The entry remembers its version, so a memo computed on a retired
	// version can never answer a request on the new one.
	sh.mu.Lock()
	if sh.ver == ver {
		sh.recs[session] = recEntry{ver: v, tenant: tenant, k: k, recs: append([]ScoredTag(nil), out...)}
	}
	sh.mu.Unlock()
	return out
}

// Click records a tag click, returns the next recommendations and the
// predicted questions for the accumulated clicked-tag query (the middle
// panel of the paper's Fig. 1). The whole turn — history update,
// re-recommendation, question retrieval — runs on one pinned version.
func (e *Engine) Click(ctx context.Context, tenant, session, tag, k int) ([]ScoredTag, []PredictedQuestion) {
	v := e.acquire()
	defer e.release(v)
	start := time.Now()
	defer e.observeOp(opClick, start)
	ctx, span := e.startSpan(ctx, "click")
	defer span.End()

	sh := e.shard(session)
	sh.mu.Lock()
	sh.m[session] = append(sh.m[session], tag)
	sh.ver++
	delete(sh.recs, session)
	history := append([]int(nil), sh.m[session]...)
	e.noteShardSize(sh)
	sh.mu.Unlock()
	if e.log != nil {
		e.log.Append(store.Event{Day: e.day(), Session: session, Tenant: tenant, Kind: store.EventClick, TagID: tag})
	}

	recs := e.recommendTags(ctx, v, tenant, session, k)

	// Query = concatenated phrases of all clicked tags in the session.
	var parts []string
	for _, t := range history {
		parts = append(parts, v.catalog.TagPhrases[t])
	}
	questions := e.predictQuestions(ctx, v, tenant, strings.Join(parts, " "), k)
	return recs, questions
}

// PredictQuestions retrieves the best-matching RQs for a query within a
// tenant.
func (e *Engine) PredictQuestions(ctx context.Context, tenant int, query string, k int) []PredictedQuestion {
	v := e.acquire()
	defer e.release(v)
	return e.predictQuestions(ctx, v, tenant, query, k)
}

func (e *Engine) predictQuestions(ctx context.Context, v *modelVersion, tenant int, query string, k int) []PredictedQuestion {
	_, span := e.startSpan(ctx, "retrieve")
	defer span.End()
	hits := v.index.Search(query, tenant, k)
	out := make([]PredictedQuestion, 0, len(hits))
	for _, h := range hits {
		doc, ok := v.index.Get(h.ID)
		if !ok {
			continue
		}
		out = append(out, PredictedQuestion{
			RQ:       h.ID,
			Question: doc.Text,
			Answer:   v.catalog.RQAnswers[h.ID],
			Score:    h.Score,
		})
	}
	return out
}

// SetMatcher installs a question matcher that reranks the Ask recall set
// (the deployment's model upload) on the active version. A nil matcher keeps
// BM25 order. Call during setup; versions installed by Swap carry their own
// matcher in the bundle.
func (e *Engine) SetMatcher(m QuestionMatcher) { e.cur.Load().matcher = m } //lint:ignore versionpin documented setup-time mutation before the engine serves traffic

// Ask answers a typed question: retrieve the RQ recall set for the tenant,
// pick the best match (via the uploaded matcher model when present, BM25
// order otherwise) and return its answer. ok is false when nothing matches
// (the caller may escalate to manual service).
func (e *Engine) Ask(ctx context.Context, tenant, session int, question string) (PredictedQuestion, bool) {
	v := e.acquire()
	defer e.release(v)
	start := time.Now()
	defer e.recordLatency(start)
	defer e.observeOp(opAsk, start)
	ctx, span := e.startSpan(ctx, "ask")
	defer span.End()
	const recallSize = 10
	_, rspan := e.startSpan(ctx, "retrieve")
	hits := v.index.Search(question, tenant, recallSize)
	rspan.End()
	if len(hits) == 0 {
		return PredictedQuestion{}, false
	}
	bestID, bestScore := hits[0].ID, hits[0].Score
	if v.matcher != nil {
		subset := make(map[int]bool, len(hits))
		for _, h := range hits {
			subset[h.ID] = true
		}
		_, mspan := e.startSpan(ctx, "match")
		if id, score := v.matcher.Best(question, subset); id >= 0 {
			bestID, bestScore = id, score
		}
		mspan.End()
	}
	doc, _ := v.index.Get(bestID)
	if e.log != nil {
		e.log.Append(store.Event{Day: e.day(), Session: session, Tenant: tenant, Kind: store.EventQuestion, RQID: bestID})
	}
	return PredictedQuestion{
		RQ:       bestID,
		Question: doc.Text,
		Answer:   v.catalog.RQAnswers[bestID],
		Score:    bestScore,
	}, true
}

// Escalate records a human-intervention event for HIR accounting.
func (e *Engine) Escalate(tenant, session int) {
	if e.log != nil {
		e.log.Append(store.Event{Day: e.day(), Session: session, Tenant: tenant, Kind: store.EventHuman})
	}
	if e.tel != nil {
		e.tel.escalations.Inc()
		e.updateHIR()
	}
}

// EndSession drops a session's state.
func (e *Engine) EndSession(session int) {
	sh := e.shard(session)
	sh.mu.Lock()
	delete(sh.m, session)
	delete(sh.recs, session)
	sh.ver++
	e.noteShardSize(sh)
	sh.mu.Unlock()
	if e.tel != nil {
		e.tel.sessions.Inc()
		e.updateHIR()
	}
}

func (e *Engine) recordLatency(start time.Time) {
	e.lat.record(time.Since(start))
}

// Latencies returns a copy of the retained request latencies, oldest first
// (the ring keeps the most recent latencyCap samples).
func (e *Engine) Latencies() []time.Duration {
	return e.lat.snapshot()
}

// ResetLatencies clears the latency sample.
func (e *Engine) ResetLatencies() {
	e.lat.reset()
}

// minShardSize is the smallest candidate slice worth a goroutine of its own;
// below it the fan-out overhead beats the scoring work.
const minShardSize = 64

// scoreCandidates checks a scorer out of the version's pool and scores the
// candidate list, splitting it across additional immediately-available
// scorers when it is large. Scores are written into fixed per-shard slots,
// so the result is identical however many scorers happened to be free.
func (e *Engine) scoreCandidates(ctx context.Context, v *modelVersion, history, candidates []int) []float64 {
	_, span := e.startSpan(ctx, "score")
	defer span.End()
	want := len(candidates) / minShardSize
	if want < 1 {
		want = 1
	}
	scorers := checkoutScorers(v.scorers, want)
	defer func() {
		for _, s := range scorers {
			v.scorers <- s
		}
	}()
	if len(scorers) == 1 {
		return scorers[0].ScoreCandidates(history, candidates)
	}
	scores := make([]float64, len(candidates))
	chunk := (len(candidates) + len(scorers) - 1) / len(scorers)
	var wg sync.WaitGroup
	for w := 0; w < len(scorers); w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s Scorer, lo, hi int) {
			defer wg.Done()
			copy(scores[lo:hi], s.ScoreCandidates(history, candidates[lo:hi]))
		}(scorers[w], lo, hi)
	}
	wg.Wait()
	return scores
}

// checkoutScorers blocks for one scorer, then opportunistically grabs up to
// max-1 more without blocking — never waiting on scorers held by other
// requests, which keeps the pool deadlock-free.
func checkoutScorers(pool chan Scorer, max int) []Scorer {
	out := []Scorer{<-pool}
	for len(out) < max {
		select {
		case s := <-pool:
			out = append(out, s)
		default:
			return out
		}
	}
	return out
}
