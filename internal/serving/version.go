package serving

import (
	"sort"
	"sync/atomic"
	"time"

	"intellitag/internal/par"
	"intellitag/internal/search"
	"intellitag/internal/snapshot"
	"intellitag/internal/store"
)

// UnversionedID is the version id of a model installed directly through
// NewEngine rather than loaded from a snapshot store — the pre-PR-5 world of
// "the process serves whatever it was built with".
const UnversionedID = "unversioned"

// ModelBundle is everything model-dependent a version swap installs at once:
// the scorer, the RQ search index, the serving catalog and the optional Q&A
// matcher. Bundles are built by the offline side (a snapshot loader, a
// training run) and handed to Engine.Swap / ReplicaSet.RollingSwap; after
// hand-off the bundle belongs to the serving tier and must not be mutated.
type ModelBundle struct {
	VersionID string // snapshot version id; "" means UnversionedID
	Catalog   Catalog
	Index     *search.Index
	Scorer    Scorer
	Matcher   QuestionMatcher // optional; nil keeps BM25 order on /ask
}

// modelVersion is one immutable generation of model-dependent serving state.
// The engine's request path loads the current version once per request and
// uses only that pointer, so a concurrent swap can never hand a request half
// of one model and half of another. Versions may be shared by every replica
// of a ReplicaSet — the scorer checkout pool is the single point of mutual
// exclusion for scorers whose forward passes cache intermediates.
type modelVersion struct {
	id      string
	seq     int // numeric sequence for gauges; -1 when unversioned
	catalog Catalog
	index   *search.Index
	scorer  Scorer
	matcher QuestionMatcher

	// tags is the version's ANN candidate retriever, nil when retrieval is
	// disabled or the scorer exposes no embedding table. Built before the
	// version goes live (attachRetrieval) and immutable afterwards, so a hot
	// swap replaces the index atomically with everything else and the
	// version-keyed rec memos invalidate retrieval results for free.
	tags *tagRetriever

	// scorers is the checkout pool. It always holds at least the scorer
	// itself; resizePool widens it with replicas for models that support
	// them, enabling concurrent request scoring and sharded candidate
	// scoring.
	scorers chan Scorer

	// inflight counts requests currently executing against this version.
	// The swap protocol flips the engine pointer first, so this counter only
	// ever decreases once a version is retired; drain waits for it to reach
	// zero before declaring the old version fully retired.
	inflight atomic.Int64
}

// newModelVersion builds a version from a bundle with a workers-wide scorer
// pool (<= 1 keeps a single-slot pool).
func newModelVersion(b *ModelBundle, workers int) *modelVersion {
	id := b.VersionID
	if id == "" {
		id = UnversionedID
	}
	v := &modelVersion{
		id:      id,
		seq:     snapshot.SeqOf(id),
		catalog: b.Catalog,
		index:   b.Index,
		scorer:  b.Scorer,
		matcher: b.Matcher,
	}
	v.resizePool(workers)
	return v
}

// resizePool sizes the scorer checkout pool for n-way concurrent scoring
// (<= 0 selects all CPUs). Models that cannot replicate themselves keep a
// single-slot pool, which serializes scoring but stays correct. Not safe to
// call while the version is serving traffic.
func (v *modelVersion) resizePool(n int) {
	n = par.Resolve(n)
	rep, ok := v.scorer.(interface{ ScorerReplicas(n int) []any })
	if n <= 1 || !ok {
		v.scorers = make(chan Scorer, 1)
		v.scorers <- v.scorer
		return
	}
	pool := make(chan Scorer, n)
	for _, r := range rep.ScorerReplicas(n) {
		s, ok := r.(Scorer)
		if !ok {
			pool = make(chan Scorer, 1)
			pool <- v.scorer
			break
		}
		pool <- s
	}
	v.scorers = pool
}

// warm runs one scoring pass through the fresh version before it goes live,
// so the first request after a flip does not pay for lazily grown model
// buffers. The smallest-id tenant with candidates stands in for real
// traffic; tenants are visited in sorted order so warming is deterministic.
func (v *modelVersion) warm() {
	tenants := make([]int, 0, len(v.catalog.TenantTags))
	for t := range v.catalog.TenantTags {
		tenants = append(tenants, t)
	}
	sort.Ints(tenants)
	for _, t := range tenants {
		cands := v.catalog.TenantTags[t]
		if len(cands) == 0 {
			continue
		}
		if len(cands) > 8 {
			cands = cands[:8]
		}
		s := <-v.scorers
		s.ScoreCandidates([]int{cands[0]}, cands)
		v.scorers <- s
		return
	}
}

// drainTimeout bounds how long a swap waits for the retired version's
// in-flight requests. Requests keep completing on their pinned version
// either way — the bound only stops a stuck scorer from wedging the swapper.
const drainTimeout = 5 * time.Second

// drain waits (by polling; the counter is a plain atomic so there is nothing
// to block on) until every request that started on v has finished, and
// reports whether the version drained within the timeout.
func (v *modelVersion) drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for v.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// VersionInfo is the externally visible state of one engine replica's active
// model version, reported by /healthz, GET /admin/versions and the simulator
// summary.
type VersionInfo struct {
	ID           string `json:"id"`
	Seq          int    `json:"seq"`
	Model        string `json:"model"`
	Replica      int    `json:"replica"`
	Swaps        int64  `json:"swaps"`
	LastSwapUnix int64  `json:"last_swap_unix,omitempty"`
	Drained      bool   `json:"drained"` // last retired version fully drained
}

// Version reports the engine's active version.
func (e *Engine) Version() VersionInfo {
	v := e.cur.Load()
	return VersionInfo{
		ID:           v.id,
		Seq:          v.seq,
		Model:        v.scorer.Name(),
		Replica:      e.replica,
		Swaps:        e.swaps.Load(),
		LastSwapUnix: e.lastSwapUnix.Load(),
		Drained:      !e.undrained.Load(),
	}
}

// Swap hot-swaps this engine to a new model bundle: build the version, warm
// it, flip the pointer, drain the old version. Requests in flight when the
// pointer flips finish on the version they started with; requests arriving
// after the flip see only the new version. Zero requests are dropped.
func (e *Engine) Swap(b *ModelBundle) VersionInfo {
	v := newModelVersion(b, e.workers)
	v.attachRetrieval(e.retrieval) // index built off-line, before the flip
	v.warm()
	return e.swapTo(v)
}

// flipTo atomically installs an already-warmed version and returns the
// retired one. The flip is a single pointer store; per-session memo entries
// are keyed by version so stale entries become misses rather than leaks.
// Draining the retired version is the caller's job — a solo swap drains
// immediately, a rolling swap drains once after the last replica flips.
func (e *Engine) flipTo(v *modelVersion) *modelVersion {
	old := e.cur.Swap(v)
	now := time.Now().Unix()
	e.lastSwapUnix.Store(now)
	e.swaps.Add(1)
	if e.tel != nil {
		e.tel.swaps.Inc()
		e.tel.activeSeq.Set(float64(v.seq))
		e.tel.lastSwap.Set(float64(now))
	}
	return old
}

// swapTo flips to v and drains the retired version.
func (e *Engine) swapTo(v *modelVersion) VersionInfo {
	old := e.flipTo(v)
	drained := true
	if old != nil && old != v {
		drained = old.drain(drainTimeout)
	}
	e.undrained.Store(!drained)
	return e.Version()
}

// ReplicaSet shards sessions over n engine replicas — the horizontal tier
// between the A/B bucket split and each engine's 16-way session shards. All
// replicas serve the same model version (they share the modelVersion and its
// scorer pool, so scorer mutual exclusion spans the set), but each owns its
// own session state, memo caches and latency ring, which is what lets the
// simulator drive millions of distinct sessions without one engine's shard
// mutexes becoming the bottleneck.
type ReplicaSet struct {
	replicas []*Engine
}

// NewReplicaSet builds n engine replicas serving one shared model version
// with a workers-wide scorer pool. A nil log disables event recording; day
// supplies the logical day stamp (nil means day 0).
func NewReplicaSet(b *ModelBundle, n, workers int, log *store.Log, day func() int) *ReplicaSet {
	if n < 1 {
		n = 1
	}
	v := newModelVersion(b, workers)
	rs := &ReplicaSet{replicas: make([]*Engine, n)}
	for i := 0; i < n; i++ {
		rs.replicas[i] = newEngineAt(v, i, workers, log, day)
	}
	return rs
}

// soloSet wraps an existing engine as a single-replica set (the compat path
// behind NewABRouter's variadic-engine constructor).
func soloSet(e *Engine) *ReplicaSet { return &ReplicaSet{replicas: []*Engine{e}} }

// Size returns the replica count.
func (rs *ReplicaSet) Size() int { return len(rs.replicas) }

// Engines lists the replicas in index order.
func (rs *ReplicaSet) Engines() []*Engine { return rs.replicas }

// Pick routes a session to its replica. The hash is a mixed multiplicative
// hash, deliberately independent of both the A/B bucket split (session %
// buckets) and each engine's session shards (session % 16), so replicas stay
// balanced even under stride-patterned session ids.
func (rs *ReplicaSet) Pick(session int) *Engine {
	if len(rs.replicas) == 1 {
		return rs.replicas[0]
	}
	h := uint64(session) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return rs.replicas[h%uint64(len(rs.replicas))]
}

// Versions reports every replica's active version.
func (rs *ReplicaSet) Versions() []VersionInfo {
	out := make([]VersionInfo, 0, len(rs.replicas))
	for _, e := range rs.replicas {
		out = append(out, e.Version())
	}
	return out
}

// RollingSwap hot-swaps the whole set to a new bundle one replica at a time:
// the version is built and warmed once, then each replica flips, with an
// optional stagger pause between flips. Mid-roll the set intentionally
// serves two versions — sessions pinned to already-flipped replicas see the
// new model while the rest still see the old one — which is exactly the
// canary window a production rolling deploy has. The retired version is
// drained once, after the last flip: the replicas share it, so its in-flight
// count can only reach zero when no replica routes new traffic to it.
func (rs *ReplicaSet) RollingSwap(b *ModelBundle, stagger time.Duration) []VersionInfo {
	v := newModelVersion(b, rs.replicas[0].workers)
	v.attachRetrieval(rs.replicas[0].retrieval) // shared index, built pre-flip
	v.warm()
	var retired []*modelVersion
	for i, e := range rs.replicas {
		if i > 0 && stagger > 0 {
			time.Sleep(stagger)
		}
		old := e.flipTo(v)
		if old == nil || old == v {
			continue
		}
		seen := false
		for _, o := range retired {
			if o == old {
				seen = true
				break
			}
		}
		if !seen {
			retired = append(retired, old)
		}
	}
	drained := true
	for _, o := range retired {
		if !o.drain(drainTimeout) {
			drained = false
		}
	}
	for _, e := range rs.replicas {
		e.undrained.Store(!drained)
	}
	return rs.Versions()
}
