package serving

import (
	"context"
	"strconv"
	"time"

	"intellitag/internal/obs"
	"intellitag/internal/store"
)

// Engine operations instrumented with a counter + latency histogram each.
// Instrument pointers are resolved once at SetTelemetry time and indexed by
// these constants, so the request path never touches a registry map.
const (
	opAsk = iota
	opClick
	opRecommend
	numOps
)

var opNames = [numOps]string{"ask", "click", "recommend"}

// engineTelemetry holds one engine's pre-resolved instruments. All fields are
// nil-safe obs instruments; the engine's hot path checks only `e.tel == nil`.
type engineTelemetry struct {
	tracer *obs.Tracer

	ops [numOps]*obs.Counter
	lat [numOps]*obs.Histogram

	// Live online indicators (Section VI-F), fed by the simulator or any
	// driver that reports impressions/clicks: CTR and HIR stream while the
	// run is in flight instead of being computed only at exit.
	impressions *obs.Counter
	userClicks  *obs.Counter
	escalations *obs.Counter
	sessions    *obs.Counter
	ctr         *obs.Gauge
	hir         *obs.Gauge

	// Version swap instruments (per replica — unlike the shared traffic
	// counters above, each replica flips independently during a rolling swap,
	// so these series carry a replica label).
	swaps     *obs.Counter
	activeSeq *obs.Gauge // active snapshot sequence (-1 when unversioned)
	lastSwap  *obs.Gauge // unix time of the replica's last swap

	// Retrieval observability (retrieve-then-rank): how many recommendation
	// computations each serving path handled, how many candidates the ranker
	// actually scored, and the sampled ANN recall against exact cosine search.
	retrievalPaths  [numRetrievalPaths]*obs.Counter
	retrievalCands  *obs.Histogram
	retrievalRecall *obs.Gauge

	shardSessions [sessionShardCount]*obs.Gauge
}

// SetTelemetry installs a metrics registry and tracer on the engine. The
// engine's bucket label is its scorer name; counters are shared across the
// replicas of a set (the registry hands back one series per label set), while
// per-replica state gauges add a replica label. Call during setup, before
// serving traffic; a nil registry uninstalls telemetry.
func (e *Engine) SetTelemetry(reg *obs.Registry, tracer *obs.Tracer) {
	if reg == nil && tracer == nil {
		e.tel = nil
		return
	}
	bucket := e.ScorerName()
	replica := strconv.Itoa(e.replica)
	t := &engineTelemetry{
		tracer:      tracer,
		impressions: reg.Counter("intellitag_sim_impressions_total", "bucket", bucket),
		userClicks:  reg.Counter("intellitag_sim_clicks_total", "bucket", bucket),
		escalations: reg.Counter("intellitag_sim_escalations_total", "bucket", bucket),
		sessions:    reg.Counter("intellitag_sim_sessions_total", "bucket", bucket),
		ctr:         reg.Gauge("intellitag_ctr", "bucket", bucket),
		hir:         reg.Gauge("intellitag_hir", "bucket", bucket),
		swaps:       reg.Counter("intellitag_model_swaps_total", "bucket", bucket, "replica", replica),
		activeSeq:   reg.Gauge("intellitag_model_active_version_seq", "bucket", bucket, "replica", replica),
		lastSwap:    reg.Gauge("intellitag_model_last_swap_unix", "bucket", bucket, "replica", replica),
	}
	for p := 0; p < numRetrievalPaths; p++ {
		t.retrievalPaths[p] = reg.Counter("intellitag_retrieval_total", "bucket", bucket, "path", retrievalPathNames[p])
	}
	t.retrievalCands = reg.Histogram("intellitag_retrieval_candidates",
		[]float64{8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}, "bucket", bucket)
	t.retrievalRecall = reg.Gauge("intellitag_retrieval_recall_sampled", "bucket", bucket)
	for op := 0; op < numOps; op++ {
		t.ops[op] = reg.Counter("intellitag_requests_total", "bucket", bucket, "op", opNames[op])
		t.lat[op] = reg.Histogram("intellitag_request_latency_seconds", nil, "bucket", bucket, "op", opNames[op])
	}
	for i := range t.shardSessions {
		t.shardSessions[i] = reg.Gauge("intellitag_sessions_active",
			"bucket", bucket, "replica", replica, "shard", strconv.Itoa(i))
	}
	// Publish the current version immediately so dashboards see the active
	// sequence before (or without) any swap.
	t.activeSeq.Set(float64(e.cur.Load().seq))
	if last := e.lastSwapUnix.Load(); last > 0 {
		t.lastSwap.Set(float64(last))
	}
	e.tel = t
}

// startSpan opens a span through the engine's tracer; without telemetry it
// returns the context unchanged and a nil (no-op) span.
func (e *Engine) startSpan(ctx context.Context, name string) (context.Context, *obs.Span) {
	if e.tel == nil {
		return ctx, nil
	}
	return e.tel.tracer.Start(ctx, name)
}

// observeOp counts one engine operation and records its latency.
func (e *Engine) observeOp(op int, start time.Time) {
	if e.tel == nil {
		return
	}
	e.tel.ops[op].Inc()
	e.tel.lat[op].ObserveDuration(time.Since(start))
}

// noteShardSize publishes a shard's live session count. Called with the shard
// lock held; the gauge write is a single atomic store.
func (e *Engine) noteShardSize(sh *sessionShard) {
	if e.tel == nil {
		return
	}
	for i := range e.shards {
		if sh == &e.shards[i] {
			e.tel.shardSessions[i].Set(float64(len(sh.m)))
			return
		}
	}
}

// NoteImpression reports one recommendation panel shown to a user: an
// impression event goes to the interaction log (topTag is the panel's
// top-ranked tag, -1 when the panel was empty — the online drift monitor
// correlates it with the following click for its calibration indicator) and
// the live CTR gauge refreshes when telemetry is installed.
func (e *Engine) NoteImpression(tenant, session, topTag int) {
	if e.log != nil {
		e.log.Append(store.Event{Day: e.day(), Session: session, Tenant: tenant, Kind: store.EventImpression, TagID: topTag})
	}
	if e.tel == nil {
		return
	}
	e.tel.impressions.Inc()
	e.updateCTR()
}

// NoteUserClick reports one user click on a shown recommendation and
// refreshes the live CTR gauge. No-op without telemetry.
func (e *Engine) NoteUserClick() {
	if e.tel == nil {
		return
	}
	e.tel.userClicks.Inc()
	e.updateCTR()
}

func (e *Engine) updateCTR() {
	if impr := e.tel.impressions.Value(); impr > 0 {
		e.tel.ctr.Set(float64(e.tel.userClicks.Value()) / float64(impr))
	}
}

func (e *Engine) updateHIR() {
	if sess := e.tel.sessions.Value(); sess > 0 {
		e.tel.hir.Set(float64(e.tel.escalations.Value()) / float64(sess))
	}
}
