package serving

import (
	"context"
	"strconv"
	"time"

	"intellitag/internal/obs"
)

// Engine operations instrumented with a counter + latency histogram each.
// Instrument pointers are resolved once at SetTelemetry time and indexed by
// these constants, so the request path never touches a registry map.
const (
	opAsk = iota
	opClick
	opRecommend
	numOps
)

var opNames = [numOps]string{"ask", "click", "recommend"}

// engineTelemetry holds one engine's pre-resolved instruments. All fields are
// nil-safe obs instruments; the engine's hot path checks only `e.tel == nil`.
type engineTelemetry struct {
	tracer *obs.Tracer

	ops [numOps]*obs.Counter
	lat [numOps]*obs.Histogram

	// Live online indicators (Section VI-F), fed by the simulator or any
	// driver that reports impressions/clicks: CTR and HIR stream while the
	// run is in flight instead of being computed only at exit.
	impressions *obs.Counter
	userClicks  *obs.Counter
	escalations *obs.Counter
	sessions    *obs.Counter
	ctr         *obs.Gauge
	hir         *obs.Gauge

	shardSessions [sessionShardCount]*obs.Gauge
}

// SetTelemetry installs a metrics registry and tracer on the engine. The
// engine's bucket label is its scorer name. Call during setup, before serving
// traffic; a nil registry uninstalls telemetry.
func (e *Engine) SetTelemetry(reg *obs.Registry, tracer *obs.Tracer) {
	if reg == nil && tracer == nil {
		e.tel = nil
		return
	}
	bucket := e.ScorerName()
	t := &engineTelemetry{
		tracer:      tracer,
		impressions: reg.Counter("intellitag_sim_impressions_total", "bucket", bucket),
		userClicks:  reg.Counter("intellitag_sim_clicks_total", "bucket", bucket),
		escalations: reg.Counter("intellitag_sim_escalations_total", "bucket", bucket),
		sessions:    reg.Counter("intellitag_sim_sessions_total", "bucket", bucket),
		ctr:         reg.Gauge("intellitag_ctr", "bucket", bucket),
		hir:         reg.Gauge("intellitag_hir", "bucket", bucket),
	}
	for op := 0; op < numOps; op++ {
		t.ops[op] = reg.Counter("intellitag_requests_total", "bucket", bucket, "op", opNames[op])
		t.lat[op] = reg.Histogram("intellitag_request_latency_seconds", nil, "bucket", bucket, "op", opNames[op])
	}
	for i := range t.shardSessions {
		t.shardSessions[i] = reg.Gauge("intellitag_sessions_active", "bucket", bucket, "shard", strconv.Itoa(i))
	}
	e.tel = t
}

// startSpan opens a span through the engine's tracer; without telemetry it
// returns the context unchanged and a nil (no-op) span.
func (e *Engine) startSpan(ctx context.Context, name string) (context.Context, *obs.Span) {
	if e.tel == nil {
		return ctx, nil
	}
	return e.tel.tracer.Start(ctx, name)
}

// observeOp counts one engine operation and records its latency.
func (e *Engine) observeOp(op int, start time.Time) {
	if e.tel == nil {
		return
	}
	e.tel.ops[op].Inc()
	e.tel.lat[op].ObserveDuration(time.Since(start))
}

// noteShardSize publishes a shard's live session count. Called with the shard
// lock held; the gauge write is a single atomic store.
func (e *Engine) noteShardSize(sh *sessionShard) {
	if e.tel == nil {
		return
	}
	for i := range e.shards {
		if sh == &e.shards[i] {
			e.tel.shardSessions[i].Set(float64(len(sh.m)))
			return
		}
	}
}

// NoteImpression reports one recommendation impression shown to a user and
// refreshes the live CTR gauge. No-op without telemetry.
func (e *Engine) NoteImpression() {
	if e.tel == nil {
		return
	}
	e.tel.impressions.Inc()
	e.updateCTR()
}

// NoteUserClick reports one user click on a shown recommendation and
// refreshes the live CTR gauge. No-op without telemetry.
func (e *Engine) NoteUserClick() {
	if e.tel == nil {
		return
	}
	e.tel.userClicks.Inc()
	e.updateCTR()
}

func (e *Engine) updateCTR() {
	if impr := e.tel.impressions.Value(); impr > 0 {
		e.tel.ctr.Set(float64(e.tel.userClicks.Value()) / float64(impr))
	}
}

func (e *Engine) updateHIR() {
	if sess := e.tel.sessions.Value(); sess > 0 {
		e.tel.hir.Set(float64(e.tel.escalations.Value()) / float64(sess))
	}
}
