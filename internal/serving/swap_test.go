package serving

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tableScorer ranks candidates by a fixed per-tag score table — no history
// sensitivity, so two tableScorers with different tables give two stable,
// distinguishable rankings across a swap.
type tableScorer struct {
	name  string
	table []float64
}

func (s tableScorer) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = s.table[c]
	}
	return out
}
func (s tableScorer) Name() string { return s.name }

// testBundle builds a serving bundle over the shared test world with a
// tableScorer. ascending=false inverts the ranking, so swapping between the
// two bundles visibly reorders recommendations.
func testBundle(t *testing.T, id, model string, ascending bool) *ModelBundle {
	t.Helper()
	train, _, _ := simWorld.SplitSessions(0.8, 0.1)
	catalog, index := BuildCatalog(simWorld, train)
	table := make([]float64, len(catalog.TagPhrases))
	for i := range table {
		if ascending {
			table[i] = float64(i)
		} else {
			table[i] = float64(len(table) - i)
		}
	}
	return &ModelBundle{
		VersionID: id,
		Catalog:   catalog,
		Index:     index,
		Scorer:    tableScorer{name: model, table: table},
	}
}

func TestEngineSwapFlipsVersion(t *testing.T) {
	e := newTestEngine(t, nil)
	v := e.Version()
	if v.ID != UnversionedID || v.Seq != -1 || v.Swaps != 0 || !v.Drained {
		t.Fatalf("fresh engine version = %+v", v)
	}
	info := e.Swap(testBundle(t, "v0001-aaaaaaaa", "up", true))
	if info.ID != "v0001-aaaaaaaa" || info.Seq != 1 || info.Swaps != 1 || !info.Drained {
		t.Fatalf("after swap: %+v", info)
	}
	if e.ScorerName() != "up" {
		t.Fatalf("scorer not swapped: %s", e.ScorerName())
	}
	if got := e.Version().ID; got != "v0001-aaaaaaaa" {
		t.Fatalf("Version after swap = %s", got)
	}
	if info.LastSwapUnix == 0 {
		t.Fatal("swap did not stamp LastSwapUnix")
	}
}

// TestSwapInvalidatesMemo pins the no-cross-version-leak property: a
// memoized recommendation computed on the old version must not answer a
// request on the new one, even though the session history is unchanged.
func TestSwapInvalidatesMemo(t *testing.T) {
	e := newTestEngine(t, nil)
	e.Swap(testBundle(t, "v0001-aaaaaaaa", "up", true))
	const tenant, session, k = 0, 404, 4
	seed := e.Catalog().TenantTags[tenant][0]
	e.Click(ctx, tenant, session, seed, k) // history, then memoized ranking
	up := e.RecommendTags(ctx, tenant, session, k)
	// Memo hit must serve while the version is unchanged.
	if again := e.RecommendTags(ctx, tenant, session, k); again[0] != up[0] {
		t.Fatalf("same-version memo unstable: %+v vs %+v", again[0], up[0])
	}
	e.Swap(testBundle(t, "v0002-bbbbbbbb", "down", false))
	down := e.RecommendTags(ctx, tenant, session, k)
	if down[0].Tag == up[0].Tag {
		t.Fatalf("post-swap top tag %d identical to pre-swap memo — stale entry served", down[0].Tag)
	}
	// The inverted table must put the old version's worst candidate first.
	if down[0].Score < down[len(down)-1].Score {
		t.Fatalf("post-swap ranking not sorted: %+v", down)
	}
}

// blockScorer parks inside ScoreCandidates once armed, letting a test hold a
// request in flight across a version flip. Unarmed (during warm()) it scores
// immediately.
type blockScorer struct {
	tableScorer
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (b *blockScorer) ScoreCandidates(history, candidates []int) []float64 {
	if b.armed.Load() {
		b.entered <- struct{}{}
		<-b.release
	}
	return b.tableScorer.ScoreCandidates(history, candidates)
}

// TestInFlightRequestFinishesOnOldVersion pins the zero-downtime contract:
// a request that loaded the old version before the flip completes on that
// version — old scorer, old catalog — while new requests already see the new
// one.
func TestInFlightRequestFinishesOnOldVersion(t *testing.T) {
	old := testBundle(t, "v0001-aaaaaaaa", "old", true)
	bs := &blockScorer{
		tableScorer: old.Scorer.(tableScorer),
		entered:     make(chan struct{}),
		release:     make(chan struct{}),
	}
	bs.tableScorer.name = "old"
	old.Scorer = bs
	e := newEngineAt(newModelVersion(old, 1), 0, 1, nil, nil)

	const tenant, session, k = 0, 777, 4
	seed := e.Catalog().TenantTags[tenant][0]
	sh := e.shard(session)
	sh.mu.Lock()
	sh.m[session] = []int{seed} // history so RecommendTags consults the scorer
	sh.ver++
	sh.mu.Unlock()

	bs.armed.Store(true)
	type recResult struct{ recs []ScoredTag }
	got := make(chan recResult, 1)
	go func() {
		got <- recResult{e.RecommendTags(ctx, tenant, session, k)}
	}()
	<-bs.entered // the request is inside the old version's scorer

	swapDone := make(chan VersionInfo, 1)
	go func() {
		swapDone <- e.Swap(testBundle(t, "v0002-bbbbbbbb", "new", false))
	}()
	// The flip is not gated on the drain: the new version must become active
	// while the old request is still parked.
	deadline := time.Now().Add(2 * time.Second)
	for e.ScorerName() != "new" {
		if time.Now().After(deadline) {
			t.Fatal("swap did not flip while a request was in flight")
		}
		time.Sleep(time.Millisecond)
	}
	// New traffic (fresh session) is served by the new version immediately.
	if fresh := e.RecommendTags(ctx, tenant, 778, k); len(fresh) == 0 {
		t.Fatal("new version dropped a request during drain")
	}

	bs.release <- struct{}{}
	res := (<-got).recs
	if len(res) != k {
		t.Fatalf("in-flight request dropped: %+v", res)
	}
	// The parked request must have scored on the OLD (ascending) table: its
	// top tag is the tenant's highest tag id, not the new table's lowest.
	wantTop := 0
	for _, tag := range e.Catalog().TenantTags[tenant] {
		if tag > wantTop {
			wantTop = tag
		}
	}
	if res[0].Tag != wantTop {
		t.Fatalf("in-flight request scored on the wrong version: top %d, want %d", res[0].Tag, wantTop)
	}
	info := <-swapDone
	if !info.Drained {
		t.Fatalf("old version failed to drain after release: %+v", info)
	}
}

// TestHotSwapUnderLoad is the -race stress gate for the tentpole: sustained
// Click/RecommendTags traffic against a 3-replica set while versions roll
// back and forth. Zero requests may fail and the set must converge on the
// final version with every replica drained.
func TestHotSwapUnderLoad(t *testing.T) {
	rs := NewReplicaSet(testBundle(t, "v0000-seedseed", "up", true), 3, 1, nil, nil)
	tenantTags := rs.Engines()[0].Catalog().TenantTags[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, failed atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			session := w * 100_000
			for {
				select {
				case <-stop:
					return
				default:
				}
				session++
				e := rs.Pick(session)
				recs, _ := e.Click(ctx, 0, session, tenantTags[session%len(tenantTags)], 5)
				if len(recs) == 0 {
					failed.Add(1)
				}
				if again := e.RecommendTags(ctx, 0, session, 5); len(again) == 0 {
					failed.Add(1)
				}
				served.Add(2)
				e.EndSession(session)
			}
		}(w)
	}

	const rolls = 6
	for i := 1; i <= rolls; i++ {
		id, model, asc := "v000"+string(rune('0'+i))+"-aaaaaaaa", "up", true
		if i%2 == 1 {
			model, asc = "down", false
		}
		rs.RollingSwap(testBundle(t, id, model, asc), time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d requests failed during swaps", failed.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("stress loop served nothing")
	}
	final := rs.Versions()
	for _, vi := range final {
		if vi.ID != final[0].ID {
			t.Fatalf("replicas diverged after rolling swaps: %+v", final)
		}
		if vi.Swaps != rolls {
			t.Fatalf("replica %d saw %d swaps, want %d", vi.Replica, vi.Swaps, rolls)
		}
		if !vi.Drained {
			t.Fatalf("replica %d retired version never drained: %+v", vi.Replica, vi)
		}
	}
}

// TestReplicaSetPickIsStableAndBalanced pins the routing hash: deterministic
// per session, and no replica starves even under strided session ids.
func TestReplicaSetPickIsStableAndBalanced(t *testing.T) {
	rs := NewReplicaSet(testBundle(t, "", "up", true), 4, 1, nil, nil)
	counts := make(map[*Engine]int)
	for session := 0; session < 4096; session += 16 { // stride = shard modulus
		e := rs.Pick(session)
		if again := rs.Pick(session); again != e {
			t.Fatalf("Pick(%d) unstable", session)
		}
		counts[e]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 replicas received traffic", len(counts))
	}
	for e, n := range counts {
		if n < 16 {
			t.Fatalf("replica %d starved: %d sessions", e.replica, n)
		}
	}
}

func TestAdminSwapEndpoints(t *testing.T) {
	rs := NewReplicaSet(testBundle(t, "", "up", true), 2, 1, nil, nil)
	server := NewServer(NewReplicatedABRouter(rs))
	srv := httptest.NewServer(server)
	defer srv.Close()

	// Unarmed: the control plane refuses swaps.
	resp, err := http.Post(srv.URL+"/admin/swap", "application/json", strings.NewReader(`{"version":"v0001-aaaaaaaa"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unarmed swap returned %d, want 503", resp.StatusCode)
	}

	server.SetSnapshotSource(nil, func(id string) (*ModelBundle, error) {
		return testBundle(t, id, "down", false), nil
	})
	body := postJSON(t, srv.URL+"/admin/swap", `{"version":"v0007-1a2b3c4d","stagger_ms":1}`)
	var swapped struct {
		Buckets []bucketVersions `json:"buckets"`
	}
	if err := json.Unmarshal(body, &swapped); err != nil {
		t.Fatalf("decode swap response: %v", err)
	}
	if len(swapped.Buckets) != 1 || len(swapped.Buckets[0].Replicas) != 2 {
		t.Fatalf("swap report shape wrong: %+v", swapped)
	}
	for _, vi := range swapped.Buckets[0].Replicas {
		if vi.ID != "v0007-1a2b3c4d" || vi.Swaps != 1 {
			t.Fatalf("replica not swapped: %+v", vi)
		}
	}

	resp, err = http.Get(srv.URL + "/admin/versions")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Buckets []bucketVersions `json:"buckets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if listed.Buckets[0].Model != "down" || listed.Buckets[0].Replicas[0].ID != "v0007-1a2b3c4d" {
		t.Fatalf("/admin/versions wrong: %+v", listed)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.ActiveVersion != "v0007-1a2b3c4d" {
		t.Fatalf("healthz active version = %q", health.ActiveVersion)
	}
	if health.LastSwapUnix == 0 {
		t.Fatal("healthz missing last-swap timestamp")
	}
	if len(health.Versions) != 2 {
		t.Fatalf("healthz replica versions wrong: %+v", health.Versions)
	}
}

// TestSimulateSetMatchesSimulate pins the sharding-transparency contract:
// replicas redistribute sessions but never change them, so a replicated run
// reports bit-identical CTR/HIR to the single-engine run.
func TestSimulateSetMatchesSimulate(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Days, cfg.SessionsPerDay = 2, 40

	solo := Simulate(simWorld, newTestEngine(t, nil), cfg)

	train, _, _ := simWorld.SplitSessions(0.8, 0.1)
	catalog, index := BuildCatalog(simWorld, train)
	scores := make([]float64, len(catalog.TagPhrases))
	copy(scores, catalog.Popularity)
	rs := NewReplicaSet(&ModelBundle{Catalog: catalog, Index: index, Scorer: popScorer{scores: scores}}, 3, 1, nil, nil)
	sharded := SimulateSet(simWorld, rs, cfg)

	if sharded.Replicas != 3 || solo.Replicas != 1 {
		t.Fatalf("replica counts wrong: %d, %d", sharded.Replicas, solo.Replicas)
	}
	if len(sharded.Versions) != 1 || sharded.Versions[0] != UnversionedID {
		t.Fatalf("versions served: %+v", sharded.Versions)
	}
	for d := range solo.Days {
		a, b := solo.Days[d], sharded.Days[d]
		if a.MacroCTR != b.MacroCTR || a.HIR != b.HIR || a.Clicks != b.Clicks || a.Impressions != b.Impressions {
			t.Fatalf("day %d diverged across replica counts:\nsolo %+v\nset  %+v", d, a, b)
		}
	}
}

// TestSimulateOnDayEndSwap drives the mid-run rolling swap the swap-demo
// performs and checks both versions show up in the served-version record.
func TestSimulateOnDayEndSwap(t *testing.T) {
	rs := NewReplicaSet(testBundle(t, "v0000-11111111", "up", true), 2, 1, nil, nil)
	cfg := DefaultSimConfig()
	cfg.Days, cfg.SessionsPerDay = 4, 30
	cfg.OnDayEnd = func(day int) {
		if day == 1 {
			rs.RollingSwap(testBundle(t, "v0001-22222222", "up", true), 0)
		}
	}
	res := SimulateSet(simWorld, rs, cfg)
	if len(res.Versions) != 2 || res.Versions[0] != "v0000-11111111" || res.Versions[1] != "v0001-22222222" {
		t.Fatalf("versions served across the swap: %+v", res.Versions)
	}
	for _, vi := range rs.Versions() {
		if vi.ID != "v0001-22222222" || !vi.Drained {
			t.Fatalf("replica did not finish on the new version: %+v", vi)
		}
	}
}
