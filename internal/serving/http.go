package serving

import (
	"encoding/json"
	"log"
	"net/http"
)

// Server exposes the engine router over an HTTP JSON API — the interface of
// Fig. 4's model server. Endpoints:
//
//	POST /ask        {"tenant":0,"session":1,"question":"..."}
//	POST /click      {"tenant":0,"session":1,"tag":12,"k":5}
//	POST /recommend  {"tenant":0,"session":1,"k":5}
//	GET  /healthz
type Server struct {
	router *ABRouter
	mux    *http.ServeMux
}

// NewServer wraps a router.
func NewServer(router *ABRouter) *Server {
	s := &Server{router: router, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /ask", s.handleAsk)
	s.mux.HandleFunc("POST /click", s.handleClick)
	s.mux.HandleFunc("POST /recommend", s.handleRecommend)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type askRequest struct {
	Tenant   int    `json:"tenant"`
	Session  int    `json:"session"`
	Question string `json:"question"`
}

type askResponse struct {
	Found  bool              `json:"found"`
	Match  PredictedQuestion `json:"match,omitempty"`
	Bucket string            `json:"bucket"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Question == "" {
		http.Error(w, "question required", http.StatusBadRequest)
		return
	}
	engine := s.router.Engine(req.Session)
	match, ok := engine.Ask(req.Tenant, req.Session, req.Question)
	writeJSON(w, http.StatusOK, askResponse{Found: ok, Match: match, Bucket: engine.ScorerName()})
}

type clickRequest struct {
	Tenant  int `json:"tenant"`
	Session int `json:"session"`
	Tag     int `json:"tag"`
	K       int `json:"k"`
}

type clickResponse struct {
	Tags      []ScoredTag         `json:"tags"`
	Questions []PredictedQuestion `json:"questions"`
	Bucket    string              `json:"bucket"`
}

func (s *Server) handleClick(w http.ResponseWriter, r *http.Request) {
	var req clickRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 5
	}
	engine := s.router.Engine(req.Session)
	tags, questions := engine.Click(req.Tenant, req.Session, req.Tag, req.K)
	writeJSON(w, http.StatusOK, clickResponse{Tags: tags, Questions: questions, Bucket: engine.ScorerName()})
}

type recommendRequest struct {
	Tenant  int `json:"tenant"`
	Session int `json:"session"`
	K       int `json:"k"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 5
	}
	engine := s.router.Engine(req.Session)
	tags := engine.RecommendTags(req.Tenant, req.Session, req.K)
	writeJSON(w, http.StatusOK, clickResponse{Tags: tags, Bucket: engine.ScorerName()})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// The status line is already gone, so the client cannot be told — but an
	// encode failure here means a truncated response body; log it so dropped
	// recommendations are visible in the serving logs rather than silent.
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serving: encode response: %v", err)
	}
}
