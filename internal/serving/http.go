package serving

import (
	"bytes"
	"encoding/json"
	"errors"
	"io/fs"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"intellitag/internal/obs"
	"intellitag/internal/snapshot"
)

// Server exposes the engine router over an HTTP JSON API — the interface of
// Fig. 4's model server. Endpoints:
//
//	POST /ask         {"tenant":0,"session":1,"question":"..."}
//	POST /click       {"tenant":0,"session":1,"tag":12,"k":5}
//	POST /recommend   {"tenant":0,"session":1,"k":5}
//	GET  /healthz     build info, uptime, buckets, versions, request totals
//
// With a snapshot source (SetSnapshotSource) it also serves the hot-swap
// control plane:
//
//	GET  /admin/versions  per-bucket, per-replica active model versions
//	POST /admin/swap      {"version":"v0007-1a2b3c4d","stagger_ms":50}
//	                      (empty body or version swaps to the store's latest)
//
// EnableTelemetry additionally mounts:
//
//	GET  /metrics       Prometheus text exposition
//	GET  /metrics.json  registry snapshot with histogram percentiles
//	GET  /debug/trace   recent sampled span trees, newest first
type Server struct {
	router *ABRouter
	mux    *http.ServeMux
	start  time.Time

	requests atomic.Int64 // all API requests, telemetry or not (for /healthz)
	inflight atomic.Int64 // API requests currently being handled

	reg      *obs.Registry
	tracer   *obs.Tracer
	httpReqs map[string]*obs.Counter   // route -> counter, resolved at enable time
	httpLat  map[string]*obs.Histogram // route -> latency histogram
	httpErrs *obs.Counter              // responses with status >= 400

	// onlineStatus, when set, reports the online learner/drift controller's
	// state (SetOnlineStatus). The hook keeps serving decoupled from the
	// online package, which imports serving for its rolling-swap deployer.
	onlineStatus func() any

	// Snapshot source for the hot-swap control plane (SetSnapshotSource).
	// swapMu serializes swaps: a rolling swap is already gradual, overlapping
	// two of them would interleave versions across replicas.
	swapMu    sync.Mutex
	snapStore *snapshot.Store
	loadModel BundleLoader
}

// BundleLoader materializes a serving bundle from a committed snapshot
// version. Each call must return a fresh bundle (fresh scorer state) — the
// server loads one per bucket so buckets never share a stateful scorer.
type BundleLoader func(versionID string) (*ModelBundle, error)

// NewServer wraps a router.
func NewServer(router *ABRouter) *Server {
	s := &Server{router: router, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /ask", s.instrumented("ask", s.handleAsk))
	s.mux.HandleFunc("POST /click", s.instrumented("click", s.handleClick))
	s.mux.HandleFunc("POST /recommend", s.instrumented("recommend", s.handleRecommend))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /admin/versions", s.handleAdminVersions)
	s.mux.HandleFunc("POST /admin/swap", s.handleAdminSwap)
	s.mux.HandleFunc("GET /admin/online", s.handleAdminOnline)
	return s
}

// SetOnlineStatus installs the status source behind GET /admin/online and the
// healthz online field — typically a closure over online.Controller.Status.
// Nil (the default) leaves the endpoint answering 503. Call during setup.
func (s *Server) SetOnlineStatus(fn func() any) { s.onlineStatus = fn }

// handleAdminOnline reports the online controller's status, or 503 when no
// online loop is attached to this server.
func (s *Server) handleAdminOnline(w http.ResponseWriter, r *http.Request) {
	if s.onlineStatus == nil {
		http.Error(w, "no online controller attached", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusOK, s.onlineStatus())
}

// SetSnapshotSource arms the /admin/swap endpoint with a snapshot store and a
// bundle loader. A nil store is allowed (swaps then require an explicit
// version id and skip integrity verification); a nil loader disarms the
// endpoint. Call during setup.
func (s *Server) SetSnapshotSource(store *snapshot.Store, load BundleLoader) {
	s.snapStore = store
	s.loadModel = load
}

// EnableTelemetry installs a registry and tracer on the server, its router
// and every engine behind it, and mounts the /metrics, /metrics.json and
// /debug/trace surfaces on the serving mux. Call during setup.
func (s *Server) EnableTelemetry(reg *obs.Registry, tracer *obs.Tracer) {
	s.reg = reg
	s.tracer = tracer
	s.httpReqs = map[string]*obs.Counter{}
	s.httpLat = map[string]*obs.Histogram{}
	for _, route := range []string{"ask", "click", "recommend"} {
		s.httpReqs[route] = reg.Counter("intellitag_http_requests_total", "route", route)
		s.httpLat[route] = reg.Histogram("intellitag_http_request_seconds", nil, "route", route)
	}
	s.httpErrs = reg.Counter("intellitag_http_errors_total")
	s.router.SetTelemetry(reg)
	for _, e := range s.router.Engines() {
		e.SetTelemetry(reg, tracer)
	}
	s.mux.Handle("GET /metrics", obs.MetricsHandler(reg))
	s.mux.Handle("GET /metrics.json", obs.SnapshotHandler(reg))
	s.mux.Handle("GET /debug/trace", obs.TraceHandler(tracer))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusWriter remembers the response code so the error counter sees what
// the client saw.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrumented wraps an API handler with request counting, latency tracking
// and a root trace span carried on the request context. Without telemetry it
// only bumps the healthz request total.
func (s *Server) instrumented(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.reg == nil {
			h(w, r)
			return
		}
		start := time.Now()
		ctx, span := s.tracer.Start(r.Context(), "http."+route)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		span.End()
		s.httpReqs[route].Inc()
		s.httpLat[route].ObserveDuration(time.Since(start))
		if sw.code >= 400 {
			s.httpErrs.Inc()
		}
	}
}

type askRequest struct {
	Tenant   int    `json:"tenant"`
	Session  int    `json:"session"`
	Question string `json:"question"`
}

type askResponse struct {
	Found  bool              `json:"found"`
	Match  PredictedQuestion `json:"match,omitempty"`
	Bucket string            `json:"bucket"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Question == "" {
		http.Error(w, "question required", http.StatusBadRequest)
		return
	}
	engine := s.router.Engine(req.Session)
	match, ok := engine.Ask(r.Context(), req.Tenant, req.Session, req.Question)
	writeJSON(w, http.StatusOK, askResponse{Found: ok, Match: match, Bucket: engine.ScorerName()})
}

type clickRequest struct {
	Tenant  int `json:"tenant"`
	Session int `json:"session"`
	Tag     int `json:"tag"`
	K       int `json:"k"`
}

type clickResponse struct {
	Tags      []ScoredTag         `json:"tags"`
	Questions []PredictedQuestion `json:"questions"`
	Bucket    string              `json:"bucket"`
}

func (s *Server) handleClick(w http.ResponseWriter, r *http.Request) {
	var req clickRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 5
	}
	engine := s.router.Engine(req.Session)
	tags, questions := engine.Click(r.Context(), req.Tenant, req.Session, req.Tag, req.K)
	writeJSON(w, http.StatusOK, clickResponse{Tags: tags, Questions: questions, Bucket: engine.ScorerName()})
}

type recommendRequest struct {
	Tenant  int `json:"tenant"`
	Session int `json:"session"`
	K       int `json:"k"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 5
	}
	engine := s.router.Engine(req.Session)
	tags := engine.RecommendTags(r.Context(), req.Tenant, req.Session, req.K)
	writeJSON(w, http.StatusOK, clickResponse{Tags: tags, Bucket: engine.ScorerName()})
}

// healthzResponse is the enriched health report: build identity, uptime, the
// models serving each bucket, the active snapshot version (bucket 0) with
// its last-swap time, per-replica version detail and the API request total
// since start.
type healthzResponse struct {
	Status        string        `json:"status"`
	GoVersion     string        `json:"go_version"`
	Module        string        `json:"module,omitempty"`
	Revision      string        `json:"revision,omitempty"`
	UptimeSec     float64       `json:"uptime_sec"`
	Buckets       []string      `json:"buckets"`
	ActiveVersion string        `json:"active_version"`
	LastSwapUnix  int64         `json:"last_swap_unix,omitempty"`
	Versions      []VersionInfo `json:"versions"`
	Requests      int64         `json:"requests"`
	Inflight      int64         `json:"inflight"`
	// SecondsSinceSwap is the age of the active version's last rolling swap;
	// omitted until the first swap. RouteP99Ms is the per-route request-latency
	// p99 snapshot in milliseconds (telemetry-enabled servers only). Both feed
	// the load-certification harness (internal/load.probeServer).
	SecondsSinceSwap float64            `json:"seconds_since_swap,omitempty"`
	RouteP99Ms       map[string]float64 `json:"route_p99_ms,omitempty"`
	// Retrieval is the primary engine's retrieve-then-rank accounting: which
	// serving path recommendation computations took and the active backend.
	Retrieval RetrievalStats `json:"retrieval"`
	// Online is the attached online controller's status (SetOnlineStatus);
	// omitted when the process runs without an online loop.
	Online any `json:"online,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:    "ok",
		UptimeSec: time.Since(s.start).Seconds(),
		Requests:  s.requests.Load(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		resp.GoVersion = info.GoVersion
		resp.Module = info.Main.Path
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				resp.Revision = kv.Value
			}
		}
	}
	for _, e := range s.router.Engines() {
		resp.Buckets = append(resp.Buckets, e.ScorerName())
	}
	for _, rs := range s.router.Sets() {
		resp.Versions = append(resp.Versions, rs.Versions()...)
	}
	primary := s.router.Engines()[0].Version()
	resp.ActiveVersion = primary.ID
	resp.LastSwapUnix = primary.LastSwapUnix
	resp.Inflight = s.inflight.Load()
	if primary.LastSwapUnix > 0 {
		resp.SecondsSinceSwap = float64(time.Now().Unix() - primary.LastSwapUnix)
	}
	if s.reg != nil {
		p99 := make(map[string]float64, len(s.httpLat))
		for _, route := range []string{"ask", "click", "recommend"} {
			h := s.httpLat[route]
			if h.Count() == 0 {
				continue
			}
			p99[route] = h.Quantile(0.99) * 1000
		}
		if len(p99) > 0 {
			resp.RouteP99Ms = p99
		}
	}
	resp.Retrieval = s.router.Engines()[0].RetrievalStats()
	if s.onlineStatus != nil {
		resp.Online = s.onlineStatus()
	}
	writeJSON(w, http.StatusOK, resp)
}

// bucketVersions is one A/B bucket's replica-by-replica version report.
type bucketVersions struct {
	Bucket   int           `json:"bucket"`
	Model    string        `json:"model"`
	Replicas []VersionInfo `json:"replicas"`
}

func (s *Server) versionReport() []bucketVersions {
	sets := s.router.Sets()
	out := make([]bucketVersions, len(sets))
	for i, rs := range sets {
		out[i] = bucketVersions{
			Bucket:   i,
			Model:    rs.replicas[0].ScorerName(),
			Replicas: rs.Versions(),
		}
	}
	return out
}

func (s *Server) handleAdminVersions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"buckets": s.versionReport()})
}

type swapRequest struct {
	Version   string `json:"version"`    // empty = the store's latest
	StaggerMS int    `json:"stagger_ms"` // pause between replica flips
}

// Swap resolves a version id (empty means the store's latest), verifies the
// snapshot's checksums, loads one fresh bundle per bucket and rolls it across
// every replica set. It is the engine room of POST /admin/swap and of the
// store watcher's auto-swap; only one swap runs at a time.
func (s *Server) Swap(versionID string, stagger time.Duration) ([]bucketVersions, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.loadModel == nil {
		return nil, errors.New("no snapshot source configured")
	}
	if versionID == "" {
		if s.snapStore == nil {
			return nil, errors.New("no snapshot store: an explicit version id is required")
		}
		latest, err := s.snapStore.Latest()
		if err != nil {
			return nil, err
		}
		versionID = latest.ID
	}
	if s.snapStore != nil {
		if err := s.snapStore.Verify(versionID); err != nil {
			return nil, err
		}
	}
	for _, rs := range s.router.Sets() {
		b, err := s.loadModel(versionID)
		if err != nil {
			return nil, err
		}
		rs.RollingSwap(b, stagger)
	}
	return s.versionReport(), nil
}

func (s *Server) handleAdminSwap(w http.ResponseWriter, r *http.Request) {
	var req swapRequest
	if r.ContentLength != 0 && !decode(w, r, &req) {
		return
	}
	report, err := s.Swap(req.Version, time.Duration(req.StaggerMS)*time.Millisecond)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, snapshot.ErrChecksum):
			code = http.StatusConflict // snapshot on disk fails integrity
		case errors.Is(err, snapshot.ErrEmpty), errors.Is(err, fs.ErrNotExist):
			code = http.StatusNotFound
		case s.loadModel == nil:
			code = http.StatusServiceUnavailable
		}
		http.Error(w, "swap: "+err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"buckets": report})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON encodes v into a buffer before touching the response, so an
// encode failure becomes a clean 500 instead of a truncated 200 body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, "encode response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
}
