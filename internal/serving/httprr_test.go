package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"intellitag/internal/httprr"
	"intellitag/internal/obs"
)

// recordSession drives one deterministic click → recommend session through a
// recording transport and returns the sealed trace path. This is the traffic
// shape older tests constructed ad hoc inline; here it is recorded once and
// replayed everywhere else.
func recordSession(t *testing.T) string {
	t.Helper()
	e := newTestEngine(t, nil)
	srv := httptest.NewServer(NewServer(NewABRouter(e)))
	defer srv.Close()

	rec := httprr.NewRecorder(nil)
	client := &http.Client{Transport: rec}
	post := func(path, body string) {
		t.Helper()
		resp, err := client.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("drain %s: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("close %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
	}

	// A session warming up: cold-start recommend, three clicks interleaved
	// with recommends (history shifts the scorer each time), plus an ask.
	tags := e.Catalog().TenantTags[0]
	post("/recommend", `{"tenant":0,"session":31,"k":5}`)
	for i := 0; i < 3; i++ {
		post("/click", fmt.Sprintf(`{"tenant":0,"session":31,"tag":%d,"k":5}`, tags[i]))
		post("/recommend", `{"tenant":0,"session":31,"k":5}`)
	}
	rq := simWorld.RQs[0]
	ask, err := json.Marshal(askRequest{Tenant: rq.Tenant, Session: 31, Question: rq.Text})
	if err != nil {
		t.Fatal(err)
	}
	post("/ask", string(ask))

	path := filepath.Join(t.TempDir(), "session.httprr")
	if err := rec.Save(path); err != nil {
		t.Fatalf("save trace: %v", err)
	}
	if rec.Len() != 8 {
		t.Fatalf("recorded %d round-trips, want 8", rec.Len())
	}
	return path
}

// replayAgainstFreshServer replays the trace's requests in recorded order
// against a brand-new identical server and returns the live response bodies.
func replayAgainstFreshServer(t *testing.T, records []httprr.Record) []string {
	t.Helper()
	srv := httptest.NewServer(NewServer(NewABRouter(newTestEngine(t, nil))))
	defer srv.Close()

	var bodies []string
	for i, r := range records {
		resp, err := http.Post(srv.URL+r.Path, "application/json", strings.NewReader(r.ReqBody))
		if err != nil {
			t.Fatalf("replay %d %s: %v", i, r.Path, err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("replay %d %s: %v", i, r.Path, err)
		}
		if resp.StatusCode != r.Status {
			t.Fatalf("replay %d %s: status %d, recorded %d", i, r.Path, resp.StatusCode, r.Status)
		}
		bodies = append(bodies, string(body))
	}
	return bodies
}

// TestServingTraceReplayDeterminism is the acceptance pin for httprr on the
// serving path: a recorded click → recommend session, replayed twice against
// fresh identical servers, yields byte-identical recommendation responses —
// both to each other and to the recording.
func TestServingTraceReplayDeterminism(t *testing.T) {
	path := recordSession(t)
	records, err := httprr.ReadTrace(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}

	first := replayAgainstFreshServer(t, records)
	second := replayAgainstFreshServer(t, records)
	for i := range records {
		if first[i] != second[i] {
			t.Fatalf("replay %d diverged between runs:\n%s\nvs\n%s", i, first[i], second[i])
		}
		if first[i] != records[i].RespBody {
			t.Fatalf("replay %d diverged from recording:\n%s\nvs recorded\n%s", i, first[i], records[i].RespBody)
		}
	}

	// The offline half: the Replayer transport serves the same bytes with no
	// server at all, and a complete replay leaves nothing unconsumed.
	rp, err := httprr.Open(path)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	client := &http.Client{Transport: rp}
	for i, r := range records {
		resp, err := client.Post("http://recorded.invalid"+r.Path, "application/json", strings.NewReader(r.ReqBody))
		if err != nil {
			t.Fatalf("offline replay %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("offline replay %d: %v", i, err)
		}
		if !bytes.Equal(body, []byte(records[i].RespBody)) {
			t.Fatalf("offline replay %d returned different bytes", i)
		}
	}
	if rp.Remaining() != 0 {
		t.Fatalf("%d recorded responses never replayed", rp.Remaining())
	}
}

// TestHealthzEnriched pins the load-certification fields on /healthz: the
// in-flight gauge, the per-route p99 snapshot and the request total.
func TestHealthzEnriched(t *testing.T) {
	server := NewServer(NewABRouter(newTestEngine(t, nil)))
	server.EnableTelemetry(obs.NewRegistry(), obs.NewTracer(1, 16))
	srv := httptest.NewServer(server)
	defer srv.Close()

	for i := 0; i < 5; i++ {
		resp, err := http.Post(srv.URL+"/recommend", "application/json",
			strings.NewReader(`{"tenant":0,"session":9,"k":3}`))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Requests         int64              `json:"requests"`
		Inflight         int64              `json:"inflight"`
		SecondsSinceSwap float64            `json:"seconds_since_swap"`
		RouteP99Ms       map[string]float64 `json:"route_p99_ms"`
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &hz); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if hz.Requests != 5 {
		t.Fatalf("requests = %d, want 5", hz.Requests)
	}
	if hz.Inflight != 0 {
		t.Fatalf("inflight = %d with no request in flight", hz.Inflight)
	}
	if p99, ok := hz.RouteP99Ms["recommend"]; !ok || p99 <= 0 {
		t.Fatalf("route_p99_ms missing recommend: %v", hz.RouteP99Ms)
	}
	if _, ok := hz.RouteP99Ms["ask"]; ok {
		t.Fatalf("route_p99_ms fabricated a p99 for the unused ask route: %v", hz.RouteP99Ms)
	}
	// No swap has happened, so the age field is omitted, not zero-valued.
	if bytes.Contains(raw, []byte("seconds_since_swap")) {
		t.Fatalf("seconds_since_swap emitted before any swap: %s", raw)
	}
}
