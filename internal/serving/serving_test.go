package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"intellitag/internal/store"
	"intellitag/internal/synth"
)

// ctx is the plain request context shared by engine-level test calls.
var ctx = context.Background()

// popScorer ranks candidates by a fixed score table; history shifts scores
// so tests can verify the model is actually consulted.
type popScorer struct{ scores []float64 }

func (p popScorer) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = p.scores[c]
		// Never recommend an already-clicked tag first.
		for _, h := range history {
			if h == c {
				out[i] = -1
			}
		}
	}
	return out
}
func (p popScorer) Name() string { return "pop" }

var simWorld = synth.Generate(synth.SmallConfig())

func newTestEngine(t *testing.T, log *store.Log) *Engine {
	t.Helper()
	train, _, _ := simWorld.SplitSessions(0.8, 0.1)
	catalog, index := BuildCatalog(simWorld, train)
	scores := make([]float64, len(catalog.TagPhrases))
	copy(scores, catalog.Popularity)
	return NewEngine(catalog, index, popScorer{scores: scores}, log, nil)
}

func TestBuildCatalog(t *testing.T) {
	train, _, _ := simWorld.SplitSessions(0.8, 0.1)
	catalog, index := BuildCatalog(simWorld, train)
	if len(catalog.TagPhrases) != len(simWorld.Tags) {
		t.Fatal("tag phrases incomplete")
	}
	if index.Len() != len(simWorld.RQs) {
		t.Fatal("index incomplete")
	}
	if len(catalog.TenantTags) != len(simWorld.Tenants) {
		t.Fatal("tenant tags incomplete")
	}
	var anyPop bool
	for _, p := range catalog.Popularity {
		if p > 0 {
			anyPop = true
		}
	}
	if !anyPop {
		t.Fatal("no popularity accumulated")
	}
	for id, ans := range catalog.RQAnswers {
		if ans == "" {
			t.Fatalf("RQ %d has empty answer", id)
		}
		break
	}
}

func TestColdStartUsesPopularity(t *testing.T) {
	e := newTestEngine(t, nil)
	recs := e.RecommendTags(ctx, 0, 12345, 5)
	if len(recs) == 0 {
		t.Fatal("no cold-start recommendations")
	}
	// All recommended tags belong to the tenant and are ordered by score.
	tenantSet := map[int]bool{}
	for _, tg := range e.Catalog().TenantTags[0] {
		tenantSet[tg] = true
	}
	for i, r := range recs {
		if !tenantSet[r.Tag] {
			t.Fatalf("recommended foreign tag %d", r.Tag)
		}
		if i > 0 && recs[i-1].Score < r.Score {
			t.Fatal("not sorted by score")
		}
	}
}

func TestClickUpdatesHistoryAndRecommends(t *testing.T) {
	e := newTestEngine(t, nil)
	first := e.RecommendTags(ctx, 0, 7, 3)
	tags, questions := e.Click(ctx, 0, 7, first[0].Tag, 3)
	if len(e.History(7)) != 1 {
		t.Fatal("click not recorded in session")
	}
	for _, r := range tags {
		if r.Tag == first[0].Tag {
			t.Fatal("clicked tag recommended again (scorer saw no history)")
		}
	}
	if len(questions) == 0 {
		t.Fatal("no predicted questions")
	}
	// Predicted questions must contain the clicked tag's phrase.
	phrase := e.Catalog().TagPhrases[first[0].Tag]
	found := false
	for _, q := range questions {
		if strings.Contains(q.Question, phrase) {
			found = true
		}
		if q.Answer == "" {
			t.Fatal("question without answer")
		}
	}
	if !found {
		t.Fatalf("no predicted question mentions %q", phrase)
	}
	e.EndSession(7)
	if len(e.History(7)) != 0 {
		t.Fatal("EndSession did not clear history")
	}
}

func TestAskFindsBestRQ(t *testing.T) {
	e := newTestEngine(t, nil)
	rq := simWorld.RQs[0]
	match, ok := e.Ask(ctx, rq.Tenant, 1, rq.Text)
	if !ok {
		t.Fatal("exact question not found")
	}
	if match.RQ != rq.ID {
		t.Fatalf("matched RQ %d, want %d", match.RQ, rq.ID)
	}
	if match.Answer != rq.Answer {
		t.Fatal("wrong answer")
	}
	if _, ok := e.Ask(ctx, rq.Tenant, 1, "zzzz qqqq totally unknown"); ok {
		t.Fatal("nonsense question matched")
	}
}

func TestEventsLogged(t *testing.T) {
	log := store.NewLog()
	e := newTestEngine(t, log)
	e.Click(ctx, 0, 3, e.Catalog().TenantTags[0][0], 3)
	rq := simWorld.RQs[0]
	e.Ask(ctx, rq.Tenant, 3, rq.Text)
	e.Escalate(0, 3)
	if log.CountKind(store.EventClick, 0, 1) != 1 {
		t.Fatal("click not logged")
	}
	if log.CountKind(store.EventQuestion, 0, 1) != 1 {
		t.Fatal("question not logged")
	}
	if log.CountKind(store.EventHuman, 0, 1) != 1 {
		t.Fatal("escalation not logged")
	}
}

func TestLatenciesRecorded(t *testing.T) {
	e := newTestEngine(t, nil)
	e.RecommendTags(ctx, 0, 1, 3)
	e.Ask(ctx, 0, 1, "how to")
	if len(e.Latencies()) != 2 {
		t.Fatalf("latencies = %d, want 2", len(e.Latencies()))
	}
	e.ResetLatencies()
	if len(e.Latencies()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestABRouterDeterministic(t *testing.T) {
	a := newTestEngine(t, nil)
	b := newTestEngine(t, nil)
	r := NewABRouter(a, b)
	if r.Bucket(4) != 0 || r.Bucket(5) != 1 {
		t.Fatal("bucket assignment wrong")
	}
	if r.Engine(4) != a || r.Engine(5) != b {
		t.Fatal("engine routing wrong")
	}
	if r.Bucket(-3) != 1 {
		t.Fatalf("negative session bucket = %d", r.Bucket(-3))
	}
	if len(r.Engines()) != 2 {
		t.Fatal("Engines() wrong")
	}
}

func TestABRouterPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewABRouter()
}

func TestHTTPEndpoints(t *testing.T) {
	e := newTestEngine(t, nil)
	srv := httptest.NewServer(NewServer(NewABRouter(e)))
	defer srv.Close()

	post := func(path string, body any) *http.Response {
		data, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Health.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Recommend.
	resp = post("/recommend", recommendRequest{Tenant: 0, Session: 1, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend status %d", resp.StatusCode)
	}
	var recResp clickResponse
	json.NewDecoder(resp.Body).Decode(&recResp)
	resp.Body.Close()
	if len(recResp.Tags) == 0 || recResp.Bucket != "pop" {
		t.Fatalf("recommend response %+v", recResp)
	}

	// Click.
	resp = post("/click", clickRequest{Tenant: 0, Session: 1, Tag: recResp.Tags[0].Tag})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("click status %d", resp.StatusCode)
	}
	var clickResp clickResponse
	json.NewDecoder(resp.Body).Decode(&clickResp)
	resp.Body.Close()
	if len(clickResp.Questions) == 0 {
		t.Fatal("click returned no predicted questions")
	}

	// Ask.
	rq := simWorld.RQs[0]
	resp = post("/ask", askRequest{Tenant: rq.Tenant, Session: 1, Question: rq.Text})
	var askResp askResponse
	json.NewDecoder(resp.Body).Decode(&askResp)
	resp.Body.Close()
	if !askResp.Found || askResp.Match.RQ != rq.ID {
		t.Fatalf("ask response %+v", askResp)
	}

	// Bad request.
	resp = post("/ask", askRequest{Tenant: 0, Session: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty question status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSimulateProducesSaneMetrics(t *testing.T) {
	e := newTestEngine(t, store.NewLog())
	cfg := DefaultSimConfig()
	cfg.Days = 2
	cfg.SessionsPerDay = 40
	res := Simulate(simWorld, e, cfg)
	if len(res.Days) != 2 {
		t.Fatalf("days = %d", len(res.Days))
	}
	for _, d := range res.Days {
		if d.Sessions != 40 {
			t.Fatalf("sessions = %d", d.Sessions)
		}
		if d.MacroCTR < 0 || d.MacroCTR > 1 || d.HIR < 0 || d.HIR > 1 {
			t.Fatalf("metrics out of range: %+v", d)
		}
		if d.Impressions == 0 {
			t.Fatal("no impressions")
		}
	}
	if res.Latency.N == 0 {
		t.Fatal("no latencies recorded")
	}
	if res.MeanMacroCTR() <= 0 {
		t.Fatal("zero CTR with a popularity scorer is implausible")
	}
	if res.MeanLatency() <= 0 {
		t.Fatal("no latency")
	}
}

func TestSimulateOracleBeatsRandom(t *testing.T) {
	// An oracle scorer that knows the ground-truth process should achieve a
	// higher CTR than a uniform-random scorer.
	train, _, _ := simWorld.SplitSessions(0.8, 0.1)
	catalog, index := BuildCatalog(simWorld, train)

	oracle := NewEngine(catalog, index, chainScorer{w: simWorld}, nil, nil)
	random := NewEngine(catalog, index, randomScorer{}, nil, nil)

	cfg := DefaultSimConfig()
	cfg.Days = 2
	cfg.SessionsPerDay = 60
	oracleRes := Simulate(simWorld, oracle, cfg)
	randomRes := Simulate(simWorld, random, cfg)
	if oracleRes.MeanMacroCTR() <= randomRes.MeanMacroCTR() {
		t.Fatalf("oracle CTR %v <= random CTR %v", oracleRes.MeanMacroCTR(), randomRes.MeanMacroCTR())
	}
	if oracleRes.MeanHIR() >= randomRes.MeanHIR() {
		t.Fatalf("oracle HIR %v >= random HIR %v", oracleRes.MeanHIR(), randomRes.MeanHIR())
	}
}

// chainScorer scores candidates by whether they continue a ground-truth
// chain from the last click.
type chainScorer struct{ w *synth.World }

func (c chainScorer) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	if len(history) == 0 {
		return out
	}
	last := history[len(history)-1]
	topic := c.w.Tags[last].Topic
	for i, cand := range candidates {
		// Same chain adjacency scores highest, same topic next.
		for _, chain := range c.w.Topics[topic].Chains {
			for j, tag := range chain {
				if tag != last {
					continue
				}
				if j+1 < len(chain) && chain[j+1] == cand {
					out[i] += 10
				}
				if j > 0 && chain[j-1] == cand {
					out[i] += 8
				}
			}
		}
		if c.w.Tags[cand].Topic == topic {
			out[i] += 1
		}
	}
	return out
}
func (c chainScorer) Name() string { return "oracle" }

type randomScorer struct{}

func (randomScorer) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	for i := range out {
		out[i] = float64((i*2654435761)%1000) / 1000 // arbitrary fixed jumble
	}
	return out
}
func (randomScorer) Name() string { return "random" }

// stubMatcher always prefers a fixed RQ id within the subset.
type stubMatcher struct{ prefer int }

func (s stubMatcher) Best(question string, subset map[int]bool) (int, float64) {
	if subset[s.prefer] {
		return s.prefer, 42
	}
	for id := range subset {
		return id, 1
	}
	return -1, 0
}

func TestAskUsesMatcherWhenSet(t *testing.T) {
	e := newTestEngine(t, nil)
	rq := simWorld.RQs[0]
	// Find another RQ of the same tenant that shares a word so it lands in
	// the recall set; the stub matcher prefers it over BM25's top hit.
	var other int = -1
	for _, cand := range simWorld.RQs[1:] {
		if cand.Tenant == rq.Tenant {
			other = cand.ID
			break
		}
	}
	if other == -1 {
		t.Skip("no second RQ for tenant")
	}
	e.SetMatcher(stubMatcher{prefer: other})
	match, ok := e.Ask(ctx, rq.Tenant, 1, rq.Text)
	if !ok {
		t.Fatal("no match")
	}
	// The matcher's preference wins only if 'other' was in the recall set;
	// either way the result must be a valid same-tenant RQ.
	if simWorld.RQs[match.RQ].Tenant != rq.Tenant {
		t.Fatal("matched foreign tenant RQ")
	}
	e.SetMatcher(nil)
	plain, _ := e.Ask(ctx, rq.Tenant, 1, rq.Text)
	if plain.RQ != rq.ID {
		t.Fatalf("BM25 path broken: got %d want %d", plain.RQ, rq.ID)
	}
}
