package serving

import (
	"sort"
	"sync"
	"sync/atomic"

	"intellitag/internal/ann"
	"intellitag/internal/mat"
)

// TagEmbedder is the capability a scorer must expose for ANN candidate
// retrieval: a static tag-embedding table (row index = tag id). core.Model
// satisfies it once frozen; scorers without a table (popularity baselines,
// test stubs) simply serve exhaustively.
type TagEmbedder interface {
	TagEmbeddings() *mat.Matrix
}

// RetrievalConfig controls the retrieve-then-rank split of RecommendTags.
// When enabled and the scorer exposes tag embeddings, a request first
// retrieves K approximate nearest tags of the session's recent-history
// centroid from a per-version ANN index and only ranks those with the model,
// turning the per-request scoring cost from O(tenant catalog) into O(K).
// Requests fall back to the exhaustive path when the tenant catalog is
// smaller than MinCatalog (brute force is already cheap there), when the
// session is cold (no history — popularity ranking needs no retrieval), or
// when tenant filtering leaves fewer than k survivors.
type RetrievalConfig struct {
	Enabled      bool
	K            int    // candidates retrieved per request (before tenant filtering)
	Backend      string // "hnsw" (default) or "lsh"
	MinCatalog   int    // tenant catalogs below this stay exhaustive
	RecallSample int    // sample every Nth ANN retrieval for the recall gauge; 0 disables
}

// DefaultRetrievalConfig is the serving default: HNSW retrieval of 64
// candidates with exhaustive scoring below 256-tag catalogs.
func DefaultRetrievalConfig() RetrievalConfig {
	return RetrievalConfig{Enabled: true, K: 64, Backend: "hnsw", MinCatalog: 256}
}

// normalize fills zero values with defaults.
func (c RetrievalConfig) normalize() RetrievalConfig {
	d := DefaultRetrievalConfig()
	if c.K <= 0 {
		c.K = d.K
	}
	if c.Backend == "" {
		c.Backend = d.Backend
	}
	if c.MinCatalog <= 0 {
		c.MinCatalog = d.MinCatalog
	}
	return c
}

// Retrieval path outcomes, counted per recommendation computation (memo hits
// are not recomputations and count under none of these).
const (
	pathANN        = iota // ANN retrieval supplied the candidate set
	pathFallback          // ANN tried, too few tenant survivors, scored exhaustively
	pathExhaustive        // retrieval disabled/unavailable or catalog below MinCatalog
	pathColdStart         // no history: popularity ranking, retrieval not applicable
	numRetrievalPaths
)

var retrievalPathNames = [numRetrievalPaths]string{"ann", "fallback", "exhaustive", "coldstart"}

// RetrievalStats is the externally visible retrieval accounting of one engine
// replica, reported by /healthz and the simulator summary.
type RetrievalStats struct {
	Enabled    bool   `json:"enabled"`
	Backend    string `json:"backend,omitempty"`
	IndexSize  int    `json:"index_size,omitempty"`
	ANN        int64  `json:"ann"`
	Fallback   int64  `json:"fallback"`
	Exhaustive int64  `json:"exhaustive"`
	ColdStart  int64  `json:"coldstart"`
}

// RetrievalStats reports this engine's retrieval path counts and the active
// version's retriever identity.
func (e *Engine) RetrievalStats() RetrievalStats {
	v := e.cur.Load()
	st := RetrievalStats{
		ANN:        e.retrievalPaths[pathANN].Load(),
		Fallback:   e.retrievalPaths[pathFallback].Load(),
		Exhaustive: e.retrievalPaths[pathExhaustive].Load(),
		ColdStart:  e.retrievalPaths[pathColdStart].Load(),
	}
	if tr := v.tags; tr != nil {
		st.Enabled = true
		st.Backend = tr.index.Name()
		st.IndexSize = tr.index.Len()
	}
	return st
}

// historyWindow is how many of the most recent clicks form the retrieval
// query (their embedding centroid). Recency-bounded like the model's own
// sequence window, and fixed so replicas agree bit-for-bit.
const historyWindow = 8

// retrievalScratch is the pooled per-request state of one retrieval: the ANN
// scratch plus the query-centroid and candidate buffers. Pooled via sync.Pool
// so the steady-state ANN path allocates only the final candidate slice.
type retrievalScratch struct {
	sc    *ann.Scratch
	query []float64
	ids   []int
}

// tagRetriever is one model version's retrieval state: the ANN index over the
// scorer's tag-embedding table plus per-tenant membership sets. It is built at
// version construction time — before warm and the pointer flip — so hot swaps
// stay zero-downtime and every replica shares one index. Immutable once built;
// safe for concurrent retrieve calls.
type tagRetriever struct {
	cfg     RetrievalConfig
	index   ann.Retriever
	vecs    *mat.Matrix
	members map[int][]int // tenant -> sorted tag ids (for binary-search filtering)

	pool    sync.Pool    // *retrievalScratch
	sampled atomic.Int64 // ANN retrievals since start, for recall sampling
}

// newTagRetriever indexes the embedding table with the configured backend.
func newTagRetriever(vecs *mat.Matrix, catalog Catalog, cfg RetrievalConfig) *tagRetriever {
	tr := &tagRetriever{cfg: cfg, vecs: vecs, members: make(map[int][]int, len(catalog.TenantTags))}
	switch cfg.Backend {
	case "lsh":
		tr.index = ann.Build(vecs, ann.DefaultConfig())
	default:
		tr.index = ann.BuildGraph(vecs, ann.DefaultGraphConfig())
	}
	tenants := make([]int, 0, len(catalog.TenantTags))
	for tenant := range catalog.TenantTags {
		tenants = append(tenants, tenant)
	}
	sort.Ints(tenants)
	for _, tenant := range tenants {
		tags := catalog.TenantTags[tenant]
		if sort.IntsAreSorted(tags) {
			tr.members[tenant] = tags
			continue
		}
		cp := append([]int(nil), tags...)
		sort.Ints(cp)
		tr.members[tenant] = cp
	}
	tr.pool.New = func() any { return &retrievalScratch{sc: ann.NewScratch()} }
	return tr
}

// attachRetrieval builds the version's retriever, or leaves it nil when
// retrieval is off, the scorer has no embedding table, or the table is empty.
// Called during version construction, never on a live version.
func (v *modelVersion) attachRetrieval(cfg RetrievalConfig) {
	v.tags = nil
	if !cfg.Enabled {
		return
	}
	emb, ok := v.scorer.(TagEmbedder)
	if !ok {
		return
	}
	vecs := emb.TagEmbeddings()
	if vecs == nil || vecs.Rows == 0 {
		return
	}
	v.tags = newTagRetriever(vecs, v.catalog, cfg.normalize())
}

// centroid writes the mean embedding of the last historyWindow clicks into
// rs.query and returns it (nil when no history tag has an embedding row).
func (tr *tagRetriever) centroid(rs *retrievalScratch, history []int) []float64 {
	if cap(rs.query) < tr.vecs.Cols {
		rs.query = make([]float64, tr.vecs.Cols)
	}
	q := rs.query[:tr.vecs.Cols]
	clear(q)
	recent := history
	if len(recent) > historyWindow {
		recent = recent[len(recent)-historyWindow:]
	}
	n := 0
	for _, tag := range recent {
		if tag < 0 || tag >= tr.vecs.Rows {
			continue
		}
		row := tr.vecs.Row(tag)
		for j, x := range row {
			q[j] += x
		}
		n++
	}
	if n == 0 {
		return nil
	}
	inv := 1 / float64(n)
	for j := range q {
		q[j] *= inv
	}
	rs.query = q
	return q
}

// retrieve returns at least want candidate tag ids for the tenant, ascending,
// or nil when the ANN path cannot satisfy the request (caller falls back to
// the exhaustive candidate list). The returned slice is freshly allocated —
// it outlives the pooled scratch.
func (tr *tagRetriever) retrieve(history []int, tenant, want int) []int {
	member := tr.members[tenant]
	if len(member) == 0 {
		return nil
	}
	rs := tr.pool.Get().(*retrievalScratch)
	defer tr.pool.Put(rs)
	q := tr.centroid(rs, history)
	if q == nil {
		return nil
	}
	k := tr.cfg.K
	if k < want {
		k = want
	}
	hits := tr.index.SearchInto(rs.sc, q, k, -1)
	ids := rs.ids[:0]
	for _, h := range hits {
		// Keep only the tenant's tags; membership lists are sorted.
		i := sort.SearchInts(member, h.ID)
		if i < len(member) && member[i] == h.ID {
			ids = append(ids, h.ID)
		}
	}
	rs.ids = ids
	if len(ids) < want {
		return nil
	}
	// Ascending id order: the ranker's output sort is (score desc, tag asc),
	// so candidate order never leaks into results, but a canonical order keeps
	// scoring inputs — and therefore any scorer-internal caching — replica
	// independent.
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

// sampledRecall measures one retrieval against exact cosine search restricted
// to the tenant: |retrieved ∩ exact-top-len(got)| / len(got). Runs only on
// sampled requests (RecallSample), so the linear scan is off the common path.
func (tr *tagRetriever) sampledRecall(history []int, tenant int, got []int) float64 {
	member := tr.members[tenant]
	if len(member) == 0 || len(got) == 0 {
		return 0
	}
	rs := tr.pool.Get().(*retrievalScratch)
	defer tr.pool.Put(rs)
	q := tr.centroid(rs, history)
	if q == nil {
		return 0
	}
	exact := make([]ann.Neighbor, 0, len(member))
	for _, tag := range member {
		if tag < 0 || tag >= tr.vecs.Rows {
			continue
		}
		exact = append(exact, ann.Neighbor{ID: tag, Sim: mat.CosineSim(q, tr.vecs.Row(tag))})
	}
	sort.Slice(exact, func(i, j int) bool {
		if exact[i].Sim != exact[j].Sim {
			return exact[i].Sim > exact[j].Sim
		}
		return exact[i].ID < exact[j].ID
	})
	if len(exact) > len(got) {
		exact = exact[:len(got)]
	}
	hits := 0
	for _, n := range exact {
		i := sort.SearchInts(got, n.ID)
		if i < len(got) && got[i] == n.ID {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// SetRetrieval configures ANN candidate retrieval on this engine and attaches
// an index to the active version. The config also applies to versions
// installed by later swaps. Setup-time call, not safe concurrently with
// requests or swaps.
func (e *Engine) SetRetrieval(cfg RetrievalConfig) {
	e.retrieval = cfg
	e.cur.Load().attachRetrieval(cfg)
}

// SetRetrieval configures ANN candidate retrieval across the set. The
// replicas share one model version, so the index is built once.
func (rs *ReplicaSet) SetRetrieval(cfg RetrievalConfig) {
	for _, e := range rs.replicas {
		e.retrieval = cfg
	}
	rs.replicas[0].cur.Load().attachRetrieval(cfg)
}

// noteRetrievalPath counts one recommendation computation's serving path.
func (e *Engine) noteRetrievalPath(path int, candidates int) {
	e.retrievalPaths[path].Add(1)
	if e.tel == nil {
		return
	}
	e.tel.retrievalPaths[path].Inc()
	e.tel.retrievalCands.Observe(float64(candidates))
}

// maybeSampleRecall publishes the sampled-recall gauge for one ANN-served
// request. Telemetry-only: it never influences the response, so the extra
// exact scan stays outside the determinism contract.
func (e *Engine) maybeSampleRecall(tr *tagRetriever, history []int, tenant int, got []int) {
	if e.tel == nil || tr.cfg.RecallSample <= 0 {
		return
	}
	if tr.sampled.Add(1)%int64(tr.cfg.RecallSample) != 0 {
		return
	}
	e.tel.retrievalRecall.Set(tr.sampledRecall(history, tenant, got))
}
