package serving

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"intellitag/internal/mat"
	"intellitag/internal/obs"
	"intellitag/internal/search"
)

// vecScorer ranks candidates by cosine similarity between the centroid of the
// recent click history and each candidate's embedding — the same geometry the
// ANN retriever searches, so with a well-separated embedding space the
// retrieve-then-rank output must match the exhaustive ranking exactly. It
// exposes TagEmbeddings, making it retrieval-capable like a frozen core.Model.
type vecScorer struct {
	name string
	emb  *mat.Matrix
}

func (s vecScorer) ScoreCandidates(history, candidates []int) []float64 {
	q := make([]float64, s.emb.Cols)
	recent := history
	if len(recent) > historyWindow {
		recent = recent[len(recent)-historyWindow:]
	}
	n := 0
	for _, tag := range recent {
		if tag < 0 || tag >= s.emb.Rows {
			continue
		}
		for j, x := range s.emb.Row(tag) {
			q[j] += x
		}
		n++
	}
	if n > 0 {
		for j := range q {
			q[j] /= float64(n)
		}
	}
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = mat.CosineSim(q, s.emb.Row(c))
	}
	return out
}
func (s vecScorer) Name() string               { return s.name }
func (s vecScorer) TagEmbeddings() *mat.Matrix { return s.emb }

// clusterEmb builds `clusters` well-separated unit-ish clusters of `per`
// embeddings each (row id = tag id), deterministic in seed.
func clusterEmb(clusters, per, dim int, seed int64) *mat.Matrix {
	g := mat.NewRNG(seed)
	centers := mat.New(clusters, dim)
	g.Normal(centers, 1)
	out := mat.New(clusters*per, dim)
	for c := 0; c < clusters; c++ {
		for i := 0; i < per; i++ {
			row := out.Row(c*per + i)
			for j, x := range centers.Row(c) {
				row[j] = x + 0.05*g.NormFloat64()
			}
		}
	}
	return out
}

// retrievalFixture assembles a catalog + retrieval-capable scorer over nTags
// clustered embeddings. tenants maps tenant id -> owned tag ids.
func retrievalFixture(clusters, per, dim int, seed int64, tenants map[int][]int) (Catalog, vecScorer) {
	emb := clusterEmb(clusters, per, dim, seed)
	n := emb.Rows
	cat := Catalog{
		TagPhrases: make([]string, n),
		TenantTags: tenants,
		Popularity: make([]float64, n),
		RQAnswers:  map[int]string{},
	}
	for i := 0; i < n; i++ {
		cat.TagPhrases[i] = fmt.Sprintf("tag-%d", i)
		cat.Popularity[i] = float64(n - i)
	}
	return cat, vecScorer{name: "vec", emb: emb}
}

func allTags(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestRetrievalANNPathMatchesExhaustive pins the tentpole's correctness bar:
// on a well-separated embedding space the ANN-served ranking is identical to
// the exhaustive one, and the path counters prove retrieval actually ran.
func TestRetrievalANNPathMatchesExhaustive(t *testing.T) {
	tenants := map[int][]int{0: allTags(512)}
	cat, scorer := retrievalFixture(32, 16, 12, 7, tenants)
	annE := NewEngine(cat, search.NewIndex(), scorer, nil, nil)
	annE.SetRetrieval(RetrievalConfig{Enabled: true, K: 32, MinCatalog: 1})
	exhE := NewEngine(cat, search.NewIndex(), scorer, nil, nil)

	const k = 5
	for session := 0; session < 8; session++ {
		seed := (session * 67) % 512
		annE.Click(ctx, 0, session, seed, k)
		exhE.Click(ctx, 0, session, seed, k)
		got := annE.RecommendTags(ctx, 0, session, k)
		want := exhE.RecommendTags(ctx, 0, session, k)
		if len(got) != k {
			t.Fatalf("session %d: %d recs, want %d", session, len(got), k)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("session %d rank %d: ann %+v != exhaustive %+v", session, i, got[i], want[i])
			}
		}
	}
	st := annE.RetrievalStats()
	if !st.Enabled || st.Backend != "hnsw" || st.IndexSize != 512 {
		t.Fatalf("stats identity: %+v", st)
	}
	if st.ANN == 0 {
		t.Fatalf("ANN path never taken: %+v", st)
	}
	if ex := exhE.RetrievalStats(); ex.Enabled || ex.ANN != 0 {
		t.Fatalf("exhaustive engine claims retrieval: %+v", ex)
	}
}

// TestRetrievalLSHBackend exercises the second backend end to end.
func TestRetrievalLSHBackend(t *testing.T) {
	cat, scorer := retrievalFixture(16, 16, 12, 11, map[int][]int{0: allTags(256)})
	e := NewEngine(cat, search.NewIndex(), scorer, nil, nil)
	e.SetRetrieval(RetrievalConfig{Enabled: true, K: 48, Backend: "lsh", MinCatalog: 1})
	e.Click(ctx, 0, 1, 40, 5)
	if recs := e.RecommendTags(ctx, 0, 1, 5); len(recs) != 5 {
		t.Fatalf("lsh-backed recommend returned %d recs", len(recs))
	}
	if st := e.RetrievalStats(); st.Backend != "lsh" || st.ANN == 0 {
		t.Fatalf("lsh backend not exercised: %+v", st)
	}
}

// TestRetrievalFallbackPaths drives every non-ANN branch: cold start, small
// catalog, and a tenant whose tags are globally far from the query centroid
// (too few survivors after tenant filtering).
func TestRetrievalFallbackPaths(t *testing.T) {
	// Tenant 0 owns cluster 0..7 (ids 0..127); tenant 1 owns clusters 8..15
	// (ids 128..255); tenant 2 owns a catalog below MinCatalog.
	tenants := map[int][]int{
		0: allTags(128),
		1: allTags(256)[128:],
		2: allTags(8),
	}
	cat, scorer := retrievalFixture(16, 16, 12, 13, tenants)
	e := NewEngine(cat, search.NewIndex(), scorer, nil, nil)
	e.SetRetrieval(RetrievalConfig{Enabled: true, K: 16, MinCatalog: 16})

	// Cold start: no history, popularity path.
	if recs := e.RecommendTags(ctx, 0, 100, 5); len(recs) != 5 {
		t.Fatalf("cold start returned %d recs", len(recs))
	}
	if st := e.RetrievalStats(); st.ColdStart != 1 {
		t.Fatalf("cold start not counted: %+v", st)
	}

	// Small catalog: tenant 2 has 8 tags < MinCatalog 16.
	e.Click(ctx, 2, 200, 3, 5)
	if st := e.RetrievalStats(); st.Exhaustive == 0 {
		t.Fatalf("small catalog not exhaustive: %+v", st)
	}

	// Sparse tenant: history sits in tenant 0's clusters, so the global
	// top-16 neighbors are tenant-0 tags and tenant 1 keeps too few.
	e.Click(ctx, 1, 300, 5, 5) // tag 5 belongs to cluster 0
	recs := e.RecommendTags(ctx, 1, 300, 5)
	if len(recs) != 5 {
		t.Fatalf("fallback returned %d recs", len(recs))
	}
	for _, r := range recs {
		if r.Tag < 128 {
			t.Fatalf("fallback leaked tag %d outside tenant 1", r.Tag)
		}
	}
	if st := e.RetrievalStats(); st.Fallback == 0 {
		t.Fatalf("sparse tenant did not fall back: %+v", st)
	}
}

// TestSwapRebuildsRetrieverAndInvalidatesMemo pins the memo x swap x index
// interaction: a hot swap must replace the ANN index along with the model,
// and a recommendation memoized against the old version (and its old index)
// must never answer on the new one.
func TestSwapRebuildsRetrieverAndInvalidatesMemo(t *testing.T) {
	tenants := map[int][]int{0: allTags(256)}
	cat, scorer := retrievalFixture(16, 16, 12, 17, tenants)
	bundleA := &ModelBundle{VersionID: "v0001-aaaaaaaa", Catalog: cat, Index: search.NewIndex(), Scorer: scorer}
	e := NewEngine(cat, search.NewIndex(), scorer, nil, nil)
	e.SetRetrieval(RetrievalConfig{Enabled: true, K: 32, MinCatalog: 1})
	e.Swap(bundleA)
	oldTR := e.cur.Load().tags
	if oldTR == nil {
		t.Fatal("swap did not attach a retriever")
	}

	const tenant, session, k = 0, 42, 5
	e.Click(ctx, tenant, session, 33, k)
	before := e.RecommendTags(ctx, tenant, session, k) // memoized on bundle A
	if again := e.RecommendTags(ctx, tenant, session, k); again[0] != before[0] {
		t.Fatal("same-version memo unstable")
	}

	// Bundle B: different embedding geometry, same catalog. The swap must
	// rebuild the index (distinct retriever) and recompute recommendations.
	_, scorerB := retrievalFixture(16, 16, 12, 999, tenants)
	e.Swap(&ModelBundle{VersionID: "v0002-bbbbbbbb", Catalog: cat, Index: search.NewIndex(), Scorer: scorerB})
	newTR := e.cur.Load().tags
	if newTR == nil || newTR == oldTR {
		t.Fatalf("swap kept the old retriever: old=%p new=%p", oldTR, newTR)
	}
	after := e.RecommendTags(ctx, tenant, session, k)
	if len(after) != k {
		t.Fatalf("post-swap recommend returned %d recs", len(after))
	}
	same := true
	for i := range after {
		if after[i] != before[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("post-swap ranking identical to pre-swap memo — stale entry served: %+v", after)
	}

	// A bundle without an embedding table downgrades to exhaustive serving.
	e.Swap(&ModelBundle{VersionID: "v0003-cccccccc", Catalog: cat, Index: search.NewIndex(),
		Scorer: tableScorer{name: "table", table: cat.Popularity}})
	if e.cur.Load().tags != nil {
		t.Fatal("retriever attached to a scorer without embeddings")
	}
	if recs := e.RecommendTags(ctx, tenant, session, k); len(recs) != k {
		t.Fatalf("exhaustive downgrade returned %d recs", len(recs))
	}
}

// TestRollingSwapUnderLoadWithRetrieval is the -race gate for the tentpole:
// sustained traffic against a 3-replica set with ANN retrieval enabled while
// versions (and their indexes) roll. Zero requests may fail, the replicas
// must converge, and the ANN path must actually have served under fire.
func TestRollingSwapUnderLoadWithRetrieval(t *testing.T) {
	tenants := map[int][]int{0: allTags(256)}
	cat, scorer := retrievalFixture(16, 16, 12, 19, tenants)
	mk := func(id string, seed int64) *ModelBundle {
		_, s := retrievalFixture(16, 16, 12, seed, tenants)
		s.name = scorer.name
		return &ModelBundle{VersionID: id, Catalog: cat, Index: search.NewIndex(), Scorer: s}
	}
	rs := NewReplicaSet(mk("v0000-seedseed", 19), 3, 1, nil, nil)
	rs.SetRetrieval(RetrievalConfig{Enabled: true, K: 32, MinCatalog: 1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Int64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			session := w * 100_000
			for {
				select {
				case <-stop:
					return
				default:
				}
				session++
				e := rs.Pick(session)
				recs, _ := e.Click(ctx, 0, session, session%256, 5)
				if len(recs) == 0 {
					failed.Add(1)
				}
				if again := e.RecommendTags(ctx, 0, session, 5); len(again) == 0 {
					failed.Add(1)
				}
				e.EndSession(session)
			}
		}(w)
	}

	const rolls = 4
	for i := 1; i <= rolls; i++ {
		rs.RollingSwap(mk(fmt.Sprintf("v000%d-aaaaaaaa", i), int64(100+i)), time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d requests failed during swaps with retrieval on", failed.Load())
	}
	var ann int64
	for _, vi := range rs.Versions() {
		if vi.Swaps != rolls || !vi.Drained {
			t.Fatalf("replica state after rolls: %+v", vi)
		}
	}
	for _, e := range rs.Engines() {
		st := e.RetrievalStats()
		if !st.Enabled {
			t.Fatalf("retrieval lost across swaps: %+v", st)
		}
		ann += st.ANN
	}
	if ann == 0 {
		t.Fatal("ANN path never served under load")
	}
}

// TestSimulateSetReplicaInvarianceWithANN extends the replica determinism
// contract to retrieval: CTR/HIR stay bit-identical across replica counts
// with ANN candidate generation enabled.
func TestSimulateSetReplicaInvarianceWithANN(t *testing.T) {
	train, _, _ := simWorld.SplitSessions(0.8, 0.1)
	catalog, index := BuildCatalog(simWorld, train)
	emb := clusterEmb(len(catalog.TagPhrases)/4+1, 4, 10, 29)
	cfg := DefaultSimConfig()
	cfg.Days, cfg.SessionsPerDay = 4, 60

	run := func(replicas int) SimResult {
		scorer := vecScorer{name: "vec", emb: emb}
		b := &ModelBundle{Catalog: catalog, Index: index, Scorer: scorer}
		rs := NewReplicaSet(b, replicas, 1, nil, nil)
		rs.SetRetrieval(RetrievalConfig{Enabled: true, K: 24, MinCatalog: 1})
		return SimulateSet(simWorld, rs, cfg)
	}
	one, three := run(1), run(3)
	if len(one.Days) != len(three.Days) {
		t.Fatal("day counts differ")
	}
	for i := range one.Days {
		a, b := one.Days[i], three.Days[i]
		if a.MacroCTR != b.MacroCTR || a.MicroCTR != b.MicroCTR || a.HIR != b.HIR ||
			a.Impressions != b.Impressions || a.Clicks != b.Clicks {
			t.Fatalf("day %d diverged across replica counts with ANN on:\n1: %+v\n3: %+v", i, a, b)
		}
	}
}

// TestRetrievalTelemetry asserts the observability satellite: path counters,
// the candidate-set-size histogram and the sampled recall gauge all land in
// the registry and the Prometheus exposition.
func TestRetrievalTelemetry(t *testing.T) {
	cat, scorer := retrievalFixture(16, 16, 12, 31, map[int][]int{0: allTags(256)})
	e := NewEngine(cat, search.NewIndex(), scorer, nil, nil)
	e.SetRetrieval(RetrievalConfig{Enabled: true, K: 32, MinCatalog: 1, RecallSample: 1})
	reg := obs.NewRegistry()
	e.SetTelemetry(reg, nil)

	e.RecommendTags(ctx, 0, 7, 5) // cold start
	e.Click(ctx, 0, 7, 50, 5)     // ANN path (history now non-empty)
	e.RecommendTags(ctx, 0, 7, 5) // memo hit — must not double count

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("write exposition: %v", err)
	}
	exp := buf.String()
	for _, want := range []string{
		`intellitag_retrieval_total{bucket="vec",path="ann"} 1`,
		`intellitag_retrieval_total{bucket="vec",path="coldstart"} 1`,
		`intellitag_retrieval_candidates_count{bucket="vec"} 2`,
		`intellitag_retrieval_recall_sampled{bucket="vec"}`,
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("exposition missing %q:\n%s", want, exp)
		}
	}
	// RecallSample=1 samples the very first ANN retrieval; on this geometry
	// the retrieved set must contain the exact top-k, so the gauge reads 1.
	if g := reg.Gauge("intellitag_retrieval_recall_sampled", "bucket", "vec").Value(); g != 1 {
		t.Fatalf("sampled recall = %v, want 1", g)
	}
}
