package serving

import (
	"context"
	"sort"
	"time"

	"intellitag/internal/mat"
	"intellitag/internal/metrics"
	"intellitag/internal/search"
	"intellitag/internal/synth"
)

// BuildCatalog derives the serving catalog and RQ search index from a
// generated world and the training sessions (popularity is computed from
// training clicks only, as deployment would).
func BuildCatalog(w *synth.World, trainSessions []synth.Session) (Catalog, *search.Index) {
	c := Catalog{
		TagPhrases: make([]string, len(w.Tags)),
		TenantTags: map[int][]int{},
		Popularity: make([]float64, len(w.Tags)),
		RQAnswers:  map[int]string{},
	}
	for i, t := range w.Tags {
		c.TagPhrases[i] = t.Phrase()
	}
	for _, tenant := range w.Tenants {
		c.TenantTags[tenant.ID] = w.TagsOfTenant(tenant.ID)
	}
	for _, s := range trainSessions {
		for _, click := range s.Clicks {
			c.Popularity[click]++
		}
	}
	index := search.NewIndex()
	for _, rq := range w.RQs {
		index.Add(rq.ID, rq.Tenant, rq.Text)
		c.RQAnswers[rq.ID] = rq.Answer
	}
	return c, index
}

// SimConfig controls the online simulation that reproduces the paper's
// Section VI-F evaluation.
type SimConfig struct {
	Days           int
	SessionsPerDay int
	TopK           int     // recommended tags shown per turn
	ClickDecay     float64 // P(click | intent at rank r) = ClickDecay^r
	MaxTurns       int     // user gives up after this many turns
	GiveUpMisses   int     // consecutive misses before escalating to a human
	Seed           int64

	// OnDayEnd, when non-nil, runs after each simulated day (0-based index of
	// the day just finished), on the simulator goroutine. The swap demo hooks
	// it to roll the replica set onto a new model version mid-run; the
	// traffic of the following days then exercises the swapped-in version.
	OnDayEnd func(day int)

	// WorldAt, when non-nil, selects the ground-truth world for each day
	// before its sessions run — the drift hook: hand back a DriftWorld from
	// some day onward and user behavior shifts under a model trained on the
	// old world. The returned world must share the original's tags, tenants
	// and catalog (only the click process may differ).
	WorldAt func(day int) *synth.World
}

// DefaultSimConfig mirrors the paper's 10-day CTR window.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Days: 10, SessionsPerDay: 150, TopK: 5,
		ClickDecay: 0.85, MaxTurns: 6, GiveUpMisses: 2, Seed: 2020,
	}
}

// DayStats is one day of one bucket's online metrics.
type DayStats struct {
	Day         int
	MacroCTR    float64 // CTR macro-averaged over tenants (paper's metric)
	MicroCTR    float64 // overall clicks / impressions
	HIR         float64 // human interventions / sessions
	Sessions    int
	Impressions int
	Clicks      int
}

// SimResult aggregates a bucket's simulation.
type SimResult struct {
	Model    string
	Replicas int
	Versions []string // distinct model version ids served, in first-seen order
	Days     []DayStats
	Latency  metrics.LatencyStats
}

// Simulate drives a simulated user population against one engine for the
// configured number of days. Users follow the world's ground-truth click
// process: at each turn the engine shows TopK tags; if the user's true next
// intent appears at rank r they click it with probability ClickDecay^r
// (position bias); otherwise the turn is a miss, and after GiveUpMisses
// consecutive misses the session escalates to manual service (HIR).
func Simulate(w *synth.World, engine *Engine, cfg SimConfig) SimResult {
	return SimulateSet(w, soloSet(engine), cfg)
}

// SimulateSet is Simulate over a replica set: each session is pinned to its
// replica by the set's hash, so the population exercises the full routing
// ladder (replica hash, then session shards) exactly as HTTP traffic would.
// Session ids, the click process and all randomness are identical to
// Simulate's regardless of the replica count — sharding redistributes the
// same sessions, it never changes them — so CTR/HIR stay bit-identical
// across replica counts and the aggregated latency sample is the only thing
// sharding can move.
func SimulateSet(w *synth.World, rs *ReplicaSet, cfg SimConfig) SimResult {
	ctx := context.Background()
	rng := mat.NewRNG(cfg.Seed)
	for _, e := range rs.Engines() {
		e.ResetLatencies()
	}
	weights := make([]float64, len(w.Tenants))
	for i, t := range w.Tenants {
		weights[i] = t.Size
	}
	res := SimResult{Model: rs.Engines()[0].ScorerName(), Replicas: rs.Size()}
	seenVersions := map[string]bool{}
	noteVersions := func() {
		for _, vi := range rs.Versions() {
			if !seenVersions[vi.ID] {
				seenVersions[vi.ID] = true
				res.Versions = append(res.Versions, vi.ID)
			}
		}
	}
	noteVersions()
	sessionID := int(cfg.Seed) * 1_000_000

	for day := 0; day < cfg.Days; day++ {
		if cfg.WorldAt != nil {
			w = cfg.WorldAt(day)
		}
		var stats DayStats
		stats.Day = day
		tenantClicks := map[int]int{}
		tenantImpr := map[int]int{}
		escalations := 0

		for s := 0; s < cfg.SessionsPerDay; s++ {
			sessionID++
			engine := rs.Pick(sessionID)
			tenant := rng.Categorical(weights)
			state := w.StartSession(tenant, rng)
			// The first click arrives through the interface (cold start is
			// the engine's most-popular fallback; the user clicks their
			// initial intent regardless, as in the paper's Fig. 1 flow).
			// Click returns the next recommendations — the panel the user
			// sees until their next click, exactly the Fig. 1 flow — so the
			// turn loop reuses it instead of re-requesting the same list.
			recs, _ := engine.Click(ctx, tenant, sessionID, state.LastClick, cfg.TopK)
			misses := 0
			for turn := 0; turn < cfg.MaxTurns; turn++ {
				trueNext := w.NextClick(&state, rng)
				stats.Impressions++
				tenantImpr[tenant]++
				top := -1
				if len(recs) > 0 {
					top = recs[0].Tag
				}
				engine.NoteImpression(tenant, sessionID, top)
				rank := -1
				for i, r := range recs {
					if r.Tag == trueNext {
						rank = i
						break
					}
				}
				clicked := false
				if rank >= 0 {
					p := 1.0
					for i := 0; i < rank; i++ {
						p *= cfg.ClickDecay
					}
					clicked = rng.Float64() < p
				}
				if clicked {
					stats.Clicks++
					tenantClicks[tenant]++
					engine.NoteUserClick()
					recs, _ = engine.Click(ctx, tenant, sessionID, trueNext, cfg.TopK)
					misses = 0
				} else {
					misses++
					if misses >= cfg.GiveUpMisses {
						engine.Escalate(tenant, sessionID)
						escalations++
						break
					}
				}
				// Sessions end naturally with the world's mean length.
				if rng.Float64() < 1/w.Config.MeanClicks {
					break
				}
			}
			engine.EndSession(sessionID)
			stats.Sessions++
		}

		// Iterate tenants in sorted order: MacroAvg sums floats, so summing
		// in map order would make the reported macro CTR run-dependent.
		tenants := make([]int, 0, len(tenantImpr))
		for tenant := range tenantImpr {
			tenants = append(tenants, tenant)
		}
		sort.Ints(tenants)
		perTenant := make([]float64, 0, len(tenants))
		for _, tenant := range tenants {
			perTenant = append(perTenant, metrics.CTR(tenantClicks[tenant], tenantImpr[tenant]))
		}
		stats.MacroCTR = metrics.MacroAvg(perTenant)
		stats.MicroCTR = metrics.CTR(stats.Clicks, stats.Impressions)
		stats.HIR = metrics.HIR(escalations, stats.Sessions)
		res.Days = append(res.Days, stats)
		if cfg.OnDayEnd != nil {
			cfg.OnDayEnd(day)
		}
		noteVersions()
	}
	var lats []time.Duration
	for _, e := range rs.Engines() {
		lats = append(lats, e.Latencies()...)
	}
	res.Latency = metrics.SummarizeLatency(lats)
	return res
}

// MeanMacroCTR averages the daily macro CTR over the whole simulation.
func (r SimResult) MeanMacroCTR() float64 {
	var vals []float64
	for _, d := range r.Days {
		vals = append(vals, d.MacroCTR)
	}
	return metrics.MacroAvg(vals)
}

// MeanHIR averages the daily HIR.
func (r SimResult) MeanHIR() float64 {
	var vals []float64
	for _, d := range r.Days {
		vals = append(vals, d.HIR)
	}
	return metrics.MacroAvg(vals)
}

// MeanLatency returns the mean recorded request latency.
func (r SimResult) MeanLatency() time.Duration { return r.Latency.Mean }
