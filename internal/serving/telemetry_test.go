package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"intellitag/internal/obs"
)

// postJSON fires one API request against the test server and fails on a
// non-200.
func postJSON(t *testing.T, url string, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, out)
	}
	return out
}

// TestServerTelemetryRoundTrip drives the instrumented API and asserts the
// whole spine end to end: op counters and latency histograms on /metrics,
// per-route HTTP series, the sampled span tree on /debug/trace, and the
// enriched /healthz report.
func TestServerTelemetryRoundTrip(t *testing.T) {
	e := newTestEngine(t, nil)
	server := NewServer(NewABRouter(e))
	reg := obs.NewRegistry()
	server.EnableTelemetry(reg, obs.NewTracer(1, 16)) // sample every request
	srv := httptest.NewServer(server)
	defer srv.Close()

	postJSON(t, srv.URL+"/recommend", `{"tenant":0,"session":1,"k":3}`)
	var clicked clickResponse
	if err := json.Unmarshal(postJSON(t, srv.URL+"/recommend", `{"tenant":0,"session":2,"k":3}`), &clicked); err != nil {
		t.Fatalf("decode recommend: %v", err)
	}
	postJSON(t, srv.URL+"/click", `{"tenant":0,"session":2,"tag":`+jsonInt(clicked.Tags[0].Tag)+`,"k":3}`)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(body)
	for _, want := range []string{
		`intellitag_http_requests_total{route="recommend"} 2`,
		`intellitag_http_requests_total{route="click"} 1`,
		`intellitag_requests_total{bucket="pop",op="recommend"} 3`, // 2 direct + 1 via click
		`intellitag_requests_total{bucket="pop",op="click"} 1`,
		`intellitag_router_requests_total{bucket="0",model="pop"} 3`,
		`intellitag_request_latency_seconds_count{bucket="pop",op="recommend"} 3`,
		`intellitag_http_request_seconds_count{route="recommend"} 2`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q:\n%s", want, exposition)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatalf("GET /debug/trace: %v", err)
	}
	var traces struct {
		Traces []obs.SpanTree `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatalf("decode /debug/trace: %v", err)
	}
	resp.Body.Close()
	if len(traces.Traces) != 3 {
		t.Fatalf("got %d traces, want 3: %+v", len(traces.Traces), traces)
	}
	// Newest first: the click trace must show
	// http.click -> click -> (recommend -> score, retrieve).
	clickTree := traces.Traces[0]
	if clickTree.Name != "http.click" || len(clickTree.Children) != 1 {
		t.Fatalf("click root wrong: %+v", clickTree)
	}
	inner := clickTree.Children[0]
	if inner.Name != "click" || len(inner.Children) != 2 {
		t.Fatalf("click span wrong: %+v", inner)
	}
	if inner.Children[0].Name != "recommend" || inner.Children[1].Name != "retrieve" {
		t.Fatalf("click children wrong: %+v", inner.Children)
	}
	if len(inner.Children[0].Children) != 1 || inner.Children[0].Children[0].Name != "score" {
		t.Fatalf("recommend child should score: %+v", inner.Children[0])
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var health healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.GoVersion == "" {
		t.Fatalf("healthz identity wrong: %+v", health)
	}
	if len(health.Buckets) != 1 || health.Buckets[0] != "pop" {
		t.Fatalf("healthz buckets wrong: %+v", health)
	}
	if health.Requests != 3 {
		t.Fatalf("healthz requests = %d, want 3", health.Requests)
	}
	if health.UptimeSec < 0 {
		t.Fatalf("negative uptime: %+v", health)
	}
}

// TestEngineIndicatorGauges checks the live CTR/HIR business gauges that the
// simulator feeds.
func TestEngineIndicatorGauges(t *testing.T) {
	e := newTestEngine(t, nil)
	reg := obs.NewRegistry()
	e.SetTelemetry(reg, nil)
	for i := 0; i < 4; i++ {
		e.NoteImpression(0, 50, 1)
	}
	e.NoteUserClick()
	if got := reg.Gauge("intellitag_ctr", "bucket", "pop").Value(); got != 0.25 {
		t.Fatalf("ctr gauge = %g, want 0.25 (1 click / 4 impressions)", got)
	}
	e.RecommendTags(ctx, 0, 51, 3)
	e.Escalate(0, 51)
	e.EndSession(51)
	e.RecommendTags(ctx, 0, 52, 3)
	e.EndSession(52)
	if got := reg.Gauge("intellitag_hir", "bucket", "pop").Value(); got != 0.5 {
		t.Fatalf("hir gauge = %g, want 0.5 (1 escalation / 2 sessions)", got)
	}
	if got := reg.Counter("intellitag_sim_escalations_total", "bucket", "pop").Value(); got != 1 {
		t.Fatalf("escalations counter = %d, want 1", got)
	}
	// Uninstall: hot-path calls keep working without instruments.
	e.SetTelemetry(nil, nil)
	e.NoteImpression(0, 50, 1)
	if got := reg.Counter("intellitag_sim_impressions_total", "bucket", "pop").Value(); got != 4 {
		t.Fatalf("uninstalled engine still counted: %d", got)
	}
}

// TestWriteJSONEncodeFailure pins the satellite fix: an encode failure must
// surface as a 500 with no partial body, never a truncated 200.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]float64{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("encode failure returned %d, want 500", rec.Code)
	}
	if !strings.HasPrefix(rec.Body.String(), "encode response:") {
		t.Fatalf("partial JSON leaked ahead of the error text: %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	writeJSON(rec, http.StatusCreated, map[string]int{"ok": 1})
	if rec.Code != http.StatusCreated {
		t.Fatalf("good encode returned %d, want 201", rec.Code)
	}
	var out map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["ok"] != 1 {
		t.Fatalf("good encode body wrong: %q (%v)", rec.Body.String(), err)
	}
}

func jsonInt(n int) string {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(n); err != nil {
		panic(err)
	}
	return strings.TrimSpace(buf.String())
}

// TestAdminOnlineEndpoint pins the online-status surface: 503 until a status
// source is attached, then the source's JSON, and the same payload embedded
// in /healthz's online field.
func TestAdminOnlineEndpoint(t *testing.T) {
	server := NewServer(NewABRouter(newTestEngine(t, nil)))
	srv := httptest.NewServer(server)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/admin/online")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("detached /admin/online = %d, want 503", resp.StatusCode)
	}

	server.SetOnlineStatus(func() any { return map[string]string{"state": "probation"} })
	resp, err = http.Get(srv.URL + "/admin/online")
	if err != nil {
		t.Fatal(err)
	}
	var status map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || status["state"] != "probation" {
		t.Fatalf("/admin/online = %d %v", resp.StatusCode, status)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Online map[string]string `json:"online"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Online["state"] != "probation" {
		t.Fatalf("healthz online field = %v", health.Online)
	}
}
