package serving

import (
	"sync"
	"testing"
	"time"

	"intellitag/internal/core"
	"intellitag/internal/store"
)

// TestEngineConcurrentRequests hammers one engine from many goroutines mixing
// Click, Ask, RecommendTags and EndSession; run under -race it proves the
// sharded session table, scorer checkout pool and latency ring are sound.
func TestEngineConcurrentRequests(t *testing.T) {
	e := newTestEngine(t, store.NewLog())
	tenants := len(simWorld.Tenants)

	const goroutines = 8
	const opsPer = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				session := g*opsPer + i
				tenant := session % tenants
				tags := e.Catalog().TenantTags[tenant]
				if len(tags) == 0 {
					continue
				}
				e.Click(ctx, tenant, session, tags[i%len(tags)], 5)
				e.RecommendTags(ctx, tenant, session, 5)
				e.Ask(ctx, tenant, session, "how do I reset my password")
				if i%3 == 0 {
					e.EndSession(session)
				}
			}
		}(g)
	}
	wg.Wait()
	if len(e.Latencies()) == 0 {
		t.Fatal("no latencies recorded")
	}
}

// TestEngineConcurrentModelScoring repeats the hammer with a real core.Model
// scorer (stateful forward caches) and a widened scorer pool — the
// configuration that raced before scoring went through the checkout pool.
func TestEngineConcurrentModelScoring(t *testing.T) {
	train, _, _ := simWorld.SplitSessions(0.8, 0.1)
	catalog, index := BuildCatalog(simWorld, train)
	cfg := core.DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	m := core.Build(cfg, simWorld.BuildGraph(train), nil)
	m.Freeze()
	e := NewEngine(catalog, index, m, nil, nil)
	e.SetWorkers(4)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				session := g*100 + i
				tenant := session % len(simWorld.Tenants)
				tags := catalog.TenantTags[tenant]
				if len(tags) == 0 {
					continue
				}
				e.Click(ctx, tenant, session, tags[i%len(tags)], 5)
				e.RecommendTags(ctx, tenant, session, 5)
				e.EndSession(session)
			}
		}(g)
	}
	wg.Wait()
}

// TestRecommendMemo: repeated RecommendTags calls are answered from the
// per-session memo, the memoized list equals the freshly scored one, and a
// click or session end invalidates it.
func TestRecommendMemo(t *testing.T) {
	e := newTestEngine(t, nil)
	tenant := 0
	tags := e.Catalog().TenantTags[tenant]
	if len(tags) < 2 {
		t.Skip("tenant 0 has too few tags")
	}
	const session = 7

	e.Click(ctx, tenant, session, tags[0], 5)
	first := e.RecommendTags(ctx, tenant, session, 5)
	if _, ok := e.shard(session).recs[session]; !ok {
		t.Fatal("no memo entry after RecommendTags")
	}
	second := e.RecommendTags(ctx, tenant, session, 5)
	if len(first) != len(second) {
		t.Fatalf("memoized length %d != fresh %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("memoized rec %d = %+v, want %+v", i, second[i], first[i])
		}
	}
	// The memo hands out copies: mutating a result must not corrupt it.
	second[0].Score = -1
	if got := e.RecommendTags(ctx, tenant, session, 5); got[0] != first[0] {
		t.Fatalf("memo corrupted by caller mutation: %+v", got[0])
	}
	// A different k bypasses and replaces the entry.
	if got := e.RecommendTags(ctx, tenant, session, 3); len(got) > 3 {
		t.Fatalf("k=3 returned %d recs", len(got))
	}
	// Clicking invalidates: the next lookup reflects the two-click history.
	e.Click(ctx, tenant, session, tags[1], 5)
	if hist := e.History(session); len(hist) != 2 {
		t.Fatalf("history = %v", hist)
	}
	if c := e.shard(session).recs[session]; c.k != 5 {
		t.Fatalf("post-click memo entry has k=%d, want 5", c.k)
	}
	// EndSession drops the memo with the history.
	e.EndSession(session)
	if _, ok := e.shard(session).recs[session]; ok {
		t.Fatal("memo survived EndSession")
	}
}

// TestLatencyRingBounded: the ring must cap memory and keep the most recent
// samples in insertion order.
func TestLatencyRingBounded(t *testing.T) {
	var r latencyRing
	for i := 0; i < latencyCap+100; i++ {
		r.record(time.Duration(i))
	}
	got := r.snapshot()
	if len(got) != latencyCap {
		t.Fatalf("ring holds %d samples, want %d", len(got), latencyCap)
	}
	if got[0] != time.Duration(100) || got[len(got)-1] != time.Duration(latencyCap+99) {
		t.Fatalf("ring window wrong: first=%d last=%d", got[0], got[len(got)-1])
	}
	r.reset()
	if len(r.snapshot()) != 0 {
		t.Fatal("reset did not clear the ring")
	}
}

// TestShardedScoringMatchesSingle: splitting a candidate list across pooled
// replicas must return exactly the single-scorer scores.
func TestShardedScoringMatchesSingle(t *testing.T) {
	train, _, _ := simWorld.SplitSessions(0.8, 0.1)
	catalog, index := BuildCatalog(simWorld, train)
	cfg := core.DefaultConfig()
	cfg.Dim = 8
	cfg.Heads = 2
	m := core.Build(cfg, simWorld.BuildGraph(train), nil)
	m.Freeze()
	e := NewEngine(catalog, index, m, nil, nil)

	// Candidate list long enough to trigger sharding.
	candidates := make([]int, 0, 4*minShardSize)
	for len(candidates) < cap(candidates) {
		candidates = append(candidates, len(candidates)%len(catalog.TagPhrases))
	}
	history := []int{1, 2}
	want := e.scoreCandidates(ctx, e.cur.Load(), history, candidates)
	e.SetWorkers(4)
	got := e.scoreCandidates(ctx, e.cur.Load(), history, candidates)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharded score %d diverges: %v vs %v", i, got[i], want[i])
		}
	}
}
