package serving

import (
	"strconv"

	"intellitag/internal/obs"
)

// ABRouter splits traffic between engines by session id, as the paper's
// online evaluation divides extra traffic buckets to test baselines
// (Section VI-F). Assignment is deterministic: session % buckets.
type ABRouter struct {
	engines []*Engine
	// routed counts route decisions per bucket; nil slots (no telemetry) are
	// no-op counters.
	routed []*obs.Counter
}

// NewABRouter creates a router over one engine per bucket.
func NewABRouter(engines ...*Engine) *ABRouter {
	if len(engines) == 0 {
		panic("serving: ABRouter needs at least one engine")
	}
	return &ABRouter{engines: engines}
}

// Bucket returns the bucket index for a session.
func (r *ABRouter) Bucket(session int) int {
	if session < 0 {
		session = -session
	}
	return session % len(r.engines)
}

// SetTelemetry registers one routing counter per bucket, labeled with the
// bucket index and the model it serves.
func (r *ABRouter) SetTelemetry(reg *obs.Registry) {
	if reg == nil {
		r.routed = nil
		return
	}
	r.routed = make([]*obs.Counter, len(r.engines))
	for i, e := range r.engines {
		r.routed[i] = reg.Counter("intellitag_router_requests_total",
			"bucket", strconv.Itoa(i), "model", e.ScorerName())
	}
}

// Engine returns the engine serving a session.
func (r *ABRouter) Engine(session int) *Engine {
	b := r.Bucket(session)
	if r.routed != nil {
		r.routed[b].Inc()
	}
	return r.engines[b]
}

// Engines lists the underlying engines in bucket order.
func (r *ABRouter) Engines() []*Engine { return r.engines }
