package serving

// ABRouter splits traffic between engines by session id, as the paper's
// online evaluation divides extra traffic buckets to test baselines
// (Section VI-F). Assignment is deterministic: session % buckets.
type ABRouter struct {
	engines []*Engine
}

// NewABRouter creates a router over one engine per bucket.
func NewABRouter(engines ...*Engine) *ABRouter {
	if len(engines) == 0 {
		panic("serving: ABRouter needs at least one engine")
	}
	return &ABRouter{engines: engines}
}

// Bucket returns the bucket index for a session.
func (r *ABRouter) Bucket(session int) int {
	if session < 0 {
		session = -session
	}
	return session % len(r.engines)
}

// Engine returns the engine serving a session.
func (r *ABRouter) Engine(session int) *Engine {
	return r.engines[r.Bucket(session)]
}

// Engines lists the underlying engines in bucket order.
func (r *ABRouter) Engines() []*Engine { return r.engines }
