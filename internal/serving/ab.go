package serving

import (
	"strconv"

	"intellitag/internal/obs"
)

// ABRouter splits traffic between buckets by session id, as the paper's
// online evaluation divides extra traffic buckets to test baselines
// (Section VI-F). Assignment is deterministic: session % buckets. Each bucket
// is a ReplicaSet — one or more engine replicas serving the same model — so
// the full routing ladder is bucket split, then replica hash, then the
// engine's 16-way session shards.
type ABRouter struct {
	sets []*ReplicaSet
	// routed counts route decisions per bucket; nil slots (no telemetry) are
	// no-op counters.
	routed []*obs.Counter
}

// NewABRouter creates a router over one single-replica bucket per engine —
// the pre-sharding construction path kept for tests, benchmarks and callers
// that do not need horizontal replicas.
func NewABRouter(engines ...*Engine) *ABRouter {
	if len(engines) == 0 {
		panic("serving: ABRouter needs at least one engine")
	}
	sets := make([]*ReplicaSet, len(engines))
	for i, e := range engines {
		sets[i] = soloSet(e)
	}
	return &ABRouter{sets: sets}
}

// NewReplicatedABRouter creates a router over one ReplicaSet per bucket.
func NewReplicatedABRouter(sets ...*ReplicaSet) *ABRouter {
	if len(sets) == 0 {
		panic("serving: ABRouter needs at least one replica set")
	}
	return &ABRouter{sets: sets}
}

// Bucket returns the bucket index for a session.
func (r *ABRouter) Bucket(session int) int {
	if session < 0 {
		session = -session
	}
	return session % len(r.sets)
}

// SetTelemetry registers one routing counter per bucket, labeled with the
// bucket index and the model it serves.
func (r *ABRouter) SetTelemetry(reg *obs.Registry) {
	if reg == nil {
		r.routed = nil
		return
	}
	r.routed = make([]*obs.Counter, len(r.sets))
	for i, rs := range r.sets {
		r.routed[i] = reg.Counter("intellitag_router_requests_total",
			"bucket", strconv.Itoa(i), "model", rs.replicas[0].ScorerName())
	}
}

// Engine returns the engine replica serving a session.
func (r *ABRouter) Engine(session int) *Engine {
	b := r.Bucket(session)
	if r.routed != nil {
		r.routed[b].Inc()
	}
	return r.sets[b].Pick(session)
}

// Engines lists one representative engine per bucket (replica 0), preserving
// the pre-sharding contract that callers iterate buckets by engine.
func (r *ABRouter) Engines() []*Engine {
	out := make([]*Engine, len(r.sets))
	for i, rs := range r.sets {
		out[i] = rs.replicas[0]
	}
	return out
}

// Sets lists the replica sets in bucket order.
func (r *ABRouter) Sets() []*ReplicaSet { return r.sets }
