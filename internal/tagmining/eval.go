package tagmining

import (
	"fmt"
	"time"

	"intellitag/internal/metrics"
	"intellitag/internal/synth"
)

// EvaluateSpans computes micro-averaged span-level precision/recall/F1 of a
// tagger against gold tag spans — the Table III evaluation. A predicted span
// counts only when its mean predicted word weight reaches weightThreshold,
// and (when allowed is non-nil) when its phrase survives rule filtering.
func EvaluateSpans(tagger Tagger, sentences []synth.LabeledSentence, weightThreshold float64, allowed map[string]bool) metrics.PRF1 {
	var parts []metrics.PRF1
	for _, s := range sentences {
		if len(s.Tokens) == 0 {
			continue
		}
		seg, weights := tagger.Predict(s.Tokens)
		var pred []string
		for _, span := range synth.SpansFromSeg(seg) {
			var wsum float64
			for i := span[0]; i < span[1]; i++ {
				wsum += weights[i]
			}
			if wsum/float64(span[1]-span[0]) < weightThreshold {
				continue
			}
			if allowed != nil && !allowed[synth.PhraseOfSpan(s.Tokens, span)] {
				continue
			}
			pred = append(pred, spanKey(span))
		}
		var gold []string
		for _, span := range s.TagSpans {
			if span[1] <= len(seg) { // truncated tails are out of scope
				gold = append(gold, spanKey(span))
			}
		}
		parts = append(parts, metrics.SetPRF1(pred, gold))
	}
	return metrics.AccumulatePRF1(parts)
}

func spanKey(span [2]int) string { return fmt.Sprintf("%d:%d", span[0], span[1]) }

// AllowedSet converts rule-filtered mined tags into the phrase filter
// EvaluateSpans consumes.
func AllowedSet(mined []MinedTag) map[string]bool {
	out := make(map[string]bool, len(mined))
	for _, t := range mined {
		out[t.Phrase] = true
	}
	return out
}

// MeasureInference runs the tagger over the sentences once and returns the
// wall-clock duration — the Table III "inference time" column.
func MeasureInference(tagger Tagger, sentences []synth.LabeledSentence) time.Duration {
	start := time.Now()
	for _, s := range sentences {
		if len(s.Tokens) == 0 {
			continue
		}
		tagger.Predict(s.Tokens)
	}
	return time.Since(start)
}
