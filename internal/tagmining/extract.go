package tagmining

import (
	"sort"
	"strings"

	"intellitag/internal/synth"
	"intellitag/internal/textproc"
)

// MinedTag is a tag surfaced by the extraction pipeline, aggregated across
// the corpus.
type MinedTag struct {
	Phrase string
	Words  []string
	// Weight is the mean model-predicted word weight over all occurrences —
	// the paper's "tag weight" measuring question representativeness.
	Weight float64
	// Count is the number of corpus occurrences (tag frequency rule input).
	Count int
	// RuleScore is filled by the rule post-processor.
	RuleScore float64
}

// Extract runs the tagger over the corpus sentences and aggregates predicted
// tag spans into candidate tags. Spans whose mean predicted word weight is
// below weightThreshold are dropped (the paper keeps "tags with a weight
// greater than the preset threshold").
func Extract(tagger Tagger, sentences [][]string, weightThreshold float64) []MinedTag {
	agg := map[string]*MinedTag{}
	for _, tokens := range sentences {
		if len(tokens) == 0 {
			continue
		}
		seg, weights := tagger.Predict(tokens)
		for _, span := range synth.SpansFromSeg(seg) {
			var wsum float64
			for i := span[0]; i < span[1]; i++ {
				wsum += weights[i]
			}
			wavg := wsum / float64(span[1]-span[0])
			if wavg < weightThreshold {
				continue
			}
			phrase := synth.PhraseOfSpan(tokens, span)
			t, ok := agg[phrase]
			if !ok {
				t = &MinedTag{Phrase: phrase, Words: strings.Fields(phrase)}
				agg[phrase] = t
			}
			// Running mean of the span weight.
			t.Weight = (t.Weight*float64(t.Count) + wavg) / float64(t.Count+1)
			t.Count++
		}
	}
	// Build the result from sorted phrases so the list is constructed
	// deterministically rather than relying on the ranking sort's tie-break.
	phrases := make([]string, 0, len(agg))
	for phrase := range agg {
		phrases = append(phrases, phrase)
	}
	sort.Strings(phrases)
	out := make([]MinedTag, 0, len(phrases))
	for _, phrase := range phrases {
		out = append(out, *agg[phrase])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Phrase < out[j].Phrase
	})
	return out
}

// RuleConfig holds the post-processing thresholds. Per the paper's footnote,
// the four rule signals carry the same weight; a tag is kept when its mean
// normalized score reaches Threshold.
type RuleConfig struct {
	Threshold float64 // mean normalized rule score cutoff
	MinCount  int     // absolute frequency floor
}

// DefaultRuleConfig matches the tuning used by the experiment harness.
func DefaultRuleConfig() RuleConfig {
	return RuleConfig{Threshold: 0.35, MinCount: 1}
}

// ApplyRules scores each mined tag with the four equally weighted rule
// signals of Section III-B — (1) model tag weight, (2) tag frequency,
// (3) IDF, (4) averaged PMI — and keeps tags whose mean normalized score
// clears the threshold. The stats must be computed over the same corpus the
// tags were mined from.
func ApplyRules(mined []MinedTag, stats *textproc.CorpusStats, cfg RuleConfig) []MinedTag {
	if len(mined) == 0 {
		return nil
	}
	// Normalizers: map each raw signal into [0,1] across the candidate set.
	maxCount := 0
	maxIDF, minIDF := -1e18, 1e18
	maxPMI, minPMI := -1e18, 1e18
	type sig struct{ freq, idf, pmi float64 }
	sigs := make([]sig, len(mined))
	for i, t := range mined {
		if t.Count > maxCount {
			maxCount = t.Count
		}
		var idf float64
		for _, w := range t.Words {
			idf += stats.IDF(w)
		}
		idf /= float64(len(t.Words))
		pmi := stats.AvgPMI(t.Words)
		sigs[i] = sig{idf: idf, pmi: pmi}
		if idf > maxIDF {
			maxIDF = idf
		}
		if idf < minIDF {
			minIDF = idf
		}
		if pmi > maxPMI {
			maxPMI = pmi
		}
		if pmi < minPMI {
			minPMI = pmi
		}
	}
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 1
		}
		return (v - lo) / (hi - lo)
	}
	var out []MinedTag
	for i, t := range mined {
		if t.Count < cfg.MinCount {
			continue
		}
		freqScore := float64(t.Count) / float64(maxCount)
		idfScore := norm(sigs[i].idf, minIDF, maxIDF)
		pmiScore := norm(sigs[i].pmi, minPMI, maxPMI)
		if len(t.Words) == 1 {
			// Single-word tags are vacuously consistent; give them the
			// median PMI credit rather than an extreme.
			pmiScore = 0.5
		}
		score := (t.Weight + freqScore + idfScore + pmiScore) / 4
		if score < cfg.Threshold {
			continue
		}
		t.RuleScore = score
		out = append(out, t)
	}
	return out
}
