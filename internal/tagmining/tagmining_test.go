package tagmining

import (
	"testing"

	"intellitag/internal/synth"
	"intellitag/internal/textproc"
)

// miniWorld caches a small world and its labeled sentences for the tests.
var miniWorld = synth.Generate(synth.SmallConfig())

func trainTestSplit(sentences []synth.LabeledSentence) (train, test []synth.LabeledSentence) {
	cut := len(sentences) * 9 / 10
	return sentences[:cut], sentences[cut:]
}

func trainedMT(t *testing.T) *Model {
	t.Helper()
	sentences := miniWorld.LabeledSentences()
	train, _ := trainTestSplit(sentences)
	vocab := BuildVocab(train)
	cfg := TeacherConfig()
	cfg.Dim = 24
	cfg.Layers = 2
	cfg.Heads = 2
	m := NewModel(cfg, vocab)
	tc := DefaultTrainConfig()
	tc.Epochs = 3
	TrainMultiTask(m, train, tc)
	return m
}

func TestModelShapes(t *testing.T) {
	vocab := textproc.NewVocab()
	vocab.Add("alpha")
	vocab.Add("beta")
	m := NewModel(ModelConfig{Dim: 8, Layers: 1, Heads: 2, SegHead: true, WeightHead: true, MaxLen: 16, Seed: 1}, vocab)
	seg, w := m.Predict([]string{"alpha", "beta", "unseen"})
	if len(seg) != 3 || len(w) != 3 {
		t.Fatalf("predict lengths: %d, %d", len(seg), len(w))
	}
	for _, p := range w {
		if p < 0 || p > 1 {
			t.Fatalf("weight %v outside [0,1]", p)
		}
	}
	if m.NumParams() == 0 {
		t.Fatal("no params")
	}
}

func TestModelTruncatesLongInput(t *testing.T) {
	vocab := textproc.NewVocab()
	m := NewModel(ModelConfig{Dim: 8, Layers: 1, Heads: 2, SegHead: true, WeightHead: true, MaxLen: 4, Seed: 1}, vocab)
	tokens := []string{"a", "b", "c", "d", "e", "f"}
	seg, w := m.Predict(tokens)
	if len(seg) != 4 || len(w) != 4 {
		t.Fatalf("truncation failed: %d, %d", len(seg), len(w))
	}
}

func TestSingleHeadModels(t *testing.T) {
	vocab := textproc.NewVocab()
	vocab.Add("x")
	segOnly := NewModel(ModelConfig{Dim: 8, Layers: 1, Heads: 2, SegHead: true, MaxLen: 8, Seed: 1}, vocab)
	weightOnly := NewModel(ModelConfig{Dim: 8, Layers: 1, Heads: 2, WeightHead: true, MaxLen: 8, Seed: 2}, vocab)
	seg, w := segOnly.Predict([]string{"x"})
	if len(seg) != 1 || w[0] != 0 {
		t.Fatal("seg-only model should return zero weights")
	}
	seg, w = weightOnly.Predict([]string{"x"})
	if seg[0] != synth.Outside || len(w) != 1 {
		t.Fatal("weight-only model should return Outside labels")
	}
	comp := Composite{Seg: segOnly, Weight: weightOnly}
	seg, w = comp.Predict([]string{"x"})
	if len(seg) != 1 || len(w) != 1 {
		t.Fatal("composite predict failed")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	sentences := miniWorld.LabeledSentences()[:120]
	vocab := BuildVocab(sentences)
	cfg := StudentConfig()
	m := NewModel(cfg, vocab)
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	first := TrainMultiTask(m, sentences, tc)
	tc.Epochs = 3
	m2 := NewModel(cfg, vocab)
	last := TrainMultiTask(m2, sentences, tc)
	if last >= first {
		t.Fatalf("loss did not decrease: epoch1 %v vs epoch3 %v", first, last)
	}
}

func TestTrainedModelBeatsUntrained(t *testing.T) {
	sentences := miniWorld.LabeledSentences()
	train, test := trainTestSplit(sentences)
	vocab := BuildVocab(train)
	untrained := NewModel(StudentConfig(), vocab)
	trained := trainedMT(t)

	uF1 := EvaluateSpans(untrained, test, 0.5, nil).F1
	tF1 := EvaluateSpans(trained, test, 0.5, nil).F1
	if tF1 <= uF1 {
		t.Fatalf("trained F1 %v <= untrained %v", tF1, uF1)
	}
	if tF1 < 0.5 {
		t.Fatalf("trained F1 %v too low to be learning", tF1)
	}
}

func TestExtractAggregates(t *testing.T) {
	trained := trainedMT(t)
	sentences := miniWorld.LabeledSentences()
	var tokens [][]string
	for _, s := range sentences[:min(200, len(sentences))] {
		tokens = append(tokens, s.Tokens)
	}
	mined := Extract(trained, tokens, 0.5)
	if len(mined) == 0 {
		t.Fatal("no tags mined")
	}
	// Sorted by count descending.
	for i := 1; i < len(mined); i++ {
		if mined[i].Count > mined[i-1].Count {
			t.Fatal("not sorted by count")
		}
	}
	// A healthy share of mined phrases should be real tags.
	real := 0
	for _, m := range mined {
		if miniWorld.TagIDByPhrase(m.Phrase) >= 0 {
			real++
		}
	}
	if float64(real)/float64(len(mined)) < 0.5 {
		t.Fatalf("only %d/%d mined tags are real", real, len(mined))
	}
}

func TestApplyRulesImprovePrecisionOfMinedSet(t *testing.T) {
	trained := trainedMT(t)
	sentences := miniWorld.LabeledSentences()
	var tokens [][]string
	for _, s := range sentences {
		tokens = append(tokens, s.Tokens)
	}
	mined := Extract(trained, tokens, 0.5)
	stats := textproc.NewCorpusStats(tokens, 5)
	// A stricter-than-default config so the filter provably removes some
	// candidates on this small, accurately-mined set.
	filtered := ApplyRules(mined, stats, RuleConfig{Threshold: 0.55, MinCount: 2})
	if len(filtered) == 0 {
		t.Fatal("rules removed everything")
	}
	if len(filtered) >= len(mined) {
		t.Fatalf("rules removed nothing: %d -> %d", len(mined), len(filtered))
	}
	precision := func(tags []MinedTag) float64 {
		real := 0
		for _, m := range tags {
			if miniWorld.TagIDByPhrase(m.Phrase) >= 0 {
				real++
			}
		}
		return float64(real) / float64(len(tags))
	}
	if precision(filtered) < precision(mined) {
		t.Fatalf("rules lowered set precision: %v -> %v", precision(mined), precision(filtered))
	}
	for _, f := range filtered {
		if f.RuleScore <= 0 {
			t.Fatal("rule score not set")
		}
	}
}

func TestApplyRulesEmpty(t *testing.T) {
	if got := ApplyRules(nil, textproc.NewCorpusStats(nil, 5), DefaultRuleConfig()); got != nil {
		t.Fatalf("got %v", got)
	}
}

func TestDistilledStudentRetainsAccuracy(t *testing.T) {
	sentences := miniWorld.LabeledSentences()
	train, test := trainTestSplit(sentences)
	teacher := trainedMT(t)
	vocab := teacher.Vocab

	student := NewModel(StudentConfig(), vocab)
	tc := DefaultTrainConfig()
	tc.Epochs = 3
	Distill(teacher, student, train, tc, 2.0, 0.5)

	teacherF1 := EvaluateSpans(teacher, test, 0.5, nil).F1
	studentF1 := EvaluateSpans(student, test, 0.5, nil).F1
	if studentF1 < teacherF1-0.25 {
		t.Fatalf("student F1 %v collapsed vs teacher %v", studentF1, teacherF1)
	}
	if student.NumParams() >= teacher.NumParams() {
		t.Fatal("student not smaller than teacher")
	}
}

func TestEvaluateSpansPerfectTagger(t *testing.T) {
	// An oracle that returns the gold labels must score F1 = 1.
	sentences := miniWorld.LabeledSentences()[:min(50, len(miniWorld.LabeledSentences()))]
	oracle := oracleTagger{byText: map[string]synth.LabeledSentence{}}
	for _, s := range sentences {
		oracle.byText[key(s.Tokens)] = s
	}
	r := EvaluateSpans(oracle, sentences, 0.5, nil)
	if r.F1 != 1 {
		t.Fatalf("oracle F1 = %v", r.F1)
	}
}

type oracleTagger struct {
	byText map[string]synth.LabeledSentence
}

func key(tokens []string) string {
	out := ""
	for _, t := range tokens {
		out += t + "|"
	}
	return out
}

func (o oracleTagger) Predict(tokens []string) ([]synth.SegLabel, []float64) {
	s := o.byText[key(tokens)]
	w := make([]float64, len(tokens))
	for i := range w {
		if s.Seg[i] != synth.Outside {
			w[i] = 1
		}
	}
	return s.Seg, w
}

func TestAllowedSetFiltersEvaluation(t *testing.T) {
	sentences := miniWorld.LabeledSentences()[:min(50, len(miniWorld.LabeledSentences()))]
	oracle := oracleTagger{byText: map[string]synth.LabeledSentence{}}
	for _, s := range sentences {
		oracle.byText[key(s.Tokens)] = s
	}
	// Empty allowed set: everything filtered, recall 0.
	r := EvaluateSpans(oracle, sentences, 0.5, map[string]bool{})
	if r.Recall != 0 {
		t.Fatalf("recall with empty allowed set = %v", r.Recall)
	}
}

func TestMeasureInferenceScalesWithModel(t *testing.T) {
	sentences := miniWorld.LabeledSentences()[:min(60, len(miniWorld.LabeledSentences()))]
	vocab := BuildVocab(sentences)
	big := NewModel(ModelConfig{Dim: 48, Layers: 4, Heads: 4, SegHead: true, WeightHead: true, MaxLen: 64, Seed: 1}, vocab)
	small := NewModel(ModelConfig{Dim: 16, Layers: 1, Heads: 2, SegHead: true, WeightHead: true, MaxLen: 64, Seed: 2}, vocab)
	tBig := MeasureInference(big, sentences)
	tSmall := MeasureInference(small, sentences)
	if tSmall >= tBig {
		t.Fatalf("small model not faster: %v vs %v", tSmall, tBig)
	}
}
