// Package tagmining implements Section III-B of the paper: a BERT-style
// multi-task model that jointly learns tag segmentation and word weighting
// over representative questions, single-task variants for comparison,
// knowledge distillation of the teacher into a compact student, and the
// rule-based post-processing (tag weight, frequency, IDF, averaged PMI) that
// purifies the mined tags.
package tagmining

import (
	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/synth"
	"intellitag/internal/textproc"
)

// ModelConfig sizes a tagger model.
type ModelConfig struct {
	Dim    int // hidden size (the teacher uses a larger dim than the student)
	Layers int // Transformer encoder depth
	Heads  int
	// Tasks selects which heads the model trains: both for the multi-task
	// model, one for the single-task baselines.
	SegHead    bool
	WeightHead bool
	Dropout    float64
	MaxLen     int
	Seed       int64
}

// TeacherConfig returns the multi-task teacher configuration: a scaled-down
// stand-in for the paper's 12-layer, 768-hidden BERT-Base.
func TeacherConfig() ModelConfig {
	return ModelConfig{Dim: 48, Layers: 4, Heads: 4, SegHead: true, WeightHead: true, Dropout: 0.1, MaxLen: 64, Seed: 7}
}

// StudentConfig returns the distilled student configuration: a scaled-down
// stand-in for the paper's 2-layer distilled BERT.
func StudentConfig() ModelConfig {
	return ModelConfig{Dim: 24, Layers: 1, Heads: 2, SegHead: true, WeightHead: true, Dropout: 0.1, MaxLen: 64, Seed: 8}
}

// numSegClasses counts the segmentation labels {Outside, Begin, Middle}.
const numSegClasses = 3

// Model is a Transformer token tagger with up to two heads.
type Model struct {
	Cfg   ModelConfig
	Vocab *textproc.Vocab

	emb        *nn.Embedding
	pos        *nn.PositionalEmbedding
	enc        *nn.Encoder
	segHead    *nn.Linear // Dim -> 3
	weightHead *nn.Linear // Dim -> 1

	params *nn.Collector
}

// NewModel builds a model over the given vocabulary.
func NewModel(cfg ModelConfig, vocab *textproc.Vocab) *Model {
	g := mat.NewRNG(cfg.Seed)
	m := &Model{
		Cfg:   cfg,
		Vocab: vocab,
		emb:   nn.NewEmbedding("miner.emb", vocab.Len(), cfg.Dim, g),
		pos:   nn.NewPositionalEmbedding("miner.pos", cfg.MaxLen, cfg.Dim, g),
		enc:   nn.NewEncoder("miner.enc", cfg.Layers, cfg.Dim, cfg.Heads, cfg.Dropout, g),
	}
	if cfg.SegHead {
		m.segHead = nn.NewLinear("miner.seg", cfg.Dim, numSegClasses, g)
	}
	if cfg.WeightHead {
		m.weightHead = nn.NewLinear("miner.weight", cfg.Dim, 1, g)
	}
	m.params = nn.NewCollector()
	m.emb.CollectParams(m.params)
	m.pos.CollectParams(m.params)
	m.enc.CollectParams(m.params)
	if m.segHead != nil {
		m.segHead.CollectParams(m.params)
	}
	if m.weightHead != nil {
		m.weightHead.CollectParams(m.params)
	}
	return m
}

// Params returns the model's trainable parameters.
func (m *Model) Params() []*nn.Param { return m.params.Params() }

// NumParams reports the total scalar parameter count (for the Table III
// model-size comparison).
func (m *Model) NumParams() int { return m.params.NumParams() }

// SetTrain toggles dropout.
func (m *Model) SetTrain(train bool) { m.enc.SetTrain(train) }

// truncate clips token sequences to the model's maximum length.
func (m *Model) truncate(tokens []string) []string {
	if len(tokens) > m.Cfg.MaxLen {
		return tokens[:m.Cfg.MaxLen]
	}
	return tokens
}

// forward encodes tokens and returns segmentation logits (n x 3, nil when
// the head is absent) and weight logits (len n, nil when absent). The
// returned backward closure propagates the supplied gradients; pass nil for
// a head's gradient to skip it.
func (m *Model) forward(tokens []string) (segLogits *mat.Matrix, wLogits []float64, backward func(dSeg *mat.Matrix, dW []float64)) {
	tokens = m.truncate(tokens)
	ids := m.Vocab.Encode(tokens)
	h := m.enc.Forward(m.pos.Forward(m.emb.Forward(ids)))
	n := len(tokens)
	if m.segHead != nil {
		segLogits = m.segHead.Forward(h)
	}
	var wOut *mat.Matrix
	if m.weightHead != nil {
		wOut = m.weightHead.Forward(h)
		wLogits = make([]float64, n)
		for i := 0; i < n; i++ {
			wLogits[i] = wOut.At(i, 0)
		}
	}
	backward = func(dSeg *mat.Matrix, dW []float64) {
		dH := mat.New(n, m.Cfg.Dim)
		if dSeg != nil && m.segHead != nil {
			mat.AddInPlace(dH, m.segHead.Backward(dSeg))
		}
		if dW != nil && m.weightHead != nil {
			dWOut := mat.New(n, 1)
			for i := 0; i < n; i++ {
				dWOut.Set(i, 0, dW[i])
			}
			mat.AddInPlace(dH, m.weightHead.Backward(dWOut))
		}
		m.emb.Backward(m.pos.Backward(m.enc.Backward(dH)))
	}
	return segLogits, wLogits, backward
}

// Predict returns the predicted segmentation labels and word weights
// (sigmoid probabilities) for the tokens. A model without a segmentation
// head returns all-Outside labels; one without a weight head returns zero
// weights.
func (m *Model) Predict(tokens []string) ([]synth.SegLabel, []float64) {
	m.SetTrain(false)
	segLogits, wLogits, _ := m.forward(tokens)
	n := len(m.truncate(tokens))
	seg := make([]synth.SegLabel, n)
	weights := make([]float64, n)
	if segLogits != nil {
		for i := 0; i < n; i++ {
			seg[i] = synth.SegLabel(mat.MaxIdx(segLogits.Row(i)))
		}
	}
	if wLogits != nil {
		for i := 0; i < n; i++ {
			weights[i] = nn.Sigmoid(wLogits[i])
		}
	}
	return seg, weights
}

// Tagger is anything that labels a token sequence with segmentation and
// weight predictions. The multi-task model implements it directly; the
// single-task baseline combines two models via Composite.
type Tagger interface {
	Predict(tokens []string) ([]synth.SegLabel, []float64)
}

// Composite combines a segmentation-only model and a weight-only model into
// one Tagger — the paper's single-task ("ST") baseline.
type Composite struct {
	Seg    *Model
	Weight *Model
}

// Predict merges the two single-task models' outputs.
func (c Composite) Predict(tokens []string) ([]synth.SegLabel, []float64) {
	seg, _ := c.Seg.Predict(tokens)
	_, weights := c.Weight.Predict(tokens)
	return seg, weights
}
