package tagmining

import (
	"time"

	"intellitag/internal/mat"
	"intellitag/internal/nn"
	"intellitag/internal/obs"
	"intellitag/internal/synth"
	"intellitag/internal/textproc"
)

// TrainConfig controls optimization.
type TrainConfig struct {
	Epochs      int
	LR          float64
	WeightDecay float64
	ClipNorm    float64
	Seed        int64
	// Observer, when set, receives one record per finished epoch — the
	// structured run-log hook for tagminer. Purely observational.
	Observer func(obs.EpochRecord)
}

// observeEpoch emits one epoch record to the configured observer. Step
// timing and grad norm are the epoch's aggregate/last values; the pool
// hit-rate comes from the shared matrix pool the forward/backward kernels
// draw from.
func (cfg TrainConfig) observeEpoch(stage string, epoch, steps int, loss float64, stepTotal time.Duration, gradNorm float64) {
	if cfg.Observer == nil {
		return
	}
	var stepMicros float64
	if steps > 0 {
		stepMicros = float64(stepTotal.Microseconds()) / float64(steps)
	}
	cfg.Observer(obs.EpochRecord{
		Stage:       stage,
		Epoch:       epoch + 1,
		Epochs:      cfg.Epochs,
		Loss:        loss,
		Steps:       steps,
		StepMicros:  stepMicros,
		GradNorm:    gradNorm,
		PoolHitRate: mat.Shared.HitRate(),
	})
}

// DefaultTrainConfig matches the paper's optimizer settings (Adam, lr 1e-3,
// weight decay 0.01, linear LR decay).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 4, LR: 1e-3, WeightDecay: 0.01, ClipNorm: 5, Seed: 17}
}

// BuildVocab constructs the miner vocabulary from labeled sentences.
func BuildVocab(sentences []synth.LabeledSentence) *textproc.Vocab {
	docs := make([][]string, len(sentences))
	for i, s := range sentences {
		docs[i] = s.Tokens
	}
	return textproc.BuildVocab(docs, 1)
}

// TrainMultiTask trains a model jointly on tag segmentation and word
// weighting with equal task weights (the paper's setting). Models whose
// config disables a head simply skip that head's loss, so the same routine
// also trains the single-task variants.
func TrainMultiTask(model *Model, sentences []synth.LabeledSentence, cfg TrainConfig) float64 {
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed)
	model.SetTrain(true)
	totalSteps := cfg.Epochs * len(sentences)
	step := 0
	var lastEpochLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sentences))
		var epochLoss float64
		var epochSteps int
		var stepTotal time.Duration
		var lastNorm float64
		for _, idx := range perm {
			s := sentences[idx]
			if len(s.Tokens) == 0 {
				continue
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			var stepStart time.Time
			if cfg.Observer != nil {
				stepStart = time.Now()
			}
			model.params.ZeroGrad()
			segLogits, wLogits, backward := model.forward(s.Tokens)
			n := len(model.truncate(s.Tokens))
			var dSeg *mat.Matrix
			var dW []float64
			var loss float64
			if segLogits != nil {
				dSeg = mat.New(n, numSegClasses)
				for i := 0; i < n; i++ {
					li, grad := nn.SoftmaxCrossEntropy(segLogits.Row(i), int(s.Seg[i]))
					loss += li
					dSeg.SetRow(i, grad)
				}
			}
			if wLogits != nil {
				dW = make([]float64, n)
				for i := 0; i < n; i++ {
					li, g := nn.BinaryCrossEntropy(wLogits[i], s.Weights[i])
					loss += li
					dW[i] = g
				}
			}
			// Normalize by length so long sentences do not dominate.
			scale := 1 / float64(n)
			if dSeg != nil {
				mat.ScaleInPlace(dSeg, scale)
			}
			for i := range dW {
				dW[i] *= scale
			}
			backward(dSeg, dW)
			lastNorm = nn.ClipGradNorm(model.Params(), cfg.ClipNorm)
			opt.Step(model.Params())
			if cfg.Observer != nil {
				stepTotal += time.Since(stepStart)
			}
			epochSteps++
			epochLoss += loss * scale
		}
		lastEpochLoss = epochLoss / float64(len(sentences))
		cfg.observeEpoch("multitask", epoch, epochSteps, lastEpochLoss, stepTotal, lastNorm)
	}
	model.SetTrain(false)
	return lastEpochLoss
}

// Distill trains the student on the teacher's soft targets blended with the
// hard labels (Hinton et al.), the paper's strategy for fast daily
// inference. Alpha balances hard-label loss vs distillation loss.
func Distill(teacher *Model, student *Model, sentences []synth.LabeledSentence, cfg TrainConfig, temperature, alpha float64) float64 {
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	rng := mat.NewRNG(cfg.Seed + 1)
	teacher.SetTrain(false)
	student.SetTrain(true)
	totalSteps := cfg.Epochs * len(sentences)
	step := 0
	var lastEpochLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(sentences))
		var epochLoss float64
		var epochSteps int
		var stepTotal time.Duration
		var lastNorm float64
		for _, idx := range perm {
			s := sentences[idx]
			if len(s.Tokens) == 0 {
				continue
			}
			opt.SetLR(nn.LinearDecay(cfg.LR, step, totalSteps))
			step++
			var stepStart time.Time
			if cfg.Observer != nil {
				stepStart = time.Now()
			}
			tSeg, tW, _ := teacher.forward(s.Tokens)
			student.params.ZeroGrad()
			sSeg, sW, backward := student.forward(s.Tokens)
			n := len(student.truncate(s.Tokens))
			dSeg := mat.New(n, numSegClasses)
			dW := make([]float64, n)
			var loss float64
			for i := 0; i < n; i++ {
				// Hard segmentation loss.
				hardLoss, hardGrad := nn.SoftmaxCrossEntropy(sSeg.Row(i), int(s.Seg[i]))
				// Soft distillation loss against teacher logits.
				softLoss, softGrad := nn.KLSoftDistill(tSeg.Row(i), sSeg.Row(i), temperature)
				loss += alpha*hardLoss + (1-alpha)*softLoss
				row := dSeg.Row(i)
				for j := range row {
					row[j] = alpha*hardGrad[j] + (1-alpha)*softGrad[j]
				}
				// Weight head: hard BCE plus soft target regression toward
				// the teacher's probability.
				hw, hg := nn.BinaryCrossEntropy(sW[i], s.Weights[i])
				sw, sg := nn.BinaryCrossEntropy(sW[i], nn.Sigmoid(tW[i]))
				loss += alpha*hw + (1-alpha)*sw
				dW[i] = alpha*hg + (1-alpha)*sg
			}
			scale := 1 / float64(n)
			mat.ScaleInPlace(dSeg, scale)
			for i := range dW {
				dW[i] *= scale
			}
			backward(dSeg, dW)
			lastNorm = nn.ClipGradNorm(student.Params(), cfg.ClipNorm)
			opt.Step(student.Params())
			if cfg.Observer != nil {
				stepTotal += time.Since(stepStart)
			}
			epochSteps++
			epochLoss += loss * scale
		}
		lastEpochLoss = epochLoss / float64(len(sentences))
		cfg.observeEpoch("distill", epoch, epochSteps, lastEpochLoss, stepTotal, lastNorm)
	}
	student.SetTrain(false)
	return lastEpochLoss
}
