package kb

import (
	"sort"

	"intellitag/internal/textproc"
)

// UserQuestion is a raw question a user typed, with any high-rated manual
// replies it received (the collection pipeline's answer candidates).
type UserQuestion struct {
	Tenant  int
	Text    string
	Replies []string // high-rated manual customer-service replies
}

// CollectConfig tunes the automatic Q&A collection pipeline.
type CollectConfig struct {
	EmbedDim int     // text embedding dimension
	Eps      float64 // DBSCAN cosine-distance radius
	MinPts   int     // DBSCAN density threshold
}

// DefaultCollectConfig matches the pipeline scale of this repository.
func DefaultCollectConfig() CollectConfig {
	return CollectConfig{EmbedDim: 32, Eps: 0.25, MinPts: 2}
}

// CollectResult reports what one collection run produced.
type CollectResult struct {
	Clusters   int
	NewPairs   int
	NoisySkips int
}

// Collect runs the paper's automatic Q&A collection (Section III-A) for one
// tenant: it mixes the tenant's existing RQs with new user questions, embeds
// them, clusters with DBSCAN, chooses a representative question for each
// cluster lacking one, selects an answer from high-rated manual replies with
// the extractive selector, and uploads the new pairs.
func Collect(w *Warehouse, tenant int, questions []UserQuestion, cfg CollectConfig) CollectResult {
	existing := w.ByTenant(tenant)

	// Corpus = existing RQs + new user questions, tracked by origin.
	type item struct {
		text    string
		isRQ    bool
		userIdx int // index into questions when !isRQ
	}
	var items []item
	for _, p := range existing {
		items = append(items, item{text: p.Question, isRQ: true})
	}
	for i, q := range questions {
		items = append(items, item{text: q.Text, userIdx: i})
	}
	if len(items) == 0 {
		return CollectResult{}
	}

	var docs [][]string
	for _, it := range items {
		docs = append(docs, textproc.Tokenize(it.text))
	}
	embedder := textproc.NewEmbedder(cfg.EmbedDim, docs)
	points := make([][]float64, len(items))
	for i, it := range items {
		points[i] = embedder.EmbedText(it.text)
	}
	labels := textproc.DBSCAN(points, cfg.Eps, cfg.MinPts)
	clusters := textproc.ClusterMembers(labels)

	// Answer selector trained over all manual replies.
	var replyCorpus [][]string
	for _, q := range questions {
		for _, r := range q.Replies {
			replyCorpus = append(replyCorpus, textproc.Tokenize(r))
		}
	}
	selector := textproc.NewAnswerSelector(replyCorpus)

	res := CollectResult{Clusters: len(clusters)}
	// Walk clusters by sorted label: warehouse ids are assigned in insertion
	// order, so iterating the cluster map directly would hand out different
	// pair ids on every run.
	clusterLabels := make([]int, 0, len(clusters))
	for label := range clusters {
		clusterLabels = append(clusterLabels, label)
	}
	sort.Ints(clusterLabels)
	for _, label := range clusterLabels {
		members := clusters[label]
		hasRQ := false
		for _, m := range members {
			if items[m].isRQ {
				hasRQ = true
				break
			}
		}
		if hasRQ {
			continue // cluster already represented in the KB
		}
		// "If there is not even an RQ, we randomly choose a user's question
		// as a new one" — we take the first (deterministic) member.
		rep := items[members[0]]
		uq := questions[rep.userIdx]
		// Gather answer candidates from every member's replies.
		var candidates []string
		for _, m := range members {
			candidates = append(candidates, questions[items[m].userIdx].Replies...)
		}
		best := selector.SelectAnswer(uq.Text, candidates)
		if best < 0 {
			res.NoisySkips++
			continue
		}
		w.AddAuto(tenant, uq.Text, candidates[best])
		res.NewPairs++
	}
	return res
}
