// Package kb implements the knowledge-base document warehouse of Section
// III-A: storage for Q&A pairs keyed by representative question (RQ), the
// automatic Q&A collection pipeline (embedding -> DBSCAN clustering ->
// representative question selection -> extractive answer selection) and JSON
// persistence. Tenants can also upload self-ordained pairs directly, as the
// paper's interface allows.
package kb

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"intellitag/internal/textproc"
)

// Pair is one knowledge-base entry: a representative question with its
// answer, owned by a tenant.
type Pair struct {
	ID       int    `json:"id"`
	Tenant   int    `json:"tenant"`
	Question string `json:"question"`
	Answer   string `json:"answer"`
	// Source records how the pair entered the warehouse: "upload" for
	// tenant-provided pairs, "auto" for pipeline-collected ones.
	Source string `json:"source"`
}

// Warehouse stores Q&A pairs. It is safe for concurrent use.
type Warehouse struct {
	mu     sync.RWMutex
	pairs  map[int]Pair
	nextID int
	// byNorm dedupes by normalized question text per tenant.
	byNorm map[string]int
}

// NewWarehouse returns an empty warehouse.
func NewWarehouse() *Warehouse {
	return &Warehouse{pairs: map[int]Pair{}, byNorm: map[string]int{}}
}

func dedupKey(tenant int, question string) string {
	return fmt.Sprintf("%d|%s", tenant, textproc.NormalizeQuestion(question))
}

// Upload inserts a tenant-provided pair, returning its id. Re-uploading a
// question updates the existing pair's answer instead of duplicating.
func (w *Warehouse) Upload(tenant int, question, answer string) int {
	return w.insert(tenant, question, answer, "upload")
}

// AddAuto inserts a pipeline-collected pair.
func (w *Warehouse) AddAuto(tenant int, question, answer string) int {
	return w.insert(tenant, question, answer, "auto")
}

func (w *Warehouse) insert(tenant int, question, answer, source string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	key := dedupKey(tenant, question)
	if id, ok := w.byNorm[key]; ok {
		p := w.pairs[id]
		p.Answer = answer
		w.pairs[id] = p
		return id
	}
	id := w.nextID
	w.nextID++
	w.pairs[id] = Pair{ID: id, Tenant: tenant, Question: question, Answer: answer, Source: source}
	w.byNorm[key] = id
	return id
}

// Get returns the pair with the given id.
func (w *Warehouse) Get(id int) (Pair, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	p, ok := w.pairs[id]
	return p, ok
}

// Len returns the number of stored pairs.
func (w *Warehouse) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.pairs)
}

// All returns every pair in id order.
func (w *Warehouse) All() []Pair {
	w.mu.RLock()
	defer w.mu.RUnlock()
	ids := make([]int, 0, len(w.pairs))
	for id := range w.pairs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Pair, 0, len(ids))
	for _, id := range ids {
		out = append(out, w.pairs[id])
	}
	return out
}

// ByTenant returns a tenant's pairs in id order.
func (w *Warehouse) ByTenant(tenant int) []Pair {
	var out []Pair
	for _, p := range w.All() {
		if p.Tenant == tenant {
			out = append(out, p)
		}
	}
	return out
}

// Questions returns every RQ text in id order (the tag miner's corpus).
func (w *Warehouse) Questions() []string {
	all := w.All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Question
	}
	return out
}

// Save writes the warehouse as JSON to path.
func (w *Warehouse) Save(path string) error {
	data, err := json.MarshalIndent(w.All(), "", "  ")
	if err != nil {
		return fmt.Errorf("kb: marshal: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load replaces the warehouse contents with the pairs stored at path.
func (w *Warehouse) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kb: read: %w", err)
	}
	var pairs []Pair
	if err := json.Unmarshal(data, &pairs); err != nil {
		return fmt.Errorf("kb: unmarshal: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pairs = map[int]Pair{}
	w.byNorm = map[string]int{}
	w.nextID = 0
	for _, p := range pairs {
		w.pairs[p.ID] = p
		w.byNorm[dedupKey(p.Tenant, p.Question)] = p.ID
		if p.ID >= w.nextID {
			w.nextID = p.ID + 1
		}
	}
	return nil
}
