package kb

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadCorruptJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := NewWarehouse()
	if err := w.Load(path); err == nil {
		t.Fatal("expected unmarshal error")
	}
}

func TestLoadWrongShapeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.json")
	// Valid JSON, wrong type (object instead of array).
	if err := os.WriteFile(path, []byte(`{"id":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	w := NewWarehouse()
	if err := w.Load(path); err == nil {
		t.Fatal("expected unmarshal error")
	}
}
