package kb

import (
	"path/filepath"
	"testing"
)

func TestUploadAndGet(t *testing.T) {
	w := NewWarehouse()
	id := w.Upload(3, "How to change password?", "Use settings.")
	p, ok := w.Get(id)
	if !ok || p.Tenant != 3 || p.Source != "upload" {
		t.Fatalf("Get = %+v, %v", p, ok)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestUploadDedupesByNormalizedQuestion(t *testing.T) {
	w := NewWarehouse()
	a := w.Upload(1, "How to change password?", "old")
	b := w.Upload(1, "how TO   change password", "new")
	if a != b {
		t.Fatalf("dedup failed: %d vs %d", a, b)
	}
	p, _ := w.Get(a)
	if p.Answer != "new" {
		t.Fatalf("answer not updated: %q", p.Answer)
	}
	// Same question under another tenant is a separate pair.
	c := w.Upload(2, "How to change password?", "other")
	if c == a {
		t.Fatal("cross-tenant dedup must not happen")
	}
}

func TestByTenantAndQuestions(t *testing.T) {
	w := NewWarehouse()
	w.Upload(1, "q one", "a")
	w.Upload(2, "q two", "a")
	w.Upload(1, "q three", "a")
	if got := w.ByTenant(1); len(got) != 2 {
		t.Fatalf("ByTenant(1) = %v", got)
	}
	qs := w.Questions()
	if len(qs) != 3 || qs[0] != "q one" {
		t.Fatalf("Questions = %v", qs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	w := NewWarehouse()
	w.Upload(1, "alpha question", "alpha answer")
	w.AddAuto(2, "beta question", "beta answer")
	path := filepath.Join(t.TempDir(), "kb.json")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	w2 := NewWarehouse()
	if err := w2.Load(path); err != nil {
		t.Fatal(err)
	}
	if w2.Len() != 2 {
		t.Fatalf("loaded %d pairs", w2.Len())
	}
	// Dedup map must be rebuilt: re-upload should update, not duplicate.
	w2.Upload(1, "ALPHA question", "updated")
	if w2.Len() != 2 {
		t.Fatal("dedup map not rebuilt after Load")
	}
	// ID allocation continues past loaded ids.
	id := w2.Upload(9, "fresh", "x")
	if id < 2 {
		t.Fatalf("new id %d collides", id)
	}
}

func TestLoadMissingFile(t *testing.T) {
	w := NewWarehouse()
	if err := w.Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestCollectCreatesPairsForNewClusters(t *testing.T) {
	w := NewWarehouse()
	// Existing RQ covers the "password" cluster.
	w.Upload(0, "how to change password", "go to settings")

	questions := []UserQuestion{
		// Cluster 1: covered by the existing RQ — should not create pairs.
		{Tenant: 0, Text: "how to change password quickly", Replies: []string{"settings page has it"}},
		{Tenant: 0, Text: "change password how", Replies: []string{"use settings"}},
		// Cluster 2: a new topic with consistent phrasing.
		{Tenant: 0, Text: "refund my order payment", Replies: []string{"refunds take three days for order payment"}},
		{Tenant: 0, Text: "order payment refund please", Replies: []string{"we process refund of order payment"}},
		{Tenant: 0, Text: "refund order payment status", Replies: []string{"check refund status in orders"}},
	}
	cfg := DefaultCollectConfig()
	cfg.Eps = 0.45
	res := Collect(w, 0, questions, cfg)
	if res.Clusters == 0 {
		t.Fatal("no clusters formed")
	}
	if res.NewPairs == 0 {
		t.Fatalf("no new pairs collected: %+v", res)
	}
	// The new pair must be about refunds, sourced "auto", with an answer
	// chosen from the replies.
	var found bool
	for _, p := range w.All() {
		if p.Source == "auto" {
			found = true
			if p.Answer == "" {
				t.Fatal("auto pair without answer")
			}
		}
	}
	if !found {
		t.Fatal("no auto pair stored")
	}
}

func TestCollectEmptyInput(t *testing.T) {
	w := NewWarehouse()
	res := Collect(w, 0, nil, DefaultCollectConfig())
	if res.NewPairs != 0 || res.Clusters != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCollectSkipsClustersWithoutAnswers(t *testing.T) {
	w := NewWarehouse()
	questions := []UserQuestion{
		{Tenant: 0, Text: "mystery topic alpha beta", Replies: nil},
		{Tenant: 0, Text: "alpha beta mystery topic", Replies: nil},
		{Tenant: 0, Text: "topic mystery alpha beta", Replies: nil},
	}
	cfg := DefaultCollectConfig()
	cfg.Eps = 0.45
	res := Collect(w, 0, questions, cfg)
	if res.NewPairs != 0 {
		t.Fatalf("pairs created without any reply: %+v", res)
	}
	if res.Clusters > 0 && res.NoisySkips == 0 {
		t.Fatalf("cluster without answers should be counted skipped: %+v", res)
	}
}
