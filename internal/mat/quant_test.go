package mat

import (
	"math"
	"testing"
)

func TestQuantizeRoundTripErrorBound(t *testing.T) {
	g := NewRNG(7)
	m := New(40, 24)
	g.Normal(m, 1.5)
	q := Quantize(m)
	dst := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		q.DequantRow(i, dst)
		bound := q.MaxError(i) + 1e-12
		for j, v := range m.Row(i) {
			if err := math.Abs(v - dst[j]); err > bound {
				t.Fatalf("row %d col %d: reconstruction error %g > bound %g", i, j, err, bound)
			}
		}
	}
}

func TestQuantizeConstantRowExact(t *testing.T) {
	m := New(2, 5)
	m.Fill(3.25)
	q := Quantize(m)
	dst := make([]float64, 5)
	q.DequantRow(0, dst)
	for j, v := range dst {
		if v != 3.25 {
			t.Fatalf("col %d: constant row reconstructed as %v", j, v)
		}
	}
	if q.Norm[0] != math.Sqrt(5*3.25*3.25) {
		t.Fatalf("norm %v", q.Norm[0])
	}
}

func TestDequantDotMatchesMaterialized(t *testing.T) {
	g := NewRNG(11)
	m := New(16, 32)
	g.Normal(m, 2)
	q := Quantize(m)
	v := make([]float64, 32)
	for j := range v {
		v[j] = g.NormFloat64()
	}
	vSum := Sum(v)
	dst := make([]float64, 32)
	for i := 0; i < m.Rows; i++ {
		q.DequantRow(i, dst)
		want := Dot(v, dst)
		got := q.DequantDot(i, v, vSum)
		if math.Abs(want-got) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("row %d: fused dot %v != materialized %v", i, got, want)
		}
	}
}

func TestQuantCosineSimTracksFloat(t *testing.T) {
	g := NewRNG(13)
	m := New(64, 16)
	g.Normal(m, 1)
	q := Quantize(m)
	v := m.Row(0)
	vNorm, vSum := Norm(v), Sum(v)
	for i := 0; i < m.Rows; i++ {
		exact := CosineSim(v, m.Row(i))
		approx := q.CosineSim(i, v, vNorm, vSum)
		if math.Abs(exact-approx) > 0.02 {
			t.Fatalf("row %d: quantized cosine %v drifted from %v", i, approx, exact)
		}
	}
	// Self-similarity stays essentially 1.
	if s := q.CosineSim(0, v, vNorm, vSum); s < 0.999 {
		t.Fatalf("self sim %v", s)
	}
}

func TestQuantZeroNormRow(t *testing.T) {
	m := New(1, 4) // all zeros
	q := Quantize(m)
	if s := q.CosineSim(0, []float64{1, 0, 0, 0}, 1, 1); s != 0 {
		t.Fatalf("zero row cosine = %v", s)
	}
}
