package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	if got := m.Row(1); got[2] != 7 {
		t.Fatalf("Row(1) = %v", got)
	}
}

func TestNewFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrom(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong: %v", m)
	}
	if got := FromRows(nil); got.Rows != 0 || got.Cols != 0 {
		t.Fatalf("FromRows(nil) = %v", got)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestSetRow(t *testing.T) {
	m := New(2, 2)
	m.SetRow(0, []float64{5, 6})
	if m.At(0, 0) != 5 || m.At(0, 1) != 6 {
		t.Fatalf("SetRow failed: %v", m)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", tr)
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i, v := range c.Data {
		if v != want.Data[i] {
			t.Fatalf("MatMul = %v, want %v", c, want)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTEquivalence(t *testing.T) {
	g := NewRNG(1)
	a, b := New(3, 4), New(5, 4)
	g.Normal(a, 1)
	g.Normal(b, 1)
	got := MatMulT(a, b)
	want := MatMul(a, b.T())
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MatMulT mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTMatMulEquivalence(t *testing.T) {
	g := NewRNG(2)
	a, b := New(4, 3), New(4, 5)
	g.Normal(a, 1)
	g.Normal(b, 1)
	got := TMatMul(a, b)
	want := MatMul(a.T(), b)
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("TMatMul mismatch at %d", i)
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 5}})
	if got := Add(a, b); got.At(0, 1) != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); got.At(0, 0) != 2 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); got.At(0, 1) != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 3); got.At(0, 0) != 3 {
		t.Fatalf("Scale = %v", got)
	}
	c := a.Clone()
	AddInPlace(c, b)
	if c.At(0, 0) != 4 {
		t.Fatalf("AddInPlace = %v", c)
	}
	ScaleInPlace(c, 2)
	if c.At(0, 0) != 8 {
		t.Fatalf("ScaleInPlace = %v", c)
	}
}

func TestAddRowVec(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}})
	got := AddRowVec(a, []float64{10, 20})
	if got.At(0, 1) != 21 || got.At(1, 0) != 12 {
		t.Fatalf("AddRowVec = %v", got)
	}
}

func TestApply(t *testing.T) {
	a := FromRows([][]float64{{-1, 4}})
	got := Apply(a, math.Abs)
	if got.At(0, 0) != 1 || got.At(0, 1) != 4 {
		t.Fatalf("Apply = %v", got)
	}
}

func TestSumRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := SumRows(a)
	if got[0] != 4 || got[1] != 6 {
		t.Fatalf("SumRows = %v", got)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {1000, 1001, 999}})
	s := SoftmaxRows(a)
	for i := 0; i < s.Rows; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			if v <= 0 || math.IsNaN(v) {
				t.Fatalf("softmax produced non-positive/NaN: %v", s.Row(i))
			}
			sum += v
		}
		if !almostEq(sum, 1, 1e-9) {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Larger logits get larger probabilities.
	if s.At(0, 2) <= s.At(0, 0) {
		t.Fatal("softmax not monotone")
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	if got := Softmax(nil); len(got) != 0 {
		t.Fatalf("Softmax(nil) = %v", got)
	}
}

func TestDotNormCosine(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if Norm(a) != 5 {
		t.Fatalf("Norm = %v", Norm(a))
	}
	if !almostEq(CosineSim(a, a), 1, 1e-12) {
		t.Fatalf("CosineSim self = %v", CosineSim(a, a))
	}
	if CosineSim(a, []float64{0, 0}) != 0 {
		t.Fatal("CosineSim with zero vector should be 0")
	}
	b := []float64{-4, 3}
	if !almostEq(CosineSim(a, b), 0, 1e-12) {
		t.Fatalf("orthogonal CosineSim = %v", CosineSim(a, b))
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
}

func TestConcat(t *testing.T) {
	got := Concat([]float64{1}, []float64{2, 3})
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("Concat = %v", got)
	}
}

func TestMaxIdx(t *testing.T) {
	if MaxIdx(nil) != -1 {
		t.Fatal("MaxIdx(nil) != -1")
	}
	if got := MaxIdx([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("MaxIdx = %d", got)
	}
}

func TestZeroFill(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.Fill(9)
	if m.At(0, 0) != 9 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.At(0, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestStringContainsShape(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Fatal("empty String()")
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestMatMulTransposeProperty(t *testing.T) {
	g := NewRNG(7)
	f := func(seed int64) bool {
		rg := NewRNG(seed)
		r, k, c := 1+rg.Intn(5), 1+rg.Intn(5), 1+rg.Intn(5)
		a, b := New(r, k), New(k, c)
		rg.Normal(a, 1)
		rg.Normal(b, 1)
		lhs := MatMul(a, b).T()
		rhs := MatMul(b.T(), a.T())
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	_ = cfg
	for i := 0; i < 50; i++ {
		if !f(g.Int63()) {
			t.Fatal("(AB)^T != B^T A^T")
		}
	}
}

// Property: matmul distributes over addition: A*(B+C) == A*B + A*C.
func TestMatMulDistributesProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rg := NewRNG(seed)
		r, k, c := 1+rg.Intn(4), 1+rg.Intn(4), 1+rg.Intn(4)
		a, b, cm := New(r, k), New(k, c), New(k, c)
		rg.Normal(a, 1)
		rg.Normal(b, 1)
		rg.Normal(cm, 1)
		lhs := MatMul(a, Add(b, cm))
		rhs := Add(MatMul(a, b), MatMul(a, cm))
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGFork(t *testing.T) {
	g := NewRNG(1)
	c1 := g.Fork()
	g2 := NewRNG(1)
	c2 := g2.Fork()
	if c1.Float64() != c2.Float64() {
		t.Fatal("Fork not deterministic")
	}
}

func TestCategorical(t *testing.T) {
	g := NewRNG(3)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[g.Categorical([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("Categorical counts %v not ordered by weight", counts)
	}
}

func TestCategoricalPanicsOnZeroWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Categorical([]float64{0, 0})
}

func TestZipfLongTail(t *testing.T) {
	g := NewRNG(4)
	counts := make([]int, 10)
	for i := 0; i < 5000; i++ {
		counts[g.Zipf(10, 1.2)]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("Zipf head %d not heavier than tail %d", counts[0], counts[9])
	}
}

func TestXavierBounded(t *testing.T) {
	g := NewRNG(5)
	m := New(10, 10)
	g.Xavier(m)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Xavier value %v exceeds limit %v", v, limit)
		}
	}
}
