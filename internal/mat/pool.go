package mat

import (
	"sync"
	"sync/atomic"
)

// Pool is a size-keyed recycler of matrices and scratch slices, backed by one
// sync.Pool per power-of-two capacity class. It exists for the per-call
// scratch of hot paths that cannot own their buffers — code that must stay
// safe under concurrent callers (e.g. GraphEncoder.Forward fanned out by
// EmbedAll) or whose buffer lifetime crosses a function boundary. Get returns
// zeroed memory, so a pooled matrix behaves exactly like a fresh New one; Put
// makes the memory eligible for reuse and must only be called once per Get,
// after the last read of the buffer.
//
// The zero value is ready to use. Shared is the process-wide pool the nn and
// core hot paths draw from.
type Pool struct {
	mats sync.Map // capacity class (int) -> *sync.Pool of *Matrix
	vecs sync.Map // capacity class (int) -> *sync.Pool of *vecBox
	ints sync.Map // capacity class (int) -> *sync.Pool of *intBox
	// Boxes carry slice headers through the sync.Pools without allocating a
	// header box per Put; emptied boxes are recycled through their own pools.
	vecBoxes sync.Pool
	intBoxes sync.Pool

	// hits counts Get/GetVec/GetInts calls satisfied from a pool, misses the
	// ones that fell through to make. The ratio is the pool hit-rate exported
	// in training run logs and /metrics.
	hits   atomic.Int64
	misses atomic.Int64
}

type vecBox struct{ s []float64 }
type intBox struct{ s []int }

// Shared is the global pool used by the neural substrate's hot paths.
var Shared Pool

// sizeClass rounds n up to the next power of two so the number of distinct
// pools stays logarithmic in the largest buffer.
func sizeClass(n int) int {
	if n <= 0 {
		return 1
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// Get returns a zeroed rows x cols matrix from the pool.
func (p *Pool) Get(rows, cols int) *Matrix {
	n := rows * cols
	class := sizeClass(n)
	pl, _ := p.mats.LoadOrStore(class, &sync.Pool{})
	if v := pl.(*sync.Pool).Get(); v != nil {
		p.hits.Add(1)
		m := v.(*Matrix)
		m.Data = m.Data[:n]
		m.Rows, m.Cols = rows, cols
		m.Zero()
		return m
	}
	p.misses.Add(1)
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, n, class)}
}

// Put returns a matrix obtained from Get to the pool. nil is ignored.
func (p *Pool) Put(m *Matrix) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	class := cap(m.Data)
	if class != sizeClass(class) {
		// Not one of ours (e.g. built by New with a non-power-of-two size);
		// keep the pools homogeneous and let the GC have it.
		return
	}
	pl, _ := p.mats.LoadOrStore(class, &sync.Pool{})
	pl.(*sync.Pool).Put(m)
}

// GetVec returns a zeroed length-n float64 slice from the pool.
func (p *Pool) GetVec(n int) []float64 {
	class := sizeClass(n)
	pl, _ := p.vecs.LoadOrStore(class, &sync.Pool{})
	if v := pl.(*sync.Pool).Get(); v != nil {
		p.hits.Add(1)
		b := v.(*vecBox)
		s := b.s[:n]
		b.s = nil
		p.vecBoxes.Put(b)
		for i := range s {
			s[i] = 0
		}
		return s
	}
	p.misses.Add(1)
	return make([]float64, n, class)
}

// PutVec returns a slice obtained from GetVec to the pool.
func (p *Pool) PutVec(v []float64) {
	class := cap(v)
	if class == 0 || class != sizeClass(class) {
		return
	}
	b, _ := p.vecBoxes.Get().(*vecBox)
	if b == nil {
		b = new(vecBox)
	}
	b.s = v[:0]
	pl, _ := p.vecs.LoadOrStore(class, &sync.Pool{})
	pl.(*sync.Pool).Put(b)
}

// GetInts returns a zeroed length-n int slice from the pool.
func (p *Pool) GetInts(n int) []int {
	class := sizeClass(n)
	pl, _ := p.ints.LoadOrStore(class, &sync.Pool{})
	if v := pl.(*sync.Pool).Get(); v != nil {
		p.hits.Add(1)
		b := v.(*intBox)
		s := b.s[:n]
		b.s = nil
		p.intBoxes.Put(b)
		for i := range s {
			s[i] = 0
		}
		return s
	}
	p.misses.Add(1)
	return make([]int, n, class)
}

// Stats reports how many Get/GetVec/GetInts calls were served from the pool
// (hits) versus allocated fresh (misses) since process start.
func (p *Pool) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// HitRate is hits/(hits+misses), or 0 before the first Get.
func (p *Pool) HitRate() float64 {
	h, m := p.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// PutInts returns a slice obtained from GetInts to the pool.
func (p *Pool) PutInts(v []int) {
	class := cap(v)
	if class == 0 || class != sizeClass(class) {
		return
	}
	b, _ := p.intBoxes.Get().(*intBox)
	if b == nil {
		b = new(intBox)
	}
	b.s = v[:0]
	pl, _ := p.ints.LoadOrStore(class, &sync.Pool{})
	pl.(*sync.Pool).Put(b)
}
