package mat

import "fmt"

// This file holds the in-place ("Into") variants of the hot kernels. Each
// writes its result into a caller-supplied destination instead of allocating,
// and performs the floating-point accumulation in exactly the same order as
// its allocating counterpart, so results are bit-identical. Destinations must
// have the result shape (use Ensure to recycle a buffer) and — except where
// noted — must not alias an input's backing slice.

// Ensure returns m reshaped to rows x cols, reusing its backing array when
// capacity allows and allocating a fresh matrix otherwise. Contents after
// Ensure are unspecified: every Into kernel fully overwrites its destination,
// so callers never see stale data through them. Pass nil to allocate.
func Ensure(m *Matrix, rows, cols int) *Matrix {
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		return New(rows, cols)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// EnsureVec returns v resized to length n, reusing its backing array when
// capacity allows. Contents are unspecified.
func EnsureVec(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// CopyInto copies src into dst (same shape required).
func CopyInto(dst, src *Matrix) {
	checkSame("CopyInto", dst, src)
	copy(dst.Data, src.Data)
}

// MatMulInto computes dst = a*b. dst must be a.Rows x b.Cols and must not
// alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMulInto %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MatMulInto", dst, a.Rows, b.Cols)
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTInto computes dst = a * b^T without materializing the transpose.
// dst must be a.Rows x b.Rows and must not alias a or b.
func MatMulTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulTInto %dx%d * (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MatMulTInto", dst, a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			dst.Data[i*dst.Cols+j] = s
		}
	}
}

// TMatMulInto computes dst = a^T * b without materializing the transpose.
// dst must be a.Cols x b.Cols and must not alias a or b.
func TMatMulInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMatMulInto (%dx%d)^T * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("TMatMulInto", dst, a.Cols, b.Cols)
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// AddInto computes dst = a+b elementwise. dst may alias a or b.
func AddInto(dst, a, b *Matrix) {
	checkSame("AddInto", a, b)
	checkDst("AddInto", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

// SubInto computes dst = a-b elementwise. dst may alias a or b.
func SubInto(dst, a, b *Matrix) {
	checkSame("SubInto", a, b)
	checkDst("SubInto", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
}

// MulInto computes the elementwise product dst = a*b. dst may alias a or b.
func MulInto(dst, a, b *Matrix) {
	checkSame("MulInto", a, b)
	checkDst("MulInto", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
}

// AddRowVecInto computes dst = a with v added to every row. dst may alias a.
func AddRowVecInto(dst, a *Matrix, v []float64) {
	if len(v) != a.Cols {
		panic(fmt.Sprintf("mat: AddRowVecInto len %d != cols %d", len(v), a.Cols))
	}
	checkDst("AddRowVecInto", dst, a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		orow := dst.Row(i)
		for j, x := range row {
			orow[j] = x + v[j]
		}
	}
}

// ApplyInto computes dst = f applied elementwise to a. dst may alias a.
func ApplyInto(dst, a *Matrix, f func(float64) float64) {
	checkDst("ApplyInto", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = f(v)
	}
}

// SoftmaxRowsInto applies a numerically stable softmax to each row of a,
// writing into dst. dst may alias a.
func SoftmaxRowsInto(dst, a *Matrix) {
	checkDst("SoftmaxRowsInto", dst, a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		SoftmaxInto(a.Row(i), dst.Row(i))
	}
}

// SumRowsInto writes the column-wise sum of all rows of a into sum
// (len == a.Cols).
func SumRowsInto(a *Matrix, sum []float64) {
	if len(sum) != a.Cols {
		panic(fmt.Sprintf("mat: SumRowsInto len %d != cols %d", len(sum), a.Cols))
	}
	for j := range sum {
		sum[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			sum[j] += v
		}
	}
}

func checkDst(op string, dst *Matrix, rows, cols int) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("mat: %s dst %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}
