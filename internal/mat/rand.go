package mat

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the deterministic helpers the substrate needs.
// Every stochastic component in this repository takes an explicit *RNG so
// that experiments are reproducible from a single seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork derives an independent child RNG; useful to give each component its
// own stream so the order of use in one does not perturb another.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Xavier fills m with Glorot-uniform values scaled for fanIn+fanOut.
func (g *RNG) Xavier(m *Matrix) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (g.r.Float64()*2 - 1) * limit
	}
}

// Normal fills m with N(0, std^2) values.
func (g *RNG) Normal(m *Matrix, std float64) {
	for i := range m.Data {
		m.Data[i] = g.r.NormFloat64() * std
	}
}

// Categorical samples an index from the (not necessarily normalized)
// non-negative weights. It panics if the total weight is not positive.
func (g *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("mat: Categorical requires positive total weight")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf samples an index in [0,n) with probability proportional to
// 1/(rank+1)^s, producing the long-tail popularity typical of tags.
func (g *RNG) Zipf(n int, s float64) int {
	// Small n in this repository, so a linear scan is fine.
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
	}
	return g.Categorical(weights)
}
