package mat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomShapes draws small random dimensions for the property tests.
type randomShapes struct {
	n, m, k int
	seed    int64
}

// Generate implements quick.Generator with dims in [1, 8].
func (randomShapes) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomShapes{
		n:    1 + r.Intn(8),
		m:    1 + r.Intn(8),
		k:    1 + r.Intn(8),
		seed: r.Int63(),
	})
}

func randMatrix(g *RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	g.Normal(m, 1)
	return m
}

// bitEqual reports exact (bit-level) equality: the Into kernels promise
// identical accumulation order, not merely numerical closeness.
func bitEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// checkProperty runs fn over random shapes via testing/quick.
func checkProperty(t *testing.T, name string, fn func(s randomShapes) bool) {
	t.Helper()
	wrapped := func(s randomShapes) bool { return fn(s) }
	if err := quick.Check(wrapped, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	checkProperty(t, "MatMulInto", func(s randomShapes) bool {
		g := NewRNG(s.seed)
		a := randMatrix(g, s.n, s.k)
		b := randMatrix(g, s.k, s.m)
		want := MatMul(a, b)
		dst := Shared.Get(s.n, s.m)
		defer Shared.Put(dst)
		dst.Fill(3.5) // stale contents must not leak through
		MatMulInto(dst, a, b)
		return bitEqual(dst, want)
	})
}

func TestMatMulTIntoMatchesMatMulT(t *testing.T) {
	checkProperty(t, "MatMulTInto", func(s randomShapes) bool {
		g := NewRNG(s.seed)
		a := randMatrix(g, s.n, s.k)
		b := randMatrix(g, s.m, s.k)
		want := MatMulT(a, b)
		dst := Shared.Get(s.n, s.m)
		defer Shared.Put(dst)
		dst.Fill(-1)
		MatMulTInto(dst, a, b)
		return bitEqual(dst, want)
	})
}

func TestTMatMulIntoMatchesTMatMul(t *testing.T) {
	checkProperty(t, "TMatMulInto", func(s randomShapes) bool {
		g := NewRNG(s.seed)
		a := randMatrix(g, s.k, s.n)
		b := randMatrix(g, s.k, s.m)
		want := TMatMul(a, b)
		dst := Shared.Get(s.n, s.m)
		defer Shared.Put(dst)
		dst.Fill(7)
		TMatMulInto(dst, a, b)
		return bitEqual(dst, want)
	})
}

func TestAddSubMulIntoMatchAllocating(t *testing.T) {
	checkProperty(t, "Add/Sub/MulInto", func(s randomShapes) bool {
		g := NewRNG(s.seed)
		a := randMatrix(g, s.n, s.m)
		b := randMatrix(g, s.n, s.m)
		dst := New(s.n, s.m)
		AddInto(dst, a, b)
		if !bitEqual(dst, Add(a, b)) {
			return false
		}
		SubInto(dst, a, b)
		if !bitEqual(dst, Sub(a, b)) {
			return false
		}
		MulInto(dst, a, b)
		if !bitEqual(dst, Mul(a, b)) {
			return false
		}
		// Aliased destination: dst == a must equal the allocating result.
		wantMul := Mul(a, b)
		MulInto(a, a, b)
		return bitEqual(a, wantMul)
	})
}

func TestAddRowVecIntoMatchesAddRowVec(t *testing.T) {
	checkProperty(t, "AddRowVecInto", func(s randomShapes) bool {
		g := NewRNG(s.seed)
		a := randMatrix(g, s.n, s.m)
		v := make([]float64, s.m)
		for i := range v {
			v[i] = g.NormFloat64()
		}
		want := AddRowVec(a, v)
		dst := New(s.n, s.m)
		AddRowVecInto(dst, a, v)
		if !bitEqual(dst, want) {
			return false
		}
		// In-place over a itself.
		AddRowVecInto(a, a, v)
		return bitEqual(a, want)
	})
}

func TestApplyIntoMatchesApply(t *testing.T) {
	square := func(v float64) float64 { return v * v }
	checkProperty(t, "ApplyInto", func(s randomShapes) bool {
		g := NewRNG(s.seed)
		a := randMatrix(g, s.n, s.m)
		want := Apply(a, square)
		dst := New(s.n, s.m)
		ApplyInto(dst, a, square)
		return bitEqual(dst, want)
	})
}

func TestSoftmaxRowsIntoMatchesSoftmaxRows(t *testing.T) {
	checkProperty(t, "SoftmaxRowsInto", func(s randomShapes) bool {
		g := NewRNG(s.seed)
		a := randMatrix(g, s.n, s.m)
		want := SoftmaxRows(a)
		dst := New(s.n, s.m)
		SoftmaxRowsInto(dst, a)
		if !bitEqual(dst, want) {
			return false
		}
		// Aliased: softmax rows in place.
		SoftmaxRowsInto(a, a)
		return bitEqual(a, want)
	})
}

func TestSumRowsIntoMatchesSumRows(t *testing.T) {
	checkProperty(t, "SumRowsInto", func(s randomShapes) bool {
		g := NewRNG(s.seed)
		a := randMatrix(g, s.n, s.m)
		want := SumRows(a)
		got := make([]float64, s.m)
		for i := range got {
			got[i] = 99 // stale
		}
		SumRowsInto(a, got)
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	})
}

func TestEnsureReusesCapacity(t *testing.T) {
	m := New(4, 8)
	data := &m.Data[0]
	m2 := Ensure(m, 2, 3)
	if m2 != m || &m2.Data[0] != data || m2.Rows != 2 || m2.Cols != 3 {
		t.Fatal("Ensure should reuse the backing array for a smaller shape")
	}
	m3 := Ensure(m2, 10, 10)
	if m3 == m2 {
		t.Fatal("Ensure must allocate when capacity is insufficient")
	}
	if got := Ensure(nil, 2, 2); got == nil || got.Rows != 2 {
		t.Fatal("Ensure(nil) must allocate")
	}
}

func TestPoolGetReturnsZeroedRightShape(t *testing.T) {
	m := Shared.Get(3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.Data) != 15 {
		t.Fatalf("Get(3,5) shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Fill(2)
	Shared.Put(m)
	m2 := Shared.Get(3, 5)
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("pooled matrix not zeroed on Get")
		}
	}
	Shared.Put(m2)

	v := Shared.GetVec(9)
	if len(v) != 9 {
		t.Fatalf("GetVec(9) len %d", len(v))
	}
	for i := range v {
		v[i] = 1
	}
	Shared.PutVec(v)
	v2 := Shared.GetVec(9)
	for _, x := range v2 {
		if x != 0 {
			t.Fatal("pooled vec not zeroed on Get")
		}
	}
	Shared.PutVec(v2)

	ids := Shared.GetInts(4)
	if len(ids) != 4 {
		t.Fatalf("GetInts(4) len %d", len(ids))
	}
	ids[0] = 7
	Shared.PutInts(ids)
	ids2 := Shared.GetInts(4)
	for _, x := range ids2 {
		if x != 0 {
			t.Fatal("pooled ints not zeroed on Get")
		}
	}
	Shared.PutInts(ids2)
}

func TestPoolConcurrentUse(t *testing.T) {
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			g := NewRNG(seed)
			for i := 0; i < 200; i++ {
				r, c := 1+g.Intn(16), 1+g.Intn(16)
				m := Shared.Get(r, c)
				for _, v := range m.Data {
					if v != 0 {
						panic("dirty pooled matrix")
					}
				}
				m.Fill(float64(seed))
				Shared.Put(m)
			}
			done <- true
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
