// Package mat provides dense float64 matrices and the small set of linear
// algebra operations needed by the IntelliTag neural substrate. It is not a
// general BLAS; it favors clarity, determinism and zero external dependencies.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major float64 matrix. The zero value is an empty
// 0x0 matrix; use New or NewFrom to create a sized one.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewFrom returns a rows x cols matrix backed by a copy of data.
func NewFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// FromRows builds a matrix whose rows are the given equal-length slices.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged row %d: len %d != %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return NewFrom(m.Rows, m.Cols, m.Data)
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MatMul returns a*b. Panics on a dimension mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT returns a * b^T without materializing the transpose.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulT %dx%d * (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// TMatMul returns a^T * b without materializing the transpose.
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMatMul (%dx%d)^T * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	checkSame("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	checkSame("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a*b.
func Mul(a, b *Matrix) *Matrix {
	checkSame("Mul", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Matrix) {
	checkSame("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale returns a*s as a new matrix.
func Scale(a *Matrix, s float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * s
	}
	return out
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(a *Matrix, s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// AddRowVec adds vector v to every row of a, returning a new matrix.
func AddRowVec(a *Matrix, v []float64) *Matrix {
	if len(v) != a.Cols {
		panic(fmt.Sprintf("mat: AddRowVec len %d != cols %d", len(v), a.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		orow := out.Row(i)
		for j, x := range row {
			orow[j] = x + v[j]
		}
	}
	return out
}

// Apply returns f applied elementwise to a.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// SumRows returns the column-wise sum of all rows (a length-Cols vector).
func SumRows(a *Matrix) []float64 {
	sum := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			sum[j] += v
		}
	}
	return sum
}

// SoftmaxRows applies a numerically stable softmax to each row of a.
func SoftmaxRows(a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		SoftmaxInto(a.Row(i), out.Row(i))
	}
	return out
}

// SoftmaxInto writes a numerically stable softmax of src into dst.
func SoftmaxInto(src, dst []float64) {
	if len(src) == 0 {
		return
	}
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// Softmax returns a numerically stable softmax of v as a new slice.
func Softmax(v []float64) []float64 {
	out := make([]float64, len(v))
	SoftmaxInto(v, out)
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot len %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// CosineSim returns the cosine similarity of a and b (0 if either is zero).
func CosineSim(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AXPY len %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Concat returns the concatenation of a and b as a new slice.
func Concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// MaxIdx returns the index of the maximum element of v (-1 for empty v).
func MaxIdx(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v[1:] {
		if x > v[best] {
			best = i + 1
		}
	}
	return best
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	b.WriteString("]")
	return b.String()
}

func checkSame(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
