package mat

import (
	"fmt"
	"math"
)

// QuantMatrix is a row-major int8 affine quantization of a float64 matrix:
// row i reconstructs as x̂[j] = Scale[i]*Data[i*Cols+j] + Off[i]. One row
// occupies Cols bytes instead of 8*Cols, so a candidate scan touches 8x less
// memory — the reason the ANN retrieval tier scans quantized rows instead of
// the float embedding table. Scale and offset are chosen per row from the
// row's min/max, which bounds the reconstruction error of every element by
// Scale[i]/2.
type QuantMatrix struct {
	Rows, Cols int
	Data       []int8    // len == Rows*Cols, row-major, values in [-127,127]
	Scale      []float64 // per-row dequantization scale
	Off        []float64 // per-row dequantization offset
	Norm       []float64 // per-row L2 norm of the reconstructed row
}

// Quantize builds the int8 representation of m. Rows are quantized
// independently; a constant row quantizes to all zeros with the constant in
// the offset, so reconstruction is exact for it.
func Quantize(m *Matrix) *QuantMatrix {
	q := &QuantMatrix{
		Rows: m.Rows, Cols: m.Cols,
		Data:  make([]int8, m.Rows*m.Cols),
		Scale: make([]float64, m.Rows),
		Off:   make([]float64, m.Rows),
		Norm:  make([]float64, m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		lo, hi := row[0], row[0]
		for _, v := range row[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		scale := (hi - lo) / 254
		if scale == 0 {
			// Constant row: all codes 0, offset carries the value exactly.
			q.Scale[i] = 1
			q.Off[i] = lo
		} else {
			q.Scale[i] = scale
			// code = round((v-lo)/scale) - 127 in [-127,127];
			// v̂ = scale*code + (127*scale + lo).
			q.Off[i] = 127*scale + lo
			inv := 1 / scale
			base := i * m.Cols
			for j, v := range row {
				q.Data[base+j] = int8(int((v-lo)*inv+0.5) - 127)
			}
		}
		var n float64
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			v := q.Scale[i]*float64(q.Data[base+j]) + q.Off[i]
			n += v * v
		}
		q.Norm[i] = math.Sqrt(n)
	}
	return q
}

// Row returns the int8 codes of row i.
func (q *QuantMatrix) Row(i int) []int8 { return q.Data[i*q.Cols : (i+1)*q.Cols] }

// DequantRow reconstructs row i into dst.
func (q *QuantMatrix) DequantRow(i int, dst []float64) {
	if len(dst) != q.Cols {
		panic(fmt.Sprintf("mat: DequantRow len %d != cols %d", len(dst), q.Cols))
	}
	s, off := q.Scale[i], q.Off[i]
	row := q.Row(i)
	for j, c := range row {
		dst[j] = s*float64(c) + off
	}
}

// Sum returns the elementwise sum of v — the query-side constant the fused
// dequant-dot kernel folds the per-row offset through.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// DequantDot computes dot(v, x̂_i) without materializing the dequantized row:
// dot(v, scale*code + off) = scale*Σ v_j*code_j + off*Σ v_j. vSum must be
// Sum(v); hoisting it out lets one query amortize the offset term over every
// row it scans, so the inner loop is a single int8-widening multiply-add.
func (q *QuantMatrix) DequantDot(i int, v []float64, vSum float64) float64 {
	if len(v) != q.Cols {
		panic(fmt.Sprintf("mat: DequantDot len %d != cols %d", len(v), q.Cols))
	}
	row := q.Row(i)
	var s float64
	for j, c := range row {
		s += v[j] * float64(c)
	}
	return q.Scale[i]*s + q.Off[i]*vSum
}

// CosineSim returns the cosine similarity of v against reconstructed row i,
// given the precomputed query norm and sum (0 when either norm is zero).
func (q *QuantMatrix) CosineSim(i int, v []float64, vNorm, vSum float64) float64 {
	rn := q.Norm[i]
	if rn == 0 || vNorm == 0 {
		return 0
	}
	return q.DequantDot(i, v, vSum) / (vNorm * rn)
}

// MaxError returns the worst-case per-element reconstruction error bound of
// row i (half a quantization step).
func (q *QuantMatrix) MaxError(i int) float64 { return q.Scale[i] / 2 }
