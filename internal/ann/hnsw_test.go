package ann

import (
	"testing"

	"intellitag/internal/mat"
)

func TestGraphHighRecallOnClusters(t *testing.T) {
	vecs := clusteredVecs(40, 25, 16, 3)
	g := BuildGraph(vecs, DefaultGraphConfig())
	if recall := g.RecallAtK(10, 13); recall < 0.95 {
		t.Fatalf("recall@10 = %.3f, want >= 0.95", recall)
	}
}

func TestGraphSearchFindsOwnCluster(t *testing.T) {
	vecs := clusteredVecs(10, 8, 16, 4)
	g := BuildGraph(vecs, DefaultGraphConfig())
	hits := g.Search(vecs.Row(0), 7, 0)
	if len(hits) != 7 {
		t.Fatalf("got %d hits", len(hits))
	}
	inCluster := 0
	for _, n := range hits {
		if n.ID == 0 {
			t.Fatal("excluded id returned")
		}
		if n.ID < 8 {
			inCluster++
		}
	}
	if inCluster < 6 {
		t.Fatalf("only %d/%d hits in own cluster", inCluster, len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if better(hits[i], hits[i-1]) {
			t.Fatal("not sorted best-first")
		}
	}
}

func TestGraphDeterministicAcrossBuilds(t *testing.T) {
	vecs := clusteredVecs(12, 6, 8, 9)
	a := BuildGraph(vecs, DefaultGraphConfig())
	b := BuildGraph(vecs, DefaultGraphConfig())
	for q := 0; q < vecs.Rows; q += 5 {
		ra := a.Search(vecs.Row(q), 6, q)
		rb := b.Search(vecs.Row(q), 6, q)
		if len(ra) != len(rb) {
			t.Fatalf("query %d: result sizes differ", q)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("query %d rank %d: %+v != %+v", q, i, ra[i], rb[i])
			}
		}
	}
}

func TestGraphEmptyAndTiny(t *testing.T) {
	if got := BuildGraph(mat.New(0, 4), DefaultGraphConfig()).Search([]float64{1, 0, 0, 0}, 3, -1); got != nil {
		t.Fatalf("empty graph returned %v", got)
	}
	one := mat.New(1, 4)
	one.SetRow(0, []float64{1, 0, 0, 0})
	g := BuildGraph(one, DefaultGraphConfig())
	if got := g.Search([]float64{1, 0, 0, 0}, 3, -1); len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("single-node graph returned %v", got)
	}
	if got := g.Search([]float64{1, 0, 0, 0}, 3, 0); len(got) != 0 {
		t.Fatalf("excluded single node returned %v", got)
	}
}

// duplicateRows builds a matrix where every vector appears `copies` times in
// a row block, so similarity ties are exact and tie-breaking is observable.
func duplicateRows(base *mat.Matrix, copies int) *mat.Matrix {
	out := mat.New(base.Rows*copies, base.Cols)
	for i := 0; i < base.Rows; i++ {
		for c := 0; c < copies; c++ {
			out.SetRow(i*copies+c, base.Row(i))
		}
	}
	return out
}

// TestTieBreakIsStableById pins the determinism satellite: on exact score
// ties (duplicated vectors) every backend must order neighbors by ascending
// id, and reusing a warm Scratch must not change any result. This is the
// class of nondeterminism intellilint's maporder gate cannot see — it comes
// from heap eviction order and slice truncation, not from map iteration.
func TestTieBreakIsStableById(t *testing.T) {
	g := mat.NewRNG(17)
	base := mat.New(6, 8)
	g.Normal(base, 1)
	vecs := duplicateRows(base, 4) // ids 4b..4b+3 are identical vectors
	backends := []Retriever{
		Build(vecs, DefaultConfig()),
		BuildGraph(vecs, DefaultGraphConfig()),
	}
	for _, r := range backends {
		warm := NewScratch()
		for q := 0; q < vecs.Rows; q++ {
			cold := r.SearchInto(NewScratch(), vecs.Row(q), 8, q)
			// Ties must be sorted ascending by id within equal sims.
			for i := 1; i < len(cold); i++ {
				if cold[i-1].Sim == cold[i].Sim && cold[i-1].ID >= cold[i].ID {
					t.Fatalf("%s query %d: tie order %d before %d", r.Name(), q, cold[i-1].ID, cold[i].ID)
				}
				if cold[i-1].Sim < cold[i].Sim {
					t.Fatalf("%s query %d: not sorted", r.Name(), q)
				}
			}
			// The query's own duplicate block (sim == 1 ties) must surface
			// lowest-id-first.
			block := q / 4 * 4
			want := make([]int, 0, 3)
			for id := block; id < block+4; id++ {
				if id != q {
					want = append(want, id)
				}
			}
			if len(cold) < len(want) {
				t.Fatalf("%s query %d: only %d results", r.Name(), q, len(cold))
			}
			for i, id := range want {
				if cold[i].ID != id {
					t.Fatalf("%s query %d rank %d: got id %d, want %d (tie-break by id)",
						r.Name(), q, i, cold[i].ID, id)
				}
			}
			// A reused scratch with stale state must reproduce bit-identically.
			reused := r.SearchInto(warm, vecs.Row(q), 8, q)
			if len(reused) != len(cold) {
				t.Fatalf("%s query %d: warm scratch changed result size", r.Name(), q)
			}
			for i := range cold {
				if cold[i] != reused[i] {
					t.Fatalf("%s query %d rank %d: warm %+v != cold %+v", r.Name(), q, i, reused[i], cold[i])
				}
			}
		}
	}
}

func TestSearchConvenienceCopies(t *testing.T) {
	vecs := clusteredVecs(5, 4, 8, 21)
	g := BuildGraph(vecs, DefaultGraphConfig())
	a := g.Search(vecs.Row(1), 4, 1)
	b := g.Search(vecs.Row(9), 4, 9)
	// a must not have been clobbered by b's search (distinct backing arrays).
	for _, n := range a {
		if n.ID == 1 {
			t.Fatal("exclusion failed")
		}
	}
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
		}
		if same {
			t.Fatal("two different queries returned identical copies — aliasing bug")
		}
	}
}

// TestSearchIntoZeroAllocs verifies the pooled-scratch satellite: after
// warm-up, a Search on either backend performs zero heap allocations.
func TestSearchIntoZeroAllocs(t *testing.T) {
	vecs := clusteredVecs(64, 16, 16, 5)
	for _, r := range []Retriever{Build(vecs, DefaultConfig()), BuildGraph(vecs, DefaultGraphConfig())} {
		sc := NewScratch()
		q := vecs.Row(42)
		r.SearchInto(sc, q, 10, 42) // warm the scratch
		allocs := testing.AllocsPerRun(100, func() {
			r.SearchInto(sc, q, 10, 42)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op after warm-up, want 0", r.Name(), allocs)
		}
	}
}
