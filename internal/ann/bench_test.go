package ann

import (
	"testing"
)

// BenchmarkSearchInto measures the pooled-scratch search path of each backend
// — the b.ReportAllocs() output is the regression gate for the zero-alloc
// satellite (see also TestSearchIntoZeroAllocs).
func BenchmarkSearchInto(b *testing.B) {
	vecs := clusteredVecs(256, 64, 32, 7) // 16384 vectors
	backends := []Retriever{
		Build(vecs, DefaultConfig()),
		BuildGraph(vecs, DefaultGraphConfig()),
	}
	for _, r := range backends {
		b.Run(r.Name(), func(b *testing.B) {
			sc := NewScratch()
			query := vecs.Row(101)
			r.SearchInto(sc, query, 10, 101) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.SearchInto(sc, query, 10, 101)
			}
		})
	}
}

// BenchmarkExact is the brute-force baseline at the same scale.
func BenchmarkExact(b *testing.B) {
	vecs := clusteredVecs(256, 64, 32, 7)
	query := vecs.Row(101)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Exact(vecs, query, 10, 101)
	}
}
