// Package ann provides an approximate-nearest-neighbor index over tag
// embeddings using random-hyperplane LSH (cosine similarity). The paper's
// metapath2vec serving "directly uploads the closest tags of each tag from
// the offline calculation in advance" (Section VI-F); at production scale
// (tens of thousands of tags) that offline calculation needs sublinear
// search, which this index supplies. Exact brute-force search is available
// as a fallback and as the ground truth for tests.
package ann

import (
	"fmt"
	"sort"

	"intellitag/internal/mat"
)

// Neighbor is one search result.
type Neighbor struct {
	ID  int
	Sim float64 // cosine similarity to the query
}

// Index is a random-hyperplane LSH index with multi-table lookup.
type Index struct {
	dim     int
	bits    int // hyperplanes per table
	tables  int
	planes  [][]float64 // tables*bits hyperplanes, row-major
	buckets []map[uint64][]int
	vecs    *mat.Matrix
}

// Config sizes the index.
type Config struct {
	Bits   int // hash bits per table (more bits = smaller buckets)
	Tables int // more tables = higher recall
	Seed   int64
}

// DefaultConfig suits a few hundred to a few hundred thousand vectors.
func DefaultConfig() Config { return Config{Bits: 10, Tables: 8, Seed: 61} }

// Build constructs the index over the rows of vecs (row index = id).
func Build(vecs *mat.Matrix, cfg Config) *Index {
	if cfg.Bits <= 0 || cfg.Bits > 60 {
		panic(fmt.Sprintf("ann: bits %d out of range", cfg.Bits))
	}
	g := mat.NewRNG(cfg.Seed)
	ix := &Index{
		dim: vecs.Cols, bits: cfg.Bits, tables: cfg.Tables,
		vecs:    vecs,
		buckets: make([]map[uint64][]int, cfg.Tables),
	}
	for t := 0; t < cfg.Tables; t++ {
		ix.buckets[t] = map[uint64][]int{}
		for b := 0; b < cfg.Bits; b++ {
			plane := make([]float64, ix.dim)
			for j := range plane {
				plane[j] = g.NormFloat64()
			}
			ix.planes = append(ix.planes, plane)
		}
	}
	for id := 0; id < vecs.Rows; id++ {
		v := vecs.Row(id)
		for t := 0; t < cfg.Tables; t++ {
			h := ix.hash(t, v)
			ix.buckets[t][h] = append(ix.buckets[t][h], id)
		}
	}
	return ix
}

// hash computes table t's signature of v.
func (ix *Index) hash(t int, v []float64) uint64 {
	var h uint64
	base := t * ix.bits
	for b := 0; b < ix.bits; b++ {
		if mat.Dot(ix.planes[base+b], v) >= 0 {
			h |= 1 << uint(b)
		}
	}
	return h
}

// Search returns up to k approximate nearest neighbors of query by cosine
// similarity, excluding exclude (pass -1 to keep all). Candidates come from
// the query's bucket in every table; if fewer than k distinct candidates
// surface, the search degrades gracefully (callers needing guarantees use
// Exact).
func (ix *Index) Search(query []float64, k, exclude int) []Neighbor {
	seen := map[int]bool{}
	var out []Neighbor
	for t := 0; t < ix.tables; t++ {
		for _, id := range ix.buckets[t][ix.hash(t, query)] {
			if id == exclude || seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, Neighbor{ID: id, Sim: mat.CosineSim(query, ix.vecs.Row(id))})
		}
	}
	sortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Exact returns the true top-k neighbors by brute force — the ground truth
// for recall measurements and the fallback for small catalogs.
func Exact(vecs *mat.Matrix, query []float64, k, exclude int) []Neighbor {
	out := make([]Neighbor, 0, vecs.Rows)
	for id := 0; id < vecs.Rows; id++ {
		if id == exclude {
			continue
		}
		out = append(out, Neighbor{ID: id, Sim: mat.CosineSim(query, vecs.Row(id))})
	}
	sortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Sim != ns[j].Sim {
			return ns[i].Sim > ns[j].Sim
		}
		return ns[i].ID < ns[j].ID
	})
}

// RecallAtK measures the index's recall against exact search over sample
// query rows: |approx top-k ∩ exact top-k| / k, averaged.
func (ix *Index) RecallAtK(k int, sampleEvery int) float64 {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	var total float64
	var n int
	for id := 0; id < ix.vecs.Rows; id += sampleEvery {
		q := ix.vecs.Row(id)
		truth := Exact(ix.vecs, q, k, id)
		approx := ix.Search(q, k, id)
		truthSet := map[int]bool{}
		for _, t := range truth {
			truthSet[t.ID] = true
		}
		hits := 0
		for _, a := range approx {
			if truthSet[a.ID] {
				hits++
			}
		}
		if len(truth) > 0 {
			total += float64(hits) / float64(len(truth))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// ClosestTable precomputes each row's top-k neighbor ids — the artifact the
// paper's metapath2vec deployment uploads to the online servers.
func (ix *Index) ClosestTable(k int) [][]int {
	out := make([][]int, ix.vecs.Rows)
	for id := 0; id < ix.vecs.Rows; id++ {
		ns := ix.Search(ix.vecs.Row(id), k, id)
		ids := make([]int, len(ns))
		for i, n := range ns {
			ids[i] = n.ID
		}
		out[id] = ids
	}
	return out
}
